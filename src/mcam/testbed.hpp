// Testbed — assembles the Fig. 2 experimental configuration.
//
// One server host (the KSR1 stand-in) with a shared McamServerCore, N client
// hosts, each with M control connections to the server. Per connection the
// testbed instantiates exactly the module structure §4.1 describes: the
// client module creates an application module, an MCAM (MCA) module and
// either Estelle presentation/session modules or an ISODE interface module;
// the server creates the mirror-image entity. Client and server system
// modules can then run under any of the three schedulers.
//
// The CM streams run over a separate net::SimNetwork, as in the paper the
// stream stack (MTP/UDP/FDDI) is deliberately separate from the control
// stack (Table 1).
#pragma once

#include <memory>
#include <vector>

#include "estelle/executor.hpp"
#include "mcam/client.hpp"
#include "mcam/mca.hpp"
#include "mcam/server_core.hpp"
#include "osi/acse.hpp"
#include "osi/isode.hpp"
#include "osi/stack.hpp"

namespace mcam::core {

/// Which control stack carries MCAM (§3: two stacks for conformance testing
/// and generated-vs-hand-written comparison).
enum class StackKind { EstelleGenerated, IsodeHandCoded };

class Testbed {
 public:
  struct Config {
    StackKind stack = StackKind::EstelleGenerated;
    int clients = 1;
    int connections_per_client = 1;
    double control_loss = 0.0;  // loss on the transport channel (Estelle stack)
    std::uint64_t seed = 1994;
    std::string server_host = "ksr1";
    /// §3: clients are single-processor workstations (affects how parallel
    /// schedulers map the client subtrees; the server stays multiprocessor).
    bool uniprocessor_clients = true;
    /// Insert the ACSE layer of Fig. 3 between the MCA and the control
    /// stack (application-context negotiation on associate).
    bool use_acse = false;
    /// Which runtime drives the control world (any registered
    /// ExecutorKind; sequential by default, as in the paper's baseline).
    estelle::ExecutorConfig runtime{};
  };

  struct Connection {
    AppModule* app = nullptr;
    McaClientModule* mca = nullptr;
    McaServerModule* server_mca = nullptr;
    // Estelle-generated stack endpoints (null under IsodeHandCoded):
    osi::EstelleStack client_stack;
    osi::EstelleStack server_stack;
    // ISODE path (null under EstelleGenerated):
    osi::isode::IsodeInterfaceModule* client_iface = nullptr;
    osi::isode::IsodeInterfaceModule* server_iface = nullptr;
    // ACSE layer (null unless Config::use_acse):
    osi::AcseModule* client_acse = nullptr;
    osi::AcseModule* server_acse = nullptr;
  };

  explicit Testbed(Config cfg);

  [[nodiscard]] estelle::Specification& spec() noexcept { return spec_; }
  [[nodiscard]] net::SimNetwork& network() noexcept { return network_; }
  [[nodiscard]] McamServerCore& server() noexcept { return *core_; }
  [[nodiscard]] estelle::Executor& executor() noexcept { return *executor_; }
  [[nodiscard]] common::Rng& rng() noexcept { return rng_; }

  [[nodiscard]] Connection& connection(int client, int conn = 0);
  [[nodiscard]] int clients() const noexcept { return cfg_.clients; }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }
  [[nodiscard]] std::string client_host(int client) const {
    return "client" + std::to_string(client + 1);
  }

  /// Client facade bound to connection (client, conn).
  McamClient client(int client, int conn = 0);

  /// Create a client-side Stream User Agent listening on
  /// (client_host(client), port). Owned by the testbed.
  mtp::StreamUserAgent& make_sua(int client, std::uint16_t port);

  /// Advance the CM-stream world by `dt`: steps all senders and delivers
  /// packets in `tick` increments (SUAs are polled after each tick).
  void advance_streams(common::SimTime dt,
                       common::SimTime tick = common::SimTime::from_ms(5));

 private:
  Config cfg_;
  common::Rng rng_;
  estelle::Specification spec_;
  net::SimNetwork network_;
  std::unique_ptr<McamServerCore> core_;
  estelle::Module* server_module_ = nullptr;
  std::vector<estelle::Module*> client_modules_;
  std::vector<std::vector<Connection>> connections_;
  std::vector<std::unique_ptr<mtp::StreamUserAgent>> suas_;
  std::unique_ptr<estelle::Executor> executor_;
};

}  // namespace mcam::core
