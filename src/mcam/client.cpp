#include "mcam/client.hpp"

#include "mcam/mca.hpp"

namespace mcam::core {

using common::Error;
using common::Result;
using estelle::Interaction;

Result<Pdu> McamClient::call(const Pdu& request, Op expect) {
  auto& channel = app_.mca();
  channel.output(
      Interaction(static_cast<int>(op_of(request)), encode(request)));

  for (;;) {
    executor_.run_until([&] { return channel.has_input(); });
    if (!channel.has_input())
      return Error::make(kNoResponse,
                         std::string("no response to ") +
                             op_name(op_of(request)) + " (world quiescent)");
    Interaction msg = channel.pop();
    auto response = decode(msg.payload);
    if (!response.ok()) return response.error();

    // Stash unsolicited notifications and keep waiting.
    if (std::holds_alternative<PositionInd>(response.value())) {
      notifications_.push_back(std::get<PositionInd>(response.value()));
      continue;
    }
    if (std::holds_alternative<ErrorResp>(response.value()) &&
        expect != Op::ErrorResp) {
      const auto& err = std::get<ErrorResp>(response.value());
      return Error::make(kRequestFailed,
                         std::string(result_name(err.result)) + ": " +
                             err.diagnostic);
    }
    if (op_of(response.value()) != expect)
      return Error::make(kUnexpectedResponse,
                         std::string("expected ") + op_name(expect) +
                             ", got " + op_name(op_of(response.value())));
    return response;
  }
}

template <typename T>
Result<T> McamClient::typed_call(const Pdu& request, Op expect) {
  auto response = call(request, expect);
  if (!response.ok()) return response.error();
  return std::get<T>(std::move(response).take());
}

Result<MovieSearchResp> McamClient::search_movies(
    const directory::Filter& filter, bool chained) {
  return typed_call<MovieSearchResp>(Pdu{MovieSearchReq{filter, chained}},
                                     Op::MovieSearchResp);
}

std::size_t McamClient::poll_notifications() {
  auto& channel = app_.mca();
  const std::size_t before = notifications_.size();
  for (;;) {
    executor_.run_until([&] { return channel.has_input(); });
    if (!channel.has_input()) break;
    // Only consume while the head is a notification; anything else belongs
    // to a future call().
    auto op = peek_op(channel.head()->payload);
    if (!op.ok() || op.value() != Op::PositionInd) break;
    auto decoded = decode(channel.pop().payload);
    if (decoded.ok() &&
        std::holds_alternative<PositionInd>(decoded.value()))
      notifications_.push_back(std::get<PositionInd>(decoded.value()));
  }
  return notifications_.size() - before;
}

Result<AssociateResp> McamClient::associate(const std::string& user) {
  auto resp = typed_call<AssociateResp>(Pdu{AssociateReq{user, 1}},
                                        Op::AssociateResp);
  if (!resp.ok()) return resp;
  if (resp.value().result != ResultCode::Success)
    return Error::make(kRequestFailed,
                       std::string("association refused: ") +
                           resp.value().diagnostic);
  return resp;
}

void McamClient::abort() {
  app_.mca().output(Interaction(kAppAbort));
  executor_.run();  // let the abort cascade settle on both sides
  app_.mca().clear();  // drop any stale responses from the dead association
}

Result<ReleaseResp> McamClient::release() {
  return typed_call<ReleaseResp>(Pdu{ReleaseReq{}}, Op::ReleaseResp);
}

Result<MovieCreateResp> McamClient::create_movie(
    const std::string& title, const std::vector<Attr>& attrs) {
  return typed_call<MovieCreateResp>(Pdu{MovieCreateReq{title, attrs}},
                                     Op::MovieCreateResp);
}

Result<MovieDeleteResp> McamClient::delete_movie(std::uint64_t movie_id) {
  return typed_call<MovieDeleteResp>(Pdu{MovieDeleteReq{movie_id}},
                                     Op::MovieDeleteResp);
}

Result<MovieSelectResp> McamClient::select_movie(const std::string& title) {
  return typed_call<MovieSelectResp>(Pdu{MovieSelectReq{title}},
                                     Op::MovieSelectResp);
}

Result<AttrQueryResp> McamClient::query_attributes(
    std::uint64_t movie_id, const std::vector<std::string>& names) {
  return typed_call<AttrQueryResp>(Pdu{AttrQueryReq{movie_id, names}},
                                   Op::AttrQueryResp);
}

Result<AttrModifyResp> McamClient::modify_attributes(
    std::uint64_t movie_id, const std::vector<Attr>& attrs) {
  return typed_call<AttrModifyResp>(Pdu{AttrModifyReq{movie_id, attrs}},
                                    Op::AttrModifyResp);
}

Result<PlayResp> McamClient::play(std::uint64_t movie_id,
                                  const std::string& dest_host,
                                  std::uint16_t dest_port,
                                  std::uint64_t start_frame,
                                  std::uint32_t qos_max_delay_ms,
                                  std::uint32_t qos_max_jitter_ms) {
  return typed_call<PlayResp>(
      Pdu{PlayReq{movie_id, start_frame, dest_host, dest_port,
                  qos_max_delay_ms, qos_max_jitter_ms}},
      Op::PlayResp);
}

Result<StopResp> McamClient::stop(std::uint64_t movie_id) {
  return typed_call<StopResp>(Pdu{StopReq{movie_id}}, Op::StopResp);
}

Result<PauseResp> McamClient::pause(std::uint64_t movie_id) {
  return typed_call<PauseResp>(Pdu{PauseReq{movie_id}}, Op::PauseResp);
}

Result<ResumeResp> McamClient::resume(std::uint64_t movie_id) {
  return typed_call<ResumeResp>(Pdu{ResumeReq{movie_id}}, Op::ResumeResp);
}

Result<RecordResp> McamClient::record(const std::string& title,
                                      std::uint32_t equipment_id,
                                      const std::vector<Attr>& attrs) {
  return typed_call<RecordResp>(Pdu{RecordReq{title, equipment_id, attrs}},
                                Op::RecordResp);
}

Result<RecordStopResp> McamClient::record_stop(std::uint64_t movie_id) {
  return typed_call<RecordStopResp>(Pdu{RecordStopReq{movie_id}},
                                    Op::RecordStopResp);
}

Result<EquipListResp> McamClient::list_equipment(int kind) {
  return typed_call<EquipListResp>(Pdu{EquipListReq{kind}}, Op::EquipListResp);
}

Result<EquipControlResp> McamClient::control_equipment(
    std::uint32_t equipment_id, int command, const std::string& param,
    int value) {
  return typed_call<EquipControlResp>(
      Pdu{EquipControlReq{equipment_id, command, param, value}},
      Op::EquipControlResp);
}

}  // namespace mcam::core
