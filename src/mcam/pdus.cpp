#include "mcam/pdus.hpp"

#include "asn1/ber.hpp"

namespace mcam::core {

using asn1::Value;
using common::Error;
using common::Result;

const char* op_name(Op op) noexcept {
  switch (op) {
    case Op::AssociateReq: return "AssociateReq";
    case Op::AssociateResp: return "AssociateResp";
    case Op::ReleaseReq: return "ReleaseReq";
    case Op::ReleaseResp: return "ReleaseResp";
    case Op::MovieCreateReq: return "MovieCreateReq";
    case Op::MovieCreateResp: return "MovieCreateResp";
    case Op::MovieDeleteReq: return "MovieDeleteReq";
    case Op::MovieDeleteResp: return "MovieDeleteResp";
    case Op::MovieSelectReq: return "MovieSelectReq";
    case Op::MovieSelectResp: return "MovieSelectResp";
    case Op::AttrQueryReq: return "AttrQueryReq";
    case Op::AttrQueryResp: return "AttrQueryResp";
    case Op::AttrModifyReq: return "AttrModifyReq";
    case Op::AttrModifyResp: return "AttrModifyResp";
    case Op::PlayReq: return "PlayReq";
    case Op::PlayResp: return "PlayResp";
    case Op::StopReq: return "StopReq";
    case Op::StopResp: return "StopResp";
    case Op::PauseReq: return "PauseReq";
    case Op::PauseResp: return "PauseResp";
    case Op::ResumeReq: return "ResumeReq";
    case Op::ResumeResp: return "ResumeResp";
    case Op::RecordReq: return "RecordReq";
    case Op::RecordResp: return "RecordResp";
    case Op::RecordStopReq: return "RecordStopReq";
    case Op::RecordStopResp: return "RecordStopResp";
    case Op::EquipListReq: return "EquipListReq";
    case Op::EquipListResp: return "EquipListResp";
    case Op::EquipControlReq: return "EquipControlReq";
    case Op::EquipControlResp: return "EquipControlResp";
    case Op::MovieSearchReq: return "MovieSearchReq";
    case Op::MovieSearchResp: return "MovieSearchResp";
    case Op::PositionInd: return "PositionInd";
    case Op::ErrorResp: return "ErrorResp";
  }
  return "?";
}

const char* result_name(ResultCode rc) noexcept {
  switch (rc) {
    case ResultCode::Success: return "success";
    case ResultCode::NoSuchMovie: return "no-such-movie";
    case ResultCode::DuplicateMovie: return "duplicate-movie";
    case ResultCode::NotSelected: return "not-selected";
    case ResultCode::AccessDenied: return "access-denied";
    case ResultCode::BadAttribute: return "bad-attribute";
    case ResultCode::NoSuchEquipment: return "no-such-equipment";
    case ResultCode::EquipmentBusy: return "equipment-busy";
    case ResultCode::ProtocolError: return "protocol-error";
    case ResultCode::NotPlaying: return "not-playing";
    case ResultCode::AlreadyPlaying: return "already-playing";
    case ResultCode::NotAssociated: return "not-associated";
    case ResultCode::InternalError: return "internal-error";
  }
  return "?";
}

namespace {

// ---- encode helpers ----

Value enc_attrs(const std::vector<Attr>& attrs) {
  std::vector<Value> rows;
  rows.reserve(attrs.size());
  for (const Attr& a : attrs)
    rows.push_back(Value::sequence(
        {Value::ia5string(a.name), Value::ia5string(a.value)}));
  return Value::sequence(std::move(rows));
}

Value enc_names(const std::vector<std::string>& names) {
  std::vector<Value> rows;
  rows.reserve(names.size());
  for (const std::string& n : names) rows.push_back(Value::ia5string(n));
  return Value::sequence(std::move(rows));
}

Value enc_result(ResultCode rc) {
  return Value::enumerated(static_cast<int>(rc));
}

// ---- decode helpers ----

/// Sequential reader over the field list of a decoded PDU body.
class Fields {
 public:
  explicit Fields(const Value& pdu) : pdu_(pdu) {}

  Result<std::int64_t> integer() {
    auto v = next();
    if (!v.ok()) return v.error();
    return v.value().get().as_int();
  }
  Result<std::string> text() {
    auto v = next();
    if (!v.ok()) return v.error();
    return v.value().get().as_string();
  }
  Result<ResultCode> result_code() {
    auto v = integer();
    if (!v.ok()) return v.error();
    return static_cast<ResultCode>(v.value());
  }
  Result<bool> boolean() {
    auto v = next();
    if (!v.ok()) return v.error();
    return v.value().get().as_bool();
  }
  Result<std::vector<Attr>> attrs() {
    auto v = next();
    if (!v.ok()) return v.error();
    std::vector<Attr> out;
    for (const Value& row : v.value().get().children()) {
      if (row.size() != 2)
        return Error::make(kBadPduBody, "attr row arity");
      auto name = row.child(0).as_string();
      auto value = row.child(1).as_string();
      if (!name.ok()) return name.error();
      if (!value.ok()) return value.error();
      out.push_back(Attr{name.value(), value.value()});
    }
    return out;
  }
  Result<std::vector<std::string>> names() {
    auto v = next();
    if (!v.ok()) return v.error();
    std::vector<std::string> out;
    for (const Value& row : v.value().get().children()) {
      auto s = row.as_string();
      if (!s.ok()) return s.error();
      out.push_back(s.value());
    }
    return out;
  }

 private:
  Result<std::reference_wrapper<const Value>> next() {
    if (index_ >= pdu_.size())
      return Error::make(kBadPduBody, "missing PDU field");
    return std::cref(pdu_.child(index_++));
  }
  Result<std::reference_wrapper<const Value>> peek_field() {
    if (index_ >= pdu_.size())
      return Error::make(kBadPduBody, "missing PDU field");
    return std::cref(pdu_.child(index_));
  }

  const Value& pdu_;
  std::size_t index_ = 0;
};

template <typename T>
Result<Pdu> as_pdu(Result<T> r) {
  if (!r.ok()) return r.error();
  return Pdu{std::move(r).take()};
}

}  // namespace

asn1::Value encode_filter(const directory::Filter& filter) {
  using directory::Filter;
  switch (filter.op()) {
    case Filter::Op::And:
    case Filter::Op::Or: {
      std::vector<Value> kids;
      kids.reserve(filter.children().size());
      for (const Filter& c : filter.children())
        kids.push_back(encode_filter(c));
      return Value::context(filter.op() == Filter::Op::And ? 0 : 1,
                            Value::sequence(std::move(kids)));
    }
    case Filter::Op::Not:
      return Value::context(2, encode_filter(filter.children().front()));
    case Filter::Op::Equal:
      return Value::context(3,
                            Value::sequence({Value::ia5string(filter.attr()),
                                             Value::ia5string(filter.value())}));
    case Filter::Op::Substring:
      return Value::context(4,
                            Value::sequence({Value::ia5string(filter.attr()),
                                             Value::ia5string(filter.value())}));
    case Filter::Op::Present:
      return Value::context(5, Value::ia5string(filter.attr()));
    case Filter::Op::All:
      return Value::context(6, Value::null());
  }
  return Value::context(6, Value::null());
}

common::Result<directory::Filter> decode_filter(const asn1::Value& v,
                                                int depth) {
  using directory::Filter;
  if (depth > 32)
    return Error::make(kBadFilter, "filter nesting too deep");
  if (v.tag_class() != asn1::TagClass::ContextSpecific || !v.constructed() ||
      v.size() != 1)
    return Error::make(kBadFilter, "malformed filter node");
  const Value& body = v.child(0);
  switch (v.tag()) {
    case 0:
    case 1: {
      std::vector<Filter> kids;
      for (const Value& c : body.children()) {
        auto k = decode_filter(c, depth + 1);
        if (!k.ok()) return k.error();
        kids.push_back(std::move(k).take());
      }
      return v.tag() == 0 ? Filter::and_(std::move(kids))
                          : Filter::or_(std::move(kids));
    }
    case 2: {
      auto inner = decode_filter(body, depth + 1);
      if (!inner.ok()) return inner.error();
      return Filter::not_(std::move(inner).take());
    }
    case 3:
    case 4: {
      if (body.size() != 2)
        return Error::make(kBadFilter, "match filter arity");
      auto attr = body.child(0).as_string();
      auto value = body.child(1).as_string();
      if (!attr.ok()) return attr.error();
      if (!value.ok()) return value.error();
      return v.tag() == 3 ? Filter::equal(attr.value(), value.value())
                          : Filter::substring(attr.value(), value.value());
    }
    case 5: {
      auto attr = body.as_string();
      if (!attr.ok()) return attr.error();
      return Filter::present(attr.value());
    }
    case 6:
      return Filter::all();
    default:
      return Error::make(kBadFilter, "unknown filter tag");
  }
}

Op op_of(const Pdu& pdu) noexcept {
  return std::visit(
      [](const auto& p) -> Op {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, AssociateReq>) return Op::AssociateReq;
        else if constexpr (std::is_same_v<T, AssociateResp>) return Op::AssociateResp;
        else if constexpr (std::is_same_v<T, ReleaseReq>) return Op::ReleaseReq;
        else if constexpr (std::is_same_v<T, ReleaseResp>) return Op::ReleaseResp;
        else if constexpr (std::is_same_v<T, MovieCreateReq>) return Op::MovieCreateReq;
        else if constexpr (std::is_same_v<T, MovieCreateResp>) return Op::MovieCreateResp;
        else if constexpr (std::is_same_v<T, MovieDeleteReq>) return Op::MovieDeleteReq;
        else if constexpr (std::is_same_v<T, MovieDeleteResp>) return Op::MovieDeleteResp;
        else if constexpr (std::is_same_v<T, MovieSelectReq>) return Op::MovieSelectReq;
        else if constexpr (std::is_same_v<T, MovieSelectResp>) return Op::MovieSelectResp;
        else if constexpr (std::is_same_v<T, AttrQueryReq>) return Op::AttrQueryReq;
        else if constexpr (std::is_same_v<T, AttrQueryResp>) return Op::AttrQueryResp;
        else if constexpr (std::is_same_v<T, AttrModifyReq>) return Op::AttrModifyReq;
        else if constexpr (std::is_same_v<T, AttrModifyResp>) return Op::AttrModifyResp;
        else if constexpr (std::is_same_v<T, PlayReq>) return Op::PlayReq;
        else if constexpr (std::is_same_v<T, PlayResp>) return Op::PlayResp;
        else if constexpr (std::is_same_v<T, StopReq>) return Op::StopReq;
        else if constexpr (std::is_same_v<T, StopResp>) return Op::StopResp;
        else if constexpr (std::is_same_v<T, PauseReq>) return Op::PauseReq;
        else if constexpr (std::is_same_v<T, PauseResp>) return Op::PauseResp;
        else if constexpr (std::is_same_v<T, ResumeReq>) return Op::ResumeReq;
        else if constexpr (std::is_same_v<T, ResumeResp>) return Op::ResumeResp;
        else if constexpr (std::is_same_v<T, RecordReq>) return Op::RecordReq;
        else if constexpr (std::is_same_v<T, RecordResp>) return Op::RecordResp;
        else if constexpr (std::is_same_v<T, RecordStopReq>) return Op::RecordStopReq;
        else if constexpr (std::is_same_v<T, RecordStopResp>) return Op::RecordStopResp;
        else if constexpr (std::is_same_v<T, EquipListReq>) return Op::EquipListReq;
        else if constexpr (std::is_same_v<T, EquipListResp>) return Op::EquipListResp;
        else if constexpr (std::is_same_v<T, EquipControlReq>) return Op::EquipControlReq;
        else if constexpr (std::is_same_v<T, EquipControlResp>) return Op::EquipControlResp;
        else if constexpr (std::is_same_v<T, MovieSearchReq>) return Op::MovieSearchReq;
        else if constexpr (std::is_same_v<T, MovieSearchResp>) return Op::MovieSearchResp;
        else if constexpr (std::is_same_v<T, PositionInd>) return Op::PositionInd;
        else return Op::ErrorResp;
      },
      pdu);
}

Bytes encode(const Pdu& pdu) {
  const Op op = op_of(pdu);
  std::vector<Value> fields = std::visit(
      [](const auto& p) -> std::vector<Value> {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, AssociateReq>) {
          return {Value::ia5string(p.user), Value::integer(p.version)};
        } else if constexpr (std::is_same_v<T, AssociateResp>) {
          return {enc_result(p.result), Value::ia5string(p.diagnostic)};
        } else if constexpr (std::is_same_v<T, ReleaseReq> ||
                             std::is_same_v<T, ReleaseResp>) {
          return {};
        } else if constexpr (std::is_same_v<T, MovieCreateReq>) {
          return {Value::ia5string(p.title), enc_attrs(p.attrs)};
        } else if constexpr (std::is_same_v<T, MovieCreateResp>) {
          return {enc_result(p.result),
                  Value::integer(static_cast<std::int64_t>(p.movie_id))};
        } else if constexpr (std::is_same_v<T, MovieDeleteReq>) {
          return {Value::integer(static_cast<std::int64_t>(p.movie_id))};
        } else if constexpr (std::is_same_v<T, MovieDeleteResp>) {
          return {enc_result(p.result)};
        } else if constexpr (std::is_same_v<T, MovieSelectReq>) {
          return {Value::ia5string(p.title)};
        } else if constexpr (std::is_same_v<T, MovieSelectResp>) {
          return {enc_result(p.result),
                  Value::integer(static_cast<std::int64_t>(p.movie_id)),
                  enc_attrs(p.attrs)};
        } else if constexpr (std::is_same_v<T, AttrQueryReq>) {
          return {Value::integer(static_cast<std::int64_t>(p.movie_id)),
                  enc_names(p.names)};
        } else if constexpr (std::is_same_v<T, AttrQueryResp>) {
          return {enc_result(p.result), enc_attrs(p.attrs)};
        } else if constexpr (std::is_same_v<T, AttrModifyReq>) {
          return {Value::integer(static_cast<std::int64_t>(p.movie_id)),
                  enc_attrs(p.attrs)};
        } else if constexpr (std::is_same_v<T, AttrModifyResp>) {
          return {enc_result(p.result)};
        } else if constexpr (std::is_same_v<T, PlayReq>) {
          std::vector<Value> fields = {
              Value::integer(static_cast<std::int64_t>(p.movie_id)),
              Value::integer(static_cast<std::int64_t>(p.start_frame)),
              Value::ia5string(p.dest_host), Value::integer(p.dest_port)};
          // §6 QoS extension: OPTIONAL context-tagged fields.
          if (p.qos_max_delay_ms != 0)
            fields.push_back(Value::context(0, Value::integer(p.qos_max_delay_ms)));
          if (p.qos_max_jitter_ms != 0)
            fields.push_back(
                Value::context(1, Value::integer(p.qos_max_jitter_ms)));
          return fields;
        } else if constexpr (std::is_same_v<T, PlayResp>) {
          return {enc_result(p.result), Value::integer(p.stream_id)};
        } else if constexpr (std::is_same_v<T, StopReq>) {
          return {Value::integer(static_cast<std::int64_t>(p.movie_id))};
        } else if constexpr (std::is_same_v<T, StopResp>) {
          return {enc_result(p.result),
                  Value::integer(static_cast<std::int64_t>(p.position))};
        } else if constexpr (std::is_same_v<T, PauseReq>) {
          return {Value::integer(static_cast<std::int64_t>(p.movie_id))};
        } else if constexpr (std::is_same_v<T, PauseResp>) {
          return {enc_result(p.result)};
        } else if constexpr (std::is_same_v<T, ResumeReq>) {
          return {Value::integer(static_cast<std::int64_t>(p.movie_id))};
        } else if constexpr (std::is_same_v<T, ResumeResp>) {
          return {enc_result(p.result)};
        } else if constexpr (std::is_same_v<T, RecordReq>) {
          return {Value::ia5string(p.title), Value::integer(p.equipment_id),
                  enc_attrs(p.attrs)};
        } else if constexpr (std::is_same_v<T, RecordResp>) {
          return {enc_result(p.result),
                  Value::integer(static_cast<std::int64_t>(p.movie_id))};
        } else if constexpr (std::is_same_v<T, RecordStopReq>) {
          return {Value::integer(static_cast<std::int64_t>(p.movie_id))};
        } else if constexpr (std::is_same_v<T, RecordStopResp>) {
          return {enc_result(p.result),
                  Value::integer(static_cast<std::int64_t>(p.frames))};
        } else if constexpr (std::is_same_v<T, EquipListReq>) {
          return {Value::integer(p.kind)};
        } else if constexpr (std::is_same_v<T, EquipListResp>) {
          std::vector<Value> rows;
          for (const EquipItem& item : p.items)
            rows.push_back(Value::sequence(
                {Value::integer(item.id), Value::integer(item.kind),
                 Value::ia5string(item.name), Value::boolean(item.powered),
                 Value::ia5string(item.reserved_by)}));
          return {enc_result(p.result), Value::sequence(std::move(rows))};
        } else if constexpr (std::is_same_v<T, EquipControlReq>) {
          return {Value::integer(p.equipment_id), Value::integer(p.command),
                  Value::ia5string(p.param), Value::integer(p.value)};
        } else if constexpr (std::is_same_v<T, EquipControlResp>) {
          return {enc_result(p.result), Value::boolean(p.powered),
                  Value::integer(p.value), Value::ia5string(p.reserved_by)};
        } else if constexpr (std::is_same_v<T, MovieSearchReq>) {
          return {encode_filter(p.filter), Value::boolean(p.chained)};
        } else if constexpr (std::is_same_v<T, MovieSearchResp>) {
          std::vector<Value> hits;
          hits.reserve(p.hits.size());
          for (const SearchHit& hit : p.hits)
            hits.push_back(Value::sequence(
                {Value::integer(static_cast<std::int64_t>(hit.movie_id)),
                 enc_attrs(hit.attrs)}));
          return {enc_result(p.result), Value::sequence(std::move(hits))};
        } else if constexpr (std::is_same_v<T, PositionInd>) {
          return {Value::integer(static_cast<std::int64_t>(p.movie_id)),
                  Value::integer(static_cast<std::int64_t>(p.frame))};
        } else {  // ErrorResp
          return {enc_result(p.result), Value::ia5string(p.diagnostic)};
        }
      },
      pdu);
  return asn1::encode(
      Value::application(static_cast<std::uint32_t>(op), std::move(fields)));
}

common::Result<Op> peek_op(common::ByteSpan raw) {
  auto decoded = asn1::decode(raw);
  if (!decoded.ok()) return decoded.error();
  if (decoded.value().tag_class() != asn1::TagClass::Application)
    return Error::make(kUnknownOp, "not an MCAM PDU");
  return static_cast<Op>(decoded.value().tag());
}

common::Result<Pdu> decode(common::ByteSpan raw) {
  auto decoded = asn1::decode(raw);
  if (!decoded.ok()) return decoded.error();
  const Value& v = decoded.value();
  if (v.tag_class() != asn1::TagClass::Application || !v.constructed())
    return Error::make(kUnknownOp, "not an MCAM PDU: " + v.to_string());

  Fields f(v);
  switch (static_cast<Op>(v.tag())) {
    case Op::AssociateReq: {
      auto user = f.text();
      auto version = f.integer();
      if (!user.ok()) return user.error();
      if (!version.ok()) return version.error();
      return Pdu{AssociateReq{user.value(), static_cast<int>(version.value())}};
    }
    case Op::AssociateResp: {
      auto rc = f.result_code();
      auto diag = f.text();
      if (!rc.ok()) return rc.error();
      if (!diag.ok()) return diag.error();
      return Pdu{AssociateResp{rc.value(), diag.value()}};
    }
    case Op::ReleaseReq:
      return Pdu{ReleaseReq{}};
    case Op::ReleaseResp:
      return Pdu{ReleaseResp{}};
    case Op::MovieCreateReq: {
      auto title = f.text();
      auto attrs = f.attrs();
      if (!title.ok()) return title.error();
      if (!attrs.ok()) return attrs.error();
      return Pdu{MovieCreateReq{title.value(), attrs.value()}};
    }
    case Op::MovieCreateResp: {
      auto rc = f.result_code();
      auto id = f.integer();
      if (!rc.ok()) return rc.error();
      if (!id.ok()) return id.error();
      return Pdu{MovieCreateResp{rc.value(),
                                 static_cast<std::uint64_t>(id.value())}};
    }
    case Op::MovieDeleteReq: {
      auto id = f.integer();
      if (!id.ok()) return id.error();
      return Pdu{MovieDeleteReq{static_cast<std::uint64_t>(id.value())}};
    }
    case Op::MovieDeleteResp: {
      auto rc = f.result_code();
      if (!rc.ok()) return rc.error();
      return Pdu{MovieDeleteResp{rc.value()}};
    }
    case Op::MovieSelectReq: {
      auto title = f.text();
      if (!title.ok()) return title.error();
      return Pdu{MovieSelectReq{title.value()}};
    }
    case Op::MovieSelectResp: {
      auto rc = f.result_code();
      auto id = f.integer();
      auto attrs = f.attrs();
      if (!rc.ok()) return rc.error();
      if (!id.ok()) return id.error();
      if (!attrs.ok()) return attrs.error();
      return Pdu{MovieSelectResp{rc.value(),
                                 static_cast<std::uint64_t>(id.value()),
                                 attrs.value()}};
    }
    case Op::AttrQueryReq: {
      auto id = f.integer();
      auto names = f.names();
      if (!id.ok()) return id.error();
      if (!names.ok()) return names.error();
      return Pdu{AttrQueryReq{static_cast<std::uint64_t>(id.value()),
                              names.value()}};
    }
    case Op::AttrQueryResp: {
      auto rc = f.result_code();
      auto attrs = f.attrs();
      if (!rc.ok()) return rc.error();
      if (!attrs.ok()) return attrs.error();
      return Pdu{AttrQueryResp{rc.value(), attrs.value()}};
    }
    case Op::AttrModifyReq: {
      auto id = f.integer();
      auto attrs = f.attrs();
      if (!id.ok()) return id.error();
      if (!attrs.ok()) return attrs.error();
      return Pdu{AttrModifyReq{static_cast<std::uint64_t>(id.value()),
                               attrs.value()}};
    }
    case Op::AttrModifyResp: {
      auto rc = f.result_code();
      if (!rc.ok()) return rc.error();
      return Pdu{AttrModifyResp{rc.value()}};
    }
    case Op::PlayReq: {
      auto id = f.integer();
      auto start = f.integer();
      auto host = f.text();
      auto port = f.integer();
      if (!id.ok()) return id.error();
      if (!start.ok()) return start.error();
      if (!host.ok()) return host.error();
      if (!port.ok()) return port.error();
      PlayReq req{static_cast<std::uint64_t>(id.value()),
                  static_cast<std::uint64_t>(start.value()), host.value(),
                  static_cast<std::uint16_t>(port.value()), 0, 0};
      if (const Value* qd = v.find_context(0); qd && qd->size() == 1)
        req.qos_max_delay_ms = static_cast<std::uint32_t>(
            qd->child(0).as_int().value_or(0));
      if (const Value* qj = v.find_context(1); qj && qj->size() == 1)
        req.qos_max_jitter_ms = static_cast<std::uint32_t>(
            qj->child(0).as_int().value_or(0));
      return Pdu{req};
    }
    case Op::PlayResp: {
      auto rc = f.result_code();
      auto stream = f.integer();
      if (!rc.ok()) return rc.error();
      if (!stream.ok()) return stream.error();
      return Pdu{PlayResp{rc.value(),
                          static_cast<std::uint16_t>(stream.value())}};
    }
    case Op::StopReq: {
      auto id = f.integer();
      if (!id.ok()) return id.error();
      return Pdu{StopReq{static_cast<std::uint64_t>(id.value())}};
    }
    case Op::StopResp: {
      auto rc = f.result_code();
      auto pos = f.integer();
      if (!rc.ok()) return rc.error();
      if (!pos.ok()) return pos.error();
      return Pdu{StopResp{rc.value(), static_cast<std::uint64_t>(pos.value())}};
    }
    case Op::PauseReq: {
      auto id = f.integer();
      if (!id.ok()) return id.error();
      return Pdu{PauseReq{static_cast<std::uint64_t>(id.value())}};
    }
    case Op::PauseResp: {
      auto rc = f.result_code();
      if (!rc.ok()) return rc.error();
      return Pdu{PauseResp{rc.value()}};
    }
    case Op::ResumeReq: {
      auto id = f.integer();
      if (!id.ok()) return id.error();
      return Pdu{ResumeReq{static_cast<std::uint64_t>(id.value())}};
    }
    case Op::ResumeResp: {
      auto rc = f.result_code();
      if (!rc.ok()) return rc.error();
      return Pdu{ResumeResp{rc.value()}};
    }
    case Op::RecordReq: {
      auto title = f.text();
      auto equip = f.integer();
      auto attrs = f.attrs();
      if (!title.ok()) return title.error();
      if (!equip.ok()) return equip.error();
      if (!attrs.ok()) return attrs.error();
      return Pdu{RecordReq{title.value(),
                           static_cast<std::uint32_t>(equip.value()),
                           attrs.value()}};
    }
    case Op::RecordResp: {
      auto rc = f.result_code();
      auto id = f.integer();
      if (!rc.ok()) return rc.error();
      if (!id.ok()) return id.error();
      return Pdu{RecordResp{rc.value(),
                            static_cast<std::uint64_t>(id.value())}};
    }
    case Op::RecordStopReq: {
      auto id = f.integer();
      if (!id.ok()) return id.error();
      return Pdu{RecordStopReq{static_cast<std::uint64_t>(id.value())}};
    }
    case Op::RecordStopResp: {
      auto rc = f.result_code();
      auto frames = f.integer();
      if (!rc.ok()) return rc.error();
      if (!frames.ok()) return frames.error();
      return Pdu{RecordStopResp{rc.value(),
                                static_cast<std::uint64_t>(frames.value())}};
    }
    case Op::EquipListReq: {
      auto kind = f.integer();
      if (!kind.ok()) return kind.error();
      return Pdu{EquipListReq{static_cast<int>(kind.value())}};
    }
    case Op::EquipListResp: {
      auto rc = f.result_code();
      if (!rc.ok()) return rc.error();
      if (v.size() < 2) return Error::make(kBadPduBody, "missing item list");
      EquipListResp resp;
      resp.result = rc.value();
      for (const Value& row : v.child(1).children()) {
        if (row.size() != 5) return Error::make(kBadPduBody, "item arity");
        EquipItem item;
        auto id = row.child(0).as_int();
        auto kind = row.child(1).as_int();
        auto name = row.child(2).as_string();
        auto powered = row.child(3).as_bool();
        auto reserved = row.child(4).as_string();
        if (!id.ok() || !kind.ok() || !name.ok() || !powered.ok() ||
            !reserved.ok())
          return Error::make(kBadPduBody, "bad equipment item");
        item.id = static_cast<std::uint32_t>(id.value());
        item.kind = static_cast<int>(kind.value());
        item.name = name.value();
        item.powered = powered.value();
        item.reserved_by = reserved.value();
        resp.items.push_back(std::move(item));
      }
      return Pdu{std::move(resp)};
    }
    case Op::EquipControlReq: {
      auto id = f.integer();
      auto cmd = f.integer();
      auto param = f.text();
      auto value = f.integer();
      if (!id.ok()) return id.error();
      if (!cmd.ok()) return cmd.error();
      if (!param.ok()) return param.error();
      if (!value.ok()) return value.error();
      return Pdu{EquipControlReq{static_cast<std::uint32_t>(id.value()),
                                 static_cast<int>(cmd.value()), param.value(),
                                 static_cast<int>(value.value())}};
    }
    case Op::EquipControlResp: {
      auto rc = f.result_code();
      auto powered = f.boolean();
      auto value = f.integer();
      auto reserved = f.text();
      if (!rc.ok()) return rc.error();
      if (!powered.ok()) return powered.error();
      if (!value.ok()) return value.error();
      if (!reserved.ok()) return reserved.error();
      return Pdu{EquipControlResp{rc.value(), powered.value(),
                                  static_cast<int>(value.value()),
                                  reserved.value()}};
    }
    case Op::MovieSearchReq: {
      if (v.size() < 2) return Error::make(kBadPduBody, "short search req");
      auto filter = decode_filter(v.child(0));
      if (!filter.ok()) return filter.error();
      auto chained = v.child(1).as_bool();
      if (!chained.ok()) return chained.error();
      return Pdu{MovieSearchReq{std::move(filter).take(), chained.value()}};
    }
    case Op::MovieSearchResp: {
      auto rc = f.result_code();
      if (!rc.ok()) return rc.error();
      if (v.size() < 2) return Error::make(kBadPduBody, "short search resp");
      MovieSearchResp resp;
      resp.result = rc.value();
      for (const Value& row : v.child(1).children()) {
        if (row.size() != 2) return Error::make(kBadPduBody, "hit arity");
        auto id = row.child(0).as_int();
        if (!id.ok()) return id.error();
        SearchHit hit;
        hit.movie_id = static_cast<std::uint64_t>(id.value());
        for (const Value& attr_row : row.child(1).children()) {
          if (attr_row.size() != 2)
            return Error::make(kBadPduBody, "hit attr arity");
          auto name = attr_row.child(0).as_string();
          auto value = attr_row.child(1).as_string();
          if (!name.ok()) return name.error();
          if (!value.ok()) return value.error();
          hit.attrs.push_back(Attr{name.value(), value.value()});
        }
        resp.hits.push_back(std::move(hit));
      }
      return Pdu{std::move(resp)};
    }
    case Op::PositionInd: {
      auto id = f.integer();
      auto frame = f.integer();
      if (!id.ok()) return id.error();
      if (!frame.ok()) return frame.error();
      return Pdu{PositionInd{static_cast<std::uint64_t>(id.value()),
                             static_cast<std::uint64_t>(frame.value())}};
    }
    case Op::ErrorResp: {
      auto rc = f.result_code();
      auto diag = f.text();
      if (!rc.ok()) return rc.error();
      if (!diag.ok()) return diag.error();
      return Pdu{ErrorResp{rc.value(), diag.value()}};
    }
  }
  return Error::make(kUnknownOp,
                     "unknown MCAM operation tag " + std::to_string(v.tag()));
}

}  // namespace mcam::core
