// MCAM protocol data units.
//
// "All MCAM PDUs are specified in ASN.1 ... used to generate C++ data
// structures and to create encoding and decoding routines automatically"
// (§4.2, [9]). This header is the equivalent of that generated code: one C++
// struct per PDU, a variant over all of them, and BER encode/decode built on
// src/asn1. On the wire every PDU is
//
//   [APPLICATION op] IMPLICIT SEQUENCE { ...fields... }
//
// with `op` the operation tag below. Operation semantics follow the MCAM
// service of [19]: access (create/delete/select), management (query/modify
// attributes), control (play/record), association management, equipment
// control and stream positioning.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "asn1/value.hpp"
#include "common/bytes.hpp"
#include "common/result.hpp"
#include "directory/directory.hpp"

namespace mcam::core {

using common::Bytes;

/// Application-class tag of each PDU.
enum class Op : std::uint32_t {
  AssociateReq = 1,
  AssociateResp = 2,
  ReleaseReq = 3,
  ReleaseResp = 4,
  MovieCreateReq = 5,
  MovieCreateResp = 6,
  MovieDeleteReq = 7,
  MovieDeleteResp = 8,
  MovieSelectReq = 9,
  MovieSelectResp = 10,
  AttrQueryReq = 11,
  AttrQueryResp = 12,
  AttrModifyReq = 13,
  AttrModifyResp = 14,
  PlayReq = 15,
  PlayResp = 16,
  StopReq = 17,
  StopResp = 18,
  PauseReq = 19,
  PauseResp = 20,
  ResumeReq = 21,
  ResumeResp = 22,
  RecordReq = 23,
  RecordResp = 24,
  RecordStopReq = 25,
  RecordStopResp = 26,
  EquipListReq = 27,
  EquipListResp = 28,
  EquipControlReq = 29,
  EquipControlResp = 30,
  MovieSearchReq = 31,   // X.500-style filter search over the wire
  MovieSearchResp = 32,
  PositionInd = 14001,  // high-tag-number form exercised deliberately
  ErrorResp = 14002,
};

[[nodiscard]] const char* op_name(Op op) noexcept;

/// Result codes carried in every response PDU.
enum class ResultCode : int {
  Success = 0,
  NoSuchMovie = 1,
  DuplicateMovie = 2,
  NotSelected = 3,
  AccessDenied = 4,
  BadAttribute = 5,
  NoSuchEquipment = 6,
  EquipmentBusy = 7,
  ProtocolError = 8,
  NotPlaying = 9,
  AlreadyPlaying = 10,
  NotAssociated = 11,
  InternalError = 12,
};

[[nodiscard]] const char* result_name(ResultCode rc) noexcept;

/// name=value attribute pair (movie metadata on the wire).
struct Attr {
  std::string name;
  std::string value;
  bool operator==(const Attr&) const = default;
};

// ---- association management ------------------------------------------------

struct AssociateReq {
  std::string user;
  int version = 1;
  bool operator==(const AssociateReq&) const = default;
};
struct AssociateResp {
  ResultCode result = ResultCode::Success;
  std::string diagnostic;
  bool operator==(const AssociateResp&) const = default;
};
struct ReleaseReq {
  bool operator==(const ReleaseReq&) const = default;
};
struct ReleaseResp {
  bool operator==(const ReleaseResp&) const = default;
};

// ---- movie access (create / delete / select) -------------------------------

struct MovieCreateReq {
  std::string title;
  std::vector<Attr> attrs;
  bool operator==(const MovieCreateReq&) const = default;
};
struct MovieCreateResp {
  ResultCode result = ResultCode::Success;
  std::uint64_t movie_id = 0;
  bool operator==(const MovieCreateResp&) const = default;
};
struct MovieDeleteReq {
  std::uint64_t movie_id = 0;
  bool operator==(const MovieDeleteReq&) const = default;
};
struct MovieDeleteResp {
  ResultCode result = ResultCode::Success;
  bool operator==(const MovieDeleteResp&) const = default;
};
struct MovieSelectReq {
  std::string title;  // resolved through the movie directory
  bool operator==(const MovieSelectReq&) const = default;
};
struct MovieSelectResp {
  ResultCode result = ResultCode::Success;
  std::uint64_t movie_id = 0;
  std::vector<Attr> attrs;
  bool operator==(const MovieSelectResp&) const = default;
};

// ---- movie management (attributes) -----------------------------------------

struct AttrQueryReq {
  std::uint64_t movie_id = 0;
  std::vector<std::string> names;  // empty ⇒ all attributes
  bool operator==(const AttrQueryReq&) const = default;
};
struct AttrQueryResp {
  ResultCode result = ResultCode::Success;
  std::vector<Attr> attrs;
  bool operator==(const AttrQueryResp&) const = default;
};
struct AttrModifyReq {
  std::uint64_t movie_id = 0;
  std::vector<Attr> attrs;
  bool operator==(const AttrModifyReq&) const = default;
};
struct AttrModifyResp {
  ResultCode result = ResultCode::Success;
  bool operator==(const AttrModifyResp&) const = default;
};

// ---- movie control (playback / recording) ----------------------------------

struct PlayReq {
  std::uint64_t movie_id = 0;
  std::uint64_t start_frame = 0;
  std::string dest_host;  // client's SUA address for the CM stream
  std::uint16_t dest_port = 0;
  /// §6 QoS extension (OPTIONAL on the wire, 0 = unspecified): requested
  /// bounds the server validates before admitting the stream.
  std::uint32_t qos_max_delay_ms = 0;
  std::uint32_t qos_max_jitter_ms = 0;
  bool operator==(const PlayReq&) const = default;
};
struct PlayResp {
  ResultCode result = ResultCode::Success;
  std::uint16_t stream_id = 0;
  bool operator==(const PlayResp&) const = default;
};
struct StopReq {
  std::uint64_t movie_id = 0;
  bool operator==(const StopReq&) const = default;
};
struct StopResp {
  ResultCode result = ResultCode::Success;
  std::uint64_t position = 0;  // frame reached at stop time
  bool operator==(const StopResp&) const = default;
};
struct PauseReq {
  std::uint64_t movie_id = 0;
  bool operator==(const PauseReq&) const = default;
};
struct PauseResp {
  ResultCode result = ResultCode::Success;
  bool operator==(const PauseResp&) const = default;
};
struct ResumeReq {
  std::uint64_t movie_id = 0;
  bool operator==(const ResumeReq&) const = default;
};
struct ResumeResp {
  ResultCode result = ResultCode::Success;
  bool operator==(const ResumeResp&) const = default;
};
struct RecordReq {
  std::string title;
  std::uint32_t equipment_id = 0;  // recording source (camera/microphone)
  std::vector<Attr> attrs;
  bool operator==(const RecordReq&) const = default;
};
struct RecordResp {
  ResultCode result = ResultCode::Success;
  std::uint64_t movie_id = 0;
  bool operator==(const RecordResp&) const = default;
};
struct RecordStopReq {
  std::uint64_t movie_id = 0;
  bool operator==(const RecordStopReq&) const = default;
};
struct RecordStopResp {
  ResultCode result = ResultCode::Success;
  std::uint64_t frames = 0;
  bool operator==(const RecordStopResp&) const = default;
};

// ---- equipment control -------------------------------------------------------

struct EquipListReq {
  int kind = -1;  // -1 ⇒ all kinds; else equipment::Kind value
  bool operator==(const EquipListReq&) const = default;
};
struct EquipItem {
  std::uint32_t id = 0;
  int kind = 0;
  std::string name;
  bool powered = false;
  std::string reserved_by;
  bool operator==(const EquipItem&) const = default;
};
struct EquipListResp {
  ResultCode result = ResultCode::Success;
  std::vector<EquipItem> items;
  bool operator==(const EquipListResp&) const = default;
};
struct EquipControlReq {
  std::uint32_t equipment_id = 0;
  int command = 0;  // equipment::Command value
  std::string param;
  int value = 0;
  bool operator==(const EquipControlReq&) const = default;
};
struct EquipControlResp {
  ResultCode result = ResultCode::Success;
  bool powered = false;
  int value = 0;
  std::string reserved_by;
  bool operator==(const EquipControlResp&) const = default;
};

// ---- directory search --------------------------------------------------------

struct MovieSearchReq {
  directory::Filter filter;
  bool chained = true;  // consult peer DSAs (X.500 chained operation)
  bool operator==(const MovieSearchReq&) const = default;
};
struct SearchHit {
  std::uint64_t movie_id = 0;
  std::vector<Attr> attrs;
  bool operator==(const SearchHit&) const = default;
};
struct MovieSearchResp {
  ResultCode result = ResultCode::Success;
  std::vector<SearchHit> hits;
  bool operator==(const MovieSearchResp&) const = default;
};

// ---- notifications / errors --------------------------------------------------

struct PositionInd {
  std::uint64_t movie_id = 0;
  std::uint64_t frame = 0;
  bool operator==(const PositionInd&) const = default;
};
struct ErrorResp {
  ResultCode result = ResultCode::ProtocolError;
  std::string diagnostic;
  bool operator==(const ErrorResp&) const = default;
};

using Pdu = std::variant<
    AssociateReq, AssociateResp, ReleaseReq, ReleaseResp, MovieCreateReq,
    MovieCreateResp, MovieDeleteReq, MovieDeleteResp, MovieSelectReq,
    MovieSelectResp, AttrQueryReq, AttrQueryResp, AttrModifyReq,
    AttrModifyResp, PlayReq, PlayResp, StopReq, StopResp, PauseReq, PauseResp,
    ResumeReq, ResumeResp, RecordReq, RecordResp, RecordStopReq,
    RecordStopResp, EquipListReq, EquipListResp, EquipControlReq,
    EquipControlResp, MovieSearchReq, MovieSearchResp, PositionInd,
    ErrorResp>;

/// Operation tag of a PDU value.
[[nodiscard]] Op op_of(const Pdu& pdu) noexcept;

/// Encode to BER (the generated "encoding routine").
[[nodiscard]] Bytes encode(const Pdu& pdu);

/// Decode from BER. Unknown tags and malformed bodies yield errors, never
/// exceptions: peer input is untrusted.
[[nodiscard]] common::Result<Pdu> decode(common::ByteSpan raw);

/// Cheap operation peek: decodes only the outer tag.
[[nodiscard]] common::Result<Op> peek_op(common::ByteSpan raw);

enum McamCodecError : int {
  kUnknownOp = 6001,
  kBadPduBody = 6002,
  kBadFilter = 6003,
};

/// Wire form of a directory filter (CHOICE via context tags: [0] and,
/// [1] or, [2] not, [3] equality, [4] substring, [5] present, [6] all).
/// Exposed for tests and for any future standalone directory protocol.
[[nodiscard]] asn1::Value encode_filter(const directory::Filter& filter);
[[nodiscard]] common::Result<directory::Filter> decode_filter(
    const asn1::Value& v, int depth = 0);

}  // namespace mcam::core
