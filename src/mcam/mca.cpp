#include "mcam/mca.hpp"

namespace mcam::core {

using estelle::Interaction;
using estelle::kAnyState;
using osi::kPConConf;
using osi::kPConInd;
using osi::kPConRefuse;
using osi::kPConReq;
using osi::kPConResp;
using osi::kPDatInd;
using osi::kPDatReq;
using osi::kPAbortInd;
using osi::kPAbortReq;
using osi::kPRelConf;
using osi::kPRelInd;
using osi::kPRelReq;
using osi::kPRelResp;

namespace {
const common::SimTime kMcaCost = common::SimTime::from_us(80);

/// Deliver a PDU on an application channel (kind = operation tag).
void deliver(estelle::InteractionPoint& ip, const Pdu& pdu) {
  ip.output(Interaction(static_cast<int>(op_of(pdu)), encode(pdu)));
}
}  // namespace

// ---------------------------------------------------------------------------
// McaClientModule

McaClientModule::McaClientModule(std::string name)
    : Module(std::move(name), estelle::Attribute::Process) {
  app();
  service();
  define_transitions();
}

void McaClientModule::define_transitions() {
  auto& a = app();
  auto& d = service();

  // Association: AssociateReq rides the P-CONNECT user data.
  trans("m-associate")
      .from(kClosed)
      .when(a, static_cast<int>(Op::AssociateReq))
      .to(kConnecting)
      .cost(kMcaCost)
      .action([this](Module&, const Interaction* msg) {
        service().output(Interaction(kPConReq, msg->payload));
      });
  trans("m-assoc-conf")
      .from(kConnecting)
      .when(d, kPConConf)
      .to(kOpen)
      .cost(kMcaCost)
      .action([this](Module&, const Interaction* msg) {
        ++responses_;
        app().output(Interaction(static_cast<int>(Op::AssociateResp),
                                 msg->payload));
      });
  trans("m-assoc-refused")
      .from(kConnecting)
      .when(d, kPConRefuse)
      .to(kClosed)
      .cost(kMcaCost)
      .action([this](Module&, const Interaction* msg) {
        ++responses_;
        // The refusal user data carries an AssociateResp explaining why.
        app().output(Interaction(static_cast<int>(Op::AssociateResp),
                                 msg->payload));
      });

  // Release: ReleaseReq rides P-RELEASE.
  trans("m-release")
      .from(kOpen)
      .when(a, static_cast<int>(Op::ReleaseReq))
      .to(kReleasing)
      .priority(1)
      .cost(kMcaCost)
      .action([this](Module&, const Interaction* msg) {
        service().output(Interaction(kPRelReq, msg->payload));
      });
  trans("m-release-conf")
      .from(kReleasing)
      .when(d, kPRelConf)
      .to(kClosed)
      .cost(kMcaCost)
      .action([this](Module&, const Interaction*) {
        ++responses_;
        deliver(app(), Pdu{ReleaseResp{}});
      });

  // Requests: any other application PDU is forwarded over P-DATA.
  trans("m-request")
      .from(kOpen)
      .when(a)
      .priority(5)
      .cost(kMcaCost)
      .action([this](Module&, const Interaction* msg) {
        ++requests_;
        service().output(Interaction(kPDatReq, msg->payload));
      });

  // Responses / indications from the server.
  trans("m-response")
      .from(kOpen)
      .when(d, kPDatInd)
      .cost(kMcaCost)
      .action([this](Module&, const Interaction* msg) {
        auto op = peek_op(msg->payload);
        ++responses_;
        app().output(Interaction(
            op.ok() ? static_cast<int>(op.value())
                    : static_cast<int>(Op::ErrorResp),
            msg->payload));
      });

  // User abort: tear the association down immediately (A-ABORT downwards).
  trans("m-user-abort")
      .from(kAnyState)
      .when(a, kAppAbort)
      .to(kClosed)
      .priority(1)
      .cost(kMcaCost)
      .action([this](Module& m, const Interaction*) {
        if (m.state() != kClosed)
          service().output(Interaction(kPAbortReq));
      });

  // Provider abort: surface as an ErrorResp and fall back to kClosed.
  trans("m-abort")
      .from(kAnyState)
      .when(d, kPAbortInd)
      .to(kClosed)
      .priority(1)
      .cost(kMcaCost)
      .action([this](Module& m, const Interaction*) {
        if (m.state() != kClosed)
          deliver(app(), Pdu{ErrorResp{ResultCode::InternalError,
                                       "provider abort"}});
      });

  // Catch-alls keep the head-of-queue discipline live. App requests are only
  // discarded while kClosed (no association); in kConnecting they simply wait
  // at the head of the queue and flow once the association opens.
  trans("m-discard-app")
      .from(kClosed)
      .when(a)
      .priority(1000)
      .cost(kMcaCost)
      .action([](Module&, const Interaction*) {});
  trans("m-discard-service")
      .when(d)
      .priority(1000)
      .cost(kMcaCost)
      .action([](Module&, const Interaction*) {});
}

// ---------------------------------------------------------------------------
// McaServerModule

McaServerModule::McaServerModule(std::string name, McamServerCore& core)
    : Module(std::move(name), estelle::Attribute::Process), core_(core) {
  service();
  define_transitions();
}

void McaServerModule::define_transitions() {
  auto& d = service();

  trans("m-assoc-ind")
      .from(kIdle)
      .when(d, kPConInd)
      .cost(kMcaCost)
      .action([this](Module& m, const Interaction* msg) {
        auto request = decode(msg->payload);
        AssociateResp resp;
        bool accept = false;
        if (request.ok() &&
            std::holds_alternative<AssociateReq>(request.value())) {
          auto session =
              core_.associate(std::get<AssociateReq>(request.value()));
          if (session.ok()) {
            session_ = session.value();
            accept = true;
            resp = AssociateResp{ResultCode::Success, "welcome"};
          } else {
            resp = AssociateResp{
                static_cast<ResultCode>(session.error().code),
                session.error().message};
          }
        } else {
          resp = AssociateResp{ResultCode::ProtocolError,
                               "malformed AssociateReq"};
        }
        service().output(Interaction(kPConResp,
                                     asn1::Value::boolean(accept),
                                     encode(Pdu{std::move(resp)})));
        m.set_state(accept ? kOpen : kIdle);
      });

  trans("m-request")
      .from(kOpen)
      .when(d, kPDatInd)
      .cost(kMcaCost)
      .action([this](Module&, const Interaction* msg) {
        ++handled_;
        auto request = decode(msg->payload);
        Pdu response =
            request.ok()
                ? core_.handle(session_, request.value())
                : Pdu{ErrorResp{ResultCode::ProtocolError,
                                request.error().message}};
        service().output(Interaction(kPDatReq, encode(response)));
      });

  // §2's movie control includes position feedback during playback: when a
  // stream has advanced enough since its last report, push PositionInd PDUs
  // to the client (unsolicited, over P-DATA).
  trans("m-position")
      .from(kOpen)
      .priority(20)
      .cost(kMcaCost)
      .provided([this](Module&, const Interaction*) {
        return core_.has_position_updates(session_);
      })
      .action([this](Module&, const Interaction*) {
        for (const PositionInd& ind :
             core_.drain_position_updates(session_))
          service().output(Interaction(kPDatReq, encode(Pdu{ind})));
      });

  trans("m-release-ind")
      .from(kOpen)
      .when(d, kPRelInd)
      .to(kIdle)
      .cost(kMcaCost)
      .action([this](Module&, const Interaction*) {
        core_.release(session_);
        session_ = 0;
        service().output(Interaction(kPRelResp));
      });

  trans("m-abort")
      .from(kAnyState)
      .when(d, kPAbortInd)
      .to(kIdle)
      .priority(1)
      .cost(kMcaCost)
      .action([this](Module&, const Interaction*) {
        if (session_ != 0) core_.release(session_);
        session_ = 0;
      });

  trans("m-discard")
      .when(d)
      .priority(1000)
      .cost(kMcaCost)
      .action([](Module&, const Interaction*) {});
}

}  // namespace mcam::core
