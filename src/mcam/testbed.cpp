#include "mcam/testbed.hpp"

#include <stdexcept>

namespace mcam::core {

using estelle::Attribute;
using estelle::Module;

Testbed::Testbed(Config cfg)
    : cfg_(cfg), rng_(cfg.seed), spec_("mcam-testbed"), network_(cfg.seed) {
  core_ = std::make_unique<McamServerCore>(network_, cfg_.server_host);

  // One systemprocess module per machine, as in §4.1: "for the server and
  // for each client, we generate an Estelle systemprocess module" (the
  // machine name lives in the module name, standing in for the paper's
  // location comments).
  server_module_ = &spec_.root().create_child<Module>(
      "server@" + cfg_.server_host, Attribute::SystemProcess);
  connections_.resize(static_cast<std::size_t>(cfg_.clients));

  for (int c = 0; c < cfg_.clients; ++c) {
    Module& client_mod = spec_.root().create_child<Module>(
        "client@" + client_host(c), Attribute::SystemProcess);
    client_mod.set_uniprocessor_host(cfg_.uniprocessor_clients);
    client_modules_.push_back(&client_mod);

    for (int k = 0; k < cfg_.connections_per_client; ++k) {
      const std::string tag =
          "c" + std::to_string(c + 1) + "k" + std::to_string(k + 1);
      Connection conn;

      // Client side: application module + MCA (created by the client module,
      // mirroring the dynamic structure of §4.1).
      conn.app = &client_mod.create_child<AppModule>("app." + tag);
      conn.mca = &client_mod.create_child<McaClientModule>("mca." + tag);
      estelle::connect(conn.app->mca(), conn.mca->app());

      // Server side: one server entity (MCA) per connection (Fig. 2).
      conn.server_mca = &server_module_->create_child<McaServerModule>(
          "smca." + tag, *core_);

      // With ACSE enabled (Fig. 3), the MCA plugs into the ACSE upper
      // interface and ACSE plugs into the stack — the interfaces are
      // identical, so this is a pure insertion.
      estelle::InteractionPoint* client_plug = &conn.mca->service();
      estelle::InteractionPoint* server_plug = &conn.server_mca->service();
      if (cfg_.use_acse) {
        conn.client_acse =
            &client_mod.create_child<osi::AcseModule>("acse." + tag);
        conn.server_acse =
            &server_module_->create_child<osi::AcseModule>("acse." + tag);
        estelle::connect(*client_plug, conn.client_acse->upper());
        estelle::connect(*server_plug, conn.server_acse->upper());
        client_plug = &conn.client_acse->lower();
        server_plug = &conn.server_acse->lower();
      }

      if (cfg_.stack == StackKind::EstelleGenerated) {
        conn.client_stack = osi::build_estelle_stack(client_mod, "cstk." + tag);
        conn.server_stack =
            osi::build_estelle_stack(*server_module_, "sstk." + tag);
        estelle::connect(*client_plug, conn.client_stack.service());
        estelle::connect(*server_plug, conn.server_stack.service());
        osi::join_transports(*conn.client_stack.transport,
                             *conn.server_stack.transport, cfg_.control_loss,
                             cfg_.control_loss > 0 ? &rng_ : nullptr);
      } else {
        conn.client_iface =
            &client_mod.create_child<osi::isode::IsodeInterfaceModule>(
                "isode." + tag);
        conn.server_iface =
            &server_module_->create_child<osi::isode::IsodeInterfaceModule>(
                "isode." + tag);
        estelle::connect(*client_plug, conn.client_iface->upper());
        estelle::connect(*server_plug, conn.server_iface->upper());
        osi::isode::link(conn.client_iface->entity(),
                         conn.server_iface->entity());
      }
      connections_[static_cast<std::size_t>(c)].push_back(std::move(conn));
    }
  }

  spec_.initialize();
  executor_ = estelle::make_executor(spec_, cfg_.runtime);
}

Testbed::Connection& Testbed::connection(int client, int conn) {
  return connections_.at(static_cast<std::size_t>(client))
      .at(static_cast<std::size_t>(conn));
}

McamClient Testbed::client(int client, int conn) {
  return McamClient(*connection(client, conn).app, *executor_);
}

mtp::StreamUserAgent& Testbed::make_sua(int client, std::uint16_t port) {
  suas_.push_back(std::make_unique<mtp::StreamUserAgent>(
      network_, net::Address{client_host(client), port}));
  return *suas_.back();
}

void Testbed::advance_streams(common::SimTime dt, common::SimTime tick) {
  const common::SimTime end = network_.now() + dt;
  while (network_.now() < end) {
    common::SimTime next = network_.now() + tick;
    if (next > end) next = end;
    core_->step_streams();
    network_.run_until(next);
    for (auto& sua : suas_) sua->poll(network_.now());
  }
  core_->step_streams();
  for (auto& sua : suas_) sua->poll(network_.now());
}

}  // namespace mcam::core
