#include "mcam/server_core.hpp"

#include <algorithm>

namespace mcam::core {

using common::Error;
using common::Result;
using directory::MovieEntry;

McamServerCore::McamServerCore(net::SimNetwork& net, std::string host)
    : net_(net),
      host_(host),
      dsa_(host),
      eca_(host),
      spa_(net, std::move(host)) {}

Result<std::uint64_t> McamServerCore::associate(const AssociateReq& req) {
  if (req.user.empty())
    return Error::make(static_cast<int>(ResultCode::AccessDenied),
                       "empty user name");
  if (req.version != 1)
    return Error::make(static_cast<int>(ResultCode::ProtocolError),
                       "unsupported MCAM version");
  const std::uint64_t id = next_session_++;
  sessions_.emplace(id, Session{req.user, {}, {}, {}});
  return id;
}

void McamServerCore::release(std::uint64_t session) {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return;
  // Tear down any streams and recordings the association still holds.
  for (const auto& [movie, stream] : it->second.playing)
    (void)spa_.stop(stream);
  sessions_.erase(it);
}

McamServerCore::Session* McamServerCore::find(std::uint64_t session) {
  auto it = sessions_.find(session);
  return it == sessions_.end() ? nullptr : &it->second;
}

mtp::FrameSource McamServerCore::source_for(const MovieEntry& movie) const {
  mtp::FrameSource::Config cfg;
  cfg.fps = movie.fps;
  cfg.total_frames = std::max<std::uint64_t>(1, movie.duration_frames);
  if (movie.duration_frames > 0 && movie.size_bytes > 0)
    cfg.mean_frame_bytes = static_cast<std::size_t>(
        std::max<std::uint64_t>(256, movie.size_bytes / movie.duration_frames));
  cfg.stddev_bytes = cfg.mean_frame_bytes / 5;
  cfg.seed = movie.id * 7919 + 17;  // per-movie deterministic content
  return mtp::FrameSource(cfg);
}

bool McamServerCore::has_position_updates(std::uint64_t session) const {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return false;
  for (const auto& [movie, stream] : it->second.playing) {
    auto pos = spa_.position(stream);
    if (!pos.ok()) continue;
    auto reported = it->second.reported.find(movie);
    const std::uint64_t last =
        reported == it->second.reported.end() ? 0 : reported->second;
    if (pos.value() >= last + position_report_interval_) return true;
  }
  return false;
}

std::vector<PositionInd> McamServerCore::drain_position_updates(
    std::uint64_t session) {
  std::vector<PositionInd> out;
  Session* s = find(session);
  if (s == nullptr) return out;
  for (const auto& [movie, stream] : s->playing) {
    auto pos = spa_.position(stream);
    if (!pos.ok()) continue;
    std::uint64_t& last = s->reported[movie];
    if (pos.value() >= last + position_report_interval_) {
      last = pos.value();
      out.push_back(PositionInd{movie, pos.value()});
    }
  }
  return out;
}

Pdu McamServerCore::handle(std::uint64_t session, const Pdu& request) {
  Session* s = find(session);
  if (s == nullptr)
    return ErrorResp{ResultCode::NotAssociated, "no such association"};
  return handle_in_session(*s, request);
}

Pdu McamServerCore::handle_in_session(Session& s, const Pdu& request) {
  return std::visit(
      [&](const auto& req) -> Pdu {
        using T = std::decay_t<decltype(req)>;

        // ---- movie access ----
        if constexpr (std::is_same_v<T, MovieCreateReq>) {
          MovieEntry entry;
          entry.title = req.title;
          entry.location_host = host_;
          entry.rights = s.user;  // creator owns it until made public
          for (const Attr& a : req.attrs) {
            if (auto st = entry.set_attribute(a.name, a.value); !st.ok())
              return MovieCreateResp{ResultCode::BadAttribute, 0};
          }
          entry.title = req.title;  // title attr may not override the name
          auto id = dsa_.add(std::move(entry));
          if (!id.ok()) return MovieCreateResp{ResultCode::DuplicateMovie, 0};
          s.selected.insert(id.value());
          return MovieCreateResp{ResultCode::Success, id.value()};
        } else if constexpr (std::is_same_v<T, MovieDeleteReq>) {
          auto movie = dsa_.read(req.movie_id);
          if (!movie.ok()) return MovieDeleteResp{ResultCode::NoSuchMovie};
          if (movie.value().rights != "public" &&
              movie.value().rights != s.user)
            return MovieDeleteResp{ResultCode::AccessDenied};
          if (s.playing.contains(req.movie_id))
            return MovieDeleteResp{ResultCode::AlreadyPlaying};
          (void)dsa_.remove(req.movie_id);
          s.selected.erase(req.movie_id);
          return MovieDeleteResp{ResultCode::Success};
        } else if constexpr (std::is_same_v<T, MovieSelectReq>) {
          auto movie = dsa_.find_by_title(req.title);
          if (!movie.ok()) {
            // Consult peer DSAs (distributed directory).
            auto chained = dsa_.search_chained(
                directory::Filter::equal("title", req.title));
            if (chained.empty())
              return MovieSelectResp{ResultCode::NoSuchMovie, 0, {}};
            movie = chained.front();
          }
          const MovieEntry& e = movie.value();
          if (e.rights != "public" && e.rights != s.user)
            return MovieSelectResp{ResultCode::AccessDenied, 0, {}};
          s.selected.insert(e.id);
          std::vector<Attr> attrs;
          for (auto& [name, value] : e.attributes())
            attrs.push_back(Attr{name, value});
          return MovieSelectResp{ResultCode::Success, e.id, std::move(attrs)};
        }

        // ---- movie management ----
        else if constexpr (std::is_same_v<T, AttrQueryReq>) {
          auto movie = dsa_.read(req.movie_id);
          if (!movie.ok()) return AttrQueryResp{ResultCode::NoSuchMovie, {}};
          std::vector<Attr> attrs;
          if (req.names.empty()) {
            for (auto& [name, value] : movie.value().attributes())
              attrs.push_back(Attr{name, value});
          } else {
            for (const std::string& name : req.names) {
              auto v = movie.value().attribute(name);
              if (!v) return AttrQueryResp{ResultCode::BadAttribute, {}};
              attrs.push_back(Attr{name, *v});
            }
          }
          return AttrQueryResp{ResultCode::Success, std::move(attrs)};
        } else if constexpr (std::is_same_v<T, AttrModifyReq>) {
          auto movie = dsa_.read(req.movie_id);
          if (!movie.ok()) return AttrModifyResp{ResultCode::NoSuchMovie};
          if (movie.value().rights != "public" &&
              movie.value().rights != s.user)
            return AttrModifyResp{ResultCode::AccessDenied};
          for (const Attr& a : req.attrs) {
            if (auto st = dsa_.modify(req.movie_id, a.name, a.value); !st.ok())
              return AttrModifyResp{ResultCode::BadAttribute};
          }
          return AttrModifyResp{ResultCode::Success};
        }

        // ---- directory search over the wire ----
        else if constexpr (std::is_same_v<T, MovieSearchReq>) {
          MovieSearchResp resp;
          resp.result = ResultCode::Success;
          const auto matches = req.chained
                                   ? dsa_.search_chained(req.filter)
                                   : dsa_.search(req.filter);
          for (const MovieEntry& e : matches) {
            if (e.rights != "public" && e.rights != s.user)
              continue;  // invisible to other users
            SearchHit hit;
            hit.movie_id = e.id;
            for (auto& [name, value] : e.attributes())
              hit.attrs.push_back(Attr{name, value});
            resp.hits.push_back(std::move(hit));
          }
          return resp;
        }

        // ---- movie control: playback ----
        else if constexpr (std::is_same_v<T, PlayReq>) {
          // §6 QoS extension: validate requested bounds before admission.
          if (req.qos_max_delay_ms > 10'000 || req.qos_max_jitter_ms > 1'000)
            return PlayResp{ResultCode::BadAttribute, 0};
          if (!s.selected.contains(req.movie_id))
            return PlayResp{ResultCode::NotSelected, 0};
          if (s.playing.contains(req.movie_id))
            return PlayResp{ResultCode::AlreadyPlaying, 0};
          auto movie = dsa_.read(req.movie_id);
          if (!movie.ok()) return PlayResp{ResultCode::NoSuchMovie, 0};
          const std::uint16_t stream = spa_.open_stream(
              source_for(movie.value()),
              net::Address{req.dest_host, req.dest_port}, req.start_frame);
          s.playing.emplace(req.movie_id, stream);
          return PlayResp{ResultCode::Success, stream};
        } else if constexpr (std::is_same_v<T, StopReq>) {
          auto it = s.playing.find(req.movie_id);
          if (it == s.playing.end())
            return StopResp{ResultCode::NotPlaying, 0};
          auto pos = spa_.stop(it->second);
          s.playing.erase(it);
          return StopResp{ResultCode::Success, pos.value_or(0)};
        } else if constexpr (std::is_same_v<T, PauseReq>) {
          auto it = s.playing.find(req.movie_id);
          if (it == s.playing.end()) return PauseResp{ResultCode::NotPlaying};
          (void)spa_.pause(it->second);
          return PauseResp{ResultCode::Success};
        } else if constexpr (std::is_same_v<T, ResumeReq>) {
          auto it = s.playing.find(req.movie_id);
          if (it == s.playing.end()) return ResumeResp{ResultCode::NotPlaying};
          (void)spa_.resume(it->second);
          return ResumeResp{ResultCode::Success};
        }

        // ---- movie control: recording ----
        else if constexpr (std::is_same_v<T, RecordReq>) {
          auto device = eca_.status(req.equipment_id);
          if (!device.ok()) return RecordResp{ResultCode::NoSuchEquipment, 0};
          if (device.value().kind != equipment::Kind::Camera &&
              device.value().kind != equipment::Kind::Microphone)
            return RecordResp{ResultCode::NoSuchEquipment, 0};
          auto reserve = eca_.execute(req.equipment_id,
                                      equipment::Command::Reserve, s.user);
          if (!reserve.ok()) return RecordResp{ResultCode::EquipmentBusy, 0};
          (void)eca_.execute(req.equipment_id, equipment::Command::PowerOn,
                             s.user);
          MovieEntry entry;
          entry.title = req.title;
          entry.location_host = host_;
          entry.rights = s.user;
          entry.duration_frames = 0;
          for (const Attr& a : req.attrs)
            (void)entry.set_attribute(a.name, a.value);
          entry.title = req.title;
          auto id = dsa_.add(std::move(entry));
          if (!id.ok()) {
            (void)eca_.execute(req.equipment_id, equipment::Command::Release,
                               s.user);
            return RecordResp{ResultCode::DuplicateMovie, 0};
          }
          s.recording.emplace(id.value(), net_.now());
          s.selected.insert(id.value());
          return RecordResp{ResultCode::Success, id.value()};
        } else if constexpr (std::is_same_v<T, RecordStopReq>) {
          auto it = s.recording.find(req.movie_id);
          if (it == s.recording.end())
            return RecordStopResp{ResultCode::NotPlaying, 0};
          auto movie = dsa_.read(req.movie_id);
          const double fps = movie.ok() ? movie.value().fps : 25.0;
          const double elapsed_s = (net_.now() - it->second).seconds();
          const auto frames =
              static_cast<std::uint64_t>(std::max(0.0, elapsed_s * fps));
          (void)dsa_.modify(req.movie_id, "duration", std::to_string(frames));
          s.recording.erase(it);
          return RecordStopResp{ResultCode::Success, frames};
        }

        // ---- equipment ----
        else if constexpr (std::is_same_v<T, EquipListReq>) {
          std::optional<equipment::Kind> kind;
          if (req.kind >= 0) kind = static_cast<equipment::Kind>(req.kind);
          EquipListResp resp;
          resp.result = ResultCode::Success;
          for (const equipment::Device& d : eca_.list(kind))
            resp.items.push_back(EquipItem{d.id, static_cast<int>(d.kind),
                                           d.name, d.powered, d.reserved_by});
          return resp;
        } else if constexpr (std::is_same_v<T, EquipControlReq>) {
          auto result = eca_.execute(
              req.equipment_id, static_cast<equipment::Command>(req.command),
              s.user, req.param, req.value);
          if (!result.ok()) {
            const int code = result.error().code;
            ResultCode rc = ResultCode::InternalError;
            if (code == equipment::kNoSuchDevice)
              rc = ResultCode::NoSuchEquipment;
            else if (code == equipment::kDeviceBusy ||
                     code == equipment::kNotReserved)
              rc = ResultCode::EquipmentBusy;
            else if (code == equipment::kBadParameter ||
                     code == equipment::kPoweredOff)
              rc = ResultCode::BadAttribute;
            return EquipControlResp{rc, false, 0, {}};
          }
          const equipment::CommandResult& r = result.value();
          return EquipControlResp{ResultCode::Success, r.powered,
                                  r.param_value, r.reserved_by};
        }

        // ---- anything else (responses, indications) is a protocol error ----
        else {
          return ErrorResp{ResultCode::ProtocolError,
                           std::string("unexpected PDU ") +
                               op_name(op_of(Pdu{req}))};
        }
      },
      request);
}

}  // namespace mcam::core
