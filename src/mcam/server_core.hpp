// MCAM server core: the service logic behind the server-side MCA.
//
// One McamServerCore per server host ("the KSR1" in Fig. 2). It owns the
// movie directory DSA, the Stream Provider Agent, the Equipment Control
// Agent and the per-association session state, and maps every MCAM request
// PDU to a response PDU. The Estelle server MCA modules (mca.hpp) are thin:
// they decode/encode and delegate here — mirroring the paper's split between
// the Estelle-specified MCA and the externally-implemented DUA/SPA/ECA
// bodies (Fig. 3).
#pragma once

#include <map>
#include <set>
#include <string>

#include "directory/directory.hpp"
#include "equipment/equipment.hpp"
#include "mcam/pdus.hpp"
#include "mtp/sps.hpp"

namespace mcam::core {

class McamServerCore {
 public:
  /// `net` provides the CM-stream substrate and the clock used for
  /// recording durations; `host` is this server's network name.
  McamServerCore(net::SimNetwork& net, std::string host);

  // ---- wiring ----
  [[nodiscard]] directory::Dsa& directory() noexcept { return dsa_; }
  [[nodiscard]] equipment::EquipmentControlAgent& eca() noexcept {
    return eca_;
  }
  [[nodiscard]] mtp::StreamProviderAgent& spa() noexcept { return spa_; }
  [[nodiscard]] const std::string& host() const noexcept { return host_; }

  // ---- association lifecycle (driven by the server MCA) ----
  /// Returns the new session id; rejects empty user names.
  common::Result<std::uint64_t> associate(const AssociateReq& req);
  void release(std::uint64_t session);
  [[nodiscard]] std::size_t active_sessions() const noexcept {
    return sessions_.size();
  }

  /// Handle one request PDU in the context of `session`; always produces a
  /// response PDU (ErrorResp for malformed/unexpected requests).
  Pdu handle(std::uint64_t session, const Pdu& request);

  /// Position notification support: true when some stream of `session` has
  /// advanced at least `position_report_interval` frames since its last
  /// report; drain returns the pending PositionInd PDUs and resets marks.
  [[nodiscard]] bool has_position_updates(std::uint64_t session) const;
  std::vector<PositionInd> drain_position_updates(std::uint64_t session);
  void set_position_report_interval(std::uint64_t frames) noexcept {
    position_report_interval_ = frames;
  }

  /// Advance all outgoing streams to the network's current time.
  void step_streams() { spa_.step(net_.now()); }

 private:
  struct Session {
    std::string user;
    std::set<std::uint64_t> selected;            // movie ids
    std::map<std::uint64_t, std::uint16_t> playing;  // movie → stream
    std::map<std::uint64_t, common::SimTime> recording;  // movie → start
    std::map<std::uint64_t, std::uint64_t> reported;  // movie → last frame
  };

  Session* find(std::uint64_t session);
  Pdu handle_in_session(Session& s, const Pdu& request);
  [[nodiscard]] mtp::FrameSource source_for(
      const directory::MovieEntry& movie) const;

  net::SimNetwork& net_;
  std::string host_;
  directory::Dsa dsa_;
  equipment::EquipmentControlAgent eca_;
  mtp::StreamProviderAgent spa_;
  std::uint64_t next_session_ = 1;
  std::uint64_t position_report_interval_ = 25;  // one report per second @25fps
  std::map<std::uint64_t, Session> sessions_;
};

}  // namespace mcam::core
