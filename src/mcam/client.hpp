// McamClient — the public client-side API of the library.
//
// Wraps the application interaction point of a client MCA with a synchronous
// request/response facade: each call builds the request PDU, injects it into
// the Estelle world, pumps the scheduler until the matching response PDU
// arrives on the application channel, and returns the decoded result. This
// plays the role of the paper's X-interface application module (§4.2) in a
// scriptable form (DESIGN.md §2).
#pragma once

#include <deque>
#include <optional>

#include "estelle/executor.hpp"
#include "estelle/module.hpp"
#include "mcam/pdus.hpp"

namespace mcam::core {

/// The application module: owns the channel endpoint towards the client
/// MCA. It has no transitions — the McamClient facade reads its inbox
/// directly, as the paper's X-window application displays arriving messages.
class AppModule : public estelle::Module {
 public:
  explicit AppModule(std::string name)
      : Module(std::move(name), estelle::Attribute::Process) {
    ip("M");
  }
  estelle::InteractionPoint& mca() { return ip("M"); }
};

enum ClientError : int {
  kNoResponse = 7001,
  kUnexpectedResponse = 7002,
  kRequestFailed = 7003,  // response carried a non-success ResultCode
};

class McamClient {
 public:
  /// Works with any Executor backend; the facade only pumps rounds and
  /// reads the application channel.
  McamClient(AppModule& app, estelle::Executor& executor)
      : app_(app), executor_(executor) {}

  // ---- association ----
  common::Result<AssociateResp> associate(const std::string& user);
  common::Result<ReleaseResp> release();
  /// User abort: immediate teardown (no confirmation), A-ABORT to the peer.
  void abort();

  // ---- movie access ----
  common::Result<MovieCreateResp> create_movie(
      const std::string& title, const std::vector<Attr>& attrs = {});
  common::Result<MovieDeleteResp> delete_movie(std::uint64_t movie_id);
  common::Result<MovieSelectResp> select_movie(const std::string& title);

  /// X.500-style directory search over the protocol (MovieSearch PDUs).
  common::Result<MovieSearchResp> search_movies(
      const directory::Filter& filter, bool chained = true);

  // ---- movie management ----
  common::Result<AttrQueryResp> query_attributes(
      std::uint64_t movie_id, const std::vector<std::string>& names = {});
  common::Result<AttrModifyResp> modify_attributes(
      std::uint64_t movie_id, const std::vector<Attr>& attrs);

  // ---- movie control ----
  common::Result<PlayResp> play(std::uint64_t movie_id,
                                const std::string& dest_host,
                                std::uint16_t dest_port,
                                std::uint64_t start_frame = 0,
                                std::uint32_t qos_max_delay_ms = 0,
                                std::uint32_t qos_max_jitter_ms = 0);
  common::Result<StopResp> stop(std::uint64_t movie_id);
  common::Result<PauseResp> pause(std::uint64_t movie_id);
  common::Result<ResumeResp> resume(std::uint64_t movie_id);
  common::Result<RecordResp> record(const std::string& title,
                                    std::uint32_t equipment_id,
                                    const std::vector<Attr>& attrs = {});
  common::Result<RecordStopResp> record_stop(std::uint64_t movie_id);

  // ---- equipment ----
  common::Result<EquipListResp> list_equipment(int kind = -1);
  common::Result<EquipControlResp> control_equipment(
      std::uint32_t equipment_id, int command, const std::string& param = {},
      int value = 0);

  /// Raw exchange: send `request`, wait for a response of operation
  /// `expect` (ErrorResp is accepted and surfaced as an error).
  common::Result<Pdu> call(const Pdu& request, Op expect);

  /// Unsolicited PositionInd notifications received between calls.
  [[nodiscard]] const std::deque<PositionInd>& notifications() const noexcept {
    return notifications_;
  }
  void clear_notifications() noexcept { notifications_.clear(); }

  /// Pump the control world and collect any pending unsolicited
  /// notifications without issuing a request. Returns how many arrived.
  std::size_t poll_notifications();

 private:
  template <typename T>
  common::Result<T> typed_call(const Pdu& request, Op expect);

  AppModule& app_;
  estelle::Executor& executor_;
  std::deque<PositionInd> notifications_;
};

}  // namespace mcam::core
