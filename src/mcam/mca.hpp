// Movie Control Agents — the MCAM protocol machines (Fig. 3).
//
// The MCA is "the only module completely written in Estelle" in the paper's
// MCAM entity; DUA/SPA/ECA bodies are external (here: McamServerCore and the
// src/directory, src/mtp, src/equipment libraries). Two roles:
//
//   McaClientModule — sits between the application interaction point and a
//   presentation-service IP (either the generated PresentationModule or the
//   hand-coded IsodeInterfaceModule — byte-compatible by construction).
//   Association piggybacks the AssociateReq/Resp PDUs on P-CONNECT user
//   data; requests/responses ride P-DATA; release rides P-RELEASE.
//
//   McaServerModule — one per server entity (per connection, Fig. 2);
//   decodes request PDUs and delegates to the shared McamServerCore.
//
// Application-side channel contract: interactions carry kind =
// static_cast<int>(Op) and payload = the encoded PDU.
#pragma once

#include "estelle/module.hpp"
#include "mcam/pdus.hpp"
#include "mcam/server_core.hpp"
#include "osi/service.hpp"

namespace mcam::core {

/// Application-channel interaction kind for a user abort (no PDU — aborts
/// are a local service request, mirrored to the peer by the lower layers).
inline constexpr int kAppAbort = -2;

class McaClientModule : public estelle::Module {
 public:
  enum State { kClosed = 0, kConnecting, kOpen, kReleasing };

  explicit McaClientModule(std::string name);

  /// Application interface (connect to the application module).
  estelle::InteractionPoint& app() { return ip("A"); }
  /// Presentation-service interface (connect to the control stack's
  /// service IP).
  estelle::InteractionPoint& service() { return ip("D"); }

  [[nodiscard]] std::uint64_t requests_forwarded() const noexcept {
    return requests_;
  }
  [[nodiscard]] std::uint64_t responses_delivered() const noexcept {
    return responses_;
  }

 private:
  void define_transitions();
  std::uint64_t requests_ = 0;
  std::uint64_t responses_ = 0;
};

class McaServerModule : public estelle::Module {
 public:
  enum State { kIdle = 0, kOpen };

  McaServerModule(std::string name, McamServerCore& core);

  estelle::InteractionPoint& service() { return ip("D"); }

  [[nodiscard]] std::uint64_t session_id() const noexcept { return session_; }
  [[nodiscard]] std::uint64_t requests_handled() const noexcept {
    return handled_;
  }

 private:
  void define_transitions();

  McamServerCore& core_;
  std::uint64_t session_ = 0;
  std::uint64_t handled_ = 0;
};

}  // namespace mcam::core
