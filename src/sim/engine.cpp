#include "sim/engine.hpp"

#include <limits>
#include <stdexcept>

namespace mcam::sim {

Engine::Engine(int processors, CostModel model) : model_(model) {
  if (processors < 1) throw std::invalid_argument("need >= 1 processor");
  procs_.resize(static_cast<std::size_t>(processors));
}

int Engine::add_task(std::string name, int processor) {
  if (processor < 0) {
    processor = rr_next_;
    rr_next_ = (rr_next_ + 1) % static_cast<int>(procs_.size());
  }
  if (processor >= static_cast<int>(procs_.size()))
    throw std::out_of_range("processor index out of range");
  tasks_.push_back(Task{std::move(name), processor, {}});
  return static_cast<int>(tasks_.size()) - 1;
}

void Engine::post_external(int task, SimTime cost,
                           std::function<void(Context&)> fn, SimTime ready) {
  WorkItem item;
  item.ready = ready;
  item.cost = cost;
  item.fn = std::move(fn);
  item.cross_task = false;
  item.seq = next_seq_++;
  tasks_.at(static_cast<std::size_t>(task)).queue.push_back(std::move(item));
}

void Engine::post_internal(int from_task, int to_task, SimTime ready,
                           SimTime cost, std::function<void(Context&)> fn) {
  WorkItem item;
  item.ready = ready;
  item.cost = cost;
  item.fn = std::move(fn);
  item.cross_task = from_task != to_task;
  item.seq = next_seq_++;
  tasks_.at(static_cast<std::size_t>(to_task)).queue.push_back(std::move(item));
}

void Context::post(int task, SimTime cost, std::function<void(Context&)> fn,
                   SimTime delay) {
  engine_.post_internal(task_, task, now_ + delay, cost, std::move(fn));
}

RunStats Engine::run() {
  for (;;) {
    // Pick the runnable work item with the earliest feasible start time.
    // Feasible start = max(item ready time, processor free time). Determinism:
    // ties broken by (start, ready, task id, FIFO seq). Items within one task
    // execute strictly in FIFO order (a task is a sequential thread).
    int best_task = -1;
    SimTime best_start{std::numeric_limits<std::int64_t>::max()};
    SimTime best_ready{};
    std::uint64_t best_seq = 0;
    std::size_t best_index = 0;
    for (int t = 0; t < static_cast<int>(tasks_.size()); ++t) {
      Task& task = tasks_[static_cast<std::size_t>(t)];
      if (task.queue.empty()) continue;
      // Within a task, run the earliest-ready item (seq breaks ties) — a
      // sequential thread blocked on a timer still serves newly arrived
      // messages first.
      std::size_t head_idx = 0;
      for (std::size_t i = 1; i < task.queue.size(); ++i) {
        const WorkItem& a = task.queue[i];
        const WorkItem& b = task.queue[head_idx];
        if (a.ready < b.ready || (a.ready == b.ready && a.seq < b.seq))
          head_idx = i;
      }
      const WorkItem& head = task.queue[head_idx];
      const Processor& proc = procs_[static_cast<std::size_t>(task.processor)];
      const SimTime start =
          head.ready > proc.free_at ? head.ready : proc.free_at;
      const bool better =
          start < best_start ||
          (start == best_start &&
           (best_task == -1 || head.ready < best_ready ||
            (head.ready == best_ready && head.seq < best_seq)));
      if (better) {
        best_task = t;
        best_index = head_idx;
        best_start = start;
        best_ready = head.ready;
        best_seq = head.seq;
      }
    }
    if (best_task < 0) break;  // quiescent

    Task& task = tasks_[static_cast<std::size_t>(best_task)];
    Processor& proc = procs_[static_cast<std::size_t>(task.processor)];
    WorkItem item = std::move(task.queue[best_index]);
    task.queue.erase(task.queue.begin() +
                     static_cast<std::ptrdiff_t>(best_index));

    SimTime t = best_start;

    // Context switch if this processor last ran a different task.
    if (proc.last_task != best_task && proc.last_task != -1) {
      t += model_.ctx_switch;
      stats_.switch_time += model_.ctx_switch;
      ++stats_.switches;
    }
    proc.last_task = best_task;

    // Inter-task message hand-off (lock + queue) overhead.
    if (item.cross_task) {
      t += model_.inter_task_msg;
      stats_.msg_time += model_.inter_task_msg;
      ++stats_.cross_task_msgs;
    }

    // Scheduler bookkeeping: either serialized through the central scheduler
    // resource or charged locally.
    if (model_.centralized_scheduler) {
      const SimTime sched_start =
          t > scheduler_free_at_ ? t : scheduler_free_at_;
      scheduler_free_at_ = sched_start + model_.sched_per_item;
      t = scheduler_free_at_;
    } else {
      t += model_.sched_per_item;
    }
    stats_.sched_time += model_.sched_per_item;

    // Execute the payload.
    const SimTime end = t + item.cost;
    stats_.busy += item.cost;
    ++stats_.items;
    proc.free_at = end;
    if (end > stats_.makespan) stats_.makespan = end;

    if (item.fn) {
      Context ctx(*this, best_task, end);
      item.fn(ctx);
    }
  }
  return stats_;
}

}  // namespace mcam::sim
