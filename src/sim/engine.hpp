// Deterministic simulated multiprocessor.
//
// The paper measures protocol speedup on a 32-processor KSR1 under OSF/1.
// That hardware is unavailable, so (per DESIGN.md §2) we reproduce the
// *shape* of its results with a discrete-event model:
//
//   * P processors, each serving the tasks (≈ OSF/1 threads) mapped to it;
//   * tasks execute work items (≈ Estelle transition firings) sequentially,
//     in ready-time order;
//   * a context-switch penalty is charged when a processor switches between
//     tasks — this is the "synchronization loss" §5.2 attributes to
//     thread-per-module mapping when modules outnumber processors;
//   * an inter-task message penalty (lock + queue hand-off) is charged when
//     a work item was posted by a different task;
//   * scheduler overhead is charged per work item, either through a single
//     serialized scheduler resource (the centralized Estelle scheduler whose
//     runtime share §5.2 measured at up to 80%) or on the executing
//     processor itself (our decentralized scheduler).
//
// The engine is generic: the Estelle runtime maps module firings onto it,
// and the ASN.1/MTP benches use it directly.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/clock.hpp"

namespace mcam::sim {

using common::SimTime;

/// Cost parameters. Magnitudes follow early-90s multiprocessor folklore:
/// tens of microseconds for a context switch, microseconds for lock
/// hand-off, a few microseconds of scheduler bookkeeping per transition.
struct CostModel {
  SimTime ctx_switch = SimTime::from_us(25);
  SimTime inter_task_msg = SimTime::from_us(5);
  SimTime sched_per_item = SimTime::from_us(3);
  /// true: scheduler bookkeeping serializes through one shared resource
  /// (the classic centralized Estelle scheduler); false: charged on the
  /// executing processor (decentralized scheduler, parallelizes).
  bool centralized_scheduler = false;
};

/// Aggregate counters reported by Engine::run().
struct RunStats {
  SimTime makespan{};
  SimTime busy{};          // sum of work-item payload time over processors
  SimTime sched_time{};    // scheduler bookkeeping time
  SimTime switch_time{};   // context-switch time
  SimTime msg_time{};      // inter-task message overhead
  std::uint64_t items = 0;
  std::uint64_t switches = 0;
  std::uint64_t cross_task_msgs = 0;

  /// Fraction of total processor-time spent in the scheduler — the §5.2
  /// "runtime percentage of the scheduler" metric.
  [[nodiscard]] double scheduler_share() const noexcept {
    const double total =
        static_cast<double>(busy.ns + sched_time.ns + switch_time.ns + msg_time.ns);
    return total == 0.0 ? 0.0 : static_cast<double>(sched_time.ns) / total;
  }
};

class Engine;

/// Handed to a work item's body; lets it post follow-up work.
class Context {
 public:
  Context(Engine& engine, int current_task, SimTime now)
      : engine_(engine), task_(current_task), now_(now) {}

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] int current_task() const noexcept { return task_; }

  /// Post a work item to `task`, becoming ready `delay` after now. Posting
  /// to a different task incurs the inter-task message cost.
  void post(int task, SimTime cost, std::function<void(Context&)> fn,
            SimTime delay = {});

 private:
  Engine& engine_;
  int task_;
  SimTime now_;
};

/// Discrete-event multiprocessor engine. Deterministic: ties are broken by
/// (ready time, task id, FIFO order).
class Engine {
 public:
  explicit Engine(int processors, CostModel model = {});

  /// Create a task bound to `processor` (-1 ⇒ round-robin assignment).
  int add_task(std::string name, int processor = -1);

  [[nodiscard]] int processors() const noexcept {
    return static_cast<int>(procs_.size());
  }
  [[nodiscard]] int task_count() const noexcept {
    return static_cast<int>(tasks_.size());
  }
  [[nodiscard]] int processor_of(int task) const {
    return tasks_.at(static_cast<std::size_t>(task)).processor;
  }

  /// Post initial work from outside any task (no message cost charged).
  void post_external(int task, SimTime cost, std::function<void(Context&)> fn,
                     SimTime ready = {});

  /// Run to quiescence; returns cumulative statistics (across run() calls —
  /// round-based schedulers call run() repeatedly and read the final total).
  RunStats run();

  [[nodiscard]] const RunStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = RunStats{}; }

 private:
  friend class Context;

  struct WorkItem {
    SimTime ready{};
    SimTime cost{};
    std::function<void(Context&)> fn;
    bool cross_task = false;
    std::uint64_t seq = 0;  // FIFO tie-break
  };

  struct Task {
    std::string name;
    int processor = 0;
    std::deque<WorkItem> queue;
  };

  struct Processor {
    SimTime free_at{};
    int last_task = -1;
  };

  void post_internal(int from_task, int to_task, SimTime ready, SimTime cost,
                     std::function<void(Context&)> fn);

  CostModel model_;
  std::vector<Task> tasks_;
  std::vector<Processor> procs_;
  SimTime scheduler_free_at_{};  // centralized-scheduler resource
  std::uint64_t next_seq_ = 0;
  int rr_next_ = 0;
  RunStats stats_;
};

}  // namespace mcam::sim
