// Equipment Control System (ECS): the ECA and EUA agents of Fig. 1.
//
// "The equipment control service enables the user to control CM equipment
// attached to remote computer systems, e.g. speakers, cameras, and
// microphones" (§2). The Equipment Control Agent (ECA) owns the registry of
// devices on one host and executes commands against them; the Equipment
// User Agent (EUA) is the client-side facade. Devices are simulated state
// machines (power, parameters, reservation), which is all the MCAM protocol
// observes of real 1994 hardware.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"

namespace mcam::equipment {

enum class Kind { Camera, Microphone, Speaker, Display };

[[nodiscard]] const char* kind_name(Kind k) noexcept;

/// One piece of CM equipment.
struct Device {
  std::uint32_t id = 0;
  Kind kind = Kind::Camera;
  std::string name;
  bool powered = false;
  /// Device parameters, e.g. "volume", "gain", "brightness"; range 0..100.
  std::map<std::string, int> params;
  /// Empty = free; otherwise the reserving user.
  std::string reserved_by;
};

enum EcsError : int {
  kNoSuchDevice = 5001,
  kDeviceBusy = 5002,
  kNotReserved = 5003,
  kBadParameter = 5004,
  kPoweredOff = 5005,
};

/// Commands the MCAM EquipmentControl PDU can carry.
enum class Command : int {
  PowerOn = 0,
  PowerOff = 1,
  SetParam = 2,
  GetStatus = 3,
  Reserve = 4,
  Release = 5,
};

struct CommandResult {
  bool powered = false;
  int param_value = 0;
  std::string reserved_by;
};

/// Equipment Control Agent: device registry + command execution on one host.
class EquipmentControlAgent {
 public:
  explicit EquipmentControlAgent(std::string host);

  std::uint32_t register_device(Kind kind, std::string name,
                                std::map<std::string, int> params = {});

  [[nodiscard]] common::Result<Device> status(std::uint32_t id) const;
  [[nodiscard]] std::vector<Device> list(
      std::optional<Kind> kind = std::nullopt) const;

  /// Execute a command on behalf of `user`. Reservation discipline:
  /// PowerOn/PowerOff/SetParam require the device to be free or reserved by
  /// `user`; Reserve fails when held by someone else; Release requires
  /// ownership.
  common::Result<CommandResult> execute(std::uint32_t id, Command cmd,
                                        const std::string& user,
                                        const std::string& param_name = {},
                                        int param_value = 0);

  [[nodiscard]] const std::string& host() const noexcept { return host_; }
  [[nodiscard]] std::size_t device_count() const noexcept {
    return devices_.size();
  }

 private:
  std::string host_;
  std::uint32_t next_id_ = 1;
  std::map<std::uint32_t, Device> devices_;
};

/// Equipment User Agent: client facade bound to one ECA (local or remote —
/// in the paper the binding crosses the network; here the ECA reference is
/// delivered by the MCAM server through the control connection).
class EquipmentUserAgent {
 public:
  EquipmentUserAgent(EquipmentControlAgent& eca, std::string user)
      : eca_(eca), user_(std::move(user)) {}

  common::Result<CommandResult> power_on(std::uint32_t id) {
    return eca_.execute(id, Command::PowerOn, user_);
  }
  common::Result<CommandResult> power_off(std::uint32_t id) {
    return eca_.execute(id, Command::PowerOff, user_);
  }
  common::Result<CommandResult> set_param(std::uint32_t id,
                                          const std::string& name, int value) {
    return eca_.execute(id, Command::SetParam, user_, name, value);
  }
  common::Result<CommandResult> reserve(std::uint32_t id) {
    return eca_.execute(id, Command::Reserve, user_);
  }
  common::Result<CommandResult> release(std::uint32_t id) {
    return eca_.execute(id, Command::Release, user_);
  }
  [[nodiscard]] common::Result<Device> status(std::uint32_t id) const {
    return eca_.status(id);
  }

 private:
  EquipmentControlAgent& eca_;
  std::string user_;
};

}  // namespace mcam::equipment
