#include "equipment/equipment.hpp"

namespace mcam::equipment {

using common::Error;
using common::Result;

const char* kind_name(Kind k) noexcept {
  switch (k) {
    case Kind::Camera:
      return "camera";
    case Kind::Microphone:
      return "microphone";
    case Kind::Speaker:
      return "speaker";
    case Kind::Display:
      return "display";
  }
  return "?";
}

EquipmentControlAgent::EquipmentControlAgent(std::string host)
    : host_(std::move(host)) {}

std::uint32_t EquipmentControlAgent::register_device(
    Kind kind, std::string name, std::map<std::string, int> params) {
  Device d;
  d.id = next_id_++;
  d.kind = kind;
  d.name = std::move(name);
  d.params = std::move(params);
  const std::uint32_t id = d.id;
  devices_.emplace(id, std::move(d));
  return id;
}

Result<Device> EquipmentControlAgent::status(std::uint32_t id) const {
  auto it = devices_.find(id);
  if (it == devices_.end())
    return Error::make(kNoSuchDevice, "no device " + std::to_string(id));
  return it->second;
}

std::vector<Device> EquipmentControlAgent::list(
    std::optional<Kind> kind) const {
  std::vector<Device> out;
  for (const auto& [id, d] : devices_)
    if (!kind || d.kind == *kind) out.push_back(d);
  return out;
}

Result<CommandResult> EquipmentControlAgent::execute(
    std::uint32_t id, Command cmd, const std::string& user,
    const std::string& param_name, int param_value) {
  auto it = devices_.find(id);
  if (it == devices_.end())
    return Error::make(kNoSuchDevice, "no device " + std::to_string(id));
  Device& d = it->second;

  const bool may_touch = d.reserved_by.empty() || d.reserved_by == user;

  CommandResult result;
  switch (cmd) {
    case Command::PowerOn:
      if (!may_touch) return Error::make(kDeviceBusy, "device reserved");
      d.powered = true;
      break;
    case Command::PowerOff:
      if (!may_touch) return Error::make(kDeviceBusy, "device reserved");
      d.powered = false;
      break;
    case Command::SetParam: {
      if (!may_touch) return Error::make(kDeviceBusy, "device reserved");
      if (!d.powered)
        return Error::make(kPoweredOff, "device is powered off");
      if (param_value < 0 || param_value > 100)
        return Error::make(kBadParameter, "parameter out of range 0..100");
      auto param = d.params.find(param_name);
      if (param == d.params.end())
        return Error::make(kBadParameter, "no parameter " + param_name);
      param->second = param_value;
      result.param_value = param_value;
      break;
    }
    case Command::GetStatus:
      if (!param_name.empty()) {
        auto param = d.params.find(param_name);
        if (param == d.params.end())
          return Error::make(kBadParameter, "no parameter " + param_name);
        result.param_value = param->second;
      }
      break;
    case Command::Reserve:
      if (!d.reserved_by.empty() && d.reserved_by != user)
        return Error::make(kDeviceBusy, "reserved by " + d.reserved_by);
      d.reserved_by = user;
      break;
    case Command::Release:
      if (d.reserved_by != user)
        return Error::make(kNotReserved, "not reserved by " + user);
      d.reserved_by.clear();
      break;
  }
  result.powered = d.powered;
  result.reserved_by = d.reserved_by;
  return result;
}

}  // namespace mcam::equipment
