// Session layer: ISO 8327 kernel functional unit as an Estelle module.
//
// The paper generates the session layer from an Estelle specification
// supplied by the University of Bern (§4.1 fn.2). This module implements the
// kernel subset the experiments exercise: connection establishment
// (CN/AC/RF), transparent data transfer (DT), orderly release (FN/DN) and
// user abort (AB), over the transport service of transport.hpp.
//
// SPDU format (simplified ISO 8327 encoding):
//   [ si:1 ][ length:2 ][ user-information... ]
// where si is the SPDU identifier octet from the standard.
#pragma once

#include "estelle/module.hpp"
#include "osi/service.hpp"

namespace mcam::osi {

/// SPDU identifier octets (ISO 8327 §8).
enum class Spdu : std::uint8_t {
  CN = 13,  // CONNECT
  AC = 14,  // ACCEPT
  RF = 12,  // REFUSE
  DT = 1,   // DATA TRANSFER
  FN = 9,   // FINISH
  DN = 10,  // DISCONNECT
  AB = 25,  // ABORT
};

class SessionModule : public estelle::Module {
 public:
  enum State {
    kIdle = 0,
    kWaitTCon,   // initiator: transport connect pending
    kWaitAC,     // initiator: CN sent, waiting AC/RF
    kConnInd,    // responder: CN delivered up, waiting S-CON response
    kOpen,
    kRelSent,    // FN sent, waiting DN
    kRelInd,     // FN delivered up, waiting S-REL response
  };

  struct Config {
    common::SimTime per_spdu_cost = common::SimTime::from_us(40);
  };

  explicit SessionModule(std::string name);
  SessionModule(std::string name, Config cfg);

  /// Upper interface (SS user = presentation): kinds SsKind.
  estelle::InteractionPoint& upper() { return ip("U"); }
  /// Lower interface: connect to TransportModule::upper().
  estelle::InteractionPoint& lower() { return ip("D"); }

  [[nodiscard]] std::uint64_t spdus_sent() const noexcept { return sent_; }

 private:
  void define_transitions();
  void send_spdu(Spdu type, const common::Bytes& user_data);

  Config cfg_;
  std::uint64_t sent_ = 0;
  common::Bytes pending_connect_;  // user data held until transport is up
};

common::Bytes build_spdu(Spdu type, const common::Bytes& user_data);
struct SpduView {
  Spdu type;
  common::Bytes user_data;
};
SpduView parse_spdu(const common::Bytes& raw);

}  // namespace mcam::osi
