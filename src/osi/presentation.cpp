#include "osi/presentation.hpp"

#include "asn1/ber.hpp"

namespace mcam::osi {

using asn1::Value;
using common::Bytes;
using estelle::Interaction;
using estelle::kAnyState;

namespace {
// Outer PPDU discriminator tags.
constexpr std::uint32_t kTagCp = 1;
constexpr std::uint32_t kTagCpa = 2;
constexpr std::uint32_t kTagCpr = 3;
constexpr std::uint32_t kTagTd = 4;

Bytes wrap(std::uint32_t tag, Value body) {
  return asn1::encode(Value::context(tag, std::move(body)));
}
}  // namespace

Bytes build_cp(int context_id, const Bytes& user_data) {
  Value ctx = Value::sequence({
      Value::integer(context_id),
      Value::oid(oids::kMcamAbstractSyntax),
      Value::sequence({Value::oid(oids::kBerTransferSyntax)}),
  });
  Value body = Value::sequence({
      Value::sequence({std::move(ctx)}),
      Value::context(0, Value::octet_string(user_data)),
  });
  return wrap(kTagCp, std::move(body));
}

Bytes build_cpa(int context_id, const Bytes& user_data) {
  Value result = Value::sequence({
      Value::integer(context_id),
      Value::enumerated(0),  // acceptance
      Value::oid(oids::kBerTransferSyntax),
  });
  Value body = Value::sequence({
      Value::sequence({std::move(result)}),
      Value::context(0, Value::octet_string(user_data)),
  });
  return wrap(kTagCpa, std::move(body));
}

Bytes build_cpr(int reason, const Bytes& user_data) {
  Value body = Value::sequence({
      Value::enumerated(reason),
      Value::context(0, Value::octet_string(user_data)),
  });
  return wrap(kTagCpr, std::move(body));
}

Bytes build_td(int context_id, const Bytes& user_data) {
  Value body = Value::sequence({
      Value::integer(context_id),
      Value::octet_string(user_data),
  });
  return wrap(kTagTd, std::move(body));
}

common::Result<PpduView> parse_ppdu(const Bytes& raw) {
  auto decoded = asn1::decode(raw);
  if (!decoded.ok()) return decoded.error();
  const Value& outer = decoded.value();
  if (outer.tag_class() != asn1::TagClass::ContextSpecific ||
      !outer.constructed() || outer.size() != 1)
    return common::Error::make(asn1::kBadTag, "malformed PPDU wrapper");
  const Value& body = outer.child(0);

  PpduView v;
  auto user_data_of = [&](const Value& seq) -> Bytes {
    if (const Value* ud = seq.find_context(0); ud && ud->size() == 1)
      return ud->child(0).as_octets().value_or({});
    return {};
  };

  switch (outer.tag()) {
    case kTagCp: {
      v.type = PpduView::Type::CP;
      if (body.size() >= 1 && body.child(0).size() >= 1 &&
          body.child(0).child(0).size() >= 1)
        v.context_id = static_cast<int>(
            body.child(0).child(0).child(0).as_int().value_or(0));
      v.user_data = user_data_of(body);
      return v;
    }
    case kTagCpa: {
      v.type = PpduView::Type::CPA;
      if (body.size() >= 1 && body.child(0).size() >= 1 &&
          body.child(0).child(0).size() >= 1)
        v.context_id = static_cast<int>(
            body.child(0).child(0).child(0).as_int().value_or(0));
      v.user_data = user_data_of(body);
      return v;
    }
    case kTagCpr: {
      v.type = PpduView::Type::CPR;
      if (body.size() >= 1)
        v.reason = static_cast<int>(body.child(0).as_int().value_or(0));
      v.user_data = user_data_of(body);
      return v;
    }
    case kTagTd: {
      v.type = PpduView::Type::TD;
      if (body.size() >= 2) {
        v.context_id = static_cast<int>(body.child(0).as_int().value_or(0));
        v.user_data = body.child(1).as_octets().value_or({});
      }
      return v;
    }
    default:
      return common::Error::make(asn1::kBadTag, "unknown PPDU tag");
  }
}

PresentationModule::PresentationModule(std::string name)
    : PresentationModule(std::move(name), Config{}) {}

PresentationModule::PresentationModule(std::string name, Config cfg)
    : Module(std::move(name), estelle::Attribute::Process), cfg_(cfg) {
  upper();
  lower();
  define_transitions();
}

void PresentationModule::define_transitions() {
  auto& u = upper();
  auto& d = lower();
  const auto cost = cfg_.per_ppdu_cost;

  auto ppdu_type_is = [](PpduView::Type want) {
    return [want](Module&, const Interaction* msg) {
      if (msg == nullptr) return false;
      auto v = parse_ppdu(msg->payload);
      return v.ok() && v.value().type == want;
    };
  };

  // --- initiator ---
  trans("p-con-req")
      .from(kIdle)
      .when(u, kPConReq)
      .to(kWaitConf)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        ++sent_;
        lower().output(Interaction(
            kSConReq, build_cp(cfg_.context_id, msg->payload)));
      });
  trans("p-cpa-recv")
      .from(kWaitConf)
      .when(d, kSConConf)
      .provided(ppdu_type_is(PpduView::Type::CPA))
      .to(kOpen)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        auto v = parse_ppdu(msg->payload);
        transfer_syntax_ = oids::kBerTransferSyntax;
        upper().output(Interaction(kPConConf, std::move(v.value().user_data)));
      });
  trans("p-cpr-recv")
      .from(kWaitConf)
      .when(d, kSConConf)
      .provided(ppdu_type_is(PpduView::Type::CPR))
      .to(kIdle)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        auto v = parse_ppdu(msg->payload);
        upper().output(
            Interaction(kPConRefuse, std::move(v.value().user_data)));
      });
  trans("p-refused")
      .from(kWaitConf)
      .when(d, kSConRefuse)
      .to(kIdle)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        // Session-level refusal; user data may still carry a CPR.
        auto v = parse_ppdu(msg->payload);
        upper().output(Interaction(
            kPConRefuse, v.ok() ? std::move(v.value().user_data) : Bytes{}));
      });

  // --- responder ---
  trans("p-cp-recv")
      .from(kIdle)
      .when(d, kSConInd)
      .provided(ppdu_type_is(PpduView::Type::CP))
      .to(kConnInd)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        auto v = parse_ppdu(msg->payload);
        upper().output(Interaction(kPConInd, std::move(v.value().user_data)));
      });
  trans("p-con-resp")
      .from(kConnInd)
      .when(u, kPConResp)
      .cost(cost)
      .action([this](Module& m, const Interaction* msg) {
        const bool accept = msg->value.as_bool().value_or(true);
        ++sent_;
        Interaction out(kSConResp, asn1::Value::boolean(accept),
                        accept ? build_cpa(cfg_.context_id, msg->payload)
                               : build_cpr(/*reason=*/2, msg->payload));
        lower().output(std::move(out));
        if (accept) transfer_syntax_ = oids::kBerTransferSyntax;
        m.set_state(accept ? kOpen : kIdle);
      });

  // --- data transfer ---
  trans("p-dat-req")
      .from(kOpen)
      .when(u, kPDatReq)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        ++sent_;
        lower().output(
            Interaction(kSDatReq, build_td(cfg_.context_id, msg->payload)));
      });
  trans("p-td-recv")
      .from(kOpen)
      .when(d, kSDatInd)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        auto v = parse_ppdu(msg->payload);
        if (v.ok() && v.value().type == PpduView::Type::TD)
          upper().output(Interaction(kPDatInd, std::move(v.value().user_data)));
      });

  // --- release: presentation kernel is pass-through over S-RELEASE ---
  trans("p-rel-req")
      .from(kOpen)
      .when(u, kPRelReq)
      .to(kRelSent)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        lower().output(Interaction(kSRelReq, msg->payload));
      });
  trans("p-rel-ind")
      .from(kOpen)
      .when(d, kSRelInd)
      .to(kRelInd)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        upper().output(Interaction(kPRelInd, msg->payload));
      });
  trans("p-rel-resp")
      .from(kRelInd)
      .when(u, kPRelResp)
      .to(kIdle)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        lower().output(Interaction(kSRelResp, msg->payload));
      });
  trans("p-rel-conf")
      .from(kRelSent)
      .when(d, kSRelConf)
      .to(kIdle)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        upper().output(Interaction(kPRelConf, msg->payload));
      });

  // --- abort: user-initiated (P-U-ABORT) and provider indications ---
  trans("p-abort-req")
      .from(kAnyState)
      .when(u, kPAbortReq)
      .to(kIdle)
      .priority(1)
      .cost(cost)
      .action([this](Module&, const Interaction*) {
        lower().output(Interaction(kSAbortReq));
      });
  trans("p-abort-ind")
      .from(kAnyState)
      .when(d, kSAbortInd)
      .to(kIdle)
      .priority(1)
      .cost(cost)
      .action([this](Module& m, const Interaction*) {
        if (m.state() != kIdle)
          upper().output(Interaction(kPAbortInd));
      });

  // --- catch-alls ---
  trans("p-discard-upper")
      .when(u)
      .priority(1000)
      .cost(cost)
      .action([](Module&, const Interaction*) {});
  trans("p-discard-lower")
      .when(d)
      .priority(1000)
      .cost(cost)
      .action([](Module&, const Interaction*) {});
}

}  // namespace mcam::osi
