// Control-stack assembly helpers.
//
// The paper's experimental setup (Fig. 2) runs MCAM over two alternative
// control stacks:
//   1. Estelle-generated presentation + session over a transport pipe
//      (build_estelle_stack / join_transports), and
//   2. the hand-coded ISODE path (osi/isode.hpp), reached through an
//      IsodeInterfaceModule.
// Both expose the same presentation-service IP upward, so the MCAM module
// is byte-compatible with either — exactly the conformance-testing trick
// the paper uses the two stacks for (§3).
#pragma once

#include "common/rng.hpp"
#include "estelle/module.hpp"
#include "osi/presentation.hpp"
#include "osi/session.hpp"
#include "osi/transport.hpp"

namespace mcam::osi {

/// One endpoint's generated control stack (modules owned by `parent`).
struct EstelleStack {
  TransportModule* transport = nullptr;
  SessionModule* session = nullptr;
  PresentationModule* presentation = nullptr;

  /// The presentation-service access point for the layer above (MCAM).
  [[nodiscard]] estelle::InteractionPoint& service() const {
    return presentation->upper();
  }
};

/// Create transport+session+presentation as process children of `parent`
/// and wire the inter-layer channels. The caller connects service() upward
/// and joins the two transports.
EstelleStack build_estelle_stack(estelle::Module& parent,
                                 const std::string& prefix);

/// Connect two transport entities' network IPs with a channel, optionally
/// lossy in both directions (loss applied independently per direction).
void join_transports(TransportModule& a, TransportModule& b, double loss = 0.0,
                     common::Rng* rng = nullptr);

}  // namespace mcam::osi
