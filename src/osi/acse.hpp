// ACSE — Association Control Service Element (X.217/X.227 subset).
//
// Fig. 3 of the paper shows ACSE between the MCA and the presentation
// interface (it ships with ISODE). This module provides it for both control
// stacks: it is *transparent* — the upper interface speaks the same
// presentation-service kinds as PresentationModule::upper(), so the MCA is
// unchanged — but connection user data is wrapped in AARQ/AARE/RLRQ/RLRE
// APDUs carrying an application-context name, and associations whose
// context does not match the responder's are refused at the ACSE level
// before the MCAM layer ever sees them.
//
// APDUs (BER):
//   AARQ ::= [APPLICATION 0] SEQUENCE { version INTEGER,
//            application-context OID, user-information [30] OCTET STRING }
//   AARE ::= [APPLICATION 1] SEQUENCE { result ENUMERATED,
//            application-context OID, user-information [30] OCTET STRING }
//   RLRQ ::= [APPLICATION 2] SEQUENCE { reason INTEGER,
//            user-information [30] OCTET STRING }
//   RLRE ::= [APPLICATION 3] SEQUENCE { reason INTEGER,
//            user-information [30] OCTET STRING }
//   ABRT ::= [APPLICATION 4] SEQUENCE { source ENUMERATED }
#pragma once

#include <vector>

#include "estelle/module.hpp"
#include "osi/service.hpp"

namespace mcam::osi {

namespace oids {
/// MCAM application context {1 3 9999 2}.
inline const std::vector<std::uint32_t> kMcamApplicationContext = {1, 3, 9999,
                                                                   2};
}  // namespace oids

enum class AcseResult : int {
  Accepted = 0,
  RejectedPermanent = 1,
  RejectedContextMismatch = 2,
};

struct AcseApdu {
  enum class Type { AARQ, AARE, RLRQ, RLRE, ABRT } type;
  int version = 1;
  AcseResult result = AcseResult::Accepted;
  std::vector<std::uint32_t> context;
  int reason = 0;
  common::Bytes user_information;
};

common::Bytes build_aarq(const std::vector<std::uint32_t>& context,
                         const common::Bytes& user_information);
common::Bytes build_aare(AcseResult result,
                         const std::vector<std::uint32_t>& context,
                         const common::Bytes& user_information);
common::Bytes build_rlrq(int reason, const common::Bytes& user_information);
common::Bytes build_rlre(int reason, const common::Bytes& user_information);
common::Bytes build_abrt(int source);
common::Result<AcseApdu> parse_acse(const common::Bytes& raw);

/// The ACSE protocol machine. upper(): presentation-service kinds (so an
/// MCA or another ACSE user plugs in unchanged); lower(): connect to
/// PresentationModule::upper() or IsodeInterfaceModule::upper().
class AcseModule : public estelle::Module {
 public:
  enum State { kIdle = 0, kAssocPending, kAssocInd, kOpen, kRelPending,
               kRelInd };

  struct Config {
    std::vector<std::uint32_t> context = oids::kMcamApplicationContext;
    common::SimTime per_apdu_cost = common::SimTime::from_us(50);
  };

  explicit AcseModule(std::string name);
  AcseModule(std::string name, Config cfg);

  estelle::InteractionPoint& upper() { return ip("U"); }
  estelle::InteractionPoint& lower() { return ip("D"); }

  [[nodiscard]] std::uint64_t apdus_sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t context_rejections() const noexcept {
    return context_rejections_;
  }

 private:
  void define_transitions();

  Config cfg_;
  std::uint64_t sent_ = 0;
  std::uint64_t context_rejections_ = 0;
};

}  // namespace mcam::osi
