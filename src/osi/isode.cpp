#include "osi/isode.hpp"

#include <stdexcept>

namespace mcam::osi::isode {

using common::Bytes;
using estelle::Interaction;

void link(IsodeEntity& a, IsodeEntity& b) {
  if (a.peer_ != nullptr || b.peer_ != nullptr)
    throw std::logic_error("IsodeEntity already linked");
  a.peer_ = &b;
  b.peer_ = &a;
}

void IsodeEntity::indicate(Event e, Bytes user_data) {
  inbox_.push_back(Indication{e, std::move(user_data)});
}

void IsodeEntity::send_spdu(Spdu type, const Bytes& ppdu) {
  if (peer_ == nullptr) throw std::logic_error("IsodeEntity not linked");
  ++pdus_processed_;
  peer_->receive_tsdu(build_spdu(type, ppdu));
}

void IsodeEntity::p_connect_request(Bytes user_data) {
  if (state_ != State::kIdle)
    throw std::logic_error("p_connect_request: not idle");
  state_ = State::kWaitConf;
  send_spdu(Spdu::CN, build_cp(/*context_id=*/1, user_data));
}

void IsodeEntity::p_connect_response(bool accept, Bytes user_data) {
  if (state_ != State::kConnInd)
    throw std::logic_error("p_connect_response: no connection indication");
  if (accept) {
    state_ = State::kOpen;
    send_spdu(Spdu::AC, build_cpa(1, user_data));
  } else {
    state_ = State::kIdle;
    send_spdu(Spdu::RF, build_cpr(/*reason=*/2, user_data));
  }
}

void IsodeEntity::p_data_request(Bytes user_data) {
  if (state_ != State::kOpen) throw std::logic_error("p_data_request: closed");
  send_spdu(Spdu::DT, build_td(1, user_data));
}

void IsodeEntity::p_release_request(Bytes user_data) {
  if (state_ != State::kOpen)
    throw std::logic_error("p_release_request: closed");
  state_ = State::kRelSent;
  send_spdu(Spdu::FN, user_data);
}

void IsodeEntity::p_release_response(Bytes user_data) {
  if (state_ != State::kRelInd)
    throw std::logic_error("p_release_response: no release indication");
  state_ = State::kIdle;
  send_spdu(Spdu::DN, user_data);
}

void IsodeEntity::p_abort_request() {
  if (peer_ != nullptr) send_spdu(Spdu::AB, {});
  state_ = State::kIdle;
}

std::optional<Indication> IsodeEntity::next_indication() {
  if (inbox_.empty()) return std::nullopt;
  Indication ind = std::move(inbox_.front());
  inbox_.pop_front();
  return ind;
}

void IsodeEntity::receive_tsdu(const Bytes& tsdu) {
  ++pdus_processed_;
  const SpduView spdu = parse_spdu(tsdu);
  switch (spdu.type) {
    case Spdu::CN: {
      auto ppdu = parse_ppdu(spdu.user_data);
      state_ = State::kConnInd;
      indicate(Event::ConnectInd,
               ppdu.ok() ? std::move(ppdu.value().user_data) : Bytes{});
      break;
    }
    case Spdu::AC: {
      auto ppdu = parse_ppdu(spdu.user_data);
      state_ = State::kOpen;
      indicate(Event::ConnectConf,
               ppdu.ok() ? std::move(ppdu.value().user_data) : Bytes{});
      break;
    }
    case Spdu::RF: {
      auto ppdu = parse_ppdu(spdu.user_data);
      state_ = State::kIdle;
      indicate(Event::ConnectRefused,
               ppdu.ok() ? std::move(ppdu.value().user_data) : Bytes{});
      break;
    }
    case Spdu::DT: {
      auto ppdu = parse_ppdu(spdu.user_data);
      if (ppdu.ok() && ppdu.value().type == PpduView::Type::TD)
        indicate(Event::DataInd, std::move(ppdu.value().user_data));
      break;
    }
    case Spdu::FN:
      state_ = State::kRelInd;
      indicate(Event::ReleaseInd, spdu.user_data);
      break;
    case Spdu::DN:
      state_ = State::kIdle;
      indicate(Event::ReleaseConf, spdu.user_data);
      break;
    case Spdu::AB:
      state_ = State::kIdle;
      indicate(Event::AbortInd, {});
      break;
  }
}

// ---------------------------------------------------------------------------
// IsodeInterfaceModule — the §4.3 execution loop as Estelle transitions:
//   if (IP.message)    → map onto ISODE call        (when-clause transitions)
//   if (ISODE.message) → output onto the IP         (polling transition)

IsodeInterfaceModule::IsodeInterfaceModule(std::string name)
    : Module(std::move(name), estelle::Attribute::Process) {
  upper();
  define_transitions();
}

void IsodeInterfaceModule::define_transitions() {
  auto& u = upper();
  const auto cost = common::SimTime::from_us(20);

  trans("i-con-req")
      .when(u, kPConReq)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        entity_.p_connect_request(msg->payload);
      });
  trans("i-con-resp")
      .when(u, kPConResp)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        entity_.p_connect_response(msg->value.as_bool().value_or(true),
                                   msg->payload);
      });
  trans("i-dat-req")
      .when(u, kPDatReq)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        entity_.p_data_request(msg->payload);
      });
  trans("i-rel-req")
      .when(u, kPRelReq)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        entity_.p_release_request(msg->payload);
      });
  trans("i-rel-resp")
      .when(u, kPRelResp)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        entity_.p_release_response(msg->payload);
      });

  trans("i-abort-req")
      .when(u, kPAbortReq)
      .priority(1)
      .cost(cost)
      .action([this](Module&, const Interaction*) {
        entity_.p_abort_request();
      });

  // Poll the library for queued indications ("if ISODE.message ...").
  trans("i-poll")
      .priority(10)
      .cost(cost)
      .provided([this](Module&, const Interaction*) {
        return entity_.has_indication();
      })
      .action([this](Module&, const Interaction*) {
        auto ind = entity_.next_indication();
        if (!ind) return;
        int kind = 0;
        switch (ind->event) {
          case Event::ConnectInd:
            kind = kPConInd;
            break;
          case Event::ConnectConf:
            kind = kPConConf;
            break;
          case Event::ConnectRefused:
            kind = kPConRefuse;
            break;
          case Event::DataInd:
            kind = kPDatInd;
            break;
          case Event::ReleaseInd:
            kind = kPRelInd;
            break;
          case Event::ReleaseConf:
            kind = kPRelConf;
            break;
          case Event::AbortInd:
            kind = kPAbortInd;
            break;
        }
        upper().output(Interaction(kind, std::move(ind->user_data)));
      });
}

}  // namespace mcam::osi::isode
