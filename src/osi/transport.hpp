// Transport layer: a connection-mode transport entity as an Estelle module.
//
// The paper runs the generated presentation/session stacks over "a simulated
// transport layer pipe" (§5.1) and over ISODE's TP on the real system. This
// module provides the TS primitives of service.hpp over a possibly-lossy
// Estelle channel, using go-back-N ARQ (sequence numbers, cumulative acks,
// retransmission timer), so the layers above always see a reliable,
// in-order pipe — the Table 1 control-path properties.
//
// TPDU format (ByteWriter, big-endian):
//   [ type:1 ][ seq:4 ][ payload... ]
#pragma once

#include <cstdint>
#include <deque>

#include "estelle/module.hpp"
#include "osi/service.hpp"

namespace mcam::osi {

using estelle::Interaction;
using estelle::InteractionPoint;
using estelle::Module;

/// TPDU type octets.
enum class Tpdu : std::uint8_t {
  CR = 0xe0,  // connection request
  CC = 0xd0,  // connection confirm
  DT = 0xf0,  // data (seq = send sequence number)
  AK = 0x60,  // ack   (seq = next expected)
  DR = 0x80,  // disconnect request
  DC = 0xc0,  // disconnect confirm
};

class TransportModule : public Module {
 public:
  /// FSM states.
  enum State { kClosed = 0, kCrSent, kOpen };

  struct Config {
    int window = 8;
    common::SimTime rto = common::SimTime::from_ms(20);
    common::SimTime per_pdu_cost = common::SimTime::from_us(30);
    int max_retransmits = 50;
  };

  explicit TransportModule(std::string name);
  TransportModule(std::string name, Config cfg);

  /// Upper interface (TS user): kinds TsKind.
  InteractionPoint& upper() { return ip("U"); }
  /// Network-side interface: connect to the peer TransportModule's net().
  InteractionPoint& net() { return ip("N"); }

  // Statistics (retransmission behaviour is asserted in tests).
  [[nodiscard]] std::uint64_t retransmissions() const noexcept {
    return retransmissions_;
  }
  [[nodiscard]] std::uint64_t data_pdus_sent() const noexcept {
    return data_sent_;
  }
  [[nodiscard]] std::uint64_t duplicates_dropped() const noexcept {
    return dups_dropped_;
  }

 private:
  void define_transitions();

  void send_pdu(Tpdu type, std::uint32_t seq, const common::Bytes& payload);
  void pump_window();
  void on_data(const Interaction& msg);
  void on_ack(std::uint32_t next_expected);
  void retransmit_all();

  Config cfg_;
  std::uint32_t next_seq_ = 0;      // next new DT sequence number
  std::uint32_t base_ = 0;          // oldest unacked
  std::uint32_t expected_ = 0;      // receive side: next in-order seq
  std::deque<common::Bytes> unacked_;  // payloads [base_, next_seq_)
  std::deque<common::Bytes> pending_;  // not yet in window
  std::uint64_t retransmissions_ = 0;
  std::uint64_t data_sent_ = 0;
  std::uint64_t dups_dropped_ = 0;
  int retransmit_rounds_ = 0;
};

/// Parse helpers shared with tests.
struct TpduView {
  Tpdu type;
  std::uint32_t seq;
  common::Bytes payload;
};
TpduView parse_tpdu(const common::Bytes& raw);
common::Bytes build_tpdu(Tpdu type, std::uint32_t seq,
                         const common::Bytes& payload);

}  // namespace mcam::osi
