#include "osi/session.hpp"

#include "common/bytes.hpp"

namespace mcam::osi {

using common::Bytes;
using common::ByteReader;
using common::ByteWriter;
using estelle::Interaction;
using estelle::kAnyState;

Bytes build_spdu(Spdu type, const Bytes& user_data) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u16(static_cast<std::uint16_t>(user_data.size()));
  w.raw(user_data);
  return std::move(w).take();
}

SpduView parse_spdu(const Bytes& raw) {
  ByteReader r(raw);
  SpduView v;
  v.type = static_cast<Spdu>(r.u8());
  const std::size_t len = r.u16();
  v.user_data = r.raw(len);
  return v;
}

SessionModule::SessionModule(std::string name)
    : SessionModule(std::move(name), Config{}) {}

SessionModule::SessionModule(std::string name, Config cfg)
    : Module(std::move(name), estelle::Attribute::Process), cfg_(cfg) {
  upper();
  lower();
  define_transitions();
}

void SessionModule::send_spdu(Spdu type, const Bytes& user_data) {
  ++sent_;
  lower().output(Interaction(kTDatReq, build_spdu(type, user_data)));
}

void SessionModule::define_transitions() {
  auto& u = upper();
  auto& d = lower();
  const auto cost = cfg_.per_spdu_cost;

  // Helper: decode the SPDU at the head of the transport queue.
  auto spdu_is = [](Spdu want) {
    return [want](Module&, const Interaction* msg) {
      return msg != nullptr && !msg->payload.empty() &&
             static_cast<Spdu>(msg->payload[0]) == want;
    };
  };

  // --- initiator side ---
  trans("s-con-req")
      .from(kIdle)
      .when(u, kSConReq)
      .to(kWaitTCon)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        pending_connect_ = msg->payload;
        lower().output(Interaction(kTConReq));
      });
  trans("s-tcon-conf")
      .from(kWaitTCon)
      .when(d, kTConConf)
      .to(kWaitAC)
      .cost(cost)
      .action([this](Module&, const Interaction*) {
        send_spdu(Spdu::CN, pending_connect_);
      });
  trans("s-ac-recv")
      .from(kWaitAC)
      .when(d, kTDatInd)
      .provided(spdu_is(Spdu::AC))
      .to(kOpen)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        upper().output(
            Interaction(kSConConf, parse_spdu(msg->payload).user_data));
      });
  trans("s-rf-recv")
      .from(kWaitAC)
      .when(d, kTDatInd)
      .provided(spdu_is(Spdu::RF))
      .to(kIdle)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        upper().output(
            Interaction(kSConRefuse, parse_spdu(msg->payload).user_data));
        lower().output(Interaction(kTDisReq));
      });

  // --- responder side ---
  trans("s-cn-recv")
      .from(kIdle)
      .when(d, kTDatInd)
      .provided(spdu_is(Spdu::CN))
      .to(kConnInd)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        upper().output(
            Interaction(kSConInd, parse_spdu(msg->payload).user_data));
      });
  trans("s-con-resp")
      .from(kConnInd)
      .when(u, kSConResp)
      .cost(cost)
      .action([this](Module& m, const Interaction* msg) {
        const bool accept = msg->value.as_bool().value_or(true);
        send_spdu(accept ? Spdu::AC : Spdu::RF, msg->payload);
        m.set_state(accept ? kOpen : kIdle);
      });

  // --- data transfer ---
  trans("s-dat-req")
      .from(kOpen)
      .when(u, kSDatReq)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        send_spdu(Spdu::DT, msg->payload);
      });
  trans("s-dt-recv")
      .from(kOpen)
      .when(d, kTDatInd)
      .provided(spdu_is(Spdu::DT))
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        upper().output(
            Interaction(kSDatInd, parse_spdu(msg->payload).user_data));
      });

  // --- orderly release (FN/DN) ---
  trans("s-rel-req")
      .from(kOpen)
      .when(u, kSRelReq)
      .to(kRelSent)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        send_spdu(Spdu::FN, msg->payload);
      });
  trans("s-fn-recv")
      .from(kOpen)
      .when(d, kTDatInd)
      .provided(spdu_is(Spdu::FN))
      .to(kRelInd)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        upper().output(
            Interaction(kSRelInd, parse_spdu(msg->payload).user_data));
      });
  trans("s-rel-resp")
      .from(kRelInd)
      .when(u, kSRelResp)
      .to(kIdle)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        send_spdu(Spdu::DN, msg->payload);
      });
  trans("s-dn-recv")
      .from(kRelSent)
      .when(d, kTDatInd)
      .provided(spdu_is(Spdu::DN))
      .to(kIdle)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        upper().output(
            Interaction(kSRelConf, parse_spdu(msg->payload).user_data));
        lower().output(Interaction(kTDisReq));
      });

  // --- abort ---
  trans("s-abort-req")
      .from(kAnyState)
      .when(u, kSAbortReq)
      .to(kIdle)
      .priority(1)
      .cost(cost)
      .action([this](Module&, const Interaction*) {
        send_spdu(Spdu::AB, {});
        lower().output(Interaction(kTDisReq));
      });
  trans("s-ab-recv")
      .from(kAnyState)
      .when(d, kTDatInd)
      .provided(spdu_is(Spdu::AB))
      .to(kIdle)
      .priority(1)
      .cost(cost)
      .action([this](Module&, const Interaction*) {
        upper().output(Interaction(kSAbortInd));
      });
  trans("s-tdis-ind")
      .from(kAnyState)
      .when(d, kTDisInd)
      .to(kIdle)
      .priority(2)
      .cost(cost)
      .action([this](Module& m, const Interaction*) {
        if (m.state() != kIdle)
          upper().output(Interaction(kSAbortInd));
      });

  // --- catch-alls (head-of-queue liveness) ---
  trans("s-discard-upper")
      .when(u)
      .priority(1000)
      .cost(cost)
      .action([](Module&, const Interaction*) {});
  trans("s-discard-lower")
      .when(d)
      .priority(1000)
      .cost(cost)
      .action([](Module&, const Interaction*) {});
}

}  // namespace mcam::osi
