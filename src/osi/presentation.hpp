// Presentation layer: ISO 8823 kernel as an Estelle module.
//
// Carries the MCAM abstract syntax over the session service. Connection
// establishment negotiates a presentation context (abstract syntax OID →
// transfer syntax OID); data transfer wraps user octets in a BER-encoded
// PPDU. This is the layer whose generated-vs-ISODE comparison the paper's
// experimental setup is built around (Fig. 2).
//
// PPDU abstract syntax (a faithful subset of ISO 8823):
//   CP  ::= SEQUENCE { ctx-list SEQUENCE OF SEQUENCE { id INTEGER,
//             abstract OID, transfer SEQUENCE OF OID },
//             user-data [0] OCTET STRING }
//   CPA ::= SEQUENCE { result-list SEQUENCE OF SEQUENCE { id INTEGER,
//             result ENUMERATED, transfer OID },
//             user-data [0] OCTET STRING }
//   CPR ::= SEQUENCE { reason ENUMERATED, user-data [0] OCTET STRING }
//   TD  ::= SEQUENCE { ctx-id INTEGER, data OCTET STRING }   -- P-DATA
#pragma once

#include <vector>

#include "asn1/value.hpp"
#include "estelle/module.hpp"
#include "osi/service.hpp"

namespace mcam::osi {

/// Well-known object identifiers used in context negotiation.
namespace oids {
/// MCAM abstract syntax (private arc, as a 1994 research protocol would).
inline const std::vector<std::uint32_t> kMcamAbstractSyntax = {1, 3, 9999, 1};
/// ASN.1 Basic Encoding Rules transfer syntax {joint-iso-ccitt asn1(1)
/// basic-encoding(1)}.
inline const std::vector<std::uint32_t> kBerTransferSyntax = {2, 1, 1};
}  // namespace oids

class PresentationModule : public estelle::Module {
 public:
  enum State {
    kIdle = 0,
    kWaitConf,  // CP sent (via S-CONNECT), waiting CPA/CPR
    kConnInd,   // CP delivered up, waiting P-CON response
    kOpen,
    kRelSent,
    kRelInd,
  };

  struct Config {
    common::SimTime per_ppdu_cost = common::SimTime::from_us(60);
    int context_id = 1;
  };

  explicit PresentationModule(std::string name);
  PresentationModule(std::string name, Config cfg);

  /// Upper interface (PS user = MCAM / application): kinds PsKind.
  estelle::InteractionPoint& upper() { return ip("U"); }
  /// Lower interface: connect to SessionModule::upper().
  estelle::InteractionPoint& lower() { return ip("D"); }

  [[nodiscard]] std::uint64_t ppdus_sent() const noexcept { return sent_; }
  /// Negotiated transfer syntax of the accepted context (empty until open).
  [[nodiscard]] const std::vector<std::uint32_t>& transfer_syntax()
      const noexcept {
    return transfer_syntax_;
  }

 private:
  void define_transitions();

  Config cfg_;
  std::uint64_t sent_ = 0;
  std::vector<std::uint32_t> transfer_syntax_;
};

// PPDU codec helpers (exposed for tests and the hand-coded ISODE stack).
common::Bytes build_cp(int context_id, const common::Bytes& user_data);
common::Bytes build_cpa(int context_id, const common::Bytes& user_data);
common::Bytes build_cpr(int reason, const common::Bytes& user_data);
common::Bytes build_td(int context_id, const common::Bytes& user_data);

struct PpduView {
  enum class Type { CP, CPA, CPR, TD } type;
  int context_id = 0;
  int reason = 0;
  common::Bytes user_data;
};
/// Decode any of the four PPDUs. The outer wrapper distinguishes them with
/// a context tag: [1] CP, [2] CPA, [3] CPR, [4] TD.
common::Result<PpduView> parse_ppdu(const common::Bytes& raw);

}  // namespace mcam::osi
