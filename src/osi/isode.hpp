// Hand-coded OSI upper-layer stack (the "ISODE" comparator).
//
// The paper's second control stack "places the MCAM module directly on top
// of the ISODE presentation interface" so that generated and hand-written
// code can be compared (§3). ISODE v8.0 itself is unavailable (DESIGN.md
// §2); this is a compact hand-written implementation of the same
// presentation-service interface: plain function calls, no Estelle modules,
// no scheduler. It performs the *same* PPDU/SPDU encode/decode work as the
// generated stack, so benchmark differences isolate the runtime overhead —
// the quantity the paper's comparison targets.
//
// IsodeInterfaceModule is the §4.3 "external body" Estelle module: it maps
// interactions arriving on its Estelle interaction point onto ISODE library
// calls and polls the library for incoming events, exactly mirroring the
// while-loop pseudo-code in the paper.
#pragma once

#include <deque>
#include <optional>

#include "estelle/module.hpp"
#include "osi/presentation.hpp"
#include "osi/service.hpp"
#include "osi/session.hpp"

namespace mcam::osi::isode {

/// Presentation-service events delivered by the hand-coded stack.
enum class Event {
  ConnectInd,
  ConnectConf,
  ConnectRefused,
  DataInd,
  ReleaseInd,
  ReleaseConf,
  AbortInd,
};

struct Indication {
  Event event;
  common::Bytes user_data;
};

/// One endpoint of the hand-coded stack. Create two and link() them; calls
/// on one side synchronously produce indications queued on the other
/// (shared-memory transport, like ISODE's TP0 loopback).
class IsodeEntity {
 public:
  enum class State { kIdle, kWaitConf, kConnInd, kOpen, kRelSent, kRelInd };

  // ---- service calls (ISODE PConnectRequest() etc.) ----
  void p_connect_request(common::Bytes user_data);
  void p_connect_response(bool accept, common::Bytes user_data);
  void p_data_request(common::Bytes user_data);
  void p_release_request(common::Bytes user_data = {});
  void p_release_response(common::Bytes user_data = {});
  void p_abort_request();

  /// Poll for the next queued indication (the §4.3 "ISODE.message" branch).
  std::optional<Indication> next_indication();
  [[nodiscard]] bool has_indication() const noexcept {
    return !inbox_.empty();
  }
  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] std::uint64_t pdus_processed() const noexcept {
    return pdus_processed_;
  }

 private:
  friend void link(IsodeEntity& a, IsodeEntity& b);

  void receive_tsdu(const common::Bytes& tsdu);
  void indicate(Event e, common::Bytes user_data);
  void send_spdu(Spdu type, const common::Bytes& ppdu);

  IsodeEntity* peer_ = nullptr;
  State state_ = State::kIdle;
  std::deque<Indication> inbox_;
  std::uint64_t pdus_processed_ = 0;
};

/// Join two entities back-to-back.
void link(IsodeEntity& a, IsodeEntity& b);

/// The external-body Estelle module of §4.3: presents the same
/// presentation-service IP as PresentationModule::upper(), implemented by
/// delegating to an IsodeEntity instead of generated submodules.
class IsodeInterfaceModule : public estelle::Module {
 public:
  explicit IsodeInterfaceModule(std::string name);

  estelle::InteractionPoint& upper() { return ip("U"); }
  [[nodiscard]] IsodeEntity& entity() noexcept { return entity_; }

 private:
  void define_transitions();

  IsodeEntity entity_;
};

}  // namespace mcam::osi::isode
