#include "osi/transport.hpp"

#include "common/bytes.hpp"

namespace mcam::osi {

using common::Bytes;
using common::ByteReader;
using common::ByteWriter;
using estelle::kAnyState;

Bytes build_tpdu(Tpdu type, std::uint32_t seq, const Bytes& payload) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(seq);
  w.raw(payload);
  return std::move(w).take();
}

TpduView parse_tpdu(const Bytes& raw) {
  ByteReader r(raw);
  TpduView v;
  v.type = static_cast<Tpdu>(r.u8());
  v.seq = r.u32();
  v.payload = r.raw(r.remaining());
  return v;
}

TransportModule::TransportModule(std::string name)
    : TransportModule(std::move(name), Config{}) {}

TransportModule::TransportModule(std::string name, Config cfg)
    : Module(std::move(name), estelle::Attribute::Process), cfg_(cfg) {
  upper();
  net();
  define_transitions();
}

void TransportModule::send_pdu(Tpdu type, std::uint32_t seq,
                               const Bytes& payload) {
  net().output(Interaction(static_cast<int>(type),
                           build_tpdu(type, seq, payload)));
}

void TransportModule::pump_window() {
  while (!pending_.empty() &&
         next_seq_ - base_ < static_cast<std::uint32_t>(cfg_.window)) {
    Bytes payload = std::move(pending_.front());
    pending_.pop_front();
    send_pdu(Tpdu::DT, next_seq_, payload);
    ++data_sent_;
    unacked_.push_back(std::move(payload));
    ++next_seq_;
  }
}

void TransportModule::on_data(const Interaction& msg) {
  const TpduView v = parse_tpdu(msg.payload);
  if (v.seq == expected_) {
    ++expected_;
    upper().output(Interaction(kTDatInd, v.payload));
  } else {
    ++dups_dropped_;  // out-of-order under go-back-N: drop, re-ack
  }
  send_pdu(Tpdu::AK, expected_, {});
}

void TransportModule::on_ack(std::uint32_t next_expected) {
  while (base_ < next_expected && !unacked_.empty()) {
    unacked_.pop_front();
    ++base_;
  }
  retransmit_rounds_ = 0;
  pump_window();
}

void TransportModule::retransmit_all() {
  ++retransmit_rounds_;
  std::uint32_t seq = base_;
  for (const Bytes& payload : unacked_) {
    send_pdu(Tpdu::DT, seq, payload);
    ++retransmissions_;
    ++seq;
  }
}

void TransportModule::define_transitions() {
  auto& u = upper();
  auto& n = net();
  const auto cost = cfg_.per_pdu_cost;

  // --- connection establishment (transport auto-accepts CR) ---
  trans("t-con-req")
      .from(kClosed)
      .when(u, kTConReq)
      .to(kCrSent)
      .cost(cost)
      .action([this](Module&, const Interaction*) {
        send_pdu(Tpdu::CR, 0, {});
      });
  trans("t-cr-recv")
      .from(kClosed)
      .when(n, static_cast<int>(Tpdu::CR))
      .to(kOpen)
      .cost(cost)
      .action([this](Module&, const Interaction*) {
        send_pdu(Tpdu::CC, 0, {});
      });
  trans("t-cc-recv")
      .from(kCrSent)
      .when(n, static_cast<int>(Tpdu::CC))
      .to(kOpen)
      .cost(cost)
      .action([this](Module&, const Interaction*) {
        upper().output(Interaction(kTConConf));
        pump_window();  // release data buffered while connecting
      });

  trans("t-cr-retransmit")
      .from(kCrSent)
      .to(kCrSent)
      .delay(cfg_.rto)
      .cost(cost)
      .action([this](Module&, const Interaction*) {
        send_pdu(Tpdu::CR, 0, {});
        ++retransmissions_;
      });

  // Data requested while the connection is still pending: buffer it; the
  // window pump sends it once the CC arrives. (The session layer normally
  // waits for T-CONNECT confirm, but the service tolerates eager users.)
  trans("t-dat-early")
      .from(kCrSent)
      .when(u, kTDatReq)
      .to(kCrSent)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        pending_.push_back(msg->payload);
      });

  // --- data transfer ---
  trans("t-dat-req")
      .from(kOpen)
      .when(u, kTDatReq)
      .to(kOpen)  // re-enter: re-arms the retransmission delay clock
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        pending_.push_back(msg->payload);
        pump_window();
      });
  trans("t-dt-recv")
      .from(kOpen)
      .when(n, static_cast<int>(Tpdu::DT))
      .to(kOpen)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) { on_data(*msg); });
  trans("t-ak-recv")
      .from(kOpen)
      .when(n, static_cast<int>(Tpdu::AK))
      .to(kOpen)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        on_ack(parse_tpdu(msg->payload).seq);
      });

  // --- retransmission timer (go-back-N): fires rto after (re)entering kOpen
  // while data is outstanding; to(kOpen) re-arms the delay clock. ---
  trans("t-retransmit")
      .from(kOpen)
      .to(kOpen)
      .delay(cfg_.rto)
      .cost(cost)
      .provided([this](Module&, const Interaction*) {
        return !unacked_.empty() &&
               retransmit_rounds_ < cfg_.max_retransmits;
      })
      .action([this](Module&, const Interaction*) { retransmit_all(); });

  // --- disconnect ---
  trans("t-dis-req")
      .from(kOpen)
      .when(u, kTDisReq)
      .to(kClosed)
      .cost(cost)
      .action([this](Module&, const Interaction*) {
        send_pdu(Tpdu::DR, 0, {});
      });
  trans("t-dr-recv")
      .from(kAnyState)
      .when(n, static_cast<int>(Tpdu::DR))
      .to(kClosed)
      .cost(cost)
      .action([this](Module&, const Interaction*) {
        send_pdu(Tpdu::DC, 0, {});
        upper().output(Interaction(kTDisInd));
      });
  trans("t-dc-recv")
      .from(kClosed)
      .when(n, static_cast<int>(Tpdu::DC))
      .cost(cost)
      .action([](Module&, const Interaction*) {});

  // Duplicate CR while open (our CC was lost): re-confirm.
  trans("t-cr-dup")
      .from(kOpen)
      .when(n, static_cast<int>(Tpdu::CR))
      .to(kOpen)
      .cost(cost)
      .action([this](Module&, const Interaction*) {
        send_pdu(Tpdu::CC, 0, {});
      });

  // Catch-alls: Estelle offers only the head of an IP queue, so a PDU with
  // no matching transition would block the queue forever. Discard at the
  // lowest priority instead (e.g. stale AKs after close).
  trans("t-discard-net")
      .when(n)
      .priority(1000)
      .cost(cost)
      .action([](Module&, const Interaction*) {});
  trans("t-discard-upper")
      .when(u)
      .priority(1000)
      .cost(cost)
      .action([](Module&, const Interaction*) {});
}

}  // namespace mcam::osi
