#include "osi/stack.hpp"

namespace mcam::osi {

EstelleStack build_estelle_stack(estelle::Module& parent,
                                 const std::string& prefix) {
  EstelleStack stack;
  stack.transport = &parent.create_child<TransportModule>(prefix + ".tp");
  stack.session = &parent.create_child<SessionModule>(prefix + ".session");
  stack.presentation =
      &parent.create_child<PresentationModule>(prefix + ".presentation");
  estelle::connect(stack.presentation->lower(), stack.session->upper());
  estelle::connect(stack.session->lower(), stack.transport->upper());
  return stack;
}

void join_transports(TransportModule& a, TransportModule& b, double loss,
                     common::Rng* rng) {
  estelle::connect(a.net(), b.net());
  if (loss > 0.0 && rng != nullptr) {
    a.net().set_loss(loss, rng);
    b.net().set_loss(loss, rng);
  }
}

}  // namespace mcam::osi
