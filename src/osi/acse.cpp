#include "osi/acse.hpp"

#include "asn1/ber.hpp"

namespace mcam::osi {

using asn1::Value;
using common::Bytes;
using common::Error;
using common::Result;
using estelle::Interaction;
using estelle::kAnyState;

namespace {
constexpr std::uint32_t kTagAarq = 0;
constexpr std::uint32_t kTagAare = 1;
constexpr std::uint32_t kTagRlrq = 2;
constexpr std::uint32_t kTagRlre = 3;
constexpr std::uint32_t kTagAbrt = 4;
constexpr std::uint32_t kUserInfoTag = 30;

Value user_info(const Bytes& data) {
  return Value::context(kUserInfoTag, Value::octet_string(data));
}

Bytes user_info_of(const Value& apdu) {
  if (const Value* ui = apdu.find_context(kUserInfoTag);
      ui != nullptr && ui->size() == 1)
    return ui->child(0).as_octets().value_or({});
  return {};
}
}  // namespace

Bytes build_aarq(const std::vector<std::uint32_t>& context,
                 const Bytes& user_information) {
  return asn1::encode(Value::application(
      kTagAarq, {Value::integer(1), Value::oid(context),
                 user_info(user_information)}));
}

Bytes build_aare(AcseResult result, const std::vector<std::uint32_t>& context,
                 const Bytes& user_information) {
  return asn1::encode(Value::application(
      kTagAare, {Value::enumerated(static_cast<int>(result)),
                 Value::oid(context), user_info(user_information)}));
}

Bytes build_rlrq(int reason, const Bytes& user_information) {
  return asn1::encode(Value::application(
      kTagRlrq, {Value::integer(reason), user_info(user_information)}));
}

Bytes build_rlre(int reason, const Bytes& user_information) {
  return asn1::encode(Value::application(
      kTagRlre, {Value::integer(reason), user_info(user_information)}));
}

Bytes build_abrt(int source) {
  return asn1::encode(
      Value::application(kTagAbrt, {Value::enumerated(source)}));
}

Result<AcseApdu> parse_acse(const Bytes& raw) {
  auto decoded = asn1::decode(raw);
  if (!decoded.ok()) return decoded.error();
  const Value& v = decoded.value();
  if (v.tag_class() != asn1::TagClass::Application || !v.constructed())
    return Error::make(asn1::kBadTag, "not an ACSE APDU");

  AcseApdu apdu;
  apdu.user_information = user_info_of(v);
  switch (v.tag()) {
    case kTagAarq: {
      apdu.type = AcseApdu::Type::AARQ;
      if (v.size() < 2) return Error::make(asn1::kBadTag, "short AARQ");
      apdu.version = static_cast<int>(v.child(0).as_int().value_or(1));
      auto ctx = v.child(1).as_oid();
      if (!ctx.ok()) return ctx.error();
      apdu.context = ctx.value();
      return apdu;
    }
    case kTagAare: {
      apdu.type = AcseApdu::Type::AARE;
      if (v.size() < 2) return Error::make(asn1::kBadTag, "short AARE");
      apdu.result = static_cast<AcseResult>(
          v.child(0).as_int().value_or(1));
      auto ctx = v.child(1).as_oid();
      if (!ctx.ok()) return ctx.error();
      apdu.context = ctx.value();
      return apdu;
    }
    case kTagRlrq:
    case kTagRlre: {
      apdu.type =
          v.tag() == kTagRlrq ? AcseApdu::Type::RLRQ : AcseApdu::Type::RLRE;
      if (v.size() >= 1)
        apdu.reason = static_cast<int>(v.child(0).as_int().value_or(0));
      return apdu;
    }
    case kTagAbrt: {
      apdu.type = AcseApdu::Type::ABRT;
      if (v.size() >= 1)
        apdu.reason = static_cast<int>(v.child(0).as_int().value_or(0));
      return apdu;
    }
    default:
      return Error::make(asn1::kBadTag, "unknown ACSE APDU tag");
  }
}

AcseModule::AcseModule(std::string name)
    : AcseModule(std::move(name), Config{}) {}

AcseModule::AcseModule(std::string name, Config cfg)
    : Module(std::move(name), estelle::Attribute::Process),
      cfg_(std::move(cfg)) {
  upper();
  lower();
  define_transitions();
}

void AcseModule::define_transitions() {
  auto& u = upper();
  auto& d = lower();
  const auto cost = cfg_.per_apdu_cost;

  // --- association (initiator) ---
  trans("a-assoc-req")
      .from(kIdle)
      .when(u, kPConReq)
      .to(kAssocPending)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        ++sent_;
        lower().output(Interaction(
            kPConReq, build_aarq(cfg_.context, msg->payload)));
      });
  trans("a-assoc-conf")
      .from(kAssocPending)
      .when(d, kPConConf)
      .cost(cost)
      .action([this](Module& m, const Interaction* msg) {
        auto apdu = parse_acse(msg->payload);
        if (apdu.ok() && apdu.value().type == AcseApdu::Type::AARE &&
            apdu.value().result == AcseResult::Accepted) {
          m.set_state(kOpen);
          upper().output(
              Interaction(kPConConf, std::move(apdu.value().user_information)));
        } else {
          m.set_state(kIdle);
          upper().output(Interaction(
              kPConRefuse,
              apdu.ok() ? std::move(apdu.value().user_information)
                        : common::Bytes{}));
        }
      });
  trans("a-assoc-refused")
      .from(kAssocPending)
      .when(d, kPConRefuse)
      .to(kIdle)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        auto apdu = parse_acse(msg->payload);
        upper().output(Interaction(
            kPConRefuse, apdu.ok() ? std::move(apdu.value().user_information)
                                   : common::Bytes{}));
      });

  // --- association (responder) ---
  trans("a-assoc-ind")
      .from(kIdle)
      .when(d, kPConInd)
      .cost(cost)
      .action([this](Module& m, const Interaction* msg) {
        auto apdu = parse_acse(msg->payload);
        if (!apdu.ok() || apdu.value().type != AcseApdu::Type::AARQ) {
          ++sent_;
          lower().output(Interaction(
              kPConResp, asn1::Value::boolean(false),
              build_aare(AcseResult::RejectedPermanent, cfg_.context, {})));
          return;
        }
        if (apdu.value().context != cfg_.context) {
          // X.227: the responder refuses an unacceptable application
          // context before any user data reaches the application.
          ++context_rejections_;
          ++sent_;
          lower().output(Interaction(
              kPConResp, asn1::Value::boolean(false),
              build_aare(AcseResult::RejectedContextMismatch, cfg_.context,
                         {})));
          return;
        }
        m.set_state(kAssocInd);
        upper().output(Interaction(
            kPConInd, std::move(apdu.value().user_information)));
      });
  trans("a-assoc-resp")
      .from(kAssocInd)
      .when(u, kPConResp)
      .cost(cost)
      .action([this](Module& m, const Interaction* msg) {
        const bool accept = msg->value.as_bool().value_or(true);
        ++sent_;
        lower().output(Interaction(
            kPConResp, asn1::Value::boolean(accept),
            build_aare(accept ? AcseResult::Accepted
                              : AcseResult::RejectedPermanent,
                       cfg_.context, msg->payload)));
        m.set_state(accept ? kOpen : kIdle);
      });

  // --- data: pass-through (P-DATA is not ACSE's business) ---
  trans("a-dat-req")
      .from(kOpen)
      .when(u, kPDatReq)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        lower().output(Interaction(kPDatReq, msg->payload));
      });
  trans("a-dat-ind")
      .from(kOpen)
      .when(d, kPDatInd)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        upper().output(Interaction(kPDatInd, msg->payload));
      });

  // --- release (A-RELEASE wraps RLRQ/RLRE) ---
  trans("a-rel-req")
      .from(kOpen)
      .when(u, kPRelReq)
      .to(kRelPending)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        ++sent_;
        lower().output(Interaction(kPRelReq, build_rlrq(0, msg->payload)));
      });
  trans("a-rel-ind")
      .from(kOpen)
      .when(d, kPRelInd)
      .to(kRelInd)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        auto apdu = parse_acse(msg->payload);
        upper().output(Interaction(
            kPRelInd, apdu.ok() ? std::move(apdu.value().user_information)
                                : common::Bytes{}));
      });
  trans("a-rel-resp")
      .from(kRelInd)
      .when(u, kPRelResp)
      .to(kIdle)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        ++sent_;
        lower().output(Interaction(kPRelResp, build_rlre(0, msg->payload)));
      });
  trans("a-rel-conf")
      .from(kRelPending)
      .when(d, kPRelConf)
      .to(kIdle)
      .cost(cost)
      .action([this](Module&, const Interaction* msg) {
        auto apdu = parse_acse(msg->payload);
        upper().output(Interaction(
            kPRelConf, apdu.ok() ? std::move(apdu.value().user_information)
                                 : common::Bytes{}));
      });

  // --- abort ---
  trans("a-abort-req")
      .from(kAnyState)
      .when(u, kPAbortReq)
      .to(kIdle)
      .priority(1)
      .cost(cost)
      .action([this](Module&, const Interaction*) {
        lower().output(Interaction(kPAbortReq, build_abrt(0)));
      });
  trans("a-abort-ind")
      .from(kAnyState)
      .when(d, kPAbortInd)
      .to(kIdle)
      .priority(1)
      .cost(cost)
      .action([this](Module& m, const Interaction*) {
        if (m.state() != kIdle) upper().output(Interaction(kPAbortInd));
      });

  // --- catch-alls ---
  trans("a-discard-upper")
      .from(kIdle)
      .when(u)
      .priority(1000)
      .cost(cost)
      .action([](Module&, const Interaction*) {});
  trans("a-discard-lower")
      .when(d)
      .priority(1000)
      .cost(cost)
      .action([](Module&, const Interaction*) {});
}

}  // namespace mcam::osi
