// OSI service primitives (interaction kinds on inter-layer channels).
//
// The paper's control stack is MCAM over ISO presentation and session over a
// transport pipe (Fig. 2). Each layer boundary is an Estelle channel; these
// enums are the interaction names on those channels. Payload octets carry
// the next-higher layer's PDU; connect-class primitives carry user data the
// same way (e.g. the session CN SPDU transports the presentation CP PPDU).
#pragma once

namespace mcam::osi {

/// Transport service (the "simulated transport layer pipe" of §5.1, with
/// go-back-N ARQ so the control stack sees a 100% reliable service even
/// over an impaired channel — Table 1's "error correction: yes").
enum TsKind {
  kTConReq = 100,  // user → transport: open connection
  kTConConf,       // transport → user: connection open
  kTDatReq,        // user → transport: send TSDU (payload)
  kTDatInd,        // transport → user: TSDU arrived (payload)
  kTDisReq,        // user → transport: close
  kTDisInd,        // transport → user: closed / aborted
};

/// Session service (ISO 8327 kernel subset).
enum SsKind {
  kSConReq = 200,  // payload: user data (carried in CN)
  kSConInd,
  kSConResp,       // value: BOOLEAN accept; payload: user data (AC/RF)
  kSConConf,       // payload: user data from AC
  kSConRefuse,     // connection refused (RF received)
  kSDatReq,        // payload: SSDU
  kSDatInd,
  kSRelReq,        // orderly release (FN)
  kSRelInd,
  kSRelResp,       // (DN)
  kSRelConf,
  kSAbortReq,      // U-ABORT (AB)
  kSAbortInd,
};

/// Presentation service (ISO 8823 kernel subset; PPDUs in BER).
enum PsKind {
  kPConReq = 300,  // payload: user data (carried in CP)
  kPConInd,
  kPConResp,       // value: BOOLEAN accept; payload: user data
  kPConConf,
  kPConRefuse,
  kPDatReq,        // payload: user octets of the negotiated abstract syntax
  kPDatInd,
  kPRelReq,
  kPRelInd,
  kPRelResp,
  kPRelConf,
  kPAbortReq,      // P-U-ABORT request (user-initiated abort)
  kPAbortInd,
};

}  // namespace mcam::osi
