#include "directory/directory.hpp"

#include <algorithm>
#include <set>

#include "common/strf.hpp"

namespace mcam::directory {

using common::Error;
using common::Result;
using common::Status;

const char* format_name(Format f) noexcept {
  switch (f) {
    case Format::RawRgb:
      return "raw-rgb";
    case Format::Colormap:
      return "colormap";
    case Format::Mjpeg:
      return "mjpeg";
    case Format::Mpeg1:
      return "mpeg1";
  }
  return "?";
}

std::optional<Format> format_from(const std::string& name) {
  if (name == "raw-rgb") return Format::RawRgb;
  if (name == "colormap") return Format::Colormap;
  if (name == "mjpeg") return Format::Mjpeg;
  if (name == "mpeg1") return Format::Mpeg1;
  return std::nullopt;
}

std::optional<std::string> MovieEntry::attribute(
    const std::string& name) const {
  if (name == "title") return title;
  if (name == "format") return format_name(format);
  if (name == "width") return std::to_string(width);
  if (name == "height") return std::to_string(height);
  if (name == "fps") return common::strf("%.3f", fps);
  if (name == "duration") return std::to_string(duration_frames);
  if (name == "location-host") return location_host;
  if (name == "location-path") return location_path;
  if (name == "rights") return rights;
  if (name == "size") return std::to_string(size_bytes);
  return std::nullopt;
}

Status MovieEntry::set_attribute(const std::string& name,
                                 const std::string& value) {
  try {
    if (name == "title") {
      title = value;
    } else if (name == "format") {
      auto f = format_from(value);
      if (!f) return Error::make(kBadAttribute, "unknown format " + value);
      format = *f;
    } else if (name == "width") {
      width = std::stoi(value);
    } else if (name == "height") {
      height = std::stoi(value);
    } else if (name == "fps") {
      fps = std::stod(value);
    } else if (name == "duration") {
      duration_frames = std::stoull(value);
    } else if (name == "location-host") {
      location_host = value;
    } else if (name == "location-path") {
      location_path = value;
    } else if (name == "rights") {
      rights = value;
    } else if (name == "size") {
      size_bytes = std::stoull(value);
    } else {
      return Error::make(kBadAttribute, "unknown attribute " + name);
    }
  } catch (const std::exception&) {
    return Error::make(kBadAttribute,
                       "bad value '" + value + "' for attribute " + name);
  }
  return Status{};
}

std::vector<std::pair<std::string, std::string>> MovieEntry::attributes()
    const {
  static const char* kNames[] = {"title",         "format",        "width",
                                 "height",        "fps",           "duration",
                                 "location-host", "location-path", "rights",
                                 "size"};
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(std::size(kNames));
  for (const char* name : kNames) out.emplace_back(name, *attribute(name));
  return out;
}

// ---------------------------------------------------------------------------
// Filter

Filter Filter::present(std::string attr) {
  Filter f;
  f.op_ = Op::Present;
  f.attr_ = std::move(attr);
  return f;
}
Filter Filter::equal(std::string attr, std::string value) {
  Filter f;
  f.op_ = Op::Equal;
  f.attr_ = std::move(attr);
  f.value_ = std::move(value);
  return f;
}
Filter Filter::substring(std::string attr, std::string needle) {
  Filter f;
  f.op_ = Op::Substring;
  f.attr_ = std::move(attr);
  f.value_ = std::move(needle);
  return f;
}
Filter Filter::all() { return Filter{}; }
Filter Filter::and_(std::vector<Filter> fs) {
  Filter f;
  f.op_ = Op::And;
  f.children_ = std::move(fs);
  return f;
}
Filter Filter::or_(std::vector<Filter> fs) {
  Filter f;
  f.op_ = Op::Or;
  f.children_ = std::move(fs);
  return f;
}
Filter Filter::not_(Filter inner) {
  Filter f;
  f.op_ = Op::Not;
  f.children_.push_back(std::move(inner));
  return f;
}

bool Filter::matches(const MovieEntry& entry) const {
  switch (op_) {
    case Op::All:
      return true;
    case Op::Present:
      return entry.attribute(attr_).has_value();
    case Op::Equal: {
      auto v = entry.attribute(attr_);
      return v && *v == value_;
    }
    case Op::Substring: {
      auto v = entry.attribute(attr_);
      return v && v->find(value_) != std::string::npos;
    }
    case Op::And:
      return std::all_of(children_.begin(), children_.end(),
                         [&](const Filter& f) { return f.matches(entry); });
    case Op::Or:
      return std::any_of(children_.begin(), children_.end(),
                         [&](const Filter& f) { return f.matches(entry); });
    case Op::Not:
      return !children_.front().matches(entry);
  }
  return false;
}

bool Filter::operator==(const Filter& other) const {
  return op_ == other.op_ && attr_ == other.attr_ && value_ == other.value_ &&
         children_ == other.children_;
}

std::string Filter::to_string() const {
  switch (op_) {
    case Op::All:
      return "(*)";
    case Op::Present:
      return "(" + attr_ + "=*)";
    case Op::Equal:
      return "(" + attr_ + "=" + value_ + ")";
    case Op::Substring:
      return "(" + attr_ + "~=" + value_ + ")";
    case Op::And:
    case Op::Or: {
      std::string s = op_ == Op::And ? "(&" : "(|";
      for (const Filter& f : children_) s += f.to_string();
      return s + ")";
    }
    case Op::Not:
      return "(!" + children_.front().to_string() + ")";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Dsa

Dsa::Dsa(std::string domain) : domain_(std::move(domain)) {}

Result<std::uint64_t> Dsa::add(MovieEntry entry) {
  for (const auto& [id, existing] : entries_)
    if (existing.title == entry.title)
      return Error::make(kDuplicateTitle,
                         "title already present: " + entry.title);
  entry.id = next_id_++;
  const std::uint64_t id = entry.id;
  entries_.emplace(id, std::move(entry));
  return id;
}

Status Dsa::remove(std::uint64_t id) {
  if (entries_.erase(id) == 0)
    return Error::make(kNoSuchEntry, "no entry " + std::to_string(id));
  return Status{};
}

Result<MovieEntry> Dsa::read(std::uint64_t id) const {
  auto it = entries_.find(id);
  if (it == entries_.end())
    return Error::make(kNoSuchEntry, "no entry " + std::to_string(id));
  return it->second;
}

Result<MovieEntry> Dsa::find_by_title(const std::string& title) const {
  for (const auto& [id, entry] : entries_)
    if (entry.title == title) return entry;
  return Error::make(kNoSuchEntry, "no movie titled '" + title + "'");
}

Status Dsa::modify(std::uint64_t id, const std::string& attr,
                   const std::string& value) {
  auto it = entries_.find(id);
  if (it == entries_.end())
    return Error::make(kNoSuchEntry, "no entry " + std::to_string(id));
  return it->second.set_attribute(attr, value);
}

std::vector<MovieEntry> Dsa::search(const Filter& filter) const {
  std::vector<MovieEntry> out;
  for (const auto& [id, entry] : entries_)
    if (filter.matches(entry)) out.push_back(entry);
  return out;
}

std::vector<MovieEntry> Dsa::search_chained(const Filter& filter,
                                            int hop_limit) const {
  std::vector<MovieEntry> out;
  std::set<std::pair<std::string, std::uint64_t>> seen;
  std::set<const Dsa*> visited;
  // Breadth-first over the DSA graph.
  std::vector<const Dsa*> frontier{this};
  visited.insert(this);
  for (int hop = 0; hop <= hop_limit && !frontier.empty(); ++hop) {
    std::vector<const Dsa*> next;
    for (const Dsa* dsa : frontier) {
      for (MovieEntry entry : dsa->search(filter)) {
        if (seen.emplace(dsa->domain_, entry.id).second)
          out.push_back(std::move(entry));
      }
      for (Dsa* peer : dsa->peers_)
        if (visited.insert(peer).second) next.push_back(peer);
    }
    frontier = std::move(next);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Dua

Result<MovieEntry> Dua::lookup(const std::string& title) const {
  auto local = home_.find_by_title(title);
  if (local.ok()) return local;
  auto results = home_.search_chained(Filter::equal("title", title));
  if (results.empty())
    return Error::make(kNoSuchEntry, "no movie titled '" + title + "'");
  return results.front();
}

std::vector<MovieEntry> Dua::search(const Filter& filter, bool chained) const {
  return chained ? home_.search_chained(filter) : home_.search(filter);
}

}  // namespace mcam::directory
