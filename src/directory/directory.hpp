// Movie directory service — the Directory System of Fig. 1.
//
// "The movie directory is used as a repository for movie information, such
// as digital image format and storage location" (§2). The paper backs it
// with X.500 DSAs; we implement the same service semantics in-process
// (DESIGN.md §2): typed movie entries with a generic attribute interface,
// X.500-style filters (presence/equality/substring with and/or/not), and
// chained operation between DSAs (a query not answerable locally is
// forwarded to peer DSAs, hop-limited).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/result.hpp"

namespace mcam::directory {

/// Digital image formats of the XMovie era.
enum class Format { RawRgb, Colormap, Mjpeg, Mpeg1 };

[[nodiscard]] const char* format_name(Format f) noexcept;
[[nodiscard]] std::optional<Format> format_from(const std::string& name);

/// One directory entry. Fixed schema plus the generic attribute view used
/// by the MCAM AttributeQuery/AttributeModify operations.
struct MovieEntry {
  std::uint64_t id = 0;
  std::string title;
  Format format = Format::Mjpeg;
  int width = 320;
  int height = 240;
  double fps = 25.0;
  std::uint64_t duration_frames = 0;
  std::string location_host;  // storage location (server host)
  std::string location_path;
  std::string rights = "public";
  std::uint64_t size_bytes = 0;

  /// Generic attribute access. Known names: title, format, width, height,
  /// fps, duration, location-host, location-path, rights, size.
  [[nodiscard]] std::optional<std::string> attribute(
      const std::string& name) const;
  common::Status set_attribute(const std::string& name,
                               const std::string& value);
  /// All attributes as (name, value) pairs, stable order.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> attributes()
      const;
};

/// X.500-style search filter.
class Filter {
 public:
  static Filter present(std::string attr);
  static Filter equal(std::string attr, std::string value);
  static Filter substring(std::string attr, std::string needle);
  static Filter all();  // matches everything
  static Filter and_(std::vector<Filter> fs);
  static Filter or_(std::vector<Filter> fs);
  static Filter not_(Filter f);

  [[nodiscard]] bool matches(const MovieEntry& entry) const;
  [[nodiscard]] std::string to_string() const;

  /// Structural introspection (used by the MCAM wire codec, which carries
  /// filters inside MovieSearch PDUs).
  enum class Op { Present, Equal, Substring, All, And, Or, Not };
  [[nodiscard]] Op op() const noexcept { return op_; }
  [[nodiscard]] const std::string& attr() const noexcept { return attr_; }
  [[nodiscard]] const std::string& value() const noexcept { return value_; }
  [[nodiscard]] const std::vector<Filter>& children() const noexcept {
    return children_;
  }

  bool operator==(const Filter& other) const;

 private:
  Op op_ = Op::All;
  std::string attr_;
  std::string value_;
  std::vector<Filter> children_;
};

enum DirectoryError : int {
  kNoSuchEntry = 4001,
  kDuplicateTitle = 4002,
  kBadAttribute = 4003,
  kAccessDenied = 4004,
};

/// Directory System Agent: one per administrative domain (server host).
/// Peers form the distributed directory; search_chained consults them when
/// the local base has no match.
class Dsa {
 public:
  explicit Dsa(std::string domain);

  [[nodiscard]] const std::string& domain() const noexcept { return domain_; }

  /// Add an entry (id assigned). Titles are unique per DSA.
  common::Result<std::uint64_t> add(MovieEntry entry);
  common::Status remove(std::uint64_t id);
  [[nodiscard]] common::Result<MovieEntry> read(std::uint64_t id) const;
  common::Result<MovieEntry> find_by_title(const std::string& title) const;
  common::Status modify(std::uint64_t id, const std::string& attr,
                        const std::string& value);

  [[nodiscard]] std::vector<MovieEntry> search(const Filter& filter) const;
  /// Chained search: local base plus peer DSAs, breadth-first, hop-limited,
  /// duplicate-free (by (domain, id)).
  [[nodiscard]] std::vector<MovieEntry> search_chained(const Filter& filter,
                                                       int hop_limit = 3) const;

  void add_peer(Dsa& peer) { peers_.push_back(&peer); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  std::string domain_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, MovieEntry> entries_;
  std::vector<Dsa*> peers_;
};

/// Directory User Agent: the client-side facade (one per MCAM entity).
class Dua {
 public:
  explicit Dua(Dsa& home) : home_(home) {}

  common::Result<MovieEntry> lookup(const std::string& title) const;
  [[nodiscard]] std::vector<MovieEntry> search(const Filter& filter,
                                               bool chained = true) const;

 private:
  Dsa& home_;
};

}  // namespace mcam::directory
