#include "mtp/mtp.hpp"

#include <algorithm>
#include <cmath>

namespace mcam::mtp {

using common::ByteReader;
using common::ByteWriter;

Bytes build_packet(const PacketHeader& h, common::ByteSpan payload) {
  ByteWriter w;
  w.u16(h.stream);
  w.u32(h.seq);
  w.u32(h.frame);
  w.u16(h.frag);
  w.u16(h.nfrags);
  w.u8(h.flags);
  w.u64(static_cast<std::uint64_t>(h.capture_ts_ns));
  w.raw(payload);
  return std::move(w).take();
}

common::Result<PacketView> parse_packet(const Bytes& raw) {
  if (raw.size() < kHeaderSize)
    return common::Error::make(1, "MTP packet shorter than header");
  ByteReader r(raw);
  PacketView v;
  v.header.stream = r.u16();
  v.header.seq = r.u32();
  v.header.frame = r.u32();
  v.header.frag = r.u16();
  v.header.nfrags = r.u16();
  v.header.flags = r.u8();
  v.header.capture_ts_ns = static_cast<std::int64_t>(r.u64());
  v.payload = r.raw(r.remaining());
  return v;
}

// ---------------------------------------------------------------------------
// FrameSource

std::optional<FrameSource::Frame> FrameSource::next() {
  if (exhausted()) return std::nullopt;
  Frame f;
  f.number = next_frame_++;
  f.intra = cfg_.gop > 0 && (f.number % static_cast<std::uint64_t>(cfg_.gop)) == 0;

  double size = rng_.normal(static_cast<double>(cfg_.mean_frame_bytes),
                            static_cast<double>(cfg_.stddev_bytes));
  if (f.intra) size *= cfg_.intra_scale;
  const std::size_t bytes = static_cast<std::size_t>(
      std::max(64.0, std::min(size, 4.0 * 1024 * 1024)));

  // Deterministic pattern: frame number mixed with position, so receivers
  // can verify payload integrity after reassembly.
  f.data.resize(bytes);
  for (std::size_t i = 0; i < bytes; ++i)
    f.data[i] = static_cast<std::uint8_t>((f.number * 131 + i * 31) & 0xff);
  return f;
}

// ---------------------------------------------------------------------------
// StreamSender

StreamSender::StreamSender(net::Socket& socket, net::Address dest,
                           FrameSource source)
    : StreamSender(socket, std::move(dest), std::move(source), Config{}) {}

StreamSender::StreamSender(net::Socket& socket, net::Address dest,
                           FrameSource source, Config cfg)
    : socket_(socket),
      dest_(std::move(dest)),
      source_(std::move(source)),
      cfg_(cfg) {}

void StreamSender::resume(SimTime now) noexcept {
  if (!paused_) return;
  paused_ = false;
  next_tick_ = now;
}

void StreamSender::send_frame(const FrameSource::Frame& frame, SimTime now) {
  const std::size_t mtu = cfg_.mtu_payload;
  const std::size_t nfrags = std::max<std::size_t>(1, (frame.data.size() + mtu - 1) / mtu);
  for (std::size_t frag = 0; frag < nfrags; ++frag) {
    const std::size_t offset = frag * mtu;
    const std::size_t len = std::min(mtu, frame.data.size() - offset);
    PacketHeader h;
    h.stream = cfg_.stream_id;
    h.seq = next_seq_++;
    h.frame = static_cast<std::uint32_t>(frame.number);
    h.frag = static_cast<std::uint16_t>(frag);
    h.nfrags = static_cast<std::uint16_t>(nfrags);
    h.flags = frame.intra ? kFlagIntra : 0;
    if (source_.exhausted() && frag == nfrags - 1)
      h.flags |= kFlagEndOfStream;
    h.capture_ts_ns = now.ns;
    Bytes packet = build_packet(
        h, common::ByteSpan{frame.data.data() + offset, len});
    stats_.bytes_sent += packet.size();
    ++stats_.packets_sent;
    socket_.send(dest_, std::move(packet));
  }
  ++stats_.frames_sent;
}

std::size_t StreamSender::step(SimTime now) {
  if (paused_ || finished_) return 0;
  if (!started_) {
    started_ = true;
    next_tick_ = now;
  }
  std::size_t packets_before = stats_.packets_sent;
  while (next_tick_ <= now && !finished_) {
    auto frame = source_.next();
    if (!frame) {
      finished_ = true;
      break;
    }
    send_frame(*frame, next_tick_);
    next_tick_ += source_.frame_interval();
  }
  return stats_.packets_sent - packets_before;
}

// ---------------------------------------------------------------------------
// StreamReceiver

StreamReceiver::StreamReceiver(net::Socket& socket)
    : StreamReceiver(socket, Config{}) {}

StreamReceiver::StreamReceiver(net::Socket& socket, Config cfg)
    : socket_(socket), cfg_(cfg) {}

void StreamReceiver::complete(std::uint32_t frame, PartialFrame& pf,
                              SimTime now) {
  Bytes data;
  for (auto& [frag, bytes] : pf.frags)
    data.insert(data.end(), bytes.begin(), bytes.end());
  ++stats_.frames_complete;
  stats_.bytes_received += data.size();

  const SimTime deadline = SimTime::from_ns(pf.capture_ts_ns) +
                           cfg_.playout_delay;
  if (now > deadline) ++stats_.frames_late;
  if (pf.flags & kFlagEndOfStream) stats_.end_of_stream = true;
  if (sink_) sink_(frame, data, (pf.flags & kFlagIntra) != 0);
}

void StreamReceiver::evict_stale(std::uint32_t newest_frame) {
  // Give up on frames more than reorder_window behind: lightweight error
  // handling — damaged frames are dropped, never retransmitted.
  while (!partial_.empty()) {
    auto it = partial_.begin();
    if (newest_frame - it->first <= cfg_.reorder_window) break;
    ++stats_.frames_damaged;
    partial_.erase(it);
  }
}

std::size_t StreamReceiver::poll(SimTime now) {
  std::size_t completed = 0;
  while (auto datagram = socket_.receive()) {
    auto parsed = parse_packet(datagram->payload);
    if (!parsed.ok()) continue;
    PacketView& pkt = parsed.value();
    ++stats_.packets_received;

    // Loss detection, RFC 3550 style: expected = highest - first + 1; a
    // reordered packet that arrives late is not double-counted as lost.
    if (!first_seq_) first_seq_ = pkt.header.seq;
    if (!highest_seq_ || pkt.header.seq > *highest_seq_)
      highest_seq_ = pkt.header.seq;
    const std::uint64_t expected = *highest_seq_ - *first_seq_ + 1;
    stats_.packets_lost =
        expected > stats_.packets_received ? expected - stats_.packets_received
                                           : 0;

    // Delay / jitter accounting (transit = delivery - capture).
    const double transit_ms =
        (datagram->delivered_at - SimTime::from_ns(pkt.header.capture_ts_ns))
            .millis();
    delay_accum_ms_ += transit_ms;
    ++delay_samples_;
    stats_.mean_delay_ms = delay_accum_ms_ / static_cast<double>(delay_samples_);
    if (have_transit_) {
      const double d = std::abs(transit_ms - last_transit_ms_);
      stats_.jitter_ms += (d - stats_.jitter_ms) / 16.0;  // RFC 3550 §6.4.1
    }
    last_transit_ms_ = transit_ms;
    have_transit_ = true;

    PartialFrame& pf = partial_[pkt.header.frame];
    pf.nfrags = pkt.header.nfrags;
    pf.flags |= pkt.header.flags;
    pf.capture_ts_ns = pkt.header.capture_ts_ns;
    pf.frags[pkt.header.frag] = std::move(pkt.payload);

    if (pf.frags.size() == pf.nfrags) {
      complete(pkt.header.frame, pf, now);
      partial_.erase(pkt.header.frame);
      ++completed;
    }
    evict_stale(pkt.header.frame);
  }
  return completed;
}

}  // namespace mcam::mtp
