#include "mtp/sps.hpp"

namespace mcam::mtp {

using common::Error;
using common::Result;
using common::Status;

StreamProviderAgent::StreamProviderAgent(net::SimNetwork& net,
                                         std::string host,
                                         std::uint16_t first_port)
    : net_(net), host_(std::move(host)), next_port_(first_port) {}

std::uint16_t StreamProviderAgent::open_stream(FrameSource source,
                                               const net::Address& dest,
                                               std::uint64_t start_frame) {
  const std::uint16_t id = next_stream_id_++;
  Entry entry;
  entry.socket = &net_.open(net::Address{host_, next_port_++});
  source.seek(start_frame);
  StreamSender::Config cfg;
  cfg.stream_id = id;
  entry.sender = std::make_unique<StreamSender>(*entry.socket, dest,
                                                std::move(source), cfg);
  streams_.emplace(id, std::move(entry));
  return id;
}

Status StreamProviderAgent::pause(std::uint16_t stream) {
  auto it = streams_.find(stream);
  if (it == streams_.end())
    return Error::make(kUnknownStream, "unknown stream");
  it->second.sender->pause();
  return Status{};
}

Status StreamProviderAgent::resume(std::uint16_t stream) {
  auto it = streams_.find(stream);
  if (it == streams_.end())
    return Error::make(kUnknownStream, "unknown stream");
  it->second.sender->resume(net_.now());
  return Status{};
}

Result<std::uint64_t> StreamProviderAgent::stop(std::uint16_t stream) {
  auto it = streams_.find(stream);
  if (it == streams_.end())
    return Error::make(kUnknownStream, "unknown stream");
  const std::uint64_t pos = it->second.sender->current_frame();
  streams_.erase(it);
  return pos;
}

Result<std::uint64_t> StreamProviderAgent::position(
    std::uint16_t stream) const {
  auto it = streams_.find(stream);
  if (it == streams_.end())
    return Error::make(kUnknownStream, "unknown stream");
  return it->second.sender->current_frame();
}

Result<SenderStats> StreamProviderAgent::stats(std::uint16_t stream) const {
  auto it = streams_.find(stream);
  if (it == streams_.end())
    return Error::make(kUnknownStream, "unknown stream");
  return it->second.sender->stats();
}

bool StreamProviderAgent::finished(std::uint16_t stream) const {
  auto it = streams_.find(stream);
  return it == streams_.end() || it->second.sender->finished();
}

void StreamProviderAgent::step(common::SimTime now) {
  for (auto& [id, entry] : streams_) entry.sender->step(now);
}

StreamUserAgent::StreamUserAgent(net::SimNetwork& net,
                                 const net::Address& listen,
                                 StreamReceiver::Config cfg)
    : socket_(net.open(listen)), receiver_(socket_, cfg) {}

}  // namespace mcam::mtp
