// Stream Provider System (SPS): the SPA and SUA agents of Fig. 1.
//
// In the MCAM functional model, the Stream Provider Agent (SPA) lives on the
// server and owns the outgoing CM streams; the Stream User Agent (SUA) lives
// on the client and terminates them. The MCA drives the SPA in response to
// MCAM Play/Pause/Resume/Stop PDUs and tells the client's SUA (via the
// control connection) where the stream will arrive.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/result.hpp"
#include "mtp/mtp.hpp"

namespace mcam::mtp {

enum SpsError : int {
  kUnknownStream = 3001,
  kStreamFinished = 3002,
};

/// Server-side agent: one instance per server host; manages any number of
/// concurrent outgoing streams (the paper's "thousands of clients" goal is
/// bounded here only by simulation time).
class StreamProviderAgent {
 public:
  StreamProviderAgent(net::SimNetwork& net, std::string host,
                      std::uint16_t first_port = 5000);

  /// Open a new stream towards `dest`, playing `source` from
  /// `start_frame`. Returns the stream id carried back in the Play response.
  std::uint16_t open_stream(FrameSource source, const net::Address& dest,
                            std::uint64_t start_frame = 0);

  common::Status pause(std::uint16_t stream);
  common::Status resume(std::uint16_t stream);
  /// Stop and tear down; returns the frame position at stop time.
  common::Result<std::uint64_t> stop(std::uint16_t stream);
  common::Result<std::uint64_t> position(std::uint16_t stream) const;
  common::Result<SenderStats> stats(std::uint16_t stream) const;
  [[nodiscard]] bool finished(std::uint16_t stream) const;
  [[nodiscard]] std::size_t active_streams() const noexcept {
    return streams_.size();
  }

  /// Advance all senders to `now` (emit due frames).
  void step(common::SimTime now);

 private:
  struct Entry {
    net::Socket* socket = nullptr;
    std::unique_ptr<StreamSender> sender;
  };

  net::SimNetwork& net_;
  std::string host_;
  std::uint16_t next_port_;
  std::uint16_t next_stream_id_ = 1;
  std::map<std::uint16_t, Entry> streams_;
};

/// Client-side agent: binds a datagram port, reassembles arriving MTP
/// frames, exposes receiver statistics to the application.
class StreamUserAgent {
 public:
  StreamUserAgent(net::SimNetwork& net, const net::Address& listen,
                  StreamReceiver::Config cfg = StreamReceiver::Config{});

  void set_sink(StreamReceiver::FrameSink sink) {
    receiver_.set_sink(std::move(sink));
  }
  /// Drain arrived packets; returns frames completed.
  std::size_t poll(common::SimTime now) { return receiver_.poll(now); }
  [[nodiscard]] const ReceiverStats& stats() const noexcept {
    return receiver_.stats();
  }
  [[nodiscard]] const net::Address& address() const noexcept {
    return socket_.address();
  }

 private:
  net::Socket& socket_;
  StreamReceiver receiver_;
};

}  // namespace mcam::mtp
