// XMovie colormap coding.
//
// XMovie ([21], Lamparter & Effelsberg) presents digital movies under X11 by
// transmitting colormap-indexed frames: a palette of up to 256 RGB entries
// plus one index byte per pixel, with palette updates sent in-stream when
// the scene changes. That is the "Colormap" movie format of the directory
// schema. This module implements the codec:
//
//   * build_colormap(): uniform-quantization palette fitted to a frame
//     (3-3-2 RGB bins refined by occupancy — cheap, 1994-appropriate);
//   * encode_frame(): RGB24 → indices against a palette, nearest-entry;
//   * decode_frame(): indices + palette → RGB24;
//   * ColormapStream: stateful encoder that re-fits and re-emits the
//     palette only when drift exceeds a threshold (the in-stream "colormap
//     update" of XMovie).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace mcam::mtp {

struct Rgb {
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;
  bool operator==(const Rgb&) const = default;
};

/// An RGB24 image (row-major, width*height pixels).
struct RgbImage {
  int width = 0;
  int height = 0;
  std::vector<Rgb> pixels;

  [[nodiscard]] std::size_t size() const noexcept { return pixels.size(); }
};

using Colormap = std::vector<Rgb>;  // ≤ 256 entries

/// Fit a palette of at most `entries` colors to the image: bin pixels into
/// the 3-3-2 RGB lattice, keep the most populated bins (bin centroid as the
/// palette color), always at least one entry.
Colormap build_colormap(const RgbImage& image, std::size_t entries = 256);

/// Index every pixel against the palette (nearest entry, squared-distance).
std::vector<std::uint8_t> encode_frame(const RgbImage& image,
                                       const Colormap& map);

/// Reconstruct an RGB image from indices + palette.
common::Result<RgbImage> decode_frame(int width, int height,
                                      const std::vector<std::uint8_t>& indices,
                                      const Colormap& map);

/// Mean squared error per channel between two equally-sized images — the
/// quantization-quality metric tests assert on.
double mean_squared_error(const RgbImage& a, const RgbImage& b);

/// Wire form of one colormap-coded frame:
///   [ flags:1 ][ width:2 ][ height:2 ]
///   [ palette_count:2 ][ palette: 3*count ]   -- only if kHasPalette
///   [ indices: width*height ]
enum ColormapFrameFlags : std::uint8_t { kHasPalette = 0x01 };

common::Bytes pack_colormap_frame(int width, int height,
                                  const std::vector<std::uint8_t>& indices,
                                  const Colormap* palette_update);
struct ColormapFrameView {
  int width = 0;
  int height = 0;
  bool has_palette = false;
  Colormap palette;
  std::vector<std::uint8_t> indices;
};
common::Result<ColormapFrameView> unpack_colormap_frame(
    const common::Bytes& raw);

/// Stateful stream encoder: emits palette updates only when the current
/// palette's error on a new frame exceeds `refit_threshold` (MSE), as
/// XMovie re-sends its colormap on scene changes.
class ColormapStream {
 public:
  struct Config {
    std::size_t entries = 256;
    double refit_threshold = 120.0;  // MSE triggering a palette update
  };

  ColormapStream() : ColormapStream(Config{}) {}
  explicit ColormapStream(Config cfg) : cfg_(cfg) {}

  /// Encode a frame; includes a palette update when (re)fitted.
  common::Bytes encode(const RgbImage& frame);

  [[nodiscard]] std::uint64_t palette_updates() const noexcept {
    return palette_updates_;
  }
  [[nodiscard]] const Colormap& palette() const noexcept { return palette_; }

 private:
  Config cfg_;
  Colormap palette_;
  std::uint64_t palette_updates_ = 0;
};

/// Stateful stream decoder: remembers the last palette across frames.
class ColormapStreamDecoder {
 public:
  common::Result<RgbImage> decode(const common::Bytes& raw);

 private:
  Colormap palette_;
};

}  // namespace mcam::mtp
