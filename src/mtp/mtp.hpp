// MTP — the XMovie Movie Transmission Protocol (Lamparter & Effelsberg).
//
// The paper runs the CM-stream protocol stack as "the XMovie transmission
// protocol MTP directly on top of UDP, IP and FDDI" (§3), deliberately
// separate from the control stack (Table 1): high data rate, lightweight or
// no error correction, isochronous timing, delay/jitter control.
//
// This module implements MTP over net::SimNetwork:
//   * synthetic FrameSource standing in for the 1994 digital-video pipeline
//     (DESIGN.md §2): configurable fps, frame-size distribution, periodic
//     large intra frames;
//   * StreamSender: isochronous pacing (one frame per 1/fps tick),
//     fragmentation to MTU-sized MTP packets, sequence numbering;
//   * StreamReceiver: reassembly, loss detection by sequence gap, per-frame
//     completion, delay/jitter accounting against a playout deadline.
//
// MTP packet header (big-endian):
//   [ stream:2 ][ seq:4 ][ frame:4 ][ frag:2 ][ nfrags:2 ][ flags:1 ]
//   [ capture_ts_ns:8 ]  + payload
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "net/network.hpp"

namespace mcam::mtp {

using common::Bytes;
using common::SimTime;

inline constexpr std::size_t kHeaderSize = 2 + 4 + 4 + 2 + 2 + 1 + 8;

enum PacketFlags : std::uint8_t {
  kFlagIntra = 0x01,      // frame is an intra (I) frame
  kFlagEndOfStream = 0x02,
};

struct PacketHeader {
  std::uint16_t stream = 0;
  std::uint32_t seq = 0;
  std::uint32_t frame = 0;
  std::uint16_t frag = 0;
  std::uint16_t nfrags = 1;
  std::uint8_t flags = 0;
  std::int64_t capture_ts_ns = 0;
};

Bytes build_packet(const PacketHeader& h, common::ByteSpan payload);
struct PacketView {
  PacketHeader header;
  Bytes payload;
};
common::Result<PacketView> parse_packet(const Bytes& raw);

/// Synthetic movie frame generator. Frame sizes follow a clamped normal
/// distribution; every `gop` frames an intra frame `intra_scale`× larger is
/// produced (the size pattern of motion-JPEG/MPEG-era material).
class FrameSource {
 public:
  struct Config {
    double fps = 25.0;
    std::size_t mean_frame_bytes = 8000;
    std::size_t stddev_bytes = 1500;
    int gop = 12;
    double intra_scale = 2.5;
    std::uint64_t total_frames = 250;  // movie length
    std::uint64_t seed = 7;
  };

  FrameSource() : FrameSource(Config{}) {}
  explicit FrameSource(Config cfg) : cfg_(cfg), rng_(cfg.seed) {}

  [[nodiscard]] const Config& config() const noexcept { return cfg_; }
  [[nodiscard]] std::uint64_t frames_produced() const noexcept {
    return next_frame_;
  }
  [[nodiscard]] bool exhausted() const noexcept {
    return next_frame_ >= cfg_.total_frames;
  }
  [[nodiscard]] SimTime frame_interval() const noexcept {
    return SimTime::from_ns(static_cast<std::int64_t>(1e9 / cfg_.fps));
  }

  /// Produce the next frame (payload content is a deterministic pattern so
  /// receivers can verify integrity). Returns nullopt when exhausted.
  struct Frame {
    std::uint64_t number = 0;
    bool intra = false;
    Bytes data;
  };
  std::optional<Frame> next();

  /// Reposition (seek) — playback from an arbitrary frame.
  void seek(std::uint64_t frame) noexcept { next_frame_ = frame; }

 private:
  Config cfg_;
  common::Rng rng_;
  std::uint64_t next_frame_ = 0;
};

/// Sender statistics.
struct SenderStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t packets_sent = 0;
  std::uint64_t bytes_sent = 0;
};

/// Isochronous MTP sender: call step(now) regularly; it emits every frame
/// whose presentation tick has arrived.
class StreamSender {
 public:
  struct Config {
    std::uint16_t stream_id = 1;
    std::size_t mtu_payload = 1400;  // FDDI-era safe payload
  };

  StreamSender(net::Socket& socket, net::Address dest, FrameSource source);
  StreamSender(net::Socket& socket, net::Address dest, FrameSource source,
               Config cfg);

  /// Emit all frames due at or before `now`. Returns packets sent.
  std::size_t step(SimTime now);

  void pause() noexcept { paused_ = true; }
  /// Resume: re-anchors pacing at `now` so paused time is not "caught up".
  void resume(SimTime now) noexcept;
  [[nodiscard]] bool paused() const noexcept { return paused_; }
  [[nodiscard]] bool finished() const noexcept { return finished_; }
  [[nodiscard]] std::uint64_t current_frame() const noexcept {
    return source_.frames_produced();
  }
  void seek(std::uint64_t frame) noexcept { source_.seek(frame); }

  [[nodiscard]] const SenderStats& stats() const noexcept { return stats_; }
  [[nodiscard]] SimTime next_due() const noexcept { return next_tick_; }
  [[nodiscard]] const FrameSource& source() const noexcept { return source_; }

 private:
  void send_frame(const FrameSource::Frame& frame, SimTime now);

  net::Socket& socket_;
  net::Address dest_;
  FrameSource source_;
  Config cfg_;
  SimTime next_tick_{};
  bool started_ = false;
  bool paused_ = false;
  bool finished_ = false;
  std::uint32_t next_seq_ = 0;
  SenderStats stats_;
};

/// Receiver statistics — the measurements Table 1 compares against the
/// control path.
struct ReceiverStats {
  std::uint64_t packets_received = 0;
  std::uint64_t packets_lost = 0;      // sequence gaps
  std::uint64_t frames_complete = 0;
  std::uint64_t frames_damaged = 0;    // missing fragments at eviction
  std::uint64_t frames_late = 0;       // complete but after playout deadline
  std::uint64_t bytes_received = 0;
  double mean_delay_ms = 0.0;          // packet end-to-end delay
  double jitter_ms = 0.0;              // RFC-3550 style smoothed jitter
  bool end_of_stream = false;

  [[nodiscard]] double packet_delivery_ratio() const noexcept {
    const auto total = packets_received + packets_lost;
    return total == 0 ? 1.0
                      : static_cast<double>(packets_received) /
                            static_cast<double>(total);
  }
};

/// MTP receiver: poll() drains the socket, reassembles frames and hands
/// complete ones to the sink in frame order (incomplete frames are given up
/// after `reorder_window` newer frames arrive — lightweight error handling,
/// no retransmission, per Table 1).
class StreamReceiver {
 public:
  struct Config {
    SimTime playout_delay = SimTime::from_ms(120);
    std::uint32_t reorder_window = 8;
  };

  using FrameSink =
      std::function<void(std::uint32_t frame, const Bytes& data, bool intra)>;

  explicit StreamReceiver(net::Socket& socket);
  StreamReceiver(net::Socket& socket, Config cfg);

  void set_sink(FrameSink sink) { sink_ = std::move(sink); }

  /// Drain all delivered datagrams; returns frames completed this call.
  std::size_t poll(SimTime now);

  [[nodiscard]] const ReceiverStats& stats() const noexcept { return stats_; }

 private:
  struct PartialFrame {
    std::uint16_t nfrags = 0;
    std::uint8_t flags = 0;
    std::int64_t capture_ts_ns = 0;
    std::map<std::uint16_t, Bytes> frags;
  };

  void evict_stale(std::uint32_t newest_frame);
  void complete(std::uint32_t frame, PartialFrame& pf, SimTime now);

  net::Socket& socket_;
  Config cfg_;
  FrameSink sink_;
  std::map<std::uint32_t, PartialFrame> partial_;
  std::optional<std::uint32_t> first_seq_;
  std::optional<std::uint32_t> highest_seq_;
  std::uint64_t delay_samples_ = 0;
  double delay_accum_ms_ = 0.0;
  double last_transit_ms_ = 0.0;
  bool have_transit_ = false;
  ReceiverStats stats_;
};

}  // namespace mcam::mtp
