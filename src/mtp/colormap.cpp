#include "mtp/colormap.hpp"

#include <algorithm>
#include <map>

namespace mcam::mtp {

namespace {

using common::Bytes;
using common::Error;
using common::Result;

constexpr int kRBits = 3, kGBits = 3, kBBits = 2;

int bin_of(const Rgb& p) noexcept {
  return (p.r >> (8 - kRBits)) << (kGBits + kBBits) |
         (p.g >> (8 - kGBits)) << kBBits | (p.b >> (8 - kBBits));
}

int distance2(const Rgb& a, const Rgb& b) noexcept {
  const int dr = a.r - b.r;
  const int dg = a.g - b.g;
  const int db = a.b - b.b;
  return dr * dr + dg * dg + db * db;
}

}  // namespace

Colormap build_colormap(const RgbImage& image, std::size_t entries) {
  // Accumulate per-bin occupancy and color sums (centroid quantization).
  struct Bin {
    std::uint64_t count = 0;
    std::uint64_t r = 0, g = 0, b = 0;
    int id = 0;
  };
  std::map<int, Bin> bins;
  for (const Rgb& p : image.pixels) {
    Bin& bin = bins[bin_of(p)];
    ++bin.count;
    bin.r += p.r;
    bin.g += p.g;
    bin.b += p.b;
  }
  std::vector<Bin> ordered;
  ordered.reserve(bins.size());
  for (auto& [id, bin] : bins) {
    bin.id = id;
    ordered.push_back(bin);
  }
  std::sort(ordered.begin(), ordered.end(), [](const Bin& a, const Bin& b) {
    return a.count != b.count ? a.count > b.count : a.id < b.id;
  });
  if (ordered.size() > entries) ordered.resize(entries);

  Colormap map;
  map.reserve(ordered.size());
  for (const Bin& bin : ordered)
    map.push_back(Rgb{static_cast<std::uint8_t>(bin.r / bin.count),
                      static_cast<std::uint8_t>(bin.g / bin.count),
                      static_cast<std::uint8_t>(bin.b / bin.count)});
  if (map.empty()) map.push_back(Rgb{0, 0, 0});
  return map;
}

std::vector<std::uint8_t> encode_frame(const RgbImage& image,
                                       const Colormap& map) {
  std::vector<std::uint8_t> indices;
  indices.reserve(image.size());
  for (const Rgb& p : image.pixels) {
    int best = 0;
    int best_d = distance2(p, map[0]);
    for (std::size_t i = 1; i < map.size(); ++i) {
      const int d = distance2(p, map[i]);
      if (d < best_d) {
        best_d = d;
        best = static_cast<int>(i);
      }
    }
    indices.push_back(static_cast<std::uint8_t>(best));
  }
  return indices;
}

Result<RgbImage> decode_frame(int width, int height,
                              const std::vector<std::uint8_t>& indices,
                              const Colormap& map) {
  if (static_cast<std::size_t>(width) * static_cast<std::size_t>(height) !=
      indices.size())
    return Error::make(1, "index count does not match dimensions");
  if (map.empty()) return Error::make(2, "empty colormap");
  RgbImage out;
  out.width = width;
  out.height = height;
  out.pixels.reserve(indices.size());
  for (std::uint8_t idx : indices) {
    if (idx >= map.size()) return Error::make(3, "index out of palette");
    out.pixels.push_back(map[idx]);
  }
  return out;
}

double mean_squared_error(const RgbImage& a, const RgbImage& b) {
  if (a.size() != b.size() || a.size() == 0) return 1e18;
  double acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc += distance2(a.pixels[i], b.pixels[i]);
  return acc / (3.0 * static_cast<double>(a.size()));
}

Bytes pack_colormap_frame(int width, int height,
                          const std::vector<std::uint8_t>& indices,
                          const Colormap* palette_update) {
  common::ByteWriter w;
  w.u8(palette_update != nullptr ? kHasPalette : 0);
  w.u16(static_cast<std::uint16_t>(width));
  w.u16(static_cast<std::uint16_t>(height));
  if (palette_update != nullptr) {
    w.u16(static_cast<std::uint16_t>(palette_update->size()));
    for (const Rgb& c : *palette_update) {
      w.u8(c.r);
      w.u8(c.g);
      w.u8(c.b);
    }
  }
  w.raw(common::ByteSpan{indices.data(), indices.size()});
  return std::move(w).take();
}

Result<ColormapFrameView> unpack_colormap_frame(const Bytes& raw) {
  try {
    common::ByteReader r(raw);
    ColormapFrameView v;
    const std::uint8_t flags = r.u8();
    v.width = r.u16();
    v.height = r.u16();
    v.has_palette = (flags & kHasPalette) != 0;
    if (v.has_palette) {
      const std::size_t n = r.u16();
      if (n == 0 || n > 256)
        return Error::make(4, "palette size out of range");
      v.palette.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        Rgb c;
        c.r = r.u8();
        c.g = r.u8();
        c.b = r.u8();
        v.palette.push_back(c);
      }
    }
    const std::size_t npix = static_cast<std::size_t>(v.width) *
                             static_cast<std::size_t>(v.height);
    if (r.remaining() != npix)
      return Error::make(5, "index payload size mismatch");
    const Bytes idx = r.raw(npix);
    v.indices.assign(idx.begin(), idx.end());
    return v;
  } catch (const common::ShortReadError&) {
    return Error::make(6, "truncated colormap frame");
  }
}

Bytes ColormapStream::encode(const RgbImage& frame) {
  bool update = palette_.empty();
  if (!update) {
    // Cheap drift check: quantize with the current palette and measure MSE.
    const auto indices = encode_frame(frame, palette_);
    auto rebuilt = decode_frame(frame.width, frame.height, indices, palette_);
    update = !rebuilt.ok() ||
             mean_squared_error(frame, rebuilt.value()) > cfg_.refit_threshold;
    if (!update) return pack_colormap_frame(frame.width, frame.height,
                                            indices, nullptr);
  }
  palette_ = build_colormap(frame, cfg_.entries);
  ++palette_updates_;
  const auto indices = encode_frame(frame, palette_);
  return pack_colormap_frame(frame.width, frame.height, indices, &palette_);
}

Result<RgbImage> ColormapStreamDecoder::decode(const Bytes& raw) {
  auto view = unpack_colormap_frame(raw);
  if (!view.ok()) return view.error();
  if (view.value().has_palette) palette_ = view.value().palette;
  if (palette_.empty())
    return Error::make(7, "no palette received yet");
  return decode_frame(view.value().width, view.value().height,
                      view.value().indices, palette_);
}

}  // namespace mcam::mtp
