// printf-style std::string formatting (this toolchain's libstdc++ predates
// <format>).
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

namespace mcam::common {

#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
inline std::string
strf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace mcam::common
