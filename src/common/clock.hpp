// Simulated time.
//
// The reproduction replaces the paper's wall-clock measurements on a KSR1
// multiprocessor with a deterministic simulated clock (see DESIGN.md §2).
// Time is kept in integer nanoseconds; helpers convert to the units used in
// experiment reports.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace mcam::common {

/// A point (or span) in simulated time, nanosecond resolution.
struct SimTime {
  std::int64_t ns = 0;

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimTime o) const noexcept { return {ns + o.ns}; }
  constexpr SimTime operator-(SimTime o) const noexcept { return {ns - o.ns}; }
  constexpr SimTime& operator+=(SimTime o) noexcept {
    ns += o.ns;
    return *this;
  }

  [[nodiscard]] constexpr double micros() const noexcept { return ns / 1e3; }
  [[nodiscard]] constexpr double millis() const noexcept { return ns / 1e6; }
  [[nodiscard]] constexpr double seconds() const noexcept { return ns / 1e9; }

  static constexpr SimTime from_ns(std::int64_t v) noexcept { return {v}; }
  static constexpr SimTime from_us(std::int64_t v) noexcept {
    return {v * 1000};
  }
  static constexpr SimTime from_ms(std::int64_t v) noexcept {
    return {v * 1000000};
  }
  static constexpr SimTime from_s(double v) noexcept {
    return {static_cast<std::int64_t>(v * 1e9)};
  }
};

/// A monotonically advancing simulated clock owned by a simulation engine.
class SimClock {
 public:
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Advance to an absolute time; never moves backwards.
  void advance_to(SimTime t) noexcept {
    if (t > now_) now_ = t;
  }
  void advance_by(SimTime dt) noexcept { now_ += dt; }

 private:
  SimTime now_{};
};

/// Human-readable rendering ("12.345 ms") for experiment output.
std::string format_duration(SimTime t);

}  // namespace mcam::common
