// Byte-buffer utilities shared by every protocol layer.
//
// All PDUs in this project are carried as `Bytes` (a std::vector<std::uint8_t>).
// `ByteWriter` and `ByteReader` provide bounds-checked big-endian primitive
// access; protocol codecs (ASN.1 BER, session/presentation SPDU headers, MTP
// packet headers) are built on top of them.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace mcam::common {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;

/// Thrown by ByteReader on truncated input. Protocol decoders translate this
/// into a decode error at the layer boundary.
class ShortReadError : public std::runtime_error {
 public:
  explicit ShortReadError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only big-endian writer over an owned buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    for (int shift = 24; shift >= 0; shift -= 8)
      buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
  void u64(std::uint64_t v) {
    for (int shift = 56; shift >= 0; shift -= 8)
      buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
  void raw(ByteSpan data) { buf_.insert(buf_.end(), data.begin(), data.end()); }
  void raw(const Bytes& data) { raw(ByteSpan{data}); }
  void str(std::string_view s) {
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] Bytes take() && { return std::move(buf_); }
  [[nodiscard]] const Bytes& bytes() const noexcept { return buf_; }

 private:
  Bytes buf_;
};

/// Bounds-checked big-endian reader over a non-owned span.
class ByteReader {
 public:
  explicit ByteReader(ByteSpan data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool empty() const noexcept { return remaining() == 0; }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint16_t u16() {
    need(2);
    auto v = static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += 8;
    return v;
  }
  Bytes raw(std::size_t n) {
    need(n);
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }
  ByteSpan view(std::size_t n) {
    need(n);
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  std::string str(std::size_t n) {
    need(n);
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return out;
  }
  std::uint8_t peek() const {
    if (remaining() < 1) throw ShortReadError("peek past end");
    return data_[pos_];
  }
  void skip(std::size_t n) {
    need(n);
    pos_ += n;
  }

 private:
  void need(std::size_t n) const {
    if (remaining() < n)
      throw ShortReadError("need " + std::to_string(n) + " bytes, have " +
                           std::to_string(remaining()));
  }

  ByteSpan data_;
  std::size_t pos_ = 0;
};

/// Render a buffer as "aa bb cc ..." for diagnostics and test failure output.
std::string hexdump(ByteSpan data, std::size_t max_bytes = 64);

/// Convenience: build a Bytes value from a string literal's characters.
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

}  // namespace mcam::common
