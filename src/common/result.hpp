// Result<T>: value-or-error return type used at module boundaries.
//
// Protocol code paths are hot; exceptions are reserved for programming errors
// (violated Estelle structural rules, truncated reads inside codecs). All
// expected failures — decode errors, refused connections, unknown movies —
// travel as Result.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace mcam::common {

/// A failure description carried by Result. `code` values are defined by the
/// producing subsystem (e.g. mcam::ErrorCode); `message` is for humans.
struct Error {
  int code = 0;
  std::string message;

  static Error make(int code, std::string message) {
    return Error{code, std::move(message)};
  }
};

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : state_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<T>(state_);
  }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const T& value() const& {
    require_ok();
    return std::get<T>(state_);
  }
  [[nodiscard]] T& value() & {
    require_ok();
    return std::get<T>(state_);
  }
  [[nodiscard]] T&& take() && {
    require_ok();
    return std::get<T>(std::move(state_));
  }
  [[nodiscard]] const Error& error() const {
    if (ok()) throw std::logic_error("Result::error() on ok result");
    return std::get<Error>(state_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(state_) : std::move(fallback);
  }

 private:
  void require_ok() const {
    if (!ok())
      throw std::logic_error("Result::value() on error: " +
                             std::get<Error>(state_).message);
  }

  std::variant<T, Error> state_;
};

/// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  static Status ok_status() { return Status{}; }

  [[nodiscard]] bool ok() const noexcept { return !error_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }
  [[nodiscard]] const Error& error() const {
    if (ok()) throw std::logic_error("Status::error() on ok status");
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

}  // namespace mcam::common
