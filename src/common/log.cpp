#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "common/clock.hpp"

namespace mcam::common {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_mutex;

constexpr const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO ";
    case LogLevel::Warn:
      return "WARN ";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, std::string_view component,
              std::string_view msg) {
  if (level < log_level()) return;
  std::lock_guard lock(g_mutex);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(msg.size()), msg.data());
}

std::string format_duration(SimTime t) {
  char buf[48];
  if (t.ns < 10'000) {
    std::snprintf(buf, sizeof(buf), "%lld ns", static_cast<long long>(t.ns));
  } else if (t.ns < 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3f us", t.micros());
  } else if (t.ns < 10'000'000'000LL) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", t.millis());
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", t.seconds());
  }
  return buf;
}

}  // namespace mcam::common
