// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the repository (network impairments, workload
// generators, property tests) draws from this generator so every experiment
// is reproducible from a single seed. xoshiro256** seeded via SplitMix64.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace mcam::common {

/// SplitMix64 — used only to expand a user seed into xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna) — fast, high-quality, deterministic.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x4d43414d31393934ULL /* "MCAM1994" */) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection-free variant is unnecessary here;
    // modulo bias is negligible for the bounds used in this project, but we
    // still mask off high bits for small bounds to keep tests stable.
    return (*this)() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Exponential variate with the given mean (inter-arrival modelling).
  double exponential(double mean) noexcept {
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Normal variate (Box–Muller) — frame-size distributions etc.
  double normal(double mean, double stddev) noexcept {
    if (has_spare_) {
      has_spare_ = false;
      return mean + stddev * spare_;
    }
    double u1 = uniform();
    double u2 = uniform();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    spare_ = r * std::sin(theta);
    has_spare_ = true;
    return mean + stddev * r * std::cos(theta);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  // Box–Muller caches one variate.
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace mcam::common
