#include "common/bytes.hpp"

#include <array>

namespace mcam::common {

std::string hexdump(ByteSpan data, std::size_t max_bytes) {
  static constexpr std::array<char, 16> kHex = {'0', '1', '2', '3', '4', '5',
                                                '6', '7', '8', '9', 'a', 'b',
                                                'c', 'd', 'e', 'f'};
  std::string out;
  const std::size_t n = std::min(data.size(), max_bytes);
  out.reserve(n * 3 + 8);
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0) out.push_back(' ');
    out.push_back(kHex[data[i] >> 4]);
    out.push_back(kHex[data[i] & 0x0f]);
  }
  if (data.size() > max_bytes) {
    out += " ... (";
    out += std::to_string(data.size());
    out += " bytes)";
  }
  return out;
}

}  // namespace mcam::common
