// Minimal leveled logger.
//
// Protocol layers log state transitions and PDU traffic at Debug level;
// experiments and examples log at Info. The default threshold is Warn so
// tests and benchmarks stay quiet unless a failure is being diagnosed.
#pragma once

#include <string>
#include <string_view>

#include "common/strf.hpp"

namespace mcam::common {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Sink for a fully formatted line (used directly by the macros below).
void log_line(LogLevel level, std::string_view component, std::string_view msg);

}  // namespace mcam::common

#define MCAM_LOG_AT(level, component, ...)                       \
  do {                                                           \
    if ((level) >= ::mcam::common::log_level())                  \
      ::mcam::common::log_line((level), (component),             \
                               ::mcam::common::strf(__VA_ARGS__)); \
  } while (0)

#define MCAM_LOG_DEBUG(component, ...) \
  MCAM_LOG_AT(::mcam::common::LogLevel::Debug, component, __VA_ARGS__)
#define MCAM_LOG_INFO(component, ...) \
  MCAM_LOG_AT(::mcam::common::LogLevel::Info, component, __VA_ARGS__)
#define MCAM_LOG_WARN(component, ...) \
  MCAM_LOG_AT(::mcam::common::LogLevel::Warn, component, __VA_ARGS__)
#define MCAM_LOG_ERROR(component, ...) \
  MCAM_LOG_AT(::mcam::common::LogLevel::Error, component, __VA_ARGS__)
