#include "net/network.hpp"

#include <stdexcept>

namespace mcam::net {

SimTime Socket::send(const Address& dst, Bytes payload) {
  return net_.submit(*this, dst, std::move(payload));
}

std::optional<Datagram> Socket::receive() {
  if (rx_.empty()) return std::nullopt;
  Datagram d = std::move(rx_.front());
  rx_.pop_front();
  return d;
}

SimNetwork::SimNetwork(std::uint64_t seed, Impairments default_link)
    : rng_(seed), default_link_(default_link) {}

Socket& SimNetwork::open(Address addr) {
  auto [it, inserted] =
      sockets_.try_emplace(addr, std::make_unique<Socket>(*this, addr));
  if (!inserted)
    throw std::logic_error("address already bound: " + addr.to_string());
  return *it->second;
}

void SimNetwork::set_link(const std::string& from_host,
                          const std::string& to_host, Impairments imp) {
  links_[{from_host, to_host}] = imp;
}

const Impairments& SimNetwork::link_for(const std::string& from,
                                        const std::string& to) const {
  auto it = links_.find({from, to});
  return it == links_.end() ? default_link_ : it->second;
}

SimTime SimNetwork::submit(Socket& from, const Address& dst, Bytes payload) {
  const SimTime sent_at = clock_.now();
  ++stats_.sent;
  stats_.bytes_sent += payload.size();

  const Impairments& link = link_for(from.addr_.host, dst.host);
  if (link.loss > 0.0 && rng_.chance(link.loss)) {
    ++stats_.dropped;
    return sent_at;
  }

  // Serialization delay: the link transmits one datagram at a time.
  SimTime depart = sent_at;
  if (link.bandwidth_bps > 0.0) {
    const auto key = std::make_pair(from.addr_.host, dst.host);
    SimTime& free_at = link_free_at_[key];
    if (free_at > depart) depart = free_at;
    const double tx_seconds =
        static_cast<double>(payload.size()) * 8.0 / link.bandwidth_bps;
    depart += SimTime::from_s(tx_seconds);
    free_at = depart;
  }

  SimTime arrival = depart + link.latency;
  if (link.jitter.ns > 0)
    arrival += SimTime::from_ns(static_cast<std::int64_t>(
        rng_.uniform() * static_cast<double>(link.jitter.ns)));

  Pending p;
  p.at = arrival;
  p.seq = next_seq_++;
  p.datagram = Datagram{from.addr_, dst, std::move(payload), sent_at, arrival};
  queue_.push(std::move(p));
  return sent_at;
}

void SimNetwork::run_until(SimTime t) {
  while (!queue_.empty() && queue_.top().at <= t) {
    Pending p = queue_.top();
    queue_.pop();
    clock_.advance_to(p.at);
    auto it = sockets_.find(p.datagram.dst);
    if (it == sockets_.end()) {
      ++stats_.dropped;  // no listener: ICMP-less silent drop
      continue;
    }
    ++stats_.delivered;
    stats_.bytes_delivered += p.datagram.payload.size();
    it->second->rx_.push_back(std::move(p.datagram));
  }
  clock_.advance_to(t);
}

void SimNetwork::run_all() {
  while (!queue_.empty()) run_until(queue_.top().at);
}

std::optional<SimTime> SimNetwork::next_event() const {
  if (queue_.empty()) return std::nullopt;
  return queue_.top().at;
}

}  // namespace mcam::net
