// In-process datagram network with deterministic impairments.
//
// Stands in for the paper's UDP/IP/FDDI campus network (DESIGN.md §2): an
// unreliable, unordered-on-loss datagram service with configurable
// propagation latency, jitter, loss probability and link bandwidth. The
// XMovie MTP stream protocol (src/mtp) runs on top of it, exactly as the
// paper runs MTP "directly on top of UDP, IP and FDDI" (§3).
//
// Everything is driven by simulated time (common::SimTime) and a seeded RNG,
// so every experiment is reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"

namespace mcam::net {

using common::Bytes;
using common::SimTime;

/// host:port endpoint address. Hosts are symbolic names ("ksr1", "client1").
struct Address {
  std::string host;
  std::uint16_t port = 0;

  auto operator<=>(const Address&) const = default;
  [[nodiscard]] std::string to_string() const {
    return host + ":" + std::to_string(port);
  }
};

/// Per-link channel characteristics.
struct Impairments {
  SimTime latency = SimTime::from_us(500);  // propagation delay
  SimTime jitter{};                         // uniform [0, jitter) added delay
  double loss = 0.0;                        // drop probability per datagram
  double bandwidth_bps = 100e6;             // 0 ⇒ infinite (no serialization)
};

/// One delivered (or in-flight) datagram.
struct Datagram {
  Address src;
  Address dst;
  Bytes payload;
  SimTime sent_at{};
  SimTime delivered_at{};
};

/// Aggregate network counters (Table 1 measurements read these).
struct NetStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_delivered = 0;

  [[nodiscard]] double delivery_ratio() const noexcept {
    return sent == 0 ? 1.0
                     : static_cast<double>(delivered) /
                           static_cast<double>(sent);
  }
};

class SimNetwork;

/// A bound datagram endpoint. Obtained from SimNetwork::open(); owned by the
/// network (stable reference for the lifetime of the network).
class Socket {
 public:
  Socket(SimNetwork& net, Address addr) : net_(net), addr_(std::move(addr)) {}

  [[nodiscard]] const Address& address() const noexcept { return addr_; }

  /// Send a datagram. Loss/delay applied by the network; returns the send
  /// timestamp.
  SimTime send(const Address& dst, Bytes payload);

  /// Pop the next delivered datagram, if any.
  std::optional<Datagram> receive();
  [[nodiscard]] bool has_data() const noexcept { return !rx_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return rx_.size(); }

 private:
  friend class SimNetwork;
  SimNetwork& net_;
  Address addr_;
  std::deque<Datagram> rx_;
};

/// The network itself: sockets, links, event queue, clock.
class SimNetwork {
 public:
  explicit SimNetwork(std::uint64_t seed = 1994,
                      Impairments default_link = {});

  /// Bind a socket; throws if the address is taken.
  Socket& open(Address addr);

  /// Configure the directed link host→host (applies to all ports).
  void set_link(const std::string& from_host, const std::string& to_host,
                Impairments imp);

  [[nodiscard]] SimTime now() const noexcept { return clock_.now(); }

  /// Deliver everything scheduled up to and including `t`; clock advances.
  void run_until(SimTime t);
  /// Deliver all in-flight datagrams.
  void run_all();
  /// Time of the next scheduled delivery (nullopt if none in flight).
  [[nodiscard]] std::optional<SimTime> next_event() const;

  [[nodiscard]] const NetStats& stats() const noexcept { return stats_; }

 private:
  friend class Socket;

  struct Pending {
    SimTime at{};
    std::uint64_t seq = 0;  // FIFO tie-break for determinism
    Datagram datagram;

    bool operator>(const Pending& o) const noexcept {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  SimTime submit(Socket& from, const Address& dst, Bytes payload);
  const Impairments& link_for(const std::string& from,
                              const std::string& to) const;

  common::SimClock clock_;
  common::Rng rng_;
  Impairments default_link_;
  std::map<std::pair<std::string, std::string>, Impairments> links_;
  std::map<std::pair<std::string, std::string>, SimTime> link_free_at_;
  std::map<Address, std::unique_ptr<Socket>> sockets_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> queue_;
  std::uint64_t next_seq_ = 0;
  NetStats stats_;
};

}  // namespace mcam::net
