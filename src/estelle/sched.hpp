// The three built-in Executor backends.
//
// All honor the Estelle scheduling semantics of §4 of the paper:
//
//   * parent precedence — a child may execute only if no ancestor up to its
//     system module has a fireable transition; parent and child never run in
//     the same step;
//   * children of process-like parents may fire in parallel (one transition
//     per module per step);
//   * children of activity-like parents are mutually exclusive — at most one
//     transition fires in the whole child forest per step;
//   * system modules are mutually independent and asynchronous.
//
// Backends (construct them through make_executor, not by type — this header
// is an implementation detail of src/estelle/):
//   SequentialScheduler   — ExecutorKind::Sequential. Single processor,
//                           virtual time; the baseline of every speedup
//                           measurement.
//   ParallelSimScheduler  — ExecutorKind::ParallelSim. Maps modules to units
//                           (OSF/1 threads) and units to simulated processors
//                           via sim::Engine; reproduces the KSR1 experiments
//                           (§5.1, §5.2).
//   ThreadedScheduler     — ExecutorKind::Threaded. Real std::thread
//                           execution with deterministic output commit order;
//                           proves the runtime is actually parallel-safe.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "estelle/conflict.hpp"
#include "estelle/executor.hpp"
#include "estelle/module.hpp"
#include "estelle/ready_set.hpp"
#include "estelle/worker_pool.hpp"
#include "sim/engine.hpp"

namespace mcam::estelle {

/// Compute the firing set of one system-module subtree at time `now`,
/// honoring parent precedence and process/activity semantics. Also returns
/// (via scan_effort) the number of guards evaluated, which models the
/// scheduler's selection work.
std::vector<FiringCandidate> collect_firing_set(Module& system_module,
                                                SimTime now,
                                                int* scan_effort = nullptr);

/// Fire one candidate: announce it to `observer` (if any), consume the
/// matched interaction (if any), run the action, apply the to-state, stamp
/// the state-entry time.
void fire(const FiringCandidate& c, SimTime now,
          RunObserver* observer = nullptr);

/// Single-processor executor with virtual time. Models the classic
/// centralized Estelle scheduler: each step evaluates the dirty-set ready
/// modules (cost scan_per_guard per examined guard; ExecutorConfig::full_scan
/// restores the tree-walking legacy behavior) and executes one firing set
/// member at a time.
class SequentialScheduler : public ExecutorBase {
 public:
  /// Backends configure themselves straight from ExecutorConfig (the single
  /// source of defaults), reading the fields they understand; `kind` is
  /// ignored — constructing the type IS the kind selection.
  explicit SequentialScheduler(Specification& spec,
                               const ExecutorConfig& cfg = {});

  [[nodiscard]] ExecutorKind kind() const noexcept override {
    return ExecutorKind::Sequential;
  }

 private:
  bool step() override;  // one round; returns false when quiescent

  SimTime sched_per_transition_;
  SimTime scan_per_guard_;
  SpecReadySet ready_;
  bool full_scan_;
  bool verify_;
};

/// Parallel executor over the simulated multiprocessor. Round-based: each
/// round the firing set is computed from a consistent snapshot and its
/// members execute on their units in parallel (subject to processor
/// availability, context-switch and message costs). The per-round barrier is
/// a conservative approximation of free-running OSF/1 threads; it slightly
/// understates overlap, so measured speedups are lower bounds.
class ParallelSimScheduler : public ExecutorBase {
 public:
  explicit ParallelSimScheduler(Specification& spec,
                                const ExecutorConfig& cfg = {});

  [[nodiscard]] ExecutorKind kind() const noexcept override {
    return ExecutorKind::ParallelSim;
  }
  [[nodiscard]] int unit_count() const noexcept override {
    return engine_.task_count();
  }

 private:
  int unit_of(Module& m);
  bool step() override;
  void finalize_stats() override;

  int processors_;
  Mapping mapping_;
  sim::Engine engine_;
  std::unordered_map<std::uint64_t, int> unit_by_module_;
};

/// Real-thread executor (correctness vehicle). Each round, the firing set is
/// split by ConflictAnalysis into *conflicting* candidates — modules that
/// share a channel (or loss Rng) with another member of the round — and
/// *independent* ones. Conflicting candidates execute on the coordinating
/// thread, in candidate order, each revalidated with is_fireable() and
/// delivered immediately: exactly the sequential scheduler's discipline, so
/// ill-formed (conflicting) specifications no longer race or diverge.
/// Independent candidates execute on a persistent WorkerPool (worker_pool.hpp
/// — no std::thread construction in the round hot loop) with outputs
/// captured per candidate and committed in candidate order after the epoch
/// barrier. Observers see every firing in candidate order, announced on the
/// coordinating thread before the action executes (see the observer contract
/// in executor.hpp).
///
/// The pool width is ExecutorConfig::threads (0 ⇒ hardware_concurrency()),
/// overridable per run with RunOptions::worker_count; the pool is built on
/// the first parallel round and reused across rounds and run() calls,
/// resizing only when a run asks for a different width.
class ThreadedScheduler : public ExecutorBase {
 public:
  explicit ThreadedScheduler(Specification& spec,
                             const ExecutorConfig& cfg = {});

  [[nodiscard]] ExecutorKind kind() const noexcept override {
    return ExecutorKind::Threaded;
  }
  [[nodiscard]] int unit_count() const noexcept override;

  /// The persistent pool (null until the first parallel round).
  [[nodiscard]] const WorkerPool* pool() const noexcept { return pool_.get(); }

 private:
  bool step() override;
  /// Execute one collected round (shared by the ready-set and full-scan
  /// paths). `candidates` must stay valid across the call.
  void run_round(const std::vector<FiringCandidate>& candidates);
  /// Total reserved capacity of the persistent round scratch (allocation
  /// accounting: a steady-state round must not move this).
  [[nodiscard]] std::size_t round_footprint() const noexcept;
  /// The pool at this round's effective width (RunOptions::worker_count when
  /// set, else the configured count).
  WorkerPool& ensure_pool();

  int threads_;  // configured width; 0 ⇒ hardware_concurrency()
  std::unique_ptr<WorkerPool> pool_;
  /// Built lazily on the first round (the constructor may precede
  /// Specification::initialize() in principle; rounds cannot).
  std::unique_ptr<ConflictAnalysis> analysis_;
  SpecReadySet ready_;
  bool full_scan_;
  bool verify_;
  // Persistent round scratch (high-water sized; steady-state rounds never
  // allocate): the conflict split, the deferred-candidate indices, and the
  // per-candidate output-capture pool the workers write into.
  std::vector<char> conflicting_;
  std::vector<std::size_t> parallel_;
  std::vector<OutputCapture> captures_;
  /// What the ≤16-byte worker lambdas ([this, k] — small enough for
  /// std::function's inline storage, so submitting tasks does not allocate)
  /// read instead of capturing it.
  struct RoundCtx {
    const FiringCandidate* candidates = nullptr;
    const std::size_t* parallel = nullptr;
    OutputCapture* captures = nullptr;
    SimTime fire_time{};
  };
  RoundCtx round_ctx_;
};

}  // namespace mcam::estelle
