// Estelle schedulers.
//
// Three executors over the same module tree, all honoring the Estelle
// scheduling semantics of §4 of the paper:
//
//   * parent precedence — a child may execute only if no ancestor up to its
//     system module has a fireable transition; parent and child never run in
//     the same step;
//   * children of process-like parents may fire in parallel (one transition
//     per module per step);
//   * children of activity-like parents are mutually exclusive — at most one
//     transition fires in the whole child forest per step;
//   * system modules are mutually independent and asynchronous.
//
// Executors:
//   SequentialScheduler       — single processor, virtual time; the baseline
//                               of every speedup measurement.
//   ParallelSimScheduler      — maps modules to units (OSF/1 threads) and
//                               units to simulated processors via sim::Engine;
//                               reproduces the KSR1 experiments (§5.1, §5.2).
//   ThreadedScheduler         — real std::thread execution with deterministic
//                               output commit order; proves the runtime is
//                               actually parallel-safe (used by tests).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "estelle/module.hpp"
#include "sim/engine.hpp"

namespace mcam::estelle {

using common::SimTime;

/// A (module, transition) pair chosen for one step.
struct FiringCandidate {
  Module* module = nullptr;
  const Transition* transition = nullptr;
};

/// Compute the firing set of one system-module subtree at time `now`,
/// honoring parent precedence and process/activity semantics. Also returns
/// (via scan_effort) the number of guards evaluated, which models the
/// scheduler's selection work.
std::vector<FiringCandidate> collect_firing_set(Module& system_module,
                                                SimTime now,
                                                int* scan_effort = nullptr);

/// Fire one candidate: consume the matched interaction (if any), run the
/// action, apply the to-state, stamp the state-entry time.
void fire(const FiringCandidate& c, SimTime now);

/// Module→unit mapping policies (§3, §5.2 and [6] as cited by the paper).
enum class Mapping {
  /// One OSF/1 thread per Estelle module — the code generator's default,
  /// "maximum degree of parallelism allowed by Estelle semantics".
  ThreadPerModule,
  /// As many units as processors; modules assigned round-robin. §5.2's
  /// grouping scheme that removes synchronization losses.
  GroupedUnits,
  /// All modules of one connection subtree share a unit — the
  /// connection-per-processor layout that [6] found superior.
  ConnectionPerProcessor,
  /// One unit per protocol layer (tree depth) — the layout [6] found
  /// inferior; included so the comparison can be reproduced.
  LayerPerProcessor,
};

[[nodiscard]] const char* mapping_name(Mapping m) noexcept;

struct SchedulerStats {
  SimTime time{};          // virtual completion time
  std::uint64_t fired = 0;
  std::uint64_t rounds = 0;
  SimTime busy{};          // transition execution time
  SimTime sched_time{};    // selection + bookkeeping time
  SimTime switch_time{};   // context switches (parallel only)
  SimTime msg_time{};      // inter-unit messages (parallel only)

  [[nodiscard]] double scheduler_share() const noexcept {
    const double total = static_cast<double>(busy.ns + sched_time.ns +
                                             switch_time.ns + msg_time.ns);
    return total == 0.0 ? 0.0 : static_cast<double>(sched_time.ns) / total;
  }
};

/// Single-processor executor with virtual time. Models the classic
/// centralized Estelle scheduler: each step scans the module tree (cost
/// scan_per_guard per examined guard) and executes one firing set member at
/// a time.
class SequentialScheduler {
 public:
  struct Config {
    SimTime sched_per_transition = SimTime::from_us(3);
    SimTime scan_per_guard = SimTime::from_us(1);
    std::uint64_t max_steps = 1'000'000;
  };

  explicit SequentialScheduler(Specification& spec);
  SequentialScheduler(Specification& spec, Config cfg);

  /// Run until quiescence (no fireable transition anywhere) or max_steps.
  SchedulerStats run();
  /// Run until `done()` returns true (checked between rounds) or quiescence.
  SchedulerStats run_until(const std::function<bool()>& done);

  [[nodiscard]] SimTime now() const noexcept { return now_; }

 private:
  bool step();  // one round; returns false when quiescent

  Specification& spec_;
  Config cfg_;
  SimTime now_{};
  SchedulerStats stats_;
};

/// Parallel executor over the simulated multiprocessor. Round-based: each
/// round the firing set is computed from a consistent snapshot and its
/// members execute on their units in parallel (subject to processor
/// availability, context-switch and message costs). The per-round barrier is
/// a conservative approximation of free-running OSF/1 threads; it slightly
/// understates overlap, so measured speedups are lower bounds.
class ParallelSimScheduler {
 public:
  struct Config {
    int processors = 4;
    Mapping mapping = Mapping::ThreadPerModule;
    sim::CostModel costs{};
    std::uint64_t max_rounds = 1'000'000;
  };

  ParallelSimScheduler(Specification& spec, Config cfg);

  SchedulerStats run();
  SchedulerStats run_until(const std::function<bool()>& done);

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] int unit_count() const noexcept { return engine_.task_count(); }

 private:
  int unit_of(Module& m);
  bool step();

  Specification& spec_;
  Config cfg_;
  sim::Engine engine_;
  std::unordered_map<std::uint64_t, int> unit_by_module_;
  SimTime now_{};
  SchedulerStats stats_;
};

/// Real-thread executor (correctness vehicle). Each round, the firing set
/// executes on `threads` std::threads; outputs are captured per candidate
/// and committed in deterministic candidate order after the join, so results
/// are bit-identical to the sequential executor for well-formed modules.
class ThreadedScheduler {
 public:
  struct Config {
    int threads = 2;
    std::uint64_t max_rounds = 1'000'000;
  };

  explicit ThreadedScheduler(Specification& spec);
  ThreadedScheduler(Specification& spec, Config cfg);

  SchedulerStats run();
  SchedulerStats run_until(const std::function<bool()>& done);

 private:
  bool step();

  Specification& spec_;
  Config cfg_;
  SimTime now_{};  // virtual: one tick per round (delay clauses still work)
  SchedulerStats stats_;
};

}  // namespace mcam::estelle
