// Estelle modules: hierarchy, attributes, transitions (ISO 9074).
//
// This is the runtime the paper's Pet/Dingo-derived code generator would
// emit into. §4 of the paper spells out Estelle's structural rules; all of
// them are enforced here (violations throw EstelleRuleError at construction
// time, the moment a specification becomes illegal):
//
//   R1  every active module has one of the four attributes; modules without
//       an attribute (Inactive) carry no transitions;
//   R2  a system module cannot be contained in another attributed module;
//   R3  each process/activity module is contained, perhaps indirectly, in a
//       system module;
//   R4  process / systemprocess modules may contain process or activity
//       children;
//   R5  activity / systemactivity modules may only contain activity
//       children;
//   R6  system modules are static: exactly one instance of each is created
//       at initialization and none can be created afterwards (enforced by
//       Specification::initialize() freezing the system-module population);
//   R7  a module instance can only be created/destroyed by its parent.
//
// Scheduling semantics (parent precedence, process-parallel vs
// activity-exclusive children) live in sched.hpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "estelle/interaction.hpp"

namespace mcam::estelle {

/// "No pending wakeup" sentinel for delay deadlines.
inline constexpr common::SimTime kNeverTime{
    std::numeric_limits<std::int64_t>::max()};

/// Estelle module attributes (§4 of the paper). `Inactive` represents an
/// unattributed structuring module (e.g. the specification root).
enum class Attribute {
  SystemProcess,
  SystemActivity,
  Process,
  Activity,
  Inactive,
};

[[nodiscard]] constexpr bool is_system(Attribute a) noexcept {
  return a == Attribute::SystemProcess || a == Attribute::SystemActivity;
}
[[nodiscard]] constexpr bool is_process_like(Attribute a) noexcept {
  return a == Attribute::SystemProcess || a == Attribute::Process;
}
[[nodiscard]] constexpr bool is_activity_like(Attribute a) noexcept {
  return a == Attribute::SystemActivity || a == Attribute::Activity;
}
[[nodiscard]] const char* attribute_name(Attribute a) noexcept;

/// Violation of an Estelle structural rule — a specification bug, hence an
/// exception rather than a Result.
class EstelleRuleError : public std::logic_error {
 public:
  explicit EstelleRuleError(const std::string& what)
      : std::logic_error(what) {}
};

class Module;

/// One Estelle transition. Fireability (evaluated by schedulers):
///   state matches `from`  ∧  (spontaneous ∨ head-of-queue kind matches)
///   ∧ provided(head)  ∧  (spontaneous ⇒ delay elapsed since state entry).
/// Among fireable transitions of one module, the lowest `priority` value
/// wins; declaration order breaks ties.
struct Transition {
  std::string name;
  int from_state = kAnyState;
  int to_state = kAnyState;  // kAnyState ⇒ no state change
  InteractionPoint* ip = nullptr;  // nullptr ⇒ spontaneous
  int kind = kAnyKind;
  std::function<bool(Module&, const Interaction*)> provided;  // optional
  int priority = 0;
  common::SimTime delay{};  // spontaneous transitions only
  common::SimTime cost = common::SimTime::from_us(10);  // simulated exec time
  std::function<void(Module&, const Interaction*)> action;  // required
};

/// Fluent builder; `.action(...)` finalizes and registers the transition.
class TransitionBuilder {
 public:
  TransitionBuilder(Module& module, std::string name);

  TransitionBuilder& from(int state) {
    t_.from_state = state;
    return *this;
  }
  TransitionBuilder& to(int state) {
    t_.to_state = state;
    return *this;
  }
  /// `when ip.<kind>` clause.
  TransitionBuilder& when(InteractionPoint& ip, int kind = kAnyKind) {
    t_.ip = &ip;
    t_.kind = kind;
    return *this;
  }
  TransitionBuilder& provided(
      std::function<bool(Module&, const Interaction*)> p) {
    t_.provided = std::move(p);
    return *this;
  }
  TransitionBuilder& priority(int p) {
    t_.priority = p;
    return *this;
  }
  TransitionBuilder& delay(common::SimTime d) {
    t_.delay = d;
    return *this;
  }
  TransitionBuilder& cost(common::SimTime c) {
    t_.cost = c;
    return *this;
  }
  void action(std::function<void(Module&, const Interaction*)> a);

 private:
  Module& module_;
  Transition t_;
};

/// Transition-selection strategy (§5.2 of the paper): LinearScan models the
/// generator emitting one big hard-coded if/else chain; StateTable models the
/// state-indexed transition table that wins once a module has more than ~4
/// transitions.
enum class DispatchKind { LinearScan, StateTable };

class Specification;
class ReadyScope;

/// Side-channel of one fireability evaluation, filled by is_fireable() /
/// select_fireable() when the caller passes one. The event-driven schedulers
/// (ready_set.hpp) use it to decide when a module must be looked at again:
///
///   next_deadline — earliest future time an immature delay clause scanned
///     on the way to (and including) the selected transition could mature.
///     Mirrors the legacy full-tree wakeup scan: a guarded delay contributes
///     only while its guard currently passes (guard flips are caught by the
///     guard_invoked rule below).
///   guard_invoked — a `provided` guard was actually evaluated. Guards are
///     opaque functions that may read state the runtime cannot hook (a
///     captured budget shared across modules, another queue's length), so a
///     module whose evaluation consulted any guard stays in the ready set
///     and is re-examined every round — the conservative rule that keeps
///     dirty-set scheduling exact even on ill-formed specifications.
struct ReadinessProbe {
  common::SimTime next_deadline = kNeverTime;
  bool guard_invoked = false;
};

/// Specification-owned queue of modules whose fireability may have changed
/// since a scheduler last examined them. Producers are the dirty hooks
/// (interaction delivery, state changes, firing, transition registration);
/// the consumer is whichever executor is driving the specification, which
/// drains the queue at round boundaries into its own ready sets.
///
/// mark() is thread-safe (worker threads firing independent candidates or
/// whole shards mark concurrently); drain()/clear() are boundary operations
/// called only while workers are parked. Dedup is an intrusive atomic flag
/// on the module, so steady-state marking is one uncontended exchange.
class ReadyLedger {
 public:
  void mark(Module& m);

  /// Hand every queued module to `f` and empty the queue (resets the
  /// intrusive flags). Single-threaded by contract.
  template <typename F>
  void drain(F&& f) {
    if (entries_.empty()) return;
    for (Module* m : entries_) {
      reset_flag(*m);
      f(*m);
    }
    entries_.clear();
  }

  /// Forget the queued entries WITHOUT dereferencing them — used when a
  /// topology change may have destroyed queued modules; the caller resets
  /// the surviving modules' flags via a tree walk.
  void clear_unsafe() noexcept { entries_.clear(); }

  /// Claim the consumer role. Returns true when `owner` differs from the
  /// previous consumer — the new consumer must then seed itself with a full
  /// scan, because earlier events were drained by someone else.
  bool acquire(const void* owner) noexcept {
    const bool changed = owner_ != owner;
    owner_ = owner;
    return changed;
  }

  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return entries_.capacity();
  }

 private:
  static void reset_flag(Module& m) noexcept;

  std::mutex mu_;  // guards entries_ growth from concurrent markers
  std::vector<Module*> entries_;
  const void* owner_ = nullptr;
};

/// Base class for all Estelle modules. Subclasses declare IPs and
/// transitions in their constructor (or in on_init()).
class Module {
 public:
  Module(std::string name, Attribute attribute);
  virtual ~Module();

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  // ---- identity / tree -------------------------------------------------
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::string path() const;
  [[nodiscard]] Attribute attribute() const noexcept { return attribute_; }
  [[nodiscard]] Module* parent() const noexcept { return parent_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Module>>& children()
      const noexcept {
    return children_;
  }
  [[nodiscard]] std::uint64_t instance_id() const noexcept { return id_; }

  /// Create a child module (rule R7: only via the parent). Enforces R1–R6.
  /// Returns a reference owned by this module.
  template <typename T, typename... Args>
  T& create_child(Args&&... args) {
    auto child = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *child;
    adopt(std::move(child));
    return ref;
  }

  /// Destroy a child subtree (rule R7). All IPs in the subtree are
  /// disconnected first so no dangling channel remains.
  void release_child(Module& child);

  /// Recursively count modules in this subtree (including this one).
  [[nodiscard]] std::size_t subtree_size() const noexcept;

  // ---- interaction points ----------------------------------------------
  /// Declare (or retrieve) an interaction point by name.
  InteractionPoint& ip(const std::string& name);
  [[nodiscard]] InteractionPoint* find_ip(const std::string& name) noexcept;
  [[nodiscard]] const std::vector<std::unique_ptr<InteractionPoint>>& ips()
      const noexcept {
    return ips_;
  }

  // ---- state machine -----------------------------------------------------
  [[nodiscard]] int state() const noexcept { return state_; }
  void set_state(int s) noexcept {
    state_ = s;
    mark_ready();
  }
  [[nodiscard]] common::SimTime state_entered_at() const noexcept {
    return state_entered_at_;
  }
  void note_state_entry(common::SimTime t) noexcept {
    state_entered_at_ = t;
    mark_ready();
  }

  TransitionBuilder trans(std::string name = {}) {
    return TransitionBuilder(*this, std::move(name));
  }
  void add_transition(Transition t);
  [[nodiscard]] const std::vector<Transition>& transitions() const noexcept {
    return transitions_;
  }

  [[nodiscard]] DispatchKind dispatch() const noexcept { return dispatch_; }
  void set_dispatch(DispatchKind k) noexcept {
    dispatch_ = k;
    index_dirty_ = true;
  }

  /// Select the fireable transition of *this module only* (no tree rules),
  /// honoring priority and declaration order. Returns nullptr if none.
  /// `now` drives delay clauses. Cost of the scan depends on dispatch():
  /// callers that model selection cost can use scan_effort() afterwards.
  /// `probe` (optional) reports readiness facts to the event-driven
  /// schedulers — see ReadinessProbe.
  [[nodiscard]] const Transition* select_fireable(
      common::SimTime now, ReadinessProbe* probe = nullptr);

  /// Enqueue this module into the specification's ready ledger: something
  /// that may change its fireability happened. Idempotent, thread-safe,
  /// no-op before the module joins a specification. Called by the runtime
  /// hooks (interaction delivery, firing, state changes); user code only
  /// needs it when mutating fireability inputs the runtime cannot see.
  void mark_ready() noexcept;

  /// Number of transition guards examined by the last select_fireable()
  /// call — the quantity the §5.2 dispatch experiment varies.
  [[nodiscard]] int last_scan_effort() const noexcept { return scan_effort_; }

  // ---- lifecycle ----------------------------------------------------------
  /// Called by Specification::initialize() (top-down) and by adopt() for
  /// dynamically created modules after the tree link is in place.
  virtual void on_init() {}

  [[nodiscard]] Specification* specification() const noexcept { return spec_; }

  /// The paper places each system module on a machine via comments in the
  /// Estelle source (§4.1); client machines are single-processor
  /// workstations while the server is the KSR1 multiprocessor (§3). Marking
  /// a system module as a uniprocessor host makes every parallel scheduler
  /// run its whole subtree on one unit, whatever the mapping policy.
  void set_uniprocessor_host(bool v) noexcept { uniprocessor_host_ = v; }
  [[nodiscard]] bool uniprocessor_host() const noexcept {
    return uniprocessor_host_;
  }

  /// Nearest ancestor (or self) that is a system module; nullptr if none.
  [[nodiscard]] Module* owning_system_module() noexcept;

  /// Shard this module executes on (kNoShard until a ConflictAnalysis has
  /// bound shards). One shard per system-module subtree: the id is stamped
  /// on every module of the subtree, and interaction delivery uses it to
  /// route cross-shard messages through the transfer mailboxes. Children
  /// created dynamically inherit the parent's shard immediately (adopt()),
  /// so mid-run creations stay correctly routed until the next analysis
  /// refresh.
  [[nodiscard]] int shard() const noexcept { return shard_; }
  void set_shard(int shard) noexcept { shard_ = shard; }

  /// Walk the subtree, depth-first, calling f on every module.
  void for_each(const std::function<void(Module&)>& f);

 private:
  friend class Specification;
  friend class ReadyLedger;
  friend class ReadyScope;

  void adopt(std::unique_ptr<Module> child);
  void check_child_rules(const Module& child) const;
  void set_specification(Specification* spec) noexcept;
  void rebuild_index();

  std::string name_;
  Attribute attribute_;
  Module* parent_ = nullptr;
  Specification* spec_ = nullptr;
  std::uint64_t id_ = 0;
  std::vector<std::unique_ptr<Module>> children_;
  std::vector<std::unique_ptr<InteractionPoint>> ips_;
  std::vector<Transition> transitions_;
  int state_ = 0;
  common::SimTime state_entered_at_{};
  DispatchKind dispatch_ = DispatchKind::StateTable;
  // Precomputed dispatch structures (what the code generator would emit):
  // the full (priority, declaration)-sorted chain, and per-state buckets
  // indexed directly by the state number plus one kAnyState bucket.
  std::vector<int> linear_order_;
  std::vector<std::vector<int>> state_buckets_;
  std::vector<int> any_bucket_;
  bool index_dirty_ = true;
  int scan_effort_ = 0;
  bool initialized_ = false;
  bool uniprocessor_host_ = false;
  int shard_ = -1;  // kNoShard; see shard()

  // ---- event-driven scheduling state (see ready_set.hpp) -----------------
  // Owned logically by the one ReadyScope currently driving this module
  // (whole-spec scope under Sequential/Threaded, the module's shard scope
  // under Sharded); scope handoffs reset everything via a full reseed.
  std::atomic<bool> ledger_marked_{false};  // queued in the spec ReadyLedger
  bool scope_ready_ = false;                // member of a scope's ready list
  const Transition* cached_fireable_ = nullptr;  // last evaluation's result
  int fireable_slot_ = -1;       // index in the scope's fireable list
  std::uint32_t preorder_ = 0;   // global document-order DFS index
  std::uint64_t claim_stamp_ = 0;  // activity-exclusion mark (per round)
  common::SimTime queued_deadline_ = kNeverTime;  // earliest heap entry
};

/// True iff `t` can fire in module `m` at time `now` (state, head-of-queue,
/// provided guard, delay clause). Shared by all schedulers and by fire()'s
/// revalidation. `probe` (optional) reports readiness facts — see
/// ReadinessProbe.
[[nodiscard]] bool is_fireable(const Transition& t, Module& m,
                               common::SimTime now,
                               ReadinessProbe* probe = nullptr);

/// The specification root: an Inactive module owning the system-module
/// forest. After initialize(), creating further system modules anywhere in
/// the tree violates rule R6 and throws.
class Specification {
 public:
  explicit Specification(std::string name);

  [[nodiscard]] Module& root() noexcept { return *root_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Freeze the system-module population and run on_init() hooks top-down.
  void initialize();
  [[nodiscard]] bool initialized() const noexcept { return initialized_; }

  /// All system modules in document order (stable across the run, R6).
  [[nodiscard]] std::vector<Module*> system_modules();

  /// Monotone counter bumped on every structural change (module adopted or
  /// released, channel connected or disconnected). ConflictAnalysis caches
  /// the version it was computed at and rebuilds only when it moved, so
  /// per-round freshness checks are one integer compare. Atomic because
  /// firing actions may adopt/connect concurrently on worker threads.
  [[nodiscard]] std::uint64_t topology_version() const noexcept {
    return topology_version_.load(std::memory_order_acquire);
  }
  void note_topology_change() noexcept {
    topology_version_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// The dirty-module queue feeding event-driven scheduling (ready_set.hpp).
  [[nodiscard]] ReadyLedger& ready_ledger() noexcept { return ready_ledger_; }

  /// Cross-shard delivery wake signal (interaction.hpp). The free-running
  /// executor registers itself here for the duration of a session so a
  /// passive shard is unparked the moment a foreign shard sends to it;
  /// nullptr (the default) means no one is listening. Atomic because the
  /// registration races with worker-thread deliveries at session boundaries.
  [[nodiscard]] CrossShardWakeSink* cross_shard_wake_sink() const noexcept {
    return wake_sink_.load(std::memory_order_acquire);
  }
  void set_cross_shard_wake_sink(CrossShardWakeSink* sink) noexcept {
    wake_sink_.store(sink, std::memory_order_release);
  }

 private:
  std::string name_;
  /// Declared before root_ so it outlives every module's destructor (a
  /// teardown hook may still reach the ledger through spec_).
  ReadyLedger ready_ledger_;
  std::unique_ptr<Module> root_;
  bool initialized_ = false;
  std::atomic<std::uint64_t> topology_version_{0};
  std::atomic<CrossShardWakeSink*> wake_sink_{nullptr};
};

/// While alive on a thread, Module::mark_ready() calls for modules of
/// `shard` route straight into `scope` — the ReadyScope owned and driven by
/// the calling thread — instead of the specification-global ReadyLedger.
/// This is what makes a free-running shard's dirty tracking lock-free: every
/// fireability event a shard round produces (firing, state change, pop,
/// same-shard delivery, drain) targets the shard's own modules, so it lands
/// in the shard's own ready list with no mutex and no cross-shard routing
/// pass. Marks for foreign-shard modules (possible only on specifications
/// ill-formed beyond the Estelle channel contract) still fall through to the
/// thread-safe global ledger.
class LocalReadyScopeBinding {
 public:
  LocalReadyScopeBinding(ReadyScope& scope, int shard) noexcept;
  ~LocalReadyScopeBinding();
  LocalReadyScopeBinding(const LocalReadyScopeBinding&) = delete;
  LocalReadyScopeBinding& operator=(const LocalReadyScopeBinding&) = delete;

 private:
  ReadyScope* prev_scope_;
  int prev_shard_;
};

}  // namespace mcam::estelle
