#include "estelle/module.hpp"

#include <algorithm>
#include <atomic>

#include "estelle/ready_set.hpp"

namespace mcam::estelle {

namespace {
std::atomic<std::uint64_t> g_next_instance_id{1};
}  // namespace

bool is_fireable(const Transition& t, Module& m, common::SimTime now,
                 ReadinessProbe* probe) {
  if (t.from_state != kAnyState && t.from_state != m.state()) return false;
  const Interaction* head = nullptr;
  if (t.ip != nullptr) {
    head = t.ip->head();
    if (head == nullptr) return false;
    if (t.kind != kAnyKind && head->kind != t.kind) return false;
  } else if (t.delay.ns > 0) {
    if (now - m.state_entered_at() < t.delay) {
      if (probe != nullptr) {
        // An immature delay defines the module's next wakeup — but, like the
        // legacy full-tree wakeup scan, only while its guard passes. The
        // guard evaluation itself makes the module sticky (guard_invoked),
        // so a later guard flip is caught by the per-round re-evaluation.
        bool pass = true;
        if (t.provided) {
          probe->guard_invoked = true;
          pass = t.provided(m, nullptr);
        }
        if (pass) {
          const common::SimTime ready = m.state_entered_at() + t.delay;
          if (ready < probe->next_deadline) probe->next_deadline = ready;
        }
      }
      return false;
    }
  }
  if (t.provided) {
    if (probe != nullptr) probe->guard_invoked = true;
    if (!t.provided(m, head)) return false;
  }
  return true;
}

const char* attribute_name(Attribute a) noexcept {
  switch (a) {
    case Attribute::SystemProcess:
      return "systemprocess";
    case Attribute::SystemActivity:
      return "systemactivity";
    case Attribute::Process:
      return "process";
    case Attribute::Activity:
      return "activity";
    case Attribute::Inactive:
      return "inactive";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// TransitionBuilder

TransitionBuilder::TransitionBuilder(Module& module, std::string name)
    : module_(module) {
  t_.name = std::move(name);
}

void TransitionBuilder::action(
    std::function<void(Module&, const Interaction*)> a) {
  t_.action = std::move(a);
  module_.add_transition(std::move(t_));
}

// ---------------------------------------------------------------------------
// Module

Module::Module(std::string name, Attribute attribute)
    : name_(std::move(name)),
      attribute_(attribute),
      id_(g_next_instance_id.fetch_add(1)) {}

Module::~Module() {
  // Disconnect all channels before members are destroyed so peers never see
  // a dangling pointer (IP destructors handle their own side too).
  for (auto& ip : ips_) disconnect(*ip);
}

std::string Module::path() const {
  return parent_ == nullptr ? name_ : parent_->path() + "." + name_;
}

void Module::check_child_rules(const Module& child) const {
  const Attribute c = child.attribute();
  if (c == Attribute::Inactive) {
    if (attribute_ != Attribute::Inactive)
      throw EstelleRuleError("inactive module '" + child.name() +
                             "' cannot be placed inside attributed module '" +
                             name_ + "' (" + attribute_name(attribute_) + ")");
    return;
  }
  if (is_system(c)) {
    // R2: no attributed ancestor.
    for (const Module* a = this; a != nullptr; a = a->parent()) {
      if (a->attribute() != Attribute::Inactive)
        throw EstelleRuleError("system module '" + child.name() +
                               "' cannot be contained in attributed module '" +
                               a->name() + "' (R2)");
    }
    // R6: system population static after initialization.
    if (spec_ != nullptr && spec_->initialized())
      throw EstelleRuleError(
          "cannot create system module '" + child.name() +
          "' after initialization: system modules are static (R6)");
    return;
  }
  // Process / Activity child: must sit inside a system module (R3) — i.e.
  // directly under an attributed module, whose chain is rooted at a system
  // module by induction.
  if (attribute_ == Attribute::Inactive)
    throw EstelleRuleError("module '" + child.name() + "' (" +
                           attribute_name(c) +
                           ") must be contained in a system module (R3)");
  if (c == Attribute::Process && !is_process_like(attribute_))
    throw EstelleRuleError("process module '" + child.name() +
                           "' cannot be a child of " +
                           attribute_name(attribute_) + " module '" + name_ +
                           "' (R5: activity modules contain only activities)");
  // Activity children are legal under any attributed parent (R4/R5).
}

void Module::adopt(std::unique_ptr<Module> child) {
  check_child_rules(*child);
  child->parent_ = this;
  child->set_specification(spec_);
  // Inherit the shard immediately: a module created by a firing action must
  // be routable before the next ConflictAnalysis refresh.
  child->for_each([this](Module& m) { m.shard_ = shard_; });
  Module& ref = *child;
  children_.push_back(std::move(child));
  if (spec_ != nullptr) spec_->note_topology_change();
  // Dynamically created modules (after initialize()) run their init hook
  // immediately; static ones are initialized by Specification::initialize().
  if (spec_ != nullptr && spec_->initialized())
    ref.for_each([](Module& m) {
      if (!m.initialized_) {
        m.initialized_ = true;
        m.on_init();
      }
    });
}

void Module::release_child(Module& child) {
  auto it = std::find_if(children_.begin(), children_.end(),
                         [&](const auto& c) { return c.get() == &child; });
  if (it == children_.end())
    throw EstelleRuleError("release_child: '" + child.name() +
                           "' is not a child of '" + name_ +
                           "' (R7: only the parent may destroy a module)");
  // Disconnect every channel into/out of the subtree before destruction.
  child.for_each([](Module& m) {
    for (auto& ip : m.ips_) disconnect(*ip);
  });
  children_.erase(it);
  if (spec_ != nullptr) spec_->note_topology_change();
}

std::size_t Module::subtree_size() const noexcept {
  std::size_t n = 1;
  for (const auto& c : children_) n += c->subtree_size();
  return n;
}

InteractionPoint& Module::ip(const std::string& name) {
  if (InteractionPoint* existing = find_ip(name)) return *existing;
  ips_.push_back(std::make_unique<InteractionPoint>(*this, name));
  return *ips_.back();
}

InteractionPoint* Module::find_ip(const std::string& name) noexcept {
  for (auto& p : ips_)
    if (p->name() == name) return p.get();
  return nullptr;
}

void Module::add_transition(Transition t) {
  if (attribute_ == Attribute::Inactive)
    throw EstelleRuleError("inactive module '" + name_ +
                           "' cannot declare transitions (R1)");
  if (!t.action)
    throw EstelleRuleError("transition '" + t.name + "' of '" + name_ +
                           "' has no action");
  if (t.ip != nullptr && &t.ip->owner() != this)
    throw EstelleRuleError("transition '" + t.name + "' of '" + name_ +
                           "' references an interaction point of module '" +
                           t.ip->owner().name() + "'");
  if (t.ip != nullptr && t.delay.ns > 0)
    throw EstelleRuleError("transition '" + t.name + "' of '" + name_ +
                           "' combines when- and delay-clauses");
  transitions_.push_back(std::move(t));
  index_dirty_ = true;
  // A transition registered mid-run (dynamic specialization) must be seen by
  // the event-driven schedulers without a topology change.
  mark_ready();
}

void Module::rebuild_index() {
  auto by_priority = [this](int a, int b) {
    const auto& ta = transitions_[static_cast<std::size_t>(a)];
    const auto& tb = transitions_[static_cast<std::size_t>(b)];
    return ta.priority != tb.priority ? ta.priority < tb.priority : a < b;
  };

  linear_order_.resize(transitions_.size());
  for (std::size_t i = 0; i < linear_order_.size(); ++i)
    linear_order_[i] = static_cast<int>(i);
  std::sort(linear_order_.begin(), linear_order_.end(), by_priority);

  state_buckets_.clear();
  any_bucket_.clear();
  int max_state = -1;
  for (const Transition& t : transitions_)
    if (t.from_state != kAnyState) max_state = std::max(max_state, t.from_state);
  state_buckets_.resize(static_cast<std::size_t>(max_state + 1));
  for (int i : linear_order_) {
    const Transition& t = transitions_[static_cast<std::size_t>(i)];
    if (t.from_state == kAnyState)
      any_bucket_.push_back(i);
    else if (t.from_state >= 0)
      state_buckets_[static_cast<std::size_t>(t.from_state)].push_back(i);
  }
  index_dirty_ = false;
}

const Transition* Module::select_fireable(common::SimTime now,
                                          ReadinessProbe* probe) {
  scan_effort_ = 0;
  if (transitions_.empty()) return nullptr;
  if (index_dirty_) rebuild_index();

  if (dispatch_ == DispatchKind::LinearScan) {
    // Hard-coded if/else chain: all transitions in (priority, decl) order,
    // first fireable wins; every guard on the way is evaluated.
    for (int i : linear_order_) {
      ++scan_effort_;
      Transition& t = transitions_[static_cast<std::size_t>(i)];
      if (is_fireable(t, *this, now, probe)) return &t;
    }
    return nullptr;
  }

  // StateTable: the current state indexes its bucket directly; only that
  // bucket and the kAnyState bucket are examined, merged by priority (both
  // are already priority-sorted).
  static const std::vector<int> kEmpty;
  const std::vector<int>& exact =
      state_ >= 0 && static_cast<std::size_t>(state_) < state_buckets_.size()
          ? state_buckets_[static_cast<std::size_t>(state_)]
          : kEmpty;
  const std::vector<int>& any = any_bucket_;
  std::size_t ei = 0;
  std::size_t ai = 0;
  auto better = [this](int a, int b) {
    const auto& ta = transitions_[static_cast<std::size_t>(a)];
    const auto& tb = transitions_[static_cast<std::size_t>(b)];
    return ta.priority != tb.priority ? ta.priority < tb.priority : a < b;
  };
  while (ei < exact.size() || ai < any.size()) {
    int idx;
    if (ei < exact.size() &&
        (ai >= any.size() || better(exact[ei], any[ai])))
      idx = exact[ei++];
    else
      idx = any[ai++];
    ++scan_effort_;
    Transition& t = transitions_[static_cast<std::size_t>(idx)];
    if (is_fireable(t, *this, now, probe)) return &t;
  }
  return nullptr;
}

namespace {

// The free-running executor's per-thread mark routing (LocalReadyScopeBinding).
thread_local ReadyScope* t_ready_scope = nullptr;
thread_local int t_ready_shard = kNoShard;

}  // namespace

LocalReadyScopeBinding::LocalReadyScopeBinding(ReadyScope& scope,
                                               int shard) noexcept
    : prev_scope_(t_ready_scope), prev_shard_(t_ready_shard) {
  t_ready_scope = &scope;
  t_ready_shard = shard;
}

LocalReadyScopeBinding::~LocalReadyScopeBinding() {
  t_ready_scope = prev_scope_;
  t_ready_shard = prev_shard_;
}

void Module::mark_ready() noexcept {
  if (t_ready_scope != nullptr && shard_ == t_ready_shard) {
    t_ready_scope->mark(*this);
    return;
  }
  if (spec_ != nullptr) spec_->ready_ledger().mark(*this);
}

// ---------------------------------------------------------------------------
// ReadyLedger

void ReadyLedger::mark(Module& m) {
  // The exchange dedups; the happens-before between a worker-thread mark and
  // the boundary-time drain comes from the worker pool's epoch barrier, not
  // from this flag.
  if (m.ledger_marked_.exchange(true, std::memory_order_acq_rel)) return;
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(&m);
}

void ReadyLedger::reset_flag(Module& m) noexcept {
  m.ledger_marked_.store(false, std::memory_order_release);
}

Module* Module::owning_system_module() noexcept {
  for (Module* cursor = this; cursor != nullptr; cursor = cursor->parent())
    if (is_system(cursor->attribute())) return cursor;
  return nullptr;
}

void Module::for_each(const std::function<void(Module&)>& f) {
  f(*this);
  for (auto& c : children_) c->for_each(f);
}

void Module::set_specification(Specification* spec) noexcept {
  spec_ = spec;
  for (auto& c : children_) c->set_specification(spec);
}

// ---------------------------------------------------------------------------
// Specification

Specification::Specification(std::string name)
    : name_(std::move(name)),
      root_(std::make_unique<Module>("spec:" + name_, Attribute::Inactive)) {
  root_->set_specification(this);
}

void Specification::initialize() {
  if (initialized_)
    throw EstelleRuleError("specification already initialized");
  initialized_ = true;
  root_->for_each([](Module& m) {
    if (!m.initialized_) {
      m.initialized_ = true;
      m.on_init();
    }
  });
}

std::vector<Module*> Specification::system_modules() {
  std::vector<Module*> out;
  root_->for_each([&](Module& m) {
    if (is_system(m.attribute())) out.push_back(&m);
  });
  return out;
}

}  // namespace mcam::estelle
