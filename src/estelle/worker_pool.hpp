// Persistent worker pool shared by the real-thread executor backends.
//
// The paper's wall-clock claim (§5) is that parallel transition firing beats
// the sequential scheduler in real time, not just in modelled virtual time.
// Before this subsystem existed the Threaded and Sharded backends spawned
// fresh std::threads every round/epoch, so on small rounds the measured
// real-time "speedup" was dominated by thread construction. A WorkerPool is
// a fixed set of long-lived workers that an executor owns for its whole
// lifetime and re-arms every epoch:
//
//   * one task queue per worker, a fixed-slot FIFO ring. The epoch's tasks
//     are dealt to the rings by the coordinating thread (submit), then
//     released at once (launch / run_epoch) — tasks never start while the
//     coordinator is still preparing the epoch, which is what keeps observer
//     announcements and shard bookkeeping race-free without any locking of
//     their own. Ring slots are allocated once at pool construction; only a
//     burst deeper than the ring spills into a per-worker overflow vector
//     (counted by spills(), so executors can fold queue growth into their
//     rounds_with_allocation accounting). A steady-state epoch allocates
//     nothing anywhere in the pool.
//   * work stealing: a worker pops its own queue from the front; when empty
//     it steals from the back of the fullest victim (classic owner-LIFO /
//     thief-FIFO discipline at whole-task granularity). The executing
//     worker's id is passed to the task so callers can track ownership
//     migration (the sharded backend's per-shard steal counters).
//   * epoch barrier: run_epoch blocks the caller until every task of the
//     epoch has completed. run_epoch_helping additionally makes the caller
//     participate — the coordinating thread drains queued tasks alongside
//     the workers (as pseudo-worker id worker_count()) instead of parking
//     across the barrier, shaving the park/wake round-trip on low-core
//     hosts. launch() releases without blocking and wait_idle() is the
//     pool-wide quiesce point — together they host long-running continuation
//     tasks (the free-running executor's shard loops) that park and unpark
//     on their own synchronization without ever ending a pool epoch.
//   * workers park on a condition variable between epochs (the portable
//     equivalent of futex parking) — an idle pool costs no CPU, and waking
//     it is microseconds instead of the ~100µs-per-thread spawn cost it
//     replaces.
//   * graceful shutdown: the destructor wakes all workers and joins them.
//     Tasks still queued but never released are discarded — but a RELEASED
//     task always runs to completion first, so an owner of long-running
//     tasks must quiesce them (signal + wait_idle) before destroying or
//     resizing the pool, or the join would wait on them forever.
//
// Memory model: everything a task writes is visible to the coordinating
// thread after run_epoch / wait_idle returns (the barrier is a full
// happens-before edge through the pool mutex), so executors read worker
// results without further synchronization.
//
// Tasks must not throw (an escaping exception terminates the process, same
// as an exception escaping any detached thread) and must not call back into
// the pool. submit() during an epoch is allowed only from the coordinating
// thread and defers the task to the next release.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mcam::estelle {

class WorkerPool {
 public:
  /// Task body; the argument is the id of the worker executing it (not
  /// necessarily the one it was submitted to — stealing moves tasks, and a
  /// helping coordinator executes as pseudo-worker worker_count()).
  using Task = std::function<void(int)>;

  /// Fixed ring slots per worker queue; bursts deeper than this spill.
  static constexpr std::size_t kRingSlots = 64;

  /// Start `workers` (min 1) parked threads.
  explicit WorkerPool(int workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] int worker_count() const noexcept {
    return static_cast<int>(threads_.size());
  }

  /// Queue a task on worker `worker % worker_count()`'s ring. The task does
  /// not run until the next launch()/run_epoch().
  void submit(int worker, Task task);

  /// Release every queued task to the workers and block until all complete.
  /// Returns the number of tasks executed this epoch (0 ⇒ nothing queued,
  /// workers were not woken).
  std::size_t run_epoch();

  /// Like run_epoch(), but the calling thread helps drain the queues instead
  /// of parking across the barrier (it executes tasks as pseudo-worker id
  /// worker_count(), whose counters are the extra trailing entry of
  /// worker_stats()).
  std::size_t run_epoch_helping();

  /// Release every queued task and return immediately; the caller regains
  /// the thread while the tasks run. Pair with wait_idle(). Returns the
  /// number of tasks released (0 ⇒ nothing queued, workers not woken).
  std::size_t launch();

  /// Block until every released task has completed — the pool-wide quiesce
  /// point. A released long-running task must have been signalled to finish
  /// by its owner first; wait_idle() itself only waits.
  void wait_idle();

  /// Epochs run so far (diagnostics; lets tests prove pool reuse).
  [[nodiscard]] std::uint64_t epochs() const;

  /// Tasks queued but not yet released.
  [[nodiscard]] std::size_t pending() const;

  /// Tasks that overflowed a worker's fixed ring into the spill vector,
  /// cumulative. A steady-state epoch keeps this flat; executors fold growth
  /// into their allocation accounting.
  [[nodiscard]] std::uint64_t spills() const;

  /// Per-worker execution/steal counters, cumulative over the pool's life.
  /// The final extra entry belongs to the helping coordinator
  /// (run_epoch_helping's pseudo-worker).
  struct WorkerStats {
    std::uint64_t executed = 0;  // tasks this worker ran
    std::uint64_t stolen = 0;    // of those, taken from another queue
  };
  [[nodiscard]] std::vector<WorkerStats> worker_stats() const;

 private:
  /// Fixed-slot FIFO ring with an overflow vector used only past high-water.
  /// FIFO order is preserved across the spill boundary: once anything has
  /// spilled, later pushes spill too until the spill drains.
  struct TaskQueue {
    std::vector<Task> ring;  // kRingSlots, allocated at pool construction
    std::size_t head = 0;    // ring pop index
    std::size_t count = 0;   // live ring entries
    std::vector<Task> spill;
    std::size_t spill_head = 0;

    [[nodiscard]] std::size_t size() const noexcept {
      return count + (spill.size() - spill_head);
    }
    [[nodiscard]] bool empty() const noexcept { return size() == 0; }
    /// Returns true when the push spilled past the ring.
    bool push_back(Task t);
    Task pop_front();
    Task pop_back();
  };

  void worker_main(int w);
  /// Shared drain loop: pop own queue (front) or steal from the fullest
  /// victim (back); `self` == queues_.size() for the helping coordinator
  /// (no own queue, always steals). Expects `lock` held; returns with it
  /// held, when no task is poppable (remaining work is in flight).
  void drain_queues(std::size_t self, std::unique_lock<std::mutex>& lock);
  std::size_t launch_locked();

  /// One mutex guards the queues, counters and stats. The granularity is
  /// one acquisition per task plus one per park/wake — tasks are whole
  /// shard rounds or transition firings, so the lock is not the bottleneck
  /// (and it is what makes the epoch barrier a happens-before edge).
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers park here between epochs
  std::condition_variable done_cv_;  // the coordinator parks here during one
  std::vector<TaskQueue> queues_;
  std::vector<WorkerStats> stats_;   // workers_ + 1 (helping coordinator)
  std::vector<std::thread> threads_;
  std::uint64_t epoch_ = 0;        // bumped at each release
  std::uint64_t epochs_run_ = 0;   // releases that actually freed tasks
  std::uint64_t spills_ = 0;       // cumulative ring overflows
  std::size_t outstanding_ = 0;    // released tasks not yet completed
  bool stop_ = false;
};

}  // namespace mcam::estelle
