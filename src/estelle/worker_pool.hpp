// Persistent worker pool shared by the real-thread executor backends.
//
// The paper's wall-clock claim (§5) is that parallel transition firing beats
// the sequential scheduler in real time, not just in modelled virtual time.
// Before this subsystem existed the Threaded and Sharded backends spawned
// fresh std::threads every round/epoch, so on small rounds the measured
// real-time "speedup" was dominated by thread construction. A WorkerPool is
// a fixed set of long-lived workers that an executor owns for its whole
// lifetime and re-arms every epoch:
//
//   * one task deque per worker. The epoch's tasks are dealt to the deques
//     by the coordinating thread (submit), then released at once
//     (run_epoch) — tasks never start while the coordinator is still
//     preparing the epoch, which is what keeps observer announcements and
//     shard bookkeeping race-free without any locking of their own.
//   * work stealing: a worker pops its own deque from the front; when empty
//     it steals from the back of the fullest victim (classic owner-LIFO /
//     thief-FIFO discipline at whole-task granularity). The executing
//     worker's id is passed to the task so callers can track ownership
//     migration (the sharded backend's per-shard steal counters).
//   * epoch barrier: run_epoch blocks the caller until every task of the
//     epoch has completed. Workers park on a condition variable between
//     epochs (the portable equivalent of futex parking) — an idle pool
//     costs no CPU, and waking it is microseconds instead of the
//     ~100µs-per-thread spawn cost it replaces.
//   * graceful shutdown: the destructor wakes all workers and joins them.
//     Tasks still queued but never released by a run_epoch are discarded —
//     an epoch in flight cannot overlap destruction because both happen on
//     the owning executor's thread.
//
// Memory model: everything a task writes is visible to the coordinating
// thread after run_epoch returns (the epoch barrier is a full
// happens-before edge through the pool mutex), so executors read worker
// results without further synchronization.
//
// Tasks must not throw (an escaping exception terminates the process, same
// as an exception escaping any detached thread) and must not call back into
// the pool. submit() during an epoch is allowed only from the coordinating
// thread and defers the task to the next epoch.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mcam::estelle {

class WorkerPool {
 public:
  /// Task body; the argument is the id of the worker executing it (not
  /// necessarily the one it was submitted to — stealing moves tasks).
  using Task = std::function<void(int)>;

  /// Start `workers` (min 1) parked threads.
  explicit WorkerPool(int workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] int worker_count() const noexcept {
    return static_cast<int>(threads_.size());
  }

  /// Queue a task on worker `worker % worker_count()`'s deque. The task does
  /// not run until the next run_epoch().
  void submit(int worker, Task task);

  /// Release every queued task to the workers and block until all complete.
  /// Returns the number of tasks executed this epoch (0 ⇒ nothing queued,
  /// workers were not woken).
  std::size_t run_epoch();

  /// Epochs run so far (diagnostics; lets tests prove pool reuse).
  [[nodiscard]] std::uint64_t epochs() const;

  /// Tasks queued but not yet released by a run_epoch.
  [[nodiscard]] std::size_t pending() const;

  /// Per-worker execution/steal counters, cumulative over the pool's life.
  struct WorkerStats {
    std::uint64_t executed = 0;  // tasks this worker ran
    std::uint64_t stolen = 0;    // of those, taken from another deque
  };
  [[nodiscard]] std::vector<WorkerStats> worker_stats() const;

 private:
  void worker_main(int w);

  /// One mutex guards the deques, counters and stats. The granularity is
  /// one acquisition per task plus one per park/wake — tasks are whole
  /// shard rounds or transition firings, so the lock is not the bottleneck
  /// (and it is what makes the epoch barrier a happens-before edge).
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers park here between epochs
  std::condition_variable done_cv_;  // the coordinator parks here during one
  std::vector<std::deque<Task>> queues_;
  std::vector<WorkerStats> stats_;
  std::vector<std::thread> threads_;
  std::uint64_t epoch_ = 0;        // bumped at each run_epoch release
  std::uint64_t epochs_run_ = 0;   // epochs that actually executed tasks
  std::size_t outstanding_ = 0;    // released tasks not yet completed
  bool stop_ = false;
};

}  // namespace mcam::estelle
