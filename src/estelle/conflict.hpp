// Static channel-conflict analysis over a frozen Estelle specification.
//
// The paper's argument for running system modules in parallel (§4: "system
// modules are mutually independent and asynchronous") is sound only as far
// as the modules really do interact exclusively through channels that the
// runtime serializes. This pass makes that boundary explicit. It computes:
//
//   * the shard assignment — one shard per system-module subtree, in
//     document order. Shard granularity is what honors uniprocessor_host():
//     a host's whole subtree is one shard, so no parallel backend can split
//     it, whatever its internal policy. Shard ids are stable for the life of
//     the specification because the system-module population is static (R6).
//   * the cross-shard channels — channels whose endpoints lie in different
//     shards (the Fig. 2 client↔server transport pipes). These are LEGAL:
//     the two-phase transfer mailboxes (interaction.hpp) serialize them.
//   * the conflicts — statically visible ways two shards can interact
//     *outside* the mailbox discipline, which no commit order can repair:
//       - a `provided`-guarded when-transition on a cross-shard endpoint
//         (the guard may observe a queue the remote shard appends to
//         mid-round, so immediate vs deferred delivery diverge);
//       - a loss-injection Rng shared by IPs in different shards (the
//         sender mutates it at output() time, outside any commit phase —
//         a real data race under any real-thread backend).
//     A specification with no conflicts is *conflict-free*: every backend
//     is obligated to produce the identical firing trace on it. (The sharded
//     backend announces after revalidation — see shard_executor.hpp — so its
//     announced trace matches even on specs that are ill-formed *within* one
//     shard.)
//   * per-transition conflict sets at channel/Rng granularity, collapsed to
//     a per-module signature. ThreadedScheduler uses them to decide which
//     same-round candidates may fire concurrently: candidates of modules
//     that share a channel (or a loss Rng) are serialized on the
//     coordinating thread with revalidation, which is what finally makes
//     ill-formed specifications run safely (and identically to the
//     sequential scheduler) under real threads.
//
// The analysis sees channels, not captured C++ state: modules that share
// mutable state must also share a channel for the runtime to serialize
// them. That is the Estelle contract anyway — modules communicate through
// interaction points only.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "estelle/module.hpp"

namespace mcam::estelle {

/// One shard: a system-module subtree (plus, for shard 0 onward, document
/// order is the id order).
struct ShardInfo {
  int id = 0;
  Module* system_module = nullptr;
  /// Every module of the subtree, depth-first (recomputed on refresh; the
  /// subtree population may change dynamically, the root may not — R6).
  std::vector<Module*> modules;
  bool uniprocessor_host = false;
};

/// A channel whose endpoints lie in different shards. Deliveries across it
/// go through the transfer mailboxes.
struct CrossShardChannel {
  InteractionPoint* a = nullptr;
  InteractionPoint* b = nullptr;
  int shard_a = 0;
  int shard_b = 0;
};

/// One statically detected conflict (see the header comment for the kinds).
struct ChannelConflict {
  enum class Kind {
    /// `provided`-guarded when-transition on a cross-shard endpoint.
    GuardedCrossShardQueue,
    /// Loss Rng shared by IPs in different shards.
    SharedLossRng,
  };
  Kind kind{};
  /// The two endpoints involved (for SharedLossRng: one IP per shard that
  /// uses the shared Rng).
  InteractionPoint* a = nullptr;
  InteractionPoint* b = nullptr;
  std::string detail;
};

[[nodiscard]] const char* conflict_kind_name(ChannelConflict::Kind k) noexcept;

/// The analysis result, rebuilt lazily when the specification's topology
/// version moves. Construction requires an initialized specification (the
/// shard population must be frozen, R6).
class ConflictAnalysis {
 public:
  explicit ConflictAnalysis(Specification& spec);

  /// Rebuild if the topology changed since the last build; also re-stamps
  /// shard ids onto every module (Module::set_shard), which is what arms
  /// the cross-shard routing in InteractionPoint::deliver. Cheap when
  /// nothing changed (one integer compare).
  void refresh();

  [[nodiscard]] Specification& specification() const noexcept { return spec_; }
  [[nodiscard]] const std::vector<ShardInfo>& shards() const noexcept {
    return shards_;
  }
  [[nodiscard]] int shard_count() const noexcept {
    return static_cast<int>(shards_.size());
  }
  /// Shard of `m` (kNoShard for modules outside any system subtree, e.g.
  /// the specification root).
  [[nodiscard]] int shard_of(const Module& m) const noexcept;

  [[nodiscard]] const std::vector<CrossShardChannel>& cross_shard_channels()
      const noexcept {
    return cross_channels_;
  }
  [[nodiscard]] const std::vector<ChannelConflict>& conflicts()
      const noexcept {
    return conflicts_;
  }
  [[nodiscard]] bool conflict_free() const noexcept {
    return conflicts_.empty();
  }

  /// True when candidates of these two modules must not fire concurrently in
  /// one round: the modules share at least one channel (either direction) or
  /// a loss Rng. Conservative at module granularity — a module's action may
  /// touch any of its own IPs. A module unknown to the analysis (created
  /// since the last refresh) conflicts with everything.
  [[nodiscard]] bool modules_conflict(const Module& a,
                                      const Module& b) const noexcept;

  /// Human-readable summary (shards, cross-shard channels, conflicts) for
  /// diagnostics and benches.
  [[nodiscard]] std::string to_string() const;

 private:
  void rebuild();

  Specification& spec_;
  std::uint64_t built_at_version_ = ~0ull;
  std::vector<ShardInfo> shards_;
  std::vector<CrossShardChannel> cross_channels_;
  std::vector<ChannelConflict> conflicts_;
  /// Per-module conflict signature: sorted ids of every channel (canonical
  /// endpoint pointer) and loss Rng the module's transitions may touch.
  std::unordered_map<const Module*, std::vector<std::uintptr_t>> signatures_;
};

}  // namespace mcam::estelle
