#include "estelle/trace.hpp"

#include "common/strf.hpp"
#include "estelle/module.hpp"

namespace mcam::estelle {

void TraceRecorder::on_fire(const Module& module, const Transition& transition,
                            common::SimTime now) {
  TraceEvent event;
  event.when = now;
  event.module_path = module.path();
  event.transition = transition.name;
  event.from_state = module.state();
  event.to_state =
      transition.to_state == kAnyState ? module.state() : transition.to_state;
  event.sequence = next_sequence_++;
  events_.push_back(std::move(event));
}

std::string TraceRecorder::to_string(std::size_t max_events) const {
  std::string out;
  const std::size_t n = std::min(events_.size(), max_events);
  for (std::size_t i = 0; i < n; ++i) {
    const TraceEvent& e = events_[i];
    out += common::strf("[%10.3f us] %s :: %s (%d -> %d)\n", e.when.micros(),
                        e.module_path.c_str(), e.transition.c_str(),
                        e.from_state, e.to_state);
  }
  if (events_.size() > max_events)
    out += common::strf("... %zu more events\n", events_.size() - max_events);
  return out;
}

std::vector<std::string> TraceRecorder::transition_names() const {
  std::vector<std::string> out;
  out.reserve(events_.size());
  for (const TraceEvent& e : events_) out.push_back(e.transition);
  return out;
}

}  // namespace mcam::estelle
