#include "estelle/conflict.hpp"

#include <algorithm>

#include "common/strf.hpp"

namespace mcam::estelle {

namespace {

/// Canonical id of the channel attached to `ip`: the lower endpoint address.
/// Both endpoints agree on it, so signature intersection detects sharing.
std::uintptr_t channel_id(const InteractionPoint& ip) noexcept {
  const auto self = reinterpret_cast<std::uintptr_t>(&ip);
  const auto peer = reinterpret_cast<std::uintptr_t>(ip.peer());
  return self < peer ? self : peer;
}

}  // namespace

const char* conflict_kind_name(ChannelConflict::Kind k) noexcept {
  switch (k) {
    case ChannelConflict::Kind::GuardedCrossShardQueue:
      return "guarded-cross-shard-queue";
    case ChannelConflict::Kind::SharedLossRng:
      return "shared-loss-rng";
  }
  return "?";
}

ConflictAnalysis::ConflictAnalysis(Specification& spec) : spec_(spec) {
  if (!spec.initialized())
    throw EstelleRuleError(
        "ConflictAnalysis requires an initialized specification (the "
        "system-module population must be frozen, R6)");
  rebuild();
}

void ConflictAnalysis::refresh() {
  if (built_at_version_ != spec_.topology_version()) rebuild();
}

int ConflictAnalysis::shard_of(const Module& m) const noexcept {
  return m.shard();
}

void ConflictAnalysis::rebuild() {
  built_at_version_ = spec_.topology_version();
  shards_.clear();
  cross_channels_.clear();
  conflicts_.clear();
  signatures_.clear();

  // Shard assignment: one shard per system module, document order. Stamp the
  // id on every module of the subtree (including modules outside any system
  // subtree, which get kNoShard via the initial sweep below).
  spec_.root().for_each([](Module& m) { m.set_shard(kNoShard); });
  for (Module* sys : spec_.system_modules()) {
    ShardInfo shard;
    shard.id = static_cast<int>(shards_.size());
    shard.system_module = sys;
    shard.uniprocessor_host = sys->uniprocessor_host();
    sys->for_each([&](Module& m) {
      m.set_shard(shard.id);
      shard.modules.push_back(&m);
    });
    shards_.push_back(std::move(shard));
  }

  // One pass over every IP: cross-shard channels, conflicts, signatures.
  // Loss Rngs are collected per shard so a shared instance is detected by
  // pointer identity.
  struct RngUse {
    common::Rng* rng;
    InteractionPoint* ip;
    int shard;
  };
  std::vector<RngUse> rng_uses;
  spec_.root().for_each([&](Module& m) {
    std::vector<std::uintptr_t>& sig = signatures_[&m];
    for (const auto& ip : m.ips()) {
      if (ip->loss_rng() != nullptr && ip->loss_probability() > 0.0) {
        rng_uses.push_back({ip->loss_rng(), ip.get(), m.shard()});
        sig.push_back(reinterpret_cast<std::uintptr_t>(ip->loss_rng()));
      }
      if (!ip->connected()) continue;
      sig.push_back(channel_id(*ip));
      InteractionPoint* peer = ip->peer();
      const int here = m.shard();
      const int there = peer->owner().shard();
      if (here == there) continue;
      // Record each cross-shard channel once, from its lower-shard endpoint.
      // The rule must be a pure function of specification STRUCTURE — never
      // of heap addresses — because the distributed runner uses the vector
      // position as the wire channel index and the a/b orientation as the
      // frame direction bit: every process that builds the same spec must
      // derive the identical table.
      if (here < there) cross_channels_.push_back({ip.get(), peer, here, there});
      // Conflict: a provided-guarded when-transition on this cross-shard
      // endpoint. The guard re-runs at revalidation/firing time and may
      // observe the queue the remote shard appends to, so immediate
      // (sequential) and deferred (mailbox) delivery diverge.
      for (const Transition& t : m.transitions()) {
        if (t.ip == ip.get() && t.provided) {
          conflicts_.push_back(
              {ChannelConflict::Kind::GuardedCrossShardQueue, ip.get(), peer,
               "transition '" + t.name + "' of '" + m.path() +
                   "' guards a queue fed from another shard"});
          break;
        }
      }
    }
    std::sort(sig.begin(), sig.end());
    sig.erase(std::unique(sig.begin(), sig.end()), sig.end());
  });

  // Shared loss Rng across shards: the sender mutates the Rng at output()
  // time, outside any commit phase.
  std::sort(rng_uses.begin(), rng_uses.end(),
            [](const RngUse& a, const RngUse& b) { return a.rng < b.rng; });
  for (std::size_t i = 0; i + 1 < rng_uses.size(); ++i) {
    for (std::size_t j = i + 1;
         j < rng_uses.size() && rng_uses[j].rng == rng_uses[i].rng; ++j) {
      if (rng_uses[j].shard != rng_uses[i].shard) {
        conflicts_.push_back(
            {ChannelConflict::Kind::SharedLossRng, rng_uses[i].ip,
             rng_uses[j].ip,
             "IPs '" + rng_uses[i].ip->owner().path() + "." +
                 rng_uses[i].ip->name() + "' and '" +
                 rng_uses[j].ip->owner().path() + "." +
                 rng_uses[j].ip->name() +
                 "' in different shards share one loss Rng"});
      }
    }
  }
}

bool ConflictAnalysis::modules_conflict(const Module& a,
                                        const Module& b) const noexcept {
  if (&a == &b) return true;
  const auto ita = signatures_.find(&a);
  const auto itb = signatures_.find(&b);
  // A module the analysis has not seen conflicts with everything.
  if (ita == signatures_.end() || itb == signatures_.end()) return true;
  const std::vector<std::uintptr_t>& sa = ita->second;
  const std::vector<std::uintptr_t>& sb = itb->second;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < sa.size() && j < sb.size()) {
    if (sa[i] == sb[j]) return true;
    if (sa[i] < sb[j])
      ++i;
    else
      ++j;
  }
  return false;
}

std::string ConflictAnalysis::to_string() const {
  std::string out = common::strf(
      "conflict analysis: %zu shard(s), %zu cross-shard channel(s), "
      "%zu conflict(s)\n",
      shards_.size(), cross_channels_.size(), conflicts_.size());
  for (const ShardInfo& s : shards_)
    out += common::strf("  shard %d: %s (%zu modules%s)\n", s.id,
                        s.system_module->path().c_str(), s.modules.size(),
                        s.uniprocessor_host ? ", uniprocessor host" : "");
  for (const CrossShardChannel& c : cross_channels_)
    out += common::strf(
        "  channel %s.%s <-> %s.%s crosses shards %d/%d\n",
        c.a->owner().path().c_str(), c.a->name().c_str(),
        c.b->owner().path().c_str(), c.b->name().c_str(), c.shard_a,
        c.shard_b);
  for (const ChannelConflict& c : conflicts_)
    out += common::strf("  conflict [%s]: %s\n", conflict_kind_name(c.kind),
                        c.detail.c_str());
  return out;
}

}  // namespace mcam::estelle
