// Execution tracing for Estelle runs.
//
// The paper's toolchain generated executable specifications "for validation
// purposes" before efficient runtime code (§4.2); validating a run means
// seeing which transitions fired, in what order, with what queue states.
// TraceRecorder captures exactly that. It is a RunObserver: pass it in
// RunOptions::observers and every fire event of that run lands in its event
// list — or attach it with Executor::add_run_observer to trace every run of
// one executor. Deterministic executors ⇒ byte-stable traces, so golden
// traces make strong regression tests.
//
//   TraceRecorder trace;
//   executor->run({.observers = {&trace}});
//   EXPECT_EQ(trace.transition_names(), golden);
//
// (The old process-global TraceRecorder::install() shim is gone; per-run
// observers and per-executor add_run_observer cover both of its uses.)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "estelle/executor.hpp"

namespace mcam::estelle {

struct TraceEvent {
  common::SimTime when{};
  std::string module_path;
  std::string transition;
  int from_state = 0;
  int to_state = 0;
  std::uint64_t sequence = 0;
};

class TraceRecorder : public RunObserver {
 public:
  void on_fire(const Module& module, const Transition& transition,
               common::SimTime now) override;

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  void clear() noexcept { events_.clear(); }

  /// One line per event: "[time] path :: transition (s -> s')".
  [[nodiscard]] std::string to_string(std::size_t max_events = 200) const;

  /// Names of transitions fired, in order — the usual golden-trace payload.
  [[nodiscard]] std::vector<std::string> transition_names() const;

 private:
  std::vector<TraceEvent> events_;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace mcam::estelle
