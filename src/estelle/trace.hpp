// Execution tracing for Estelle runs.
//
// The paper's toolchain generated executable specifications "for validation
// purposes" before efficient runtime code (§4.2); validating a run means
// seeing which transitions fired, in what order, with what queue states.
// TraceRecorder captures exactly that. It is a RunObserver: pass it in
// RunOptions::observers and every fire event of that run lands in its event
// list. Deterministic executors ⇒ byte-stable traces, so golden traces make
// strong regression tests.
//
//   TraceRecorder trace;
//   executor->run({.observers = {&trace}});
//   EXPECT_EQ(trace.transition_names(), golden);
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "estelle/executor.hpp"

namespace mcam::estelle {

struct TraceEvent {
  common::SimTime when{};
  std::string module_path;
  std::string transition;
  int from_state = 0;
  int to_state = 0;
  std::uint64_t sequence = 0;
};

class TraceRecorder : public RunObserver {
 public:
  /// Deprecated global shim. Installs this recorder as a process-wide
  /// observer that every executor appends to its per-run chain; passing
  /// nullptr uninstalls. Prefer RunOptions::observers — the global slot
  /// exists so pre-Executor call sites (ScopedTrace) keep working.
  static void install(TraceRecorder* recorder) noexcept;
  static TraceRecorder* current() noexcept;

  void on_fire(const Module& module, const Transition& transition,
               common::SimTime now) override {
    note_fire(module, transition, now);
  }

  void note_fire(const Module& module, const Transition& transition,
                 common::SimTime now);

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  void clear() noexcept { events_.clear(); }

  /// One line per event: "[time] path :: transition (s -> s')".
  [[nodiscard]] std::string to_string(std::size_t max_events = 200) const;

  /// Names of transitions fired, in order — the usual golden-trace payload.
  [[nodiscard]] std::vector<std::string> transition_names() const;

 private:
  std::vector<TraceEvent> events_;
  std::uint64_t next_sequence_ = 0;
};

/// RAII installer for the deprecated global shim.
class ScopedTrace {
 public:
  ScopedTrace() { TraceRecorder::install(&recorder_); }
  ~ScopedTrace() { TraceRecorder::install(nullptr); }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

  [[nodiscard]] TraceRecorder& recorder() noexcept { return recorder_; }

 private:
  TraceRecorder recorder_;
};

}  // namespace mcam::estelle
