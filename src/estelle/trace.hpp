// Execution tracing for Estelle runs.
//
// The paper's toolchain generated executable specifications "for validation
// purposes" before efficient runtime code (§4.2); validating a run means
// seeing which transitions fired, in what order, with what queue states.
// TraceRecorder captures exactly that: schedulers call note_fire() (via the
// install/uninstall hooks) and tests/tools inspect or pretty-print the
// event list. Deterministic schedulers ⇒ byte-stable traces, so golden
// traces make strong regression tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.hpp"

namespace mcam::estelle {

class Module;
struct Transition;

struct TraceEvent {
  common::SimTime when{};
  std::string module_path;
  std::string transition;
  int from_state = 0;
  int to_state = 0;
  std::uint64_t sequence = 0;
};

class TraceRecorder {
 public:
  /// Install as the global trace sink (only one at a time; RAII-style usage
  /// recommended: install in the ctor of a test fixture, uninstall in the
  /// dtor). Passing nullptr uninstalls.
  static void install(TraceRecorder* recorder) noexcept;
  static TraceRecorder* current() noexcept;

  void note_fire(const Module& module, const Transition& transition,
                 common::SimTime now);

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  void clear() noexcept { events_.clear(); }

  /// One line per event: "[time] path :: transition (s -> s')".
  [[nodiscard]] std::string to_string(std::size_t max_events = 200) const;

  /// Names of transitions fired, in order — the usual golden-trace payload.
  [[nodiscard]] std::vector<std::string> transition_names() const;

 private:
  std::vector<TraceEvent> events_;
  std::uint64_t next_sequence_ = 0;
};

/// RAII installer.
class ScopedTrace {
 public:
  ScopedTrace() { TraceRecorder::install(&recorder_); }
  ~ScopedTrace() { TraceRecorder::install(nullptr); }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

  [[nodiscard]] TraceRecorder& recorder() noexcept { return recorder_; }

 private:
  TraceRecorder recorder_;
};

}  // namespace mcam::estelle
