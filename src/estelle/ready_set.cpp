#include "estelle/ready_set.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <string>

#include "estelle/sched.hpp"

namespace mcam::estelle {

namespace {

/// Process-global round stamp for the activity-exclusion claim marks: a
/// fresh value per build_candidates call, never reused, so stale marks from
/// earlier rounds (or other scopes/executors) can never collide.
std::atomic<std::uint64_t> g_claim_stamp{0};

}  // namespace

void ReadyScope::mark(Module& m) {
  if (m.scope_ready_) return;
  m.scope_ready_ = true;
  ready_.push_back(&m);
}

const std::vector<FiringCandidate>& ReadyScope::collect(common::SimTime now) {
  const std::size_t before = footprint();
  round_guards_ = 0;
  pop_matured(now);
  evaluate(now);
  build_candidates();
  round_allocated_ = footprint() != before;
  return candidates_;
}

common::SimTime ReadyScope::next_deadline() const noexcept {
  return heap_.empty() ? kNeverTime : heap_.front().at;
}

ReadyScope::RoundAction ReadyScope::next_round(common::SimTime* now,
                                               common::SimTime deadline_cap) {
  if (!collect(*now).empty()) return RoundAction::Fire;
  const common::SimTime wake = next_deadline();
  if (wake == kNeverTime) return RoundAction::Park;
  // collect() popped every matured entry, so wake > *now; a leap that the
  // cap truncates to <= *now means the shard is pinned at the run deadline.
  const common::SimTime target = wake < deadline_cap ? wake : deadline_cap;
  if (target <= *now) return RoundAction::Park;
  *now = target;
  return RoundAction::Advance;
}

void ReadyScope::pop_matured(common::SimTime now) {
  const auto later = [](const Deadline& a, const Deadline& b) {
    return a.at > b.at;  // min-heap on deadline
  };
  while (!heap_.empty() && heap_.front().at <= now) {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    const Deadline d = heap_.back();
    heap_.pop_back();
    // Keep the "queued_deadline_ is the earliest queued entry" invariant;
    // later (stale) entries for the same module just re-mark it, harmlessly.
    if (d.module->queued_deadline_ == d.at)
      d.module->queued_deadline_ = kNeverTime;
    mark(*d.module);
  }
}

void ReadyScope::evaluate(common::SimTime now) {
  std::size_t keep = 0;
  for (std::size_t i = 0; i < ready_.size(); ++i) {
    Module* m = ready_[i];
    ReadinessProbe probe;
    const Transition* t = m->select_fireable(now, &probe);
    round_guards_ += static_cast<std::uint64_t>(m->last_scan_effort());
    set_fireable(*m, t);
    if (probe.next_deadline != kNeverTime)
      push_deadline(*m, probe.next_deadline);
    if (probe.guard_invoked) {
      // Sticky: a consulted guard may read state no hook can see; keep the
      // module under per-round re-evaluation until its guards go dormant.
      ready_[keep++] = m;
    } else {
      m->scope_ready_ = false;
    }
  }
  ready_.resize(keep);
}

void ReadyScope::set_fireable(Module& m, const Transition* t) {
  m.cached_fireable_ = t;
  if (t != nullptr) {
    if (m.fireable_slot_ < 0) {
      m.fireable_slot_ = static_cast<int>(fireable_.size());
      fireable_.push_back(&m);
    }
    return;
  }
  if (m.fireable_slot_ >= 0) {
    const auto slot = static_cast<std::size_t>(m.fireable_slot_);
    Module* last = fireable_.back();
    fireable_[slot] = last;
    last->fireable_slot_ = static_cast<int>(slot);
    fireable_.pop_back();
    m.fireable_slot_ = -1;
  }
}

void ReadyScope::push_deadline(Module& m, common::SimTime at) {
  if (m.queued_deadline_ <= at) return;  // an equal-or-earlier entry exists
  m.queued_deadline_ = at;
  heap_.push_back({at, &m});
  std::push_heap(heap_.begin(), heap_.end(),
                 [](const Deadline& a, const Deadline& b) {
                   return a.at > b.at;  // min-heap on deadline
                 });
}

void ReadyScope::build_candidates() {
  order_.clear();
  order_.insert(order_.end(), fireable_.begin(), fireable_.end());
  std::sort(order_.begin(), order_.end(),
            [](const Module* a, const Module* b) {
              return a->preorder_ < b->preorder_;
            });

  const std::uint64_t stamp =
      g_claim_stamp.fetch_add(1, std::memory_order_relaxed) + 1;
  candidates_.clear();
  for (Module* m : order_) {
    // Parent precedence: a fireable ancestor blocks the whole subtree.
    // Activity exclusion: the first (document-order) accepted candidate
    // under an activity-like module claims it, blocking the rest of that
    // child forest. Walking to the root is exactly "up to the system
    // module": modules above it are Inactive, carry no transitions, and so
    // are never fireable or activity-like.
    bool blocked = false;
    for (Module* a = m->parent(); a != nullptr; a = a->parent()) {
      if (a->cached_fireable_ != nullptr ||
          (is_activity_like(a->attribute()) && a->claim_stamp_ == stamp)) {
        blocked = true;
        break;
      }
    }
    if (blocked) continue;
    for (Module* a = m->parent(); a != nullptr; a = a->parent())
      if (is_activity_like(a->attribute())) a->claim_stamp_ = stamp;
    candidates_.push_back({m, m->cached_fireable_});
  }
}

std::size_t ReadyScope::footprint() const noexcept {
  return ready_.capacity() + fireable_.capacity() + heap_.capacity() +
         order_.capacity() + candidates_.capacity();
}

void ReadyScope::clear() noexcept {
  ready_.clear();
  fireable_.clear();
  heap_.clear();
  order_.clear();
  candidates_.clear();
  round_guards_ = 0;
  round_allocated_ = false;
}

void ReadyScope::reset_module(Module& m, std::uint32_t preorder) noexcept {
  m.ledger_marked_.store(false, std::memory_order_relaxed);
  m.scope_ready_ = false;
  m.cached_fireable_ = nullptr;
  m.fireable_slot_ = -1;
  m.preorder_ = preorder;
  m.claim_stamp_ = 0;
  m.queued_deadline_ = kNeverTime;
}

// ---------------------------------------------------------------------------
// SpecReadySet

const std::vector<FiringCandidate>& SpecReadySet::collect(common::SimTime now) {
  ReadyLedger& ledger = spec_.ready_ledger();
  // Ledger growth since we last looked counts as this round's allocation
  // (the marks that grew it happened while the previous round fired).
  ledger_grew_ = ledger.capacity() != ledger_capacity_seen_;
  ledger_capacity_seen_ = ledger.capacity();
  const bool owner_changed = ledger.acquire(this);
  if (!seeded_ || owner_changed ||
      seen_version_ != spec_.topology_version()) {
    reseed();
  } else {
    ledger.drain([this](Module& m) { scope_.mark(m); });
  }
  return scope_.collect(now);
}

void SpecReadySet::reseed() {
  seeded_ = true;
  seen_version_ = spec_.topology_version();
  // Queued entries may point at destroyed modules; forget them without
  // looking. The tree walk below resets every survivor's intrusive state.
  spec_.ready_ledger().clear_unsafe();
  scope_.clear();
  std::uint32_t preorder = 0;
  spec_.root().for_each([&](Module& m) {
    ReadyScope::reset_module(m, preorder++);
    // Seed everything: modules outside system subtrees cannot carry
    // transitions (rule R1), so they evaluate to "nothing" once and drop out.
    scope_.mark(m);
  });
}

// ---------------------------------------------------------------------------
// Verification

void verify_against_full_scan(const std::vector<Module*>& system_modules,
                              common::SimTime now,
                              const std::vector<FiringCandidate>& got,
                              std::size_t offset) {
  std::vector<FiringCandidate> ref;
  for (Module* sm : system_modules) {
    const std::vector<FiringCandidate> part = collect_firing_set(*sm, now);
    ref.insert(ref.end(), part.begin(), part.end());
  }
  const auto describe = [](const FiringCandidate& c) {
    return c.module->path() + "/" +
           (c.transition->name.empty() ? "?" : c.transition->name);
  };
  const auto fail = [&](const std::string& what) {
    std::string msg = "verify_ready_set: " + what + "; full scan has " +
                      std::to_string(ref.size()) + " candidate(s)";
    for (const FiringCandidate& c : ref) msg += " [" + describe(c) + "]";
    msg += ", ready set produced " +
           std::to_string(got.size() - offset) + " candidate(s)";
    for (std::size_t i = offset; i < got.size(); ++i)
      msg += " [" + describe(got[i]) + "]";
    throw std::logic_error(msg);
  };
  if (got.size() - offset != ref.size()) fail("candidate count diverged");
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const FiringCandidate& a = ref[i];
    const FiringCandidate& b = got[offset + i];
    if (a.module != b.module || a.transition != b.transition)
      fail("candidate " + std::to_string(i) + " diverged");
  }
}

}  // namespace mcam::estelle
