#include "estelle/transport/socket_transport.hpp"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <utility>

namespace mcam::estelle {

using common::ByteSpan;
using common::Error;
using common::Result;
using common::Status;

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Blocking exact-count I/O for the setup phase (id preambles, resume
/// hellos — a handful of bytes on a fresh socket).
bool write_all(int fd, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w <= 0) {
      if (w < 0 && (errno == EINTR)) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool read_all(int fd, void* data, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;
    }
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

/// "host" or "host:port" for node i; loopback and base_port + i when
/// unspecified.
void tcp_addr_of(const std::vector<std::string>& hosts,
                 std::uint16_t base_port, int i, std::string* host,
                 std::uint16_t* port) {
  *host = "127.0.0.1";
  *port = static_cast<std::uint16_t>(base_port + i);
  if (hosts.empty()) return;
  const std::string& spec = hosts[static_cast<std::size_t>(i)];
  if (spec.empty()) return;
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos) {
    *host = spec;
    return;
  }
  *host = spec.substr(0, colon);
  *port = static_cast<std::uint16_t>(
      std::strtoul(spec.c_str() + colon + 1, nullptr, 10));
}

struct MeshSetup {
  /// Connected, preamble-exchanged fds keyed by peer node.
  std::vector<StreamSocketTransport::PeerFd> fds;
  std::uint64_t retries = 0;
  /// The bound mesh listener, still open: the session layer re-accepts
  /// reconnecting lower-id peers on it for the whole run.
  int listener = -1;
};

/// The dial/accept split every mesh uses: node i dials every lower id and
/// accepts every higher one, so each pair establishes exactly one stream.
Result<MeshSetup> build_mesh(
    int node, int nodes, int timeout_ms,
    const std::function<int()>& make_listener,      // bound+listening fd
    const std::function<int(int peer)>& dial) {     // connected fd or -1
  MeshSetup setup;
  if (nodes <= 1) return setup;
  const int listener = make_listener();
  if (listener < 0)
    return Error::make(kSetupFailed,
                       "mesh: listen failed: " + std::string(strerror(errno)));
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  // Dial down.
  for (int p = 0; p < node; ++p) {
    int fd = -1;
    for (;;) {
      fd = dial(p);
      if (fd >= 0) break;
      ++setup.retries;
      if (std::chrono::steady_clock::now() >= deadline) {
        ::close(listener);
        for (auto& pf : setup.fds) ::close(pf.fd);
        return Error::make(kSetupFailed, "mesh: node " + std::to_string(p) +
                                             " never became reachable");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    const std::uint32_t id = htonl(static_cast<std::uint32_t>(node));
    if (!write_all(fd, &id, sizeof id)) {
      ::close(fd);
      ::close(listener);
      for (auto& pf : setup.fds) ::close(pf.fd);
      return Error::make(kSetupFailed, "mesh: preamble write failed");
    }
    setup.fds.push_back({p, fd});
  }
  // Accept up.
  for (int expected = nodes - 1 - node; expected > 0;) {
    pollfd pfd{listener, POLLIN, 0};
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0 ||
        ::poll(&pfd, 1, static_cast<int>(left.count())) <= 0) {
      ::close(listener);
      for (auto& pf : setup.fds) ::close(pf.fd);
      return Error::make(kSetupFailed, "mesh: timed out accepting peers");
    }
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) continue;
    std::uint32_t id = 0;
    if (!read_all(fd, &id, sizeof id)) {
      ::close(fd);
      continue;
    }
    setup.fds.push_back({static_cast<int>(ntohl(id)), fd});
    --expected;
  }
  setup.listener = listener;
  return setup;
}

}  // namespace

StreamSocketTransport::StreamSocketTransport(std::vector<PeerFd> peers) {
  conns_.reserve(peers.size());
  for (const PeerFd& p : peers) {
    set_nonblocking(p.fd);
    Conn c;
    c.node = p.node;
    c.fd = p.fd;
    c.txq.bind(&pool_);
    conns_.push_back(std::move(c));
    peer_ids_.push_back(p.node);
  }
}

std::unique_ptr<StreamSocketTransport> StreamSocketTransport::from_fds(
    std::vector<PeerFd> peers) {
  return std::unique_ptr<StreamSocketTransport>(
      new StreamSocketTransport(std::move(peers)));
}

Result<std::unique_ptr<StreamSocketTransport>>
StreamSocketTransport::unix_mesh(int node, int nodes, const std::string& dir,
                                 int connect_timeout_ms) {
  const auto path_of = [dir](int n) {
    return dir + "/node" + std::to_string(n) + ".sock";
  };
  // By-value capture: the transport keeps this closure for the whole run to
  // redial lost peers long after unix_mesh() returned.
  std::function<int(int)> dial = [path_of](int peer) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    const std::string path = path_of(peer);
    std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  };
  Result<MeshSetup> setup = build_mesh(
      node, nodes, connect_timeout_ms,
      [&]() {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) return -1;
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        const std::string path = path_of(node);
        if (path.size() >= sizeof addr.sun_path) return -1;
        std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
        ::unlink(path.c_str());
        if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
            ::listen(fd, nodes) < 0) {
          ::close(fd);
          return -1;
        }
        return fd;
      },
      dial);
  if (!setup.ok()) return setup.error();
  auto t = from_fds(std::move(setup.value().fds));
  t->mutable_stats().handshake_retries = setup.value().retries;
  t->self_node_ = node;
  t->listener_fd_ = setup.value().listener;
  if (t->listener_fd_ >= 0) set_nonblocking(t->listener_fd_);
  t->dial_ = std::move(dial);
  return t;
}

Result<std::unique_ptr<StreamSocketTransport>> StreamSocketTransport::tcp_mesh(
    int node, int nodes, std::uint16_t base_port,
    const std::vector<std::string>& hosts, int connect_timeout_ms) {
  if (!hosts.empty() && static_cast<int>(hosts.size()) != nodes)
    return Error::make(kSetupFailed,
                       "tcp mesh: host list names " +
                           std::to_string(hosts.size()) + " nodes, mesh has " +
                           std::to_string(nodes));
  // Resolution happens per dial attempt — it is the cold path, and a peer
  // whose name appears late (DNS, container startup) benefits from being
  // re-queried inside the retry loop. By-value capture: kept for redials.
  std::function<int(int)> dial = [hosts, base_port](int peer) {
    std::string host;
    std::uint16_t port = 0;
    tcp_addr_of(hosts, base_port, peer, &host, &port);
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    if (::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                      &res) != 0 ||
        res == nullptr)
      return -1;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      ::freeaddrinfo(res);
      return -1;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    const int rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
    ::freeaddrinfo(res);
    if (rc < 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  };
  Result<MeshSetup> setup = build_mesh(
      node, nodes, connect_timeout_ms,
      [&]() {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) return -1;
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        // Peers on other machines must be able to dial us back.
        addr.sin_addr.s_addr =
            htonl(hosts.empty() ? INADDR_LOOPBACK : INADDR_ANY);
        std::string self_host;
        std::uint16_t self_port = 0;
        tcp_addr_of(hosts, base_port, node, &self_host, &self_port);
        addr.sin_port = htons(self_port);
        if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
            ::listen(fd, nodes) < 0) {
          ::close(fd);
          return -1;
        }
        return fd;
      },
      dial);
  if (!setup.ok()) return setup.error();
  for (auto& pf : setup.value().fds) {
    const int one = 1;
    ::setsockopt(pf.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
  auto t = from_fds(std::move(setup.value().fds));
  t->mutable_stats().handshake_retries = setup.value().retries;
  t->self_node_ = node;
  t->listener_fd_ = setup.value().listener;
  if (t->listener_fd_ >= 0) set_nonblocking(t->listener_fd_);
  t->dial_ = std::move(dial);
  return t;
}

StreamSocketTransport::~StreamSocketTransport() {
  // Session linger: a graceful exit must not strand sent-but-unacknowledged
  // records — the runner's parting Bye may be sitting in a replay ring
  // behind a mid-reconnect link, and tearing down now would leave the peer
  // redialing a dead process. Pump the recovery machinery (redials, accepts,
  // resumes, replays, acks) until every recoverable link has an empty ring
  // and no reconnect in flight; late data frames are discarded — the runner
  // is gone, the peer only needs its replays delivered and acknowledged.
  // Bounded by the session's own retry budget: a genuinely dead peer
  // exhausts its attempts into a permanent close and the loop exits.
  if (session_.reconnect_max_attempts > 0) {
    // Only an unacknowledged ring keeps us here: `waiting`/`resuming` alone
    // mean the PEER left (usually its own graceful farewell) while we owe it
    // nothing — redialing it would burn the whole backoff budget against a
    // process that is also tearing down.
    const auto needs_linger = [this] {
      for (const Conn& c : conns_)
        if (!c.closed && recoverable(c) && !c.peer_departed && !c.ring.empty())
          return true;
      return false;
    };
    // A parting cumulative ack lets a peer lingering on ITS ring exit
    // immediately instead of waiting out the idle-ack throttle; re-sent
    // after every pump so replayed records are acknowledged on arrival.
    const auto send_final_acks = [this] {
      for (Conn& c : conns_) {
        if (c.fd < 0 || c.closed || c.resuming || c.rx_since_ack == 0)
          continue;
        Frame ack;
        ack.type = FrameType::SessionAck;
        ack.recv = c.rx_seq;
        queue_control(c, ack);
        c.rx_since_ack = 0;
        try_flush(c);
      }
    };
    const auto linger_deadline =
        SteadyClock::now() +
        std::chrono::milliseconds(session_.resend_timeout_ms +
                                  total_backoff_budget_ms());
    Frame f;
    int from = 0;
    std::string err;
    send_final_acks();
    while (needs_linger() && SteadyClock::now() < linger_deadline) {
      (void)recv(&from, &f, 20, &err);
      send_final_acks();
    }
    send_final_acks();
  }
  // Graceful close. Flush what the peers are still owed (the runner's
  // parting Bye is usually in the backlog), announce end-of-stream, then
  // drain inbound to EOF before close(): a TCP close with unread inbound
  // data turns into RST, which would destroy our final frames in flight.
  // The whole farewell is bounded by one shared deadline. Conns that are
  // down mid-reconnect (fd < 0) have nothing to say goodbye to.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
  const auto left_ms = [&deadline] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               deadline - std::chrono::steady_clock::now())
        .count();
  };
  for (Conn& c : conns_) {
    if (c.fd < 0) continue;
    while (!c.closed && tx_backlog(c) > 0 && left_ms() > 0) {
      pollfd p{c.fd, POLLOUT, 0};
      if (::poll(&p, 1, static_cast<int>(left_ms())) <= 0) break;
      try_flush(c);
    }
    if (c.fd < 0) continue;  // try_flush may have dropped the stream
    if (!c.closed) ::shutdown(c.fd, SHUT_WR);
  }
  for (Conn& c : conns_) {
    if (c.fd < 0) continue;
    while (!c.rx_eof) {
      const auto left = left_ms();
      if (left <= 0) break;
      pollfd p{c.fd, POLLIN, 0};
      if (::poll(&p, 1, static_cast<int>(left)) <= 0) break;
      std::uint8_t chunk[4096];
      const ssize_t r = ::read(c.fd, chunk, sizeof chunk);
      if (r < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK))
        continue;
      if (r <= 0) break;  // EOF or a dead peer — done either way
    }
    ::close(c.fd);
  }
  if (listener_fd_ >= 0) ::close(listener_fd_);
}

StreamSocketTransport::Conn* StreamSocketTransport::conn_of(
    int node) noexcept {
  for (Conn& c : conns_)
    if (c.node == node) return &c;
  return nullptr;
}

bool StreamSocketTransport::recoverable(const Conn& c) const noexcept {
  if (session_.reconnect_max_attempts <= 0 || self_node_ < 0) return false;
  // Mesh discipline: we dialed every lower id, accepted every higher one —
  // recovery keeps the same roles.
  return c.node < self_node_ ? static_cast<bool>(dial_) : listener_fd_ >= 0;
}

long StreamSocketTransport::total_backoff_budget_ms() const noexcept {
  long total = 0;
  int b = session_.backoff_initial_ms > 0 ? session_.backoff_initial_ms : 1;
  const int cap = session_.backoff_cap_ms > 0 ? session_.backoff_cap_ms : b;
  for (int i = 0; i < session_.reconnect_max_attempts; ++i) {
    total += b + b / 2;  // worst-case jitter is half the base
    b = std::min(b * 2, std::max(cap, 1));
  }
  // Slack for dial/handshake latency so the passive side outlives the
  // dialing side's full schedule.
  return total + 750;
}

void StreamSocketTransport::permanent_close(Conn& c, std::string why) {
  c.waiting = false;
  c.resuming = false;
  if (c.fd >= 0) {
    ::close(c.fd);
    c.fd = -1;
  }
  c.closed = true;
  c.rx_eof = true;
  if (c.close_reason.empty()) c.close_reason = std::move(why);
}

void StreamSocketTransport::salvage_rx(Conn& c) {
  Frame f;
  std::string why;
  for (;;) {
    switch (c.rx.next(&f, &why)) {
      case FrameReassembler::Next::kFrame: {
        const std::uint64_t seq = c.rx.last_seq();
        if (seq == 0) {
          on_control(c, f, /*allow_resume=*/false);
          continue;
        }
        if (seq <= c.rx_seq) {
          ++stats_.dup_frames_dropped;
          continue;
        }
        if (seq != c.rx_seq + 1) return;  // gap — the rest will be replayed
        c.rx_seq = seq;
        c.pending_rx.push_back(std::move(f));
        continue;
      }
      case FrameReassembler::Next::kNeedMore:
      case FrameReassembler::Next::kError:
        return;  // a truncated tail is expected on a dying stream
    }
  }
}

void StreamSocketTransport::enter_reconnect(Conn& c, std::string why) {
  if (!recoverable(c) || c.peer_departed) {
    permanent_close(c, std::move(why));
    return;
  }
  if (c.waiting) return;  // already recovering; keep the first cause
  const bool mid_resume = c.resuming;  // a resume attempt itself failed
  if (c.fd >= 0) {
    // Final nonblocking drain: the peer's parting frames (a Bye racing our
    // send failure) may already sit in the kernel buffer — salvage them
    // before the stream goes away or a graceful leave would be
    // misclassified as a death.
    std::uint8_t chunk[4096];
    for (;;) {
      const ssize_t r = ::read(c.fd, chunk, sizeof chunk);
      if (r > 0) {
        stats_.bytes_received += static_cast<std::uint64_t>(r);
        c.rx.feed(ByteSpan{chunk, static_cast<std::size_t>(r)});
        continue;
      }
      if (r < 0 && errno == EINTR) continue;
      break;
    }
  }
  salvage_rx(c);
  if (c.fd >= 0) {
    ::close(c.fd);
    c.fd = -1;
  }
  c.txq.clear();
  c.rx.reset();
  c.delayed.clear();
  c.resuming = false;
  c.closed = false;
  c.rx_eof = false;
  c.waiting = true;
  ++c.epoch;
  if (c.jitter_state == 0)
    c.jitter_state = 0x9e3779b9u ^
                     (static_cast<std::uint32_t>(self_node_) * 2654435761u) ^
                     (static_cast<std::uint32_t>(c.node) << 8) ^ 1u;
  const auto now = SteadyClock::now();
  c.next_attempt = now;  // first redial fires immediately
  if (!mid_resume) {
    // A fresh loss gets a fresh budget; a failed resume keeps burning the
    // one that opened it, so a flapping peer cannot extend its own deadline.
    c.attempt = 0;
    c.backoff_ms = session_.backoff_initial_ms > 0 ? session_.backoff_initial_ms
                                                   : 1;
    c.give_up = now + std::chrono::milliseconds(total_backoff_budget_ms());
  }
  if (c.wait_reason.empty()) c.wait_reason = std::move(why);
}

void StreamSocketTransport::prune_ring(Conn& c, std::uint64_t upto) {
  bool progress = false;
  while (!c.ring.empty() && c.ring.front().seq <= upto) {
    c.ring_bytes -= c.ring.front().wire.size();
    if (spare_.size() < 64) spare_.push_back(std::move(c.ring.front().wire));
    c.ring.pop_front();
    progress = true;
  }
  if (upto > c.acked) c.acked = std::min(upto, c.tx_seq);
  if (progress) c.oldest_unacked = SteadyClock::now();
}

void StreamSocketTransport::queue_control(Conn& c, const Frame& f) {
  ctrl_buf_.clear();
  encode_frame_seq_to(f, 0, ctrl_buf_);
  c.txq.append(ByteSpan{ctrl_buf_.data(), ctrl_buf_.size()});
  ++stats_.frames_sent;
}

void StreamSocketTransport::maybe_ack(Conn& c, bool idle) {
  if (c.rx_since_ack == 0 || c.fd < 0 || c.resuming || c.closed ||
      !recoverable(c))
    return;
  if (!idle && c.rx_since_ack < kAckIntervalFrames) return;
  const auto now = SteadyClock::now();
  if (idle && now - c.last_ack < std::chrono::milliseconds(20)) return;
  Frame ack;
  ack.type = FrameType::SessionAck;
  ack.recv = c.rx_seq;
  queue_control(c, ack);
  c.rx_since_ack = 0;
  c.last_ack = now;
  try_flush(c);
}

void StreamSocketTransport::complete_resume(Conn& c, const Frame& hr) {
  if (hr.spec_hash != session_.fingerprint) {
    permanent_close(c, "resume refused: specification fingerprint mismatch");
    return;
  }
  if (hr.recv > c.tx_seq) {
    permanent_close(c, "resume refused: peer acknowledges records never sent");
    return;
  }
  if (hr.recv < c.acked) {
    // The ring never evicts unacknowledged records (send back-pressures
    // instead), so this means the peer lost session state entirely.
    permanent_close(c, "resume refused: peer needs records beyond the ring");
    return;
  }
  prune_ring(c, hr.recv);
  c.resuming = false;
  c.waiting = false;
  c.attempt = 0;
  c.wait_reason.clear();
  // Replay exactly the retained tail the peer has not delivered, in
  // sequence order — per-peer FIFO survives the reconnect.
  std::uint64_t replayed = 0;
  for (const ReplayRec& r : c.ring) {
    c.txq.append(ByteSpan{r.wire.data(), r.wire.size()});
    ++replayed;
  }
  stats_.frames_replayed += replayed;
  ++stats_.reconnects;
  if (!c.ring.empty()) c.oldest_unacked = SteadyClock::now();
  try_flush(c);
}

void StreamSocketTransport::on_control(Conn& c, Frame& f, bool allow_resume) {
  switch (f.type) {
    case FrameType::SessionAck:
      prune_ring(c, f.recv);
      return;
    case FrameType::HelloResume:
      if (allow_resume && c.resuming) complete_resume(c, f);
      return;
    default:
      return;  // unknown control frame: ignore (forward compatibility)
  }
}

bool StreamSocketTransport::begin_resume(Conn& c, int fd, bool dialer) {
  if (dialer) {
    const std::uint32_t id = htonl(static_cast<std::uint32_t>(self_node_));
    if (!write_all(fd, &id, sizeof id)) {
      ::close(fd);
      return false;
    }
  }
  Frame hello;
  hello.type = FrameType::HelloResume;
  hello.node = static_cast<std::uint32_t>(self_node_);
  hello.spec_hash = session_.fingerprint;
  hello.epoch = c.epoch;
  hello.recv = c.rx_seq;
  ctrl_buf_.clear();
  encode_frame_seq_to(hello, 0, ctrl_buf_);
  if (!write_all(fd, ctrl_buf_.data(), ctrl_buf_.size())) {
    ::close(fd);
    return false;
  }
  stats_.bytes_sent += ctrl_buf_.size();
  ++stats_.frames_sent;
  set_nonblocking(fd);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);  // no-op
                                                                 // off TCP
  c.fd = fd;
  c.waiting = false;
  c.resuming = true;
  c.closed = false;
  c.rx_eof = false;
  c.rx.reset();
  return true;
}

void StreamSocketTransport::accept_pending() {
  for (;;) {
    const int fd = ::accept(listener_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: queue drained
    }
    // The dialer writes its id preamble immediately after connect; bound
    // the wait so a half-open stray cannot stall the pump.
    pollfd p{fd, POLLIN, 0};
    std::uint32_t id = 0;
    if (::poll(&p, 1, 1000) <= 0 || !read_all(fd, &id, sizeof id)) {
      ::close(fd);
      continue;
    }
    Conn* c = conn_of(static_cast<int>(ntohl(id)));
    if (c == nullptr || dead(*c) || !recoverable(*c)) {
      ::close(fd);
      continue;
    }
    // The peer noticed the loss first (or redialed twice): drop whatever
    // stream we still hold and adopt the new one.
    if (!c->waiting) enter_reconnect(*c, "peer reconnected");
    if (!c->waiting) {
      ::close(fd);  // the loss turned permanent instead
      continue;
    }
    (void)begin_resume(*c, fd, /*dialer=*/false);
  }
}

void StreamSocketTransport::service_reconnects(bool check_rto) {
  if (session_.reconnect_max_attempts <= 0) return;
  // The common case — every link up, nothing recovering — must cost a scan
  // and no clock read: this runs on every send()/flush()/recv() pass.
  bool active = false;
  for (const Conn& c : conns_)
    if (c.waiting || c.resuming ||
        (check_rto && c.fd >= 0 && !c.closed && !c.ring.empty() &&
         session_.resend_timeout_ms > 0)) {
      active = true;
      break;
    }
  if (!active) return;
  const auto now = SteadyClock::now();
  for (Conn& c : conns_) {
    if (dead(c)) continue;
    // Retransmission timeout: unacknowledged records with no ack progress
    // mean the tail may be lost on the wire (a drop with no later traffic
    // to expose the gap) — force a reconnect; the resume replays it.
    if (c.fd >= 0 && !c.resuming && !c.closed && !c.ring.empty() &&
        session_.resend_timeout_ms > 0 && recoverable(c) &&
        now - c.oldest_unacked >=
            std::chrono::milliseconds(session_.resend_timeout_ms))
      enter_reconnect(c, "retransmission timeout: node " +
                             std::to_string(c.node) +
                             " stopped acknowledging");
    if (c.resuming && now >= c.give_up) {
      permanent_close(c, "resume handshake with node " +
                             std::to_string(c.node) + " timed out (" +
                             c.wait_reason + ")");
      continue;
    }
    if (!c.waiting) continue;
    if (now >= c.give_up) {
      permanent_close(c, "node " + std::to_string(c.node) +
                             " did not come back (" + c.wait_reason + ")");
      continue;
    }
    if (c.node > self_node_) continue;  // accept side waits passively
    if (now < c.next_attempt) continue;
    if (c.attempt >= session_.reconnect_max_attempts) {
      std::string why = "reconnect to node " + std::to_string(c.node) +
                        " failed after " + std::to_string(c.attempt) +
                        " attempts (" + c.wait_reason;
      if (!c.last_dial_error.empty()) why += "; last: " + c.last_dial_error;
      permanent_close(c, why + ")");
      continue;
    }
    ++c.attempt;
    ++stats_.reconnect_attempts;
    errno = 0;
    const int fd = dial_ ? dial_(c.node) : -1;
    if (fd >= 0 && begin_resume(c, fd, /*dialer=*/true)) continue;
    if (fd < 0)
      c.last_dial_error = errno != 0 ? std::strerror(errno) : "dial failed";
    // Capped exponential backoff with deterministic jitter (a shared LCG
    // would make simultaneously-reconnecting nodes stampede in phase).
    c.jitter_state = c.jitter_state * 1664525u + 1013904223u;
    const int base = c.backoff_ms > 0 ? c.backoff_ms : 1;
    const int jit = static_cast<int>(
        (c.jitter_state >> 16) % (static_cast<std::uint32_t>(base / 2) + 1));
    c.next_attempt = SteadyClock::now() + std::chrono::milliseconds(base + jit);
    const int cap = session_.backoff_cap_ms > 0 ? session_.backoff_cap_ms : 1;
    c.backoff_ms = std::min(base * 2, std::max(cap, 1));
  }
}

void StreamSocketTransport::release_delayed(Conn& c, bool all) {
  if (c.delayed.empty()) return;
  std::size_t kept = 0;
  for (DelayedRec& d : c.delayed) {
    if (!all && d.release_at > c.wire_index) {
      c.delayed[kept++] = std::move(d);
      continue;
    }
    c.txq.append(ByteSpan{d.wire.data(), d.wire.size()});
    if (spare_.size() < 64) spare_.push_back(std::move(d.wire));
  }
  c.delayed.resize(kept);
}

void StreamSocketTransport::append_wire_record(Conn& c) {
  FaultKind kind = FaultKind::kNone;
  std::uint32_t delay = 1;
  if (!c.wire_faults.empty()) {
    const FaultAction a = c.wire_faults.at(c.wire_index);
    kind = a.kind;
    delay = a.delay_frames;
  }
  ++c.wire_index;
  const ByteSpan rec{c.encode_buf.data(), c.encode_buf.size()};
  switch (kind) {
    case FaultKind::kNone:
      c.txq.append(rec);
      release_delayed(c, false);
      return;
    case FaultKind::kDrop:
      ++stats_.faults_injected;  // the network ate it; the ring recovers it
      return;
    case FaultKind::kDuplicate:
      ++stats_.faults_injected;
      c.txq.append(rec);
      c.txq.append(rec);
      release_delayed(c, false);
      return;
    case FaultKind::kDelay: {
      ++stats_.faults_injected;
      DelayedRec d;
      d.release_at = c.wire_index + delay;
      if (!spare_.empty()) {
        d.wire = std::move(spare_.back());
        spare_.pop_back();
      }
      d.wire.assign(c.encode_buf.begin(), c.encode_buf.end());
      c.delayed.push_back(std::move(d));
      return;
    }
    case FaultKind::kClose:
      ++stats_.faults_injected;
      c.txq.append(rec);
      // The reset loses the unflushed tail on purpose — the ring replays it.
      enter_reconnect(c, "fault: injected connection close");
      return;
  }
}

void StreamSocketTransport::try_flush(Conn& c) {
  while (!c.closed && c.fd >= 0 && !c.txq.empty()) {
    iovec iov[BufferChain::kMaxIov];
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = c.txq.fill_iov(iov, BufferChain::kMaxIov);
    const ssize_t w = ::sendmsg(c.fd, &mh, MSG_NOSIGNAL | MSG_DONTWAIT);
    ++stats_.syscalls;
    if (w > 0) {
      c.txq.consume(static_cast<std::size_t>(w));
      stats_.bytes_sent += static_cast<std::uint64_t>(w);
      if (static_cast<std::uint64_t>(w) > stats_.bytes_per_write)
        stats_.bytes_per_write = static_cast<std::uint64_t>(w);
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (w < 0 && errno == EINTR) continue;
    const std::string why = "send: " + std::string(strerror(errno));
    if (recoverable(c)) {
      enter_reconnect(c, why);
    } else {
      c.closed = true;
      c.close_reason = why;
    }
    break;
  }
}

Status StreamSocketTransport::send(int peer, Frame& f) {
  Conn* c = conn_of(peer);
  if (c == nullptr)
    return Error::make(kProtocol, "send to unknown node " +
                                      std::to_string(peer));
  if (session_.reconnect_max_attempts > 0) service_reconnects(false);
  if (c->closed)
    return Error::make(kPeerClosed,
                       "node " + std::to_string(peer) + ": " +
                           c->close_reason);
  const bool keep_ring = recoverable(*c);
  // A downed link (redialing or mid-resume) accepts sends into the replay
  // ring only; the resume pushes them onto the fresh stream.
  const bool down = c->fd < 0 || c->resuming;
  if (keep_ring && c->ring_bytes >= kMaxReplayBytes)
    return Error::make(kQueueFull, "replay ring to node " +
                                       std::to_string(peer) +
                                       " full (peer not acknowledging)");
  if (!down && tx_backlog(*c) >= kMaxOutboundBytes)
    return Error::make(kQueueFull, "outbound queue to node " +
                                       std::to_string(peer) + " full");
  // Encode into the per-peer scratch (reused across sends: once its
  // capacity covers the working set the encode allocates nothing), then
  // queue the octets on the segment chain. The socket push itself is left
  // to flush()/recv() so a burst of frames shares one syscall.
  const std::uint64_t seq = ++c->tx_seq;
  const std::size_t warmed = c->encode_buf.capacity();
  c->encode_buf.clear();
  encode_frame_seq_to(f, seq, c->encode_buf);
  if (warmed != 0 && c->encode_buf.capacity() == warmed)
    ++stats_.encode_pool_reuse;
  if (keep_ring) {
    ReplayRec r;
    r.seq = seq;
    if (!spare_.empty()) {
      r.wire = std::move(spare_.back());
      spare_.pop_back();
    }
    r.wire.assign(c->encode_buf.begin(), c->encode_buf.end());
    const bool was_empty = c->ring.empty();
    c->ring_bytes += r.wire.size();
    c->ring.push_back(std::move(r));
    if (was_empty) c->oldest_unacked = SteadyClock::now();
  }
  if (!down) append_wire_record(*c);
  ++stats_.frames_sent;
  if (f.type == FrameType::TransferBatch)
    stats_.frames_batched += f.entries.size();
  if (!down && c->fd >= 0) {
    if (tx_backlog(*c) > stats_.send_queue_high_water)
      stats_.send_queue_high_water = tx_backlog(*c);
    if (tx_backlog(*c) >= kEagerFlushBytes) try_flush(*c);
  }
  if (c->closed)
    return Error::make(kPeerClosed,
                       "node " + std::to_string(peer) + ": " +
                           c->close_reason);
  return Status::ok_status();
}

void StreamSocketTransport::flush() {
  if (session_.reconnect_max_attempts > 0) service_reconnects(false);
  for (Conn& c : conns_) {
    if (c.fd < 0 || c.resuming) continue;
    release_delayed(c, true);  // a delayed tail never strands past a flush
    if (!c.txq.empty()) try_flush(c);
  }
}

bool StreamSocketTransport::sever(int peer) {
  Conn* c = conn_of(peer);
  if (c == nullptr) return false;
  if (c->fd >= 0) ::shutdown(c->fd, SHUT_RDWR);
  if (recoverable(*c)) {
    if (!c->waiting) enter_reconnect(*c, "connection severed");
  } else {
    c->closed = true;
    c->rx_eof = true;
    if (c->close_reason.empty()) c->close_reason = "connection severed";
  }
  return true;
}

void StreamSocketTransport::set_wire_faults(int peer, FaultPlan plan) {
  Conn* c = conn_of(peer);
  if (c == nullptr) return;
  c->wire_faults = std::move(plan);
  c->wire_index = 0;
}

bool StreamSocketTransport::any_pending() const noexcept {
  for (const Conn& c : conns_)
    if (c.pending_pos < c.pending_rx.size()) return true;
  return false;
}

MailboxTransport::RecvOutcome StreamSocketTransport::recv(int* from,
                                                          Frame* out,
                                                          int timeout_ms,
                                                          std::string* error) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::vector<pollfd> pfds(conns_.size() + 1);
  for (;;) {
    service_reconnects(true);
    // Frames salvaged across a reconnect outrank everything on the new
    // stream — they arrived first.
    for (Conn& c : conns_) {
      if (c.pending_pos >= c.pending_rx.size()) continue;
      *out = std::move(c.pending_rx[c.pending_pos++]);
      if (c.pending_pos == c.pending_rx.size()) {
        c.pending_rx.clear();
        c.pending_pos = 0;
      }
      if (out->type == FrameType::Bye) c.peer_departed = true;
      if (from != nullptr) *from = c.node;
      ++stats_.frames_received;
      return RecvOutcome::kFrame;
    }
    // Serve buffered frames, round-robin so one peer cannot starve the
    // rest; also flush pending writes opportunistically.
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      Conn& c = conns_[(rr_ + 1 + i) % conns_.size()];
      if (c.fd >= 0 && !c.resuming && tx_backlog(c) > 0) try_flush(c);
      for (;;) {
        std::string why;
        const auto r = c.rx.next(out, &why);
        if (r == FrameReassembler::Next::kNeedMore) break;
        if (r == FrameReassembler::Next::kError) {
          // The framing is gone — replay cannot reconstruct a stream whose
          // byte discipline broke; this is a bug or a hostile peer.
          permanent_close(c, why);
          break;
        }
        const std::uint64_t seq = c.rx.last_seq();
        if (seq == 0) {  // session-control frame, consumed here
          on_control(c, *out, /*allow_resume=*/true);
          if (c.fd < 0 || dead(c)) break;
          continue;
        }
        if (seq <= c.rx_seq) {  // replayed record we already delivered
          ++stats_.dup_frames_dropped;
          continue;
        }
        if (seq != c.rx_seq + 1) {
          // Records vanished from the stream (wire-level loss): recover
          // them through reconnect + replay.
          enter_reconnect(c, "sequence gap: expected " +
                                 std::to_string(c.rx_seq + 1) + ", got " +
                                 std::to_string(seq));
          break;
        }
        c.rx_seq = seq;
        ++c.rx_since_ack;
        if (out->type == FrameType::Bye) c.peer_departed = true;
        if (out->type == FrameType::Bye && session_.reconnect_max_attempts > 0 &&
            !c.closed && recoverable(c)) {
          // A parting Bye is acknowledged at once: the leaver's teardown
          // lingers only until its ring drains, and the throttled idle ack
          // would make every graceful exit pay the throttle interval.
          Frame ack;
          ack.type = FrameType::SessionAck;
          ack.recv = c.rx_seq;
          queue_control(c, ack);
          c.rx_since_ack = 0;
          c.last_ack = SteadyClock::now();
          try_flush(c);
        } else {
          maybe_ack(c, /*idle=*/false);
        }
        if (from != nullptr) *from = c.node;
        rr_ = (rr_ + 1 + i) % conns_.size();
        ++stats_.frames_received;
        return RecvOutcome::kFrame;
      }
    }
    // Report deaths (once per connection) — but only after the inbound half
    // is exhausted too: a send failure alone may still have the peer's
    // parting frames (its Bye) in the kernel buffer, and dropping them
    // would misclassify a graceful leave as a death.
    for (Conn& c : conns_) {
      if (c.closed && c.rx_eof && !c.close_reported) {
        c.close_reported = true;
        if (from != nullptr) *from = c.node;
        if (error != nullptr)
          *error = "node " + std::to_string(c.node) + ": " +
                   (c.close_reason.empty() ? "connection closed"
                                           : c.close_reason);
        return RecvOutcome::kClosed;
      }
    }
    // Pump the sockets. A conn stays pumpable until BOTH halves are done:
    // a send-side failure still reads (draining the peer's parting frames),
    // a receive-side EOF still flushes what we owe the peer. Downed conns
    // (fd < 0) count as live — they are being recovered.
    const auto drain_fd = [this](Conn& c) {
      std::uint8_t chunk[65536];
      bool got = false;
      for (;;) {
        const ssize_t r = ::read(c.fd, chunk, sizeof chunk);
        ++stats_.syscalls;
        if (r > 0) {
          stats_.bytes_received += static_cast<std::uint64_t>(r);
          c.rx.feed(ByteSpan{chunk, static_cast<std::size_t>(r)});
          got = true;
          if (r < static_cast<ssize_t>(sizeof chunk)) break;
          continue;
        }
        if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (r < 0 && errno == EINTR) continue;
        const std::string why = r == 0
                                    ? "connection closed"
                                    : "read: " + std::string(strerror(errno));
        if (recoverable(c)) {
          enter_reconnect(c, why);
        } else {
          c.closed = true;
          c.rx_eof = true;
          if (c.close_reason.empty()) c.close_reason = why;
        }
        break;
      }
      return got;
    };
    std::size_t live = 0;
    for (const Conn& c : conns_)
      if (!dead(c)) ++live;
    if (live == 0) return RecvOutcome::kIdle;
    // Idle acknowledgements: small exchanges must prune the peer's ring
    // too, not only kAckIntervalFrames-sized bursts.
    for (Conn& c : conns_) maybe_ack(c, /*idle=*/true);
    const auto now = std::chrono::steady_clock::now();
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    const int budget_wait = timeout_ms <= 0 ? 0
                            : left.count() > 0 ? static_cast<int>(left.count())
                                               : 0;
    // Recovery deadlines bound the sleep: a due redial, an expiring wait
    // budget or a retransmission timeout must fire on time.
    int wait = budget_wait;
    if (session_.reconnect_max_attempts > 0) {
      const auto until = [&now](SteadyClock::time_point tp) {
        const auto d =
            std::chrono::duration_cast<std::chrono::milliseconds>(tp - now)
                .count();
        return d < 0 ? 0 : static_cast<int>(std::min<long long>(d, 3600000));
      };
      for (const Conn& c : conns_) {
        if (dead(c)) continue;
        if (c.waiting) {
          wait = std::min(wait, until(c.give_up));
          if (c.node < self_node_) wait = std::min(wait, until(c.next_attempt));
        } else if (c.resuming) {
          wait = std::min(wait, until(c.give_up));
        } else if (c.fd >= 0 && !c.closed && !c.ring.empty() &&
                   session_.resend_timeout_ms > 0 && recoverable(c)) {
          wait = std::min(
              wait, until(c.oldest_unacked + std::chrono::milliseconds(
                                                 session_.resend_timeout_ms)));
        }
      }
    }
    std::size_t n = 0;
    for (Conn& c : conns_) {
      if (dead(c) || c.fd < 0) continue;
      pfds[n].fd = c.fd;
      pfds[n].events = static_cast<short>(
          (c.rx_eof ? 0 : POLLIN) |
          (!c.closed && tx_backlog(c) > 0 ? POLLOUT : 0));
      pfds[n].revents = 0;
      ++n;
    }
    std::size_t listener_at = SIZE_MAX;
    if (listener_fd_ >= 0 && session_.reconnect_max_attempts > 0) {
      pfds[n].fd = listener_fd_;
      pfds[n].events = POLLIN;
      pfds[n].revents = 0;
      listener_at = n;
      ++n;
    }
    const int ready = ::poll(pfds.data(), n, wait);
    bool got_bytes = false;
    if (ready > 0) {
      std::size_t k = 0;
      for (Conn& c : conns_) {
        if (dead(c) || c.fd < 0) continue;
        const short rev = pfds[k++].revents;
        if ((rev & POLLOUT) && c.fd >= 0) try_flush(c);
        if (c.fd >= 0 && !c.rx_eof && (rev & (POLLIN | POLLHUP | POLLERR)) &&
            drain_fd(c))
          got_bytes = true;
      }
      if (listener_at != SIZE_MAX && (pfds[listener_at].revents & POLLIN)) {
        accept_pending();
        got_bytes = true;  // a resume may have queued salvage/replay work
      }
    }
    if (!got_bytes && budget_wait <= 0 && timeout_ms >= 0) {
      // One poll pass exhausted the budget (or this was a pure poll).
      if (any_pending()) continue;
      bool death_pending = false;
      for (const Conn& c : conns_)
        if (c.closed && c.rx_eof && !c.close_reported) death_pending = true;
      if (!death_pending) return RecvOutcome::kIdle;
    }
  }
}

}  // namespace mcam::estelle
