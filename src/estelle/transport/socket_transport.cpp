#include "estelle/transport/socket_transport.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <utility>

namespace mcam::estelle {

using common::ByteSpan;
using common::Error;
using common::Result;
using common::Status;

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Blocking exact-count I/O for the setup phase (id preambles).
bool write_all(int fd, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w <= 0) {
      if (w < 0 && (errno == EINTR)) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool read_all(int fd, void* data, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;
    }
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

struct MeshSetup {
  /// Connected, preamble-exchanged fds keyed by peer node.
  std::vector<StreamSocketTransport::PeerFd> fds;
  std::uint64_t retries = 0;
};

/// The dial/accept split every mesh uses: node i dials every lower id and
/// accepts every higher one, so each pair establishes exactly one stream.
Result<MeshSetup> build_mesh(
    int node, int nodes, int timeout_ms,
    const std::function<int()>& make_listener,      // bound+listening fd
    const std::function<int(int peer)>& dial) {     // connected fd or -1
  MeshSetup setup;
  if (nodes <= 1) return setup;
  const int listener = make_listener();
  if (listener < 0)
    return Error::make(kSetupFailed,
                       "mesh: listen failed: " + std::string(strerror(errno)));
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  // Dial down.
  for (int p = 0; p < node; ++p) {
    int fd = -1;
    for (;;) {
      fd = dial(p);
      if (fd >= 0) break;
      ++setup.retries;
      if (std::chrono::steady_clock::now() >= deadline) {
        ::close(listener);
        for (auto& pf : setup.fds) ::close(pf.fd);
        return Error::make(kSetupFailed, "mesh: node " + std::to_string(p) +
                                             " never became reachable");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    const std::uint32_t id = htonl(static_cast<std::uint32_t>(node));
    if (!write_all(fd, &id, sizeof id)) {
      ::close(fd);
      ::close(listener);
      for (auto& pf : setup.fds) ::close(pf.fd);
      return Error::make(kSetupFailed, "mesh: preamble write failed");
    }
    setup.fds.push_back({p, fd});
  }
  // Accept up.
  for (int expected = nodes - 1 - node; expected > 0;) {
    pollfd pfd{listener, POLLIN, 0};
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0 ||
        ::poll(&pfd, 1, static_cast<int>(left.count())) <= 0) {
      ::close(listener);
      for (auto& pf : setup.fds) ::close(pf.fd);
      return Error::make(kSetupFailed, "mesh: timed out accepting peers");
    }
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) continue;
    std::uint32_t id = 0;
    if (!read_all(fd, &id, sizeof id)) {
      ::close(fd);
      continue;
    }
    setup.fds.push_back({static_cast<int>(ntohl(id)), fd});
    --expected;
  }
  ::close(listener);
  return setup;
}

}  // namespace

StreamSocketTransport::StreamSocketTransport(std::vector<PeerFd> peers) {
  conns_.reserve(peers.size());
  for (const PeerFd& p : peers) {
    set_nonblocking(p.fd);
    Conn c;
    c.node = p.node;
    c.fd = p.fd;
    c.txq.bind(&pool_);
    conns_.push_back(std::move(c));
    peer_ids_.push_back(p.node);
  }
}

std::unique_ptr<StreamSocketTransport> StreamSocketTransport::from_fds(
    std::vector<PeerFd> peers) {
  return std::unique_ptr<StreamSocketTransport>(
      new StreamSocketTransport(std::move(peers)));
}

Result<std::unique_ptr<StreamSocketTransport>>
StreamSocketTransport::unix_mesh(int node, int nodes, const std::string& dir,
                                 int connect_timeout_ms) {
  const auto path_of = [&dir](int n) {
    return dir + "/node" + std::to_string(n) + ".sock";
  };
  Result<MeshSetup> setup = build_mesh(
      node, nodes, connect_timeout_ms,
      [&]() {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) return -1;
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        const std::string path = path_of(node);
        if (path.size() >= sizeof addr.sun_path) return -1;
        std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
        ::unlink(path.c_str());
        if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
            ::listen(fd, nodes) < 0) {
          ::close(fd);
          return -1;
        }
        return fd;
      },
      [&](int peer) {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) return -1;
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        const std::string path = path_of(peer);
        std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
        if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
            0) {
          ::close(fd);
          return -1;
        }
        return fd;
      });
  if (!setup.ok()) return setup.error();
  auto t = from_fds(std::move(setup.value().fds));
  t->mutable_stats().handshake_retries = setup.value().retries;
  return t;
}

Result<std::unique_ptr<StreamSocketTransport>> StreamSocketTransport::tcp_mesh(
    int node, int nodes, std::uint16_t base_port,
    const std::vector<std::string>& hosts, int connect_timeout_ms) {
  if (!hosts.empty() && static_cast<int>(hosts.size()) != nodes)
    return Error::make(kSetupFailed,
                       "tcp mesh: host list names " +
                           std::to_string(hosts.size()) + " nodes, mesh has " +
                           std::to_string(nodes));
  // "host" or "host:port" for node i; loopback and base_port + i when
  // unspecified. Resolution happens per dial attempt — it is the cold path,
  // and a peer whose name appears late (DNS, container startup) benefits
  // from being re-queried inside the retry loop.
  const auto addr_of = [&](int i, std::string* host, std::uint16_t* port) {
    *host = "127.0.0.1";
    *port = static_cast<std::uint16_t>(base_port + i);
    if (hosts.empty()) return;
    const std::string& spec = hosts[static_cast<std::size_t>(i)];
    if (spec.empty()) return;
    const std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos) {
      *host = spec;
      return;
    }
    *host = spec.substr(0, colon);
    *port = static_cast<std::uint16_t>(
        std::strtoul(spec.c_str() + colon + 1, nullptr, 10));
  };
  Result<MeshSetup> setup = build_mesh(
      node, nodes, connect_timeout_ms,
      [&]() {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) return -1;
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        // Peers on other machines must be able to dial us back.
        addr.sin_addr.s_addr =
            htonl(hosts.empty() ? INADDR_LOOPBACK : INADDR_ANY);
        std::string self_host;
        std::uint16_t self_port = 0;
        addr_of(node, &self_host, &self_port);
        addr.sin_port = htons(self_port);
        if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
            ::listen(fd, nodes) < 0) {
          ::close(fd);
          return -1;
        }
        return fd;
      },
      [&](int peer) {
        std::string host;
        std::uint16_t port = 0;
        addr_of(peer, &host, &port);
        addrinfo hints{};
        hints.ai_family = AF_INET;
        hints.ai_socktype = SOCK_STREAM;
        addrinfo* res = nullptr;
        if (::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                          &res) != 0 ||
            res == nullptr)
          return -1;
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) {
          ::freeaddrinfo(res);
          return -1;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        const int rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
        ::freeaddrinfo(res);
        if (rc < 0) {
          ::close(fd);
          return -1;
        }
        return fd;
      });
  if (!setup.ok()) return setup.error();
  for (auto& pf : setup.value().fds) {
    const int one = 1;
    ::setsockopt(pf.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
  auto t = from_fds(std::move(setup.value().fds));
  t->mutable_stats().handshake_retries = setup.value().retries;
  return t;
}

StreamSocketTransport::~StreamSocketTransport() {
  // Graceful close. Flush what the peers are still owed (the runner's
  // parting Bye is usually in the backlog), announce end-of-stream, then
  // drain inbound to EOF before close(): a TCP close with unread inbound
  // data turns into RST, which would destroy our final frames in flight.
  // The whole farewell is bounded by one shared deadline.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
  const auto left_ms = [&deadline] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               deadline - std::chrono::steady_clock::now())
        .count();
  };
  for (Conn& c : conns_) {
    if (c.fd < 0) continue;
    while (!c.closed && tx_backlog(c) > 0 && left_ms() > 0) {
      pollfd p{c.fd, POLLOUT, 0};
      if (::poll(&p, 1, static_cast<int>(left_ms())) <= 0) break;
      try_flush(c);
    }
    if (!c.closed) ::shutdown(c.fd, SHUT_WR);
  }
  for (Conn& c : conns_) {
    if (c.fd < 0) continue;
    while (!c.rx_eof) {
      const auto left = left_ms();
      if (left <= 0) break;
      pollfd p{c.fd, POLLIN, 0};
      if (::poll(&p, 1, static_cast<int>(left)) <= 0) break;
      std::uint8_t chunk[4096];
      const ssize_t r = ::read(c.fd, chunk, sizeof chunk);
      if (r < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK))
        continue;
      if (r <= 0) break;  // EOF or a dead peer — done either way
    }
    ::close(c.fd);
  }
}

StreamSocketTransport::Conn* StreamSocketTransport::conn_of(
    int node) noexcept {
  for (Conn& c : conns_)
    if (c.node == node) return &c;
  return nullptr;
}

void StreamSocketTransport::try_flush(Conn& c) {
  while (!c.closed && !c.txq.empty()) {
    iovec iov[BufferChain::kMaxIov];
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = c.txq.fill_iov(iov, BufferChain::kMaxIov);
    const ssize_t w = ::sendmsg(c.fd, &mh, MSG_NOSIGNAL | MSG_DONTWAIT);
    ++stats_.syscalls;
    if (w > 0) {
      c.txq.consume(static_cast<std::size_t>(w));
      stats_.bytes_sent += static_cast<std::uint64_t>(w);
      if (static_cast<std::uint64_t>(w) > stats_.bytes_per_write)
        stats_.bytes_per_write = static_cast<std::uint64_t>(w);
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (w < 0 && errno == EINTR) continue;
    c.closed = true;
    c.close_reason = "send: " + std::string(strerror(errno));
    break;
  }
}

Status StreamSocketTransport::send(int peer, Frame& f) {
  Conn* c = conn_of(peer);
  if (c == nullptr)
    return Error::make(kProtocol, "send to unknown node " +
                                      std::to_string(peer));
  if (c->closed)
    return Error::make(kPeerClosed,
                       "node " + std::to_string(peer) + ": " +
                           c->close_reason);
  if (tx_backlog(*c) >= kMaxOutboundBytes)
    return Error::make(kQueueFull, "outbound queue to node " +
                                       std::to_string(peer) + " full");
  // Encode into the per-peer scratch (reused across sends: once its
  // capacity covers the working set the encode allocates nothing), then
  // queue the octets on the segment chain. The socket push itself is left
  // to flush()/recv() so a burst of frames shares one syscall.
  const std::size_t warmed = c->encode_buf.capacity();
  c->encode_buf.clear();
  encode_frame_to(f, c->encode_buf);
  if (warmed != 0 && c->encode_buf.capacity() == warmed)
    ++stats_.encode_pool_reuse;
  c->txq.append(ByteSpan{c->encode_buf.data(), c->encode_buf.size()});
  ++stats_.frames_sent;
  if (f.type == FrameType::TransferBatch)
    stats_.frames_batched += f.entries.size();
  if (tx_backlog(*c) > stats_.send_queue_high_water)
    stats_.send_queue_high_water = tx_backlog(*c);
  if (tx_backlog(*c) >= kEagerFlushBytes) try_flush(*c);
  if (c->closed)
    return Error::make(kPeerClosed,
                       "node " + std::to_string(peer) + ": " +
                           c->close_reason);
  return Status::ok_status();
}

void StreamSocketTransport::flush() {
  for (Conn& c : conns_)
    if (!c.txq.empty()) try_flush(c);
}

MailboxTransport::RecvOutcome StreamSocketTransport::recv(int* from,
                                                          Frame* out,
                                                          int timeout_ms,
                                                          std::string* error) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::vector<pollfd> pfds(conns_.size());
  for (;;) {
    // Serve buffered frames first, round-robin so one peer cannot starve
    // the rest; also flush pending writes opportunistically.
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      Conn& c = conns_[(rr_ + 1 + i) % conns_.size()];
      if (tx_backlog(c) > 0) try_flush(c);
      std::string why;
      switch (c.rx.next(out, &why)) {
        case FrameReassembler::Next::kFrame:
          if (from != nullptr) *from = c.node;
          rr_ = (rr_ + 1 + i) % conns_.size();
          ++stats_.frames_received;
          return RecvOutcome::kFrame;
        case FrameReassembler::Next::kError:
          c.closed = true;
          c.rx_eof = true;  // the stream is garbage — stop reading it
          c.close_reason = why;
          break;
        case FrameReassembler::Next::kNeedMore:
          break;
      }
    }
    // Report deaths (once per connection) — but only after the inbound half
    // is exhausted too: a send failure alone may still have the peer's
    // parting frames (its Bye) in the kernel buffer, and dropping them
    // would misclassify a graceful leave as a death.
    for (Conn& c : conns_) {
      if (c.closed && c.rx_eof && !c.close_reported) {
        c.close_reported = true;
        if (from != nullptr) *from = c.node;
        if (error != nullptr)
          *error = "node " + std::to_string(c.node) + ": " +
                   (c.close_reason.empty() ? "connection closed"
                                           : c.close_reason);
        return RecvOutcome::kClosed;
      }
    }
    // Pump the sockets. A conn stays pumpable until BOTH halves are done:
    // a send-side failure still reads (draining the peer's parting frames),
    // a receive-side EOF still flushes what we owe the peer.
    const auto dead = [](const Conn& c) { return c.closed && c.rx_eof; };
    const auto drain_fd = [this](Conn& c) {
      std::uint8_t chunk[65536];
      bool got = false;
      for (;;) {
        const ssize_t r = ::read(c.fd, chunk, sizeof chunk);
        ++stats_.syscalls;
        if (r > 0) {
          stats_.bytes_received += static_cast<std::uint64_t>(r);
          c.rx.feed(ByteSpan{chunk, static_cast<std::size_t>(r)});
          got = true;
          if (r < static_cast<ssize_t>(sizeof chunk)) break;
          continue;
        }
        if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (r < 0 && errno == EINTR) continue;
        c.closed = true;
        c.rx_eof = true;
        if (c.close_reason.empty())
          c.close_reason = r == 0 ? "connection closed"
                                  : "read: " + std::string(strerror(errno));
        break;
      }
      return got;
    };
    std::size_t live = 0;
    for (const Conn& c : conns_)
      if (!dead(c)) ++live;
    if (live == 0) return RecvOutcome::kIdle;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    const int wait = timeout_ms <= 0 ? 0
                     : left.count() > 0 ? static_cast<int>(left.count())
                                        : 0;
    std::size_t n = 0;
    for (Conn& c : conns_) {
      if (dead(c)) continue;
      pfds[n].fd = c.fd;
      pfds[n].events = static_cast<short>(
          (c.rx_eof ? 0 : POLLIN) |
          (!c.closed && tx_backlog(c) > 0 ? POLLOUT : 0));
      pfds[n].revents = 0;
      ++n;
    }
    const int ready = ::poll(pfds.data(), n, wait);
    bool got_bytes = false;
    if (ready > 0) {
      std::size_t k = 0;
      for (Conn& c : conns_) {
        if (dead(c)) continue;
        const short rev = pfds[k++].revents;
        if (rev & POLLOUT) try_flush(c);
        if (!c.rx_eof && (rev & (POLLIN | POLLHUP | POLLERR)) && drain_fd(c))
          got_bytes = true;
      }
    }
    if (!got_bytes && wait <= 0 && timeout_ms >= 0) {
      // One poll pass exhausted the budget (or this was a pure poll).
      bool death_pending = false;
      for (const Conn& c : conns_)
        if (c.closed && c.rx_eof && !c.close_reported) death_pending = true;
      if (!death_pending) return RecvOutcome::kIdle;
    }
  }
}

}  // namespace mcam::estelle
