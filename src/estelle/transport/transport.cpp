#include "estelle/transport/transport.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace mcam::estelle {

using common::Error;
using common::Status;

// ---------------------------------------------------------------------------
// LoopbackHub

class LoopbackHub::Endpoint final : public MailboxTransport {
 public:
  Endpoint(std::shared_ptr<State> state, int node)
      : state_(std::move(state)), node_(node) {
    for (int p = 0; p < state_->nodes; ++p)
      if (p != node_) peers_.push_back(p);
    dead_reported_.assign(peers_.size(), false);
  }

  ~Endpoint() override {
    // Close both directions of every link touching this node; blocked
    // receivers wake and observe the death.
    std::lock_guard<std::mutex> lock(state_->mu);
    for (int p : peers_) {
      link(p, node_).open = false;
      link(node_, p).open = false;
    }
    state_->cv.notify_all();
  }

  [[nodiscard]] const std::vector<int>& peers() const noexcept override {
    return peers_;
  }

  bool sever(int peer) override {
    // Loopback links have no redial path, so a severed link is a permanent
    // death: the peer observes kClosed — the abort-path half of the fault
    // model (close-after-frame-N over a recoverable mesh exercises the
    // other half).
    std::lock_guard<std::mutex> lock(state_->mu);
    bool any = false;
    for (const int p : peers_) {
      if (p != peer) continue;
      link(p, node_).open = false;
      link(node_, p).open = false;
      any = true;
    }
    state_->cv.notify_all();
    return any;
  }

  Status send(int peer, Frame& f) override {
    std::unique_lock<std::mutex> lock(state_->mu);
    State::Link& l = link(peer, node_);
    if (!l.open)
      return Error::make(kPeerClosed, "loopback: node " +
                                          std::to_string(peer) + " is gone");
    const std::size_t depth = l.q.size() - l.head;
    if (depth >= kQueueCap)
      return Error::make(kQueueFull, "loopback: queue to node " +
                                         std::to_string(peer) + " full");
    if (f.type == FrameType::TransferBatch)
      stats_.frames_batched += f.entries.size();
    l.q.push_back(std::move(f));  // zero-copy: the frame itself moves
    ++stats_.frames_sent;
    if (depth + 1 > stats_.send_queue_high_water)
      stats_.send_queue_high_water = depth + 1;
    state_->cv.notify_all();
    return Status::ok_status();
  }

  RecvOutcome recv(int* from, Frame* out, int timeout_ms,
                   std::string* error) override {
    std::unique_lock<std::mutex> lock(state_->mu);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
      // Round-robin over senders from just past the last served one, so a
      // chatty peer cannot starve the others.
      for (std::size_t i = 0; i < peers_.size(); ++i) {
        const int p = peers_[(rr_ + 1 + i) % peers_.size()];
        State::Link& l = link(node_, p);
        if (l.head < l.q.size()) {
          *out = std::move(l.q[l.head]);
          if (++l.head == l.q.size()) {
            l.q.clear();  // drained — recycle capacity, keep it allocated
            l.head = 0;
          }
          if (from != nullptr) *from = p;
          rr_ = (rr_ + 1 + i) % peers_.size();
          ++stats_.frames_received;
          state_->cv.notify_all();  // a back-pressured sender may proceed
          return RecvOutcome::kFrame;
        }
      }
      for (const int p : peers_) {
        if (!link(node_, p).open && !dead_reported_[static_cast<std::size_t>(
                                        peer_index(p))]) {
          dead_reported_[static_cast<std::size_t>(peer_index(p))] = true;
          if (from != nullptr) *from = p;
          if (error != nullptr)
            *error = "loopback: node " + std::to_string(p) + " is gone";
          return RecvOutcome::kClosed;
        }
      }
      if (timeout_ms <= 0) return RecvOutcome::kIdle;
      if (state_->cv.wait_until(lock, deadline) == std::cv_status::timeout)
        return RecvOutcome::kIdle;
    }
  }

 private:
  [[nodiscard]] State::Link& link(int to, int from) const {
    return state_->links[static_cast<std::size_t>(to * state_->nodes + from)];
  }
  [[nodiscard]] int peer_index(int p) const noexcept {
    return p < node_ ? p : p - 1;
  }

  std::shared_ptr<State> state_;
  int node_;
  std::vector<int> peers_;
  std::vector<bool> dead_reported_;
  std::size_t rr_ = 0;
};

LoopbackHub::LoopbackHub(int nodes) : state_(std::make_shared<State>()) {
  if (nodes < 1) throw std::invalid_argument("LoopbackHub: nodes < 1");
  state_->nodes = nodes;
  state_->links.resize(static_cast<std::size_t>(nodes) *
                       static_cast<std::size_t>(nodes));
  for (auto& l : state_->links) l.open = true;
  state_->taken.assign(static_cast<std::size_t>(nodes), false);
}

std::unique_ptr<MailboxTransport> LoopbackHub::endpoint(int node) {
  if (node < 0 || node >= state_->nodes)
    throw std::invalid_argument("LoopbackHub: bad node id");
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->taken[static_cast<std::size_t>(node)])
      throw std::logic_error("LoopbackHub: endpoint taken twice");
    state_->taken[static_cast<std::size_t>(node)] = true;
  }
  return std::make_unique<Endpoint>(state_, node);
}

}  // namespace mcam::estelle
