#include "estelle/transport/frame.hpp"

#include <cstring>
#include <utility>

#include "asn1/ber.hpp"

namespace mcam::estelle {

using asn1::Value;
using common::ByteSpan;
using common::Bytes;
using common::Error;
using common::Result;

namespace {

/// u64 fields ride the INTEGER as an int64 bit-cast on both sides, so the
/// full range (hashes) round-trips exactly.
Value u64v(std::uint64_t v) {
  return Value::integer(static_cast<std::int64_t>(v));
}

Result<std::uint64_t> get_u64(const Value& seq, std::size_t i) {
  if (i >= seq.size())
    return Error::make(asn1::kTruncated, "frame field " + std::to_string(i) +
                                             " missing");
  Result<std::int64_t> v = seq.child(i).as_int();
  if (!v.ok()) return v.error();
  return static_cast<std::uint64_t>(v.value());
}

Result<std::uint32_t> get_u32(const Value& seq, std::size_t i) {
  Result<std::uint64_t> v = get_u64(seq, i);
  if (!v.ok()) return v.error();
  if (v.value() > 0xffffffffull)
    return Error::make(asn1::kWrongType, "frame field " + std::to_string(i) +
                                             " out of u32 range");
  return static_cast<std::uint32_t>(v.value());
}

Result<bool> get_bool(const Value& seq, std::size_t i) {
  if (i >= seq.size())
    return Error::make(asn1::kTruncated, "frame field " + std::to_string(i) +
                                             " missing");
  return seq.child(i).as_bool();
}

Result<std::string> get_str(const Value& seq, std::size_t i) {
  if (i >= seq.size())
    return Error::make(asn1::kTruncated, "frame field " + std::to_string(i) +
                                             " missing");
  return seq.child(i).as_string();
}

/// The frame body as an ASN.1 value (the catalogue in frame.hpp).
Value frame_value(const Frame& f) {
  std::vector<Value> body;
  switch (f.type) {
    case FrameType::Hello:
      body = {u64v(f.node),      u64v(f.nodes),
              u64v(f.shards),    u64v(f.spec_hash),
              u64v(f.topology_version), u64v(f.assign_hash)};
      break;
    case FrameType::Welcome:
      body = {u64v(f.node), Value::boolean(f.accept),
              Value::utf8string(f.reason)};
      break;
    case FrameType::Transfer: {
      body = {u64v(f.channel),     Value::integer(f.dir),
              u64v(f.round),       Value::integer(f.sent_at_ns),
              Value::integer(f.msg.kind), Value::octet_string(f.msg.payload)};
      // The structured parameters travel as-is — the Interaction's value IS
      // an ASN.1 value, wrapped [0] EXPLICIT only to mark presence.
      if (!(f.msg.value == Value()))
        body.push_back(Value::context(0, f.msg.value));
      break;
    }
    case FrameType::Advertise:
    case FrameType::NullRound:
      body = {u64v(f.shard), u64v(f.round)};
      break;
    case FrameType::RoundDone:
      body = {u64v(f.node), u64v(f.round), Value::boolean(f.quiescent)};
      break;
    case FrameType::Probe:
      body = {u64v(f.node), u64v(f.epoch)};
      break;
    case FrameType::ProbeAck:
      body = {u64v(f.node), u64v(f.epoch), Value::boolean(f.quiescent),
              u64v(f.sent), u64v(f.recv)};
      break;
    case FrameType::Bye:
      body = {u64v(f.node)};
      break;
  }
  return Value::application(static_cast<std::uint32_t>(f.type),
                            std::move(body));
}

#define TRY_FIELD(dest, expr)              \
  do {                                     \
    auto r_ = (expr);                      \
    if (!r_.ok()) return r_.error();       \
    (dest) = std::move(r_).value();        \
  } while (0)

Result<Frame> frame_from_value(const Value& v) {
  if (v.tag_class() != asn1::TagClass::Application || !v.constructed())
    return Error::make(asn1::kBadTag, "frame: not an APPLICATION envelope");
  if (v.tag() < 1 || v.tag() > 9)
    return Error::make(asn1::kBadTag,
                       "frame: unknown type " + std::to_string(v.tag()));
  Frame f;
  f.type = static_cast<FrameType>(v.tag());
  switch (f.type) {
    case FrameType::Hello:
      TRY_FIELD(f.node, get_u32(v, 0));
      TRY_FIELD(f.nodes, get_u32(v, 1));
      TRY_FIELD(f.shards, get_u32(v, 2));
      TRY_FIELD(f.spec_hash, get_u64(v, 3));
      TRY_FIELD(f.topology_version, get_u64(v, 4));
      TRY_FIELD(f.assign_hash, get_u64(v, 5));
      break;
    case FrameType::Welcome:
      TRY_FIELD(f.node, get_u32(v, 0));
      TRY_FIELD(f.accept, get_bool(v, 1));
      TRY_FIELD(f.reason, get_str(v, 2));
      break;
    case FrameType::Transfer: {
      TRY_FIELD(f.channel, get_u32(v, 0));
      std::uint32_t dir = 0;
      TRY_FIELD(dir, get_u32(v, 1));
      if (dir > 1)
        return Error::make(asn1::kWrongType, "transfer: dir not 0/1");
      f.dir = static_cast<std::uint8_t>(dir);
      TRY_FIELD(f.round, get_u64(v, 2));
      std::uint64_t sent_at = 0;
      TRY_FIELD(sent_at, get_u64(v, 3));
      f.sent_at_ns = static_cast<std::int64_t>(sent_at);
      std::uint32_t kind = 0;
      TRY_FIELD(kind, get_u32(v, 4));
      f.msg.kind = static_cast<int>(kind);
      TRY_FIELD(f.msg.payload, (v.size() > 5 ? v.child(5).as_octets()
                                             : Result<Bytes>(Error::make(
                                                   asn1::kTruncated,
                                                   "transfer: no payload"))));
      if (const Value* wrapped = v.find_context(0)) {
        Result<Value> inner = wrapped->unwrap_context(0);
        if (!inner.ok()) return inner.error();
        f.msg.value = std::move(inner).value();
      }
      break;
    }
    case FrameType::Advertise:
    case FrameType::NullRound:
      TRY_FIELD(f.shard, get_u32(v, 0));
      TRY_FIELD(f.round, get_u64(v, 1));
      break;
    case FrameType::RoundDone:
      TRY_FIELD(f.node, get_u32(v, 0));
      TRY_FIELD(f.round, get_u64(v, 1));
      TRY_FIELD(f.quiescent, get_bool(v, 2));
      break;
    case FrameType::Probe:
      TRY_FIELD(f.node, get_u32(v, 0));
      TRY_FIELD(f.epoch, get_u64(v, 1));
      break;
    case FrameType::ProbeAck:
      TRY_FIELD(f.node, get_u32(v, 0));
      TRY_FIELD(f.epoch, get_u64(v, 1));
      TRY_FIELD(f.quiescent, get_bool(v, 2));
      TRY_FIELD(f.sent, get_u64(v, 3));
      TRY_FIELD(f.recv, get_u64(v, 4));
      break;
    case FrameType::Bye:
      TRY_FIELD(f.node, get_u32(v, 0));
      break;
  }
  return f;
}

#undef TRY_FIELD

}  // namespace

const char* frame_type_name(FrameType t) noexcept {
  switch (t) {
    case FrameType::Hello:
      return "hello";
    case FrameType::Welcome:
      return "welcome";
    case FrameType::Transfer:
      return "transfer";
    case FrameType::Advertise:
      return "advertise";
    case FrameType::NullRound:
      return "null-round";
    case FrameType::RoundDone:
      return "round-done";
    case FrameType::Probe:
      return "probe";
    case FrameType::ProbeAck:
      return "probe-ack";
    case FrameType::Bye:
      return "bye";
  }
  return "?";
}

void encode_frame_to(const Frame& f, Bytes& out) {
  const Value v = frame_value(f);
  const std::size_t body_len = asn1::encoded_length(v);
  out.push_back(static_cast<std::uint8_t>(body_len >> 24));
  out.push_back(static_cast<std::uint8_t>(body_len >> 16));
  out.push_back(static_cast<std::uint8_t>(body_len >> 8));
  out.push_back(static_cast<std::uint8_t>(body_len));
  asn1::encode_to(v, out);
}

Bytes encode_frame(const Frame& f) {
  Bytes out;
  encode_frame_to(f, out);
  return out;
}

Result<Frame> decode_frame(ByteSpan body) {
  Result<Value> v = asn1::decode(body);
  if (!v.ok()) return v.error();
  return frame_from_value(v.value());
}

void FrameReassembler::feed(ByteSpan data) {
  // Compact before growing: once the consumed prefix dominates the buffer,
  // slide the tail down so capacity is reused instead of extended.
  if (pos_ > 4096 && pos_ * 2 >= buf_.size()) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
}

FrameReassembler::Next FrameReassembler::next(Frame* out, std::string* error) {
  const std::size_t avail = buf_.size() - pos_;
  if (avail < 4) return Next::kNeedMore;
  const std::uint8_t* p = buf_.data() + pos_;
  const std::size_t body_len = (static_cast<std::size_t>(p[0]) << 24) |
                               (static_cast<std::size_t>(p[1]) << 16) |
                               (static_cast<std::size_t>(p[2]) << 8) |
                               static_cast<std::size_t>(p[3]);
  if (body_len > kMaxFrameBytes) {
    if (error != nullptr)
      *error = "frame length " + std::to_string(body_len) +
               " exceeds limit — stream corrupt";
    return Next::kError;
  }
  if (avail < 4 + body_len) return Next::kNeedMore;
  Result<Frame> f = decode_frame(ByteSpan{p + 4, body_len});
  if (!f.ok()) {
    // A framed-but-undecodable body means the peer speaks another dialect
    // (or the stream desynchronized); resynchronizing inside BER garbage is
    // hopeless, so the stream dies here.
    if (error != nullptr) *error = "frame decode: " + f.error().message;
    return Next::kError;
  }
  pos_ += 4 + body_len;
  *out = std::move(f).value();
  return Next::kFrame;
}

}  // namespace mcam::estelle
