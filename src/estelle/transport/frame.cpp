#include "estelle/transport/frame.hpp"

#include <cstring>
#include <utility>

#include "asn1/ber.hpp"

namespace mcam::estelle {

using asn1::Value;
using common::ByteSpan;
using common::Bytes;
using common::Error;
using common::Result;

namespace {

/// u64 fields ride the INTEGER as an int64 bit-cast on both sides, so the
/// full range (hashes) round-trips exactly.
Value u64v(std::uint64_t v) {
  return Value::integer(static_cast<std::int64_t>(v));
}

Result<std::uint64_t> get_u64(const Value& seq, std::size_t i) {
  if (i >= seq.size())
    return Error::make(asn1::kTruncated, "frame field " + std::to_string(i) +
                                             " missing");
  Result<std::int64_t> v = seq.child(i).as_int();
  if (!v.ok()) return v.error();
  return static_cast<std::uint64_t>(v.value());
}

Result<std::uint32_t> get_u32(const Value& seq, std::size_t i) {
  Result<std::uint64_t> v = get_u64(seq, i);
  if (!v.ok()) return v.error();
  if (v.value() > 0xffffffffull)
    return Error::make(asn1::kWrongType, "frame field " + std::to_string(i) +
                                             " out of u32 range");
  return static_cast<std::uint32_t>(v.value());
}

Result<bool> get_bool(const Value& seq, std::size_t i) {
  if (i >= seq.size())
    return Error::make(asn1::kTruncated, "frame field " + std::to_string(i) +
                                             " missing");
  return seq.child(i).as_bool();
}

Result<std::string> get_str(const Value& seq, std::size_t i) {
  if (i >= seq.size())
    return Error::make(asn1::kTruncated, "frame field " + std::to_string(i) +
                                             " missing");
  return seq.child(i).as_string();
}

// ---------------------------------------------------------------------------
// Direct BER writer — the transfer hot path.
//
// Transfer and TransferBatch are the only frames sent per message rather than
// per round, so they skip the Value-tree construction entirely: lengths are
// computed arithmetically and the TLVs are written straight into the caller's
// buffer. With the buffer warmed to capacity the encode allocates nothing.
// The emitted octets are exactly what the tree encoder would produce (same
// minimal two's-complement INTEGERs, same definite lengths), so the general
// decoder reads them back unchanged — a property the frame tests pin.

std::size_t int_content_len(std::int64_t v) noexcept {
  std::size_t n = 1;
  while (v > 127 || v < -128) {
    v >>= 8;
    ++n;
  }
  return n;
}

std::size_t len_octets(std::size_t n) noexcept {
  if (n < 128) return 1;
  if (n < 256) return 2;
  if (n < 65536) return 3;
  return 4;  // < 2^24 always: bodies are capped by kMaxFrameBytes
}

/// Octets of a complete low-tag TLV holding `content` content octets.
std::size_t tlv_len(std::size_t content) noexcept {
  return 1 + len_octets(content) + content;
}

std::size_t int_tlv_len(std::int64_t v) noexcept {
  return tlv_len(int_content_len(v));
}

void put_header(Bytes& out, std::uint8_t tag, std::size_t content) {
  out.push_back(tag);
  if (content < 128) {
    out.push_back(static_cast<std::uint8_t>(content));
    return;
  }
  const int b = content < 256 ? 1 : content < 65536 ? 2 : 3;
  out.push_back(static_cast<std::uint8_t>(0x80 | b));
  for (int i = b; i-- > 0;)
    out.push_back(static_cast<std::uint8_t>(content >> (8 * i)));
}

void put_int(Bytes& out, std::int64_t v) {
  const std::size_t n = int_content_len(v);
  put_header(out, 0x02, n);  // INTEGER
  for (std::size_t i = n; i-- > 0;)
    out.push_back(static_cast<std::uint8_t>(
        static_cast<std::uint64_t>(v) >> (8 * i)));
}

bool has_value(const Interaction& msg) { return !(msg.value == Value()); }

/// Content length of the Transfer/batch-entry field list from `first` on
/// (Transfer inserts the round between dir and sent_at_ns; entries omit it).
std::size_t msg_fields_len(const Interaction& msg) {
  std::size_t n = int_tlv_len(msg.kind) + tlv_len(msg.payload.size());
  if (has_value(msg)) n += tlv_len(asn1::encoded_length(msg.value));
  return n;
}

void put_msg_fields(Bytes& out, const Interaction& msg) {
  put_int(out, msg.kind);
  put_header(out, 0x04, msg.payload.size());  // OCTET STRING
  out.insert(out.end(), msg.payload.begin(), msg.payload.end());
  if (has_value(msg)) {
    put_header(out, 0xA0, asn1::encoded_length(msg.value));  // [0] EXPLICIT
    asn1::encode_to(msg.value, out);
  }
}

std::size_t transfer_body_len(const Frame& f) {
  return int_tlv_len(static_cast<std::int64_t>(f.channel)) +
         int_tlv_len(f.dir) + int_tlv_len(static_cast<std::int64_t>(f.round)) +
         int_tlv_len(f.sent_at_ns) + msg_fields_len(f.msg);
}

std::size_t entry_content_len(const TransferEntry& e) {
  return int_tlv_len(static_cast<std::int64_t>(e.channel)) +
         int_tlv_len(e.dir) + int_tlv_len(e.sent_at_ns) +
         msg_fields_len(e.msg);
}

std::size_t batch_body_len(const Frame& f, std::size_t* entries_content) {
  std::size_t entries = 0;
  for (const TransferEntry& e : f.entries) entries += tlv_len(entry_content_len(e));
  *entries_content = entries;
  return int_tlv_len(static_cast<std::int64_t>(f.round)) + tlv_len(entries);
}

/// The frame body as an ASN.1 value (the catalogue in frame.hpp).
Value frame_value(const Frame& f) {
  std::vector<Value> body;
  switch (f.type) {
    case FrameType::Hello:
      body = {u64v(f.node),      u64v(f.nodes),
              u64v(f.shards),    u64v(f.spec_hash),
              u64v(f.topology_version), u64v(f.assign_hash)};
      break;
    case FrameType::Welcome:
      body = {u64v(f.node), Value::boolean(f.accept),
              Value::utf8string(f.reason)};
      break;
    case FrameType::Transfer: {
      body = {u64v(f.channel),     Value::integer(f.dir),
              u64v(f.round),       Value::integer(f.sent_at_ns),
              Value::integer(f.msg.kind), Value::octet_string(f.msg.payload)};
      // The structured parameters travel as-is — the Interaction's value IS
      // an ASN.1 value, wrapped [0] EXPLICIT only to mark presence.
      if (!(f.msg.value == Value()))
        body.push_back(Value::context(0, f.msg.value));
      break;
    }
    case FrameType::Advertise:
    case FrameType::NullRound:
      body = {u64v(f.shard), u64v(f.round)};
      break;
    case FrameType::RoundDone:
      body = {u64v(f.node), u64v(f.round), Value::boolean(f.quiescent)};
      break;
    case FrameType::Probe:
      body = {u64v(f.node), u64v(f.epoch)};
      break;
    case FrameType::ProbeAck:
      body = {u64v(f.node), u64v(f.epoch), Value::boolean(f.quiescent),
              u64v(f.sent), u64v(f.recv)};
      break;
    case FrameType::Bye:
      body = {u64v(f.node)};
      break;
    case FrameType::HelloResume:
      body = {u64v(f.node), u64v(f.spec_hash), u64v(f.epoch), u64v(f.recv)};
      break;
    case FrameType::SessionAck:
      body = {u64v(f.recv)};
      break;
    case FrameType::TransferBatch: {
      // Reference encoding only: encode_frame_to routes batches through the
      // direct writer; the tests pin both to the same octets.
      std::vector<Value> entries;
      entries.reserve(f.entries.size());
      for (const TransferEntry& e : f.entries) {
        std::vector<Value> ev = {u64v(e.channel), Value::integer(e.dir),
                                 Value::integer(e.sent_at_ns),
                                 Value::integer(e.msg.kind),
                                 Value::octet_string(e.msg.payload)};
        if (has_value(e.msg)) ev.push_back(Value::context(0, e.msg.value));
        entries.push_back(Value::sequence(std::move(ev)));
      }
      body = {u64v(f.round), Value::sequence(std::move(entries))};
      break;
    }
  }
  return Value::application(static_cast<std::uint32_t>(f.type),
                            std::move(body));
}

/// One batch entry from its SEQUENCE value. Returns false on any structural
/// defect — the caller skips the entry (and counts it) instead of failing
/// the whole frame: the length prefix already guaranteed framing, so one
/// corrupt entry must not take down its siblings.
bool entry_from_value(const Value& ev, TransferEntry& e) {
  if (!ev.is_universal(asn1::UniversalTag::Sequence) || !ev.constructed())
    return false;
  Result<std::uint32_t> channel = get_u32(ev, 0);
  if (!channel.ok()) return false;
  e.channel = channel.value();
  Result<std::uint32_t> dir = get_u32(ev, 1);
  if (!dir.ok() || dir.value() > 1) return false;
  e.dir = static_cast<std::uint8_t>(dir.value());
  Result<std::uint64_t> sent_at = get_u64(ev, 2);
  if (!sent_at.ok()) return false;
  e.sent_at_ns = static_cast<std::int64_t>(sent_at.value());
  Result<std::uint32_t> kind = get_u32(ev, 3);
  if (!kind.ok()) return false;
  e.msg.kind = static_cast<int>(kind.value());
  if (ev.size() < 5) return false;
  Result<Bytes> payload = ev.child(4).as_octets();
  if (!payload.ok()) return false;
  e.msg.payload = std::move(payload).value();
  if (const Value* wrapped = ev.find_context(0)) {
    Result<Value> inner = wrapped->unwrap_context(0);
    if (!inner.ok()) return false;
    e.msg.value = std::move(inner).value();
  }
  return true;
}

// ---------------------------------------------------------------------------
// Direct BER reader — the batch receive hot path.
//
// Mirrors the direct writer: a TransferBatch body is picked apart with a
// cursor instead of materializing the Value tree, whose per-entry child
// vectors dominated receive-side profiles. Outer-structure defects fall back
// to the reference tree decoder; entry-level defects degrade to per-entry
// rejection exactly like entry_from_value.

struct Cursor {
  const std::uint8_t* p;
  const std::uint8_t* end;
  std::size_t left() const noexcept {
    return static_cast<std::size_t>(end - p);
  }
};

/// Low-tag definite-length header. False on truncation, high-tag-number
/// form, or indefinite/overlong length — shapes the writer never emits.
bool read_header(Cursor& c, std::uint8_t* id, std::size_t* len) {
  if (c.left() < 2) return false;
  *id = c.p[0];
  if ((*id & 0x1f) == 0x1f) return false;
  const std::uint8_t l = c.p[1];
  c.p += 2;
  if (l < 0x80) {
    *len = l;
  } else {
    const std::size_t n = l & 0x7f;
    if (n == 0 || n > 4 || c.left() < n) return false;
    std::size_t v = 0;
    for (std::size_t i = 0; i < n; ++i) v = (v << 8) | c.p[i];
    c.p += n;
    *len = v;
  }
  return *len <= c.left();
}

/// Primitive INTEGER with 1..8 content octets (as_int's accepted range).
bool read_int(Cursor& c, std::int64_t* out) {
  std::uint8_t id = 0;
  std::size_t len = 0;
  if (!read_header(c, &id, &len)) return false;
  if (id != 0x02 || len == 0 || len > 8) return false;
  std::int64_t v = (c.p[0] & 0x80) ? -1 : 0;
  for (std::size_t i = 0; i < len; ++i) v = (v << 8) | c.p[i];
  c.p += len;
  *out = v;
  return true;
}

/// One delimited batch entry (cursor by value: the entry's own length
/// already bounds it). Field semantics match entry_from_value: u32 range
/// checks, dir 0/1, any primitive accepted as the payload octets, first
/// [0] EXPLICIT child is the structured value, unknown trailing fields
/// ignored.
bool read_entry(Cursor c, TransferEntry* e) {
  std::int64_t v = 0;
  if (!read_int(c, &v) || v < 0 || v > 0xffffffffll) return false;
  e->channel = static_cast<std::uint32_t>(v);
  if (!read_int(c, &v) || v < 0 || v > 1) return false;
  e->dir = static_cast<std::uint8_t>(v);
  if (!read_int(c, &v)) return false;
  e->sent_at_ns = v;
  if (!read_int(c, &v) || v < 0 || v > 0xffffffffll) return false;
  e->msg.kind = static_cast<int>(v);
  std::uint8_t id = 0;
  std::size_t len = 0;
  if (!read_header(c, &id, &len) || (id & 0x20) != 0) return false;
  e->msg.payload.assign(c.p, c.p + len);
  c.p += len;
  while (read_header(c, &id, &len)) {
    if ((id & 0xc0) == 0x80 && (id & 0x1f) == 0) {
      if ((id & 0x20) == 0) return false;  // [0] primitive: unwrap would fail
      Result<Value> inner = asn1::decode(ByteSpan{c.p, len});
      if (!inner.ok()) return false;
      e->msg.value = std::move(inner).value();
      return true;
    }
    c.p += len;
  }
  return true;
}

/// Direct decode of a TransferBatch body. False when the outer shape is not
/// the writer's clean form — the caller retries on the tree decoder, which
/// stays the semantics reference for hostile input.
bool read_batch_body(ByteSpan body, Frame* f) {
  Cursor c{body.data(), body.data() + body.size()};
  std::uint8_t id = 0;
  std::size_t len = 0;
  if (!read_header(c, &id, &len) || id != 0x6A || len != c.left())
    return false;  // [APPLICATION 10] filling the whole body
  std::int64_t round = 0;
  if (!read_int(c, &round)) return false;
  f->round = static_cast<std::uint64_t>(round);
  if (!read_header(c, &id, &len) || id != 0x30 || len != c.left())
    return false;  // SEQUENCE OF entry
  while (c.left() > 0) {
    if (!read_header(c, &id, &len)) return false;  // cannot delimit entries
    TransferEntry e;
    if (id == 0x30 && read_entry(Cursor{c.p, c.p + len}, &e))
      f->entries.push_back(std::move(e));
    else
      ++f->rejected_entries;
    c.p += len;
  }
  return true;
}

#define TRY_FIELD(dest, expr)              \
  do {                                     \
    auto r_ = (expr);                      \
    if (!r_.ok()) return r_.error();       \
    (dest) = std::move(r_).value();        \
  } while (0)

Result<Frame> frame_from_value(const Value& v) {
  if (v.tag_class() != asn1::TagClass::Application || !v.constructed())
    return Error::make(asn1::kBadTag, "frame: not an APPLICATION envelope");
  if (v.tag() < 1 || v.tag() > 12)
    return Error::make(asn1::kBadTag,
                       "frame: unknown type " + std::to_string(v.tag()));
  Frame f;
  f.type = static_cast<FrameType>(v.tag());
  switch (f.type) {
    case FrameType::Hello:
      TRY_FIELD(f.node, get_u32(v, 0));
      TRY_FIELD(f.nodes, get_u32(v, 1));
      TRY_FIELD(f.shards, get_u32(v, 2));
      TRY_FIELD(f.spec_hash, get_u64(v, 3));
      TRY_FIELD(f.topology_version, get_u64(v, 4));
      TRY_FIELD(f.assign_hash, get_u64(v, 5));
      break;
    case FrameType::Welcome:
      TRY_FIELD(f.node, get_u32(v, 0));
      TRY_FIELD(f.accept, get_bool(v, 1));
      TRY_FIELD(f.reason, get_str(v, 2));
      break;
    case FrameType::Transfer: {
      TRY_FIELD(f.channel, get_u32(v, 0));
      std::uint32_t dir = 0;
      TRY_FIELD(dir, get_u32(v, 1));
      if (dir > 1)
        return Error::make(asn1::kWrongType, "transfer: dir not 0/1");
      f.dir = static_cast<std::uint8_t>(dir);
      TRY_FIELD(f.round, get_u64(v, 2));
      std::uint64_t sent_at = 0;
      TRY_FIELD(sent_at, get_u64(v, 3));
      f.sent_at_ns = static_cast<std::int64_t>(sent_at);
      std::uint32_t kind = 0;
      TRY_FIELD(kind, get_u32(v, 4));
      f.msg.kind = static_cast<int>(kind);
      TRY_FIELD(f.msg.payload, (v.size() > 5 ? v.child(5).as_octets()
                                             : Result<Bytes>(Error::make(
                                                   asn1::kTruncated,
                                                   "transfer: no payload"))));
      if (const Value* wrapped = v.find_context(0)) {
        Result<Value> inner = wrapped->unwrap_context(0);
        if (!inner.ok()) return inner.error();
        f.msg.value = std::move(inner).value();
      }
      break;
    }
    case FrameType::Advertise:
    case FrameType::NullRound:
      TRY_FIELD(f.shard, get_u32(v, 0));
      TRY_FIELD(f.round, get_u64(v, 1));
      break;
    case FrameType::RoundDone:
      TRY_FIELD(f.node, get_u32(v, 0));
      TRY_FIELD(f.round, get_u64(v, 1));
      TRY_FIELD(f.quiescent, get_bool(v, 2));
      break;
    case FrameType::Probe:
      TRY_FIELD(f.node, get_u32(v, 0));
      TRY_FIELD(f.epoch, get_u64(v, 1));
      break;
    case FrameType::ProbeAck:
      TRY_FIELD(f.node, get_u32(v, 0));
      TRY_FIELD(f.epoch, get_u64(v, 1));
      TRY_FIELD(f.quiescent, get_bool(v, 2));
      TRY_FIELD(f.sent, get_u64(v, 3));
      TRY_FIELD(f.recv, get_u64(v, 4));
      break;
    case FrameType::Bye:
      TRY_FIELD(f.node, get_u32(v, 0));
      break;
    case FrameType::HelloResume:
      TRY_FIELD(f.node, get_u32(v, 0));
      TRY_FIELD(f.spec_hash, get_u64(v, 1));
      TRY_FIELD(f.epoch, get_u64(v, 2));
      TRY_FIELD(f.recv, get_u64(v, 3));
      break;
    case FrameType::SessionAck:
      TRY_FIELD(f.recv, get_u64(v, 0));
      break;
    case FrameType::TransferBatch: {
      TRY_FIELD(f.round, get_u64(v, 0));
      if (v.size() < 2)
        return Error::make(asn1::kTruncated, "transfer-batch: no entry list");
      const Value& list = v.child(1);
      if (!list.is_universal(asn1::UniversalTag::Sequence) ||
          !list.constructed())
        return Error::make(asn1::kWrongType,
                           "transfer-batch: entries are not a SEQUENCE");
      f.entries.reserve(list.size());
      for (std::size_t i = 0; i < list.size(); ++i) {
        TransferEntry e;
        if (entry_from_value(list.child(i), e))
          f.entries.push_back(std::move(e));
        else
          ++f.rejected_entries;
      }
      break;
    }
  }
  return f;
}

#undef TRY_FIELD

}  // namespace

const char* frame_type_name(FrameType t) noexcept {
  switch (t) {
    case FrameType::Hello:
      return "hello";
    case FrameType::Welcome:
      return "welcome";
    case FrameType::Transfer:
      return "transfer";
    case FrameType::Advertise:
      return "advertise";
    case FrameType::NullRound:
      return "null-round";
    case FrameType::RoundDone:
      return "round-done";
    case FrameType::Probe:
      return "probe";
    case FrameType::ProbeAck:
      return "probe-ack";
    case FrameType::Bye:
      return "bye";
    case FrameType::TransferBatch:
      return "transfer-batch";
    case FrameType::HelloResume:
      return "hello-resume";
    case FrameType::SessionAck:
      return "session-ack";
  }
  return "?";
}

namespace {

void put_length_prefix(Bytes& out, std::size_t body_len) {
  out.push_back(static_cast<std::uint8_t>(body_len >> 24));
  out.push_back(static_cast<std::uint8_t>(body_len >> 16));
  out.push_back(static_cast<std::uint8_t>(body_len >> 8));
  out.push_back(static_cast<std::uint8_t>(body_len));
}

void put_seq(Bytes& out, std::uint64_t seq) {
  for (int i = 8; i-- > 0;)
    out.push_back(static_cast<std::uint8_t>(seq >> (8 * i)));
}

/// Shared emitter: `seq == nullptr` gives the plain dialect, otherwise the
/// sequenced record (length | seq | body). The body octets are identical.
void emit_frame(const Frame& f, const std::uint64_t* seq, Bytes& out) {
  // The per-message frames go through the direct writer; everything else is
  // per-round or per-run and keeps the simpler Value-tree path.
  if (f.type == FrameType::Transfer) {
    const std::size_t content = transfer_body_len(f);
    put_length_prefix(out, tlv_len(content));
    if (seq != nullptr) put_seq(out, *seq);
    put_header(out, 0x63, content);  // [APPLICATION 3]
    put_int(out, static_cast<std::int64_t>(f.channel));
    put_int(out, f.dir);
    put_int(out, static_cast<std::int64_t>(f.round));
    put_int(out, f.sent_at_ns);
    put_msg_fields(out, f.msg);
    return;
  }
  if (f.type == FrameType::TransferBatch) {
    std::size_t entries_content = 0;
    const std::size_t content = batch_body_len(f, &entries_content);
    put_length_prefix(out, tlv_len(content));
    if (seq != nullptr) put_seq(out, *seq);
    put_header(out, 0x6A, content);  // [APPLICATION 10]
    put_int(out, static_cast<std::int64_t>(f.round));
    put_header(out, 0x30, entries_content);  // SEQUENCE OF entry
    for (const TransferEntry& e : f.entries) {
      put_header(out, 0x30, entry_content_len(e));
      put_int(out, static_cast<std::int64_t>(e.channel));
      put_int(out, e.dir);
      put_int(out, e.sent_at_ns);
      put_msg_fields(out, e.msg);
    }
    return;
  }
  const Value v = frame_value(f);
  put_length_prefix(out, asn1::encoded_length(v));
  if (seq != nullptr) put_seq(out, *seq);
  asn1::encode_to(v, out);
}

}  // namespace

void encode_frame_to(const Frame& f, Bytes& out) {
  emit_frame(f, nullptr, out);
}

void encode_frame_seq_to(const Frame& f, std::uint64_t seq, Bytes& out) {
  emit_frame(f, &seq, out);
}

Bytes encode_frame(const Frame& f) {
  Bytes out;
  encode_frame_to(f, out);
  return out;
}

Result<Frame> decode_frame(ByteSpan body) {
  // Batch frames take the direct reader; a shape it cannot digest falls
  // back to the tree path below, which keeps the reference semantics (and
  // the error messages) for everything unusual.
  if (!body.empty() && body[0] == 0x6A) {
    Frame f;
    f.type = FrameType::TransferBatch;
    if (read_batch_body(body, &f)) return f;
  }
  Result<Value> v = asn1::decode(body);
  if (!v.ok()) return v.error();
  return frame_from_value(v.value());
}

void FrameReassembler::feed(ByteSpan data) {
  // Compact before growing. A fully-drained buffer rewinds for free; a
  // buffer whose consumed prefix either dominates it or is the difference
  // between fitting and regrowing slides its tail down with memmove. Only
  // after reclaiming the prefix may the insert extend capacity — so a
  // steady stream of frames no larger than the high-water mark never
  // reallocates, whatever read()-boundary splits arrive.
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > 0 && (buf_.size() + data.size() > buf_.capacity() ||
                          (pos_ > 4096 && pos_ * 2 >= buf_.size()))) {
    std::memmove(buf_.data(), buf_.data() + pos_, buf_.size() - pos_);
    buf_.resize(buf_.size() - pos_);
    pos_ = 0;
  }
  const std::size_t cap = buf_.capacity();
  buf_.insert(buf_.end(), data.begin(), data.end());
  if (buf_.capacity() != cap) ++regrowths_;
}

FrameReassembler::Next FrameReassembler::next(Frame* out, std::string* error) {
  const std::size_t header = seq_prefixed_ ? 12 : 4;
  const std::size_t avail = buf_.size() - pos_;
  if (avail < header) return Next::kNeedMore;
  const std::uint8_t* p = buf_.data() + pos_;
  const std::size_t body_len = (static_cast<std::size_t>(p[0]) << 24) |
                               (static_cast<std::size_t>(p[1]) << 16) |
                               (static_cast<std::size_t>(p[2]) << 8) |
                               static_cast<std::size_t>(p[3]);
  if (body_len > kMaxFrameBytes) {
    if (error != nullptr)
      *error = "frame length " + std::to_string(body_len) +
               " exceeds limit — stream corrupt";
    return Next::kError;
  }
  if (avail < header + body_len) return Next::kNeedMore;
  Result<Frame> f = decode_frame(ByteSpan{p + header, body_len});
  if (!f.ok()) {
    // A framed-but-undecodable body means the peer speaks another dialect
    // (or the stream desynchronized); resynchronizing inside BER garbage is
    // hopeless, so the stream dies here.
    if (error != nullptr) *error = "frame decode: " + f.error().message;
    return Next::kError;
  }
  if (seq_prefixed_) {
    std::uint64_t seq = 0;
    for (int i = 4; i < 12; ++i) seq = (seq << 8) | p[i];
    last_seq_ = seq;
  }
  pos_ += header + body_len;
  *out = std::move(f).value();
  return Next::kFrame;
}

}  // namespace mcam::estelle
