// BufferChain — pooled segment chains for the socket transmit path.
//
// The PR 6 transport kept one flat Bytes per connection: every enqueued
// frame appended into it, every flush erase-compacted it, and a burst of
// per-transfer frames churned the allocator. This is the embedded-net-stack
// answer (the mios pbuf idiom): transmit bytes live in fixed-size segments
// drawn from a per-transport pool, a connection's backlog is a chain of
// (segment, offset, length) views, and a flush hands the whole chain to one
// scatter-gather syscall (sendmsg) instead of copying it contiguous.
//
//   * Segments are refcounted, so a chain can append another chain's
//     segments by reference (append_block) — fan-out of one encoded frame
//     to many peers shares the payload octets instead of copying them.
//   * The pool's free list is bounded (spill-bounded): segments released
//     beyond the bound return to the heap, so a transient burst does not
//     pin its high-water memory forever. Within the bound, acquire/release
//     never touches the allocator — the steady-state send path is
//     allocation-free once warmed.
//   * Single-threaded by design: a transport (and therefore its pool and
//     chains) is owned by one runner thread, matching MailboxTransport's
//     threading contract, so no atomics are needed on the refcounts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bytes.hpp"

struct iovec;  // <sys/uio.h>; forward-declared to keep this header light

namespace mcam::estelle {

/// Fixed-size transmit segments with a bounded free list.
class SegmentPool {
 public:
  /// Segment payload size. Large enough that a typical round's whole
  /// backlog to one peer fits in one or two segments, small enough that a
  /// mostly-idle connection does not pin megabytes.
  static constexpr std::size_t kSegmentBytes = 16384;

  struct Segment {
    std::uint8_t data[kSegmentBytes];
    std::uint32_t refs = 0;
    Segment* next_free = nullptr;
  };

  explicit SegmentPool(std::size_t max_free = 64);
  ~SegmentPool();
  SegmentPool(const SegmentPool&) = delete;
  SegmentPool& operator=(const SegmentPool&) = delete;

  /// A segment with refs == 1: from the free list when possible, freshly
  /// allocated (a "spill") otherwise.
  [[nodiscard]] Segment* acquire();
  void add_ref(Segment* s) noexcept { ++s->refs; }
  /// Drop one reference; the last one returns the segment to the free list
  /// (or the heap once the free list is at its bound).
  void release(Segment* s);

  /// Segments currently parked on the free list.
  [[nodiscard]] std::size_t free_count() const noexcept { return free_count_; }
  /// acquire() calls served without allocating.
  [[nodiscard]] std::uint64_t pool_hits() const noexcept { return pool_hits_; }
  /// acquire() calls that had to allocate (cold start and overflow).
  [[nodiscard]] std::uint64_t spills() const noexcept { return spills_; }

 private:
  Segment* free_ = nullptr;
  std::size_t free_count_ = 0;
  std::size_t max_free_;
  std::uint64_t pool_hits_ = 0;
  std::uint64_t spills_ = 0;
};

/// A FIFO byte queue over pooled segments. append() copies into the owned
/// tail segment; append_block() shares another chain's segments by
/// reference; fill_iov()/consume() drive the scatter-gather drain.
class BufferChain {
 public:
  /// iovec entries one fill_iov() can produce; callers size their stack
  /// array to this. IOV_MAX is at least 1024 everywhere we run; 64 segments
  /// already cover a megabyte of backlog per syscall.
  static constexpr std::size_t kMaxIov = 64;

  explicit BufferChain(SegmentPool* pool = nullptr) noexcept : pool_(pool) {}
  ~BufferChain() { clear(); }
  BufferChain(const BufferChain&) = delete;
  BufferChain& operator=(const BufferChain&) = delete;
  BufferChain(BufferChain&& other) noexcept;
  BufferChain& operator=(BufferChain&& other) noexcept;

  /// Late pool binding for containers of default-constructed chains.
  void bind(SegmentPool* pool) noexcept { pool_ = pool; }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  /// Chain nodes currently queued (one per segment view).
  [[nodiscard]] std::size_t segments() const noexcept {
    return nodes_.size() - head_;
  }

  /// Copy `data` in, filling the exclusively-owned tail segment before
  /// acquiring the next one.
  void append(common::ByteSpan data);
  /// Share `block`'s queued segments by reference — no byte is copied; both
  /// chains release their claim independently.
  void append_block(const BufferChain& block);

  /// Describe up to max_iov leading views for readv/writev-style I/O.
  /// Returns the number of entries written.
  std::size_t fill_iov(iovec* iov, std::size_t max_iov) const noexcept;
  /// Drop the first `n` bytes (accepted by the socket); fully-drained
  /// segments go back to the pool.
  void consume(std::size_t n);
  void clear();

 private:
  struct Node {
    SegmentPool::Segment* seg = nullptr;
    std::uint32_t off = 0;  // first unconsumed byte within seg
    std::uint32_t len = 0;  // unconsumed bytes
  };

  void release_node(Node& n);

  std::vector<Node> nodes_;
  std::size_t head_ = 0;  // consumed prefix of nodes_, compacted when drained
  std::size_t size_ = 0;
  SegmentPool* pool_ = nullptr;
  /// nodes_.back() is an exclusively-owned segment with room to fill.
  bool tail_open_ = false;
};

}  // namespace mcam::estelle
