// ExecutorKind::Distributed — one FreeRunning-style shard group per process,
// synchronized over a MailboxTransport.
//
// The paper's distribution claim (§4: system modules are mutually
// independent, asynchronous units placeable on separate processors) is taken
// to its end point here: every node (process, or thread in the loopback
// tests) constructs the SAME specification, ConflictAnalysis derives the
// same shard assignment on each, and an assignment map gives every shard
// exactly one owning node. A node executes only its own shards; the others
// exist locally as never-fired replicas whose interaction points serve as
// the wire bridge (InteractionPoint::take_transfers / inject_transfer).
//
// Round protocol. Each node advances a round cursor r; all of a node's local
// shards execute round r together — sequentially on the run thread at
// worker width 1, or as continuation tasks on the node's persistent
// WorkerPool at width >= 2 (DistOptions::worker_count), with the run thread
// pumping the transport while they run so shard compute overlaps network
// I/O. Announcements replay on the run thread afterwards in shard id order,
// so the trace composition is identical either way. Across nodes, only
// channel-coupled shards synchronize, through the three PR-5 primitives as
// explicit frames:
//
//   * gate     — a node enters round r only when every REMOTE shard that
//                shares a channel with a local shard has advertised r-1
//                (Advertise / NullRound frames update the bound).
//   * drain    — each local shard accepts parked transfers stamped <= r-1
//                before collecting (InteractionPoint::drain_transfers_until,
//                identical for in-process and injected arrivals).
//   * export   — outputs a local firing addressed to a remote shard park in
//                the replica endpoint's mailbox (deliver()'s cross-shard
//                path); after the round they leave as Transfer frames,
//                stamps intact.
//
// Why the merged trace equals Sequential on conflict-free specifications:
// a transfer stamped k is sent during the sender's round k, BEFORE the
// sender's round-k Advertise on the same FIFO stream. The receiver's gate
// for round k+1 waits for that Advertise, so by the time round k+1 collects,
// the transfer is already parked and the <= k drain accepts it — message
// visibility lands on exactly the round boundary the epoch barrier would
// have put it on. Channel-coupled nodes therefore stay within one round of
// each other while unrelated nodes never wait at all (an idle node advances
// through provably-empty rounds — the null message — only while a neighbor
// node is active).
//
// Termination is a coordinator probe with flow conservation: when node 0 is
// locally quiescent and every peer's last RoundDone reported quiescent, it
// sends Probe{epoch}; peers answer ProbeAck{quiescent-now, transfers sent,
// transfers received}. All-quiescent plus Σsent == Σrecv (nothing in
// flight) confirms global quiescence and Bye releases every node's run()
// with StopReason::Quiescent.
//
// Failure is a value, not a hang: a dead peer (closed/reset connection), a
// refused handshake (spec hash / topology / assignment mismatch), a gate
// watchdog timeout, or a mid-run topology change all end the run with
// StopReason::Aborted and a description in RunReport::error.
//
// Caveats, by design:
//   * specifications ConflictAnalysis cannot prove conflict-free are
//     refused (Aborted) — un-barriered cross-process rounds are unsound on
//     them, and unlike the in-process backends there is no serialized
//     fallback that spans machines.
//   * stop conditions are node-local. max_steps composes (channel-coupled
//     nodes consume rounds in lockstep); deadlines cut at node-local
//     clocks. Multi-node runs should stop on quiescence or a shared
//     max_steps; a node that leaves early broadcasts Bye and peers that
//     still need its rounds abort with a structured error.
//   * one run() per process group: run end broadcasts Bye.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "estelle/shard_executor.hpp"
#include "estelle/transport/transport.hpp"

namespace mcam::estelle {

/// Typed options for the Distributed backend, passed through
/// ExecutorConfig::backend_options. Default-constructed options describe a
/// single node owning every shard and using no transport — make_executor on
/// a config without options yields that degenerate (but correct) runner.
struct DistOptions {
  int node = 0;
  int nodes = 1;
  /// Frame channel to the peers; required when nodes > 1. Shared so the
  /// options stay copyable through std::any.
  std::shared_ptr<MailboxTransport> transport;
  /// shard id -> owning node. Empty ⇒ shard s belongs to node s % nodes.
  /// Must hash identically on every node (checked by the handshake).
  std::vector<int> assignment;
  /// Watchdog for gate waits, back-pressure stalls, handshake and the
  /// termination protocol. Expiry aborts the run with RunReport::error
  /// instead of hanging. Heartbeats (below) reset it: the watchdog fires on
  /// "no sign of life", so it separates slow peers (keep waiting) from dead
  /// ones (the transport's reconnect budget below surfaces those earlier).
  int gate_timeout_ms = 30000;
  /// Session/recovery knobs, handed to the transport as
  /// MailboxTransport::SessionOptions (with the specification fingerprint)
  /// before the membership handshake. A mid-run connection loss is redialed
  /// up to reconnect_max_attempts times with capped exponential backoff and
  /// the lost frame tail replayed; 0 disables recovery (a loss aborts the
  /// run immediately, the pre-session behavior). Counted separately from
  /// dial-time handshake_retries in TransportStats::reconnect_attempts.
  int reconnect_max_attempts = 5;
  int backoff_initial_ms = 20;
  int backoff_cap_ms = 1000;
  /// Unacknowledged sent records older than this force a reconnect (the
  /// retransmission timeout recovering a dropped stream tail).
  int resend_timeout_ms = 1000;
  /// While waiting on a gate or the termination protocol, re-send the
  /// latest RoundDone to every live peer this often — an idle-peer
  /// heartbeat. A waiting peer receiving one resets its own watchdog, so
  /// slow-but-alive transitive chains never time out; a genuinely dead peer
  /// sends none and its loss surfaces through the reconnect budget as a
  /// structured abort well inside gate_timeout_ms. <= 0 disables.
  int heartbeat_interval_ms = 200;
  /// Coalesce a round's transfers to each peer into one TransferBatch frame
  /// (flushed strictly before that round's Advertise, so the FIFO
  /// transfer-before-advertise ordering — and the merged-trace ≡ Sequential
  /// guarantee — is unchanged). Single-transfer rounds keep the small
  /// Transfer frame. Off reproduces the one-frame-one-syscall baseline the
  /// bench and the differential sweep compare against.
  bool batch_transfers = true;
  /// Worker threads for the node-local shard group. With width >= 2 (and at
  /// least two local shards) a node executes each round's shards as
  /// continuation tasks on its persistent WorkerPool while the run thread
  /// keeps servicing the transport — overlapping shard compute with network
  /// I/O instead of alternating them. 0 ⇒ hardware_concurrency(); 1 keeps
  /// the sequential per-node loop (the FreeRunning → Sharded fallback rule;
  /// conflicted specifications are refused outright, so width never races
  /// an unproven spec). Capped at the local shard count;
  /// RunOptions::worker_count overrides per run. The worker count never
  /// changes the merged trace: rounds still compose per shard in
  /// (round, shard) order and transfer export still strictly precedes the
  /// round's Advertise.
  int worker_count = 0;
  /// Per-node "host" / "host:port" list for multi-machine TCP meshes,
  /// carried here so one options object fully describes a run. Consumed by
  /// StreamSocketTransport::tcp_mesh (the runner itself never dials).
  std::vector<std::string> peer_hosts;
  /// Per-firing tap with the (round, shard) coordinates the cross-node
  /// trace merge needs (RunObserver::on_fire does not carry them). Replayed
  /// on the run thread after the round executed, in shard id order then
  /// firing order (announce-after-revalidation, identical for every
  /// worker_count) — so Module::state() seen from the hook is the
  /// post-round state; read the transition and timestamp arguments, not
  /// live world state (the sharded backends' on_fire caveat).
  std::function<void(std::uint64_t round, int shard, Module& m,
                     const Transition& t, SimTime at)>
      trace_hook;
};

class DistributedRunner final : public ShardedExecutor {
 public:
  explicit DistributedRunner(Specification& spec,
                             const ExecutorConfig& cfg = {});

  [[nodiscard]] ExecutorKind kind() const noexcept override {
    return ExecutorKind::Distributed;
  }

  [[nodiscard]] const DistOptions& options() const noexcept { return opts_; }
  /// Completed node rounds (the round cursor).
  [[nodiscard]] std::uint64_t completed_rounds() const noexcept {
    return round_;
  }
  /// Structural fingerprint the handshake compares (FNV-1a over module
  /// paths, interaction points and channel wiring). Exposed for tests.
  [[nodiscard]] std::uint64_t spec_fingerprint();

 protected:
  bool step() override;
  void decorate_report(RunReport& report) override;

 private:
  /// One cross-shard channel with exactly one local endpoint: the wire
  /// bridge for that channel, in both directions.
  struct WireChannel {
    std::uint32_t index = 0;          // position in cross_shard_channels()
    InteractionPoint* local_ep = nullptr;   // inbound injects land here
    InteractionPoint* remote_ep = nullptr;  // outbound transfers park here
    std::uint8_t dir_to_remote = 0;   // Frame::dir that targets remote_ep
    std::uint8_t dir_to_local = 0;    // Frame::dir that targets local_ep
    int peer_node = 0;                // owner of the remote endpoint's shard
  };

  struct PeerState {
    int node = 0;
    bool hello_seen = false;
    bool welcome_seen = false;
    bool departed = false;  // sent Bye (left its run)
    /// Latest RoundDone: the round and whether the peer was locally
    /// quiescent after it. Hints for the termination probe.
    std::uint64_t last_round = 0;
    bool quiescent = false;
    bool round_seen = false;
    /// ProbeAck bookkeeping for the coordinator.
    std::uint64_t ack_epoch = 0;
    bool ack_quiescent = false;
    std::uint64_t ack_sent = 0;
    std::uint64_t ack_recv = 0;
  };

  /// What one pump() observed (recv dispatch is centralized so the gate,
  /// the handshake and the termination wait all share one frame handler).
  enum class Pump { kFrame, kIdle, kFailed };

  [[nodiscard]] bool is_local(int shard) const noexcept {
    return assignment_[static_cast<std::size_t>(shard)] == opts_.node;
  }
  /// First-step wiring: analysis, conflict refusal, assignment and channel
  /// tables, membership handshake. Sets error_ on failure.
  void wire();
  void build_tables();
  bool handshake();
  void fail(std::string why);

  /// recv once (up to timeout_ms) and dispatch the frame into runner state.
  Pump pump(int timeout_ms);
  void on_frame(int from, Frame& f);
  void on_hello(int from, const Frame& f);

  /// Execute node round `r` over the local shards; returns true when any
  /// shard fired or leapt a delay (the round did local work). Width >= 2
  /// deals the shards to the WorkerPool and overlaps the round with
  /// transport pumping; width 1 (or a single local shard) runs the
  /// sequential per-node loop. Either way announcements (observer +
  /// trace_hook) replay on the run thread afterwards, in shard id order.
  bool run_round(std::uint64_t r);
  /// This round's effective worker width: resolved DistOptions::worker_count
  /// (RunOptions::worker_count overrides), capped at the local shard count.
  [[nodiscard]] int node_parallel_width() const noexcept;
  /// One local shard's continuation round; fills shard_deltas_[pos],
  /// shard_worked_[pos] and (when announcing) the shard's fired_log. Worker
  /// context under run_shards_parallel, run-thread context inline.
  void run_one_shard(std::size_t pos, std::uint64_t r, bool announce);
  /// Deal every local shard to the pool, pump the transport while they run
  /// (deferring Probe answers), then quiesce the pool.
  void run_shards_parallel(std::uint64_t r, int width);
  void parallel_shard_task(std::size_t pos) noexcept;
  void answer_probe(int from, std::uint64_t epoch);
  /// Answer Probe frames that arrived during a parallel round (after
  /// send_round_frames, so the verdict reflects the completed round).
  bool flush_deferred_probes();
  /// Ship every transfer parked on remote replica endpoints: coalesced into
  /// one TransferBatch per peer (batch_transfers, the default) or as one
  /// Transfer frame each; pumps through transport back-pressure.
  bool export_transfers(std::uint64_t r);
  bool send_round_frames(std::uint64_t r, bool quiescent);
  /// send with kQueueFull back-pressure handling (pump + retry under the
  /// watchdog) — the contract keeps `f` intact across retries, so the loop
  /// never copies it. False ⇒ error_ set.
  bool send_frame(int peer, Frame& f);
  /// Inject one received transfer; false ⇒ error_ set (bad channel/dir).
  bool accept_transfer(int from, std::uint32_t channel, std::uint8_t dir,
                       Interaction&& msg, std::int64_t sent_at_ns,
                       std::uint64_t round);

  /// Re-send the latest RoundDone to live peers every heartbeat interval
  /// (called from the gate / termination pump loops — the places a node
  /// idles while peers may be watching it for signs of life).
  void maybe_heartbeat();
  /// Wait until every remote gate shard has advertised >= `need`.
  bool gate(std::uint64_t need);
  /// Locally quiescent and peers exist: service the termination protocol.
  /// Returns true to finish the run (global quiescence / Bye), false to
  /// resume rounds (new work arrived or an active neighbor needs nulls).
  bool await_termination();
  [[nodiscard]] bool neighbors_active() const noexcept;
  [[nodiscard]] bool transfers_pending() const noexcept;

  PeerState* peer_state(int node) noexcept;

  DistOptions opts_;
  std::shared_ptr<MailboxTransport> transport_;
  bool wired_ = false;
  std::uint64_t wired_version_ = 0;
  std::uint64_t round_ = 0;
  bool ran_any_round_ = false;
  bool last_quiescent_ = false;
  bool finished_ = false;  // clean Bye-confirmed end
  bool bye_sent_ = false;
  std::chrono::steady_clock::time_point next_heartbeat_{};
  std::string error_;

  std::vector<int> assignment_;          // shard -> node
  std::vector<int> local_shards_;        // ascending ids
  std::vector<std::vector<InteractionPoint*>> boundary_;  // per local shard
  std::vector<int> gate_shards_;         // remote shards we gate on
  std::vector<std::uint64_t> remote_advertised_;  // per shard (remote only)
  std::vector<WireChannel> wire_channels_;
  std::vector<int> wire_by_index_;       // channel index -> wire_channels_ pos
  /// Per local shard: peers owning a remote neighbor (they gate on this
  /// shard, so it advertises to them every round).
  std::vector<std::vector<int>> advertise_peers_;
  std::vector<char> shard_worked_;       // per local shard, this round
  std::vector<int> neighbor_peers_;      // peers owning a gate shard
  std::vector<PeerState> peers_;
  std::uint64_t id_spec_hash_ = 0;       // what our Hello carries
  std::uint64_t id_assign_hash_ = 0;

  std::uint64_t transfers_sent_ = 0;  // transfers (flow conservation; a
  std::uint64_t transfers_recv_ = 0;  // batch counts per entry)
  std::uint64_t probe_epoch_ = 0;

  std::vector<InteractionPoint::Transfer> export_scratch_;
  /// Per neighbor peer: the persistent TransferBatch frame a round's
  /// outbound transfers coalesce into (entries cleared after each flush,
  /// capacity retained — wire sends leave the frame intact).
  struct PeerBatch {
    int peer = 0;
    Frame frame;
  };
  std::vector<PeerBatch> peer_batches_;

  // Node-parallel round state. parallel_round_/parallel_announce_ are
  // written on the run thread before launch() and read by workers through
  // the pool's release edge; pending_shards_ lets the overlap loop poll for
  // completion without touching the pool.
  std::vector<ContinuationDelta> shard_deltas_;  // per local shard
  std::atomic<int> pending_shards_{0};
  std::uint64_t parallel_round_ = 0;
  bool parallel_announce_ = false;
  bool in_parallel_round_ = false;  // run thread only: defer Probe answers
  std::mutex parallel_mu_;          // guards parallel_error_
  std::exception_ptr parallel_error_;
  struct DeferredProbe {
    int from = 0;
    std::uint64_t epoch = 0;
  };
  std::vector<DeferredProbe> deferred_probes_;
  std::uint64_t node_workers_ = 0;       // latest round's effective width
  std::uint64_t parallel_rounds_ = 0;    // rounds run on the pool
  std::uint64_t io_overlap_polls_ = 0;   // pumps completed mid-round
};

}  // namespace mcam::estelle
