#include "estelle/transport/buffer_chain.hpp"

#include <cassert>
#include <cstring>
#include <sys/uio.h>
#include <utility>

namespace mcam::estelle {

// ---------------------------------------------------------------------------
// SegmentPool

SegmentPool::SegmentPool(std::size_t max_free) : max_free_(max_free) {}

SegmentPool::~SegmentPool() {
  while (free_ != nullptr) {
    Segment* next = free_->next_free;
    delete free_;
    free_ = next;
  }
}

SegmentPool::Segment* SegmentPool::acquire() {
  if (free_ != nullptr) {
    Segment* s = free_;
    free_ = s->next_free;
    --free_count_;
    s->next_free = nullptr;
    s->refs = 1;
    ++pool_hits_;
    return s;
  }
  ++spills_;
  Segment* s = new Segment;
  s->refs = 1;
  return s;
}

void SegmentPool::release(Segment* s) {
  assert(s->refs > 0);
  if (--s->refs > 0) return;
  if (free_count_ >= max_free_) {
    delete s;  // spill bound: do not pin burst memory forever
    return;
  }
  s->next_free = free_;
  free_ = s;
  ++free_count_;
}

// ---------------------------------------------------------------------------
// BufferChain

BufferChain::BufferChain(BufferChain&& other) noexcept
    : nodes_(std::move(other.nodes_)),
      head_(other.head_),
      size_(other.size_),
      pool_(other.pool_),
      tail_open_(other.tail_open_) {
  other.nodes_.clear();
  other.head_ = 0;
  other.size_ = 0;
  other.tail_open_ = false;
}

BufferChain& BufferChain::operator=(BufferChain&& other) noexcept {
  if (this == &other) return *this;
  clear();
  nodes_ = std::move(other.nodes_);
  head_ = other.head_;
  size_ = other.size_;
  pool_ = other.pool_;
  tail_open_ = other.tail_open_;
  other.nodes_.clear();
  other.head_ = 0;
  other.size_ = 0;
  other.tail_open_ = false;
  return *this;
}

void BufferChain::append(common::ByteSpan data) {
  while (!data.empty()) {
    if (!tail_open_) {
      nodes_.push_back(Node{pool_->acquire(), 0, 0});
      tail_open_ = true;
    }
    Node& t = nodes_.back();
    // off advances as the head drains, so the fill frontier is off + len
    // even when the same segment is both head and tail.
    const std::size_t frontier = t.off + t.len;
    const std::size_t room = SegmentPool::kSegmentBytes - frontier;
    if (room == 0) {
      tail_open_ = false;
      continue;
    }
    const std::size_t n = data.size() < room ? data.size() : room;
    std::memcpy(t.seg->data + frontier, data.data(), n);
    t.len += static_cast<std::uint32_t>(n);
    size_ += n;
    data = data.subspan(n);
    if (frontier + n == SegmentPool::kSegmentBytes) tail_open_ = false;
  }
}

void BufferChain::append_block(const BufferChain& block) {
  for (std::size_t i = block.head_; i < block.nodes_.size(); ++i) {
    const Node& n = block.nodes_[i];
    if (n.len == 0) continue;
    pool_->add_ref(n.seg);
    nodes_.push_back(n);
    size_ += n.len;
  }
  // Shared segments are immutable from this side; never fill into one.
  tail_open_ = false;
}

std::size_t BufferChain::fill_iov(iovec* iov,
                                  std::size_t max_iov) const noexcept {
  std::size_t k = 0;
  for (std::size_t i = head_; i < nodes_.size() && k < max_iov; ++i) {
    const Node& n = nodes_[i];
    if (n.len == 0) continue;
    iov[k].iov_base = n.seg->data + n.off;
    iov[k].iov_len = n.len;
    ++k;
  }
  return k;
}

void BufferChain::release_node(Node& n) {
  pool_->release(n.seg);
  n.seg = nullptr;
}

void BufferChain::consume(std::size_t n) {
  assert(n <= size_);
  size_ -= n;
  while (n > 0) {
    Node& h = nodes_[head_];
    if (n < h.len) {
      h.off += static_cast<std::uint32_t>(n);
      h.len -= static_cast<std::uint32_t>(n);
      break;
    }
    n -= h.len;
    release_node(h);
    ++head_;
  }
  if (head_ == nodes_.size()) {
    // Fully drained. clear() keeps the vector's capacity, so a chain that
    // drains completely every round — the flush steady state — never regrows
    // its node vector; the segments themselves round-trip through the pool's
    // free list, so the next append() is a pool hit, not an allocation.
    nodes_.clear();
    head_ = 0;
    tail_open_ = false;
  } else if (head_ > 32 && head_ * 2 >= nodes_.size()) {
    nodes_.erase(nodes_.begin(),
                 nodes_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
}

void BufferChain::clear() {
  for (std::size_t i = head_; i < nodes_.size(); ++i)
    if (nodes_[i].seg != nullptr) release_node(nodes_[i]);
  nodes_.clear();
  head_ = 0;
  size_ = 0;
  tail_open_ = false;
}

}  // namespace mcam::estelle
