#include "estelle/transport/fault_transport.hpp"

#include <algorithm>
#include <utility>

namespace mcam::estelle {

using common::Status;

namespace {

/// SplitMix64 — tiny, stateless-per-step, and identical on every platform,
/// which is all a replayable fault schedule needs.
std::uint64_t splitmix(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

FaultPlan FaultPlan::seeded(std::uint64_t seed, std::uint64_t horizon,
                            unsigned drop_per_mille, unsigned dup_per_mille,
                            unsigned delay_per_mille,
                            std::int64_t close_after) {
  FaultPlan plan;
  std::uint64_t state = seed * 0x9e3779b97f4a7c15ull + 0x6a09e667f3bcc909ull;
  for (std::uint64_t i = 0; i < horizon; ++i) {
    if (close_after >= 0 && i == static_cast<std::uint64_t>(close_after)) {
      plan.actions.push_back({i, FaultKind::kClose, 1});
      continue;
    }
    const std::uint64_t roll = splitmix(state) % 1000;
    FaultAction a;
    a.index = i;
    if (roll < drop_per_mille) {
      a.kind = FaultKind::kDrop;
    } else if (roll < drop_per_mille + dup_per_mille) {
      a.kind = FaultKind::kDuplicate;
    } else if (roll < drop_per_mille + dup_per_mille + delay_per_mille) {
      a.kind = FaultKind::kDelay;
      a.delay_frames = 1 + static_cast<std::uint32_t>(splitmix(state) % 3);
    } else {
      continue;
    }
    plan.actions.push_back(a);
  }
  if (close_after >= 0 &&
      static_cast<std::uint64_t>(close_after) >= horizon)
    plan.actions.push_back(
        {static_cast<std::uint64_t>(close_after), FaultKind::kClose, 1});
  return plan;
}

FaultAction FaultPlan::at(std::uint64_t index) const noexcept {
  const auto it = std::lower_bound(
      actions.begin(), actions.end(), index,
      [](const FaultAction& a, std::uint64_t i) { return a.index < i; });
  if (it != actions.end() && it->index == index) return *it;
  return FaultAction{index, FaultKind::kNone, 1};
}

FaultInjectingTransport::FaultInjectingTransport(
    std::shared_ptr<MailboxTransport> inner)
    : inner_(std::move(inner)) {}

void FaultInjectingTransport::set_plan(int peer, FaultPlan plan) {
  for (PeerFaults& pf : faults_) {
    if (pf.peer != peer) continue;
    pf.plan = std::move(plan);
    return;
  }
  PeerFaults pf;
  pf.peer = peer;
  pf.plan = std::move(plan);
  faults_.push_back(std::move(pf));
}

FaultInjectingTransport::PeerFaults* FaultInjectingTransport::faults_of(
    int peer) {
  for (PeerFaults& pf : faults_)
    if (pf.peer == peer) return &pf;
  return nullptr;
}

void FaultInjectingTransport::release_held(PeerFaults& pf, bool all) {
  std::size_t kept = 0;
  for (PeerFaults::Held& h : pf.held) {
    if (!all && h.release_at > pf.next_index) {
      pf.held[kept++] = std::move(h);
      continue;
    }
    (void)inner_->send(pf.peer, h.frame);
  }
  pf.held.resize(kept);
}

Status FaultInjectingTransport::send(int peer, Frame& f) {
  PeerFaults* pf = faults_of(peer);
  if (pf == nullptr || pf->plan.empty()) return inner_->send(peer, f);
  const FaultAction a = pf->plan.at(pf->next_index);
  ++pf->next_index;
  switch (a.kind) {
    case FaultKind::kNone:
      break;
    case FaultKind::kDrop:
      ++inner_->mutable_stats().faults_injected;
      release_held(*pf, false);
      return Status::ok_status();  // consumed by the "network"
    case FaultKind::kDuplicate: {
      ++inner_->mutable_stats().faults_injected;
      Frame copy = f;
      const Status first = inner_->send(peer, copy);
      if (!first.ok()) return first;  // original stays intact for the retry
      break;
    }
    case FaultKind::kDelay: {
      ++inner_->mutable_stats().faults_injected;
      PeerFaults::Held h;
      h.release_at = pf->next_index + a.delay_frames;
      h.frame = std::move(f);
      pf->held.push_back(std::move(h));
      return Status::ok_status();
    }
    case FaultKind::kClose: {
      ++inner_->mutable_stats().faults_injected;
      const Status st = inner_->send(peer, f);
      inner_->flush();
      (void)inner_->sever(peer);
      return st;
    }
  }
  const Status st = inner_->send(peer, f);
  if (st.ok()) release_held(*pf, false);
  return st;
}

void FaultInjectingTransport::flush() {
  // A round boundary: every held frame leaves now. Delays reorder traffic
  // inside a burst but never strand a tail across the quiescent wait.
  for (PeerFaults& pf : faults_) release_held(pf, true);
  inner_->flush();
}

MailboxTransport::RecvOutcome FaultInjectingTransport::recv(
    int* from, Frame* out, int timeout_ms, std::string* error) {
  return inner_->recv(from, out, timeout_ms, error);
}

}  // namespace mcam::estelle
