// Wire frames of the distributed shard runtime (transport/).
//
// The free-running backend proved (PR 5) that shards synchronize through
// exactly three primitives: round-stamped transfer mailboxes, the advertised
// round every neighbor gates on, and the null message that advances a
// provably-idle shard. This header makes those primitives *explicit frames*
// so a MailboxTransport can carry them between processes — the paper's
// "system modules are asynchronous units placeable on separate processors"
// taken literally. The frame syntax is ASN.1, encoded with the project's own
// BER codec (src/asn1/ber.cpp), the same abstract-syntax layer the paper
// uses for its PDUs; on a byte stream each frame travels length-prefixed:
//
//   u32 big-endian body length | BER body ([APPLICATION n] SEQUENCE)
//
// Frame catalogue (APPLICATION tag in brackets):
//   Hello [1]      node, nodes, shards, spec_hash, topology_version,
//                  assign_hash — membership handshake; a peer whose own
//                  values differ answers Welcome{accept=false}.
//   Welcome [2]    node, accept, reason.
//   Transfer [3]   channel (index into ConflictAnalysis::
//                  cross_shard_channels(), deterministic on every node),
//                  dir (0 ⇒ deliver into endpoint a, 1 ⇒ into b), round and
//                  sent_at_ns (the sender shard's stamps, preserved
//                  bit-exactly so drain_transfers_until applies the same
//                  visibility rule as in-process), then the Interaction:
//                  kind, optional ASN.1 value, payload octets.
//   Advertise [4]  shard, round — the shard completed a non-empty round.
//   NullRound [5]  shard, upto_round — the shard's rounds through
//                  upto_round are provably empty (the null message).
//   RoundDone [6]  node, round, quiescent — node-level round completion,
//                  the lockstep gate peers wait on; quiescent carries the
//                  node's local-idle status for termination detection.
//   Probe [7]      node, epoch — coordinator's termination probe.
//   ProbeAck [8]   node, epoch, quiescent, sent, recv — flow-conservation
//                  reply (Σsent == Σrecv across nodes ⇒ nothing in flight).
//   Bye [9]        node — coordinator-confirmed global quiescence.
//   HelloResume [11]
//                  node, spec_hash, epoch, recv — the session resume
//                  handshake. Sent as the first frame on a reconnected
//                  stream: spec_hash is the sender's configured session
//                  fingerprint (a mismatch refuses the resume), epoch counts
//                  the sender's reconnect generations, recv is the highest
//                  in-order data sequence number the sender has delivered —
//                  the peer replays its unacknowledged records from recv+1.
//   SessionAck [12]
//                  recv — cumulative delivery acknowledgement; the peer
//                  prunes its replay ring through recv. HelloResume and
//                  SessionAck are session-control frames: on a sequenced
//                  stream they travel with sequence number 0, are consumed
//                  inside the transport, and never reach the runner.
//   TransferBatch [10]
//                  round, then SEQUENCE OF entry — all of one round's
//                  transfers to one peer under a single shared round stamp.
//                  Each entry is {channel, dir, sent_at_ns, kind, payload,
//                  optional [0] value}: a Transfer minus the round field.
//                  Transfer and TransferBatch bodies are emitted by a direct
//                  BER writer into the caller's (reused) buffer — the hot
//                  path never builds a Value tree, so a warmed send encodes
//                  without allocating. Decode still goes through the general
//                  codec; a structurally bad entry is *rejected individually*
//                  (counted in Frame::rejected_entries) instead of killing
//                  the frame — the length prefix already bounds the body, so
//                  per-entry garbage can never misframe the stream.
//
// FrameReassembler turns an arbitrary split of the byte stream back into
// frames: feed() whatever read() returned, next() yields complete frames.
// Its receive buffer is reused across frames (compacted in place before it
// would regrow, never shrunk), so steady-state reassembly performs no
// per-frame allocation even at TransferBatch sizes — regrowths() counts the
// times capacity had to be extended, and the transport bench asserts the
// count stays flat once warmed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "estelle/interaction.hpp"

namespace mcam::estelle {

enum class FrameType : std::uint32_t {
  Hello = 1,
  Welcome = 2,
  Transfer = 3,
  Advertise = 4,
  NullRound = 5,
  RoundDone = 6,
  Probe = 7,
  ProbeAck = 8,
  Bye = 9,
  TransferBatch = 10,
  HelloResume = 11,
  SessionAck = 12,
};

[[nodiscard]] const char* frame_type_name(FrameType t) noexcept;

/// One transfer inside a TransferBatch: a Transfer minus the round stamp,
/// which the batch carries once for all of them.
struct TransferEntry {
  std::uint32_t channel = 0;
  std::uint8_t dir = 0;  // 0 ⇒ deliver into endpoint a, 1 ⇒ into b
  std::int64_t sent_at_ns = 0;
  Interaction msg;
};

/// One decoded frame. A flat product of every catalogue field — only the
/// fields of `type` are meaningful, the rest stay default. Flat beats a
/// variant here: the transports move Frames through queues by value, and the
/// runner dispatches on `type` in one switch.
struct Frame {
  FrameType type = FrameType::Hello;

  // Hello / Welcome / RoundDone / Probe / ProbeAck / Bye
  std::uint32_t node = 0;
  std::uint32_t nodes = 0;
  std::uint32_t shards = 0;
  std::uint64_t spec_hash = 0;
  std::uint64_t topology_version = 0;
  std::uint64_t assign_hash = 0;
  bool accept = false;
  std::string reason;

  // Transfer
  std::uint32_t channel = 0;
  std::uint8_t dir = 0;  // 0 ⇒ deliver into endpoint a, 1 ⇒ into b
  std::int64_t sent_at_ns = 0;
  Interaction msg;

  // Advertise / NullRound / RoundDone / Transfer
  std::uint32_t shard = 0;
  std::uint64_t round = 0;  // NullRound: the upto_round bound

  // Probe / ProbeAck
  std::uint64_t epoch = 0;
  bool quiescent = false;
  std::uint64_t sent = 0;
  std::uint64_t recv = 0;

  // TransferBatch (round is shared by every entry). A receiver must treat
  // rejected_entries != 0 as a protocol failure: the frame decoded, but some
  // entries were structurally bad and their transfers are lost.
  std::vector<TransferEntry> entries;
  std::uint32_t rejected_entries = 0;
};

/// Frames larger than this are rejected by the reassembler — a garbage
/// length prefix must not make it allocate gigabytes.
inline constexpr std::size_t kMaxFrameBytes = 1u << 24;

/// Append the length-prefixed encoding of `f` to `out` (the send path —
/// appending lets one outbound buffer batch many frames per write()).
/// Transfer and TransferBatch take the direct-writer path: with `out`
/// warmed to capacity the call performs no allocation.
void encode_frame_to(const Frame& f, common::Bytes& out);
/// The length-prefixed encoding of `f` as a fresh buffer (tests).
[[nodiscard]] common::Bytes encode_frame(const Frame& f);
/// The sequenced-stream record of `f`: u32 body length | u64 big-endian
/// sequence number | BER body. Data frames carry seq >= 1; session-control
/// frames (HelloResume, SessionAck) travel with seq 0. Appended to `out`
/// like encode_frame_to — the session transport's only wire dialect.
void encode_frame_seq_to(const Frame& f, std::uint64_t seq,
                         common::Bytes& out);

/// Decode one frame *body* (the BER value, no length prefix). Malformed
/// input is an expected peer condition, not a programming error.
[[nodiscard]] common::Result<Frame> decode_frame(common::ByteSpan body);

/// Incremental stream-to-frame reassembly over split read() boundaries.
/// Default-constructed it speaks the plain `u32 len | body` dialect; with
/// seq_prefixed it parses the sequenced-stream records encode_frame_seq_to
/// emits and exposes each frame's sequence number through last_seq().
class FrameReassembler {
 public:
  enum class Next {
    kFrame,     ///< *out holds a complete frame
    kNeedMore,  ///< the buffered bytes end mid-frame — feed() more
    kError,     ///< unrecoverable stream corruption; *error says what
  };

  FrameReassembler() = default;
  explicit FrameReassembler(bool seq_prefixed) : seq_prefixed_(seq_prefixed) {}

  void set_seq_prefixed(bool on) noexcept { seq_prefixed_ = on; }

  /// Append raw stream bytes (any split, including zero-length).
  void feed(common::ByteSpan data);
  /// Extract the next complete frame from the buffered bytes.
  Next next(Frame* out, std::string* error);

  /// Sequence number of the frame the last successful next() returned
  /// (always 0 on a plain, non-sequenced stream).
  [[nodiscard]] std::uint64_t last_seq() const noexcept { return last_seq_; }

  /// Discard every buffered byte (a reconnected stream starts clean). The
  /// buffer keeps its capacity; regrowths() keeps counting cumulatively.
  void reset() noexcept {
    buf_.clear();
    pos_ = 0;
    last_seq_ = 0;
  }

  /// Bytes currently buffered but not yet consumed as frames.
  [[nodiscard]] std::size_t pending() const noexcept {
    return buf_.size() - pos_;
  }
  /// Times feed() had to extend the buffer's capacity. Flat after warmup ⇒
  /// reassembly reuses its buffer across frames (the bench gate).
  [[nodiscard]] std::uint64_t regrowths() const noexcept { return regrowths_; }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return buf_.capacity();
  }

 private:
  common::Bytes buf_;
  std::size_t pos_ = 0;  // consumed prefix, compacted before regrowth
  std::uint64_t regrowths_ = 0;
  std::uint64_t last_seq_ = 0;
  bool seq_prefixed_ = false;
};

}  // namespace mcam::estelle
