// Stream-socket MailboxTransport: Unix-domain and TCP meshes.
//
// One connected stream per peer, length-prefixed BER frames (frame.hpp) on
// the wire. The I/O discipline implements the transport contract:
//
//   * writes are NONBLOCKING against a bounded per-peer outbound buffer
//     (kMaxOutboundBytes). send() appends the encoded frame, pushes what the
//     socket accepts, and returns kQueueFull once the backlog is at the
//     bound — the runner's back-pressure park.
//   * reads go through one reusable per-connection receive buffer
//     (FrameReassembler): poll(), read into a fixed stack chunk, feed, and
//     decode in place. Steady-state receive performs no per-frame
//     allocation (Transfer payload octets excepted — they leave the buffer
//     as owned Interaction state, exactly like an in-process delivery).
//   * a read of 0 / ECONNRESET / EPIPE marks the connection dead and
//     surfaces kClosed once, never an exception or a hang. A send-side
//     failure only stops the outbound half: the inbound half keeps being
//     drained (the peer's parting Bye may still be in the kernel buffer),
//     and kClosed is reported only once the receive side hits EOF too.
//   * destruction is a graceful close: flush the outbound backlog,
//     shutdown(SHUT_WR), then drain inbound to EOF (bounded) before
//     close() — a TCP close with unread inbound data would RST and destroy
//     our own final frames still in flight to the peer.
//
// Mesh construction (node i of n):
//   * unix_mesh: node j binds <dir>/node<j>.sock; i connects to every j < i
//     (retrying while the listener appears — counted as handshake_retries)
//     and accepts every j > i. A 4-byte big-endian node id preamble
//     identifies the dialing node.
//   * tcp_mesh: identical shape on 127.0.0.1:<base_port + j>.
//   * from_fds: adopt already-connected stream fds (socketpair() children in
//     the multi-process tests). The adopted fds are owned and closed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "estelle/transport/transport.hpp"

namespace mcam::estelle {

class StreamSocketTransport final : public MailboxTransport {
 public:
  /// Outbound backlog bound per peer, in encoded bytes.
  static constexpr std::size_t kMaxOutboundBytes = 4u << 20;

  struct PeerFd {
    int node = 0;
    int fd = -1;
  };

  /// Adopt connected stream sockets (one per peer); takes fd ownership.
  [[nodiscard]] static std::unique_ptr<StreamSocketTransport> from_fds(
      std::vector<PeerFd> peers);

  /// Full mesh over Unix-domain sockets under `dir` (see header comment).
  [[nodiscard]] static common::Result<std::unique_ptr<StreamSocketTransport>>
  unix_mesh(int node, int nodes, const std::string& dir,
            int connect_timeout_ms = 10000);

  /// Full mesh over TCP loopback, port base_port + node id.
  [[nodiscard]] static common::Result<std::unique_ptr<StreamSocketTransport>>
  tcp_mesh(int node, int nodes, std::uint16_t base_port,
           int connect_timeout_ms = 10000);

  ~StreamSocketTransport() override;

  [[nodiscard]] const std::vector<int>& peers() const noexcept override {
    return peer_ids_;
  }
  common::Status send(int peer, Frame f) override;
  RecvOutcome recv(int* from, Frame* out, int timeout_ms,
                   std::string* error) override;

 private:
  struct Conn {
    int node = 0;
    int fd = -1;
    FrameReassembler rx;
    common::Bytes txq;      // encoded, not yet accepted by the socket
    std::size_t txpos = 0;  // consumed prefix of txq (compacted lazily)
    bool closed = false;    // outbound half dead; no further sends
    bool rx_eof = false;    // inbound half exhausted (EOF / read error)
    bool close_reported = false;
    std::string close_reason;
  };

  explicit StreamSocketTransport(std::vector<PeerFd> peers);

  /// Push txq bytes into the socket until EAGAIN/empty; marks dead conns.
  void try_flush(Conn& c);
  [[nodiscard]] std::size_t tx_backlog(const Conn& c) const noexcept {
    return c.txq.size() - c.txpos;
  }
  Conn* conn_of(int node) noexcept;

  std::vector<Conn> conns_;
  std::vector<int> peer_ids_;
  std::size_t rr_ = 0;  // round-robin start for fair frame extraction
};

}  // namespace mcam::estelle
