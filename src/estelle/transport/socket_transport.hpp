// Stream-socket MailboxTransport: Unix-domain and TCP meshes.
//
// One connected stream per peer, sequenced length-prefixed BER frames
// (frame.hpp: `u32 len | u64 seq | body`) on the wire. The I/O discipline
// implements the transport contract:
//
//   * send() encodes into a pooled per-peer buffer (reused every call — the
//     encode_pool_reuse counter) and appends the octets to the peer's
//     BufferChain (buffer_chain.hpp): fixed-size pooled segments, no flat
//     backlog to erase-compact. The socket push is DEFERRED to flush() / the
//     recv() pump unless the backlog crossed kEagerFlushBytes, so a round's
//     worth of frames leaves in one scatter-gather syscall. kQueueFull is
//     returned once the backlog reaches kMaxOutboundBytes — the runner's
//     back-pressure park — with the frame left intact for the retry.
//   * flush() drains every connection's chain with sendmsg(iovec[]) until
//     EAGAIN/empty: one data syscall per peer per round in the steady
//     state, whatever the transfer count (the syscalls counter, gated by
//     bench_transport).
//   * reads go through one reusable per-connection receive buffer
//     (FrameReassembler): poll(), read into a fixed stack chunk, feed, and
//     decode in place. Steady-state receive performs no per-frame
//     allocation (Transfer payload octets excepted — they leave the buffer
//     as owned Interaction state, exactly like an in-process delivery).
//   * destruction is a graceful close: flush the outbound backlog,
//     shutdown(SHUT_WR), then drain inbound to EOF (bounded) before
//     close() — a TCP close with unread inbound data would RST and destroy
//     our own final frames still in flight to the peer.
//
// Session layer (PR 9). Every data frame to a peer carries a monotonic
// sequence number; a bounded replay ring keeps the encoded record until the
// peer's cumulative SessionAck covers it. configure_session() with
// reconnect_max_attempts > 0 turns a mid-run connection loss (reset, EOF,
// injected fault, sequence gap from wire loss, retransmission timeout) into
// a transparent recovery instead of a kClosed report:
//
//   * the original dialer redials with capped exponential backoff plus
//     deterministic jitter; the original acceptor keeps its mesh listener
//     open for the whole run and re-adopts the peer's new stream.
//   * both sides open the new stream with HelloResume{fingerprint, epoch,
//     last-delivered seq}; a fingerprint mismatch refuses the resume (the
//     peer is running a different specification) and surfaces the usual
//     structured kClosed. Otherwise each side replays exactly the ring
//     records the other has not delivered — per-peer FIFO order (and with
//     it transfer-before-advertise) is preserved, and the receiver discards
//     anything it already delivered by sequence number.
//   * frames already received but not yet handed out when a connection
//     breaks are salvaged across the reconnect (a peer's parting Bye is
//     never lost to a racing send failure).
//   * when every redial attempt fails (the peer is genuinely dead), the
//     loss surfaces as today's single kClosed with the accumulated reason —
//     failure stays a value, never a hang.
//
// set_wire_faults() installs a deterministic FaultPlan at the wire-record
// level, *below* the sequence numbers: a dropped record is exactly the kind
// of loss the session layer recovers (gap detection → reconnect → replay),
// a duplicated record exercises the sequence-number discard, an injected
// close is a mid-run reset. The differential sweep drives recovery through
// this hook.
//
// Mesh construction (node i of n):
//   * unix_mesh: node j binds <dir>/node<j>.sock; i connects to every j < i
//     (retrying while the listener appears — counted as handshake_retries)
//     and accepts every j > i. A 4-byte big-endian node id preamble
//     identifies the dialing node.
//   * tcp_mesh: identical shape on TCP. By default every peer is dialed at
//     127.0.0.1:<base_port + peer>; a per-peer `hosts` list ("host" or
//     "host:port", resolved with getaddrinfo) places peers on other
//     machines, and providing one makes the local listener bind INADDR_ANY
//     so those machines can dial back.
//   * from_fds: adopt already-connected stream fds (socketpair() children in
//     the multi-process tests). The adopted fds are owned and closed. With
//     no listener and no dial path these links cannot be recovered:
//     configure_session() is accepted but a loss surfaces kClosed.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "estelle/transport/buffer_chain.hpp"
#include "estelle/transport/fault_transport.hpp"
#include "estelle/transport/transport.hpp"

namespace mcam::estelle {

class StreamSocketTransport final : public MailboxTransport {
 public:
  /// Outbound backlog bound per peer, in encoded bytes.
  static constexpr std::size_t kMaxOutboundBytes = 4u << 20;
  /// Backlog at which send() flushes on its own instead of deferring to the
  /// runner's round boundary — bounds kernel-buffer latecomers under burst.
  static constexpr std::size_t kEagerFlushBytes = 256u << 10;
  /// Replay-ring bound per peer (encoded bytes of sent-but-unacknowledged
  /// records). A full ring back-pressures send() with kQueueFull — records
  /// are never evicted unacknowledged, so a resume can always replay.
  static constexpr std::size_t kMaxReplayBytes = 4u << 20;
  /// Delivered data frames per cumulative SessionAck; an idle pump also
  /// acknowledges (throttled), so small exchanges prune promptly too.
  static constexpr std::uint32_t kAckIntervalFrames = 64;

  struct PeerFd {
    int node = 0;
    int fd = -1;
  };

  /// Adopt connected stream sockets (one per peer); takes fd ownership.
  [[nodiscard]] static std::unique_ptr<StreamSocketTransport> from_fds(
      std::vector<PeerFd> peers);

  /// Full mesh over Unix-domain sockets under `dir` (see header comment).
  [[nodiscard]] static common::Result<std::unique_ptr<StreamSocketTransport>>
  unix_mesh(int node, int nodes, const std::string& dir,
            int connect_timeout_ms = 10000);

  /// Full mesh over TCP. `hosts`, when non-empty, names every node's
  /// address as "host" or "host:port" (hosts[i] for node i; port defaults
  /// to base_port + i) — the loopback default with an empty list.
  [[nodiscard]] static common::Result<std::unique_ptr<StreamSocketTransport>>
  tcp_mesh(int node, int nodes, std::uint16_t base_port,
           const std::vector<std::string>& hosts = {},
           int connect_timeout_ms = 10000);

  ~StreamSocketTransport() override;

  [[nodiscard]] const std::vector<int>& peers() const noexcept override {
    return peer_ids_;
  }
  common::Status send(int peer, Frame& f) override;
  void flush() override;
  RecvOutcome recv(int* from, Frame* out, int timeout_ms,
                   std::string* error) override;
  void configure_session(const SessionOptions& so) override { session_ = so; }
  bool sever(int peer) override;

  /// Install a deterministic wire-record fault plan toward `peer` (tests /
  /// benches). Applies below the session sequence numbers, to original
  /// sends only — replays travel clean, so every injected loss converges.
  void set_wire_faults(int peer, FaultPlan plan);

 private:
  using SteadyClock = std::chrono::steady_clock;

  /// One sent-but-unacknowledged wire record (length | seq | body octets,
  /// ready to re-append verbatim on resume).
  struct ReplayRec {
    std::uint64_t seq = 0;
    common::Bytes wire;
  };
  struct DelayedRec {
    std::uint64_t release_at = 0;  // wire index that frees it
    common::Bytes wire;
  };

  struct Conn {
    int node = 0;
    int fd = -1;
    FrameReassembler rx = FrameReassembler{true};
    BufferChain txq;          // encoded, not yet accepted by the socket
    common::Bytes encode_buf; // pooled per-peer frame-encode scratch
    bool closed = false;      // outbound half dead; no further sends
    bool rx_eof = false;      // inbound half exhausted (EOF / read error)
    bool close_reported = false;
    std::string close_reason;
    // Session state.
    std::uint64_t tx_seq = 0;  // last data sequence number assigned
    std::uint64_t rx_seq = 0;  // last in-order data sequence delivered
    std::uint64_t acked = 0;   // ring pruned through this sequence
    std::uint32_t rx_since_ack = 0;
    std::deque<ReplayRec> ring;
    std::size_t ring_bytes = 0;
    /// Frames salvaged from the receive buffer across a reconnect — served
    /// before anything from the new stream.
    std::vector<Frame> pending_rx;
    std::size_t pending_pos = 0;
    bool resuming = false;  // new stream up, our HelloResume sent, waiting
    bool waiting = false;   // stream down, redial/accept pending
    /// The peer's Bye was delivered: it is leaving by protocol, so a later
    /// connection loss is its exit, not a fault — never redial it, and never
    /// linger on records it will not be around to acknowledge.
    bool peer_departed = false;
    int attempt = 0;
    int backoff_ms = 0;
    std::uint64_t epoch = 0;  // reconnect generation
    SteadyClock::time_point next_attempt{};
    SteadyClock::time_point give_up{};
    SteadyClock::time_point oldest_unacked{};
    SteadyClock::time_point last_ack{};
    std::uint32_t jitter_state = 0;
    std::string wait_reason;
    std::string last_dial_error;  // most recent failed redial cause
    // Wire-record fault injection.
    FaultPlan wire_faults;
    std::uint64_t wire_index = 0;
    std::vector<DelayedRec> delayed;
  };

  explicit StreamSocketTransport(std::vector<PeerFd> peers);

  /// Drain c's chain into the socket with sendmsg until EAGAIN/empty; a
  /// hard error enters recovery (or marks the conn dead when unrecoverable).
  void try_flush(Conn& c);
  [[nodiscard]] std::size_t tx_backlog(const Conn& c) const noexcept {
    return c.txq.size();
  }
  Conn* conn_of(int node) noexcept;

  [[nodiscard]] bool recoverable(const Conn& c) const noexcept;
  [[nodiscard]] bool dead(const Conn& c) const noexcept {
    return c.closed && c.rx_eof;
  }
  /// Give up on the link for good: the next recv() reports kClosed once.
  void permanent_close(Conn& c, std::string why);
  /// Transient loss: salvage undelivered inbound frames, drop the stream,
  /// and schedule redial (dial side) / re-accept (accept side).
  void enter_reconnect(Conn& c, std::string why);
  /// Advance waiting/resuming conns: due redials, exhausted budgets,
  /// retransmission timeouts. Called from send()/flush()/recv(); only the
  /// recv() pump checks retransmission timeouts (check_rto) — the runner
  /// always pumps, and the send path must stay clock-free when idle.
  void service_reconnects(bool check_rto);
  /// Adopt the fresh stream: preamble (dialer only) + our HelloResume, then
  /// wait for the peer's through the normal receive path. False ⇒ the write
  /// failed and the conn stays waiting.
  bool begin_resume(Conn& c, int fd, bool dialer);
  void complete_resume(Conn& c, const Frame& hr);
  /// Extract every deliverable frame still buffered on a breaking stream.
  void salvage_rx(Conn& c);
  /// Session-control dispatch (seq 0 frames). allow_resume gates
  /// HelloResume handling (off while salvaging a dead stream).
  void on_control(Conn& c, Frame& f, bool allow_resume);
  void prune_ring(Conn& c, std::uint64_t upto);
  void queue_control(Conn& c, const Frame& f);
  void maybe_ack(Conn& c, bool idle);
  /// Accept every queued reconnect on the retained mesh listener.
  void accept_pending();
  /// Push the freshly encoded record in c.encode_buf onto the wire backlog,
  /// applying the conn's wire fault plan.
  void append_wire_record(Conn& c);
  void release_delayed(Conn& c, bool all);
  [[nodiscard]] long total_backoff_budget_ms() const noexcept;
  [[nodiscard]] bool any_pending() const noexcept;

  SegmentPool pool_;  // declared before conns_: chains must die first
  std::vector<Conn> conns_;
  std::vector<int> peer_ids_;
  std::size_t rr_ = 0;  // round-robin start for fair frame extraction
  SessionOptions session_;
  int self_node_ = -1;    // known only for mesh-built transports
  int listener_fd_ = -1;  // retained mesh listener (reconnect accepts)
  std::function<int(int peer)> dial_;  // mesh redial; empty for from_fds
  common::Bytes ctrl_buf_;             // control-frame encode scratch
  std::vector<common::Bytes> spare_;   // recycled replay-ring buffers
};

}  // namespace mcam::estelle
