// Stream-socket MailboxTransport: Unix-domain and TCP meshes.
//
// One connected stream per peer, length-prefixed BER frames (frame.hpp) on
// the wire. The I/O discipline implements the transport contract:
//
//   * send() encodes into a pooled per-peer buffer (reused every call — the
//     encode_pool_reuse counter) and appends the octets to the peer's
//     BufferChain (buffer_chain.hpp): fixed-size pooled segments, no flat
//     backlog to erase-compact. The socket push is DEFERRED to flush() / the
//     recv() pump unless the backlog crossed kEagerFlushBytes, so a round's
//     worth of frames leaves in one scatter-gather syscall. kQueueFull is
//     returned once the backlog reaches kMaxOutboundBytes — the runner's
//     back-pressure park — with the frame left intact for the retry.
//   * flush() drains every connection's chain with sendmsg(iovec[]) until
//     EAGAIN/empty: one data syscall per peer per round in the steady
//     state, whatever the transfer count (the syscalls counter, gated by
//     bench_transport).
//   * reads go through one reusable per-connection receive buffer
//     (FrameReassembler): poll(), read into a fixed stack chunk, feed, and
//     decode in place. Steady-state receive performs no per-frame
//     allocation (Transfer payload octets excepted — they leave the buffer
//     as owned Interaction state, exactly like an in-process delivery).
//   * a read of 0 / ECONNRESET / EPIPE marks the connection dead and
//     surfaces kClosed once, never an exception or a hang. A send-side
//     failure only stops the outbound half: the inbound half keeps being
//     drained (the peer's parting Bye may still be in the kernel buffer),
//     and kClosed is reported only once the receive side hits EOF too.
//   * destruction is a graceful close: flush the outbound backlog,
//     shutdown(SHUT_WR), then drain inbound to EOF (bounded) before
//     close() — a TCP close with unread inbound data would RST and destroy
//     our own final frames still in flight to the peer.
//
// Mesh construction (node i of n):
//   * unix_mesh: node j binds <dir>/node<j>.sock; i connects to every j < i
//     (retrying while the listener appears — counted as handshake_retries)
//     and accepts every j > i. A 4-byte big-endian node id preamble
//     identifies the dialing node.
//   * tcp_mesh: identical shape on TCP. By default every peer is dialed at
//     127.0.0.1:<base_port + peer>; a per-peer `hosts` list ("host" or
//     "host:port", resolved with getaddrinfo) places peers on other
//     machines, and providing one makes the local listener bind INADDR_ANY
//     so those machines can dial back.
//   * from_fds: adopt already-connected stream fds (socketpair() children in
//     the multi-process tests). The adopted fds are owned and closed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "estelle/transport/buffer_chain.hpp"
#include "estelle/transport/transport.hpp"

namespace mcam::estelle {

class StreamSocketTransport final : public MailboxTransport {
 public:
  /// Outbound backlog bound per peer, in encoded bytes.
  static constexpr std::size_t kMaxOutboundBytes = 4u << 20;
  /// Backlog at which send() flushes on its own instead of deferring to the
  /// runner's round boundary — bounds kernel-buffer latecomers under burst.
  static constexpr std::size_t kEagerFlushBytes = 256u << 10;

  struct PeerFd {
    int node = 0;
    int fd = -1;
  };

  /// Adopt connected stream sockets (one per peer); takes fd ownership.
  [[nodiscard]] static std::unique_ptr<StreamSocketTransport> from_fds(
      std::vector<PeerFd> peers);

  /// Full mesh over Unix-domain sockets under `dir` (see header comment).
  [[nodiscard]] static common::Result<std::unique_ptr<StreamSocketTransport>>
  unix_mesh(int node, int nodes, const std::string& dir,
            int connect_timeout_ms = 10000);

  /// Full mesh over TCP. `hosts`, when non-empty, names every node's
  /// address as "host" or "host:port" (hosts[i] for node i; port defaults
  /// to base_port + i) — the loopback default with an empty list.
  [[nodiscard]] static common::Result<std::unique_ptr<StreamSocketTransport>>
  tcp_mesh(int node, int nodes, std::uint16_t base_port,
           const std::vector<std::string>& hosts = {},
           int connect_timeout_ms = 10000);

  ~StreamSocketTransport() override;

  [[nodiscard]] const std::vector<int>& peers() const noexcept override {
    return peer_ids_;
  }
  common::Status send(int peer, Frame& f) override;
  void flush() override;
  RecvOutcome recv(int* from, Frame* out, int timeout_ms,
                   std::string* error) override;

 private:
  struct Conn {
    int node = 0;
    int fd = -1;
    FrameReassembler rx;
    BufferChain txq;          // encoded, not yet accepted by the socket
    common::Bytes encode_buf; // pooled per-peer frame-encode scratch
    bool closed = false;      // outbound half dead; no further sends
    bool rx_eof = false;      // inbound half exhausted (EOF / read error)
    bool close_reported = false;
    std::string close_reason;
  };

  explicit StreamSocketTransport(std::vector<PeerFd> peers);

  /// Drain c's chain into the socket with sendmsg until EAGAIN/empty; marks
  /// dead conns.
  void try_flush(Conn& c);
  [[nodiscard]] std::size_t tx_backlog(const Conn& c) const noexcept {
    return c.txq.size();
  }
  Conn* conn_of(int node) noexcept;

  SegmentPool pool_;  // declared before conns_: chains must die first
  std::vector<Conn> conns_;
  std::vector<int> peer_ids_;
  std::size_t rr_ = 0;  // round-robin start for fair frame extraction
};

}  // namespace mcam::estelle
