// MailboxTransport — the pluggable frame channel of the distributed runner.
//
// A transport connects one node (process or thread) to its peers and moves
// Frames (frame.hpp) between them. The contract is deliberately minimal so
// the three FreeRunning synchronization primitives stay the only coupling
// surface:
//
//   * send() is NONBLOCKING: the frame is queued and the call returns. A
//     full bounded outbound queue returns kQueueFull — the runner's
//     back-pressure park: it pumps recv() (keeping the peer draining) and
//     retries, exactly how a free-running shard parks on a full firing log
//     instead of blocking the world. On failure the frame is always left
//     intact, so a retry re-sends the same object without copying it.
//   * flush() pushes every queued byte the medium will accept right now.
//     send() batches: it may defer the medium push entirely (a wire
//     transport encodes into its backlog and waits), so a producer that
//     stops sending must flush() before it waits on the peer. recv() also
//     flushes opportunistically, which keeps request/reply pumps live even
//     without explicit flushes.
//   * recv() pumps the medium for up to timeout_ms and returns at most one
//     frame. kClosed reports a dead peer (closed/reset connection) exactly
//     once per peer — the runner turns it into a structured RunReport error
//     instead of hanging on the advertised-round gate.
//   * per-peer FIFO order is guaranteed (stream sockets / in-order queues).
//     The round-composition argument leans on it: a Transfer sent during
//     round k precedes the sender's round-k completion frames, so a gate
//     release implies every earlier-round transfer already arrived.
//
// Implementations:
//   LoopbackTransport (here)            — in-process, zero-copy Frame moves,
//                                         no serialization; the
//                                         overhead-neutral default.
//   StreamSocketTransport (socket_transport.hpp)
//                                       — Unix-domain or TCP stream mesh,
//                                         length-prefixed BER frames.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "estelle/executor.hpp"  // TransportStats
#include "estelle/transport/frame.hpp"

namespace mcam::estelle {

/// common::Error codes produced by transports.
enum TransportError : int {
  kPeerClosed = 2001,   ///< connection closed/reset by the peer
  kQueueFull = 2002,    ///< bounded outbound queue at capacity (back-pressure)
  kProtocol = 2003,     ///< stream corruption / undecodable frame
  kSetupFailed = 2004,  ///< mesh construction failed (bind/connect/accept)
};

class MailboxTransport {
 public:
  enum class RecvOutcome {
    kFrame,   ///< *out holds a frame (from *from)
    kIdle,    ///< nothing arrived within the timeout
    kClosed,  ///< *from's connection died; *error describes it
  };

  /// Session/recovery configuration (the PR 9 fault-tolerance layer).
  /// configure_session() hands it to transports that can recover a broken
  /// peer link; others ignore it. Both sides of a link must be configured
  /// identically — the DistributedRunner derives one from its DistOptions on
  /// every node before the membership handshake.
  struct SessionOptions {
    /// Redial attempts after a mid-run connection loss; 0 disables recovery
    /// (a loss surfaces kClosed exactly as before the session layer).
    int reconnect_max_attempts = 0;
    /// First redial backoff; doubles per failed attempt up to the cap, with
    /// deterministic jitter on top.
    int backoff_initial_ms = 20;
    int backoff_cap_ms = 1000;
    /// Unacknowledged sent records older than this force a reconnect (the
    /// retransmission timeout that recovers a dropped stream tail).
    int resend_timeout_ms = 1000;
    /// Specification fingerprint carried by the HelloResume handshake; a
    /// peer resuming with a different value is refused.
    std::uint64_t fingerprint = 0;
  };

  virtual ~MailboxTransport() = default;

  /// Install the session/recovery configuration. Default: ignored (the
  /// transport cannot recover links; loss keeps surfacing kClosed).
  virtual void configure_session(const SessionOptions&) {}

  /// Testing hook: abruptly break the link to `peer` as a network fault
  /// would (both directions, no farewell). Returns false when the transport
  /// has no severable link. A session-enabled transport treats its own
  /// severed link as a transient failure and recovers it.
  virtual bool sever(int peer) {
    (void)peer;
    return false;
  }

  /// Peer node ids this endpoint can reach (excludes the own node).
  [[nodiscard]] virtual const std::vector<int>& peers() const noexcept = 0;

  /// Queue `f` for `peer`; never blocks. On success the transport may
  /// consume the frame (in-process endpoints move it; wire endpoints encode
  /// from it and leave it intact, so the caller can reuse its buffers). On
  /// failure the frame is untouched — back-pressured sends retry with the
  /// same object, no copy. Errors: kQueueFull (retry after pumping recv),
  /// kPeerClosed.
  virtual common::Status send(int peer, Frame& f) = 0;

  /// Push every queued outbound byte the medium accepts right now. Called
  /// by the runner at its natural boundaries (end of a round's sends, after
  /// control frames) so one syscall can carry a whole round's backlog.
  virtual void flush() {}

  /// Pump the medium for up to `timeout_ms` (0 = poll) and hand out at most
  /// one frame.
  virtual RecvOutcome recv(int* from, Frame* out, int timeout_ms,
                           std::string* error) = 0;

  [[nodiscard]] virtual const TransportStats& stats() const noexcept {
    return stats_;
  }
  /// Counters the *runner* owns semantically but that live with the frames
  /// (null-rounds serviced) are added through here. Virtual so a decorator
  /// (FaultInjectingTransport) can keep one canonical counter block on the
  /// transport it wraps.
  [[nodiscard]] virtual TransportStats& mutable_stats() noexcept {
    return stats_;
  }

 protected:
  TransportStats stats_;
};

/// In-process transport: N endpoints over shared bounded frame queues.
/// send() *moves* the Frame into the destination queue — no serialization,
/// no copy — so a single-process distributed topology costs two queue
/// operations per frame. Endpoint destruction closes its links: surviving
/// peers observe kClosed, which is how tests emulate peer death in-process.
class LoopbackHub {
 public:
  /// Frames one inbound queue may hold before send() back-pressures.
  static constexpr std::size_t kQueueCap = 8192;

  explicit LoopbackHub(int nodes);

  /// The transport endpoint of `node`; callable once per node.
  [[nodiscard]] std::unique_ptr<MailboxTransport> endpoint(int node);

 private:
  class Endpoint;
  /// All queues plus one hub-wide monitor. One lock for the whole hub keeps
  /// the implementation obviously deadlock-free; loopback is for tests,
  /// benches and single-machine topologies, not for scaling node counts.
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    int nodes = 0;
    /// link[to * nodes + from]: frames in flight from `from` to `to`.
    struct Link {
      std::vector<Frame> q;
      std::size_t head = 0;  // consumed prefix (compacted when drained)
      bool open = false;
    };
    std::vector<Link> links;
    std::vector<bool> taken;
  };
  std::shared_ptr<State> state_;
};

}  // namespace mcam::estelle
