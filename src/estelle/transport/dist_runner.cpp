#include "estelle/transport/dist_runner.hpp"

#include <algorithm>
#include <any>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "estelle/ready_set.hpp"
#include "estelle/sched.hpp"
#include "estelle/shard_round.hpp"

namespace mcam::estelle {

using common::SimTime;
using common::Status;

namespace {

using SteadyClock = std::chrono::steady_clock;

// FNV-1a, with a separator byte after every field so concatenations cannot
// collide ("ab"+"c" vs "a"+"bc").
struct Fnv {
  std::uint64_t h = 14695981039346656037ull;
  void byte(std::uint8_t b) noexcept {
    h ^= b;
    h *= 1099511628211ull;
  }
  void str(const std::string& s) noexcept {
    for (const char c : s) byte(static_cast<std::uint8_t>(c));
    byte(0xff);
  }
  void u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
    byte(0xfe);
  }
};

}  // namespace

DistributedRunner::DistributedRunner(Specification& spec,
                                     const ExecutorConfig& cfg)
    : ShardedExecutor(spec, cfg) {
  if (const auto* opts = std::any_cast<DistOptions>(&cfg.backend_options))
    opts_ = *opts;
  transport_ = opts_.transport;
}

std::uint64_t DistributedRunner::spec_fingerprint() {
  // Structure only: module paths, transition counts/names, interaction
  // points and their channel wiring. Two processes that built the same
  // specification agree; a divergent build (different workload parameters,
  // different topology) is refused at the handshake instead of producing a
  // silently wrong merged trace.
  Fnv f;
  f.str(spec_.name());
  spec_.root().for_each([&f](Module& m) {
    f.str(m.path());
    f.u64(m.transitions().size());
    for (const Transition& t : m.transitions()) f.str(t.name);
    for (const auto& ip : m.ips()) {
      f.str(ip->name());
      if (ip->peer() != nullptr) {
        f.str(ip->peer()->owner().path());
        f.str(ip->peer()->name());
      } else {
        f.byte(0xfd);
      }
    }
  });
  return f.h;
}

void DistributedRunner::fail(std::string why) {
  if (error_.empty()) error_ = std::move(why);
}

DistributedRunner::PeerState* DistributedRunner::peer_state(
    int node) noexcept {
  for (PeerState& p : peers_)
    if (p.node == node) return &p;
  return nullptr;
}

// ---------------------------------------------------------------------------
// Wiring

void DistributedRunner::wire() {
  wired_ = true;
  ensure_analysis();
  if (!analysis_->conflict_free()) {
    const ChannelConflict& c = analysis_->conflicts().front();
    fail(std::string("distributed: specification is not conflict-free (") +
         conflict_kind_name(c.kind) + ": " + c.detail +
         ") and cross-process rounds have no serialized fallback");
    return;
  }
  const int nshards = analysis_->shard_count();
  if (opts_.nodes < 1 || opts_.node < 0 || opts_.node >= opts_.nodes) {
    fail("distributed: bad node identity " + std::to_string(opts_.node) +
         "/" + std::to_string(opts_.nodes));
    return;
  }
  if (opts_.nodes > 1 && transport_ == nullptr) {
    fail("distributed: nodes > 1 requires a MailboxTransport");
    return;
  }
  assignment_ = opts_.assignment;
  if (assignment_.empty()) {
    assignment_.resize(static_cast<std::size_t>(nshards));
    for (int s = 0; s < nshards; ++s) assignment_[static_cast<std::size_t>(s)] =
        s % opts_.nodes;
  } else if (static_cast<int>(assignment_.size()) != nshards) {
    fail("distributed: assignment covers " +
         std::to_string(assignment_.size()) + " shards, specification has " +
         std::to_string(nshards));
    return;
  }
  for (const int owner : assignment_) {
    if (owner < 0 || owner >= opts_.nodes) {
      fail("distributed: assignment names node " + std::to_string(owner) +
           " outside 0.." + std::to_string(opts_.nodes - 1));
      return;
    }
  }
  build_tables();
  wired_version_ = spec_.topology_version();
  peers_.clear();
  if (transport_ != nullptr) {
    for (const int p : transport_->peers()) {
      if (p < 0 || p >= opts_.nodes || p == opts_.node) {
        fail("distributed: transport peer id " + std::to_string(p) +
             " is not a valid other node");
        return;
      }
      PeerState st;
      st.node = p;
      peers_.push_back(st);
    }
  }
  if (opts_.nodes > 1 &&
      static_cast<int>(peers_.size()) != opts_.nodes - 1) {
    fail("distributed: transport connects " + std::to_string(peers_.size()) +
         " peers, need " + std::to_string(opts_.nodes - 1));
    return;
  }
  if (transport_ != nullptr && !peers_.empty()) {
    // Session/recovery configuration must be in place before the first
    // frame: the fingerprint seals resume handshakes to this specification.
    MailboxTransport::SessionOptions so;
    so.reconnect_max_attempts = opts_.reconnect_max_attempts;
    so.backoff_initial_ms = opts_.backoff_initial_ms;
    so.backoff_cap_ms = opts_.backoff_cap_ms;
    so.resend_timeout_ms = opts_.resend_timeout_ms;
    so.fingerprint = spec_fingerprint();
    transport_->configure_session(so);
  }
  if (!peers_.empty()) (void)handshake();
}

void DistributedRunner::build_tables() {
  const int nshards = analysis_->shard_count();
  local_shards_.clear();
  for (int s = 0; s < nshards; ++s)
    if (is_local(s)) local_shards_.push_back(s);
  boundary_.assign(local_shards_.size(), {});
  advertise_peers_.assign(local_shards_.size(), {});
  shard_worked_.assign(local_shards_.size(), 0);
  gate_shards_.clear();
  wire_channels_.clear();
  neighbor_peers_.clear();
  remote_advertised_.assign(static_cast<std::size_t>(nshards), 0);

  const auto& cross = analysis_->cross_shard_channels();
  wire_by_index_.assign(cross.size(), -1);
  const auto local_pos = [this](int s) {
    return static_cast<std::size_t>(
        std::lower_bound(local_shards_.begin(), local_shards_.end(), s) -
        local_shards_.begin());
  };
  for (std::size_t i = 0; i < cross.size(); ++i) {
    const CrossShardChannel& cc = cross[i];
    const bool a_local = is_local(cc.shard_a);
    const bool b_local = is_local(cc.shard_b);
    if (a_local) boundary_[local_pos(cc.shard_a)].push_back(cc.a);
    if (b_local) boundary_[local_pos(cc.shard_b)].push_back(cc.b);
    if (a_local == b_local) continue;  // both local (in-process) / both remote
    WireChannel wc;
    wc.index = static_cast<std::uint32_t>(i);
    if (a_local) {
      wc.local_ep = cc.a;
      wc.remote_ep = cc.b;
      wc.dir_to_remote = 1;  // Frame::dir 1 delivers into endpoint b
      wc.dir_to_local = 0;
      wc.peer_node = assignment_[static_cast<std::size_t>(cc.shard_b)];
      gate_shards_.push_back(cc.shard_b);
      advertise_peers_[local_pos(cc.shard_a)].push_back(wc.peer_node);
    } else {
      wc.local_ep = cc.b;
      wc.remote_ep = cc.a;
      wc.dir_to_remote = 0;
      wc.dir_to_local = 1;
      wc.peer_node = assignment_[static_cast<std::size_t>(cc.shard_a)];
      gate_shards_.push_back(cc.shard_a);
      advertise_peers_[local_pos(cc.shard_b)].push_back(wc.peer_node);
    }
    wire_by_index_[i] = static_cast<int>(wire_channels_.size());
    wire_channels_.push_back(wc);
    neighbor_peers_.push_back(wc.peer_node);
  }
  const auto dedupe = [](std::vector<int>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  dedupe(gate_shards_);
  dedupe(neighbor_peers_);
  for (auto& v : advertise_peers_) dedupe(v);
  peer_batches_.clear();
  for (const int p : neighbor_peers_) {
    PeerBatch b;
    b.peer = p;
    b.frame.type = FrameType::TransferBatch;
    peer_batches_.push_back(std::move(b));
  }
}

bool DistributedRunner::handshake() {
  id_spec_hash_ = spec_fingerprint();
  {
    Fnv f;
    for (const int owner : assignment_)
      f.u64(static_cast<std::uint64_t>(owner));
    id_assign_hash_ = f.h;
  }
  Frame hello;
  hello.type = FrameType::Hello;
  hello.node = static_cast<std::uint32_t>(opts_.node);
  hello.nodes = static_cast<std::uint32_t>(opts_.nodes);
  hello.shards = static_cast<std::uint32_t>(analysis_->shard_count());
  hello.spec_hash = id_spec_hash_;
  hello.topology_version = wired_version_;
  hello.assign_hash = id_assign_hash_;
  for (PeerState& p : peers_)
    if (!send_frame(p.node, hello)) return false;
  transport_->flush();

  const auto watchdog = std::chrono::milliseconds(opts_.gate_timeout_ms);
  auto deadline = SteadyClock::now() + watchdog;
  for (;;) {
    if (!error_.empty()) return false;
    bool all = true;
    for (const PeerState& p : peers_)
      if (!p.hello_seen || !p.welcome_seen) {
        all = false;
        break;
      }
    if (all) return true;
    if (SteadyClock::now() > deadline) {
      fail("distributed: membership handshake timed out after " +
           std::to_string(opts_.gate_timeout_ms) + " ms");
      return false;
    }
    switch (pump(20)) {
      case Pump::kFailed:
        return false;
      case Pump::kFrame:
        deadline = SteadyClock::now() + watchdog;
        break;
      case Pump::kIdle:
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// Frame pump

DistributedRunner::Pump DistributedRunner::pump(int timeout_ms) {
  if (transport_ == nullptr) return Pump::kIdle;
  int from = -1;
  Frame f;
  std::string why;
  switch (transport_->recv(&from, &f, timeout_ms, &why)) {
    case MailboxTransport::RecvOutcome::kFrame:
      on_frame(from, f);
      return error_.empty() ? Pump::kFrame : Pump::kFailed;
    case MailboxTransport::RecvOutcome::kIdle:
      return Pump::kIdle;
    case MailboxTransport::RecvOutcome::kClosed: {
      const PeerState* p = peer_state(from);
      if (p != nullptr && p->departed) return Pump::kIdle;  // Bye preceded it
      fail("distributed: node " + std::to_string(from) + " died mid-run" +
           (why.empty() ? "" : " (" + why + ")"));
      return Pump::kFailed;
    }
  }
  return Pump::kIdle;
}

void DistributedRunner::on_frame(int from, Frame& f) {
  PeerState* p = peer_state(from);
  if (p == nullptr) return;  // not a member — drop
  switch (f.type) {
    case FrameType::Hello:
      on_hello(from, f);
      return;
    case FrameType::Welcome:
      p->welcome_seen = true;
      if (!f.accept)
        fail("distributed: node " + std::to_string(from) +
             " refused the handshake: " + f.reason);
      return;
    case FrameType::Transfer:
      (void)accept_transfer(from, f.channel, f.dir, std::move(f.msg),
                            f.sent_at_ns, f.round);
      return;
    case FrameType::TransferBatch: {
      if (f.rejected_entries != 0) {
        // The frame decoded but entries inside it did not: their transfers
        // are lost, which would silently break the ≡ Sequential guarantee.
        // Fail loudly instead.
        fail("distributed: node " + std::to_string(from) +
             " sent a transfer batch with " +
             std::to_string(f.rejected_entries) + " undecodable entries");
        return;
      }
      for (TransferEntry& e : f.entries)
        if (!accept_transfer(from, e.channel, e.dir, std::move(e.msg),
                             e.sent_at_ns, f.round))
          return;
      return;
    }
    case FrameType::Advertise:
    case FrameType::NullRound: {
      const std::size_t s = f.shard;
      if (s >= remote_advertised_.size() || is_local(static_cast<int>(s)))
        return;  // bogus shard id — ignore, the gate would hang on nothing
      if (f.round > remote_advertised_[s]) {
        remote_advertised_[s] = f.round;
        if (f.type == FrameType::NullRound)
          ++transport_->mutable_stats().null_rounds_serviced;
      }
      return;
    }
    case FrameType::RoundDone:
      p->round_seen = true;
      if (f.round > p->last_round) p->last_round = f.round;
      p->quiescent = f.quiescent;
      return;
    case FrameType::Probe: {
      if (in_parallel_round_) {
        // Mid-parallel-round the quiescence verdict is incoherent: the
        // overlapped pump may have drained fresh transfers into mailboxes
        // while last_quiescent_ still describes the previous round. Answer
        // after this round's frames are out (flush_deferred_probes).
        deferred_probes_.push_back({from, f.epoch});
        return;
      }
      answer_probe(from, f.epoch);
      return;
    }
    case FrameType::ProbeAck:
      p->ack_epoch = f.epoch;
      p->ack_quiescent = f.quiescent;
      p->ack_sent = f.sent;
      p->ack_recv = f.recv;
      return;
    case FrameType::Bye:
      p->departed = true;
      return;
  }
}

void DistributedRunner::on_hello(int from, const Frame& f) {
  PeerState* p = peer_state(from);
  if (p == nullptr) return;
  p->hello_seen = true;
  std::string why;
  if (static_cast<int>(f.node) != from)
    why = "claims node id " + std::to_string(f.node);
  else if (static_cast<int>(f.nodes) != opts_.nodes)
    why = "expects " + std::to_string(f.nodes) + " nodes, this group has " +
          std::to_string(opts_.nodes);
  else if (static_cast<int>(f.shards) != analysis_->shard_count())
    why = "sees " + std::to_string(f.shards) + " shards, this node sees " +
          std::to_string(analysis_->shard_count());
  else if (f.spec_hash != id_spec_hash_)
    why = "specification fingerprint mismatch";
  else if (f.topology_version != wired_version_)
    why = "topology version mismatch";
  else if (f.assign_hash != id_assign_hash_)
    why = "shard assignment mismatch";
  Frame w;
  w.type = FrameType::Welcome;
  w.node = static_cast<std::uint32_t>(opts_.node);
  w.accept = why.empty();
  w.reason = why;
  if (send_frame(from, w)) transport_->flush();
  if (!why.empty())
    fail("distributed: refusing node " + std::to_string(from) + ": " + why);
}

bool DistributedRunner::send_frame(int peer, Frame& f) {
  // The transport contract keeps `f` intact on failure, so the retry loop
  // below re-sends the same object without copying. On success an
  // in-process endpoint may have MOVED it — callers that reuse one frame
  // across peers rely on frames whose live fields are scalars (member-wise
  // move copies those); the batch path clears its entries after each send.
  if (transport_ == nullptr) return true;
  const auto deadline = SteadyClock::now() +
                        std::chrono::milliseconds(opts_.gate_timeout_ms);
  for (;;) {
    Status st = transport_->send(peer, f);
    if (st.ok()) return true;
    if (st.error().code == kQueueFull) {
      // Back-pressure park: keep draining our own inbound (which also
      // opportunistically flushes socket buffers) and retry.
      if (SteadyClock::now() > deadline) {
        fail("distributed: send to node " + std::to_string(peer) +
             " back-pressured past the watchdog");
        return false;
      }
      if (pump(5) == Pump::kFailed) return false;
      continue;
    }
    // A failed send races the peer's departure: its Bye (graceful leave)
    // or bare close (death) is on the inbound side, possibly behind frames
    // we have not ingested yet. Drain and let the recv path classify the
    // close before deciding whether anything was owed.
    while (pump(0) == Pump::kFrame) {
    }
    const PeerState* p = peer_state(peer);
    if (p != nullptr && p->departed) return true;  // it left; nothing owed
    if (!error_.empty()) return false;  // pump saw it die without a Bye
    fail("distributed: send to node " + std::to_string(peer) +
         " failed: " + st.error().message);
    return false;
  }
}

bool DistributedRunner::accept_transfer(int from, std::uint32_t channel,
                                        std::uint8_t dir, Interaction&& msg,
                                        std::int64_t sent_at_ns,
                                        std::uint64_t round) {
  const int pos =
      channel < wire_by_index_.size() ? wire_by_index_[channel] : -1;
  if (pos < 0) {
    fail("distributed: node " + std::to_string(from) +
         " sent a transfer on unknown channel " + std::to_string(channel));
    return false;
  }
  const WireChannel& wc = wire_channels_[static_cast<std::size_t>(pos)];
  if (dir != wc.dir_to_local) {
    fail("distributed: node " + std::to_string(from) +
         " sent a transfer for an endpoint it owns (channel " +
         std::to_string(channel) + ")");
    return false;
  }
  wc.local_ep->inject_transfer(std::move(msg), SimTime{sent_at_ns}, round);
  ++transfers_recv_;
  return true;
}

// ---------------------------------------------------------------------------
// Round protocol

bool DistributedRunner::gate(std::uint64_t need) {
  if (need == 0 || gate_shards_.empty()) return true;
  const auto watchdog = std::chrono::milliseconds(opts_.gate_timeout_ms);
  auto deadline = SteadyClock::now() + watchdog;
  for (;;) {
    maybe_heartbeat();
    int lagging = -1;
    for (const int gs : gate_shards_)
      if (remote_advertised_[static_cast<std::size_t>(gs)] < need) {
        lagging = gs;
        break;
      }
    if (lagging < 0) return true;
    const int owner = assignment_[static_cast<std::size_t>(lagging)];
    const PeerState* p = peer_state(owner);
    if (p != nullptr && p->departed) {
      fail("distributed: node " + std::to_string(owner) +
           " left the run while shard " + std::to_string(lagging) +
           " still gates round " + std::to_string(need + 1));
      return false;
    }
    if (SteadyClock::now() > deadline) {
      fail("distributed: gate timed out waiting for shard " +
           std::to_string(lagging) + " (node " + std::to_string(owner) +
           ") to advertise round " + std::to_string(need));
      return false;
    }
    switch (pump(10)) {
      case Pump::kFailed:
        return false;
      case Pump::kFrame:
        deadline = SteadyClock::now() + watchdog;
        break;
      case Pump::kIdle:
        break;
    }
  }
}

int DistributedRunner::node_parallel_width() const noexcept {
  const int shards = static_cast<int>(local_shards_.size());
  if (shards <= 1) return 1;
  return std::min(effective_worker_width(opts_.worker_count), shards);
}

void DistributedRunner::run_one_shard(std::size_t pos, std::uint64_t r,
                                      bool announce) {
  const int s = local_shards_[pos];
  ShardState& shard = shards_[static_cast<std::size_t>(s)];
  shard_worked_[pos] = 0;
  shard_deltas_[pos] = ContinuationDelta{};
  // Marks produced while this shard drains/collects/fires route into its
  // own scope, exactly like a free-running shard thread.
  LocalReadyScopeBinding binding(shard.ready, s);
  const ReadyScope::RoundAction action = continuation_round(
      s, shard, boundary_[pos], r, run_deadline_,
      analysis_->shards()[static_cast<std::size_t>(s)].system_module, announce,
      shard_deltas_[pos], nullptr,
      [&shard](const FiringCandidate& c, SimTime at) {
        shard.fired_log.push_back({c, at});
      });
  // Fire and Advance (delay leap) both count as local work — an empty
  // round, but not an idle node.
  if (action != ReadyScope::RoundAction::Park) shard_worked_[pos] = 1;
}

void DistributedRunner::parallel_shard_task(std::size_t pos) noexcept {
  // Pool tasks must not throw: surface worker-side failures (verify
  // divergence, a throwing action) through the run thread instead.
  try {
    run_one_shard(pos, parallel_round_, parallel_announce_);
  } catch (...) {
    std::lock_guard<std::mutex> lock(parallel_mu_);
    if (!parallel_error_) parallel_error_ = std::current_exception();
  }
  pending_shards_.fetch_sub(1, std::memory_order_release);
}

void DistributedRunner::run_shards_parallel(std::uint64_t r, int width) {
  WorkerPool& pool = ensure_pool_width(width);
  parallel_round_ = r;
  pending_shards_.store(static_cast<int>(local_shards_.size()),
                        std::memory_order_relaxed);
  for (std::size_t pos = 0; pos < local_shards_.size(); ++pos) {
    // The 16-byte [this, pos] capture fits std::function's inline storage:
    // dealing a round allocates nothing (round/announce travel as members
    // written above, published by launch()'s release edge).
    pool.submit(static_cast<int>(pos) % width,
                [this, pos](int) { parallel_shard_task(pos); });
  }
  in_parallel_round_ = true;
  pool.launch();
  // I/O overlap: while the shard tasks run, this thread keeps servicing the
  // transport — inbound transfers park in the (striped-mutex, thread-safe)
  // mailboxes, Advertise/RoundDone bounds advance, heartbeats go out. The
  // gate proof makes this safe: every transfer stamped <= r-1 arrived
  // before the Advertise that released gate(r-1), so anything arriving now
  // is stamped >= r and the workers' <= r-1 drains never touch it. Probe
  // frames are the one exception — answering one mid-round could combine a
  // stale quiescence verdict with freshly drained mailboxes — so on_frame
  // defers them until the round's frames are out (flush_deferred_probes).
  bool pump_ok = transport_ != nullptr;
  while (pending_shards_.load(std::memory_order_acquire) > 0) {
    if (!pump_ok) {
      if (transport_ == nullptr) break;  // nothing to overlap — park below
      std::this_thread::yield();  // pump failed: just await the tasks
      continue;
    }
    maybe_heartbeat();
    if (pump(1) == Pump::kFailed)
      pump_ok = false;
    else
      ++io_overlap_polls_;
  }
  pool.wait_idle();  // happens-before edge for every worker-side write
  in_parallel_round_ = false;
  ++parallel_rounds_;
}

bool DistributedRunner::run_round(std::uint64_t r) {
  route_ready_ledger();
  const bool announce =
      observer() != nullptr || static_cast<bool>(opts_.trace_hook);
  const int width = node_parallel_width();
  node_workers_ = static_cast<std::uint64_t>(width);
  if (shard_deltas_.size() != local_shards_.size())
    shard_deltas_.resize(local_shards_.size());
  if (width >= 2) {
    parallel_announce_ = announce;
    run_shards_parallel(r, width);
  } else {
    for (std::size_t pos = 0; pos < local_shards_.size(); ++pos)
      run_one_shard(pos, r, announce);
  }
  if (parallel_error_) {
    std::exception_ptr error = parallel_error_;
    parallel_error_ = nullptr;
    std::rethrow_exception(error);
  }
  // Announce-after-revalidation on the run thread, in shard id order then
  // firing order. Every entry carries round r, so this is exactly the
  // (round, shard) order the cross-node trace merge sorts by — identical
  // for every worker width.
  if (announce) {
    RunObserver* obs = observer();
    for (std::size_t pos = 0; pos < local_shards_.size(); ++pos) {
      const int s = local_shards_[pos];
      ShardState& shard = shards_[static_cast<std::size_t>(s)];
      for (const FiredEvent& e : shard.fired_log) {
        if (opts_.trace_hook)
          opts_.trace_hook(r, s, *e.candidate.module, *e.candidate.transition,
                           e.at);
        if (obs != nullptr)
          obs->on_fire(*e.candidate.module, *e.candidate.transition, e.at);
      }
      shard.fired_log.clear();
    }
  }
  bool any_work = false;
  bool any_fired = false;
  for (std::size_t pos = 0; pos < local_shards_.size(); ++pos) {
    const ContinuationDelta& d = shard_deltas_[pos];
    stats_.guards_examined += d.guards;
    stats_.candidates_considered += d.cands;
    stats_.rounds_with_allocation += d.alloc_rounds;
    stats_.fired += d.fired;
    stats_.busy += d.busy;
    stats_.sched_time += d.sched;
    if (shard_worked_[pos] != 0) any_work = true;
    if (d.rounds != 0) any_fired = true;
  }
  if (any_fired) ++stats_.rounds;
  return any_work;
}

bool DistributedRunner::export_transfers(std::uint64_t r) {
  // Coalesce this round's transfers into one TransferBatch per peer: the
  // flush in send_round_frames() still precedes the round's Advertise on the
  // same FIFO stream, so gate release continues to imply transfer arrival.
  // Transfers stamped for another round (delay leaps) take the legacy
  // per-frame path — correct either way, they just never share a stamp.
  bool any_batched = false;
  for (const WireChannel& wc : wire_channels_) {
    if (!wc.remote_ep->has_pending_transfers()) continue;
    export_scratch_.clear();
    wc.remote_ep->take_transfers(export_scratch_);
    for (InteractionPoint::Transfer& t : export_scratch_) {
      if (opts_.batch_transfers && t.round == r) {
        for (PeerBatch& b : peer_batches_) {
          if (b.peer != wc.peer_node) continue;
          b.frame.entries.push_back(TransferEntry{
              wc.index, wc.dir_to_remote, t.sent_at.ns, std::move(t.msg)});
          any_batched = true;
          break;
        }
      } else {
        Frame f;
        f.type = FrameType::Transfer;
        f.channel = wc.index;
        f.dir = wc.dir_to_remote;
        f.round = t.round;
        f.sent_at_ns = t.sent_at.ns;
        f.msg = std::move(t.msg);
        if (!send_frame(wc.peer_node, f)) return false;
        if (!opts_.batch_transfers && transport_ != nullptr)
          transport_->flush();  // baseline mode: one syscall per frame
        ++transfers_sent_;
      }
    }
  }
  if (!any_batched) return true;
  for (PeerBatch& b : peer_batches_) {
    if (b.frame.entries.empty()) continue;
    const std::size_t n = b.frame.entries.size();
    if (n == 1) {
      // Single-transfer round: the small Transfer frame costs fewer wire
      // bytes than a one-entry batch.
      TransferEntry& e = b.frame.entries.front();
      Frame f;
      f.type = FrameType::Transfer;
      f.channel = e.channel;
      f.dir = e.dir;
      f.round = r;
      f.sent_at_ns = e.sent_at_ns;
      f.msg = std::move(e.msg);
      if (!send_frame(b.peer, f)) return false;
    } else {
      b.frame.type = FrameType::TransferBatch;
      b.frame.round = r;
      if (!send_frame(b.peer, b.frame)) return false;
    }
    transfers_sent_ += n;
    b.frame.entries.clear();
  }
  return true;
}

bool DistributedRunner::send_round_frames(std::uint64_t r, bool quiescent) {
  // Transfers left first (export_transfers); FIFO per peer then makes every
  // round-r stamp visible before the round-r Advertise releases a gate.
  for (std::size_t pos = 0; pos < local_shards_.size(); ++pos) {
    if (advertise_peers_[pos].empty()) continue;
    Frame f;
    f.type = shard_worked_[pos] != 0 ? FrameType::Advertise
                                     : FrameType::NullRound;
    f.shard = static_cast<std::uint32_t>(local_shards_[pos]);
    f.round = r;
    for (const int peer : advertise_peers_[pos])
      if (!send_frame(peer, f)) return false;
  }
  Frame done;
  done.type = FrameType::RoundDone;
  done.node = static_cast<std::uint32_t>(opts_.node);
  done.round = r;
  done.quiescent = quiescent;
  for (const PeerState& p : peers_) {
    if (p.departed) continue;
    if (!send_frame(p.node, done)) return false;
  }
  // Round boundary: push the whole backlog — transfers, then advertises,
  // then RoundDone — in one scatter-gather syscall per peer.
  if (transport_ != nullptr) transport_->flush();
  return true;
}

void DistributedRunner::maybe_heartbeat() {
  // Piggyback liveness on the protocol's own idle-peer frame: re-sending
  // the latest RoundDone is idempotent for the receiver (its round bound
  // only moves forward) but counts as a received frame, so the receiver's
  // watchdog resets. Waiting peers thus distinguish "slow" (heartbeats keep
  // arriving — wait on) from "dead" (silence; the transport's reconnect
  // budget expires and surfaces a structured kClosed abort).
  if (transport_ == nullptr || opts_.heartbeat_interval_ms <= 0 ||
      !ran_any_round_ || peers_.empty())
    return;
  const auto now = SteadyClock::now();
  if (now < next_heartbeat_) return;
  next_heartbeat_ =
      now + std::chrono::milliseconds(opts_.heartbeat_interval_ms);
  Frame hb;
  hb.type = FrameType::RoundDone;
  hb.node = static_cast<std::uint32_t>(opts_.node);
  hb.round = round_;
  hb.quiescent = last_quiescent_;
  for (const PeerState& p : peers_) {
    if (p.departed) continue;
    (void)transport_->send(p.node, hb);  // best-effort; losses surface later
  }
  transport_->flush();
  ++transport_->mutable_stats().heartbeats;
}

// ---------------------------------------------------------------------------
// Quiescence

bool DistributedRunner::transfers_pending() const noexcept {
  for (const auto& list : boundary_)
    for (const InteractionPoint* ip : list)
      if (ip->has_pending_transfers()) return true;
  return false;
}

bool DistributedRunner::neighbors_active() const noexcept {
  // A channel neighbor that completed a round past our cursor will gate on
  // our advertisements: we must keep null-advancing. This is transitive —
  // our null rounds raise our RoundDone, which can in turn wake OUR idle
  // neighbors — so quiescent regions between active ones stay permeable.
  for (const int n : neighbor_peers_)
    for (const PeerState& p : peers_)
      if (p.node == n && !p.departed && p.round_seen &&
          p.last_round > round_)
        return true;
  return false;
}

bool DistributedRunner::await_termination() {
  const auto watchdog = std::chrono::milliseconds(opts_.gate_timeout_ms);
  auto deadline = SteadyClock::now() + watchdog;
  const bool coordinator = opts_.node == 0;
  bool probe_stale = false;  // last probe failed: wait for news to re-probe
  for (;;) {
    maybe_heartbeat();
    if (!error_.empty()) return true;
    for (const PeerState& p : peers_)
      if (p.departed) {
        // A Bye ends the group: coordinator-confirmed global quiescence in
        // the healthy path, an early leaver otherwise — either way no more
        // frames are coming from it and we are locally done.
        finished_ = true;
        return true;
      }
    if (transfers_pending()) return false;  // new work arrived — resume
    if (neighbors_active()) return false;   // a neighbor needs null rounds
    if (coordinator && !probe_stale) {
      bool hints_ok = true;
      for (const PeerState& p : peers_)
        if (p.round_seen && !p.quiescent) {
          hints_ok = false;
          break;
        }
      if (hints_ok) {
        ++probe_epoch_;
        Frame probe;
        probe.type = FrameType::Probe;
        probe.node = static_cast<std::uint32_t>(opts_.node);
        probe.epoch = probe_epoch_;
        for (PeerState& p : peers_)
          if (!send_frame(p.node, probe)) return true;
        transport_->flush();
        for (;;) {  // collect this epoch's acks
          maybe_heartbeat();
          if (!error_.empty()) return true;
          for (const PeerState& p : peers_)
            if (p.departed) {
              finished_ = true;
              return true;
            }
          if (transfers_pending()) return false;
          bool all = true;
          for (const PeerState& p : peers_)
            if (p.ack_epoch != probe_epoch_) {
              all = false;
              break;
            }
          if (all) break;
          if (SteadyClock::now() > deadline) {
            fail("distributed: termination probe " +
                 std::to_string(probe_epoch_) + " timed out");
            return true;
          }
          const Pump got = pump(20);
          if (got == Pump::kFailed) return true;
          if (got == Pump::kFrame) deadline = SteadyClock::now() + watchdog;
        }
        // Flow conservation across the whole group: everyone quiescent AND
        // every Transfer frame ever sent was received ⇒ nothing in flight
        // that could wake anyone ⇒ global quiescence (messages are the only
        // cross-node wake source).
        std::uint64_t sent = transfers_sent_;
        std::uint64_t recv = transfers_recv_;
        bool all_quiescent = last_quiescent_ && !transfers_pending();
        for (const PeerState& p : peers_) {
          all_quiescent = all_quiescent && p.ack_quiescent;
          sent += p.ack_sent;
          recv += p.ack_recv;
        }
        if (all_quiescent && sent == recv) {
          Frame bye;
          bye.type = FrameType::Bye;
          bye.node = static_cast<std::uint32_t>(opts_.node);
          for (const PeerState& p : peers_)
            if (!p.departed) (void)transport_->send(p.node, bye);
          transport_->flush();
          bye_sent_ = true;
          finished_ = true;
          return true;
        }
        probe_stale = true;
      }
    }
    if (SteadyClock::now() > deadline) {
      fail("distributed: termination wait starved for " +
           std::to_string(opts_.gate_timeout_ms) + " ms");
      return true;
    }
    const Pump got = pump(50);
    if (got == Pump::kFailed) return true;
    if (got == Pump::kFrame) {
      deadline = SteadyClock::now() + watchdog;
      probe_stale = false;
    }
  }
}

void DistributedRunner::answer_probe(int from, std::uint64_t epoch) {
  Frame ack;
  ack.type = FrameType::ProbeAck;
  ack.node = static_cast<std::uint32_t>(opts_.node);
  ack.epoch = epoch;
  ack.quiescent = ran_any_round_ && last_quiescent_ && !transfers_pending();
  ack.sent = transfers_sent_;
  ack.recv = transfers_recv_;
  if (send_frame(from, ack)) transport_->flush();
}

bool DistributedRunner::flush_deferred_probes() {
  // Index loop on purpose: answer_probe pumps on back-pressure, and a probe
  // arriving during the flush is answered inline (in_parallel_round_ is
  // false) rather than appended, so the vector cannot grow under us — but
  // iterators could still be a latent hazard if that ever changes.
  for (std::size_t i = 0; i < deferred_probes_.size(); ++i) {
    const DeferredProbe p = deferred_probes_[i];
    answer_probe(p.from, p.epoch);
    if (!error_.empty()) return false;
  }
  deferred_probes_.clear();
  return true;
}

// ---------------------------------------------------------------------------
// The step loop

bool DistributedRunner::step() {
  if (!error_.empty() || finished_) return false;
  if (!wired_) {
    wire();
    if (!error_.empty()) return false;
  }
  if (spec_.topology_version() != wired_version_) {
    fail("distributed: topology changed after round " +
         std::to_string(round_) +
         "; dynamic module creation does not span processes");
    return false;
  }
  if (ran_any_round_ && last_quiescent_ && !transfers_pending()) {
    if (peers_.empty()) return false;
    if (await_termination()) return false;
    if (!error_.empty()) return false;
    // Resumed: an active neighbor needs null rounds / a transfer arrived.
  }
  const std::uint64_t r = round_ + 1;
  if (!gate(r - 1)) return false;
  while (pump(0) == Pump::kFrame) {  // ingest whatever already arrived
  }
  if (!error_.empty()) return false;
  const bool worked = run_round(r);
  if (!export_transfers(r)) return false;
  last_quiescent_ = !worked && !transfers_pending();
  if (!send_round_frames(r, last_quiescent_)) return false;
  if (!flush_deferred_probes()) return false;
  round_ = r;
  ran_any_round_ = true;
  std::uint64_t burst = 1;
  if (worked && peers_.empty() && transport_ == nullptr &&
      run_deadline_ == kNeverTime && !run_has_predicate_) {
    // Single-node group: nothing to gate on, pump, or advertise — burst
    // rounds like the free-running backend, bounded to the run's exact step
    // budget so the StepLimit cutoff stays precise. Deadline and predicate
    // stops are evaluated between steps, so they suppress the burst rather
    // than being skipped inside one.
    const std::uint64_t cap = std::min(run_step_limit_, step_limit_);
    while (run_steps_ + burst < cap) {
      if (!run_round(round_ + 1)) {
        // Quiescence discovered inside the burst: the empty round stays
        // uncounted, exactly like the non-burst path below.
        last_quiescent_ = true;
        break;
      }
      ++round_;
      ++burst;
    }
  }
  for (const int s : local_shards_) {
    const SimTime c = shards_[static_cast<std::size_t>(s)].clock;
    if (c > now_) now_ = c;
  }
  last_step_rounds_ = burst;
  // A single-node group discovering quiescence reports it immediately and
  // does not count the empty round (the sequential scheduler's behavior).
  // With peers, the round still counts: channel-coupled nodes consume their
  // step budgets in lockstep, null rounds included.
  if (!worked && peers_.empty() && !transfers_pending()) return false;
  return true;
}

void DistributedRunner::decorate_report(RunReport& report) {
  ShardedExecutor::decorate_report(report);
  if (transport_ != nullptr) report.transport = transport_->stats();
  // Node-parallel counters live on the runner, not the transport, so they
  // survive (and are reported) even for a transportless single-node world.
  report.transport.node_workers = node_workers_;
  report.transport.parallel_shard_rounds = parallel_rounds_;
  report.transport.io_overlap_polls = io_overlap_polls_;
  if (!error_.empty()) {
    report.reason = StopReason::Aborted;
    report.error = error_;
  }
  // Whatever ended this run (quiescence already Bye'd by the coordinator;
  // step limits, deadlines, predicates and aborts have not), tell the peers
  // we are leaving so their gates fail fast instead of timing out.
  if (transport_ != nullptr && wired_ && !bye_sent_) {
    Frame bye;
    bye.type = FrameType::Bye;
    bye.node = static_cast<std::uint32_t>(opts_.node);
    for (const PeerState& p : peers_)
      if (!p.departed) (void)transport_->send(p.node, bye);
    transport_->flush();
    bye_sent_ = true;
  }
}

}  // namespace mcam::estelle
