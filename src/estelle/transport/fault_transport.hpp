// Deterministic fault injection for the distributed transport stack.
//
// Recovery code that is only exercised by real network weather is dead code
// in CI. This header gives the tests and benches two seeded, reproducible
// fault sources:
//
//   * FaultPlan — a per-peer schedule of faults keyed by outbound frame
//     index. FaultPlan::seeded(seed, ...) derives the same schedule from the
//     same seed on every run (SplitMix64, no global RNG state), so a failing
//     seed is replayable verbatim.
//   * FaultInjectingTransport — a decorator over any MailboxTransport that
//     applies a plan to its send() path: Drop discards the frame, Duplicate
//     sends it twice, Delay holds it back past later sends (released at the
//     latest by flush(), so a delayed tail is never stranded), Close severs
//     the inner link right after the frame leaves (sever() — over a
//     session-enabled socket mesh that is a recoverable mid-run reset, over
//     loopback a peer death). Every injected fault counts in the wrapped
//     transport's TransportStats::faults_injected.
//
// StreamSocketTransport additionally accepts a FaultPlan at the *wire
// record* level (set_wire_faults), below its session sequence numbers —
// that is where a drop models the network eating bytes the session layer
// must get back via gap detection, reconnect and replay.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "estelle/transport/transport.hpp"

namespace mcam::estelle {

enum class FaultKind : std::uint8_t {
  kNone = 0,
  kDrop,       ///< discard the frame (the network ate it)
  kDuplicate,  ///< deliver it twice
  kDelay,      ///< hold it back past later frames (reorder)
  kClose,      ///< sever the link right after this frame
};

/// One scheduled fault: applies to the `index`-th outbound frame (0-based,
/// counted per peer).
struct FaultAction {
  std::uint64_t index = 0;
  FaultKind kind = FaultKind::kNone;
  /// kDelay: release after this many subsequent frames (>=1).
  std::uint32_t delay_frames = 1;
};

/// A deterministic per-peer fault schedule.
struct FaultPlan {
  std::vector<FaultAction> actions;  // ascending index, unique indices

  /// Rates per mille (0..1000) applied independently per frame index within
  /// [0, horizon). `close_after`: additionally sever the link right after
  /// frame index close_after (SIZE_MAX/no entry when < 0). Same seed ⇒ same
  /// plan, always.
  [[nodiscard]] static FaultPlan seeded(std::uint64_t seed,
                                        std::uint64_t horizon,
                                        unsigned drop_per_mille,
                                        unsigned dup_per_mille,
                                        unsigned delay_per_mille,
                                        std::int64_t close_after = -1);

  [[nodiscard]] bool empty() const noexcept { return actions.empty(); }
  /// The fault scheduled for frame `index` (kNone action when unscheduled).
  [[nodiscard]] FaultAction at(std::uint64_t index) const noexcept;
};

/// Decorator: a MailboxTransport that injects a deterministic fault plan
/// into the frames it forwards. recv()/flush()/peers()/stats() delegate to
/// the wrapped transport; configure_session() and sever() pass through, so
/// a decorated session transport keeps its recovery behavior.
class FaultInjectingTransport final : public MailboxTransport {
 public:
  explicit FaultInjectingTransport(std::shared_ptr<MailboxTransport> inner);

  /// Install the outbound fault schedule toward `peer`.
  void set_plan(int peer, FaultPlan plan);

  [[nodiscard]] const std::vector<int>& peers() const noexcept override {
    return inner_->peers();
  }
  common::Status send(int peer, Frame& f) override;
  void flush() override;
  RecvOutcome recv(int* from, Frame* out, int timeout_ms,
                   std::string* error) override;
  void configure_session(const SessionOptions& so) override {
    inner_->configure_session(so);
  }
  bool sever(int peer) override { return inner_->sever(peer); }
  [[nodiscard]] const TransportStats& stats() const noexcept override {
    return inner_->stats();
  }
  [[nodiscard]] TransportStats& mutable_stats() noexcept override {
    return inner_->mutable_stats();
  }

 private:
  struct PeerFaults {
    int peer = 0;
    FaultPlan plan;
    std::uint64_t next_index = 0;  // outbound frames seen so far
    struct Held {
      std::uint64_t release_at = 0;  // frame index that frees it
      Frame frame;
    };
    std::vector<Held> held;
  };

  PeerFaults* faults_of(int peer);
  /// Forward every held frame whose release index has passed (all of them
  /// when `all`); send errors drop the held frame — it was fault-injected
  /// traffic on a link that just died.
  void release_held(PeerFaults& pf, bool all);

  std::shared_ptr<MailboxTransport> inner_;
  std::vector<PeerFaults> faults_;
};

}  // namespace mcam::estelle
