// The unified Estelle runtime API.
//
// The paper's central claim (§4–§5) is that one Estelle specification can be
// executed by interchangeable runtimes — a sequential scheduler, a simulated
// multiprocessor, real parallel threads — and compared fairly. This header is
// that claim as an interface: every runtime is an `Executor` constructed
// through `make_executor(spec, config)` and driven through
// `run(RunOptions) -> RunReport`. Call sites select a backend by value
// (`ExecutorKind`), never by concrete type; new backends (sharded, work
// stealing, distributed) register with `ExecutorFactory` and every existing
// consumer can use them unchanged.
//
// Vocabulary:
//   StopCondition — when a run ends besides quiescence: a predicate over the
//                   world, a virtual-time deadline, or a round budget.
//   RunObserver   — per-run hook chain (fire events, round boundaries, run
//                   lifecycle). Replaces the old process-global trace
//                   singleton as the primary observation path.
//   RunReport     — what happened: stop reason, rounds and firings of this
//                   run, and the executor-lifetime SchedulerStats.
//
// Observer contract: all RunObserver callbacks are invoked on the thread that
// called run(), even under the real-thread backends — Threaded announces a
// round's firing set before its workers execute it; Sharded replays each
// epoch's revalidated firings after the epoch barrier
// (announce-after-revalidation, see shard_executor.hpp). Observers therefore
// need no internal locking.
#pragma once

#include <any>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "sim/engine.hpp"

namespace mcam::estelle {

using common::SimTime;

class Module;
struct Transition;
class Specification;
class Executor;

/// A (module, transition) pair chosen for one step.
struct FiringCandidate {
  Module* module = nullptr;
  const Transition* transition = nullptr;
};

/// Module→unit mapping policies (§3, §5.2 and [6] as cited by the paper).
enum class Mapping {
  /// One OSF/1 thread per Estelle module — the code generator's default,
  /// "maximum degree of parallelism allowed by Estelle semantics".
  ThreadPerModule,
  /// As many units as processors; modules assigned round-robin. §5.2's
  /// grouping scheme that removes synchronization losses.
  GroupedUnits,
  /// All modules of one connection subtree share a unit — the
  /// connection-per-processor layout that [6] found superior.
  ConnectionPerProcessor,
  /// One unit per protocol layer (tree depth) — the layout [6] found
  /// inferior; included so the comparison can be reproduced.
  LayerPerProcessor,
};

[[nodiscard]] const char* mapping_name(Mapping m) noexcept;

/// Executor-lifetime counters, cumulative across runs (a client facade pumps
/// the same executor many times; virtual time keeps advancing).
struct SchedulerStats {
  SimTime time{};          // virtual completion time
  std::uint64_t fired = 0;
  std::uint64_t rounds = 0;
  SimTime busy{};          // transition execution time
  SimTime sched_time{};    // selection + bookkeeping time
  SimTime switch_time{};   // context switches (parallel only)
  SimTime msg_time{};      // inter-unit messages (parallel only)
  /// Hot-path observability (the dirty-set win, measured not anecdotal):
  /// `provided`/when/delay guards evaluated while selecting transitions,
  std::uint64_t guards_examined = 0;
  /// firing candidates produced by candidate collection (pre-revalidation),
  std::uint64_t candidates_considered = 0;
  /// and rounds in which the scheduler's persistent round buffers had to
  /// grow (a steady-state round performs zero heap allocations).
  std::uint64_t rounds_with_allocation = 0;

  [[nodiscard]] double scheduler_share() const noexcept {
    const double total = static_cast<double>(busy.ns + sched_time.ns +
                                             switch_time.ns + msg_time.ns);
    return total == 0.0 ? 0.0 : static_cast<double>(sched_time.ns) / total;
  }
};

// ---------------------------------------------------------------------------
// Run vocabulary

/// The available runtimes. Values are stable; future backends extend this
/// enum and register with ExecutorFactory.
enum class ExecutorKind {
  Sequential,   // single processor, virtual time — the speedup baseline
  ParallelSim,  // simulated multiprocessor (the KSR1 experiments, §5)
  Threaded,     // real std::thread execution, deterministic commit order
  Sharded,      // work-stealing real threads, one shard per system module
  FreeRunning,  // barrier-free continuation shards firing from ready sets
  Distributed,  // one shard group per process over a MailboxTransport
};

/// Every kind a default-constructed ExecutorConfig can drive. Distributed is
/// deliberately absent: it needs transport::DistOptions in
/// ExecutorConfig::backend_options to be more than a single-node runner, and
/// it refuses specifications ConflictAnalysis cannot prove conflict-free, so
/// a blind sweep over it would not honor the every-spec contract the
/// conformance suites assert over this list.
inline constexpr ExecutorKind kAllExecutorKinds[] = {
    ExecutorKind::Sequential, ExecutorKind::ParallelSim,
    ExecutorKind::Threaded, ExecutorKind::Sharded, ExecutorKind::FreeRunning};

/// Name of a kind — built-in or registered with ExecutorFactory.
[[nodiscard]] const char* executor_kind_name(ExecutorKind k) noexcept;
/// Inverse of executor_kind_name (exact match); false if unknown.
[[nodiscard]] bool executor_kind_from_name(const std::string& name,
                                           ExecutorKind* out) noexcept;

/// Why a run ended.
enum class StopReason {
  Quiescent,           // no fireable transition anywhere, no pending wakeup
  PredicateSatisfied,  // a StopCondition::when() predicate returned true
  DeadlineReached,     // virtual clock passed a StopCondition::deadline()
  StepLimit,           // round budget exhausted (per-run or config backstop)
  Aborted,             // an exception escaped the run; seen only in the
                       // partial report delivered to on_run_end before it
                       // propagates
};

[[nodiscard]] const char* stop_reason_name(StopReason r) noexcept;

/// One reason to end a run early. A run always ends on quiescence; stop
/// conditions are checked between rounds and the first satisfied one wins.
class StopCondition {
 public:
  enum class Kind { Quiescence, Predicate, Deadline, StepLimit };

  /// Run to quiescence only — the implicit default; never stops early.
  static StopCondition quiescence() { return StopCondition(Kind::Quiescence); }
  /// Stop once `pred()` is true (checked between rounds). A null predicate
  /// is a programming error and throws immediately rather than producing a
  /// condition that silently never fires.
  static StopCondition when(std::function<bool()> pred) {
    if (!pred)
      throw std::invalid_argument("StopCondition::when: null predicate");
    StopCondition c(Kind::Predicate);
    c.pred_ = std::move(pred);
    return c;
  }
  /// Stop once virtual time reaches `at`.
  static StopCondition deadline(SimTime at) {
    StopCondition c(Kind::Deadline);
    c.deadline_ = at;
    return c;
  }
  /// Stop after `n` rounds of this run.
  static StopCondition max_steps(std::uint64_t n) {
    StopCondition c(Kind::StepLimit);
    c.max_steps_ = n;
    return c;
  }

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  /// The deadline of a Deadline condition (meaningless for other kinds).
  [[nodiscard]] SimTime deadline_time() const noexcept { return deadline_; }
  /// The round budget of a StepLimit condition (meaningless for other
  /// kinds). Backends that run many rounds per step() — the free-running
  /// executor — bound their run-ahead with it so the cutoff stays exact.
  [[nodiscard]] std::uint64_t step_budget() const noexcept {
    return max_steps_;
  }
  [[nodiscard]] StopReason reason() const noexcept;
  /// True when met; `now` is the virtual clock, `steps` the rounds completed
  /// so far in this run.
  [[nodiscard]] bool satisfied(SimTime now, std::uint64_t steps) const;

 private:
  explicit StopCondition(Kind k) : kind_(k) {}

  Kind kind_;
  std::function<bool()> pred_;
  SimTime deadline_{};
  std::uint64_t max_steps_ = 0;
};

/// Per-run observation hooks. Default implementations do nothing; override
/// what you need. See the observer contract in the header comment.
class RunObserver {
 public:
  virtual ~RunObserver() = default;
  virtual void on_run_begin(Executor& /*executor*/) {}
  /// Announced before the transition's action executes under every backend
  /// except Sharded, so `module.state()` is normally still the from-state
  /// (the sharded backend replays firings after its epoch barrier — the
  /// transition/timestamp arguments are exact, but the module may already
  /// show the post-round state). Do not reentrantly run() the executor from
  /// here — the announced firing is still in flight; reentry is safe only
  /// from between-round hooks (stop predicates, on_round_end).
  virtual void on_fire(const Module& /*module*/,
                       const Transition& /*transition*/, SimTime /*now*/) {}
  virtual void on_round_end(Executor& /*executor*/, std::uint64_t /*round*/) {}
  /// Invoked with the assembled report just before on_run_end; observers
  /// that aggregate their own measurements (MetricsObserver) publish them
  /// into the report here, so callers get everything from run()'s return
  /// value.
  virtual void on_report(Executor& /*executor*/, struct RunReport& /*report*/) {
  }
  virtual void on_run_end(Executor& /*executor*/,
                          const struct RunReport& /*report*/) {}
};

/// Parameters of one run() call.
struct RunOptions {
  /// Stop conditions, any-of. Empty ⇒ run to quiescence (or the executor's
  /// configured round backstop).
  std::vector<StopCondition> stop;
  /// Observers for this run, notified in order. Not owned; must outlive the
  /// run() call.
  std::vector<RunObserver*> observers;
  /// Worker-thread count for this run under the real-thread backends
  /// (Threaded, Sharded). 0 ⇒ keep the executor's configured count
  /// (ExecutorConfig::threads, itself defaulting to hardware_concurrency()).
  /// The backends keep one persistent WorkerPool across run() calls and
  /// resize it only when this asks for a different width; backends without
  /// real threads ignore the field.
  int worker_count = 0;
};

/// Effective worker count for a requested width: `requested` if positive,
/// otherwise max(1, std::thread::hardware_concurrency()). The single
/// interpretation of ExecutorConfig::threads and RunOptions::worker_count.
[[nodiscard]] int resolve_worker_count(int requested) noexcept;

/// Per-shard execution statistics, reported by ExecutorKind::Sharded
/// (empty under other backends). Counters are executor-lifetime, like
/// SchedulerStats.
struct ShardRunStats {
  int shard = 0;
  std::string system_module;  // path of the shard's system module
  bool uniprocessor_host = false;
  std::uint64_t fired = 0;
  std::uint64_t rounds = 0;
  std::uint64_t steals = 0;  // times an idle worker stole this shard
  SimTime clock{};           // shard-local virtual clock
};

/// Continuation-dispatch statistics, reported by ExecutorKind::FreeRunning
/// (all-zero under other backends). Counters are executor-lifetime.
struct FreeRunningStats {
  /// Shard continuation parks: idle (passive), firing-log backpressure,
  /// round-limit / deadline pacing, and neighbor-gate waits.
  std::uint64_t parks = 0;
  /// Passive shards unparked by a cross-shard mailbox delivery.
  std::uint64_t wakes = 0;
  /// Max occupancy any per-shard firing log (SPSC ring) ever reached.
  std::uint64_t log_high_water = 0;
  /// Rounds served by the epoch-based sharded path instead (specification
  /// not proven conflict-free, legacy full_scan mode, or a pool narrower
  /// than the shard count).
  std::uint64_t fallback_rounds = 0;
};

/// Cross-process transport counters, reported by ExecutorKind::Distributed
/// (all-zero under other backends). frames/bytes are what the node's
/// MailboxTransport moved (bytes stay 0 under the zero-copy loopback);
/// null_rounds_serviced counts NullRound frames accepted from peers — the
/// conservative-simulation null messages that advance a provably-idle remote
/// shard's round; handshake_retries counts connection attempts beyond the
/// first during mesh setup; send_queue_high_water is the largest backlog (in
/// bytes, frames under loopback) any peer's bounded outbound queue reached.
///
/// The batching counters quantify the PR 7 hot path: syscalls counts data
/// I/O system calls issued (sendmsg/read — polls excluded, they are
/// symmetric across modes and would dilute the per-round comparison);
/// frames_batched counts individual transfers that traveled inside a
/// TransferBatch frame instead of as their own frame; bytes_per_write is
/// the largest byte count one write syscall flushed (scatter-gather makes
/// this the whole backlog, not one frame); encode_pool_reuse counts frame
/// encodes served entirely by a warmed per-peer buffer (no growth — the
/// allocation-free steady state).
///
/// The session counters quantify the PR 9 recovery layer: reconnect_attempts
/// counts mid-run redials (distinct from dial-time handshake_retries);
/// reconnects counts completed resume handshakes; frames_replayed counts
/// replay-ring records retransmitted by a resume; dup_frames_dropped counts
/// data frames discarded because their sequence number was already
/// delivered; heartbeats counts liveness RoundDone frames the runner sent
/// while waiting on a gate; faults_injected counts frames a fault plan
/// dropped/duplicated/delayed/closed on purpose.
///
/// The node-parallel counters quantify the PR 10 in-node dispatch (filled
/// by the runner even when the node has no transport — a single-node group
/// still parallelizes): node_workers is the node's effective worker width
/// (resolved DistOptions::worker_count, capped at the local shard count);
/// parallel_shard_rounds counts node rounds executed as WorkerPool
/// continuation tasks (width >= 2) instead of the sequential per-node loop;
/// io_overlap_polls counts transport pump calls completed while shard tasks
/// were in flight — the compute/I-O overlap the dispatch buys.
struct TransportStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t null_rounds_serviced = 0;
  std::uint64_t handshake_retries = 0;
  std::uint64_t send_queue_high_water = 0;
  std::uint64_t syscalls = 0;
  std::uint64_t frames_batched = 0;
  std::uint64_t bytes_per_write = 0;
  std::uint64_t encode_pool_reuse = 0;
  std::uint64_t reconnect_attempts = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t frames_replayed = 0;
  std::uint64_t dup_frames_dropped = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t node_workers = 0;
  std::uint64_t parallel_shard_rounds = 0;
  std::uint64_t io_overlap_polls = 0;
};

/// Per-module firing summary, published into RunReport by a MetricsObserver
/// (metrics.hpp) from its on_report hook; empty unless one observed the run.
struct ModuleFiringMetrics {
  std::string module_path;
  std::uint64_t fired = 0;
  SimTime mean_gap{};  // mean virtual time between consecutive firings
};

/// What one run() call did.
struct RunReport {
  ExecutorKind kind{};
  StopReason reason = StopReason::Quiescent;
  std::uint64_t steps = 0;  // rounds executed in this run
  std::uint64_t fired = 0;  // transitions fired in this run
  SchedulerStats stats{};   // executor-lifetime cumulative counters
  SimTime time{};           // virtual clock when the run ended
  /// Per-run deltas of the hot-path counters (the lifetime values live in
  /// `stats`): guards examined selecting transitions, candidates collected,
  /// rounds that grew a persistent scheduler buffer.
  std::uint64_t guards_examined = 0;
  std::uint64_t candidates_considered = 0;
  std::uint64_t rounds_with_allocation = 0;
  std::vector<ShardRunStats> shards;  // per-shard stats (Sharded backend)
  /// Continuation-dispatch counters (FreeRunning backend; zero elsewhere).
  FreeRunningStats free_running;
  /// Cross-process transport counters (Distributed backend; zero elsewhere).
  TransportStats transport;
  /// Structured failure description when the Distributed backend ends a run
  /// with reason == Aborted *without* throwing — a dead peer, a refused
  /// handshake, a gate watchdog timeout. Unlike an escaping exception, these
  /// are expected distributed-runtime conditions: run() returns normally and
  /// the caller inspects reason/error. Empty on every other path.
  std::string error;
  /// Filled by MetricsObserver::on_report when one is attached:
  std::vector<ModuleFiringMetrics> module_metrics;
  /// Histogram of virtual-time gaps between consecutive firings of the same
  /// module; bucket i counts gaps in [2^i, 2^(i+1)) microseconds.
  std::vector<std::uint64_t> firing_gap_histogram;
};

// ---------------------------------------------------------------------------
// Executor

/// A runtime for one Estelle specification. Implementations honor the §4
/// scheduling semantics (parent precedence, process/activity parallelism,
/// independent system modules); they differ in how the firing set executes
/// and what the virtual clock models.
class Executor {
 public:
  virtual ~Executor() = default;

  /// Execute rounds until quiescence or a stop condition. Virtual time and
  /// SchedulerStats are cumulative across run() calls on the same executor.
  virtual RunReport run(const RunOptions& opts) = 0;
  RunReport run() { return run(RunOptions{}); }
  /// Convenience: run({.stop = {StopCondition::when(pred)}}).
  RunReport run_until(std::function<bool()> pred);

  /// Attach an observer to every subsequent run() of this executor, ahead
  /// of that run's RunOptions::observers. This is the executor-scoped
  /// replacement for the retired process-global TraceRecorder::install()
  /// shim: facades that pump one executor many times (McamClient) can be
  /// observed without threading options through every call. Not owned; the
  /// observer must outlive the runs.
  void add_run_observer(RunObserver* observer);
  void remove_run_observer(RunObserver* observer) noexcept;
  [[nodiscard]] const std::vector<RunObserver*>& run_observers()
      const noexcept {
    return run_observers_;
  }

  [[nodiscard]] virtual ExecutorKind kind() const noexcept = 0;
  [[nodiscard]] virtual SimTime now() const noexcept = 0;
  [[nodiscard]] virtual const SchedulerStats& stats() const noexcept = 0;
  /// Execution units this runtime drives (simulated units, threads, …).
  [[nodiscard]] virtual int unit_count() const noexcept { return 1; }

 private:
  std::vector<RunObserver*> run_observers_;
};

/// Shared skeleton for executors: owns the virtual clock, the cumulative
/// stats, the run loop (stop-condition checks, observer lifecycle, the
/// config round backstop) and the firing-set/wakeup helpers all current
/// backends share. A new backend implements step() — one round, false when
/// quiescent — and optionally finalize_stats().
class ExecutorBase : public Executor {
 public:
  RunReport run(const RunOptions& opts) override;
  using Executor::run;

  [[nodiscard]] SimTime now() const noexcept override { return now_; }
  [[nodiscard]] const SchedulerStats& stats() const noexcept override {
    return stats_;
  }

 protected:
  ExecutorBase(Specification& spec, std::uint64_t step_limit)
      : spec_(spec), step_limit_(step_limit) {}

  /// One scheduling round; returns false when the world is quiescent.
  virtual bool step() = 0;
  /// Called after the loop ends, before the report is assembled (e.g. to
  /// pull aggregate counters out of a simulation engine).
  virtual void finalize_stats() {}
  /// Backend-specific report decoration (e.g. the sharded backend fills
  /// RunReport::shards). Runs after the common fields are assembled, before
  /// observers see the report.
  virtual void decorate_report(RunReport& /*report*/) {}

  /// Firing set across all system modules at now(), parent precedence and
  /// process/activity semantics applied; adds guard-scan count to
  /// *scan_effort if given.
  [[nodiscard]] std::vector<FiringCandidate> collect_candidates(
      int* scan_effort = nullptr);
  /// Advance the clock to the earliest delay-transition wakeup — clamped to
  /// the active run's earliest deadline so an idle jump never overshoots a
  /// requested StopCondition::deadline(); false if there is no wakeup (the
  /// world is quiescent).
  bool advance_to_wakeup();
  /// Clamped idle-wakeup jump shared by every backend: advance the clock to
  /// min(wake, the active run's deadline), never backwards. A wake at or
  /// before now_ legitimately leaves the clock in place — the next
  /// collection sees the matured work at the current time.
  void advance_clock_toward(SimTime wake) noexcept {
    const SimTime target = wake < run_deadline_ ? wake : run_deadline_;
    if (target > now_) now_ = target;
  }
  /// The observer chain of the active run (persistent run_observers() first,
  /// then the run's RunOptions::observers); null outside run() AND null when
  /// the active run has no observers at all, so backends can skip
  /// announcement bookkeeping entirely on unobserved runs.
  [[nodiscard]] RunObserver* observer() noexcept { return chain_; }
  /// RunOptions::worker_count of the active run (0 when unset / outside a
  /// run). Real-thread backends consult this when sizing their pool.
  [[nodiscard]] int requested_worker_count() const noexcept {
    return run_worker_count_;
  }
  /// The pool width a real-thread backend should use right now: the active
  /// run's worker_count override if set, else the backend's configured
  /// width resolved through resolve_worker_count().
  [[nodiscard]] int effective_worker_width(int configured) const noexcept {
    return run_worker_count_ > 0 ? run_worker_count_
                                 : resolve_worker_count(configured);
  }

  Specification& spec_;
  SimTime now_{};
  SchedulerStats stats_;
  std::uint64_t step_limit_;
  /// Earliest StopCondition::deadline() of the active run (SimTime max when
  /// none); bounds idle clock jumps — both advance_to_wakeup()'s tree scan
  /// and the backends' deadline-heap jumps clamp against it.
  SimTime run_deadline_{std::numeric_limits<std::int64_t>::max()};
  /// Global rounds the last step() call completed, consumed (and reset to 1)
  /// by the run loop: `steps += last_step_rounds_`. Every epoch/round-based
  /// backend leaves it at 1; the free-running backend executes whole bursts
  /// of rounds inside one step() and reports the burst size here so
  /// RunReport::steps and the StepLimit accounting keep meaning "global
  /// rounds", whatever the dispatch style.
  std::uint64_t last_step_rounds_ = 1;
  /// Tightest StopCondition::max_steps() budget of the active run (max u64
  /// when none) and the rounds completed so far in it — a burst-running
  /// backend bounds its run-ahead to `run_step_limit_ - run_steps_` (also
  /// clamped by the step_limit_ backstop) so the cutoff is exact.
  std::uint64_t run_step_limit_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t run_steps_ = 0;
  /// True when the active run has a predicate stop condition: a
  /// burst-running backend must then pace itself to one round per step() so
  /// the predicate is evaluated between rounds on a quiesced world, exactly
  /// like the round-based loops.
  bool run_has_predicate_ = false;

 private:
  class Chain;
  RunObserver* chain_ = nullptr;
  /// Firings contributed by reentrant inner run() calls during the active
  /// run — subtracted so RunReport::fired stays "fired in THIS run".
  std::uint64_t nested_fired_ = 0;
  /// RunOptions::worker_count of the active run (see requested_worker_count).
  int run_worker_count_ = 0;
};

// ---------------------------------------------------------------------------
// Factory

/// Everything needed to build any backend; backends read the fields they
/// understand and ignore the rest.
struct ExecutorConfig {
  ExecutorKind kind = ExecutorKind::Sequential;
  /// Round backstop (max_steps of the old sequential scheduler, max_rounds
  /// of the parallel ones).
  std::uint64_t max_steps = 1'000'000;

  // Sequential cost model:
  SimTime sched_per_transition = SimTime::from_us(3);
  SimTime scan_per_guard = SimTime::from_us(1);

  // Simulated-multiprocessor backend:
  int processors = 4;
  Mapping mapping = Mapping::ThreadPerModule;
  sim::CostModel costs{};

  // Real-thread backends (Threaded, Sharded): worker count of the
  // persistent pool. 0 ⇒ hardware_concurrency() (see resolve_worker_count).
  // The sharded backend caps its pool at the shard count (stealing whole
  // shards, extra workers could never be busy). RunOptions::worker_count
  // overrides this per run.
  int threads = 0;

  /// Restore the legacy full-tree candidate scan (and tree-walk wakeup) in
  /// the Sequential/Threaded/Sharded backends instead of event-driven
  /// dirty-set scheduling (ready_set.hpp). The O(modules) baseline every
  /// hot-path speedup is measured against; also a semantic escape hatch.
  bool full_scan = false;
  /// Debug cross-check: after every dirty-set candidate collection, run the
  /// reference full scan too and throw std::logic_error on any divergence.
  /// The differential suites run with this on; it defeats the speedup, so
  /// keep it off in production. Ignored when full_scan is set.
  bool verify_ready_set = false;

  /// Escape hatch for backends registered out of tree: their creator reads
  /// whatever typed options it expects from here, so new runtimes get
  /// configuration without widening this struct.
  std::any backend_options;
};

/// Registry mapping ExecutorKind to a constructor. The three paper runtimes
/// are pre-registered; out-of-tree backends add themselves with
/// register_backend() and immediately work at every make_executor call site.
class ExecutorFactory {
 public:
  using Creator = std::function<std::unique_ptr<Executor>(
      Specification&, const ExecutorConfig&)>;

  static ExecutorFactory& instance();

  void register_backend(ExecutorKind kind, std::string name, Creator create);
  [[nodiscard]] std::unique_ptr<Executor> create(
      Specification& spec, const ExecutorConfig& cfg) const;
  [[nodiscard]] bool known(ExecutorKind kind) const noexcept;
  [[nodiscard]] std::vector<ExecutorKind> kinds() const;
  /// Registered name of `kind` ("?" if unregistered); the inverse of
  /// kind_by_name. executor_kind_name/executor_kind_from_name route through
  /// these, so registered out-of-tree backends round-trip names too.
  [[nodiscard]] const char* name_of(ExecutorKind kind) const noexcept;
  [[nodiscard]] bool kind_by_name(const std::string& name,
                                  ExecutorKind* out) const noexcept;

 private:
  ExecutorFactory();

  struct Entry {
    ExecutorKind kind;
    const std::string* name;  // interned in names_; stable for process life
    Creator create;
  };
  /// Grow-only intern pool: pointers returned by name_of() stay valid
  /// across later registrations (including re-registration of a kind).
  std::deque<std::string> names_;
  std::vector<Entry> entries_;
};

/// Build a runtime for `spec`. The one constructor every call site uses:
///   auto ex = make_executor(spec);                                // sequential
///   auto ex = make_executor(spec, {.kind = ExecutorKind::ParallelSim,
///                                  .processors = 8});
[[nodiscard]] std::unique_ptr<Executor> make_executor(
    Specification& spec, const ExecutorConfig& cfg = {});

}  // namespace mcam::estelle
