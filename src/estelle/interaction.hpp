// Estelle interactions, interaction points and channels (ISO 9074 §5).
//
// Estelle modules communicate exclusively by exchanging *interactions* over
// bidirectional *channels* attached to *interaction points* (IPs). Each IP
// owns a FIFO queue of arrived interactions; per Estelle semantics only the
// queue head is offered to the module's `when` clauses.
//
// A channel here is simply the pairing of two IPs (connect()). Channels can
// carry impairments (loss, delay) so protocol experiments can inject faults
// below a layer without a full network simulation — this stands in for the
// paper's "simulated transport layer pipe" (§5.1).
//
// Delivery is *channel policy*, decided inside deliver() rather than by each
// backend: an interaction entering an IP is routed to exactly one of
//   1. the thread's active OutputCapture (two-phase commit per firing
//      candidate — the real-thread executor's mechanism),
//   2. the IP's cross-shard transfer mailbox, when a shard execution scope is
//      active on the calling thread and the destination belongs to a
//      different shard (two-phase commit per shard epoch — the sharded
//      executor's mechanism), or
//   3. the plain inbox deque (same-shard / unsharded / main-thread case).
// Because every backend funnels through the same routing point, race-free
// commit semantics are a property of the channel, not of any one scheduler.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <limits>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "asn1/value.hpp"
#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"

namespace mcam::estelle {

using common::Bytes;
using common::SimTime;

/// Matches any interaction kind in a `when` clause.
inline constexpr int kAnyKind = -1;
/// Matches any FSM state in a `from` clause.
inline constexpr int kAnyState = -1;

/// Shard id meaning "not assigned to any shard" (unsharded execution).
inline constexpr int kNoShard = -1;

/// One Estelle interaction: a kind (the interaction name in the channel
/// definition) plus parameters. Structured parameters travel as an ASN.1
/// value; opaque user data (PDUs of the layer above) as payload octets.
struct Interaction {
  int kind = 0;
  asn1::Value value;
  Bytes payload;

  Interaction() = default;
  explicit Interaction(int k) : kind(k) {}
  Interaction(int k, Bytes p) : kind(k), payload(std::move(p)) {}
  Interaction(int k, asn1::Value v) : kind(k), value(std::move(v)) {}
  Interaction(int k, asn1::Value v, Bytes p)
      : kind(k), value(std::move(v)), payload(std::move(p)) {}
};

class Module;

/// Sentinel round stamp meaning "accept every parked transfer".
inline constexpr std::uint64_t kAllRounds =
    std::numeric_limits<std::uint64_t>::max();

/// Cross-shard wake signal for continuation-style executors. A sink
/// registered on the Specification is invoked after deliver() parks an
/// interaction in a foreign shard's transfer mailbox: `shard` is the
/// destination shard, `sender_round` the sending shard's in-flight global
/// round (0 under the epoch-based backends). Invoked from whatever worker
/// thread executed the output, after the mailbox store is published — the
/// free-running executor uses it to unpark a passive destination shard
/// instead of waiting for a coordinator epoch.
class CrossShardWakeSink {
 public:
  virtual ~CrossShardWakeSink() = default;
  virtual void on_cross_shard_delivery(int shard,
                                       std::uint64_t sender_round) noexcept = 0;
};

/// An interaction point. Owned by a module; optionally connected to exactly
/// one peer IP (full-duplex).
class InteractionPoint {
 public:
  InteractionPoint(Module& owner, std::string name);
  ~InteractionPoint();

  InteractionPoint(const InteractionPoint&) = delete;
  InteractionPoint& operator=(const InteractionPoint&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Module& owner() const noexcept { return owner_; }
  [[nodiscard]] InteractionPoint* peer() const noexcept { return peer_; }
  [[nodiscard]] bool connected() const noexcept { return peer_ != nullptr; }

  /// Send an interaction to the peer's queue. Unconnected output is a
  /// specification error and throws. Returns false if the channel dropped
  /// the interaction (loss injection).
  bool output(Interaction msg);

  // ---- receive side ----
  [[nodiscard]] bool has_input() const noexcept { return !inbox_.empty(); }
  [[nodiscard]] const Interaction* head() const noexcept {
    return inbox_.empty() ? nullptr : &inbox_.front();
  }
  Interaction pop();
  [[nodiscard]] std::size_t queue_length() const noexcept {
    return inbox_.size();
  }
  void clear() noexcept;

  /// Fault injection on this IP's *outgoing* direction.
  void set_loss(double probability, common::Rng* rng) noexcept {
    loss_probability_ = probability;
    loss_rng_ = rng;
  }
  /// The loss Rng (nullptr when no loss is injected). ConflictAnalysis uses
  /// pointer identity to detect an Rng shared across shards.
  [[nodiscard]] common::Rng* loss_rng() const noexcept { return loss_rng_; }
  [[nodiscard]] double loss_probability() const noexcept {
    return loss_probability_;
  }

  // Used by connect()/disconnect() free functions.
  void attach_peer(InteractionPoint* peer) noexcept { peer_ = peer; }
  /// Route one interaction into this IP (see the routing policy in the
  /// header comment). Only the direct-inbox and capture paths may be used
  /// outside a shard execution scope; the transfer path takes a striped lock
  /// and is safe from any thread.
  void deliver(Interaction msg);

  // ---- two-phase cross-shard mailbox ----
  /// Move every cross-shard arrival into the inbox, in transfer order.
  /// Single-consumer: only the worker currently stepping the owning shard
  /// (or the run thread between epochs) may call this. Returns the number of
  /// interactions moved; `watermark` (if given) is raised to the latest
  /// sender-side timestamp seen, which the sharded executor uses to keep the
  /// receiving shard's clock ahead of every message it has accepted.
  std::size_t drain_transfers(SimTime* watermark = nullptr) {
    return drain_transfers_until(kAllRounds, watermark, nullptr);
  }
  /// Round-bounded drain for the free-running executor: accept only arrivals
  /// whose sender round stamp is <= `max_round` (a shard collecting its
  /// global round r passes r-1, so a message sent during round k becomes
  /// visible in round k+1 — exactly the epoch barrier's visibility rule,
  /// enforced per message instead of globally). Later-stamped arrivals stay
  /// parked; `min_remaining` (if given) is lowered to the smallest round
  /// stamp left behind, which an idle shard uses to leap its round counter
  /// to the next arrival instead of spinning through empty rounds.
  std::size_t drain_transfers_until(std::uint64_t max_round, SimTime* watermark,
                                    std::uint64_t* min_remaining);
  /// True when cross-shard arrivals are waiting to be drained.
  [[nodiscard]] bool has_pending_transfers() const;

  /// One parked cross-shard arrival: the interaction plus the sender shard's
  /// clock and in-flight global round at output() time. Public because the
  /// distributed runner moves parked transfers onto the wire stamps-intact.
  struct Transfer {
    Interaction msg;
    SimTime sent_at{};
    std::uint64_t round = 0;
  };

  // ---- remote-shard bridge (transport/dist_runner) ----
  /// Move every parked transfer (stamps included) into `out`, emptying the
  /// mailbox. The distributed runner calls this on the local replica IP of a
  /// remote module after each round: locally-fired outputs to that module
  /// parked here via deliver()'s cross-shard path, and this is how they
  /// leave for the owning process as Transfer frames. Same single-consumer
  /// rule as the drains. Returns the number of transfers moved.
  std::size_t take_transfers(std::vector<Transfer>& out);
  /// Park one arrival in the transfer mailbox with explicit stamps — the
  /// receive half of the bridge: a Transfer frame from the sender process is
  /// re-parked here exactly as deliver() would have parked it in-process, so
  /// drain_transfers_until() and the round-visibility rule treat remote and
  /// local senders identically. Fires the cross-shard wake sink.
  void inject_transfer(Interaction msg, SimTime sent_at, std::uint64_t round);

  /// Statistics for Table-1 style reliability measurements.
  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  /// Zero the sent/dropped counters. clear() deliberately does NOT touch
  /// them (it empties the queue, it does not rewrite history); call this
  /// when an IP is reused across otherwise-independent runs.
  void reset_stats() noexcept {
    sent_ = 0;
    dropped_ = 0;
  }

 private:
  Module& owner_;
  std::string name_;
  InteractionPoint* peer_ = nullptr;
  std::deque<Interaction> inbox_;
  /// Cross-shard arrivals parked until the owning shard's next epoch
  /// boundary (or free-running drain), stamped with the sender shard's clock
  /// and round. Guarded by a striped mutex pool (see interaction.cpp), not a
  /// per-IP mutex, so idle IPs cost nothing; `transfer_count_` mirrors the
  /// size so the per-epoch drain sweep can skip empty mailboxes without
  /// touching a lock.
  std::vector<Transfer> transfers_;
  std::atomic<std::size_t> transfer_count_{0};
  double loss_probability_ = 0.0;
  common::Rng* loss_rng_ = nullptr;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Connect two interaction points with a channel. Both must be unconnected.
void connect(InteractionPoint& a, InteractionPoint& b);

/// Tear down the channel between `ip` and its peer (idempotent).
void disconnect(InteractionPoint& ip) noexcept;

/// While alive on a thread, every deliver() on that thread records the
/// interaction instead of enqueuing it; commit() hands the recorded batch to
/// the destination inboxes. The real-thread executor (ExecutorKind::Threaded)
/// uses one capture per firing candidate and commits in deterministic
/// candidate order after the parallel join, making real-thread execution
/// race-free and bit-identical to sequential execution.
class OutputCapture {
 public:
  OutputCapture() = default;
  ~OutputCapture();
  OutputCapture(const OutputCapture&) = delete;
  OutputCapture& operator=(const OutputCapture&) = delete;
  /// Movable so executors can pool captures in growable containers between
  /// rounds; moving an *active* capture (between begin() and end()) is
  /// forbidden — the thread-local registration would keep pointing at the
  /// old address.
  OutputCapture(OutputCapture&&) noexcept = default;
  OutputCapture& operator=(OutputCapture&&) noexcept = default;

  /// Install on the calling thread; outputs are recorded until end().
  void begin();
  void end() noexcept;

  /// Deliver all captured interactions, in output order. Call after end(),
  /// from a single thread.
  void commit();

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  /// Reserved item slots (allocation accounting for the reuse pools).
  [[nodiscard]] std::size_t capacity() const noexcept {
    return items_.capacity();
  }

 private:
  friend class InteractionPoint;
  std::vector<std::pair<InteractionPoint*, Interaction>> items_;
};

/// While alive on a thread, marks that thread as executing shard `shard` at
/// shard-local time `now` in global round `round`: deliveries to IPs of
/// other shards detour into their transfer mailboxes (stamped with `now` and
/// `round`) instead of touching the foreign inbox. The sharded executor
/// installs one scope per shard round (round stamp 0 — its epoch barrier
/// makes per-message rounds redundant); the free-running executor stamps its
/// shard-local global round so receivers can enforce round-exact visibility.
class ShardExecutionScope {
 public:
  ShardExecutionScope(int shard, SimTime now, std::uint64_t round = 0);
  ~ShardExecutionScope();
  ShardExecutionScope(const ShardExecutionScope&) = delete;
  ShardExecutionScope& operator=(const ShardExecutionScope&) = delete;

  /// The shard the calling thread is executing for, or kNoShard.
  [[nodiscard]] static int current_shard() noexcept;

 private:
  int prev_shard_;
  SimTime prev_now_;
  std::uint64_t prev_round_;
};

}  // namespace mcam::estelle
