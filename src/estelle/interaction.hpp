// Estelle interactions, interaction points and channels (ISO 9074 §5).
//
// Estelle modules communicate exclusively by exchanging *interactions* over
// bidirectional *channels* attached to *interaction points* (IPs). Each IP
// owns a FIFO queue of arrived interactions; per Estelle semantics only the
// queue head is offered to the module's `when` clauses.
//
// A channel here is simply the pairing of two IPs (connect()). Channels can
// carry impairments (loss, delay) so protocol experiments can inject faults
// below a layer without a full network simulation — this stands in for the
// paper's "simulated transport layer pipe" (§5.1).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "asn1/value.hpp"
#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"

namespace mcam::estelle {

using common::Bytes;
using common::SimTime;

/// Matches any interaction kind in a `when` clause.
inline constexpr int kAnyKind = -1;
/// Matches any FSM state in a `from` clause.
inline constexpr int kAnyState = -1;

/// One Estelle interaction: a kind (the interaction name in the channel
/// definition) plus parameters. Structured parameters travel as an ASN.1
/// value; opaque user data (PDUs of the layer above) as payload octets.
struct Interaction {
  int kind = 0;
  asn1::Value value;
  Bytes payload;

  Interaction() = default;
  explicit Interaction(int k) : kind(k) {}
  Interaction(int k, Bytes p) : kind(k), payload(std::move(p)) {}
  Interaction(int k, asn1::Value v) : kind(k), value(std::move(v)) {}
  Interaction(int k, asn1::Value v, Bytes p)
      : kind(k), value(std::move(v)), payload(std::move(p)) {}
};

class Module;

/// An interaction point. Owned by a module; optionally connected to exactly
/// one peer IP (full-duplex).
class InteractionPoint {
 public:
  InteractionPoint(Module& owner, std::string name);
  ~InteractionPoint();

  InteractionPoint(const InteractionPoint&) = delete;
  InteractionPoint& operator=(const InteractionPoint&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Module& owner() const noexcept { return owner_; }
  [[nodiscard]] InteractionPoint* peer() const noexcept { return peer_; }
  [[nodiscard]] bool connected() const noexcept { return peer_ != nullptr; }

  /// Send an interaction to the peer's queue. Unconnected output is a
  /// specification error and throws. Returns false if the channel dropped
  /// the interaction (loss injection).
  bool output(Interaction msg);

  // ---- receive side ----
  [[nodiscard]] bool has_input() const noexcept { return !inbox_.empty(); }
  [[nodiscard]] const Interaction* head() const noexcept {
    return inbox_.empty() ? nullptr : &inbox_.front();
  }
  Interaction pop();
  [[nodiscard]] std::size_t queue_length() const noexcept {
    return inbox_.size();
  }
  void clear() noexcept { inbox_.clear(); }

  /// Fault injection on this IP's *outgoing* direction.
  void set_loss(double probability, common::Rng* rng) noexcept {
    loss_probability_ = probability;
    loss_rng_ = rng;
  }

  // Used by connect()/disconnect() free functions.
  void attach_peer(InteractionPoint* peer) noexcept { peer_ = peer; }
  void deliver(Interaction msg) { inbox_.push_back(std::move(msg)); }

  /// Statistics for Table-1 style reliability measurements.
  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  Module& owner_;
  std::string name_;
  InteractionPoint* peer_ = nullptr;
  std::deque<Interaction> inbox_;
  double loss_probability_ = 0.0;
  common::Rng* loss_rng_ = nullptr;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Connect two interaction points with a channel. Both must be unconnected.
void connect(InteractionPoint& a, InteractionPoint& b);

/// Tear down the channel between `ip` and its peer (idempotent).
void disconnect(InteractionPoint& ip) noexcept;

/// While alive on a thread, outputs on that thread are recorded instead of
/// delivered; commit() hands them to the peers. The real-thread executor
/// (ExecutorKind::Threaded) uses one capture per firing candidate and
/// commits in deterministic candidate order after the parallel join, making
/// real-thread execution race-free and bit-identical to sequential
/// execution.
class OutputCapture {
 public:
  OutputCapture() = default;
  ~OutputCapture();
  OutputCapture(const OutputCapture&) = delete;
  OutputCapture& operator=(const OutputCapture&) = delete;

  /// Install on the calling thread; outputs are recorded until end().
  void begin();
  void end() noexcept;

  /// Deliver all captured interactions, in output order. Call after end(),
  /// from a single thread.
  void commit();

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }

 private:
  friend class InteractionPoint;
  std::vector<std::pair<InteractionPoint*, Interaction>> items_;
};

}  // namespace mcam::estelle
