// continuation_round — the shared shard-continuation dispatch engine.
//
// PR 5's free-running executor and the distributed runner's node-parallel
// rounds execute the exact same per-shard round: accept every transfer
// stamped <= r-1 (raising the clock to the arrival watermark), ask the
// persistent ReadyScope for the round action (collect / delay-leap / park),
// and on Fire run the revalidated firing set under a round-stamped
// ShardExecutionScope with the sequential cost arithmetic. Keeping one
// definition here — a member template of ShardedExecutor, instantiated by
// free_executor.cpp and dist_runner.cpp — is what guarantees the two
// dispatch styles cannot drift apart: any divergence would instantly break
// the differential suites that pin both against the sequential scheduler.
//
// Thread contract: the caller owns `shard` for the duration of the call
// (free-running: the shard's continuation task; distributed: the worker the
// round was dealt to, or the run thread inline). The boundary mailboxes are
// striped-mutex thread-safe, so concurrent inject_transfer from other
// threads (a sibling shard, the distributed run thread's transport pump) is
// fine — the <= r-1 drain filter keeps later-stamped arrivals parked. The
// executing thread should hold a LocalReadyScopeBinding for the shard so
// dirty marks produced by firings route lock-free into its own scope.
//
// Announcement contract: `log` fires only when `announce`, in firing order,
// with the actual (revalidated) candidate and its actual shard-clock fire
// time; fire() itself runs with a null observer. Callers replay their logs
// to observers later, in global (round, shard id) order — the
// announce-after-revalidation discipline shared by every parallel backend.
#pragma once

#include <cstdint>
#include <vector>

#include "estelle/interaction.hpp"
#include "estelle/ready_set.hpp"
#include "estelle/shard_executor.hpp"

namespace mcam::estelle {

template <typename LogFn>
ReadyScope::RoundAction ShardedExecutor::continuation_round(
    int shard_id, ShardState& shard,
    const std::vector<InteractionPoint*>& boundary, std::uint64_t r,
    SimTime deadline_cap, Module* system_module, bool announce,
    ContinuationDelta& delta, std::uint64_t* min_future, LogFn&& log) {
  // Accept everything sent before this round; later-stamped arrivals stay
  // parked (min_future remembers the earliest so an idle caller can leap to
  // it). A message sent at sender-time t is never processed at
  // receiver-time < t: the watermark raises the clock first.
  SimTime wm = shard.clock;
  for (InteractionPoint* ip : boundary)
    ip->drain_transfers_until(r - 1, &wm, min_future);
  if (wm > shard.clock) shard.clock = wm;

  SimTime clock = shard.clock;
  const ReadyScope::RoundAction action =
      shard.ready.next_round(&clock, deadline_cap);
  delta.guards += shard.ready.round_guards();
  if (shard.ready.round_allocated()) ++delta.alloc_rounds;
  switch (action) {
    case ReadyScope::RoundAction::Fire: {
      if (verify_)
        verify_against_full_scan({system_module}, shard.clock,
                                 shard.ready.candidates());
      // Same virtual-cost arithmetic as the sequential scheduler: scan cost
      // for the guards this round's collection examined, then per-firing
      // scheduling and execution costs. Outputs to foreign shards detour
      // into their mailboxes, stamped with this round's number.
      ShardExecutionScope scope(shard_id, shard.clock, r);
      const std::vector<FiringCandidate>& cands = shard.ready.candidates();
      const SimTime scan_cost{
          scan_per_guard_.ns *
          static_cast<std::int64_t>(shard.ready.round_guards())};
      shard.clock += scan_cost;
      delta.sched += scan_cost;
      delta.cands += cands.size();
      std::uint64_t fired_now = 0;
      for (const FiringCandidate& c : cands) {
        // The sequential revalidation discipline: an earlier firing of this
        // round (same shard, same thread) may have consumed the state.
        if (!is_fireable(*c.transition, *c.module, shard.clock)) continue;
        shard.clock += sched_per_transition_;
        delta.sched += sched_per_transition_;
        shard.clock += c.transition->cost;
        delta.busy += c.transition->cost;
        if (announce) log(c, shard.clock);
        fire(c, shard.clock, nullptr);
        ++fired_now;
      }
      delta.fired += fired_now;
      ++delta.rounds;
      shard.fired += fired_now;
      ++shard.rounds;
      break;
    }
    case ReadyScope::RoundAction::Advance:
      // Empty round leaping to the next delay deadline — charges no scan
      // cost, fires nothing; the caller decides whether it completes a
      // global round.
      shard.clock = clock;
      break;
    case ReadyScope::RoundAction::Park:
      break;
  }
  return action;
}

}  // namespace mcam::estelle
