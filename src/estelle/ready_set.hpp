// Event-driven dirty-set scheduling (the allocation-free round hot path).
//
// The legacy round loop recursively walked the entire module tree and called
// select_fireable on every module — O(modules × transitions) per round even
// when one module is active, plus a fresh candidate vector per round. On the
// sparse-activity workloads typical of real protocol stacks (most entities
// idle, few active) that evaluation cost dominates everything the worker
// pool already optimized. This header replaces it:
//
//   * ReadyLedger (module.hpp) — modules enqueue themselves when something
//     that can change their fireability happens: a delivery creating a new
//     queue head (InteractionPoint::deliver / drain_transfers), a head
//     consumed (pop/clear), a state change or firing, a transition
//     registered. The executor drains the ledger at round boundaries.
//   * ReadyScope — one scheduling domain's persistent state: the ready list
//     (modules to re-evaluate), the fireable cache F (modules whose last
//     evaluation selected a transition), a min-heap of delay deadlines
//     (state_entered_at + delay), and the reusable candidate buffer. One
//     scope spans the whole specification under Sequential/Threaded; the
//     sharded backend keeps one per shard (ready sets and heaps live in
//     ShardState, so they survive shard stealing).
//   * collect(now) — pops matured deadlines, re-evaluates exactly the ready
//     modules, then rebuilds the round's candidates from F alone: sort by
//     document-order DFS index, drop candidates with a fireable ancestor
//     (parent precedence), and let the first candidate under each
//     activity-like parent claim the subtree (activity exclusion). All
//     buffers are persistent and sized by high-water mark — a steady-state
//     round performs zero heap allocations (rounds_with_allocation counts
//     the exceptions).
//
// Exactness. The candidate list equals a full-tree scan's, every round, by
// construction of the dirty hooks plus two conservative rules:
//   * guard stickiness — a module whose evaluation invoked any `provided`
//     guard stays in the ready set (guards are opaque and may read state the
//     runtime cannot hook, e.g. a budget shared across modules in the
//     deliberately ill-formed differential specs);
//   * deadline mirroring — an immature delay contributes a heap entry only
//     while its guard passes, matching the legacy wakeup scan; guard flips
//     are caught by stickiness.
// ExecutorConfig::verify_ready_set cross-checks the equality against a
// reference full scan every round (differential tests run with it on), and
// ExecutorConfig::full_scan restores the legacy path entirely (the bench
// baseline).
#pragma once

#include <cstdint>
#include <vector>

#include "common/clock.hpp"
#include "estelle/executor.hpp"
#include "estelle/module.hpp"

namespace mcam::estelle {

/// Persistent per-domain scheduling state; see the header comment. Not
/// thread-safe: one thread drives a scope at a time (the coordinating thread
/// under Sequential/Threaded; the worker owning the shard merely *reads* the
/// candidate buffer).
class ReadyScope {
 public:
  /// Enqueue `m` for re-evaluation at the next collect (idempotent).
  void mark(Module& m);

  /// Bring the scope up to date at `now` and return the round's candidates
  /// (document order, tree rules applied). The returned buffer is owned by
  /// the scope and valid until the next collect.
  const std::vector<FiringCandidate>& collect(common::SimTime now);

  /// What a free-running shard should do next (the drain-until-parked loop
  /// API): the outcome of one scheduling decision at the scope's level.
  enum class RoundAction {
    Fire,     ///< candidates() is non-empty — execute the round
    Advance,  ///< nothing fireable now, but a delay deadline is queued:
              ///< *now was leapt toward it (clamped to the cap); re-decide
    Park,     ///< nothing fireable and no queued deadline — park until an
              ///< external event (mailbox wake / topology change)
  };

  /// One iteration of a continuation executor's fire-from-ready-set loop:
  /// collect at *now; if empty, leap *now toward the earliest queued delay
  /// deadline, clamped to `deadline_cap` (the run's stop deadline), and
  /// report Advance so the caller counts the idle round exactly like the
  /// sequential scheduler's empty round; Park when there is no deadline
  /// either (clamping the leap to the cap also parks — the shard has reached
  /// the run's deadline and only a new run can release it). Never leaps
  /// backwards.
  RoundAction next_round(common::SimTime* now, common::SimTime deadline_cap);

  [[nodiscard]] const std::vector<FiringCandidate>& candidates()
      const noexcept {
    return candidates_;
  }

  /// Earliest queued delay deadline (kNeverTime if none). Entries can be
  /// stale — waking at one merely triggers a re-evaluation that finds
  /// nothing, never a wrong firing.
  [[nodiscard]] common::SimTime next_deadline() const noexcept;

  /// True when modules are queued for re-evaluation (includes sticky-guard
  /// modules, whose opaque guards may read state no hook can see — a parked
  /// free-running shard with such modules must be re-examined whenever
  /// between-round code may have run).
  [[nodiscard]] bool has_ready() const noexcept { return !ready_.empty(); }

  /// Guards examined by the last collect() (its select_fireable scan work).
  [[nodiscard]] std::uint64_t round_guards() const noexcept {
    return round_guards_;
  }
  /// True when the last collect() grew any persistent buffer.
  [[nodiscard]] bool round_allocated() const noexcept {
    return round_allocated_;
  }

  /// Drop all state without dereferencing stored module pointers (a
  /// topology change may have destroyed some). The caller resets the
  /// surviving modules' intrusive fields via reset_module.
  void clear() noexcept;

  /// Reset `m`'s intrusive scheduling fields and stamp its document-order
  /// DFS index — the per-module half of a reseed.
  static void reset_module(Module& m, std::uint32_t preorder) noexcept;

 private:
  struct Deadline {
    common::SimTime at{};
    Module* module = nullptr;
  };

  void pop_matured(common::SimTime now);
  void evaluate(common::SimTime now);
  void build_candidates();
  void set_fireable(Module& m, const Transition* t);
  void push_deadline(Module& m, common::SimTime at);
  [[nodiscard]] std::size_t footprint() const noexcept;

  std::vector<Module*> ready_;     // to re-evaluate (intrusive dedup)
  std::vector<Module*> fireable_;  // F: cached_fireable_ != nullptr (slots)
  std::vector<Deadline> heap_;     // min-heap of delay deadlines
  std::vector<Module*> order_;     // scratch: F sorted by preorder
  std::vector<FiringCandidate> candidates_;
  std::uint64_t round_guards_ = 0;
  bool round_allocated_ = false;
};

/// Whole-specification ready-set driver shared by the Sequential and
/// Threaded backends: one scope spanning every system module, plus the
/// reseed policy — the scope is rebuilt from a full tree walk whenever the
/// topology version moved (modules or channels added/removed: new
/// transitions must not be skipped, destroyed modules must not be touched)
/// or another consumer drained the ledger since we last did.
class SpecReadySet {
 public:
  explicit SpecReadySet(Specification& spec) : spec_(spec) {}

  /// Candidates at `now` (see ReadyScope::collect). Applies reseeds and
  /// drains the specification's ready ledger first.
  const std::vector<FiringCandidate>& collect(common::SimTime now);

  [[nodiscard]] common::SimTime next_wakeup() const noexcept {
    return scope_.next_deadline();
  }
  [[nodiscard]] std::uint64_t round_guards() const noexcept {
    return scope_.round_guards();
  }
  [[nodiscard]] bool round_allocated() const noexcept {
    return scope_.round_allocated() || ledger_grew_;
  }

 private:
  void reseed();

  Specification& spec_;
  ReadyScope scope_;
  std::uint64_t seen_version_ = ~0ull;
  bool seeded_ = false;
  std::size_t ledger_capacity_seen_ = 0;
  bool ledger_grew_ = false;
};

/// Reference cross-check for ExecutorConfig::verify_ready_set: recompute the
/// firing set of `system_modules` at `now` with the legacy full-tree scan
/// and throw std::logic_error if it differs from `got` (starting at
/// `got[offset]`, consuming exactly the reference's length unless the sizes
/// already disagree). Debug-only path; allocates freely.
void verify_against_full_scan(const std::vector<Module*>& system_modules,
                              common::SimTime now,
                              const std::vector<FiringCandidate>& got,
                              std::size_t offset = 0);

}  // namespace mcam::estelle
