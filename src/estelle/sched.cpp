#include "estelle/sched.hpp"

#include <algorithm>
#include <optional>

#include "estelle/ready_set.hpp"

namespace mcam::estelle {

namespace {

/// Collect at most one candidate from an activity subtree (all modules in it
/// are activity-attributed, so sequential by definition).
bool collect_single(Module& m, SimTime now, std::vector<FiringCandidate>& out,
                    int& effort) {
  if (const Transition* t = m.select_fireable(now)) {
    effort += m.last_scan_effort();
    out.push_back({&m, t});
    return true;
  }
  effort += m.last_scan_effort();
  for (auto& child : m.children())
    if (collect_single(*child, now, out, effort)) return true;
  return false;
}

void collect(Module& m, SimTime now, std::vector<FiringCandidate>& out,
             int& effort) {
  // Parent precedence: if this module can fire, its whole subtree is blocked.
  if (const Transition* t = m.select_fireable(now)) {
    effort += m.last_scan_effort();
    out.push_back({&m, t});
    return;
  }
  effort += m.last_scan_effort();
  if (is_process_like(m.attribute())) {
    // Children of a process-like parent run in parallel.
    for (auto& child : m.children()) collect(*child, now, out, effort);
  } else {
    // Children of an activity-like parent are mutually exclusive: take one
    // candidate from the first child subtree that offers one.
    for (auto& child : m.children())
      if (collect_single(*child, now, out, effort)) return;
  }
}

}  // namespace

std::vector<FiringCandidate> collect_firing_set(Module& system_module,
                                                SimTime now,
                                                int* scan_effort) {
  std::vector<FiringCandidate> out;
  int effort = 0;
  collect(system_module, now, out, effort);
  if (scan_effort != nullptr) *scan_effort += effort;
  return out;
}

void fire(const FiringCandidate& c, SimTime now, RunObserver* observer) {
  Module& m = *c.module;
  const Transition& t = *c.transition;
  if (observer != nullptr) observer->on_fire(m, t, now);
  std::optional<Interaction> msg;
  const Interaction* head = nullptr;
  if (t.ip != nullptr) {
    msg = t.ip->pop();
    head = &*msg;
  }
  t.action(m, head);
  if (t.to_state != kAnyState) {
    m.set_state(t.to_state);
    m.note_state_entry(now);
  }
}

// ---------------------------------------------------------------------------
// SequentialScheduler

SequentialScheduler::SequentialScheduler(Specification& spec,
                                         const ExecutorConfig& cfg)
    : ExecutorBase(spec, cfg.max_steps),
      sched_per_transition_(cfg.sched_per_transition),
      scan_per_guard_(cfg.scan_per_guard),
      ready_(spec),
      full_scan_(cfg.full_scan),
      verify_(cfg.verify_ready_set) {}

bool SequentialScheduler::step() {
  // Candidate collection: the event-driven ready set by default (guards are
  // examined only for modules something happened to), the legacy full tree
  // scan under ExecutorConfig::full_scan. The virtual scan cost charges
  // whatever was actually examined, so dirty-set scheduling shrinks modelled
  // scheduler overhead exactly like it shrinks real overhead.
  int effort = 0;
  std::vector<FiringCandidate> legacy;
  const std::vector<FiringCandidate>* candidates;
  if (full_scan_) {
    legacy = collect_candidates(&effort);
    candidates = &legacy;
  } else {
    candidates = &ready_.collect(now_);
    if (verify_)
      verify_against_full_scan(spec_.system_modules(), now_, *candidates);
    effort = static_cast<int>(ready_.round_guards());
    stats_.guards_examined += ready_.round_guards();
    stats_.candidates_considered += candidates->size();
    if (ready_.round_allocated()) ++stats_.rounds_with_allocation;
    if (candidates->empty()) {
      // Dirty-set empty rounds charge no scan cost — the sharded backend's
      // idle epochs don't either, and firing-trace identity on delay specs
      // needs both clocks to leap to the same absolute deadlines. O(log n)
      // wakeup: straight to the earliest queued delay deadline, clamped by
      // the run's deadline, never backwards.
      const SimTime wake = ready_.next_wakeup();
      if (wake == kNeverTime) return false;
      advance_clock_toward(wake);
      return true;
    }
  }
  const SimTime scan_cost{scan_per_guard_.ns * effort};
  now_ += scan_cost;
  stats_.sched_time += scan_cost;

  if (candidates->empty()) return advance_to_wakeup();  // full_scan_ only

  for (const FiringCandidate& c : *candidates) {
    // Revalidate: an earlier firing in this round may have consumed state.
    if (!is_fireable(*c.transition, *c.module, now_)) continue;
    now_ += sched_per_transition_;
    stats_.sched_time += sched_per_transition_;
    now_ += c.transition->cost;
    stats_.busy += c.transition->cost;
    fire(c, now_, observer());
    ++stats_.fired;
  }
  ++stats_.rounds;
  return true;
}

// ---------------------------------------------------------------------------
// ParallelSimScheduler

ParallelSimScheduler::ParallelSimScheduler(Specification& spec,
                                           const ExecutorConfig& cfg)
    : ExecutorBase(spec, cfg.max_steps),
      processors_(cfg.processors),
      mapping_(cfg.mapping),
      engine_(cfg.processors, cfg.costs) {
  if (mapping_ == Mapping::GroupedUnits) {
    // Exactly one unit per processor, created up front; modules round-robin
    // onto them (§5.2's grouping scheme).
    for (int p = 0; p < processors_; ++p)
      engine_.add_task("unit" + std::to_string(p), p);
  }
}

int ParallelSimScheduler::unit_of(Module& m) {
  std::uint64_t key = 0;
  // A uniprocessor host (client workstation, §3) runs its whole system
  // subtree on one unit regardless of the mapping policy. The high bit
  // keeps these keys out of the policy key spaces below.
  if (Module* sys = m.owning_system_module();
      sys != nullptr && sys->uniprocessor_host()) {
    key = (1ULL << 63) | sys->instance_id();
    auto it = unit_by_module_.find(key);
    if (it == unit_by_module_.end()) {
      const int task =
          engine_.add_task("host" + std::to_string(sys->instance_id()), -1);
      it = unit_by_module_.emplace(key, task).first;
    }
    return it->second;
  }
  switch (mapping_) {
    case Mapping::ThreadPerModule:
      key = m.instance_id();
      break;
    case Mapping::GroupedUnits:
      return static_cast<int>(m.instance_id() %
                              static_cast<std::uint64_t>(processors_));
    case Mapping::ConnectionPerProcessor: {
      // Unit = the subtree rooted at a direct child of a system module (one
      // "connection"); the system module itself is its own unit.
      Module* cursor = &m;
      while (cursor->parent() != nullptr &&
             !is_system(cursor->attribute()) &&
             !is_system(cursor->parent()->attribute()))
        cursor = cursor->parent();
      key = cursor->instance_id();
      break;
    }
    case Mapping::LayerPerProcessor: {
      // Unit = depth below the owning system module (protocol layer).
      std::uint64_t depth = 0;
      for (Module* cursor = &m;
           cursor->parent() != nullptr && !is_system(cursor->attribute());
           cursor = cursor->parent())
        ++depth;
      key = depth;
      break;
    }
  }
  auto it = unit_by_module_.find(key);
  if (it == unit_by_module_.end()) {
    const int task = engine_.add_task("unit" + std::to_string(key), -1);
    it = unit_by_module_.emplace(key, task).first;
  }
  return it->second;
}

bool ParallelSimScheduler::step() {
  std::vector<FiringCandidate> candidates = collect_candidates();
  if (candidates.empty()) return advance_to_wakeup();

  for (const FiringCandidate& c : candidates) {
    const int unit = unit_of(*c.module);
    const SimTime when = now_;
    engine_.post_external(
        unit, c.transition->cost,
        [this, c](sim::Context& ctx) {
          if (!is_fireable(*c.transition, *c.module, ctx.now())) return;
          fire(c, ctx.now(), observer());
          ++stats_.fired;
        },
        when);
  }
  const sim::RunStats s = engine_.run();
  now_ = s.makespan > now_ ? s.makespan : now_;
  ++stats_.rounds;
  return true;
}

void ParallelSimScheduler::finalize_stats() {
  const sim::RunStats& s = engine_.stats();
  stats_.busy = s.busy;
  stats_.sched_time = s.sched_time;
  stats_.switch_time = s.switch_time;
  stats_.msg_time = s.msg_time;
}

// ---------------------------------------------------------------------------
// ThreadedScheduler

ThreadedScheduler::ThreadedScheduler(Specification& spec,
                                     const ExecutorConfig& cfg)
    : ExecutorBase(spec, cfg.max_steps),
      threads_(cfg.threads),
      ready_(spec),
      full_scan_(cfg.full_scan),
      verify_(cfg.verify_ready_set) {}

int ThreadedScheduler::unit_count() const noexcept {
  return pool_ ? pool_->worker_count() : resolve_worker_count(threads_);
}

WorkerPool& ThreadedScheduler::ensure_pool() {
  const int want = effective_worker_width(threads_);
  if (!pool_ || pool_->worker_count() != want)
    pool_ = std::make_unique<WorkerPool>(want);
  return *pool_;
}

bool ThreadedScheduler::step() {
  if (!analysis_)
    analysis_ = std::make_unique<ConflictAnalysis>(spec_);
  else
    analysis_->refresh();

  if (full_scan_) {
    std::vector<FiringCandidate> candidates = collect_candidates();
    if (candidates.empty()) return advance_to_wakeup();
    run_round(candidates);
  } else {
    const std::vector<FiringCandidate>& candidates = ready_.collect(now_);
    if (verify_)
      verify_against_full_scan(spec_.system_modules(), now_, candidates);
    stats_.guards_examined += ready_.round_guards();
    stats_.candidates_considered += candidates.size();
    const bool scope_grew = ready_.round_allocated();
    if (candidates.empty()) {
      if (scope_grew) ++stats_.rounds_with_allocation;
      const SimTime wake = ready_.next_wakeup();
      if (wake == kNeverTime) return false;
      advance_clock_toward(wake);
      return true;
    }
    const std::size_t scratch_before = round_footprint();
    run_round(candidates);
    if (scope_grew || round_footprint() != scratch_before)
      ++stats_.rounds_with_allocation;
  }

  ++stats_.rounds;
  now_ += SimTime::from_us(1);  // nominal round tick so delay clauses advance
  return true;
}

std::size_t ThreadedScheduler::round_footprint() const noexcept {
  std::size_t f = conflicting_.capacity() + parallel_.capacity() +
                  captures_.capacity();
  for (const OutputCapture& c : captures_) f += c.capacity();
  return f;
}

void ThreadedScheduler::run_round(
    const std::vector<FiringCandidate>& candidates) {
  const std::size_t n = candidates.size();
  const SimTime fire_time = now_;

  // Split the round: a candidate conflicts when its module shares a channel
  // (or loss Rng) with another member of the round. O(n²) pair checks over
  // precomputed per-module signatures; rounds are small.
  conflicting_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (analysis_->modules_conflict(*candidates[i].module,
                                      *candidates[j].module)) {
        conflicting_[i] = 1;
        conflicting_[j] = 1;
      }
    }
  }

  // Single pass in candidate order, on this thread: conflicting candidates
  // revalidate and fire immediately (the sequential discipline — an earlier
  // conflicting firing may have disabled them, and their deliveries must be
  // visible to the next revalidation); independent candidates are announced
  // in place and deferred to the worker pool. Announcement order therefore
  // equals the sequential scheduler's firing order exactly. Independent and
  // conflicting candidates touch disjoint channels by construction, so the
  // phase separation cannot reorder anything observable.
  RunObserver* obs = observer();
  parallel_.clear();
  std::uint64_t fired = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!conflicting_[i]) {
      if (obs != nullptr)
        obs->on_fire(*candidates[i].module, *candidates[i].transition,
                     fire_time);
      parallel_.push_back(i);
      continue;
    }
    if (!is_fireable(*candidates[i].transition, *candidates[i].module,
                     fire_time))
      continue;
    fire(candidates[i], fire_time, obs);
    ++fired;
  }

  // Execute the independent candidates on the persistent pool (no thread
  // construction here — workers are parked between rounds); outputs captured
  // per candidate and committed after the epoch barrier in candidate order
  // (deterministic). At width 1 (or a single candidate) the round runs
  // inline instead: with one executor there is nothing to race with, and
  // independent candidates touch disjoint channels, so immediate delivery
  // is indistinguishable from capture-and-commit — and the park/unpark
  // round-trip matters on small hosts where the default width resolves
  // to 1. The capture pool and index buffer persist across rounds (high-
  // water sized), and the submitted lambdas capture 16 bytes so they fit
  // std::function's inline storage: a steady-state round allocates nothing.
  const std::size_t p = parallel_.size();
  if (p > 0) {
    if (p == 1 || effective_worker_width(threads_) < 2) {
      for (std::size_t k : parallel_) fire(candidates[k], fire_time);
    } else {
      if (captures_.size() < p) captures_.resize(p);
      round_ctx_ = {candidates.data(), parallel_.data(), captures_.data(),
                    fire_time};
      WorkerPool& pool = ensure_pool();
      const int nworkers = pool.worker_count();
      for (std::size_t k = 0; k < p; ++k) {
        pool.submit(static_cast<int>(k % static_cast<std::size_t>(nworkers)),
                    [this, k](int) {
                      const RoundCtx& ctx = round_ctx_;
                      ctx.captures[k].begin();
                      fire(ctx.candidates[ctx.parallel[k]], ctx.fire_time);
                      ctx.captures[k].end();
                    });
      }
      pool.run_epoch();
      for (std::size_t k = 0; k < p; ++k) captures_[k].commit();
    }
    fired += p;
  }

  stats_.fired += fired;
}

}  // namespace mcam::estelle
