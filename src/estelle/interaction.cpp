#include "estelle/interaction.hpp"

#include <array>
#include <mutex>
#include <stdexcept>

#include "estelle/module.hpp"

namespace mcam::estelle {

InteractionPoint::InteractionPoint(Module& owner, std::string name)
    : owner_(owner), name_(std::move(name)) {}

InteractionPoint::~InteractionPoint() { disconnect(*this); }

namespace {

thread_local OutputCapture* t_capture = nullptr;
thread_local int t_shard = kNoShard;
thread_local SimTime t_shard_now{};
thread_local std::uint64_t t_shard_round = 0;

/// Striped lock pool for the cross-shard transfer mailboxes. Striping keeps
/// the per-IP footprint at one vector while still letting unrelated channels
/// transfer concurrently; two IPs hashing to one stripe merely contend, they
/// never deadlock (each deliver/drain takes exactly one stripe).
constexpr std::size_t kTransferStripes = 64;
std::array<std::mutex, kTransferStripes> g_transfer_mu;

std::mutex& stripe_of(const InteractionPoint* ip) {
  const auto h = reinterpret_cast<std::uintptr_t>(ip);
  // Mix the low bits away: IPs are heap objects with aligned addresses.
  return g_transfer_mu[(h >> 6) % kTransferStripes];
}

}  // namespace

OutputCapture::~OutputCapture() {
  if (t_capture == this) t_capture = nullptr;
}

void OutputCapture::begin() {
  if (t_capture != nullptr)
    throw std::logic_error("nested OutputCapture on one thread");
  t_capture = this;
}

void OutputCapture::end() noexcept {
  if (t_capture == this) t_capture = nullptr;
}

void OutputCapture::commit() {
  // deliver() re-routes each item; with no capture installed and no shard
  // scope active (commit runs on the coordinating thread) this lands in the
  // destination inboxes directly.
  for (auto& [ip, msg] : items_) ip->deliver(std::move(msg));
  items_.clear();
}

ShardExecutionScope::ShardExecutionScope(int shard, SimTime now,
                                         std::uint64_t round)
    : prev_shard_(t_shard), prev_now_(t_shard_now), prev_round_(t_shard_round) {
  t_shard = shard;
  t_shard_now = now;
  t_shard_round = round;
}

ShardExecutionScope::~ShardExecutionScope() {
  t_shard = prev_shard_;
  t_shard_now = prev_now_;
  t_shard_round = prev_round_;
}

int ShardExecutionScope::current_shard() noexcept { return t_shard; }

void InteractionPoint::deliver(Interaction msg) {
  if (t_capture != nullptr) {
    t_capture->items_.emplace_back(this, std::move(msg));
    return;
  }
  if (t_shard != kNoShard && owner_.shard() != t_shard) {
    // Two-phase cross-shard handoff: park in the transfer mailbox, stamped
    // with the sender shard's clock and round; the owning shard drains at
    // its next epoch boundary or free-running round (the drain is what marks
    // the owner ready). The wake sink fires after the store is published so
    // a passive free-running shard can be unparked instead of waiting for a
    // coordinator epoch.
    inject_transfer(std::move(msg), t_shard_now, t_shard_round);
    return;
  }
  // Only the queue head is offered to when-clauses, so fireability changes
  // exactly when the delivery creates a new head.
  const bool new_head = inbox_.empty();
  inbox_.push_back(std::move(msg));
  if (new_head) owner_.mark_ready();
}

std::size_t InteractionPoint::drain_transfers_until(
    std::uint64_t max_round, SimTime* watermark,
    std::uint64_t* min_remaining) {
  // Empty-mailbox fast path, lock-free: drains are separated from foreign
  // deliveries by the pool join (epoch backends) or the sender-progress gate
  // (free-running), so a zero count really means empty-for-our-round.
  if (transfer_count_.load(std::memory_order_acquire) == 0) return 0;
  std::lock_guard<std::mutex> lock(stripe_of(this));
  std::size_t moved = 0;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < transfers_.size(); ++i) {
    Transfer& t = transfers_[i];
    if (t.round <= max_round) {
      if (watermark != nullptr && t.sent_at > *watermark) *watermark = t.sent_at;
      inbox_.push_back(std::move(t.msg));
      ++moved;
    } else {
      if (min_remaining != nullptr && t.round < *min_remaining)
        *min_remaining = t.round;
      // Guard the self-move: keep == i whenever no earlier entry matured,
      // and a self-move-assignment would empty the interaction's payload.
      if (keep != i) transfers_[keep] = std::move(t);
      ++keep;
    }
  }
  transfers_.resize(keep);
  transfer_count_.store(keep, std::memory_order_release);
  if (moved > 0) owner_.mark_ready();
  return moved;
}

void InteractionPoint::clear() noexcept {
  inbox_.clear();
  owner_.mark_ready();  // the offered head (if any) is gone
}

bool InteractionPoint::has_pending_transfers() const {
  return transfer_count_.load(std::memory_order_acquire) != 0;
}

void InteractionPoint::inject_transfer(Interaction msg, SimTime sent_at,
                                       std::uint64_t round) {
  {
    std::lock_guard<std::mutex> lock(stripe_of(this));
    transfers_.push_back({std::move(msg), sent_at, round});
    transfer_count_.store(transfers_.size(), std::memory_order_release);
  }
  if (Specification* spec = owner_.specification())
    if (CrossShardWakeSink* sink = spec->cross_shard_wake_sink())
      sink->on_cross_shard_delivery(owner_.shard(), round);
}

std::size_t InteractionPoint::take_transfers(std::vector<Transfer>& out) {
  if (transfer_count_.load(std::memory_order_acquire) == 0) return 0;
  std::lock_guard<std::mutex> lock(stripe_of(this));
  const std::size_t moved = transfers_.size();
  if (out.empty()) {
    out.swap(transfers_);  // steady state: recycle the caller's capacity
  } else {
    for (Transfer& t : transfers_) out.push_back(std::move(t));
    transfers_.clear();
  }
  transfer_count_.store(0, std::memory_order_release);
  return moved;
}

bool InteractionPoint::output(Interaction msg) {
  if (peer_ == nullptr)
    throw std::logic_error("output on unconnected interaction point '" +
                           name_ + "' of module '" + owner_.path() + "'");
  ++sent_;
  if (loss_probability_ > 0.0 && loss_rng_ != nullptr &&
      loss_rng_->chance(loss_probability_)) {
    ++dropped_;
    return false;
  }
  peer_->deliver(std::move(msg));
  return true;
}

Interaction InteractionPoint::pop() {
  if (inbox_.empty())
    throw std::logic_error("pop on empty interaction point '" + name_ + "'");
  Interaction msg = std::move(inbox_.front());
  inbox_.pop_front();
  // The next interaction (or none) is now the offered head; whichever of the
  // owner's when-clauses match has to be reconsidered.
  owner_.mark_ready();
  return msg;
}

void connect(InteractionPoint& a, InteractionPoint& b) {
  if (a.connected() || b.connected())
    throw std::logic_error("interaction point already connected: " +
                           (a.connected() ? a.name() : b.name()));
  if (&a == &b) throw std::logic_error("cannot connect IP to itself");
  a.attach_peer(&b);
  b.attach_peer(&a);
  if (Specification* spec = a.owner().specification())
    spec->note_topology_change();
  if (Specification* spec = b.owner().specification())
    spec->note_topology_change();
}

void disconnect(InteractionPoint& ip) noexcept {
  if (InteractionPoint* peer = ip.peer()) {
    peer->attach_peer(nullptr);
    ip.attach_peer(nullptr);
    if (Specification* spec = ip.owner().specification())
      spec->note_topology_change();
  }
}

}  // namespace mcam::estelle
