#include "estelle/interaction.hpp"

#include <array>
#include <mutex>
#include <stdexcept>

#include "estelle/module.hpp"

namespace mcam::estelle {

InteractionPoint::InteractionPoint(Module& owner, std::string name)
    : owner_(owner), name_(std::move(name)) {}

InteractionPoint::~InteractionPoint() { disconnect(*this); }

namespace {

thread_local OutputCapture* t_capture = nullptr;
thread_local int t_shard = kNoShard;
thread_local SimTime t_shard_now{};

/// Striped lock pool for the cross-shard transfer mailboxes. Striping keeps
/// the per-IP footprint at one vector while still letting unrelated channels
/// transfer concurrently; two IPs hashing to one stripe merely contend, they
/// never deadlock (each deliver/drain takes exactly one stripe).
constexpr std::size_t kTransferStripes = 64;
std::array<std::mutex, kTransferStripes> g_transfer_mu;

std::mutex& stripe_of(const InteractionPoint* ip) {
  const auto h = reinterpret_cast<std::uintptr_t>(ip);
  // Mix the low bits away: IPs are heap objects with aligned addresses.
  return g_transfer_mu[(h >> 6) % kTransferStripes];
}

}  // namespace

OutputCapture::~OutputCapture() {
  if (t_capture == this) t_capture = nullptr;
}

void OutputCapture::begin() {
  if (t_capture != nullptr)
    throw std::logic_error("nested OutputCapture on one thread");
  t_capture = this;
}

void OutputCapture::end() noexcept {
  if (t_capture == this) t_capture = nullptr;
}

void OutputCapture::commit() {
  // deliver() re-routes each item; with no capture installed and no shard
  // scope active (commit runs on the coordinating thread) this lands in the
  // destination inboxes directly.
  for (auto& [ip, msg] : items_) ip->deliver(std::move(msg));
  items_.clear();
}

ShardExecutionScope::ShardExecutionScope(int shard, SimTime now)
    : prev_shard_(t_shard), prev_now_(t_shard_now) {
  t_shard = shard;
  t_shard_now = now;
}

ShardExecutionScope::~ShardExecutionScope() {
  t_shard = prev_shard_;
  t_shard_now = prev_now_;
}

int ShardExecutionScope::current_shard() noexcept { return t_shard; }

void InteractionPoint::deliver(Interaction msg) {
  if (t_capture != nullptr) {
    t_capture->items_.emplace_back(this, std::move(msg));
    return;
  }
  if (t_shard != kNoShard && owner_.shard() != t_shard) {
    // Two-phase cross-shard handoff: park in the transfer mailbox, stamped
    // with the sender shard's clock; the owning shard drains at its next
    // epoch boundary (the drain is what marks the owner ready).
    std::lock_guard<std::mutex> lock(stripe_of(this));
    transfers_.emplace_back(std::move(msg), t_shard_now);
    transfer_count_.store(transfers_.size(), std::memory_order_release);
    return;
  }
  // Only the queue head is offered to when-clauses, so fireability changes
  // exactly when the delivery creates a new head.
  const bool new_head = inbox_.empty();
  inbox_.push_back(std::move(msg));
  if (new_head) owner_.mark_ready();
}

std::size_t InteractionPoint::drain_transfers(SimTime* watermark) {
  // Empty-mailbox fast path, lock-free: epoch boundaries are separated from
  // worker deliveries by the pool join, so a zero count really means empty.
  if (transfer_count_.load(std::memory_order_acquire) == 0) return 0;
  std::lock_guard<std::mutex> lock(stripe_of(this));
  const std::size_t n = transfers_.size();
  for (auto& [msg, sent_at] : transfers_) {
    if (watermark != nullptr && sent_at > *watermark) *watermark = sent_at;
    inbox_.push_back(std::move(msg));
  }
  transfers_.clear();
  transfer_count_.store(0, std::memory_order_release);
  if (n > 0) owner_.mark_ready();
  return n;
}

void InteractionPoint::clear() noexcept {
  inbox_.clear();
  owner_.mark_ready();  // the offered head (if any) is gone
}

bool InteractionPoint::has_pending_transfers() const {
  return transfer_count_.load(std::memory_order_acquire) != 0;
}

bool InteractionPoint::output(Interaction msg) {
  if (peer_ == nullptr)
    throw std::logic_error("output on unconnected interaction point '" +
                           name_ + "' of module '" + owner_.path() + "'");
  ++sent_;
  if (loss_probability_ > 0.0 && loss_rng_ != nullptr &&
      loss_rng_->chance(loss_probability_)) {
    ++dropped_;
    return false;
  }
  peer_->deliver(std::move(msg));
  return true;
}

Interaction InteractionPoint::pop() {
  if (inbox_.empty())
    throw std::logic_error("pop on empty interaction point '" + name_ + "'");
  Interaction msg = std::move(inbox_.front());
  inbox_.pop_front();
  // The next interaction (or none) is now the offered head; whichever of the
  // owner's when-clauses match has to be reconsidered.
  owner_.mark_ready();
  return msg;
}

void connect(InteractionPoint& a, InteractionPoint& b) {
  if (a.connected() || b.connected())
    throw std::logic_error("interaction point already connected: " +
                           (a.connected() ? a.name() : b.name()));
  if (&a == &b) throw std::logic_error("cannot connect IP to itself");
  a.attach_peer(&b);
  b.attach_peer(&a);
  if (Specification* spec = a.owner().specification())
    spec->note_topology_change();
  if (Specification* spec = b.owner().specification())
    spec->note_topology_change();
}

void disconnect(InteractionPoint& ip) noexcept {
  if (InteractionPoint* peer = ip.peer()) {
    peer->attach_peer(nullptr);
    ip.attach_peer(nullptr);
    if (Specification* spec = ip.owner().specification())
      spec->note_topology_change();
  }
}

}  // namespace mcam::estelle
