#include "estelle/interaction.hpp"

#include <stdexcept>

#include "estelle/module.hpp"

namespace mcam::estelle {

InteractionPoint::InteractionPoint(Module& owner, std::string name)
    : owner_(owner), name_(std::move(name)) {}

InteractionPoint::~InteractionPoint() { disconnect(*this); }

namespace {
thread_local OutputCapture* t_capture = nullptr;
}  // namespace

OutputCapture::~OutputCapture() {
  if (t_capture == this) t_capture = nullptr;
}

void OutputCapture::begin() {
  if (t_capture != nullptr)
    throw std::logic_error("nested OutputCapture on one thread");
  t_capture = this;
}

void OutputCapture::end() noexcept {
  if (t_capture == this) t_capture = nullptr;
}

void OutputCapture::commit() {
  for (auto& [ip, msg] : items_) ip->deliver(std::move(msg));
  items_.clear();
}

bool InteractionPoint::output(Interaction msg) {
  if (peer_ == nullptr)
    throw std::logic_error("output on unconnected interaction point '" +
                           name_ + "' of module '" + owner_.path() + "'");
  ++sent_;
  if (loss_probability_ > 0.0 && loss_rng_ != nullptr &&
      loss_rng_->chance(loss_probability_)) {
    ++dropped_;
    return false;
  }
  if (t_capture != nullptr) {
    t_capture->items_.emplace_back(peer_, std::move(msg));
    return true;
  }
  peer_->deliver(std::move(msg));
  return true;
}

Interaction InteractionPoint::pop() {
  if (inbox_.empty())
    throw std::logic_error("pop on empty interaction point '" + name_ + "'");
  Interaction msg = std::move(inbox_.front());
  inbox_.pop_front();
  return msg;
}

void connect(InteractionPoint& a, InteractionPoint& b) {
  if (a.connected() || b.connected())
    throw std::logic_error("interaction point already connected: " +
                           (a.connected() ? a.name() : b.name()));
  if (&a == &b) throw std::logic_error("cannot connect IP to itself");
  a.attach_peer(&b);
  b.attach_peer(&a);
}

void disconnect(InteractionPoint& ip) noexcept {
  if (InteractionPoint* peer = ip.peer()) {
    peer->attach_peer(nullptr);
    ip.attach_peer(nullptr);
  }
}

}  // namespace mcam::estelle
