#include "estelle/free_executor.hpp"

#include <algorithm>

#include "estelle/ready_set.hpp"
#include "estelle/sched.hpp"
#include "estelle/shard_round.hpp"

namespace mcam::estelle {

FreeRunningExecutor::FreeRunningExecutor(Specification& spec,
                                         const ExecutorConfig& cfg)
    : ShardedExecutor(spec, cfg) {}

FreeRunningExecutor::~FreeRunningExecutor() { end_session(); }

bool FreeRunningExecutor::free_runnable() const noexcept {
  // full_scan is inherently epoch-based (there is no ready set to fire
  // from), and an unproven spec may couple shards outside the mailbox
  // discipline — both take the epoch path. The pool must also host one
  // continuation per shard, or the neighbor gates could wait on a shard
  // whose task never got a worker.
  if (full_scan_) return false;
  if (analysis_ == nullptr || !analysis_->conflict_free()) return false;
  return effective_worker_width(workers_) >= analysis_->shard_count();
}

void FreeRunningExecutor::before_pool_resize() { end_session(); }

void FreeRunningExecutor::finalize_stats() { end_session(); }

void FreeRunningExecutor::decorate_report(RunReport& report) {
  ShardedExecutor::decorate_report(report);
  report.free_running = free_stats_;
}

// ---------------------------------------------------------------------------
// Run-thread session lifecycle

void FreeRunningExecutor::start_session() {
  const std::size_t nshards = shards_.size();
  ensure_pool_width(std::max<int>(1, static_cast<int>(nshards)));

  // Same reseed / ledger-ownership / routing policy as the epoch path.
  route_ready_ledger();

  // Absorb transfers left parked by a stopped previous run: their round
  // stamps belong to a dead numbering, and this session starts from a clean
  // mailbox state (the watermark rule still raises the receiving clock).
  for (std::size_t s = 0; s < nshards; ++s) {
    ShardState& shard = shards_[s];
    SimTime wm = shard.clock;
    for (Module* m : analysis_->shards()[s].modules)
      for (const auto& ip : m->ips()) ip->drain_transfers(&wm);
    if (wm > shard.clock) shard.clock = wm;
  }

  // (Re)wire the persistent slots; everything here is high-water sized so a
  // warmed executor restarts sessions without allocating.
  while (slots_.size() < nshards) slots_.push_back(std::make_unique<Slot>());
  std::size_t footprint = slots_.capacity();
  for (std::size_t s = 0; s < nshards; ++s) {
    Slot& slot = *slots_[s];
    slot.advertised.store(0, std::memory_order_relaxed);
    slot.completed = 0;
    slot.log_head.store(0, std::memory_order_relaxed);
    slot.log_tail.store(0, std::memory_order_relaxed);
    slot.state = SlotState::Running;
    slot.gate_target = -1;
    slot.gate_need = 0;
    slot.wake_pending = false;
    slot.neighbors.clear();
    slot.boundary.clear();
    // A full ring must always hold a drainable prefix of completed rounds,
    // so capacity strictly exceeds any single round's firing set (bounded
    // by the shard's module count).
    const std::size_t want_log =
        2 * analysis_->shards()[s].modules.size() + 64;
    if (slot.log.size() < want_log) slot.log.resize(want_log);
  }
  for (const CrossShardChannel& ch : analysis_->cross_shard_channels()) {
    Slot& a = *slots_[static_cast<std::size_t>(ch.shard_a)];
    Slot& b = *slots_[static_cast<std::size_t>(ch.shard_b)];
    if (std::find(a.neighbors.begin(), a.neighbors.end(), ch.shard_b) ==
        a.neighbors.end())
      a.neighbors.push_back(ch.shard_b);
    if (std::find(b.neighbors.begin(), b.neighbors.end(), ch.shard_a) ==
        b.neighbors.end())
      b.neighbors.push_back(ch.shard_a);
    a.boundary.push_back(ch.a);
    b.boundary.push_back(ch.b);
  }
  for (const auto& slot : slots_) {
    footprint += slot->log.capacity() + slot->neighbors.capacity() +
                 slot->boundary.capacity();
  }
  if (footprint != slot_footprint_seen_) {
    slot_footprint_seen_ = footprint;
    ++stats_.rounds_with_allocation;
  }

  session_topology_version_ = spec_.topology_version();
  session_base_rounds_ = 0;
  burst_all_passive_ = false;
  stop_ = false;
  stop_flag_.store(false, std::memory_order_release);
  topology_dirty_.store(false, std::memory_order_release);
  round_limit_.store(0, std::memory_order_release);
  session_deadline_ns_.store(run_deadline_.ns, std::memory_order_release);
  free_announce_.store(observer() != nullptr, std::memory_order_release);
  spec_.set_cross_shard_wake_sink(this);

  for (std::size_t s = 0; s < nshards; ++s) {
    // [this, s] fits std::function's inline storage: no allocation.
    const int id = static_cast<int>(s);
    pool_->submit(id, [this, id](int) { shard_main(id); });
  }
  session_active_ = true;
  pool_->launch();
}

std::uint64_t FreeRunningExecutor::end_session() {
  if (!session_active_) return 0;
  {
    std::lock_guard<std::mutex> lock(smu_);
    stop_ = true;
    stop_flag_.store(true, std::memory_order_release);
    wake_everyone_locked();
  }
  pool_->wait_idle();
  spec_.set_cross_shard_wake_sink(nullptr);
  std::uint64_t progressed = 0;
  {
    std::unique_lock<std::mutex> lock(smu_);
    merge_logs(lock, /*session_end=*/true);
    progressed = fold_locked();
  }
  session_active_ = false;
  stop_ = false;
  stop_flag_.store(false, std::memory_order_release);
  return progressed;
}

void FreeRunningExecutor::wake_everyone_locked() {
  for (const auto& slot : slots_) slot->cv.notify_all();
  gate_cv_.notify_all();
  run_cv_.notify_all();
}

void FreeRunningExecutor::route_ledger_locked() {
  // A shard rewoken at a burst boundary resumes at the CURRENT global round
  // (everything up to session_base_rounds_ is announced): the between-burst
  // mutation is visible from the next round on, exactly where the
  // sequential scheduler would fire it.
  const auto wake_at_watermark = [this](Slot& slot) {
    if (slot.state != SlotState::Passive || slot.wake_pending) return;
    if (session_base_rounds_ > slot.completed) {
      slot.completed = session_base_rounds_;
      slot.advertised.store(slot.completed);
      if (gate_waiter_count_.load(std::memory_order_relaxed) > 0)
        gate_cv_.notify_all();
    }
    slot.wake_pending = true;
    slot.cv.notify_all();
  };
  spec_.ready_ledger().drain([this, &wake_at_watermark](Module& m) {
    const int s = m.shard();
    if (s < 0 || s >= static_cast<int>(shards_.size())) return;
    shards_[static_cast<std::size_t>(s)].ready.mark(m);
    wake_at_watermark(*slots_[static_cast<std::size_t>(s)]);
  });
  // Re-examine parked shards that still hold sticky-guard modules in their
  // ready lists: an opaque guard may read state a between-burst hook (stop
  // predicate, observer) just changed, and only a re-evaluation can see it —
  // the same conservative rule that keeps dirty-set scheduling exact.
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    if (shards_[s].ready.has_ready()) wake_at_watermark(*slots_[s]);
  }
}

bool FreeRunningExecutor::all_blocked_locked() const {
  const std::uint64_t limit = round_limit_.load(std::memory_order_relaxed);
  const std::int64_t deadline =
      session_deadline_ns_.load(std::memory_order_relaxed);
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    const Slot& slot = *slots_[s];
    switch (slot.state) {
      case SlotState::Running:
        return false;
      case SlotState::GateWait:
        // A satisfied gate means the shard is waking — count it as running.
        if (slots_[static_cast<std::size_t>(slot.gate_target)]
                ->advertised.load(std::memory_order_relaxed) >= slot.gate_need)
          return false;
        break;
      case SlotState::LogFull: {
        const std::uint64_t depth =
            slot.log_tail.load(std::memory_order_relaxed) -
            slot.log_head.load(std::memory_order_relaxed);
        if (depth < slot.log.size()) return false;  // drained: about to wake
        break;
      }
      case SlotState::LimitParked:
        if (limit >= slot.completed + 1) return false;
        break;
      case SlotState::DeadlineParked:
        if (shards_[s].clock.ns < deadline) return false;
        break;
      case SlotState::Passive:
        if (slot.wake_pending) return false;
        break;
    }
  }
  return true;
}

bool FreeRunningExecutor::all_passive_locked() const {
  for (const auto& slot : slots_)
    if (slot->state != SlotState::Passive) return false;
  return true;
}

std::uint64_t FreeRunningExecutor::merge_logs(
    std::unique_lock<std::mutex>& lock, bool session_end) {
  // Watermark: rounds <= safe are closed — no still-active shard can add an
  // entry at or below it. A stable-passive shard produces nothing until
  // rewoken, and because its neighbors gate on its finite advertised round,
  // every wake resumes it strictly past the rounds merged while it slept —
  // so it does not bound the watermark. Once a wake is pending its next
  // entries land just past its own completed round, which caps the merge
  // until it catches up. Deadline-pinned shards produce nothing more this
  // run.
  std::uint64_t safe = kPassiveRound;
  if (!session_end) {
    for (const auto& slot : slots_) {
      if (slot->state == SlotState::DeadlineParked) continue;
      if (slot->state == SlotState::Passive && !slot->wake_pending) continue;
      safe = std::min(safe, slot->completed);
    }
  }

  // Phase 1 (locked): assemble the announce-able entries in global
  // (round, shard id) order — the sequential scheduler's document order
  // across system modules — WITHOUT consuming them. The per-slot sequence
  // is the ring followed by the abort-overflow (produced strictly later,
  // rounds monotone), the latter only ever drained at session end.
  const std::size_t n = slots_.size();
  merge_cursor_.assign(n, 0);
  merge_ovf_cursor_.assign(n, 0);
  merge_scratch_.clear();
  for (std::size_t i = 0; i < n; ++i)
    merge_cursor_[i] = slots_[i]->log_head.load(std::memory_order_relaxed);
  const auto peek = [&](std::size_t i) -> const FiredEntry* {
    Slot& slot = *slots_[i];
    if (merge_cursor_[i] != slot.log_tail.load(std::memory_order_acquire))
      return &slot.log[merge_cursor_[i] % slot.log.size()];
    if (session_end && merge_ovf_cursor_[i] < slot.log_overflow.size())
      return &slot.log_overflow[merge_ovf_cursor_[i]];
    return nullptr;
  };
  for (;;) {
    std::uint64_t r = kPassiveRound;
    for (std::size_t i = 0; i < n; ++i)
      if (const FiredEntry* e = peek(i)) r = std::min(r, e->round);
    if (r == kPassiveRound || r > safe) break;
    for (std::size_t i = 0; i < n; ++i) {
      while (const FiredEntry* e = peek(i)) {
        if (e->round != r) break;
        merge_scratch_.push_back(*e);
        if (merge_cursor_[i] !=
            slots_[i]->log_tail.load(std::memory_order_relaxed))
          ++merge_cursor_[i];
        else
          ++merge_ovf_cursor_[i];
      }
    }
  }
  if (merge_scratch_.empty()) return 0;

  // Phase 2 (unlocked): deliver to observers without holding the session
  // lock — a slow hook must not block shards trying to park or gate, and
  // no executor lock is held across user code (same hygiene as the other
  // backends). Every parked shard stays parked meanwhile: nothing here
  // moves an advertised round, a ring head or a wake flag, so no wait
  // predicate can turn true before phase 3 commits.
  if (RunObserver* obs = observer()) {
    lock.unlock();
    for (const FiredEntry& e : merge_scratch_)
      obs->on_fire(*e.candidate.module, *e.candidate.transition, e.at);
    lock.lock();
  }

  // Phase 3 (locked): consume what was announced.
  for (std::size_t i = 0; i < n; ++i) {
    slots_[i]->log_head.store(merge_cursor_[i], std::memory_order_release);
    if (session_end) slots_[i]->log_overflow.clear();
  }
  return merge_scratch_.size();
}

bool FreeRunningExecutor::resolve_idle_gates_locked() {
  // The conservative null-message service: a shard gate-blocked on a
  // stable-passive neighbor cannot make progress on its own (the sleeper
  // will not advance until a message wakes it, and the sleeper's neighbors
  // are gated on ITS round). The run thread advances the sleeper's round
  // counter through rounds that are provably empty for it: no message can
  // ever reach shard P stamped below
  //     L(P) = min over channel-neighbors M of (bound(M) + 1)
  // where bound(M) is M's advertised round for live shards and the
  // fixpoint L(M) for stable-passive ones (a sleeper's first post-wake
  // round). Rounds up to L(P)-1 are therefore empty at P exactly as they
  // are under the sequential scheduler, and skipping them is trace-neutral.
  const std::size_t n = slots_.size();
  std::vector<std::uint64_t>& bound = gate_bound_scratch_;
  bound.assign(n, 0);
  std::vector<char>& sleeper = gate_sleeper_scratch_;
  sleeper.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const Slot& slot = *slots_[i];
    const bool stable_passive =
        slot.state == SlotState::Passive && !slot.wake_pending;
    sleeper[i] = stable_passive ? 1 : 0;
    bound[i] = stable_passive ? kAllRounds
                              : slot.advertised.load(std::memory_order_relaxed);
  }
  // Relax downward to the fixpoint (graphs are tiny — a handful of shards).
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (!sleeper[i]) continue;
      std::uint64_t lb = kAllRounds;
      for (int nb : slots_[i]->neighbors) {
        const std::uint64_t b = bound[static_cast<std::size_t>(nb)];
        if (b != kAllRounds) lb = std::min(lb, b + 1);
      }
      if (lb < bound[i]) {
        bound[i] = lb;
        changed = true;
      }
    }
  }

  // Bump only sleepers someone is actually gate-blocked on; an unblocking
  // bump never moves a shard past the release limit or into a round a live
  // message could still target.
  const std::uint64_t limit = round_limit_.load(std::memory_order_relaxed);
  bool bumped = false;
  for (const auto& waiter : slots_) {
    if (waiter->state != SlotState::GateWait) continue;
    const auto t = static_cast<std::size_t>(waiter->gate_target);
    Slot& target = *slots_[t];
    if (!sleeper[t]) continue;
    if (target.advertised.load(std::memory_order_relaxed) >= waiter->gate_need)
      continue;  // already satisfied; the waiter is waking
    if (bound[t] == kAllRounds) continue;  // all-passive component: quiescent
    const std::uint64_t to = std::min(bound[t] - 1, limit);
    if (to > target.completed) {
      target.completed = to;
      target.advertised.store(to);
      bumped = true;
    }
  }
  if (bumped) gate_cv_.notify_all();
  return bumped;
}

bool FreeRunningExecutor::wake_unfilled_logs_locked() {
  bool woke = false;
  for (const auto& slot : slots_) {
    if (slot->state != SlotState::LogFull) continue;
    const std::uint64_t depth = slot->log_tail.load(std::memory_order_relaxed) -
                                slot->log_head.load(std::memory_order_relaxed);
    if (depth < slot->log.size()) {
      slot->cv.notify_all();
      woke = true;
    }
  }
  return woke;
}

std::uint64_t FreeRunningExecutor::fold_locked() {
  std::uint64_t max_completed = session_base_rounds_;
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    Slot& slot = *slots_[s];
    stats_.fired += slot.fired;
    stats_.busy += slot.busy;
    stats_.sched_time += slot.sched;
    stats_.rounds += slot.rounds;
    stats_.guards_examined += slot.guards;
    stats_.candidates_considered += slot.cands;
    stats_.rounds_with_allocation += slot.alloc_rounds;
    free_stats_.parks += slot.parks;
    free_stats_.wakes += slot.wakes;
    free_stats_.log_high_water =
        std::max(free_stats_.log_high_water, slot.log_high_water);
    slot.fired = 0;
    slot.busy = SimTime{};
    slot.sched = SimTime{};
    slot.rounds = 0;
    slot.guards = 0;
    slot.cands = 0;
    slot.alloc_rounds = 0;
    slot.parks = 0;
    slot.wakes = 0;
    max_completed = std::max(max_completed, slot.completed);
    if (shards_[s].clock > now_) now_ = shards_[s].clock;
  }
  burst_all_passive_ = all_passive_locked();
  const std::uint64_t progressed = max_completed - session_base_rounds_;
  session_base_rounds_ = max_completed;
  return progressed;
}

std::uint64_t FreeRunningExecutor::run_burst(std::uint64_t limit) {
  {
    std::lock_guard<std::mutex> lock(smu_);
    // Between-burst hooks (stop predicates, observers) ran on this thread
    // with every shard parked; route whatever they dirtied before releasing.
    route_ledger_locked();
    session_deadline_ns_.store(run_deadline_.ns, std::memory_order_release);
    free_announce_.store(observer() != nullptr, std::memory_order_release);
    round_limit_.store(limit, std::memory_order_release);
    for (const auto& slot : slots_) slot->cv.notify_all();
  }
  std::unique_lock<std::mutex> lock(smu_);
  for (;;) {
    run_cv_.wait(lock, [&] { return stop_ || all_blocked_locked(); });
    if (stop_) return 0;  // abort: end_session finishes the accounting
    if (resolve_idle_gates_locked()) continue;  // null-message service
    merge_logs(lock, /*session_end=*/false);
    if (wake_unfilled_logs_locked()) continue;  // back-pressured shards resume
    break;  // the all-parked rendezvous
  }
  return fold_locked();
}

bool FreeRunningExecutor::step() {
  // A topology change invalidates shard assignment and round numbering;
  // rebuild from a clean session.
  if (session_active_ &&
      (topology_dirty_.load(std::memory_order_acquire) ||
       spec_.topology_version() != session_topology_version_)) {
    const std::uint64_t progressed = end_session();
    if (session_error_) {
      auto error = session_error_;
      session_error_ = nullptr;
      std::rethrow_exception(error);
    }
    if (progressed > 0) {
      last_step_rounds_ = progressed;
      return true;  // account what ran; the next step() restarts fresh
    }
  }

  ensure_analysis();

  if (!free_runnable()) {
    end_session();
    ++free_stats_.fallback_rounds;
    return ShardedExecutor::step();
  }

  if (!session_active_) start_session();

  // Exact-cutoff pacing: shards may run ahead only to the round the tightest
  // step budget allows; a predicate stop tightens the burst to one round so
  // it is evaluated between rounds on a quiesced world.
  const std::uint64_t per_run = std::min(run_step_limit_, step_limit_);
  std::uint64_t headroom =
      per_run == ~0ull ? ~0ull - session_base_rounds_ - 1 : per_run - run_steps_;
  if (run_has_predicate_) headroom = std::min<std::uint64_t>(headroom, 1);
  const std::uint64_t limit = session_base_rounds_ + headroom;

  std::uint64_t progressed = run_burst(limit);
  const bool aborted = stop_flag_.load(std::memory_order_acquire);
  if (aborted) {
    progressed += end_session();
    if (session_error_) {
      auto error = session_error_;
      session_error_ = nullptr;
      std::rethrow_exception(error);
    }
    // Topology restart: report the rounds that ran; the next step() rebuilds.
    last_step_rounds_ = std::max<std::uint64_t>(progressed, 1);
    return true;
  }

  if (progressed == 0) {
    if (burst_all_passive_) {
      end_session();
      return false;  // quiescent
    }
    // No progress but not passive: every shard is pinned at the run deadline
    // — now_ has reached it, and the deadline stop condition ends the run.
    last_step_rounds_ = 0;
    return true;
  }
  last_step_rounds_ = progressed;
  return true;
}

// ---------------------------------------------------------------------------
// Shard continuation (worker threads)

void FreeRunningExecutor::on_cross_shard_delivery(
    int shard, std::uint64_t /*sender_round*/) noexcept {
  if (shard < 0 || static_cast<std::size_t>(shard) >= slots_.size()) return;
  Slot& slot = *slots_[static_cast<std::size_t>(shard)];
  std::lock_guard<std::mutex> lock(smu_);
  if (slot.state != SlotState::Passive) return;  // the next drain sees it
  // Wake only — never advance the round counter here: with several senders
  // the EARLIEST pending stamp decides the resume round, and the shard's
  // own loop recovers it exactly (drain filter + the min_future leap). From
  // this instant the shard also bounds the merge watermark again (see
  // merge_logs), so nothing past its resume point gets announced
  // before its entries exist.
  if (!slot.wake_pending) {
    slot.wake_pending = true;
    slot.cv.notify_all();
  }
}

void FreeRunningExecutor::complete_round(Slot& slot, std::uint64_t round) {
  slot.completed = round;
  slot.advertised.store(round);  // seq_cst pairs with the gate registration
  if (gate_waiter_count_.load() > 0) {
    std::lock_guard<std::mutex> lock(smu_);
    gate_cv_.notify_all();
  }
}

bool FreeRunningExecutor::gate_wait(Slot& slot, Slot& target, int target_id,
                                    std::uint64_t need) {
  std::unique_lock<std::mutex> lock(smu_);
  if (stop_) return false;
  slot.state = SlotState::GateWait;
  slot.gate_target = target_id;
  slot.gate_need = need;
  ++slot.parks;
  gate_waiter_count_.fetch_add(1);  // seq_cst pairs with complete_round
  run_cv_.notify_all();
  gate_cv_.wait(lock, [&] {
    return stop_ || target.advertised.load() >= need;
  });
  gate_waiter_count_.fetch_sub(1);
  slot.state = SlotState::Running;
  return !stop_;
}

template <typename Pred>
bool FreeRunningExecutor::park_until(Slot& slot, SlotState why, Pred ready) {
  std::unique_lock<std::mutex> lock(smu_);
  if (stop_) return false;
  if (ready()) return true;  // a release raced ahead of the park
  slot.state = why;
  ++slot.parks;
  run_cv_.notify_all();
  slot.cv.wait(lock, [&] { return stop_ || ready(); });
  slot.state = SlotState::Running;
  return !stop_;
}

bool FreeRunningExecutor::passive_park(Slot& slot) {
  std::unique_lock<std::mutex> lock(smu_);
  if (stop_) return false;
  if (slot.wake_pending) {
    slot.wake_pending = false;
    return true;
  }
  // Last-instant recheck under the session lock: a delivery that raced the
  // drain has already published its mailbox count (the hook runs after the
  // store), so an empty check here really means nothing is pending.
  for (InteractionPoint* ip : slot.boundary)
    if (ip->has_pending_transfers()) return true;
  slot.state = SlotState::Passive;
  ++slot.parks;
  run_cv_.notify_all();
  slot.cv.wait(lock, [&] { return stop_ || slot.wake_pending; });
  slot.wake_pending = false;
  slot.state = SlotState::Running;
  // A bump (null-message service or burst wake) may have moved completed
  // while we slept; republish — and tell gate waiters, like every other
  // advertised movement, or a satisfied waiter sleeps forever.
  slot.advertised.store(slot.completed);
  if (gate_waiter_count_.load(std::memory_order_relaxed) > 0)
    gate_cv_.notify_all();
  ++slot.wakes;
  return !stop_;
}

void FreeRunningExecutor::log_push(Slot& slot, const FiredEntry& entry) {
  const std::size_t cap = slot.log.size();
  for (;;) {
    const std::uint64_t head = slot.log_head.load(std::memory_order_acquire);
    const std::uint64_t tail = slot.log_tail.load(std::memory_order_relaxed);
    if (tail - head < cap) {
      slot.log[tail % cap] = entry;
      slot.log_tail.store(tail + 1, std::memory_order_release);
      slot.log_high_water = std::max(slot.log_high_water, tail + 1 - head);
      return;
    }
    std::unique_lock<std::mutex> lock(smu_);
    if (slot.log_head.load(std::memory_order_acquire) != head) continue;
    if (stop_) {
      // Session aborting with the merger gone: spill to the unbounded
      // overflow (consumed by end_session's final merge) rather than drop
      // an announcement the fired counters will include.
      slot.log_overflow.push_back(entry);
      return;
    }
    slot.state = SlotState::LogFull;
    ++slot.parks;
    run_cv_.notify_all();
    slot.cv.wait(lock, [&] {
      return stop_ || slot.log_head.load(std::memory_order_acquire) != head;
    });
    slot.state = SlotState::Running;
    if (stop_) {
      slot.log_overflow.push_back(entry);
      return;
    }
  }
}

void FreeRunningExecutor::shard_loop(int s, Slot& slot, ShardState& shard,
                                     const ShardInfo& info) {
  for (;;) {
    if (stop_flag_.load(std::memory_order_acquire)) return;
    const std::uint64_t r = slot.completed + 1;

    // Pacing gates: released round limit, then the run deadline.
    if (round_limit_.load(std::memory_order_acquire) < r) {
      if (!park_until(slot, SlotState::LimitParked, [&] {
            return round_limit_.load(std::memory_order_relaxed) >=
                   slot.completed + 1;
          }))
        return;
      continue;  // completed may have moved (wake hook) — recompute r
    }
    if (shard.clock.ns >=
        session_deadline_ns_.load(std::memory_order_relaxed)) {
      if (!park_until(slot, SlotState::DeadlineParked, [&] {
            return shard.clock.ns <
                   session_deadline_ns_.load(std::memory_order_relaxed);
          }))
        return;
      continue;
    }

    // Neighbor gate: round r may run once every channel-sharing shard has
    // completed r-1, so every message sent before round r is already parked
    // in our mailboxes (their completion bump publishes their deliveries).
    bool stopped = false;
    for (int nb : slot.neighbors) {
      Slot& target = *slots_[static_cast<std::size_t>(nb)];
      if (target.advertised.load() >= r - 1) continue;  // seq_cst fast path
      if (!gate_wait(slot, target, nb, r - 1)) {
        stopped = true;
        break;
      }
    }
    if (stopped) return;

    // The shared continuation engine (shard_round.hpp): drain <= r-1,
    // collect / leap / park, fire with revalidation, log announcements into
    // this slot's SPSC ring. min_future remembers the earliest later-stamped
    // parked arrival so an idle shard can leap to it below.
    std::uint64_t min_future = kAllRounds;
    ContinuationDelta delta;
    const ReadyScope::RoundAction action = continuation_round(
        s, shard, slot.boundary, r,
        SimTime{session_deadline_ns_.load(std::memory_order_relaxed)},
        info.system_module, free_announce_.load(std::memory_order_relaxed),
        delta, &min_future,
        [this, &slot, r](const FiringCandidate& c, SimTime at) {
          log_push(slot, {c, at, r});
        });
    slot.rounds += delta.rounds;
    slot.fired += delta.fired;
    slot.guards += delta.guards;
    slot.cands += delta.cands;
    slot.alloc_rounds += delta.alloc_rounds;
    slot.busy += delta.busy;
    slot.sched += delta.sched;

    switch (action) {
      case ReadyScope::RoundAction::Fire:
        complete_round(slot, r);
        break;
      case ReadyScope::RoundAction::Advance:
        // Empty round leaping to the next delay deadline — counts as a
        // global round (the sequential scheduler's idle round).
        complete_round(slot, r);
        break;
      case ReadyScope::RoundAction::Park: {
        if (min_future != kAllRounds) {
          // Nothing now, but a future-stamped arrival is parked: skip the
          // empty rounds (sequential spent them on other shards) and resume
          // at the arrival round — clamped to the release limit AND to every
          // neighbor's progress (a shard at round a can still send stamps as
          // low as a+1, and those must be consumed at a+2, so skipping past
          // a+1 would replay them late).
          std::uint64_t jump = std::min(
              min_future, round_limit_.load(std::memory_order_relaxed));
          for (int nb : slot.neighbors)
            jump = std::min(
                jump,
                slots_[static_cast<std::size_t>(nb)]->advertised.load() + 1);
          if (jump > slot.completed) complete_round(slot, jump);
          continue;
        }
        if (!passive_park(slot)) return;
        break;
      }
    }

    // Structural changes (a firing created modules or channels) invalidate
    // shard assignment and the conflict proof: abort the session; the run
    // thread rebuilds the analysis and restarts.
    if (spec_.topology_version() != session_topology_version_) {
      std::lock_guard<std::mutex> lock(smu_);
      stop_ = true;
      stop_flag_.store(true, std::memory_order_release);
      topology_dirty_.store(true, std::memory_order_release);
      wake_everyone_locked();
      return;
    }
  }
}

void FreeRunningExecutor::shard_main(int s) {
  Slot& slot = *slots_[static_cast<std::size_t>(s)];
  ShardState& shard = shards_[static_cast<std::size_t>(s)];
  const ShardInfo& info = analysis_->shards()[static_cast<std::size_t>(s)];
  // Route every dirty mark this thread produces straight into the shard's
  // own ready scope — the lock-free dirty tracking of the round hot path.
  LocalReadyScopeBinding binding(shard.ready, s);
  try {
    shard_loop(s, slot, shard, info);
  } catch (...) {
    // Surface worker-side failures (verify_ready_set divergence, a throwing
    // action) through the run thread instead of terminating the process.
    std::lock_guard<std::mutex> lock(smu_);
    if (!session_error_) session_error_ = std::current_exception();
    stop_ = true;
    stop_flag_.store(true, std::memory_order_release);
    wake_everyone_locked();
  }
}

}  // namespace mcam::estelle
