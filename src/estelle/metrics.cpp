#include "estelle/metrics.hpp"

#include <algorithm>

#include "common/strf.hpp"
#include "estelle/module.hpp"

namespace mcam::estelle {

namespace {

std::size_t bucket_of(common::SimTime gap) noexcept {
  const std::int64_t us = gap.ns / 1000;
  std::size_t b = 0;
  for (std::int64_t v = us; v > 1 && b + 1 < MetricsObserver::kHistogramBuckets;
       v >>= 1)
    ++b;
  return b;
}

}  // namespace

void MetricsObserver::on_fire(const Module& module, const Transition&,
                              common::SimTime now) {
  PerModule& m = modules_[module.instance_id()];
  if (m.fired == 0) m.path = module.path();
  if (m.fired > 0) {
    const common::SimTime gap = now - m.last_fire;
    ++histogram_[bucket_of(gap)];
    m.gap_sum += gap;
    ++m.gaps;
  }
  m.last_fire = now;
  ++m.fired;
  ++fired_;
}

void MetricsObserver::on_report(Executor&, RunReport& report) {
  report.module_metrics = module_metrics();
  report.firing_gap_histogram = histogram_;
  // The scheduler fills the per-run hot-path counters before observers see
  // the report; retain them so a persistent observer carries the cumulative
  // picture across the many short runs a client facade pumps.
  guards_examined_ += report.guards_examined;
  candidates_considered_ += report.candidates_considered;
  rounds_with_allocation_ += report.rounds_with_allocation;
  if (report.transport.frames_sent != 0 ||
      report.transport.frames_received != 0 ||
      report.transport.handshake_retries != 0 ||
      report.transport.node_workers != 0)
    transport_ = report.transport;
}

std::uint64_t MetricsObserver::fired_by(const std::string& module_path) const {
  for (const auto& [id, m] : modules_)
    if (m.path == module_path) return m.fired;
  return 0;
}

std::vector<ModuleFiringMetrics> MetricsObserver::module_metrics() const {
  std::vector<ModuleFiringMetrics> out;
  out.reserve(modules_.size());
  for (const auto& [id, m] : modules_) {
    ModuleFiringMetrics metrics;
    metrics.module_path = m.path;
    metrics.fired = m.fired;
    if (m.gaps > 0)
      metrics.mean_gap =
          common::SimTime{m.gap_sum.ns / static_cast<std::int64_t>(m.gaps)};
    out.push_back(std::move(metrics));
  }
  std::sort(out.begin(), out.end(),
            [](const ModuleFiringMetrics& a, const ModuleFiringMetrics& b) {
              return a.fired != b.fired ? a.fired > b.fired
                                        : a.module_path < b.module_path;
            });
  return out;
}

std::string MetricsObserver::to_string(std::size_t top) const {
  std::string out =
      common::strf("metrics: %llu firings across %zu modules\n",
                   static_cast<unsigned long long>(fired_), modules_.size());
  const std::vector<ModuleFiringMetrics> rows = module_metrics();
  for (std::size_t i = 0; i < rows.size() && i < top; ++i)
    out += common::strf("  %-48s %8llu fired  mean gap %10.3f us\n",
                        rows[i].module_path.c_str(),
                        static_cast<unsigned long long>(rows[i].fired),
                        rows[i].mean_gap.micros());
  if (rows.size() > top)
    out += common::strf("  ... %zu more modules\n", rows.size() - top);
  out += common::strf(
      "  hot path: %llu guards examined (%.2f per firing), %llu candidates, "
      "%llu allocating rounds\n",
      static_cast<unsigned long long>(guards_examined_), guards_per_firing(),
      static_cast<unsigned long long>(candidates_considered_),
      static_cast<unsigned long long>(rounds_with_allocation_));
  if (transport_.frames_sent != 0 || transport_.frames_received != 0 ||
      transport_.handshake_retries != 0) {
    out += common::strf(
        "  transport: %llu frames out / %llu in, %llu bytes out / %llu in\n",
        static_cast<unsigned long long>(transport_.frames_sent),
        static_cast<unsigned long long>(transport_.frames_received),
        static_cast<unsigned long long>(transport_.bytes_sent),
        static_cast<unsigned long long>(transport_.bytes_received));
    out += common::strf(
        "    null rounds serviced %llu, handshake retries %llu, send-queue "
        "high water %llu\n",
        static_cast<unsigned long long>(transport_.null_rounds_serviced),
        static_cast<unsigned long long>(transport_.handshake_retries),
        static_cast<unsigned long long>(transport_.send_queue_high_water));
    out += common::strf(
        "    batching: %llu syscalls, %llu transfers batched, largest write "
        "%llu bytes, encode-buffer reuses %llu\n",
        static_cast<unsigned long long>(transport_.syscalls),
        static_cast<unsigned long long>(transport_.frames_batched),
        static_cast<unsigned long long>(transport_.bytes_per_write),
        static_cast<unsigned long long>(transport_.encode_pool_reuse));
    if (transport_.reconnects != 0 || transport_.reconnect_attempts != 0 ||
        transport_.frames_replayed != 0 ||
        transport_.dup_frames_dropped != 0 || transport_.heartbeats != 0 ||
        transport_.faults_injected != 0)
      out += common::strf(
          "    session: %llu reconnects (%llu attempts), %llu frames "
          "replayed, %llu duplicates dropped, %llu heartbeats, %llu faults "
          "injected\n",
          static_cast<unsigned long long>(transport_.reconnects),
          static_cast<unsigned long long>(transport_.reconnect_attempts),
          static_cast<unsigned long long>(transport_.frames_replayed),
          static_cast<unsigned long long>(transport_.dup_frames_dropped),
          static_cast<unsigned long long>(transport_.heartbeats),
          static_cast<unsigned long long>(transport_.faults_injected));
  }
  // Outside the transport block: a single-node parallel world has no
  // transport frames but still reports its in-node dispatch.
  if (transport_.node_workers != 0)
    out += common::strf(
        "  parallel: %llu workers/node, %llu node-parallel rounds, %llu "
        "overlapped transport polls\n",
        static_cast<unsigned long long>(transport_.node_workers),
        static_cast<unsigned long long>(transport_.parallel_shard_rounds),
        static_cast<unsigned long long>(transport_.io_overlap_polls));
  out += "  firing-gap histogram (us, log2 buckets):\n";
  for (std::size_t b = 0; b < histogram_.size(); ++b) {
    if (histogram_[b] == 0) continue;
    out += common::strf("    [%8lld, %8lld) %8llu\n",
                        static_cast<long long>(b == 0 ? 0 : (1ll << b)),
                        static_cast<long long>(1ll << (b + 1)),
                        static_cast<unsigned long long>(histogram_[b]));
  }
  return out;
}

void MetricsObserver::clear() {
  modules_.clear();
  std::fill(histogram_.begin(), histogram_.end(), 0);
  fired_ = 0;
  guards_examined_ = 0;
  candidates_considered_ = 0;
  rounds_with_allocation_ = 0;
  transport_ = TransportStats{};
}

}  // namespace mcam::estelle
