// Estelle-subset front end ("the code generator").
//
// The paper derives its implementation from Estelle text via a modified
// Pet/Dingo generator (§4.2). Shipping a full ISO 9074 compiler is out of
// scope (DESIGN.md §2); instead this module demonstrates the pipeline's
// essential step — specification text in, executable transition table out —
// for a declarative subset:
//
//   module <Name> <attribute>;
//   ip <name>;                      -- interaction points
//   state <S1>, <S2>, ...;          -- first state is initial
//   kind <K1>, <K2>, ...;           -- interaction kinds on the channels
//   trans <name> from <S> [when <ip>.<kind>] [delay <n>us]
//         [priority <p>] [cost <n>us] [to <S>];
//
// parse() yields a MachineSpec; instantiate() materializes it onto a live
// Module, binding actions by transition name. Unbound transitions get a
// no-op action, so a parsed machine is immediately runnable for validation —
// exactly the rapid-prototyping use the paper describes.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "estelle/module.hpp"

namespace mcam::estelle::codegen {

struct TransitionSpec {
  std::string name;
  std::string from_state;
  std::string to_state;   // empty = no change
  std::string ip;         // empty = spontaneous
  std::string kind;       // empty with ip set = any kind
  int priority = 0;
  std::int64_t delay_us = 0;
  std::int64_t cost_us = 10;
};

struct MachineSpec {
  std::string module_name;
  Attribute attribute = Attribute::Process;
  std::vector<std::string> ips;
  std::vector<std::string> states;  // states[0] is initial
  std::vector<std::string> kinds;
  std::vector<TransitionSpec> transitions;

  [[nodiscard]] int state_id(const std::string& name) const;
  [[nodiscard]] int kind_id(const std::string& name) const;
};

enum CodegenError : int {
  kSyntax = 2001,
  kUnknownSymbol = 2002,
};

/// Parse one module specification.
common::Result<MachineSpec> parse(std::string_view text);

/// Action bindings by transition name (the "hand-coded parts" of §4.3).
using ActionMap =
    std::map<std::string, std::function<void(Module&, const Interaction*)>>;

/// Materialize the machine onto `target`: declares IPs, sets the initial
/// state, and registers every transition (table-driven dispatch). Actions
/// not present in `actions` become no-ops. Returns names of the IPs created
/// so the caller can connect channels.
common::Status instantiate(const MachineSpec& spec, Module& target,
                           const ActionMap& actions = {});

/// Emit a C++-like source rendering of the transition table (what the real
/// generator would write to disk) — used for documentation and golden tests.
std::string render_cpp(const MachineSpec& spec);

}  // namespace mcam::estelle::codegen
