#include "estelle/shard_executor.hpp"

#include <algorithm>

#include "estelle/sched.hpp"

namespace mcam::estelle {

ShardedExecutor::ShardedExecutor(Specification& spec,
                                 const ExecutorConfig& cfg)
    : ExecutorBase(spec, cfg.max_steps),
      workers_(cfg.threads),
      sched_per_transition_(cfg.sched_per_transition),
      scan_per_guard_(cfg.scan_per_guard),
      full_scan_(cfg.full_scan),
      verify_(cfg.verify_ready_set) {}

int ShardedExecutor::unit_count() const noexcept {
  if (pool_) return pool_->worker_count();
  // Apply the shard-count cap as soon as the analysis exists, so the value
  // is stable from the first round on (before any analysis it can only
  // report the uncapped width).
  return analysis_ ? effective_workers() : resolve_worker_count(workers_);
}

void ShardedExecutor::ensure_analysis() {
  if (!analysis_) {
    analysis_ = std::make_unique<ConflictAnalysis>(spec_);
    // The system-module population is frozen (R6), so the shard vector is
    // sized exactly once; refreshes change subtree membership only.
    shards_.resize(static_cast<std::size_t>(analysis_->shard_count()));
    for (std::size_t s = 0; s < shards_.size(); ++s)
      shards_[s].owner = static_cast<int>(s);
  } else {
    analysis_->refresh();
  }
}

int ShardedExecutor::effective_workers() const noexcept {
  // Stealing moves whole shards, so workers beyond the shard count could
  // never be busy — cap the width there.
  return std::clamp(effective_worker_width(workers_), 1,
                    std::max(1, analysis_->shard_count()));
}

WorkerPool& ShardedExecutor::ensure_pool_width(int want) {
  if (!pool_ || pool_->worker_count() != want) {
    // Quiesce first: a free-running session still has continuation tasks
    // parked inside the old pool, and destroying it would join on them
    // forever (the stranded-continuation bug this hook fixes).
    before_pool_resize();
    pool_ = std::make_unique<WorkerPool>(want);
  }
  return *pool_;
}

void ShardedExecutor::route_ready_ledger() {
  // Route dirty modules to their shards' ready sets, reseeding wholesale
  // when the topology moved, another consumer drained the ledger before us,
  // or this is the first use. Shared by the epoch path (every epoch) and
  // the free-running path (every session start), so the invalidation rules
  // cannot diverge between them.
  ReadyLedger& ledger = spec_.ready_ledger();
  const bool owner_changed = ledger.acquire(this);
  if (!seeded_ || owner_changed || seen_version_ != spec_.topology_version()) {
    reseed_ready();
  } else {
    ledger.drain([this](Module& m) {
      const int s = m.shard();
      if (s >= 0 && s < static_cast<int>(shards_.size()))
        shards_[static_cast<std::size_t>(s)].ready.mark(m);
    });
  }
}

void ShardedExecutor::reseed_ready() {
  seeded_ = true;
  seen_version_ = spec_.topology_version();
  // Queued ledger entries may point at destroyed modules; forget them
  // without looking, then rebuild from the live tree.
  spec_.ready_ledger().clear_unsafe();
  std::uint32_t preorder = 0;
  spec_.root().for_each(
      [&](Module& m) { ReadyScope::reset_module(m, preorder++); });
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].ready.clear();
    for (Module* m : analysis_->shards()[s].modules) shards_[s].ready.mark(*m);
  }
}

std::size_t ShardedExecutor::collect_epoch() {
  // Phase 1 of the two-phase mailbox, for every shard first: accept
  // everything other shards sent since its last round, raising the clock to
  // the watermark so no message is processed "before" it was sent. Each
  // accepted arrival marks its module in the ready ledger, so the drain
  // below routes it into the owning shard's ready set this same epoch.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    ShardState& shard = shards_[s];
    const ShardInfo& info = analysis_->shards()[s];
    SimTime watermark = shard.clock;
    for (Module* m : info.modules)
      for (const auto& ip : m->ips()) ip->drain_transfers(&watermark);
    if (watermark > shard.clock) shard.clock = watermark;
    shard.epoch_busy = SimTime{};
    shard.epoch_sched = SimTime{};
    shard.epoch_fired = 0;
    shard.scan_effort = 0;
    shard.round_candidates = nullptr;
  }

  if (!full_scan_) route_ready_ledger();

  std::size_t active = 0;
  bool allocated =
      spec_.ready_ledger().capacity() != ledger_capacity_seen_;
  ledger_capacity_seen_ = spec_.ready_ledger().capacity();
  std::uint64_t considered = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    ShardState& shard = shards_[s];
    const ShardInfo& info = analysis_->shards()[s];
    if (full_scan_) {
      shard.legacy_candidates = collect_firing_set(
          *info.system_module, shard.clock, &shard.scan_effort);
      if (shard.legacy_candidates.empty() && shard.clock < now_) {
        // An idle shard stops advancing its own clock, but other shards
        // keep running; pull it up to the executor clock every epoch
        // (system modules are asynchronous, so this is always legal) so its
        // delay clauses mature interleaved with the busy shards' work
        // rather than only at global quiescence.
        shard.clock = now_;
        shard.legacy_candidates = collect_firing_set(
            *info.system_module, shard.clock, &shard.scan_effort);
      }
      shard.round_candidates = &shard.legacy_candidates;
      allocated = true;  // the legacy path allocates per epoch by design
    } else {
      const std::vector<FiringCandidate>* cands =
          &shard.ready.collect(shard.clock);
      shard.scan_effort += static_cast<int>(shard.ready.round_guards());
      allocated = allocated || shard.ready.round_allocated();
      if (cands->empty() && shard.clock < now_) {
        // Same idle-shard clock pull-up as above; re-collecting pops the
        // delay deadlines the jump matured.
        shard.clock = now_;
        cands = &shard.ready.collect(shard.clock);
        shard.scan_effort += static_cast<int>(shard.ready.round_guards());
        allocated = allocated || shard.ready.round_allocated();
      }
      if (verify_)
        verify_against_full_scan({info.system_module}, shard.clock, *cands);
      shard.round_candidates = cands;
    }
    stats_.guards_examined += static_cast<std::uint64_t>(shard.scan_effort);
    considered += shard.round_candidates->size();
    if (!shard.round_candidates->empty()) ++active;
  }
  stats_.candidates_considered += considered;
  if (allocated) ++stats_.rounds_with_allocation;
  return active;
}

void ShardedExecutor::run_shard_round(ShardState& shard, int shard_id) {
  // Everything this round outputs to a foreign shard detours into that
  // shard's transfer mailbox, stamped with our round-start clock.
  ShardExecutionScope scope(shard_id, shard.clock);

  const SimTime scan_cost{scan_per_guard_.ns * shard.scan_effort};
  shard.clock += scan_cost;
  shard.epoch_sched += scan_cost;

  for (const FiringCandidate& c : *shard.round_candidates) {
    // Same revalidation discipline as the sequential scheduler: an earlier
    // firing of this round (same shard, same thread) may have consumed the
    // state this candidate depends on.
    if (!is_fireable(*c.transition, *c.module, shard.clock)) continue;
    shard.clock += sched_per_transition_;
    shard.epoch_sched += sched_per_transition_;
    shard.clock += c.transition->cost;
    shard.epoch_busy += c.transition->cost;
    // Log what actually fires, at its actual fire time; the coordinating
    // thread replays the log to observers after the epoch barrier
    // (announce-after-revalidation). Unobserved runs skip the bookkeeping.
    if (announce_) shard.fired_log.push_back({c, shard.clock});
    fire(c, shard.clock, nullptr);
    ++shard.epoch_fired;
  }
  ++shard.rounds;
  shard.fired += shard.epoch_fired;
  // The dirty-set buffer belongs to the shard's ReadyScope (overwritten at
  // the next collect); only the legacy full-scan buffer needs clearing.
  shard.legacy_candidates.clear();
  shard.round_candidates = nullptr;
}

bool ShardedExecutor::step() {
  ensure_analysis();
  // Whether this epoch's rounds must log their firings for the post-barrier
  // replay (written here on the run thread, read by workers after the pool
  // mutex's happens-before edge).
  announce_ = observer() != nullptr;

  // collect_epoch keeps idle shards synced to now_, so when nothing is
  // active every state-entry stamp is <= now_ and the wakeup machinery
  // below (per-shard deadline heaps, or the legacy tree scan) sees every
  // pending delay.
  const std::size_t active = collect_epoch();
  if (active == 0) {
    if (full_scan_) {
      if (!advance_to_wakeup()) return false;  // quiescent
    } else {
      // O(log n) wakeup: leap to the earliest deadline queued in any
      // shard's heap, clamped by the run's deadline; the next epoch's
      // per-shard collects pop whatever the jump matured.
      SimTime wake = kNeverTime;
      for (const ShardState& shard : shards_) {
        const SimTime d = shard.ready.next_deadline();
        if (d < wake) wake = d;
      }
      if (wake == kNeverTime) return false;  // quiescent
      advance_clock_toward(wake);
    }
    for (ShardState& shard : shards_)
      if (shard.clock < now_) shard.clock = now_;
    return true;
  }

  // Deal active shards to the persistent pool by current ownership, then
  // release the epoch (no thread construction here — the pool's workers are
  // parked between epochs). A specification with statically detected
  // conflicts, or an epoch with a single active shard, runs inline on this
  // thread: still sharded and mailbox-routed, but serialized, hence
  // race-free whatever the spec does.
  active_ids_.clear();
  for (std::size_t s = 0; s < shards_.size(); ++s)
    if (shards_[s].round_candidates != nullptr &&
        !shards_[s].round_candidates->empty())
      active_ids_.push_back(static_cast<int>(s));

  // A width-1 epoch runs inline: a single worker adds nothing but a
  // park/unpark round-trip per epoch (it matters on small hosts, where the
  // default width resolves to 1).
  if (!analysis_->conflict_free() || active < 2 ||
      effective_workers() < 2) {
    for (int s : active_ids_)
      run_shard_round(shards_[static_cast<std::size_t>(s)], s);
  } else {
    WorkerPool& pool = ensure_pool();
    const int nworkers = pool.worker_count();
    for (int s : active_ids_) {
      ShardState& shard = shards_[static_cast<std::size_t>(s)];
      shard.home = shard.owner % nworkers;
      // The 16-byte [this, s] capture fits std::function's inline storage:
      // dealing an epoch allocates nothing.
      pool.submit(shard.home, [this, s](int w) {
        ShardState& sh = shards_[static_cast<std::size_t>(s)];
        // The helping coordinator (pseudo-worker id == worker_count()) is
        // not a steal and does not re-home the shard: steals stays "a
        // worker took it from another's queue", and affinity survives
        // coordinator-heavy epochs on low-core hosts.
        if (w < pool_->worker_count()) {
          if (w != sh.home) ++sh.steals;
          sh.owner = w;  // ownership follows the thief across epochs
        }
        run_shard_round(sh, s);
      });
    }
    // Coordinator participation: the run thread drains shard rounds
    // alongside the workers instead of parking across the epoch barrier.
    pool.run_epoch_helping();
  }

  // Announce-after-revalidation: replay each shard's log of *actual*
  // firings to observers, on this thread, in shard id order then firing
  // order. Only revalidated firings are announced (at their true shard-clock
  // times), so the announced trace matches the sequential scheduler even on
  // specifications that are ill-formed within one shard. See the header
  // comment for the on_fire timing caveat this introduces.
  if (RunObserver* obs = observer()) {
    for (const ShardState& shard : shards_)
      for (const FiredEvent& e : shard.fired_log)
        obs->on_fire(*e.candidate.module, *e.candidate.transition, e.at);
  }
  for (ShardState& shard : shards_) shard.fired_log.clear();

  // Aggregate the epoch into the executor-lifetime counters; the executor
  // clock is the virtual makespan over shard clocks.
  for (const ShardState& shard : shards_) {
    stats_.fired += shard.epoch_fired;
    stats_.busy += shard.epoch_busy;
    stats_.sched_time += shard.epoch_sched;
    if (shard.clock > now_) now_ = shard.clock;
  }
  ++stats_.rounds;
  return true;
}

void ShardedExecutor::decorate_report(RunReport& report) {
  if (!analysis_) return;
  report.shards.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const ShardInfo& info = analysis_->shards()[s];
    ShardRunStats out;
    out.shard = info.id;
    out.system_module = info.system_module->path();
    out.uniprocessor_host = info.uniprocessor_host;
    out.fired = shards_[s].fired;
    out.rounds = shards_[s].rounds;
    out.steals = shards_[s].steals;
    out.clock = shards_[s].clock;
    report.shards.push_back(std::move(out));
  }
}

}  // namespace mcam::estelle
