#include "estelle/shard_executor.hpp"

#include <algorithm>
#include <deque>
#include <mutex>
#include <thread>

#include "estelle/sched.hpp"

namespace mcam::estelle {

ShardedExecutor::ShardedExecutor(Specification& spec,
                                 const ExecutorConfig& cfg)
    : ExecutorBase(spec, cfg.max_steps),
      workers_(std::max(1, cfg.threads)),
      sched_per_transition_(cfg.sched_per_transition),
      scan_per_guard_(cfg.scan_per_guard) {}

void ShardedExecutor::ensure_analysis() {
  if (!analysis_) {
    analysis_ = std::make_unique<ConflictAnalysis>(spec_);
    // The system-module population is frozen (R6), so the shard vector is
    // sized exactly once; refreshes change subtree membership only.
    shards_.resize(static_cast<std::size_t>(analysis_->shard_count()));
    for (std::size_t s = 0; s < shards_.size(); ++s)
      shards_[s].owner = static_cast<int>(s) % workers_;
  } else {
    analysis_->refresh();
  }
}

std::size_t ShardedExecutor::collect_epoch() {
  std::size_t active = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    ShardState& shard = shards_[s];
    const ShardInfo& info = analysis_->shards()[s];
    // Phase 1 of the two-phase mailbox: accept everything other shards sent
    // since this shard's last round, raising the clock to the watermark so
    // no message is processed "before" it was sent.
    SimTime watermark = shard.clock;
    for (Module* m : info.modules)
      for (const auto& ip : m->ips()) ip->drain_transfers(&watermark);
    if (watermark > shard.clock) shard.clock = watermark;

    shard.scan_effort = 0;
    shard.candidates =
        collect_firing_set(*info.system_module, shard.clock,
                           &shard.scan_effort);
    if (shard.candidates.empty() && shard.clock < now_) {
      // An idle shard stops advancing its own clock, but other shards keep
      // running; pull it up to the executor clock every epoch (system
      // modules are asynchronous, so this is always legal) so its delay
      // clauses mature interleaved with the busy shards' work rather than
      // only at global quiescence.
      shard.clock = now_;
      shard.candidates =
          collect_firing_set(*info.system_module, shard.clock,
                             &shard.scan_effort);
    }
    shard.epoch_busy = SimTime{};
    shard.epoch_sched = SimTime{};
    shard.epoch_fired = 0;
    if (!shard.candidates.empty()) ++active;
  }
  return active;
}

void ShardedExecutor::run_shard_round(ShardState& shard, int shard_id) {
  // Everything this round outputs to a foreign shard detours into that
  // shard's transfer mailbox, stamped with our round-start clock.
  ShardExecutionScope scope(shard_id, shard.clock);

  const SimTime scan_cost{scan_per_guard_.ns * shard.scan_effort};
  shard.clock += scan_cost;
  shard.epoch_sched += scan_cost;

  for (const FiringCandidate& c : shard.candidates) {
    // Same revalidation discipline as the sequential scheduler: an earlier
    // firing of this round (same shard, same thread) may have consumed the
    // state this candidate depends on.
    if (!is_fireable(*c.transition, *c.module, shard.clock)) continue;
    shard.clock += sched_per_transition_;
    shard.epoch_sched += sched_per_transition_;
    shard.clock += c.transition->cost;
    shard.epoch_busy += c.transition->cost;
    fire(c, shard.clock, nullptr);  // announced already, on the run thread
    ++shard.epoch_fired;
  }
  ++shard.rounds;
  shard.fired += shard.epoch_fired;
  shard.candidates.clear();
}

bool ShardedExecutor::step() {
  ensure_analysis();

  // collect_epoch keeps idle shards synced to now_, so when nothing is
  // active every state-entry stamp is <= now_ and the global wakeup scan
  // below sees every pending delay.
  const std::size_t active = collect_epoch();
  if (active == 0) {
    if (!advance_to_wakeup()) return false;  // quiescent
    for (ShardState& shard : shards_)
      if (shard.clock < now_) shard.clock = now_;
    return true;
  }

  // Announce the epoch's firing set on this thread, shard id order then
  // candidate order, before any worker runs (observer contract). Caveat:
  // announcement precedes worker-side revalidation, so on a spec that is
  // ill-formed *within* one shard (a same-shard firing disabling a
  // same-round sibling) the announced trace can include candidates the
  // round then skips — unlike Sequential/Threaded, which announce only
  // actual firings. The identical-trace obligation for this backend
  // therefore additionally assumes shard rounds are internally well-formed;
  // the world state still matches (revalidation skips the firing itself).
  // ROADMAP tracks announce-after-revalidation as the follow-up.
  if (RunObserver* obs = observer()) {
    for (const ShardState& shard : shards_)
      for (const FiringCandidate& c : shard.candidates)
        obs->on_fire(*c.module, *c.transition, shard.clock);
  }

  // Deal active shards to the workers' deques by current ownership, then
  // let the pool run. A specification with statically detected conflicts
  // degrades to one worker: still sharded and mailbox-routed, but
  // serialized, hence race-free whatever the spec does.
  std::vector<int> active_ids;
  active_ids.reserve(active);
  for (std::size_t s = 0; s < shards_.size(); ++s)
    if (!shards_[s].candidates.empty()) active_ids.push_back(static_cast<int>(s));

  const int pool = analysis_->conflict_free()
                       ? std::min<int>(workers_, static_cast<int>(active))
                       : 1;
  if (pool <= 1) {
    for (int s : active_ids) run_shard_round(shards_[static_cast<std::size_t>(s)], s);
  } else {
    std::mutex mu;  // guards all deques; one acquisition per shard round
    std::vector<std::deque<int>> queues(static_cast<std::size_t>(pool));
    for (int s : active_ids)
      queues[static_cast<std::size_t>(shards_[static_cast<std::size_t>(s)].owner %
                                      pool)]
          .push_back(s);

    auto next_shard = [&](int w) -> int {
      std::lock_guard<std::mutex> lock(mu);
      auto& own = queues[static_cast<std::size_t>(w)];
      if (!own.empty()) {
        const int s = own.front();
        own.pop_front();
        return s;
      }
      // Steal a whole shard from the back of the fullest victim deque.
      int victim = -1;
      std::size_t best = 0;
      for (int v = 0; v < pool; ++v) {
        const std::size_t len = queues[static_cast<std::size_t>(v)].size();
        if (v != w && len > best) {
          best = len;
          victim = v;
        }
      }
      if (victim < 0) return -1;
      auto& q = queues[static_cast<std::size_t>(victim)];
      const int s = q.back();
      q.pop_back();
      ShardState& shard = shards_[static_cast<std::size_t>(s)];
      ++shard.steals;
      shard.owner = w;  // ownership follows the thief across epochs
      return s;
    };

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(pool));
    for (int w = 0; w < pool; ++w) {
      threads.emplace_back([&, w] {
        for (int s = next_shard(w); s >= 0; s = next_shard(w))
          run_shard_round(shards_[static_cast<std::size_t>(s)], s);
      });
    }
    for (std::thread& t : threads) t.join();
  }

  // Aggregate the epoch into the executor-lifetime counters; the executor
  // clock is the virtual makespan over shard clocks.
  for (const ShardState& shard : shards_) {
    stats_.fired += shard.epoch_fired;
    stats_.busy += shard.epoch_busy;
    stats_.sched_time += shard.epoch_sched;
    if (shard.clock > now_) now_ = shard.clock;
  }
  ++stats_.rounds;
  return true;
}

void ShardedExecutor::decorate_report(RunReport& report) {
  if (!analysis_) return;
  report.shards.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const ShardInfo& info = analysis_->shards()[s];
    ShardRunStats out;
    out.shard = info.id;
    out.system_module = info.system_module->path();
    out.uniprocessor_host = info.uniprocessor_host;
    out.fired = shards_[s].fired;
    out.rounds = shards_[s].rounds;
    out.steals = shards_[s].steals;
    out.clock = shards_[s].clock;
    report.shards.push_back(std::move(out));
  }
}

}  // namespace mcam::estelle
