#include "estelle/shard_executor.hpp"

#include <algorithm>

#include "estelle/sched.hpp"

namespace mcam::estelle {

ShardedExecutor::ShardedExecutor(Specification& spec,
                                 const ExecutorConfig& cfg)
    : ExecutorBase(spec, cfg.max_steps),
      workers_(cfg.threads),
      sched_per_transition_(cfg.sched_per_transition),
      scan_per_guard_(cfg.scan_per_guard) {}

int ShardedExecutor::unit_count() const noexcept {
  if (pool_) return pool_->worker_count();
  // Apply the shard-count cap as soon as the analysis exists, so the value
  // is stable from the first round on (before any analysis it can only
  // report the uncapped width).
  return analysis_ ? effective_workers() : resolve_worker_count(workers_);
}

void ShardedExecutor::ensure_analysis() {
  if (!analysis_) {
    analysis_ = std::make_unique<ConflictAnalysis>(spec_);
    // The system-module population is frozen (R6), so the shard vector is
    // sized exactly once; refreshes change subtree membership only.
    shards_.resize(static_cast<std::size_t>(analysis_->shard_count()));
    for (std::size_t s = 0; s < shards_.size(); ++s)
      shards_[s].owner = static_cast<int>(s);
  } else {
    analysis_->refresh();
  }
}

int ShardedExecutor::effective_workers() const noexcept {
  // Stealing moves whole shards, so workers beyond the shard count could
  // never be busy — cap the width there.
  return std::clamp(effective_worker_width(workers_), 1,
                    std::max(1, analysis_->shard_count()));
}

WorkerPool& ShardedExecutor::ensure_pool() {
  const int want = effective_workers();
  if (!pool_ || pool_->worker_count() != want)
    pool_ = std::make_unique<WorkerPool>(want);
  return *pool_;
}

std::size_t ShardedExecutor::collect_epoch() {
  std::size_t active = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    ShardState& shard = shards_[s];
    const ShardInfo& info = analysis_->shards()[s];
    // Phase 1 of the two-phase mailbox: accept everything other shards sent
    // since this shard's last round, raising the clock to the watermark so
    // no message is processed "before" it was sent.
    SimTime watermark = shard.clock;
    for (Module* m : info.modules)
      for (const auto& ip : m->ips()) ip->drain_transfers(&watermark);
    if (watermark > shard.clock) shard.clock = watermark;

    shard.scan_effort = 0;
    shard.candidates =
        collect_firing_set(*info.system_module, shard.clock,
                           &shard.scan_effort);
    if (shard.candidates.empty() && shard.clock < now_) {
      // An idle shard stops advancing its own clock, but other shards keep
      // running; pull it up to the executor clock every epoch (system
      // modules are asynchronous, so this is always legal) so its delay
      // clauses mature interleaved with the busy shards' work rather than
      // only at global quiescence.
      shard.clock = now_;
      shard.candidates =
          collect_firing_set(*info.system_module, shard.clock,
                             &shard.scan_effort);
    }
    shard.epoch_busy = SimTime{};
    shard.epoch_sched = SimTime{};
    shard.epoch_fired = 0;
    if (!shard.candidates.empty()) ++active;
  }
  return active;
}

void ShardedExecutor::run_shard_round(ShardState& shard, int shard_id) {
  // Everything this round outputs to a foreign shard detours into that
  // shard's transfer mailbox, stamped with our round-start clock.
  ShardExecutionScope scope(shard_id, shard.clock);

  const SimTime scan_cost{scan_per_guard_.ns * shard.scan_effort};
  shard.clock += scan_cost;
  shard.epoch_sched += scan_cost;

  for (const FiringCandidate& c : shard.candidates) {
    // Same revalidation discipline as the sequential scheduler: an earlier
    // firing of this round (same shard, same thread) may have consumed the
    // state this candidate depends on.
    if (!is_fireable(*c.transition, *c.module, shard.clock)) continue;
    shard.clock += sched_per_transition_;
    shard.epoch_sched += sched_per_transition_;
    shard.clock += c.transition->cost;
    shard.epoch_busy += c.transition->cost;
    // Log what actually fires, at its actual fire time; the coordinating
    // thread replays the log to observers after the epoch barrier
    // (announce-after-revalidation). Unobserved runs skip the bookkeeping.
    if (announce_) shard.fired_log.push_back({c, shard.clock});
    fire(c, shard.clock, nullptr);
    ++shard.epoch_fired;
  }
  ++shard.rounds;
  shard.fired += shard.epoch_fired;
  shard.candidates.clear();
}

bool ShardedExecutor::step() {
  ensure_analysis();
  // Whether this epoch's rounds must log their firings for the post-barrier
  // replay (written here on the run thread, read by workers after the pool
  // mutex's happens-before edge).
  announce_ = observer() != nullptr;

  // collect_epoch keeps idle shards synced to now_, so when nothing is
  // active every state-entry stamp is <= now_ and the global wakeup scan
  // below sees every pending delay.
  const std::size_t active = collect_epoch();
  if (active == 0) {
    if (!advance_to_wakeup()) return false;  // quiescent
    for (ShardState& shard : shards_)
      if (shard.clock < now_) shard.clock = now_;
    return true;
  }

  // Deal active shards to the persistent pool by current ownership, then
  // release the epoch (no thread construction here — the pool's workers are
  // parked between epochs). A specification with statically detected
  // conflicts, or an epoch with a single active shard, runs inline on this
  // thread: still sharded and mailbox-routed, but serialized, hence
  // race-free whatever the spec does.
  std::vector<int> active_ids;
  active_ids.reserve(active);
  for (std::size_t s = 0; s < shards_.size(); ++s)
    if (!shards_[s].candidates.empty()) active_ids.push_back(static_cast<int>(s));

  // A width-1 epoch runs inline: a single worker adds nothing but a
  // park/unpark round-trip per epoch (it matters on small hosts, where the
  // default width resolves to 1).
  if (!analysis_->conflict_free() || active < 2 ||
      effective_workers() < 2) {
    for (int s : active_ids)
      run_shard_round(shards_[static_cast<std::size_t>(s)], s);
  } else {
    WorkerPool& pool = ensure_pool();
    const int nworkers = pool.worker_count();
    for (int s : active_ids) {
      ShardState& shard = shards_[static_cast<std::size_t>(s)];
      const int home = shard.owner % nworkers;
      pool.submit(home, [this, &shard, s, home](int w) {
        if (w != home) ++shard.steals;
        shard.owner = w;  // ownership follows the thief across epochs
        run_shard_round(shard, s);
      });
    }
    pool.run_epoch();
  }

  // Announce-after-revalidation: replay each shard's log of *actual*
  // firings to observers, on this thread, in shard id order then firing
  // order. Only revalidated firings are announced (at their true shard-clock
  // times), so the announced trace matches the sequential scheduler even on
  // specifications that are ill-formed within one shard. See the header
  // comment for the on_fire timing caveat this introduces.
  if (RunObserver* obs = observer()) {
    for (const ShardState& shard : shards_)
      for (const FiredEvent& e : shard.fired_log)
        obs->on_fire(*e.candidate.module, *e.candidate.transition, e.at);
  }
  for (ShardState& shard : shards_) shard.fired_log.clear();

  // Aggregate the epoch into the executor-lifetime counters; the executor
  // clock is the virtual makespan over shard clocks.
  for (const ShardState& shard : shards_) {
    stats_.fired += shard.epoch_fired;
    stats_.busy += shard.epoch_busy;
    stats_.sched_time += shard.epoch_sched;
    if (shard.clock > now_) now_ = shard.clock;
  }
  ++stats_.rounds;
  return true;
}

void ShardedExecutor::decorate_report(RunReport& report) {
  if (!analysis_) return;
  report.shards.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const ShardInfo& info = analysis_->shards()[s];
    ShardRunStats out;
    out.shard = info.id;
    out.system_module = info.system_module->path();
    out.uniprocessor_host = info.uniprocessor_host;
    out.fired = shards_[s].fired;
    out.rounds = shards_[s].rounds;
    out.steals = shards_[s].steals;
    out.clock = shards_[s].clock;
    report.shards.push_back(std::move(out));
  }
}

}  // namespace mcam::estelle
