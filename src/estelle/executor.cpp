#include "estelle/executor.hpp"

#include <limits>
#include <optional>
#include <stdexcept>
#include <utility>

#include <algorithm>

#include <thread>

#include "estelle/free_executor.hpp"
#include "estelle/module.hpp"
#include "estelle/sched.hpp"
#include "estelle/shard_executor.hpp"
#include "estelle/transport/dist_runner.hpp"

namespace mcam::estelle {

namespace {

/// Earliest time at which a delay transition blocked at candidate-collection
/// time can fire (state and guard permitting); kNeverTime if none. A deadline
/// already reached — the clock moved past it after collection, e.g. by the
/// sequential backend's scan-cost charge — wakes immediately (`now`): the
/// world is not quiescent, the next round's collection will see the matured
/// transition. (Skipping those used to silently drop firings when a large
/// idle scan jumped the clock over a maturation point.)
SimTime next_delay_wakeup(Specification& spec, SimTime now) {
  SimTime best = kNeverTime;
  spec.root().for_each([&](Module& m) {
    for (const Transition& t : m.transitions()) {
      if (t.ip != nullptr || t.delay.ns == 0) continue;
      if (t.from_state != kAnyState && t.from_state != m.state()) continue;
      if (t.provided && !t.provided(m, nullptr)) continue;
      const SimTime ready = m.state_entered_at() + t.delay;
      const SimTime wake = ready > now ? ready : now;
      if (wake < best) best = wake;
    }
  });
  return best;
}

}  // namespace

const char* mapping_name(Mapping m) noexcept {
  switch (m) {
    case Mapping::ThreadPerModule:
      return "thread-per-module";
    case Mapping::GroupedUnits:
      return "grouped-units";
    case Mapping::ConnectionPerProcessor:
      return "connection-per-processor";
    case Mapping::LayerPerProcessor:
      return "layer-per-processor";
  }
  return "?";
}

namespace {

/// Built-in names, resolvable without touching the registry (used while the
/// factory registers the built-ins in its own constructor).
const char* builtin_kind_name(ExecutorKind k) noexcept {
  switch (k) {
    case ExecutorKind::Sequential:
      return "sequential";
    case ExecutorKind::ParallelSim:
      return "parallel-sim";
    case ExecutorKind::Threaded:
      return "threaded";
    case ExecutorKind::Sharded:
      return "sharded";
    case ExecutorKind::FreeRunning:
      return "free-running";
    case ExecutorKind::Distributed:
      return "distributed";
  }
  return nullptr;
}

}  // namespace

const char* executor_kind_name(ExecutorKind k) noexcept {
  if (const char* name = builtin_kind_name(k)) return name;
  return ExecutorFactory::instance().name_of(k);  // out-of-tree backends
}

bool executor_kind_from_name(const std::string& name,
                             ExecutorKind* out) noexcept {
  return ExecutorFactory::instance().kind_by_name(name, out);
}

int resolve_worker_count(int requested) noexcept {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

const char* stop_reason_name(StopReason r) noexcept {
  switch (r) {
    case StopReason::Quiescent:
      return "quiescent";
    case StopReason::PredicateSatisfied:
      return "predicate-satisfied";
    case StopReason::DeadlineReached:
      return "deadline-reached";
    case StopReason::StepLimit:
      return "step-limit";
    case StopReason::Aborted:
      return "aborted";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// StopCondition

StopReason StopCondition::reason() const noexcept {
  switch (kind_) {
    case Kind::Predicate:
      return StopReason::PredicateSatisfied;
    case Kind::Deadline:
      return StopReason::DeadlineReached;
    case Kind::StepLimit:
      return StopReason::StepLimit;
    case Kind::Quiescence:
      break;
  }
  return StopReason::Quiescent;
}

bool StopCondition::satisfied(SimTime now, std::uint64_t steps) const {
  switch (kind_) {
    case Kind::Quiescence:
      return false;  // the run loop itself detects quiescence
    case Kind::Predicate:
      return pred_ && pred_();
    case Kind::Deadline:
      return now >= deadline_;
    case Kind::StepLimit:
      return steps >= max_steps_;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Executor

RunReport Executor::run_until(std::function<bool()> pred) {
  RunOptions opts;
  opts.stop.push_back(StopCondition::when(std::move(pred)));
  return run(opts);
}

void Executor::add_run_observer(RunObserver* observer) {
  if (observer == nullptr) return;
  for (RunObserver* o : run_observers_)
    if (o == observer) return;  // idempotent
  run_observers_.push_back(observer);
}

void Executor::remove_run_observer(RunObserver* observer) noexcept {
  run_observers_.erase(
      std::remove(run_observers_.begin(), run_observers_.end(), observer),
      run_observers_.end());
}

// ---------------------------------------------------------------------------
// ExecutorBase

/// Fans one notification out to the executor's persistent run_observers()
/// followed by the run's RunOptions::observers. An observer present in both
/// lists is notified once, not twice.
class ExecutorBase::Chain final : public RunObserver {
 public:
  Chain(const std::vector<RunObserver*>& persistent,
        const std::vector<RunObserver*>& observers) {
    observers_.reserve(persistent.size() + observers.size());
    for (RunObserver* o : persistent)
      if (o != nullptr) observers_.push_back(o);
    for (RunObserver* o : observers) {  // tolerate optional (null) observers
      if (o == nullptr) continue;
      if (std::find(observers_.begin(), observers_.end(), o) ==
          observers_.end())
        observers_.push_back(o);
    }
  }

  void on_run_begin(Executor& ex) override {
    for (RunObserver* o : observers_) o->on_run_begin(ex);
  }
  void on_fire(const Module& m, const Transition& t, SimTime now) override {
    for (RunObserver* o : observers_) o->on_fire(m, t, now);
  }
  void on_round_end(Executor& ex, std::uint64_t round) override {
    for (RunObserver* o : observers_) o->on_round_end(ex, round);
  }
  void on_report(Executor& ex, RunReport& report) override {
    for (RunObserver* o : observers_) o->on_report(ex, report);
  }
  void on_run_end(Executor& ex, const RunReport& report) override {
    for (RunObserver* o : observers_) o->on_run_end(ex, report);
  }

  [[nodiscard]] bool empty() const noexcept { return observers_.empty(); }

 private:
  std::vector<RunObserver*> observers_;
};

RunReport ExecutorBase::run(const RunOptions& opts) {
  Chain chain(run_observers(), opts.observers);
  // Save/restore the active chain (exception-safe): a stop predicate or a
  // between-round hook may reentrantly run() this executor, and the outer
  // run's observers must keep seeing events afterwards. (Reentry from
  // on_fire is NOT safe — see RunObserver::on_fire.)
  struct ChainScope {
    ExecutorBase& self;
    RunObserver* prev;
    ~ChainScope() { self.chain_ = prev; }
  } scope{*this, chain_};
  // An empty chain is not installed at all: backends test observer() to
  // decide whether to do per-firing announcement work, and a no-observer
  // run should pay none of it. The local `chain` still delivers the
  // lifecycle hooks below (harmless no-ops when empty).
  chain_ = chain.empty() ? nullptr : &chain;

  // Firings of reentrant inner run() calls are attributed to those runs'
  // reports, not this one's (`fired` means "fired in this run").
  const std::uint64_t fired_before = stats_.fired;
  const std::uint64_t guards_before = stats_.guards_examined;
  const std::uint64_t cands_before = stats_.candidates_considered;
  const std::uint64_t allocs_before = stats_.rounds_with_allocation;
  const std::uint64_t prev_nested = nested_fired_;
  nested_fired_ = 0;

  // Bound idle clock jumps by this run's earliest deadline, and expose the
  // tightest step budget / predicate presence so burst-running backends can
  // pace themselves to exact cutoffs (saved/restored for reentrancy).
  const SimTime prev_deadline = run_deadline_;
  const std::uint64_t prev_step_limit = run_step_limit_;
  const std::uint64_t prev_run_steps = run_steps_;
  const bool prev_has_predicate = run_has_predicate_;
  run_deadline_ = kNeverTime;
  run_step_limit_ = std::numeric_limits<std::uint64_t>::max();
  run_steps_ = 0;
  run_has_predicate_ = false;
  for (const StopCondition& c : opts.stop) {
    if (c.kind() == StopCondition::Kind::Deadline &&
        c.deadline_time() < run_deadline_)
      run_deadline_ = c.deadline_time();
    if (c.kind() == StopCondition::Kind::StepLimit &&
        c.step_budget() < run_step_limit_)
      run_step_limit_ = c.step_budget();
    if (c.kind() == StopCondition::Kind::Predicate) run_has_predicate_ = true;
  }
  struct DeadlineScope {
    ExecutorBase& self;
    SimTime prev;
    std::uint64_t prev_limit;
    std::uint64_t prev_steps;
    bool prev_pred;
    ~DeadlineScope() {
      self.run_deadline_ = prev;
      self.run_step_limit_ = prev_limit;
      self.run_steps_ = prev_steps;
      self.run_has_predicate_ = prev_pred;
    }
  } deadline_scope{*this, prev_deadline, prev_step_limit, prev_run_steps,
                   prev_has_predicate};

  // Per-run worker-count override (saved/restored for reentrancy; backends
  // read it via requested_worker_count() when sizing their pool).
  const int prev_workers = run_worker_count_;
  run_worker_count_ = opts.worker_count;
  struct WorkerScope {
    ExecutorBase& self;
    int prev;
    ~WorkerScope() { self.run_worker_count_ = prev; }
  } worker_scope{*this, prev_workers};

  const auto make_report = [&](StopReason reason, std::uint64_t steps) {
    finalize_stats();
    stats_.time = now_;
    RunReport report;
    report.kind = kind();
    report.reason = reason;
    report.steps = steps;
    report.fired = stats_.fired - fired_before - nested_fired_;
    report.stats = stats_;
    report.time = now_;
    report.guards_examined = stats_.guards_examined - guards_before;
    report.candidates_considered =
        stats_.candidates_considered - cands_before;
    report.rounds_with_allocation =
        stats_.rounds_with_allocation - allocs_before;
    nested_fired_ = prev_nested + (stats_.fired - fired_before);
    decorate_report(report);
    chain.on_report(*this, report);
    return report;
  };

  StopReason reason = StopReason::Quiescent;
  std::uint64_t steps = 0;
  try {
    chain.on_run_begin(*this);
    for (;;) {
      std::optional<StopReason> stop;
      for (const StopCondition& c : opts.stop) {
        if (c.satisfied(now_, steps)) {
          stop = c.reason();
          break;
        }
      }
      if (!stop && steps >= step_limit_) stop = StopReason::StepLimit;
      if (stop) {
        reason = *stop;
        break;
      }
      last_step_rounds_ = 1;
      if (!step()) {
        reason = StopReason::Quiescent;
        break;
      }
      // A burst-running backend (FreeRunning) may have completed many global
      // rounds inside this one step(); count them all so steps and the stop
      // conditions keep their round semantics. on_round_end then fires once
      // per burst, with the cumulative round count.
      steps += last_step_rounds_;
      run_steps_ = steps;
      chain.on_round_end(*this, steps);
    }
  } catch (...) {
    // Keep begin/end-paired observers balanced: deliver on_run_end with the
    // partial report before the exception propagates.
    chain.on_run_end(*this, make_report(StopReason::Aborted, steps));
    throw;
  }

  RunReport report = make_report(reason, steps);
  chain.on_run_end(*this, report);
  return report;
}

std::vector<FiringCandidate> ExecutorBase::collect_candidates(
    int* scan_effort) {
  std::vector<FiringCandidate> candidates;
  int effort = 0;
  for (Module* sm : spec_.system_modules()) {
    auto v = collect_firing_set(*sm, now_, &effort);
    candidates.insert(candidates.end(), v.begin(), v.end());
  }
  if (scan_effort != nullptr) *scan_effort += effort;
  stats_.guards_examined += static_cast<std::uint64_t>(effort);
  stats_.candidates_considered += candidates.size();
  // The legacy path allocates fresh buffers every round by design.
  ++stats_.rounds_with_allocation;
  return candidates;
}

bool ExecutorBase::advance_to_wakeup() {
  const SimTime wake = next_delay_wakeup(spec_, now_);
  if (wake == kNeverTime) return false;
  advance_clock_toward(wake);
  return true;
}

// ---------------------------------------------------------------------------
// Factory

ExecutorFactory& ExecutorFactory::instance() {
  static ExecutorFactory factory;
  return factory;
}

ExecutorFactory::ExecutorFactory() {
  register_backend(
      ExecutorKind::Sequential, builtin_kind_name(ExecutorKind::Sequential),
      [](Specification& spec, const ExecutorConfig& cfg) {
        return std::make_unique<SequentialScheduler>(spec, cfg);
      });
  register_backend(
      ExecutorKind::ParallelSim, builtin_kind_name(ExecutorKind::ParallelSim),
      [](Specification& spec, const ExecutorConfig& cfg) {
        return std::make_unique<ParallelSimScheduler>(spec, cfg);
      });
  register_backend(
      ExecutorKind::Threaded, builtin_kind_name(ExecutorKind::Threaded),
      [](Specification& spec, const ExecutorConfig& cfg) {
        return std::make_unique<ThreadedScheduler>(spec, cfg);
      });
  register_backend(
      ExecutorKind::Sharded, builtin_kind_name(ExecutorKind::Sharded),
      [](Specification& spec, const ExecutorConfig& cfg) {
        return std::make_unique<ShardedExecutor>(spec, cfg);
      });
  register_backend(
      ExecutorKind::FreeRunning, builtin_kind_name(ExecutorKind::FreeRunning),
      [](Specification& spec, const ExecutorConfig& cfg) {
        return std::make_unique<FreeRunningExecutor>(spec, cfg);
      });
  register_backend(
      ExecutorKind::Distributed, builtin_kind_name(ExecutorKind::Distributed),
      [](Specification& spec, const ExecutorConfig& cfg) {
        return std::make_unique<DistributedRunner>(spec, cfg);
      });
}

void ExecutorFactory::register_backend(ExecutorKind kind, std::string name,
                                       Creator create) {
  const std::string* interned = &names_.emplace_back(std::move(name));
  for (Entry& e : entries_) {
    if (e.kind == kind) {  // re-registration replaces (last wins)
      e.name = interned;
      e.create = std::move(create);
      return;
    }
  }
  entries_.push_back({kind, interned, std::move(create)});
}

std::unique_ptr<Executor> ExecutorFactory::create(
    Specification& spec, const ExecutorConfig& cfg) const {
  for (const Entry& e : entries_)
    if (e.kind == cfg.kind) return e.create(spec, cfg);
  throw std::invalid_argument("unregistered ExecutorKind " +
                              std::to_string(static_cast<int>(cfg.kind)));
}

bool ExecutorFactory::known(ExecutorKind kind) const noexcept {
  for (const Entry& e : entries_)
    if (e.kind == kind) return true;
  return false;
}

std::vector<ExecutorKind> ExecutorFactory::kinds() const {
  std::vector<ExecutorKind> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.kind);
  return out;
}

const char* ExecutorFactory::name_of(ExecutorKind kind) const noexcept {
  for (const Entry& e : entries_)
    if (e.kind == kind) return e.name->c_str();
  return "?";
}

bool ExecutorFactory::kind_by_name(const std::string& name,
                                   ExecutorKind* out) const noexcept {
  for (const Entry& e : entries_) {
    if (*e.name == name) {
      if (out != nullptr) *out = e.kind;
      return true;
    }
  }
  return false;
}

std::unique_ptr<Executor> make_executor(Specification& spec,
                                        const ExecutorConfig& cfg) {
  return ExecutorFactory::instance().create(spec, cfg);
}

}  // namespace mcam::estelle
