#include "estelle/codegen.hpp"

#include <algorithm>
#include <cctype>
#include "common/strf.hpp"
#include <sstream>

namespace mcam::estelle::codegen {

namespace {

using common::Error;
using common::Result;
using common::Status;

/// Tokenizer: identifiers, integers, punctuation (; , .), comments `--`.
struct Lexer {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size()) {
      if (std::isspace(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      } else if (pos + 1 < text.size() && text[pos] == '-' &&
                 text[pos + 1] == '-') {
        while (pos < text.size() && text[pos] != '\n') ++pos;
      } else {
        break;
      }
    }
  }

  bool eof() {
    skip_ws();
    return pos >= text.size();
  }

  std::string next() {
    skip_ws();
    if (pos >= text.size()) return {};
    const char c = text[pos];
    if (c == ';' || c == ',' || c == '.') {
      ++pos;
      return std::string(1, c);
    }
    std::size_t start = pos;
    while (pos < text.size()) {
      const char d = text[pos];
      if (std::isalnum(static_cast<unsigned char>(d)) || d == '_') {
        ++pos;
      } else {
        break;
      }
    }
    if (pos == start) {
      ++pos;  // unknown punctuation, return as single char
      return std::string(1, c);
    }
    return std::string(text.substr(start, pos - start));
  }

  std::string peek() {
    const std::size_t saved = pos;
    std::string tok = next();
    pos = saved;
    return tok;
  }
};

Result<Attribute> parse_attribute(const std::string& word) {
  if (word == "systemprocess") return Attribute::SystemProcess;
  if (word == "systemactivity") return Attribute::SystemActivity;
  if (word == "process") return Attribute::Process;
  if (word == "activity") return Attribute::Activity;
  return Error::make(kSyntax, "unknown module attribute '" + word + "'");
}

/// Parse "<n>us" or "<n>" (microseconds).
Result<std::int64_t> parse_micros(Lexer& lex) {
  std::string tok = lex.next();
  // Token may be like "100us" or "100".
  std::size_t i = 0;
  while (i < tok.size() && std::isdigit(static_cast<unsigned char>(tok[i])))
    ++i;
  if (i == 0) return Error::make(kSyntax, "expected duration, got '" + tok + "'");
  const std::string digits = tok.substr(0, i);
  const std::string unit = tok.substr(i);
  if (!unit.empty() && unit != "us")
    return Error::make(kSyntax, "unsupported duration unit '" + unit + "'");
  return static_cast<std::int64_t>(std::stoll(digits));
}

Status expect(Lexer& lex, const std::string& want) {
  const std::string got = lex.next();
  if (got != want)
    return Error::make(kSyntax,
                       "expected '" + want + "', got '" + got + "'");
  return Status{};
}

Status parse_name_list(Lexer& lex, std::vector<std::string>& out) {
  for (;;) {
    const std::string name = lex.next();
    if (name.empty() || name == ";" || name == ",")
      return Error::make(kSyntax, "expected identifier in list");
    out.push_back(name);
    const std::string sep = lex.next();
    if (sep == ";") return Status{};
    if (sep != ",")
      return Error::make(kSyntax, "expected ',' or ';' after '" + name + "'");
  }
}

}  // namespace

int MachineSpec::state_id(const std::string& name) const {
  auto it = std::find(states.begin(), states.end(), name);
  return it == states.end() ? -2
                            : static_cast<int>(it - states.begin());
}

int MachineSpec::kind_id(const std::string& name) const {
  auto it = std::find(kinds.begin(), kinds.end(), name);
  return it == kinds.end() ? -2 : static_cast<int>(it - kinds.begin());
}

Result<MachineSpec> parse(std::string_view text) {
  Lexer lex{text};
  MachineSpec spec;

  if (auto s = expect(lex, "module"); !s.ok()) return s.error();
  spec.module_name = lex.next();
  if (spec.module_name.empty())
    return Error::make(kSyntax, "missing module name");
  auto attr = parse_attribute(lex.next());
  if (!attr.ok()) return attr.error();
  spec.attribute = attr.value();
  if (auto s = expect(lex, ";"); !s.ok()) return s.error();

  while (!lex.eof()) {
    const std::string keyword = lex.next();
    if (keyword == "ip") {
      if (auto s = parse_name_list(lex, spec.ips); !s.ok()) return s.error();
    } else if (keyword == "state") {
      if (auto s = parse_name_list(lex, spec.states); !s.ok())
        return s.error();
    } else if (keyword == "kind") {
      if (auto s = parse_name_list(lex, spec.kinds); !s.ok())
        return s.error();
    } else if (keyword == "trans") {
      TransitionSpec t;
      t.name = lex.next();
      if (t.name.empty()) return Error::make(kSyntax, "missing trans name");
      if (auto s = expect(lex, "from"); !s.ok()) return s.error();
      t.from_state = lex.next();
      for (;;) {
        const std::string clause = lex.next();
        if (clause == ";") break;
        if (clause == "when") {
          t.ip = lex.next();
          if (auto s = expect(lex, "."); !s.ok()) return s.error();
          t.kind = lex.next();
        } else if (clause == "delay") {
          auto v = parse_micros(lex);
          if (!v.ok()) return v.error();
          t.delay_us = v.value();
        } else if (clause == "priority") {
          const std::string p = lex.next();
          t.priority = std::stoi(p);
        } else if (clause == "cost") {
          auto v = parse_micros(lex);
          if (!v.ok()) return v.error();
          t.cost_us = v.value();
        } else if (clause == "to") {
          t.to_state = lex.next();
        } else {
          return Error::make(kSyntax, "unknown clause '" + clause + "'");
        }
      }
      spec.transitions.push_back(std::move(t));
    } else {
      return Error::make(kSyntax, "unknown keyword '" + keyword + "'");
    }
  }

  if (spec.states.empty())
    return Error::make(kSyntax, "module has no states");

  // Semantic checks: every reference resolves.
  for (const TransitionSpec& t : spec.transitions) {
    if (spec.state_id(t.from_state) < 0 && t.from_state != "any")
      return Error::make(kUnknownSymbol, "unknown state '" + t.from_state +
                                             "' in trans " + t.name);
    if (!t.to_state.empty() && spec.state_id(t.to_state) < 0)
      return Error::make(kUnknownSymbol,
                         "unknown state '" + t.to_state + "' in trans " +
                             t.name);
    if (!t.ip.empty() &&
        std::find(spec.ips.begin(), spec.ips.end(), t.ip) == spec.ips.end())
      return Error::make(kUnknownSymbol,
                         "unknown ip '" + t.ip + "' in trans " + t.name);
    if (!t.kind.empty() && spec.kind_id(t.kind) < 0)
      return Error::make(kUnknownSymbol,
                         "unknown kind '" + t.kind + "' in trans " + t.name);
    if (!t.ip.empty() && t.delay_us > 0)
      return Error::make(kSyntax, "trans " + t.name +
                                      " combines when- and delay-clauses");
  }
  return spec;
}

Status instantiate(const MachineSpec& spec, Module& target,
                   const ActionMap& actions) {
  for (const std::string& name : spec.ips) target.ip(name);
  target.set_state(0);  // states[0] is initial

  for (const TransitionSpec& t : spec.transitions) {
    auto builder = target.trans(t.name);
    if (t.from_state != "any") builder.from(spec.state_id(t.from_state));
    if (!t.to_state.empty()) builder.to(spec.state_id(t.to_state));
    if (!t.ip.empty()) {
      InteractionPoint* ip = target.find_ip(t.ip);
      if (ip == nullptr)
        return Error::make(kUnknownSymbol, "ip '" + t.ip + "' not found");
      builder.when(*ip, t.kind.empty() ? kAnyKind : spec.kind_id(t.kind));
    }
    if (t.delay_us > 0) builder.delay(common::SimTime::from_us(t.delay_us));
    builder.priority(t.priority);
    builder.cost(common::SimTime::from_us(t.cost_us));
    auto it = actions.find(t.name);
    if (it != actions.end()) {
      builder.action(it->second);
    } else {
      builder.action([](Module&, const Interaction*) {});
    }
  }
  return Status{};
}

std::string render_cpp(const MachineSpec& spec) {
  std::ostringstream out;
  out << "// generated from Estelle module " << spec.module_name << " ("
      << attribute_name(spec.attribute) << ")\n";
  out << "enum State {";
  for (std::size_t i = 0; i < spec.states.size(); ++i)
    out << (i ? ", " : " ") << spec.states[i] << " = " << i;
  out << " };\n";
  out << "enum Kind {";
  for (std::size_t i = 0; i < spec.kinds.size(); ++i)
    out << (i ? ", " : " ") << spec.kinds[i] << " = " << i;
  out << " };\n";
  out << "static const TransitionRow kTable[] = {\n";
  for (const TransitionSpec& t : spec.transitions) {
    out << common::strf(
        "  {\"%s\", /*from*/%d, /*to*/%d, /*ip*/\"%s\", /*kind*/%d, "
        "/*prio*/%d, /*delay_us*/%lld, /*cost_us*/%lld},\n",
        t.name.c_str(), spec.state_id(t.from_state),
        t.to_state.empty() ? -1 : spec.state_id(t.to_state), t.ip.c_str(),
        t.kind.empty() ? -1 : spec.kind_id(t.kind), t.priority,
        static_cast<long long>(t.delay_us), static_cast<long long>(t.cost_us));
  }
  out << "};\n";
  return out.str();
}

}  // namespace mcam::estelle::codegen
