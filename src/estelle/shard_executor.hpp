// ExecutorKind::Sharded — the work-stealing sharded runtime.
//
// The paper's scaling argument (§3, §5): an Estelle server spreads over a
// multiprocessor because its *system modules* are mutually independent and
// asynchronous (§4). This backend makes that structural: ConflictAnalysis
// assigns one shard per system-module subtree, and each shard executes its
// own rounds with its own virtual clock, synchronizing with other shards
// only through the two-phase transfer mailboxes (interaction.hpp). There is
// no global round barrier over candidates — the per-epoch barrier exists
// only to keep observer announcements and stop-condition checks on the
// coordinating thread.
//
// One step() = one *epoch*:
//   1. every shard drains its transfer mailboxes (raising its clock to the
//      arrival watermark: a message sent at sender-time t is never processed
//      at receiver-time < t) and collects its firing set at its local clock;
//   2. active shards are dealt to the persistent WorkerPool
//      (worker_pool.hpp). Workers own shards; an idle worker steals a whole
//      shard from the back of a victim's deque. Stealing whole shards
//      preserves per-module transition order by construction: a shard's
//      round is always executed by exactly one worker, serially. The pool
//      is built once (capped at the shard count) and reused across epochs
//      and run() calls — no thread is constructed inside step().
//   3. each shard's round revalidates every candidate with is_fireable()
//      (the sequential discipline: an earlier same-round firing may have
//      consumed state) and logs what actually fired, at its actual
//      shard-clock fire time;
//   4. epoch barrier; the *revalidated* firings are announced to observers
//      on the coordinating thread, in shard id order then firing order
//      (announce-after-revalidation). The announced trace therefore matches
//      the sequential scheduler even on specifications that are ill-formed
//      within one shard. The price: under this backend on_fire is delivered
//      after the round executed, so Module::state() seen from the hook is
//      the post-round state, not the from-state (trace recorders that only
//      read the transition and timestamp are unaffected);
//   5. aggregate stats; the executor clock becomes the max shard clock
//      (virtual makespan).
//
// Firing traces are deterministic and independent of both the worker count
// and steal timing: stealing moves a shard between threads, never reorders
// within a shard, and epoch membership is decided before workers start.
//
// Delay clauses use shard-local time. When every shard is idle, lagging
// clocks are first pulled up to the executor clock (system modules are
// asynchronous, so advancing an idle shard is always legal) and the epoch is
// retried; true quiescence additionally consults the global delay wakeup
// (deadline-clamped, as everywhere).
//
// On a specification that ConflictAnalysis does NOT prove conflict-free the
// pool degrades to one worker: still sharded, still mailbox-routed, but
// race-free by serialization. RunReport::shards carries per-shard fired /
// rounds / steals / clock.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "estelle/conflict.hpp"
#include "estelle/executor.hpp"
#include "estelle/module.hpp"
#include "estelle/ready_set.hpp"
#include "estelle/worker_pool.hpp"

namespace mcam::estelle {

class ShardedExecutor : public ExecutorBase {
 public:
  /// Reads ExecutorConfig::threads (pool width, 0 ⇒ hardware_concurrency(),
  /// capped at the shard count; RunOptions::worker_count overrides per run),
  /// sched_per_transition and scan_per_guard (the shard-local cost model,
  /// same vocabulary as the sequential backend so virtual speedups are
  /// comparable), and max_steps.
  explicit ShardedExecutor(Specification& spec, const ExecutorConfig& cfg = {});

  [[nodiscard]] ExecutorKind kind() const noexcept override {
    return ExecutorKind::Sharded;
  }
  [[nodiscard]] int unit_count() const noexcept override;

  /// The analysis driving shard assignment (built on first use).
  [[nodiscard]] const ConflictAnalysis* analysis() const noexcept {
    return analysis_.get();
  }
  /// The persistent pool (null until the first parallel epoch).
  [[nodiscard]] const WorkerPool* pool() const noexcept { return pool_.get(); }

 protected:
  /// One revalidated firing of a shard round, logged by the executing worker
  /// and replayed to observers on the coordinating thread after the epoch
  /// barrier (announce-after-revalidation).
  struct FiredEvent {
    FiringCandidate candidate;
    SimTime at{};
  };

  /// Stat deltas of one continuation round (continuation_round below).
  /// Accumulated by the executing thread with no shared-counter writes; the
  /// caller folds them into SchedulerStats / its slot counters at a point
  /// where it owns them (after a pool quiesce, or inline).
  struct ContinuationDelta {
    std::uint64_t rounds = 0;  // rounds that fired (stats_.rounds semantics)
    std::uint64_t fired = 0;
    std::uint64_t guards = 0;
    std::uint64_t cands = 0;
    std::uint64_t alloc_rounds = 0;
    SimTime busy{};
    SimTime sched{};
  };

  struct ShardState {
    SimTime clock{};
    std::uint64_t fired = 0;
    std::uint64_t rounds = 0;
    std::uint64_t steals = 0;
    int owner = 0;  // worker that ran the shard last (steals move it)
    int home = 0;   // pool slot the shard was dealt to this epoch
    /// The shard's event-driven scheduling state — persistent ready set,
    /// fireable cache, delay-deadline heap, candidate buffer. It lives here
    /// (not on any worker), so whole-shard stealing moves it implicitly and
    /// intact. Written in phase 1 on the run thread; the owning worker only
    /// reads the collected candidate buffer.
    ReadyScope ready;
    /// This epoch's firing set: points at `ready`'s buffer (dirty-set mode)
    /// or at `legacy_candidates` (ExecutorConfig::full_scan). Null when the
    /// shard is idle this epoch.
    const std::vector<FiringCandidate>* round_candidates = nullptr;
    // Per-epoch scratch, written in phase 1 / by the owning worker only:
    std::vector<FiringCandidate> legacy_candidates;
    std::vector<FiredEvent> fired_log;
    int scan_effort = 0;
    SimTime epoch_busy{};
    SimTime epoch_sched{};
    std::uint64_t epoch_fired = 0;
  };

  /// One FreeRunning-style continuation round for one shard: drain the
  /// boundary mailboxes up to round r-1 (watermark rule), pick the round
  /// action from the persistent ready scope, and on Fire execute the
  /// revalidated firing set under a ShardExecutionScope stamped
  /// (shard, clock, r). When `announce`, `log(candidate, fire_time)` is
  /// called for every actual firing — callers route it into their own
  /// announcement channel (the free-running SPSC ring, the distributed
  /// fired_log). `min_future`, when non-null, receives the earliest
  /// later-stamped parked arrival (kAllRounds when none) so an idle caller
  /// can leap to it. Defined in shard_round.hpp; shared by the free-running
  /// shard loop and the distributed node-parallel round so the dispatch
  /// semantics cannot diverge.
  template <typename LogFn>
  ReadyScope::RoundAction continuation_round(
      int shard_id, ShardState& shard,
      const std::vector<InteractionPoint*>& boundary, std::uint64_t r,
      SimTime deadline_cap, Module* system_module, bool announce,
      ContinuationDelta& delta, std::uint64_t* min_future, LogFn&& log);

  bool step() override;
  void decorate_report(RunReport& report) override;

  void ensure_analysis();
  /// Claim the ready ledger and bring every shard's scope up to date:
  /// reseed wholesale when invalidated, else route queued marks to their
  /// shards (the single statement of the invalidation rules, shared by the
  /// epoch and free-running paths).
  void route_ready_ledger();
  /// Full reseed of every shard's ready scope (first epoch, topology
  /// change, or ledger-consumer handoff).
  void reseed_ready();
  /// This run's effective pool width: RunOptions::worker_count when set,
  /// else the configured count, capped at the shard count (min 1).
  [[nodiscard]] int effective_workers() const noexcept;
  /// The pool at this run's effective width.
  WorkerPool& ensure_pool() { return ensure_pool_width(effective_workers()); }
  /// The pool at exactly `want` workers, quiescing any in-flight
  /// long-running work first (before_pool_resize) so a mid-run width change
  /// never strands a continuation inside the old pool's join.
  WorkerPool& ensure_pool_width(int want);
  /// Hook called before the persistent pool is torn down for a resize. The
  /// free-running subclass ends its continuation session here; the epoch
  /// path has nothing in flight between steps.
  virtual void before_pool_resize() {}
  /// Drain + collect for every shard; returns the number of active shards.
  std::size_t collect_epoch();
  /// Execute one shard's round (worker context; ShardExecutionScope active).
  void run_shard_round(ShardState& shard, int shard_id);

  int workers_;  // configured width; 0 ⇒ hardware_concurrency()
  /// True while the active run has observers: shard rounds then log their
  /// firings for the post-barrier replay. Set per epoch on the run thread.
  bool announce_ = false;
  SimTime sched_per_transition_;
  SimTime scan_per_guard_;
  bool full_scan_;
  bool verify_;
  std::unique_ptr<ConflictAnalysis> analysis_;
  std::unique_ptr<WorkerPool> pool_;
  std::vector<ShardState> shards_;
  std::vector<int> active_ids_;  // persistent epoch scratch
  std::uint64_t seen_version_ = ~0ull;
  bool seeded_ = false;
  std::size_t ledger_capacity_seen_ = 0;  // allocation accounting
};

}  // namespace mcam::estelle
