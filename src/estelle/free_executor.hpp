// ExecutorKind::FreeRunning — barrier-free continuation dispatch from the
// ready ledger.
//
// The paper's scaling argument (§3–§5) is that system modules are mutually
// independent and asynchronous, so a multiprocessor server should let each
// module subtree run at its own pace. The epoch-based Sharded backend
// (shard_executor.hpp) still funnels every round through a coordinator
// barrier — announcement replay and stop-condition checks re-park the pool
// once per epoch, capping throughput at the slowest shard. This backend
// removes that last global synchronization point:
//
//   * each shard becomes ONE long-lived continuation task on the persistent
//     WorkerPool. The task loops fire-from-ready-set rounds locally
//     (ReadyScope::next_round — collect, fire, or leap to the next delay
//     deadline), with its dirty tracking bound to the executing thread
//     (LocalReadyScopeBinding), so a steady-state round touches no lock, no
//     ledger and no other thread.
//   * shards communicate only through the round-stamped transfer mailboxes.
//     A message output during global round k becomes visible to its
//     destination at round k+1 (InteractionPoint::drain_transfers_until) —
//     the epoch barrier's visibility rule enforced per message. A
//     conservative neighbor gate (a shard enters round r only once every
//     shard it shares a channel with has completed round r-1) keeps round
//     composition — and therefore the firing trace — identical to the
//     sequential scheduler's on conflict-free specifications, while
//     unrelated shards never wait for each other at all. An idle shard that
//     would stall its neighbors is advanced through its provably-empty
//     rounds by the run thread (the conservative-simulation null message:
//     a lower-bound fixpoint over the channel graph proves no message can
//     target them).
//   * a shard parks only when its ready scope is empty, no delay deadline
//     is queued and no inbound transfer is pending; the cross-shard wake
//     hook (CrossShardWakeSink, fired from InteractionPoint::deliver)
//     unparks it the moment a foreign shard sends to it — no coordinator
//     epoch in between.
//   * observer announcements move off the barrier onto a bounded per-shard
//     firing log (SPSC ring). The run thread merges the logs in global
//     (round, shard id) order up to the watermark round that every
//     still-active shard has passed — the merged stream equals the
//     sequential scheduler's announced trace on conflict-free specs. A full
//     ring back-pressures its shard (a park, counted in
//     FreeRunningStats::parks); unobserved runs skip logging entirely.
//   * stop conditions are evaluated on the run thread against the merged
//     round watermark, with a shard-quiesce handshake for exact cutoff:
//     max_steps releases shards up to exactly the budgeted round and waits
//     for the all-parked rendezvous; deadlines pin each shard's clock at
//     the run deadline; predicate stops pace the session to one round per
//     burst so the predicate sees a quiesced world between rounds, exactly
//     like the round-based loops (documented cost: predicates serialize).
//
// on_fire timing caveat (same as Sharded, amplified): announcements are
// replayed after execution, from the merge thread, so Module::state() seen
// from on_fire is whatever the shard has advanced to — read the transition
// and timestamp arguments, not live world state.
//
// Fallback: free-running dispatch requires the specification to be PROVEN
// conflict-free by ConflictAnalysis (guards on cross-shard queues or shared
// loss Rngs make un-barriered rounds unsound), a pool wide enough for one
// continuation slot per shard, and dirty-set mode (full_scan is inherently
// epoch-based). Anything else falls back to the epoch-based Sharded step —
// same shards, same mailboxes, same announced trace, counted in
// FreeRunningStats::fallback_rounds.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

#include "estelle/interaction.hpp"
#include "estelle/shard_executor.hpp"

namespace mcam::estelle {

class FreeRunningExecutor final : public ShardedExecutor,
                                  private CrossShardWakeSink {
 public:
  explicit FreeRunningExecutor(Specification& spec,
                               const ExecutorConfig& cfg = {});
  ~FreeRunningExecutor() override;

  [[nodiscard]] ExecutorKind kind() const noexcept override {
    return ExecutorKind::FreeRunning;
  }

  /// Lifetime continuation-dispatch counters (also published through
  /// RunReport::free_running).
  [[nodiscard]] const FreeRunningStats& free_running_stats() const noexcept {
    return free_stats_;
  }
  /// True while shard continuation tasks are live on the pool (between the
  /// first burst of a run and that run's end).
  [[nodiscard]] bool session_active() const noexcept { return session_active_; }

 protected:
  bool step() override;
  void finalize_stats() override;
  void decorate_report(RunReport& report) override;
  void before_pool_resize() override;

 private:
  /// "No such round" sentinel for watermark/bound computations. A shard's
  /// advertised round is always finite — a passive shard keeps advertising
  /// its completed round so neighbors gate on it like on any laggard, which
  /// is what makes rewaking it sound (nobody has run ahead of the rounds a
  /// wake could resume it into).
  static constexpr std::uint64_t kPassiveRound = ~0ull;

  /// Why a shard continuation is not executing rounds right now. States are
  /// written under smu_; the run thread's all-blocked rendezvous scan reads
  /// them under the same lock, which is what makes merging logs and folding
  /// stats race-free without any barrier in the round hot path.
  enum class SlotState : std::uint8_t {
    Running,         ///< executing rounds (or about to re-check)
    GateWait,        ///< waiting for a neighbor to complete gate_need
    Passive,         ///< nothing to do until an external event
    LogFull,         ///< firing log back-pressure, waiting for the merger
    LimitParked,     ///< next round exceeds the released round limit
    DeadlineParked,  ///< shard clock pinned at the run deadline
  };

  /// One announced firing: what the shard's continuation round logs,
  /// replayed to observers by the run thread in global (round, shard) order.
  struct FiredEntry {
    FiringCandidate candidate;
    SimTime at{};
    std::uint64_t round = 0;
  };

  /// Per-shard continuation state. The firing log is a bounded SPSC ring:
  /// the owning shard produces, the run thread consumes; capacity is sized
  /// at session start to exceed any single round's firing set so a full
  /// ring always contains a drainable prefix of completed rounds.
  struct Slot {
    // Hot path (owner thread + lock-free readers):
    std::atomic<std::uint64_t> advertised{0};  // completed rounds, published
    std::uint64_t completed = 0;  // owner's copy; the null-message service or
                                  // a burst-boundary wake may raise it (under
                                  // smu_) while the shard is passive
    std::vector<FiredEntry> log;
    std::atomic<std::uint64_t> log_head{0};  // consumer (run thread)
    std::atomic<std::uint64_t> log_tail{0};  // producer (owner)
    std::uint64_t log_high_water = 0;
    /// Abort-only spill: entries produced while the session is stopping and
    /// the ring is full (the merger is gone); end_session's final merge
    /// drains it after the ring, so no announcement is dropped.
    std::vector<FiredEntry> log_overflow;

    // Session wiring (run thread writes while no task is live):
    std::vector<int> neighbors;                  // shards sharing a channel
    std::vector<InteractionPoint*> boundary;     // IPs receiving transfers

    // Coordination (guarded by smu_):
    SlotState state = SlotState::Running;
    int gate_target = -1;
    std::uint64_t gate_need = 0;
    bool wake_pending = false;
    std::condition_variable cv;

    // Burst accumulators (owner writes while running; the run thread folds
    // and zeroes them at rendezvous points, when the owner is parked):
    std::uint64_t rounds = 0;  // rounds that fired (stats_.rounds semantics)
    std::uint64_t fired = 0;
    std::uint64_t guards = 0;
    std::uint64_t cands = 0;
    std::uint64_t alloc_rounds = 0;
    std::uint64_t parks = 0;
    std::uint64_t wakes = 0;
    SimTime busy{};
    SimTime sched{};
  };

  // CrossShardWakeSink — called from the sending shard's worker thread.
  void on_cross_shard_delivery(int shard,
                               std::uint64_t sender_round) noexcept override;

  /// Free-running dispatch is sound and deadlock-free only when the spec is
  /// proven conflict-free, dirty-set mode is on, and the pool can host one
  /// continuation per shard.
  [[nodiscard]] bool free_runnable() const noexcept;

  void start_session();
  /// Stop and join the shard continuations, drain every remaining log entry
  /// to the observers and fold stats. Returns the global rounds folded.
  std::uint64_t end_session();
  /// Release rounds up to `limit` and service the session (merge logs, wake
  /// back-pressured shards) until the all-blocked rendezvous or a session
  /// abort. Returns the global rounds folded; 0 on abort (end_session then
  /// finishes the accounting).
  std::uint64_t run_burst(std::uint64_t limit);

  // Worker-side (shard continuation):
  void shard_main(int s);
  void shard_loop(int s, Slot& slot, ShardState& shard, const ShardInfo& info);
  void complete_round(Slot& slot, std::uint64_t round);
  void log_push(Slot& slot, const FiredEntry& entry);
  bool gate_wait(Slot& slot, Slot& target, int target_id, std::uint64_t need);
  bool passive_park(Slot& slot);
  template <typename Pred>
  bool park_until(Slot& slot, SlotState why, Pred ready);

  // Run-thread session service (all *_locked expect smu_ held):
  void route_ledger_locked();
  [[nodiscard]] bool all_blocked_locked() const;
  [[nodiscard]] bool all_passive_locked() const;
  /// Null-message service: advance stable-passive shards that gate-block a
  /// neighbor through rounds no message can ever target (a lower-bound
  /// fixpoint over the channel graph). Returns true when someone was bumped.
  bool resolve_idle_gates_locked();
  /// Merge firing logs up to the safe watermark and announce to observers.
  /// Assembles under `lock`, releases it for the observer callbacks (no
  /// executor lock is held across user code), reacquires to consume.
  std::uint64_t merge_logs(std::unique_lock<std::mutex>& lock,
                           bool session_end);
  bool wake_unfilled_logs_locked();
  std::uint64_t fold_locked();
  void wake_everyone_locked();

  std::mutex smu_;                    // session coordination
  std::condition_variable run_cv_;    // run thread parks here
  std::condition_variable gate_cv_;   // neighbor-gate waiters park here
  std::atomic<std::uint32_t> gate_waiter_count_{0};
  std::vector<std::unique_ptr<Slot>> slots_;  // persistent across sessions
  bool session_active_ = false;
  bool stop_ = false;                 // session stop signal (under smu_,
                                      // mirrored by the atomic for lock-free
                                      // reads in wait predicates)
  std::atomic<bool> stop_flag_{false};
  std::atomic<bool> topology_dirty_{false};
  std::atomic<std::uint64_t> round_limit_{0};
  std::atomic<std::int64_t> session_deadline_ns_{0};
  std::atomic<bool> free_announce_{false};
  std::uint64_t session_topology_version_ = 0;
  std::uint64_t session_base_rounds_ = 0;  // max completed already folded
  bool burst_all_passive_ = false;
  std::exception_ptr session_error_;
  FreeRunningStats free_stats_;
  std::size_t slot_footprint_seen_ = 0;  // allocation accounting
  // Persistent scratch of the null-message service and the announcement
  // merge (high-water sized).
  std::vector<std::uint64_t> gate_bound_scratch_;
  std::vector<char> gate_sleeper_scratch_;
  std::vector<FiredEntry> merge_scratch_;
  std::vector<std::uint64_t> merge_cursor_;
  std::vector<std::size_t> merge_ovf_cursor_;
};

}  // namespace mcam::estelle
