#include "estelle/worker_pool.hpp"

#include <algorithm>

namespace mcam::estelle {

WorkerPool::WorkerPool(int workers) {
  const int n = std::max(1, workers);
  queues_.resize(static_cast<std::size_t>(n));
  stats_.resize(static_cast<std::size_t>(n));
  threads_.reserve(static_cast<std::size_t>(n));
  for (int w = 0; w < n; ++w)
    threads_.emplace_back([this, w] { worker_main(w); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::submit(int worker, Task task) {
  const auto slot = static_cast<std::size_t>(worker % worker_count());
  std::lock_guard<std::mutex> lock(mu_);
  queues_[slot].push_back(std::move(task));
}

std::size_t WorkerPool::run_epoch() {
  std::unique_lock<std::mutex> lock(mu_);
  std::size_t queued = 0;
  for (const auto& q : queues_) queued += q.size();
  if (queued == 0) return 0;  // don't wake anyone for an empty epoch
  outstanding_ = queued;
  ++epoch_;
  ++epochs_run_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [&] { return outstanding_ == 0; });
  return queued;
}

std::uint64_t WorkerPool::epochs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epochs_run_;
}

std::size_t WorkerPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t queued = 0;
  for (const auto& q : queues_) queued += q.size();
  return queued;
}

std::vector<WorkerPool::WorkerStats> WorkerPool::worker_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void WorkerPool::worker_main(int w) {
  const auto self = static_cast<std::size_t>(w);
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t seen_epoch = 0;
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
    if (stop_) return;
    seen_epoch = epoch_;
    while (outstanding_ > 0) {
      Task task;
      bool stolen = false;
      if (!queues_[self].empty()) {
        task = std::move(queues_[self].front());
        queues_[self].pop_front();
      } else {
        // Steal from the back of the fullest victim deque; if every deque is
        // empty the epoch's remaining tasks are in flight on other workers —
        // park until the next epoch.
        std::size_t victim = self;
        std::size_t best = 0;
        for (std::size_t v = 0; v < queues_.size(); ++v) {
          if (v != self && queues_[v].size() > best) {
            best = queues_[v].size();
            victim = v;
          }
        }
        if (victim == self) break;
        task = std::move(queues_[victim].back());
        queues_[victim].pop_back();
        stolen = true;
      }
      lock.unlock();
      task(w);
      task = nullptr;  // destroy captures outside the epoch-completion edge
      lock.lock();
      ++stats_[self].executed;
      if (stolen) ++stats_[self].stolen;
      if (--outstanding_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace mcam::estelle
