#include "estelle/worker_pool.hpp"

#include <algorithm>

namespace mcam::estelle {

bool WorkerPool::TaskQueue::push_back(Task t) {
  // Once anything spilled, later pushes must spill too or FIFO order breaks.
  if (spill.size() - spill_head > 0 || count == ring.size()) {
    spill.push_back(std::move(t));
    return true;
  }
  ring[(head + count) % ring.size()] = std::move(t);
  ++count;
  return false;
}

WorkerPool::Task WorkerPool::TaskQueue::pop_front() {
  if (count > 0) {
    Task t = std::move(ring[head]);
    head = (head + 1) % ring.size();
    --count;
    return t;
  }
  Task t = std::move(spill[spill_head++]);
  if (spill_head == spill.size()) {
    // Keep the capacity (high-water sizing); drop the dead prefix.
    spill.clear();
    spill_head = 0;
  }
  return t;
}

WorkerPool::Task WorkerPool::TaskQueue::pop_back() {
  if (spill.size() - spill_head > 0) {
    Task t = std::move(spill.back());
    spill.pop_back();
    if (spill_head == spill.size()) {
      spill.clear();
      spill_head = 0;
    }
    return t;
  }
  Task t = std::move(ring[(head + count - 1) % ring.size()]);
  --count;
  return t;
}

WorkerPool::WorkerPool(int workers) {
  const int n = std::max(1, workers);
  queues_.resize(static_cast<std::size_t>(n));
  for (auto& q : queues_) q.ring.resize(kRingSlots);
  stats_.resize(static_cast<std::size_t>(n) + 1);  // + helping coordinator
  threads_.reserve(static_cast<std::size_t>(n));
  for (int w = 0; w < n; ++w)
    threads_.emplace_back([this, w] { worker_main(w); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::submit(int worker, Task task) {
  const auto slot = static_cast<std::size_t>(worker % worker_count());
  std::lock_guard<std::mutex> lock(mu_);
  if (queues_[slot].push_back(std::move(task))) ++spills_;
}

std::size_t WorkerPool::launch_locked() {
  std::size_t queued = 0;
  for (const auto& q : queues_) queued += q.size();
  if (queued == 0) return 0;  // don't wake anyone for an empty release
  outstanding_ += queued;
  ++epoch_;
  ++epochs_run_;
  work_cv_.notify_all();
  return queued;
}

std::size_t WorkerPool::launch() {
  std::lock_guard<std::mutex> lock(mu_);
  return launch_locked();
}

void WorkerPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return outstanding_ == 0; });
}

std::size_t WorkerPool::run_epoch() {
  std::unique_lock<std::mutex> lock(mu_);
  const std::size_t queued = launch_locked();
  if (queued == 0) return 0;
  done_cv_.wait(lock, [&] { return outstanding_ == 0; });
  return queued;
}

std::size_t WorkerPool::run_epoch_helping() {
  std::unique_lock<std::mutex> lock(mu_);
  const std::size_t queued = launch_locked();
  if (queued == 0) return 0;
  // Participate instead of parking: drain as the pseudo-worker, then wait
  // only for the in-flight remainder.
  drain_queues(queues_.size(), lock);
  done_cv_.wait(lock, [&] { return outstanding_ == 0; });
  return queued;
}

std::uint64_t WorkerPool::epochs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epochs_run_;
}

std::size_t WorkerPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t queued = 0;
  for (const auto& q : queues_) queued += q.size();
  return queued;
}

std::uint64_t WorkerPool::spills() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spills_;
}

std::vector<WorkerPool::WorkerStats> WorkerPool::worker_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void WorkerPool::drain_queues(std::size_t self,
                              std::unique_lock<std::mutex>& lock) {
  while (outstanding_ > 0) {
    Task task;
    bool stolen = false;
    if (self < queues_.size() && !queues_[self].empty()) {
      task = queues_[self].pop_front();
    } else {
      // Steal from the back of the fullest victim queue; if every queue is
      // empty the remaining released tasks are in flight on other workers.
      std::size_t victim = self;
      std::size_t best = 0;
      for (std::size_t v = 0; v < queues_.size(); ++v) {
        if (v != self && queues_[v].size() > best) {
          best = queues_[v].size();
          victim = v;
        }
      }
      if (victim == self) return;
      task = queues_[victim].pop_back();
      stolen = true;
    }
    lock.unlock();
    try {
      task(static_cast<int>(self));
    } catch (...) {
      // On a worker thread this still terminates (the task contract), but a
      // task drained by the HELPING COORDINATOR propagates into the caller
      // — restore the accounting first, or the pool would count the task
      // outstanding forever and every later epoch/wait_idle would hang.
      task = nullptr;
      lock.lock();
      ++stats_[self].executed;
      if (stolen) ++stats_[self].stolen;
      if (--outstanding_ == 0) done_cv_.notify_all();
      throw;
    }
    task = nullptr;  // destroy captures outside the completion edge
    lock.lock();
    ++stats_[self].executed;
    if (stolen) ++stats_[self].stolen;
    if (--outstanding_ == 0) done_cv_.notify_all();
  }
}

void WorkerPool::worker_main(int w) {
  const auto self = static_cast<std::size_t>(w);
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t seen_epoch = 0;
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
    if (stop_) return;
    seen_epoch = epoch_;
    drain_queues(self, lock);
  }
}

}  // namespace mcam::estelle
