// Per-run metrics collection for Estelle executors.
//
// MetricsObserver is a RunObserver that watches fire events and aggregates
//   * per-module firing counts, and
//   * a histogram of firing gaps — the virtual time between consecutive
//     firings of the same module (its service interval; the reciprocal of a
//     server entity's throughput in the paper's Table-1/§5 measurements).
// From its on_report hook it publishes both into RunReport::module_metrics
// and RunReport::firing_gap_histogram, so a caller that attaches the
// observer gets the measurements from run()'s return value:
//
//   MetricsObserver metrics;
//   RunReport r = executor->run({.observers = {&metrics}});
//   for (const ModuleFiringMetrics& m : r.module_metrics) ...
//
// Attach with Executor::add_run_observer to aggregate across the many short
// runs a client facade pumps (every report of that executor then carries the
// cumulative picture). Counters are observer-lifetime; clear() resets.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"
#include "estelle/executor.hpp"

namespace mcam::estelle {

class MetricsObserver : public RunObserver {
 public:
  /// Histogram buckets: bucket i counts gaps in [2^i, 2^(i+1)) µs; bucket 0
  /// also absorbs sub-microsecond gaps, the last bucket absorbs the tail.
  static constexpr std::size_t kHistogramBuckets = 20;

  void on_fire(const Module& module, const Transition& transition,
               common::SimTime now) override;
  void on_report(Executor& executor, RunReport& report) override;

  [[nodiscard]] std::uint64_t total_fired() const noexcept { return fired_; }
  /// Firing count of one module (0 if never seen).
  [[nodiscard]] std::uint64_t fired_by(const std::string& module_path) const;

  /// Hot-path counters accumulated from every observed run's report
  /// (on_report): guard evaluations spent selecting transitions, candidates
  /// collected, and rounds that grew a scheduler buffer. The dirty-set
  /// scheduling win, measured rather than anecdotal.
  [[nodiscard]] std::uint64_t guards_examined() const noexcept {
    return guards_examined_;
  }
  [[nodiscard]] std::uint64_t candidates_considered() const noexcept {
    return candidates_considered_;
  }
  [[nodiscard]] std::uint64_t rounds_with_allocation() const noexcept {
    return rounds_with_allocation_;
  }
  /// Guard evaluations per firing — the §5.2-style selection-overhead ratio
  /// (0 when nothing fired).
  [[nodiscard]] double guards_per_firing() const noexcept {
    return fired_ == 0 ? 0.0
                       : static_cast<double>(guards_examined_) /
                             static_cast<double>(fired_);
  }
  [[nodiscard]] const std::vector<std::uint64_t>& histogram() const noexcept {
    return histogram_;
  }
  /// Latest cross-process transport counters seen in a report (the
  /// Distributed backend's cumulative frame/byte traffic; all-zero unless
  /// an observed run used a transport).
  [[nodiscard]] const TransportStats& transport() const noexcept {
    return transport_;
  }
  /// Snapshot of the per-module metrics, most-fired first (what on_report
  /// publishes into the report).
  [[nodiscard]] std::vector<ModuleFiringMetrics> module_metrics() const;

  /// Render "path fired mean-gap" lines plus the histogram, most-fired
  /// first; `top` caps the per-module lines.
  [[nodiscard]] std::string to_string(std::size_t top = 10) const;

  void clear();

 private:
  struct PerModule {
    std::string path;
    std::uint64_t fired = 0;
    common::SimTime last_fire{};
    common::SimTime gap_sum{};
    std::uint64_t gaps = 0;
  };

  /// Keyed by instance id — path strings are materialized once, not per
  /// event; ids are unique for the process lifetime.
  std::unordered_map<std::uint64_t, PerModule> modules_;
  std::vector<std::uint64_t> histogram_ =
      std::vector<std::uint64_t>(kHistogramBuckets, 0);
  std::uint64_t fired_ = 0;
  std::uint64_t guards_examined_ = 0;
  std::uint64_t candidates_considered_ = 0;
  std::uint64_t rounds_with_allocation_ = 0;
  /// Snapshot, not a sum: RunReport::transport is already cumulative for
  /// the transport's lifetime, so the newest non-empty report wins.
  TransportStats transport_;
};

}  // namespace mcam::estelle
