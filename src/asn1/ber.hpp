// BER transfer syntax (ISO 8825), definite-length form.
//
// This is the transfer syntax the presentation layer negotiates for the MCAM
// abstract syntax, and what the paper's generated ASN.1 encode/decode
// routines implement. High-tag-number form and multi-octet lengths are
// supported; indefinite length is not produced and is rejected on decode
// (the paper's toolchain likewise emitted definite-length encodings).
#pragma once

#include <cstddef>

#include "asn1/value.hpp"
#include "common/bytes.hpp"
#include "common/result.hpp"

namespace mcam::asn1 {

/// Encode a value tree to definite-length BER.
common::Bytes encode(const Value& v);

/// Append the encoding of `v` to `out` (used by the parallel encoder to
/// splice pre-encoded child segments).
void encode_to(const Value& v, common::Bytes& out);

/// Number of octets `encode(v)` will produce (drives length-field emission).
std::size_t encoded_length(const Value& v);

/// Decode exactly one value; trailing bytes are an error.
common::Result<Value> decode(common::ByteSpan data);

/// Decode one value starting at `offset`; on success advances `offset` past
/// it. Permits trailing data (used when PDUs are concatenated in a stream).
common::Result<Value> decode_prefix(common::ByteSpan data,
                                    std::size_t& offset);

/// Maximum nesting depth accepted by the decoder; deeper input is rejected
/// with kDepthExceeded rather than recursing unboundedly on hostile data.
inline constexpr int kMaxDecodeDepth = 64;

}  // namespace mcam::asn1
