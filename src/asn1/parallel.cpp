#include "asn1/parallel.hpp"

#include <algorithm>
#include <thread>
#include <vector>

#include "asn1/ber.hpp"

namespace mcam::asn1 {

namespace {

double node_work_ns(const Value& v, const ParallelEncodeModel& m) {
  double work = m.per_node_ns + m.per_byte_ns * v.content().size();
  for (const Value& c : v.children()) work += node_work_ns(c, m);
  return work;
}

}  // namespace

double sequential_work_ns(const Value& v, const ParallelEncodeModel& m) {
  return node_work_ns(v, m);
}

common::Bytes encode_parallel(const Value& v, int workers) {
  if (workers <= 1 || !v.constructed() || v.children().size() < 2)
    return encode(v);

  const auto& children = v.children();
  const std::size_t n = children.size();
  const std::size_t nworkers =
      std::min<std::size_t>(static_cast<std::size_t>(workers), n);

  // Each worker encodes a contiguous slice of children into its own buffer.
  std::vector<common::Bytes> slices(nworkers);
  std::vector<std::thread> threads;
  threads.reserve(nworkers);
  for (std::size_t w = 0; w < nworkers; ++w) {
    const std::size_t lo = n * w / nworkers;
    const std::size_t hi = n * (w + 1) / nworkers;
    threads.emplace_back([&children, &slices, w, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i)
        encode_to(children[i], slices[w]);
    });
  }
  for (auto& t : threads) t.join();

  // Merge: emit the outer header, then splice the pre-encoded slices. The
  // header needs the total content length, which we get from the slices.
  std::size_t content_len = 0;
  for (const auto& s : slices) content_len += s.size();

  common::Bytes out;
  out.reserve(content_len + 8);
  // Re-emit tag+length identically to encode_to(); we reuse the sequential
  // encoder on a childless shell and then append the slices.
  Value shell =
      Value::raw(v.tag_class(), v.tag(), true, {}, {});
  common::Bytes header = encode(shell);
  // encode(shell) produced <tag> <len=0>; rebuild with the true length.
  out.push_back(header[0]);
  if (content_len < 128) {
    out.push_back(static_cast<std::uint8_t>(content_len));
  } else {
    common::Bytes chunk;
    std::size_t len = content_len;
    while (len != 0) {
      chunk.push_back(static_cast<std::uint8_t>(len & 0xff));
      len >>= 8;
    }
    out.push_back(static_cast<std::uint8_t>(0x80 | chunk.size()));
    out.insert(out.end(), chunk.rbegin(), chunk.rend());
  }
  for (const auto& s : slices) out.insert(out.end(), s.begin(), s.end());
  return out;
}

common::SimTime ParallelEncodeModel::encode_time(const Value& v,
                                                 int workers) const {
  const double total = node_work_ns(v, *this);
  if (workers <= 1 || !v.constructed() || v.children().size() < 2)
    return common::SimTime::from_ns(static_cast<std::int64_t>(total));

  const auto& children = v.children();
  const std::size_t n = children.size();
  const std::size_t nworkers =
      std::min<std::size_t>(static_cast<std::size_t>(workers), n);

  // Same slicing as encode_parallel(): critical path is the slowest slice.
  double critical = 0.0;
  for (std::size_t w = 0; w < nworkers; ++w) {
    const std::size_t lo = n * w / nworkers;
    const std::size_t hi = n * (w + 1) / nworkers;
    double slice = 0.0;
    for (std::size_t i = lo; i < hi; ++i) slice += node_work_ns(children[i], *this);
    critical = std::max(critical, slice);
  }
  // Dispatch is serial on the coordinating thread; joins are serial too.
  const double overhead =
      dispatch_ns * static_cast<double>(nworkers) +
      join_ns * static_cast<double>(nworkers) +
      per_node_ns /* outer header emission */;
  return common::SimTime::from_ns(
      static_cast<std::int64_t>(critical + overhead));
}

}  // namespace mcam::asn1
