#include "asn1/ber.hpp"

namespace mcam::asn1 {

namespace {

using common::ByteSpan;
using common::Bytes;
using common::Error;
using common::Result;

void emit_tag(const Value& v, Bytes& out) {
  std::uint8_t first = static_cast<std::uint8_t>(
      (static_cast<std::uint8_t>(v.tag_class()) << 6) |
      (v.constructed() ? 0x20 : 0x00));
  if (v.tag() < 31) {
    out.push_back(first | static_cast<std::uint8_t>(v.tag()));
    return;
  }
  out.push_back(first | 0x1f);
  // High-tag-number form: base-128, MSB-first, continuation bits.
  std::uint32_t tag = v.tag();
  Bytes chunk;
  chunk.push_back(static_cast<std::uint8_t>(tag & 0x7f));
  tag >>= 7;
  while (tag != 0) {
    chunk.push_back(static_cast<std::uint8_t>(0x80 | (tag & 0x7f)));
    tag >>= 7;
  }
  out.insert(out.end(), chunk.rbegin(), chunk.rend());
}

std::size_t tag_length(const Value& v) {
  if (v.tag() < 31) return 1;
  std::size_t n = 1;
  std::uint32_t tag = v.tag();
  while (tag != 0) {
    ++n;
    tag >>= 7;
  }
  return n;
}

void emit_length(std::size_t len, Bytes& out) {
  if (len < 128) {
    out.push_back(static_cast<std::uint8_t>(len));
    return;
  }
  Bytes chunk;
  while (len != 0) {
    chunk.push_back(static_cast<std::uint8_t>(len & 0xff));
    len >>= 8;
  }
  out.push_back(static_cast<std::uint8_t>(0x80 | chunk.size()));
  out.insert(out.end(), chunk.rbegin(), chunk.rend());
}

std::size_t length_length(std::size_t len) {
  if (len < 128) return 1;
  std::size_t n = 1;
  while (len != 0) {
    ++n;
    len >>= 8;
  }
  return n;
}

std::size_t content_length(const Value& v) {
  if (!v.constructed()) return v.content().size();
  std::size_t total = 0;
  for (const Value& c : v.children()) total += encoded_length(c);
  return total;
}

struct Header {
  TagClass cls;
  std::uint32_t tag;
  bool constructed;
  std::size_t length;
};

Result<Header> parse_header(common::ByteReader& r) {
  try {
    const std::uint8_t first = r.u8();
    Header h;
    h.cls = static_cast<TagClass>(first >> 6);
    h.constructed = (first & 0x20) != 0;
    h.tag = first & 0x1f;
    if (h.tag == 0x1f) {
      h.tag = 0;
      std::uint8_t octet;
      int count = 0;
      do {
        octet = r.u8();
        if (++count > 5) return Error::make(kBadTag, "tag number too large");
        h.tag = (h.tag << 7) | (octet & 0x7f);
      } while (octet & 0x80);
    }
    const std::uint8_t len0 = r.u8();
    if (len0 < 0x80) {
      h.length = len0;
    } else if (len0 == 0x80) {
      return Error::make(kBadLength, "indefinite length not supported");
    } else {
      const int n = len0 & 0x7f;
      if (n > 8) return Error::make(kBadLength, "length of length too large");
      std::size_t len = 0;
      for (int i = 0; i < n; ++i) len = (len << 8) | r.u8();
      h.length = len;
    }
    if (h.length > r.remaining())
      return Error::make(kTruncated, "content extends past buffer");
    return h;
  } catch (const common::ShortReadError&) {
    return Error::make(kTruncated, "truncated BER header");
  }
}

Result<Value> decode_one(common::ByteReader& r, int depth) {
  if (depth > kMaxDecodeDepth)
    return Error::make(kDepthExceeded, "BER nesting too deep");
  auto header = parse_header(r);
  if (!header.ok()) return header.error();
  const Header& h = header.value();
  if (!h.constructed) {
    return Value::raw(h.cls, h.tag, false, r.raw(h.length), {});
  }
  common::ByteReader inner(r.view(h.length));
  std::vector<Value> children;
  while (!inner.empty()) {
    auto child = decode_one(inner, depth + 1);
    if (!child.ok()) return child.error();
    children.push_back(std::move(child).take());
  }
  return Value::raw(h.cls, h.tag, true, {}, std::move(children));
}

}  // namespace

std::size_t encoded_length(const Value& v) {
  const std::size_t content = content_length(v);
  return tag_length(v) + length_length(content) + content;
}

void encode_to(const Value& v, Bytes& out) {
  emit_tag(v, out);
  if (!v.constructed()) {
    emit_length(v.content().size(), out);
    out.insert(out.end(), v.content().begin(), v.content().end());
    return;
  }
  emit_length(content_length(v), out);
  for (const Value& c : v.children()) encode_to(c, out);
}

Bytes encode(const Value& v) {
  Bytes out;
  out.reserve(encoded_length(v));
  encode_to(v, out);
  return out;
}

Result<Value> decode(ByteSpan data) {
  common::ByteReader r(data);
  auto v = decode_one(r, 0);
  if (!v.ok()) return v;
  if (!r.empty())
    return Error::make(kTrailingBytes,
                       std::to_string(r.remaining()) + " trailing bytes");
  return v;
}

Result<Value> decode_prefix(ByteSpan data, std::size_t& offset) {
  common::ByteReader r(data.subspan(offset));
  auto v = decode_one(r, 0);
  if (v.ok()) offset += r.position();
  return v;
}

}  // namespace mcam::asn1
