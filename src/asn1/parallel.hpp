// Parallel ASN.1 encoding.
//
// Footnote 3 of §5.1 cites [12] (Herbert 1991): parallelizing ASN.1
// encode/decode does *not* improve performance, because the per-element work
// is tiny relative to thread dispatch and result-merge cost. We reproduce
// that negative result two ways:
//   * encode_parallel(): a real thread-pool encoder that splits the children
//     of the outermost constructed value across workers (correct output,
//     measurable overhead with google-benchmark), and
//   * ParallelEncodeModel: a deterministic cost model giving the simulated
//     encode latency for W workers, so the crossover shape is reproducible
//     on any host.
#pragma once

#include "asn1/value.hpp"
#include "common/bytes.hpp"
#include "common/clock.hpp"

namespace mcam::asn1 {

/// Encode `v` using `workers` threads over its top-level children. Output is
/// byte-identical to encode(). workers <= 1 degenerates to the sequential
/// encoder.
common::Bytes encode_parallel(const Value& v, int workers);

/// Cost model for the simulated parallel-encoding experiment. Defaults are
/// calibrated to early-1990s workstation magnitudes: ~50 ns per content
/// byte of marshalling work, ~2 us to dispatch a unit of work to a thread,
/// ~5 us of synchronization per join.
struct ParallelEncodeModel {
  double per_byte_ns = 50.0;
  double per_node_ns = 200.0;
  double dispatch_ns = 2000.0;
  double join_ns = 5000.0;

  /// Simulated latency of encoding `v` with `workers` parallel workers
  /// (workers == 1 means sequential, no dispatch/join cost).
  [[nodiscard]] common::SimTime encode_time(const Value& v,
                                            int workers) const;
};

/// Total marshalling work (ns, before parallelization) for a value tree
/// under the model — exposed for tests.
double sequential_work_ns(const Value& v, const ParallelEncodeModel& m);

}  // namespace mcam::asn1
