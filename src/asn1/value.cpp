#include "asn1/value.hpp"

#include <algorithm>
#include "common/strf.hpp"

namespace mcam::asn1 {

namespace {

Bytes encode_twos_complement(std::int64_t v) {
  // Minimal-length two's complement per BER: strip redundant leading octets.
  Bytes out;
  bool more = true;
  // Build little-endian then reverse.
  std::uint64_t u = static_cast<std::uint64_t>(v);
  for (int i = 0; i < 8 && more; ++i) {
    out.push_back(static_cast<std::uint8_t>(u & 0xff));
    const std::int64_t rest = v >> ((i + 1) * 8);
    const bool sign_bit = (out.back() & 0x80) != 0;
    more = !((rest == 0 && !sign_bit) || (rest == -1 && sign_bit));
    u >>= 8;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

Value universal(UniversalTag t, bool constructed, Bytes content,
                std::vector<Value> children = {}) {
  return Value::raw(TagClass::Universal, static_cast<std::uint32_t>(t),
                    constructed, std::move(content), std::move(children));
}

}  // namespace

Value Value::raw(TagClass cls, std::uint32_t tag, bool constructed,
                 Bytes content, std::vector<Value> children) {
  Value v;
  v.class_ = cls;
  v.tag_ = tag;
  v.constructed_ = constructed;
  v.content_ = std::move(content);
  v.children_ = std::move(children);
  return v;
}

Value Value::boolean(bool v) {
  return universal(UniversalTag::Boolean, false,
                   Bytes{static_cast<std::uint8_t>(v ? 0xff : 0x00)});
}

Value Value::integer(std::int64_t v) {
  return universal(UniversalTag::Integer, false, encode_twos_complement(v));
}

Value Value::enumerated(std::int64_t v) {
  return universal(UniversalTag::Enumerated, false, encode_twos_complement(v));
}

Value Value::octet_string(Bytes content) {
  return universal(UniversalTag::OctetString, false, std::move(content));
}

Value Value::ia5string(std::string_view s) {
  return universal(UniversalTag::Ia5String, false, common::to_bytes(s));
}

Value Value::utf8string(std::string_view s) {
  return universal(UniversalTag::Utf8String, false, common::to_bytes(s));
}

Value Value::printable(std::string_view s) {
  return universal(UniversalTag::PrintableString, false, common::to_bytes(s));
}

Value Value::null() { return universal(UniversalTag::Null, false, {}); }

Value Value::oid(std::vector<std::uint32_t> arcs) {
  // ISO 8825 §8.19: first two arcs pack into one octet; remaining arcs are
  // base-128 with continuation bits.
  Bytes content;
  if (arcs.size() >= 2) {
    content.push_back(static_cast<std::uint8_t>(arcs[0] * 40 + arcs[1]));
  } else if (arcs.size() == 1) {
    content.push_back(static_cast<std::uint8_t>(arcs[0] * 40));
  }
  for (std::size_t i = 2; i < arcs.size(); ++i) {
    std::uint32_t arc = arcs[i];
    Bytes chunk;
    chunk.push_back(static_cast<std::uint8_t>(arc & 0x7f));
    arc >>= 7;
    while (arc != 0) {
      chunk.push_back(static_cast<std::uint8_t>(0x80 | (arc & 0x7f)));
      arc >>= 7;
    }
    content.insert(content.end(), chunk.rbegin(), chunk.rend());
  }
  return universal(UniversalTag::ObjectIdentifier, false, std::move(content));
}

Value Value::sequence(std::vector<Value> children) {
  return universal(UniversalTag::Sequence, true, {}, std::move(children));
}

Value Value::set(std::vector<Value> children) {
  return universal(UniversalTag::Set, true, {}, std::move(children));
}

Value Value::context(std::uint32_t tag, Value inner) {
  std::vector<Value> children;
  children.push_back(std::move(inner));
  return raw(TagClass::ContextSpecific, tag, true, {}, std::move(children));
}

Value Value::context_primitive(std::uint32_t tag, Bytes content) {
  return raw(TagClass::ContextSpecific, tag, false, std::move(content), {});
}

Value Value::application(std::uint32_t tag, std::vector<Value> children) {
  return raw(TagClass::Application, tag, true, {}, std::move(children));
}

const Value* Value::find_context(std::uint32_t t) const noexcept {
  for (const Value& c : children_) {
    if (c.tag_class() == TagClass::ContextSpecific && c.tag() == t) return &c;
  }
  return nullptr;
}

common::Result<std::int64_t> Value::as_int() const {
  const bool int_like = is_universal(UniversalTag::Integer) ||
                        is_universal(UniversalTag::Enumerated) ||
                        class_ == TagClass::ContextSpecific;
  if (!int_like || constructed_)
    return common::Error::make(kWrongType, "not an INTEGER: " + to_string());
  if (content_.empty() || content_.size() > 8)
    return common::Error::make(kBadLength, "INTEGER content length invalid");
  std::int64_t v = (content_[0] & 0x80) ? -1 : 0;
  for (std::uint8_t octet : content_) v = (v << 8) | octet;
  return v;
}

common::Result<bool> Value::as_bool() const {
  if (!is_universal(UniversalTag::Boolean) || content_.size() != 1)
    return common::Error::make(kWrongType, "not a BOOLEAN: " + to_string());
  return content_[0] != 0;
}

common::Result<std::string> Value::as_string() const {
  const bool string_like = is_universal(UniversalTag::Ia5String) ||
                           is_universal(UniversalTag::Utf8String) ||
                           is_universal(UniversalTag::PrintableString) ||
                           is_universal(UniversalTag::GeneralizedTime) ||
                           class_ == TagClass::ContextSpecific;
  if (!string_like || constructed_)
    return common::Error::make(kWrongType, "not a string: " + to_string());
  return std::string(content_.begin(), content_.end());
}

common::Result<Bytes> Value::as_octets() const {
  if (constructed_)
    return common::Error::make(kWrongType,
                               "constructed value has no content octets");
  return content_;
}

common::Result<std::vector<std::uint32_t>> Value::as_oid() const {
  if (!is_universal(UniversalTag::ObjectIdentifier) || content_.empty())
    return common::Error::make(kWrongType, "not an OID: " + to_string());
  std::vector<std::uint32_t> arcs;
  arcs.push_back(content_[0] / 40);
  arcs.push_back(content_[0] % 40);
  std::uint32_t acc = 0;
  for (std::size_t i = 1; i < content_.size(); ++i) {
    acc = (acc << 7) | (content_[i] & 0x7f);
    if ((content_[i] & 0x80) == 0) {
      arcs.push_back(acc);
      acc = 0;
    }
  }
  return arcs;
}

common::Result<Value> Value::unwrap_context(std::uint32_t t) const {
  if (!is_context(t) || !constructed_ || children_.size() != 1)
    return common::Error::make(
        kWrongType, common::strf("not an explicit [%u]: %s", t, to_string().c_str()));
  return children_[0];
}

bool Value::operator==(const Value& other) const {
  return class_ == other.class_ && tag_ == other.tag_ &&
         constructed_ == other.constructed_ && content_ == other.content_ &&
         children_ == other.children_;
}

std::string Value::to_string() const {
  std::string head;
  switch (class_) {
    case TagClass::Universal:
      switch (static_cast<UniversalTag>(tag_)) {
        case UniversalTag::Boolean:
          return content_.size() == 1 && content_[0] ? "TRUE" : "FALSE";
        case UniversalTag::Integer:
        case UniversalTag::Enumerated: {
          if (constructed_) {
            // Hostile encodings only — as_int() rejects constructed values
            // with a message that renders this value, so calling it here
            // would recurse without bound. Render generically instead.
            head = tag_ == static_cast<std::uint32_t>(UniversalTag::Enumerated)
                       ? "ENUM"
                       : "INTEGER";
            break;
          }
          auto v = as_int();
          head = v.ok() ? std::to_string(v.value()) : "INTEGER<bad>";
          return (tag_ == static_cast<std::uint32_t>(UniversalTag::Enumerated)
                      ? "ENUM "
                      : "") +
                 head;
        }
        case UniversalTag::Null:
          return "NULL";
        case UniversalTag::OctetString:
          return "OCTETS(" + common::hexdump(content_, 16) + ")";
        case UniversalTag::Ia5String:
        case UniversalTag::Utf8String:
        case UniversalTag::PrintableString:
          return '"' + std::string(content_.begin(), content_.end()) + '"';
        case UniversalTag::ObjectIdentifier: {
          // Same recursion hazard as INTEGER above: as_oid() rejects these
          // shapes with a message that renders this value.
          if (constructed_ || content_.empty()) return "OID<bad>";
          auto arcs = as_oid();
          if (!arcs.ok()) return "OID<bad>";
          std::string s = "OID ";
          for (std::size_t i = 0; i < arcs.value().size(); ++i) {
            if (i) s += '.';
            s += std::to_string(arcs.value()[i]);
          }
          return s;
        }
        case UniversalTag::Sequence:
          head = "SEQUENCE";
          break;
        case UniversalTag::Set:
          head = "SET";
          break;
        default:
          head = common::strf("UNIVERSAL[%u]", tag_);
      }
      break;
    case TagClass::Application:
      head = common::strf("APPLICATION[%u]", tag_);
      break;
    case TagClass::ContextSpecific:
      head = common::strf("[%u]", tag_);
      break;
    case TagClass::Private:
      head = common::strf("PRIVATE[%u]", tag_);
      break;
  }
  if (!constructed_) return head + "(" + common::hexdump(content_, 16) + ")";
  std::string s = head + " { ";
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (i) s += ", ";
    s += children_[i].to_string();
  }
  s += " }";
  return s;
}

}  // namespace mcam::asn1
