// ASN.1 value model (ISO 8824).
//
// The paper specifies all MCAM PDUs in ASN.1 and generates C++ data
// structures plus encode/decode routines from that specification ([9], [16]).
// We reproduce the generated-code layer as a dynamic value tree: a Value is
// a (tag class, tag number, primitive|constructed) node holding either
// content octets or child values. Typed factory functions and checked
// accessors give the ergonomics of generated structs while keeping one codec.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace mcam::asn1 {

using common::Bytes;
using common::ByteSpan;

enum class TagClass : std::uint8_t {
  Universal = 0,
  Application = 1,
  ContextSpecific = 2,
  Private = 3,
};

/// Universal tag numbers used by this project (subset of ISO 8824).
enum class UniversalTag : std::uint32_t {
  Boolean = 1,
  Integer = 2,
  BitString = 3,
  OctetString = 4,
  Null = 5,
  ObjectIdentifier = 6,
  Enumerated = 10,
  Utf8String = 12,
  Sequence = 16,  // also SEQUENCE OF
  Set = 17,
  PrintableString = 19,
  Ia5String = 22,
  GeneralizedTime = 24,
};

/// One node of an ASN.1 value tree.
class Value {
 public:
  Value() = default;

  // ---- factories (the "generated constructors") ------------------------

  static Value boolean(bool v);
  static Value integer(std::int64_t v);
  static Value enumerated(std::int64_t v);
  static Value octet_string(Bytes content);
  static Value ia5string(std::string_view s);
  static Value utf8string(std::string_view s);
  static Value printable(std::string_view s);
  static Value null();
  /// OBJECT IDENTIFIER from arcs, e.g. {1,3,6,1}.
  static Value oid(std::vector<std::uint32_t> arcs);
  static Value sequence(std::vector<Value> children);
  static Value set(std::vector<Value> children);
  /// [n] EXPLICIT wrapper (constructed context tag around one child).
  static Value context(std::uint32_t tag, Value inner);
  /// [n] IMPLICIT primitive (context tag directly carrying content octets).
  static Value context_primitive(std::uint32_t tag, Bytes content);
  /// APPLICATION-class constructed tag — used for MCAM PDU outer tags.
  static Value application(std::uint32_t tag, std::vector<Value> children);

  // ---- structure --------------------------------------------------------

  [[nodiscard]] TagClass tag_class() const noexcept { return class_; }
  [[nodiscard]] std::uint32_t tag() const noexcept { return tag_; }
  [[nodiscard]] bool constructed() const noexcept { return constructed_; }
  [[nodiscard]] bool is_universal(UniversalTag t) const noexcept {
    return class_ == TagClass::Universal &&
           tag_ == static_cast<std::uint32_t>(t);
  }
  [[nodiscard]] bool is_context(std::uint32_t t) const noexcept {
    return class_ == TagClass::ContextSpecific && tag_ == t;
  }

  [[nodiscard]] const Bytes& content() const noexcept { return content_; }
  [[nodiscard]] const std::vector<Value>& children() const noexcept {
    return children_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return children_.size(); }
  [[nodiscard]] const Value& child(std::size_t i) const {
    return children_.at(i);
  }
  void append(Value v) { children_.push_back(std::move(v)); }

  /// First child carrying context tag `t`, if present (OPTIONAL fields).
  [[nodiscard]] const Value* find_context(std::uint32_t t) const noexcept;

  // ---- checked accessors (decode-side "generated getters") --------------
  // These return an error Result instead of throwing: a malformed peer PDU
  // is an expected runtime condition, not a programming error.

  [[nodiscard]] common::Result<std::int64_t> as_int() const;
  [[nodiscard]] common::Result<bool> as_bool() const;
  [[nodiscard]] common::Result<std::string> as_string() const;
  [[nodiscard]] common::Result<Bytes> as_octets() const;
  [[nodiscard]] common::Result<std::vector<std::uint32_t>> as_oid() const;
  /// Unwrap an [n] EXPLICIT: requires constructed context tag with 1 child.
  [[nodiscard]] common::Result<Value> unwrap_context(std::uint32_t t) const;

  /// Structural equality (tag, class, form, content, children).
  bool operator==(const Value& other) const;

  /// Diagnostic rendering, e.g. `SEQUENCE { INTEGER 5, IA5String "x" }`.
  [[nodiscard]] std::string to_string() const;

  // Raw constructor used by the decoder.
  static Value raw(TagClass cls, std::uint32_t tag, bool constructed,
                   Bytes content, std::vector<Value> children);

 private:
  TagClass class_ = TagClass::Universal;
  std::uint32_t tag_ = static_cast<std::uint32_t>(UniversalTag::Null);
  bool constructed_ = false;
  Bytes content_;                 // primitive form
  std::vector<Value> children_;   // constructed form
};

/// Error codes produced by ASN.1 accessors and the BER decoder.
enum Asn1Error : int {
  kWrongType = 1001,
  kTruncated = 1002,
  kBadLength = 1003,
  kBadTag = 1004,
  kTrailingBytes = 1005,
  kDepthExceeded = 1006,
};

}  // namespace mcam::asn1
