// XMovie colormap codec tests: palette fitting, index round-trips,
// quantization quality bounds, wire framing, and the stream encoder's
// palette-update behaviour across a scene change.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "mtp/colormap.hpp"

namespace mcam::mtp {
namespace {

RgbImage flat_image(int w, int h, Rgb color) {
  RgbImage img;
  img.width = w;
  img.height = h;
  img.pixels.assign(static_cast<std::size_t>(w) * h, color);
  return img;
}

RgbImage gradient_image(int w, int h) {
  RgbImage img;
  img.width = w;
  img.height = h;
  img.pixels.reserve(static_cast<std::size_t>(w) * h);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      img.pixels.push_back(Rgb{static_cast<std::uint8_t>(x * 255 / (w - 1)),
                               static_cast<std::uint8_t>(y * 255 / (h - 1)),
                               static_cast<std::uint8_t>((x + y) & 0xff)});
  return img;
}

RgbImage noise_image(int w, int h, std::uint64_t seed) {
  common::Rng rng(seed);
  RgbImage img;
  img.width = w;
  img.height = h;
  img.pixels.reserve(static_cast<std::size_t>(w) * h);
  for (int i = 0; i < w * h; ++i)
    img.pixels.push_back(Rgb{static_cast<std::uint8_t>(rng()),
                             static_cast<std::uint8_t>(rng()),
                             static_cast<std::uint8_t>(rng())});
  return img;
}

TEST(Colormap, FlatImageNeedsOneEntry) {
  const RgbImage img = flat_image(16, 16, Rgb{200, 100, 50});
  const Colormap map = build_colormap(img);
  ASSERT_EQ(map.size(), 1u);
  // Centroid of one uniform bin = the color itself.
  EXPECT_EQ(map[0], (Rgb{200, 100, 50}));

  const auto indices = encode_frame(img, map);
  auto decoded = decode_frame(16, 16, indices, map);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().pixels, img.pixels);
  EXPECT_DOUBLE_EQ(mean_squared_error(img, decoded.value()), 0.0);
}

TEST(Colormap, PaletteCapIsRespected) {
  const RgbImage img = noise_image(64, 64, 5);
  for (std::size_t cap : {1u, 16u, 256u}) {
    const Colormap map = build_colormap(img, cap);
    EXPECT_LE(map.size(), cap);
    EXPECT_GE(map.size(), 1u);
  }
}

TEST(Colormap, MoreEntriesNeverWorse) {
  const RgbImage img = gradient_image(48, 48);
  double previous = 1e18;
  for (std::size_t entries : {4u, 16u, 64u, 256u}) {
    const Colormap map = build_colormap(img, entries);
    auto decoded =
        decode_frame(48, 48, encode_frame(img, map), map);
    ASSERT_TRUE(decoded.ok());
    const double mse = mean_squared_error(img, decoded.value());
    EXPECT_LE(mse, previous + 1e-9) << entries;
    previous = mse;
  }
  // 3-3-2 binning bounds the error: bin width ≤ 64 per channel ⇒ MSE well
  // under 64² even in the worst channel.
  EXPECT_LT(previous, 700.0);
}

TEST(Colormap, DecodeValidatesInput) {
  const Colormap map = {Rgb{0, 0, 0}};
  EXPECT_FALSE(decode_frame(4, 4, std::vector<std::uint8_t>(15, 0), map).ok());
  EXPECT_FALSE(
      decode_frame(2, 2, std::vector<std::uint8_t>{0, 0, 0, 9}, map).ok());
  EXPECT_FALSE(decode_frame(2, 2, std::vector<std::uint8_t>(4, 0), {}).ok());
}

TEST(ColormapWire, FrameRoundTripWithAndWithoutPalette) {
  const RgbImage img = gradient_image(20, 10);
  const Colormap map = build_colormap(img, 64);
  const auto indices = encode_frame(img, map);

  // With palette.
  auto with = unpack_colormap_frame(
      pack_colormap_frame(20, 10, indices, &map));
  ASSERT_TRUE(with.ok());
  EXPECT_TRUE(with.value().has_palette);
  EXPECT_EQ(with.value().palette, map);
  EXPECT_EQ(with.value().indices, indices);
  EXPECT_EQ(with.value().width, 20);

  // Without.
  auto without =
      unpack_colormap_frame(pack_colormap_frame(20, 10, indices, nullptr));
  ASSERT_TRUE(without.ok());
  EXPECT_FALSE(without.value().has_palette);
  EXPECT_EQ(without.value().indices, indices);
}

TEST(ColormapWire, RejectsTruncatedAndMismatched) {
  const RgbImage img = flat_image(8, 8, Rgb{1, 2, 3});
  const Colormap map = build_colormap(img);
  common::Bytes wire =
      pack_colormap_frame(8, 8, encode_frame(img, map), &map);
  for (std::size_t cut : {1ul, 4ul, wire.size() / 2}) {
    common::Bytes partial(wire.begin(),
                          wire.begin() + static_cast<long>(cut));
    EXPECT_FALSE(unpack_colormap_frame(partial).ok()) << cut;
  }
  wire.push_back(0);  // extra index byte
  EXPECT_FALSE(unpack_colormap_frame(wire).ok());
}

TEST(ColormapStreamTest, PaletteUpdateOnlyOnSceneChange) {
  ColormapStream encoder;
  ColormapStreamDecoder decoder;

  // Scene 1: reddish frames with tiny variations.
  common::Rng rng(3);
  auto scene = [&](std::uint8_t base_r, std::uint8_t base_b) {
    RgbImage img = flat_image(32, 32, Rgb{base_r, 40, base_b});
    for (auto& p : img.pixels)
      p.g = static_cast<std::uint8_t>(40 + rng.below(8));
    return img;
  };

  for (int i = 0; i < 5; ++i) {
    auto decoded = decoder.decode(encoder.encode(scene(200, 10)));
    ASSERT_TRUE(decoded.ok()) << i;
  }
  EXPECT_EQ(encoder.palette_updates(), 1u);  // first frame only

  // Scene change: blue frames — palette must be re-fitted and re-sent.
  for (int i = 0; i < 5; ++i) {
    auto decoded = decoder.decode(encoder.encode(scene(10, 220)));
    ASSERT_TRUE(decoded.ok());
  }
  EXPECT_EQ(encoder.palette_updates(), 2u);
}

TEST(ColormapStreamTest, DecoderNeedsPaletteFirst) {
  ColormapStreamDecoder decoder;
  const RgbImage img = flat_image(4, 4, Rgb{9, 9, 9});
  const Colormap map = build_colormap(img);
  // A frame *without* palette arrives first (e.g. joined mid-stream).
  auto r = decoder.decode(
      pack_colormap_frame(4, 4, encode_frame(img, map), nullptr));
  EXPECT_FALSE(r.ok());
}

TEST(ColormapStreamTest, ReconstructionQualityWithinQuantizerBound) {
  ColormapStream encoder;
  ColormapStreamDecoder decoder;
  const RgbImage img = gradient_image(64, 48);
  auto decoded = decoder.decode(encoder.encode(img));
  ASSERT_TRUE(decoded.ok());
  EXPECT_LT(mean_squared_error(img, decoded.value()), 700.0);
  EXPECT_EQ(decoded.value().width, 64);
  EXPECT_EQ(decoded.value().height, 48);
}

}  // namespace
}  // namespace mcam::mtp
