// Simulated datagram network tests: delivery, impairments, determinism.
#include <gtest/gtest.h>

#include "net/network.hpp"

namespace mcam::net {
namespace {

using common::SimTime;

Impairments clean_link() {
  Impairments imp;
  imp.latency = SimTime::from_us(100);
  imp.jitter = {};
  imp.loss = 0.0;
  imp.bandwidth_bps = 0.0;  // infinite
  return imp;
}

TEST(SimNetwork, DeliversInOrderOnCleanLink) {
  SimNetwork net(1, clean_link());
  Socket& a = net.open({"a", 1});
  Socket& b = net.open({"b", 1});
  for (int i = 0; i < 5; ++i) a.send(b.address(), {static_cast<uint8_t>(i)});
  net.run_all();
  for (int i = 0; i < 5; ++i) {
    auto d = b.receive();
    ASSERT_TRUE(d.has_value()) << i;
    EXPECT_EQ(d->payload[0], i);
    EXPECT_EQ(d->delivered_at - d->sent_at, SimTime::from_us(100));
  }
  EXPECT_FALSE(b.receive().has_value());
}

TEST(SimNetwork, DuplicateBindRejected) {
  SimNetwork net;
  net.open({"a", 1});
  EXPECT_THROW(net.open({"a", 1}), std::logic_error);
  EXPECT_NO_THROW(net.open({"a", 2}));
}

TEST(SimNetwork, UnboundDestinationCountsAsDrop) {
  SimNetwork net(1, clean_link());
  Socket& a = net.open({"a", 1});
  a.send({"ghost", 9}, {1, 2, 3});
  net.run_all();
  EXPECT_EQ(net.stats().dropped, 1u);
  EXPECT_EQ(net.stats().delivered, 0u);
}

TEST(SimNetwork, LossRateApproximatelyHonored) {
  Impairments lossy = clean_link();
  lossy.loss = 0.3;
  SimNetwork net(7, lossy);
  Socket& a = net.open({"a", 1});
  Socket& b = net.open({"b", 1});
  for (int i = 0; i < 2000; ++i) a.send(b.address(), {0});
  net.run_all();
  const double ratio = net.stats().delivery_ratio();
  EXPECT_GT(ratio, 0.65);
  EXPECT_LT(ratio, 0.75);
}

TEST(SimNetwork, JitterSpreadsArrivals) {
  Impairments jittery = clean_link();
  jittery.jitter = SimTime::from_ms(2);
  SimNetwork net(3, jittery);
  Socket& a = net.open({"a", 1});
  Socket& b = net.open({"b", 1});
  for (int i = 0; i < 100; ++i) a.send(b.address(), {0});
  net.run_all();
  SimTime min_d{std::numeric_limits<std::int64_t>::max()}, max_d{};
  while (auto d = b.receive()) {
    const SimTime transit = d->delivered_at - d->sent_at;
    min_d = std::min(min_d, transit);
    max_d = std::max(max_d, transit);
  }
  EXPECT_GE(min_d, SimTime::from_us(100));
  EXPECT_GT((max_d - min_d).ns, SimTime::from_ms(1).ns);
}

TEST(SimNetwork, BandwidthSerializesBackToBackSends) {
  Impairments slow = clean_link();
  slow.bandwidth_bps = 8e6;  // 1 byte/us
  SimNetwork net(1, slow);
  Socket& a = net.open({"a", 1});
  Socket& b = net.open({"b", 1});
  // Two 1000-byte datagrams sent at t=0: second must queue behind the first.
  a.send(b.address(), common::Bytes(1000, 0));
  a.send(b.address(), common::Bytes(1000, 0));
  net.run_all();
  auto first = b.receive();
  auto second = b.receive();
  ASSERT_TRUE(first && second);
  EXPECT_EQ((first->delivered_at - first->sent_at).ns,
            SimTime::from_us(1100).ns);  // 1ms tx + 100us prop
  EXPECT_EQ((second->delivered_at - second->sent_at).ns,
            SimTime::from_us(2100).ns);  // waits for the first
}

TEST(SimNetwork, PerLinkOverrides) {
  SimNetwork net(1, clean_link());
  Impairments slow = clean_link();
  slow.latency = SimTime::from_ms(50);
  net.set_link("a", "c", slow);
  Socket& a = net.open({"a", 1});
  Socket& b = net.open({"b", 1});
  Socket& c = net.open({"c", 1});
  a.send(b.address(), {1});
  a.send(c.address(), {2});
  net.run_all();
  EXPECT_EQ((b.receive()->delivered_at).ns, SimTime::from_us(100).ns);
  EXPECT_EQ((c.receive()->delivered_at).ns, SimTime::from_ms(50).ns);
}

TEST(SimNetwork, DeterministicGivenSeed) {
  const auto run_once = [] {
    Impairments imp = clean_link();
    imp.loss = 0.2;
    imp.jitter = SimTime::from_ms(1);
    SimNetwork net(42, imp);
    Socket& a = net.open({"a", 1});
    Socket& b = net.open({"b", 1});
    for (int i = 0; i < 500; ++i) a.send(b.address(), {0});
    net.run_all();
    return net.stats().delivered;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SimNetwork, RunUntilAdvancesClockWithoutTraffic) {
  SimNetwork net;
  EXPECT_EQ(net.now().ns, 0);
  net.run_until(SimTime::from_ms(5));
  EXPECT_EQ(net.now(), SimTime::from_ms(5));
  EXPECT_FALSE(net.next_event().has_value());
}

}  // namespace
}  // namespace mcam::net
