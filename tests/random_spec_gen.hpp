// Seeded random Estelle specification generator, shared by the differential
// suites (random_spec_differential_test.cpp, ready_set_differential_test.cpp).
//
// One seed, one specification, bit-identical across rebuilds: module trees
// with process/activity attributes, intra- and cross-shard channels,
// producers, relays, kind/parity-guarded consumers, delay clauses,
// priorities, loss Rngs, deliberately ill-formed constructs (a captured
// budget shared across channel-linked siblings; a loss Rng shared across
// shards), and a sparse-activity flavor (blocks of wired-but-idle entities
// whose writer never fires — the dirty-set scheduler must keep them out of
// every round while full scans keep paying for them).
//
// Decidability invariants the differential contracts rely on: guards read
// only their own module's state or the offered head interaction (the
// ill-formed flavors deliberately break this in ways the conflict-
// serializing backends handle), every out-IP is written by exactly one
// transition, and all activity is budget-bounded so every spec quiesces.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "asn1/value.hpp"
#include "common/rng.hpp"
#include "estelle/module.hpp"

namespace mcam::estelle::specgen {

struct GeneratedWorld {
  std::unique_ptr<Specification> spec;
  /// Loss generators the IPs point at (IPs hold raw pointers).
  std::vector<std::unique_ptr<common::Rng>> loss_rngs;
  int nsys = 0;
  bool has_delay = false;
  /// False on specs whose semantics depend on candidate order in ways only
  /// the conflict-serializing backends preserve (see header comment).
  bool parallelsim_ok = true;
  /// True when the spec contains the shared-budget pair that forces a
  /// same-round revalidation skip (the announce-after-revalidation probe).
  bool has_revalidation_skip = false;
  /// True when the sparse-activity flavor added idle entities.
  bool sparse = false;
  int idle_modules = 0;
};

struct GenChannel {
  InteractionPoint* out = nullptr;
  InteractionPoint* in = nullptr;
  Module* from = nullptr;
  Module* to = nullptr;
  int kind = 0;
};

/// Builds the specification for `seed`. Pure: the same seed always yields
/// the same world, transitions, budgets and loss processes.
inline GeneratedWorld generate(std::uint64_t seed) {
  GeneratedWorld g;
  common::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x1234567ULL);
  g.spec = std::make_unique<Specification>("gen" + std::to_string(seed));

  const bool grab_flavor = seed % 5 == 3;  // shared-budget pair (see below)
  const bool sparse_flavor = seed % 4 == 1;  // idle-entity block (see below)
  g.nsys = 1 + static_cast<int>(rng.below(3));
  const bool rng_share_flavor = seed % 5 == 4 && g.nsys > 1;
  // Delay clauses only in single-shard specs: per-shard virtual clocks are
  // the sequential clock there, so delay maturation (and hence the exact
  // trace) stays comparable. The grab flavor's world split is additionally
  // round-composition-sensitive, so it stays delay-free too.
  const bool delays_allowed = g.nsys == 1 && !grab_flavor;

  // ---- module forest -----------------------------------------------------
  std::vector<std::vector<Module*>> sys_modules(
      static_cast<std::size_t>(g.nsys));
  for (int s = 0; s < g.nsys; ++s) {
    // The grab flavor needs a process-like shard 0 (activity-exclusive
    // subtrees never put both grabbers in one round).
    const bool activity_sys =
        (s == 0 && grab_flavor) ? false : rng.chance(0.15);
    auto& sys = g.spec->root().create_child<Module>(
        "sys" + std::to_string(s),
        activity_sys ? Attribute::SystemActivity : Attribute::SystemProcess);
    if (rng.chance(0.2)) sys.set_uniprocessor_host(true);
    auto& mods = sys_modules[static_cast<std::size_t>(s)];
    mods.push_back(&sys);
    const int children = 1 + static_cast<int>(rng.below(4));
    for (int i = 0; i < children; ++i) {
      Module* parent = mods[rng.below(mods.size())];
      const Attribute attr = is_activity_like(parent->attribute())
                                 ? Attribute::Activity
                                 : (rng.chance(0.3) ? Attribute::Activity
                                                    : Attribute::Process);
      mods.push_back(&parent->create_child<Module>(
          "m" + std::to_string(s) + "_" + std::to_string(i), attr));
    }
  }

  // ---- channels ----------------------------------------------------------
  std::vector<GenChannel> channels;
  int ip_no = 0;
  const auto add_channel = [&](Module* from, Module* to) -> GenChannel& {
    auto& o = from->ip("o" + std::to_string(ip_no));
    auto& i = to->ip("i" + std::to_string(ip_no));
    ++ip_no;
    connect(o, i);
    channels.push_back(
        {&o, &i, from, to, 100 + static_cast<int>(rng.below(5))});
    return channels.back();
  };

  for (int s = 0; s < g.nsys; ++s) {
    auto& mods = sys_modules[static_cast<std::size_t>(s)];
    const int nch = static_cast<int>(rng.below(3));  // 0..2 intra-shard
    for (int c = 0; c < nch && mods.size() >= 2; ++c) {
      Module* a = mods[rng.below(mods.size())];
      Module* b = mods[rng.below(mods.size())];
      if (a != b) add_channel(a, b);
    }
  }
  if (g.nsys > 1) {
    const int nch = 1 + static_cast<int>(rng.below(2));  // 1..2 cross-shard
    for (int c = 0; c < nch; ++c) {
      const auto sa = rng.below(static_cast<std::uint64_t>(g.nsys));
      auto sb = rng.below(static_cast<std::uint64_t>(g.nsys));
      if (sa == sb) sb = (sa + 1) % static_cast<std::uint64_t>(g.nsys);
      auto& ma = sys_modules[sa];
      auto& mb = sys_modules[sb];
      add_channel(ma[rng.below(ma.size())], mb[rng.below(mb.size())]);
    }
  }

  // ---- transition builders ----------------------------------------------
  // Every action bumps the module's state by one, so a module's final state
  // is its lifetime firing count — the world snapshot's strongest signal.
  const auto bump = [](Module& m) { m.set_state(m.state() + 1); };

  const auto cost = [&] { return common::SimTime::from_us(1 + rng.below(15)); };

  /// Spontaneous bounded producer writing `ch.out`.
  const auto add_producer = [&](GenChannel& ch, int index) {
    auto sent = std::make_shared<int>(0);
    const int budget = 2 + static_cast<int>(rng.below(5));
    auto t = ch.from->trans("prod" + std::to_string(index));
    if (delays_allowed && rng.chance(0.4)) {
      t.delay(common::SimTime::from_us(20 + rng.below(80)));
      g.has_delay = true;
    }
    t.priority(static_cast<int>(rng.below(3)))
        .cost(cost())
        .provided([sent, budget](Module&, const Interaction*) {
          return *sent < budget;
        })
        .action([sent, bump, out = ch.out, kind = ch.kind](
                    Module& m, const Interaction*) {
          bump(m);
          out->output(Interaction(kind, asn1::Value::integer(++*sent)));
        });
  };

  /// Consumer of `ch.in` that only counts. Sometimes a parity-guarded pair:
  /// an even-value transition plus a lower-priority catch-all, exercising
  /// `provided` over the offered head (and, on cross-shard channels, the
  /// GuardedCrossShardQueue conflict class).
  const auto add_counting_consumer = [&](GenChannel& ch, int index) {
    if (rng.chance(0.4)) {
      ch.to->trans("even" + std::to_string(index))
          .when(*ch.in, ch.kind)
          .priority(0)
          .cost(cost())
          .provided([](Module&, const Interaction* msg) {
            return msg != nullptr && msg->value.as_int().value_or(0) % 2 == 0;
          })
          .action([bump](Module& m, const Interaction*) { bump(m); });
      ch.to->trans("odd" + std::to_string(index))
          .when(*ch.in)
          .priority(5)
          .cost(cost())
          .action([bump](Module& m, const Interaction*) { bump(m); });
    } else {
      ch.to->trans("cons" + std::to_string(index))
          .when(*ch.in)
          .priority(static_cast<int>(rng.below(3)))
          .cost(cost())
          .action([bump](Module& m, const Interaction*) { bump(m); });
    }
  };

  // ---- wire consumers and writers ---------------------------------------
  // Each in-IP gets exactly one consumer (a relay when another channel
  // leaves the same module and still lacks a writer); each out-IP gets
  // exactly one writer (the relay, or a producer in the second pass).
  std::vector<char> out_written(channels.size(), 0);
  for (std::size_t c = 0; c < channels.size(); ++c) {
    GenChannel& ch = channels[c];
    std::size_t relay_target = channels.size();
    if (rng.chance(0.35)) {
      for (std::size_t d = 0; d < channels.size(); ++d) {
        if (d != c && !out_written[d] && channels[d].from == ch.to) {
          relay_target = d;
          break;
        }
      }
    }
    if (relay_target < channels.size()) {
      out_written[relay_target] = 1;
      auto forwarded = std::make_shared<int>(0);
      const int budget = 2 + static_cast<int>(rng.below(5));
      ch.to->trans("relay" + std::to_string(c))
          .when(*ch.in)
          .priority(static_cast<int>(rng.below(3)))
          .cost(cost())
          .action([forwarded, budget, bump, out = channels[relay_target].out,
                   kind = channels[relay_target].kind](Module& m,
                                                       const Interaction*) {
            bump(m);
            if (++*forwarded <= budget)
              out->output(Interaction(kind, asn1::Value::integer(*forwarded)));
          });
    } else {
      add_counting_consumer(ch, static_cast<int>(c));
    }
  }
  for (std::size_t c = 0; c < channels.size(); ++c)
    if (!out_written[c]) add_producer(channels[c], static_cast<int>(c));

  // ---- tickers -----------------------------------------------------------
  // Every module without a transition gets a bounded spontaneous ticker
  // (and some get an extra one), so no module is dead weight and priority
  // selection inside a module is exercised.
  for (auto& mods : sys_modules) {
    for (Module* m : mods) {
      const bool wants =
          m->transitions().empty() ? true : rng.chance(0.25);
      if (!wants) continue;
      auto ticks = std::make_shared<int>(0);
      const int budget = 3 + static_cast<int>(rng.below(6));
      auto t = m->trans("tick_" + m->name());
      // The first ticker of a delay-eligible spec is always delayed, so the
      // sweep reliably covers delay-clause dynamics.
      if (delays_allowed && (!g.has_delay || rng.chance(0.5))) {
        t.delay(common::SimTime::from_us(10 + rng.below(90)));
        g.has_delay = true;
      }
      t.priority(static_cast<int>(rng.below(4)))
          .cost(cost())
          .provided([ticks, budget](Module&, const Interaction*) {
            return *ticks < budget;
          })
          .action([ticks, bump](Module& m2, const Interaction*) {
            ++*ticks;
            bump(m2);
          });
    }
  }

  // ---- loss injection ----------------------------------------------------
  for (GenChannel& ch : channels) {
    if (!rng.chance(0.25)) continue;
    g.loss_rngs.push_back(std::make_unique<common::Rng>(rng()));
    ch.out->set_loss(0.1 + 0.2 * rng.uniform(), g.loss_rngs.back().get());
  }

  // ---- ill-formed flavors ------------------------------------------------
  if (grab_flavor) {
    // Two channel-linked siblings racing a shared captured budget: in the
    // final round both are candidates and the first firing zeroes the
    // budget, so the second must be revalidated away. Sequential announces
    // only the real firing; so must every conflict-serializing backend
    // (this is the announce-after-revalidation probe). The channel is what
    // makes ConflictAnalysis serialize the pair under Threaded; the engine
    // order of ParallelSim legally splits the budget differently.
    Module& host = *sys_modules[0][0];
    auto& x = host.create_child<Module>("grab_x", Attribute::Process);
    auto& y = host.create_child<Module>("grab_y", Attribute::Process);
    add_channel(&x, &y);
    const std::size_t link = channels.size() - 1;
    add_producer(channels[link], static_cast<int>(link));
    add_counting_consumer(channels[link], static_cast<int>(link));
    auto budget = std::make_shared<int>(3 + 2 * static_cast<int>(rng.below(3)));
    for (Module* m : {&x, &y}) {
      m->trans("grab_" + m->name())
          .cost(cost())
          .provided([budget](Module&, const Interaction*) {
            return *budget > 0;
          })
          .action([budget, bump](Module& m2, const Interaction*) {
            --*budget;
            bump(m2);
          });
    }
    g.parallelsim_ok = false;
    g.has_revalidation_skip = true;
  }
  if (rng_share_flavor) {
    // One loss Rng feeding writer IPs in two different shards — the
    // SharedLossRng conflict. Draw order then depends on cross-shard
    // candidate order, which only the serializing backends pin down.
    // (Indices, not references: add_channel may reallocate the vector.)
    add_channel(sys_modules[0][0], sys_modules[0].back());
    const std::size_t ia = channels.size() - 1;
    add_channel(sys_modules[1][0], sys_modules[1].back());
    const std::size_t ib = channels.size() - 1;
    add_producer(channels[ia], static_cast<int>(ia));
    add_counting_consumer(channels[ia], static_cast<int>(ia));
    add_producer(channels[ib], static_cast<int>(ib));
    add_counting_consumer(channels[ib], static_cast<int>(ib));
    g.loss_rngs.push_back(std::make_unique<common::Rng>(rng()));
    channels[ia].out->set_loss(0.25, g.loss_rngs.back().get());
    channels[ib].out->set_loss(0.25, g.loss_rngs.back().get());
    g.parallelsim_ok = false;
  }
  if (sparse_flavor) {
    // Sparse-activity flavor: a block of idle entities, wired like real
    // consumers but waiting on a writer that never fires (the "mute" module
    // carries no transitions, so its out-IPs stay silent). They contribute
    // zero firings and an unchanged world; what they test is the hot path —
    // a dirty-set scheduler must never examine them after the seeding
    // round, while the full-scan baseline pays for them every round. Placed
    // last so every earlier RNG draw (and thus every other flavor) is
    // unchanged for a given seed.
    Module& host = *sys_modules[0][0];
    const Attribute attr = is_activity_like(host.attribute())
                               ? Attribute::Activity
                               : Attribute::Process;
    auto& mute = host.create_child<Module>("mute", attr);
    g.sparse = true;
    g.idle_modules = 12 + static_cast<int>(rng.below(20));
    for (int i = 0; i < g.idle_modules; ++i) {
      auto& idle = host.create_child<Module>("idle" + std::to_string(i), attr);
      auto& out = mute.ip("mo" + std::to_string(i));
      auto& in = idle.ip("mi" + std::to_string(i));
      connect(out, in);
      idle.trans("never" + std::to_string(i))
          .when(in)
          .cost(cost())
          .action([bump](Module& m2, const Interaction*) { bump(m2); });
    }
  }

  g.spec->initialize();
  return g;
}

inline std::string world_snapshot(Specification& spec) {
  std::string out;
  spec.root().for_each([&](Module& m) {
    out += m.path() + "=" + std::to_string(m.state());
    for (const auto& ip : m.ips()) {
      out += ":" + ip->name() + "(q" + std::to_string(ip->queue_length()) +
             ",s" + std::to_string(ip->sent()) + ",d" +
             std::to_string(ip->dropped()) + ")";
    }
    out += ";";
  });
  return out;
}

}  // namespace mcam::estelle::specgen
