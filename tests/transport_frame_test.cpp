// Wire-frame tests for the distributed shard runtime (transport/frame.hpp):
// every catalogue frame must survive BER encode → length-prefixed framing →
// reassembly → decode bit-exactly (u64 extremes included — hashes ride an
// int64 bit-cast), split read() boundaries must never corrupt or duplicate a
// frame, and malformed bytes (truncation, garbage, absurd length prefixes,
// flipped bits) must surface kNeedMore/kError — never a crash, never a
// silently wrong frame.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "asn1/ber.hpp"
#include "asn1/value.hpp"
#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "estelle/transport/frame.hpp"

namespace mcam::estelle {
namespace {

using common::ByteSpan;
using common::Bytes;

std::vector<Frame> catalogue() {
  std::vector<Frame> all;

  Frame hello;
  hello.type = FrameType::Hello;
  hello.node = 3;
  hello.nodes = 7;
  hello.shards = 4096;
  hello.spec_hash = std::numeric_limits<std::uint64_t>::max();  // sign bit set
  hello.topology_version = 0x8000000000000001ull;
  hello.assign_hash = 0xdeadbeefcafef00dull;
  all.push_back(hello);

  Frame welcome;
  welcome.type = FrameType::Welcome;
  welcome.node = 0;
  welcome.accept = false;
  welcome.reason = "specification fingerprint mismatch — Ω≠ω";  // UTF-8
  all.push_back(welcome);

  Frame transfer;
  transfer.type = FrameType::Transfer;
  transfer.channel = 11;
  transfer.dir = 1;
  transfer.round = std::numeric_limits<std::uint64_t>::max() - 1;
  transfer.sent_at_ns = -42;  // negative virtual stamps must survive
  transfer.msg.kind = 104;
  transfer.msg.payload = Bytes{0x00, 0xff, 0x80, 0x7f};
  transfer.msg.value = asn1::Value::sequence(
      {asn1::Value::integer(-7), asn1::Value::utf8string("pdu"),
       asn1::Value::boolean(true)});
  all.push_back(transfer);

  Frame bare_transfer;  // no structured value — the [0] wrapper is absent
  bare_transfer.type = FrameType::Transfer;
  bare_transfer.channel = 0;
  bare_transfer.dir = 0;
  bare_transfer.round = 1;
  bare_transfer.sent_at_ns = std::numeric_limits<std::int64_t>::max();
  bare_transfer.msg.kind = 0;
  all.push_back(bare_transfer);

  Frame adv;
  adv.type = FrameType::Advertise;
  adv.shard = 2;
  adv.round = 123456789;
  all.push_back(adv);

  Frame null_round;
  null_round.type = FrameType::NullRound;
  null_round.shard = 4095;
  null_round.round = std::numeric_limits<std::uint64_t>::max();
  all.push_back(null_round);

  Frame done;
  done.type = FrameType::RoundDone;
  done.node = 6;
  done.round = 99;
  done.quiescent = true;
  all.push_back(done);

  Frame probe;
  probe.type = FrameType::Probe;
  probe.node = 0;
  probe.epoch = 17;
  all.push_back(probe);

  Frame ack;
  ack.type = FrameType::ProbeAck;
  ack.node = 5;
  ack.epoch = 17;
  ack.quiescent = true;
  ack.sent = 0xffffffffffffffffull;
  ack.recv = 0x8000000000000000ull;
  all.push_back(ack);

  Frame bye;
  bye.type = FrameType::Bye;
  bye.node = 1;
  all.push_back(bye);

  Frame empty_batch;  // legal, if pointless: a batch with no entries
  empty_batch.type = FrameType::TransferBatch;
  empty_batch.round = 7;
  all.push_back(empty_batch);

  Frame one_batch;
  one_batch.type = FrameType::TransferBatch;
  one_batch.round = std::numeric_limits<std::uint64_t>::max();
  {
    TransferEntry e;
    e.channel = 3;
    e.dir = 1;
    e.sent_at_ns = -1;
    e.msg.kind = 9;
    e.msg.payload = Bytes{0x80};
    one_batch.entries.push_back(std::move(e));
  }
  all.push_back(one_batch);

  Frame fat_batch;  // a round's worth of mixed entries, extremes included
  fat_batch.type = FrameType::TransferBatch;
  fat_batch.round = 123456;
  for (int i = 0; i < 17; ++i) {
    TransferEntry e;
    e.channel = i == 0 ? 0xffffffffu : static_cast<std::uint32_t>(i);
    e.dir = static_cast<std::uint8_t>(i & 1);
    e.sent_at_ns = i == 1 ? std::numeric_limits<std::int64_t>::min() : i * 1000;
    e.msg.kind = i;
    e.msg.payload =
        Bytes(static_cast<std::size_t>(i % 5), static_cast<std::uint8_t>(255 - i));
    if (i % 3 == 0)
      e.msg.value = asn1::Value::sequence(
          {asn1::Value::integer(i), asn1::Value::boolean(i % 2 == 0)});
    fat_batch.entries.push_back(std::move(e));
  }
  all.push_back(fat_batch);

  return all;
}

void expect_equal(const Frame& got, const Frame& want, const char* where) {
  SCOPED_TRACE(where);
  ASSERT_EQ(got.type, want.type) << frame_type_name(want.type);
  EXPECT_EQ(got.node, want.node);
  EXPECT_EQ(got.nodes, want.nodes);
  EXPECT_EQ(got.shards, want.shards);
  EXPECT_EQ(got.spec_hash, want.spec_hash);
  EXPECT_EQ(got.topology_version, want.topology_version);
  EXPECT_EQ(got.assign_hash, want.assign_hash);
  EXPECT_EQ(got.accept, want.accept);
  EXPECT_EQ(got.reason, want.reason);
  EXPECT_EQ(got.channel, want.channel);
  EXPECT_EQ(got.dir, want.dir);
  EXPECT_EQ(got.sent_at_ns, want.sent_at_ns);
  EXPECT_EQ(got.msg.kind, want.msg.kind);
  EXPECT_EQ(got.msg.payload, want.msg.payload);
  EXPECT_TRUE(got.msg.value == want.msg.value) << "ASN.1 value diverged";
  EXPECT_EQ(got.shard, want.shard);
  EXPECT_EQ(got.round, want.round);
  EXPECT_EQ(got.epoch, want.epoch);
  EXPECT_EQ(got.quiescent, want.quiescent);
  EXPECT_EQ(got.sent, want.sent);
  EXPECT_EQ(got.recv, want.recv);
  EXPECT_EQ(got.rejected_entries, want.rejected_entries);
  ASSERT_EQ(got.entries.size(), want.entries.size());
  for (std::size_t i = 0; i < want.entries.size(); ++i) {
    SCOPED_TRACE("entry " + std::to_string(i));
    EXPECT_EQ(got.entries[i].channel, want.entries[i].channel);
    EXPECT_EQ(got.entries[i].dir, want.entries[i].dir);
    EXPECT_EQ(got.entries[i].sent_at_ns, want.entries[i].sent_at_ns);
    EXPECT_EQ(got.entries[i].msg.kind, want.entries[i].msg.kind);
    EXPECT_EQ(got.entries[i].msg.payload, want.entries[i].msg.payload);
    EXPECT_TRUE(got.entries[i].msg.value == want.entries[i].msg.value)
        << "entry ASN.1 value diverged";
  }
}

TEST(TransportFrame, EveryCatalogueFrameRoundTrips) {
  for (const Frame& f : catalogue()) {
    SCOPED_TRACE(frame_type_name(f.type));
    const Bytes wire = encode_frame(f);
    ASSERT_GE(wire.size(), 4u);
    // Body decode (no prefix).
    const auto body = decode_frame(ByteSpan{wire.data() + 4, wire.size() - 4});
    ASSERT_TRUE(body.ok()) << body.error().message;
    expect_equal(body.value(), f, "decode_frame");
    // Full framed path.
    FrameReassembler rx;
    rx.feed(ByteSpan{wire.data(), wire.size()});
    Frame out;
    std::string err;
    ASSERT_EQ(rx.next(&out, &err), FrameReassembler::Next::kFrame) << err;
    expect_equal(out, f, "reassembler");
    EXPECT_EQ(rx.next(&out, &err), FrameReassembler::Next::kNeedMore);
    EXPECT_EQ(rx.pending(), 0u);
  }
}

TEST(TransportFrame, ReassemblySurvivesEverySplitBoundary) {
  // The whole catalogue on one stream, fed with a split at every byte
  // offset: first `cut` bytes, then the rest. Every split must yield the
  // same frame sequence.
  const std::vector<Frame> frames = catalogue();
  Bytes stream;
  for (const Frame& f : frames) encode_frame_to(f, stream);
  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    SCOPED_TRACE("cut at " + std::to_string(cut));
    FrameReassembler rx;
    rx.feed(ByteSpan{stream.data(), cut});
    Frame out;
    std::string err;
    std::size_t got = 0;
    while (rx.next(&out, &err) == FrameReassembler::Next::kFrame) {
      ASSERT_LT(got, frames.size());
      expect_equal(out, frames[got], "pre-split");
      ++got;
    }
    rx.feed(ByteSpan{stream.data() + cut, stream.size() - cut});
    while (rx.next(&out, &err) == FrameReassembler::Next::kFrame) {
      ASSERT_LT(got, frames.size());
      expect_equal(out, frames[got], "post-split");
      ++got;
    }
    EXPECT_EQ(got, frames.size());
    EXPECT_EQ(rx.pending(), 0u);
  }
}

TEST(TransportFrame, ByteAtATimeFeedReassemblesAndReusesItsBuffer) {
  const std::vector<Frame> frames = catalogue();
  Bytes stream;
  // Enough traffic to push the reassembler past its compaction threshold.
  for (int rep = 0; rep < 200; ++rep)
    for (const Frame& f : frames) encode_frame_to(f, stream);
  FrameReassembler rx;
  Frame out;
  std::string err;
  std::size_t got = 0;
  for (const std::uint8_t b : stream) {
    rx.feed(ByteSpan{&b, 1});
    while (rx.next(&out, &err) == FrameReassembler::Next::kFrame) {
      expect_equal(out, frames[got % frames.size()], "byte-at-a-time");
      ++got;
    }
  }
  EXPECT_EQ(got, 200 * frames.size());
  EXPECT_EQ(rx.pending(), 0u);
}

TEST(TransportFrame, TruncationIsNeedMoreNeverError) {
  const Bytes wire = encode_frame(catalogue()[2]);  // the fat Transfer
  for (std::size_t len = 0; len < wire.size(); ++len) {
    FrameReassembler rx;
    rx.feed(ByteSpan{wire.data(), len});
    Frame out;
    std::string err;
    EXPECT_EQ(rx.next(&out, &err), FrameReassembler::Next::kNeedMore)
        << "prefix of " << len << " bytes";
  }
}

TEST(TransportFrame, AbsurdLengthPrefixIsRejectedWithoutAllocating) {
  FrameReassembler rx;
  const std::uint8_t huge[4] = {0xff, 0xff, 0xff, 0xff};  // ~4 GiB claim
  rx.feed(ByteSpan{huge, 4});
  Frame out;
  std::string err;
  EXPECT_EQ(rx.next(&out, &err), FrameReassembler::Next::kError);
  EXPECT_NE(err.find("exceeds"), std::string::npos) << err;
}

TEST(TransportFrame, FramedGarbageBodyIsAnError) {
  // A well-formed length prefix around bytes that are not a frame: the
  // stream is framed but desynchronized — fatal, not skippable.
  Bytes wire = {0x00, 0x00, 0x00, 0x04, 0xde, 0xad, 0xbe, 0xef};
  FrameReassembler rx;
  rx.feed(ByteSpan{wire.data(), wire.size()});
  Frame out;
  std::string err;
  EXPECT_EQ(rx.next(&out, &err), FrameReassembler::Next::kError);
  EXPECT_FALSE(err.empty());
}

TEST(TransportFrame, WrongEnvelopeAndBadFieldsAreDecodeErrors) {
  // A UNIVERSAL SEQUENCE is a valid BER value but not a frame envelope.
  Bytes body;
  asn1::encode_to(asn1::Value::sequence({asn1::Value::integer(1)}), body);
  EXPECT_FALSE(decode_frame(ByteSpan{body.data(), body.size()}).ok());

  // APPLICATION tag outside the catalogue.
  body.clear();
  asn1::encode_to(asn1::Value::application(99, {asn1::Value::integer(1)}),
                  body);
  EXPECT_FALSE(decode_frame(ByteSpan{body.data(), body.size()}).ok());

  // Right envelope, missing fields.
  body.clear();
  asn1::encode_to(asn1::Value::application(
                      static_cast<std::uint32_t>(FrameType::Hello),
                      {asn1::Value::integer(1)}),
                  body);
  EXPECT_FALSE(decode_frame(ByteSpan{body.data(), body.size()}).ok());

  // Transfer with dir outside 0/1.
  body.clear();
  asn1::encode_to(
      asn1::Value::application(
          static_cast<std::uint32_t>(FrameType::Transfer),
          {asn1::Value::integer(0), asn1::Value::integer(2),
           asn1::Value::integer(1), asn1::Value::integer(0),
           asn1::Value::integer(0), asn1::Value::octet_string({})}),
      body);
  EXPECT_FALSE(decode_frame(ByteSpan{body.data(), body.size()}).ok());
}

/// The documented abstract syntax of the two hot-path frames, built as a
/// plain Value tree. The direct writer in encode_frame_to must emit exactly
/// these octets — minimal INTEGERs, definite lengths — or the decoder could
/// see different bytes depending on which path encoded.
asn1::Value hot_path_tree(const Frame& f) {
  using asn1::Value;
  auto u64v = [](std::uint64_t v) {
    return Value::integer(static_cast<std::int64_t>(v));
  };
  if (f.type == FrameType::Transfer) {
    std::vector<Value> body = {
        u64v(f.channel),     Value::integer(f.dir),
        u64v(f.round),       Value::integer(f.sent_at_ns),
        Value::integer(f.msg.kind), Value::octet_string(f.msg.payload)};
    if (!(f.msg.value == Value())) body.push_back(Value::context(0, f.msg.value));
    return Value::application(static_cast<std::uint32_t>(f.type),
                              std::move(body));
  }
  std::vector<Value> entries;
  for (const TransferEntry& e : f.entries) {
    std::vector<Value> ev = {u64v(e.channel), Value::integer(e.dir),
                             Value::integer(e.sent_at_ns),
                             Value::integer(e.msg.kind),
                             Value::octet_string(e.msg.payload)};
    if (!(e.msg.value == Value())) ev.push_back(Value::context(0, e.msg.value));
    entries.push_back(Value::sequence(std::move(ev)));
  }
  return Value::application(
      static_cast<std::uint32_t>(FrameType::TransferBatch),
      {u64v(f.round), Value::sequence(std::move(entries))});
}

TEST(TransportFrame, DirectWriterMatchesTheValueTreeEncoder) {
  for (const Frame& f : catalogue()) {
    if (f.type != FrameType::Transfer && f.type != FrameType::TransferBatch)
      continue;
    SCOPED_TRACE(frame_type_name(f.type));
    const Bytes wire = encode_frame(f);
    Bytes ref;
    asn1::encode_to(hot_path_tree(f), ref);
    ASSERT_EQ(wire.size(), ref.size() + 4);
    EXPECT_TRUE(std::equal(wire.begin() + 4, wire.end(), ref.begin()))
        << "direct writer diverged from the tree encoder";
  }
}

TEST(TransportFrame, CorruptBatchEntriesAreSkippedNotFatal) {
  // The length prefix already guaranteed framing, so one undecodable entry
  // degrades to a per-entry rejection: siblings survive, the counter says
  // how many were dropped, and the stream is NOT desynchronized.
  using asn1::Value;
  auto good = [](int i) {
    return Value::sequence({Value::integer(i), Value::integer(0),
                            Value::integer(100 + i), Value::integer(1),
                            Value::octet_string({0x01})});
  };
  std::vector<Value> entries = {
      good(0),
      Value::sequence({Value::integer(1)}),  // missing fields
      good(1),
      Value::sequence({Value::integer(7), Value::integer(2),  // dir not 0/1
                       Value::integer(0), Value::integer(0),
                       Value::octet_string({})}),
      Value::integer(9),  // not a SEQUENCE at all
      good(2)};
  Bytes body;
  asn1::encode_to(
      Value::application(static_cast<std::uint32_t>(FrameType::TransferBatch),
                         {Value::integer(5), Value::sequence(std::move(entries))}),
      body);
  const auto got = decode_frame(ByteSpan{body.data(), body.size()});
  ASSERT_TRUE(got.ok()) << got.error().message;
  EXPECT_EQ(got.value().round, 5u);
  EXPECT_EQ(got.value().rejected_entries, 3u);
  ASSERT_EQ(got.value().entries.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i)
    EXPECT_EQ(got.value().entries[i].channel, i);
}

TEST(TransportFrame, ReassemblerReusesItsBufferAcrossBatchFrames) {
  // Satellite guarantee: batch-sized frames arriving in read()-sized chunks
  // must stop regrowing the receive buffer once it has warmed up.
  Frame f;
  f.type = FrameType::TransferBatch;
  f.round = 1;
  for (std::uint32_t i = 0; i < 64; ++i) {
    TransferEntry e;
    e.channel = i;
    e.dir = 0;
    e.sent_at_ns = static_cast<std::int64_t>(i);
    e.msg.kind = static_cast<int>(i);
    e.msg.payload = Bytes(64, 0xab);
    f.entries.push_back(std::move(e));
  }
  Bytes wire;
  encode_frame_to(f, wire);
  ASSERT_GT(wire.size(), 4096u);  // big enough to exercise compaction
  FrameReassembler rx;
  Frame out;
  std::string err;
  std::uint64_t warmed = 0;
  for (int rep = 0; rep < 200; ++rep) {
    std::size_t off = 0;
    while (off < wire.size()) {
      const std::size_t n = std::min<std::size_t>(1024, wire.size() - off);
      rx.feed(ByteSpan{wire.data() + off, n});
      off += n;
      while (rx.next(&out, &err) == FrameReassembler::Next::kFrame) {
      }
    }
    if (rep == 19) warmed = rx.regrowths();
  }
  EXPECT_EQ(rx.regrowths(), warmed)
      << "receive buffer kept regrowing in the steady state";
  EXPECT_EQ(rx.pending(), 0u);
}

TEST(TransportFrame, BitFlipFuzzNeverCrashesOrMisframes) {
  // Flip every single byte of a valid frame to 64 random values: decode
  // must either fail cleanly or produce *some* frame — never crash. (The
  // length prefix is kept intact so the flip lands in the BER body.) The
  // fat Transfer and the fat TransferBatch are the two frames with real
  // structure to corrupt.
  const std::vector<Frame> all = catalogue();
  common::Rng rng(0x7ea7);
  Frame out;
  std::string err;
  for (const Frame* victim : {&all[2], &all.back()}) {
    const Bytes wire = encode_frame(*victim);
    for (std::size_t i = 4; i < wire.size(); ++i) {
      for (int rep = 0; rep < 64; ++rep) {
        Bytes mutated = wire;
        mutated[i] = static_cast<std::uint8_t>(rng.below(256));
        FrameReassembler rx;
        rx.feed(ByteSpan{mutated.data(), mutated.size()});
        (void)rx.next(&out, &err);  // any outcome, no crash
      }
    }
  }
}

TEST(TransportFrame, RandomGarbageStreamsFailCleanly) {
  common::Rng rng(0xfeed);
  for (int round = 0; round < 200; ++round) {
    Bytes junk(1 + rng.below(512));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    FrameReassembler rx;
    // Feed in random-sized slices.
    std::size_t off = 0;
    Frame out;
    std::string err;
    bool dead = false;
    while (off < junk.size() && !dead) {
      const std::size_t n =
          std::min<std::size_t>(1 + rng.below(64), junk.size() - off);
      rx.feed(ByteSpan{junk.data() + off, n});
      off += n;
      for (;;) {
        const auto next = rx.next(&out, &err);
        if (next == FrameReassembler::Next::kError) {
          dead = true;  // corrupt stream detected — the expected outcome
          break;
        }
        if (next == FrameReassembler::Next::kNeedMore) break;
      }
    }
    SUCCEED();  // reaching here without UB/crash is the assertion
  }
}

}  // namespace
}  // namespace mcam::estelle
