// Failure injection across the stack: transport teardown mid-session, abort
// cascades, severed channels, malformed peer PDUs, and recovery by
// re-association — the paths a production deployment would actually hit.
// The DistSessionFailure suite at the bottom covers the distributed-round
// session layer: a peer that is gone for good must exhaust the retry budget
// into a structured abort (never a hang), and a peer resuming with the
// wrong specification fingerprint must be refused.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "asn1/value.hpp"
#include "estelle/executor.hpp"
#include "estelle/module.hpp"
#include "estelle/transport/dist_runner.hpp"
#include "estelle/transport/socket_transport.hpp"
#include "estelle/transport/transport.hpp"
#include "mcam/testbed.hpp"

// fork() and ThreadSanitizer do not mix; the thread-based cases cover the
// protocol under TSan, the fork case covers real process death.
#if defined(__SANITIZE_THREAD__)
#define MCAM_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MCAM_TSAN_BUILD 1
#endif
#endif

namespace mcam::core {
namespace {

using common::SimTime;
using estelle::Interaction;

directory::MovieEntry preload(Testbed& bed, const std::string& title,
                              std::uint64_t frames = 20) {
  directory::MovieEntry e;
  e.title = title;
  e.duration_frames = frames;
  e.location_host = bed.config().server_host;
  auto id = bed.server().directory().add(e);
  EXPECT_TRUE(id.ok());
  e.id = id.value();
  return e;
}

TEST(FailureInjection, TransportDisconnectAbortsAssociation) {
  Testbed bed(Testbed::Config{});
  preload(bed, "movie");
  McamClient client = bed.client(0);
  ASSERT_TRUE(client.associate("alice").ok());
  EXPECT_EQ(bed.server().active_sessions(), 1u);

  // Yank the transport connection out from under the session (operator
  // closes the connection / network manager kills it).
  bed.connection(0).client_stack.transport->upper().deliver(
      Interaction(osi::kTDisReq));
  bed.executor().run();

  // The abort cascaded: server released the association.
  EXPECT_EQ(bed.server().active_sessions(), 0u);
  // The client MCA fell back to closed and surfaced an error to the app
  // (either queued as ErrorResp or the next call fails cleanly).
  auto r = client.select_movie("movie");
  EXPECT_FALSE(r.ok());
}

TEST(FailureInjection, SeveredChannelMeansNoResponseNotHang) {
  Testbed bed(Testbed::Config{});
  preload(bed, "movie");
  McamClient client = bed.client(0);
  ASSERT_TRUE(client.associate("alice").ok());

  // Cut the wire completely: 100% loss in both directions (a dead link,
  // not a torn-down channel — the modules keep trying).
  common::Rng& rng = bed.rng();
  bed.connection(0).client_stack.transport->net().set_loss(1.0, &rng);
  bed.connection(0).server_stack.transport->net().set_loss(1.0, &rng);

  auto r = client.select_movie("movie");
  ASSERT_FALSE(r.ok());
  // The facade reports quiescence (after ARQ gave up), never a hang.
  EXPECT_EQ(r.error().code, kNoResponse);
}

TEST(FailureInjection, ServerAbortReleasesStreams) {
  Testbed bed(Testbed::Config{});
  const auto movie = preload(bed, "movie", 500);
  McamClient client = bed.client(0);
  ASSERT_TRUE(client.associate("alice").ok());
  ASSERT_TRUE(client.select_movie("movie").ok());
  bed.make_sua(0, 7000);
  ASSERT_TRUE(client.play(movie.id, bed.client_host(0), 7000).ok());
  EXPECT_EQ(bed.server().spa().active_streams(), 1u);

  bed.connection(0).client_stack.transport->upper().deliver(
      Interaction(osi::kTDisReq));
  bed.executor().run();

  // Association teardown stopped the CM stream too (no orphan senders).
  EXPECT_EQ(bed.server().spa().active_streams(), 0u);
}

TEST(FailureInjection, MalformedPduFromAppYieldsProtocolError) {
  Testbed bed(Testbed::Config{});
  McamClient client = bed.client(0);
  ASSERT_TRUE(client.associate("alice").ok());

  // Inject garbage bytes as if they were a request PDU.
  auto& app = *bed.connection(0).app;
  app.mca().output(Interaction(static_cast<int>(Op::AttrQueryReq),
                               common::to_bytes("not ber at all")));
  bed.executor().run_until([&] { return app.mca().has_input(); });
  ASSERT_TRUE(app.mca().has_input());
  auto response = decode(app.mca().pop().payload);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(std::holds_alternative<ErrorResp>(response.value()));
  EXPECT_EQ(std::get<ErrorResp>(response.value()).result,
            ResultCode::ProtocolError);

  // The association survives a malformed request.
  auto q = client.query_attributes(1);
  (void)q;  // may be NoSuchMovie — the point is we got *an* answer
  EXPECT_EQ(bed.server().active_sessions(), 1u);
}

TEST(FailureInjection, ReassociationAfterAbortWorks) {
  Testbed bed(Testbed::Config{});
  preload(bed, "movie");
  McamClient client = bed.client(0);
  ASSERT_TRUE(client.associate("alice").ok());

  client.abort();
  EXPECT_EQ(bed.server().active_sessions(), 0u);

  // A fresh associate over the same (re-established) stack succeeds: the
  // transport reconnects, the session/presentation machines restart.
  auto again = client.associate("alice");
  ASSERT_TRUE(again.ok()) << again.error().message;
  EXPECT_EQ(bed.server().active_sessions(), 1u);
  auto sel = client.select_movie("movie");
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel.value().result, ResultCode::Success);
}

TEST(FailureInjection, ExtremeLossStillConverges) {
  Testbed::Config cfg;
  cfg.control_loss = 0.4;  // brutal channel
  Testbed bed(cfg);
  preload(bed, "movie");
  McamClient client = bed.client(0);
  auto assoc = client.associate("alice");
  ASSERT_TRUE(assoc.ok()) << assoc.error().message;
  auto sel = client.select_movie("movie");
  ASSERT_TRUE(sel.ok()) << sel.error().message;
  EXPECT_EQ(sel.value().result, ResultCode::Success);
  EXPECT_GE(bed.connection(0).client_stack.transport->retransmissions() +
                bed.connection(0).server_stack.transport->retransmissions(),
            3u);
}

TEST(FailureInjection, StreamToUnboundPortIsLostSilently) {
  // Client asks the server to stream to a port nobody listens on: control
  // plane succeeds, packets are dropped by the network, no crash anywhere.
  Testbed bed(Testbed::Config{});
  const auto movie = preload(bed, "movie", 30);
  McamClient client = bed.client(0);
  ASSERT_TRUE(client.associate("alice").ok());
  ASSERT_TRUE(client.select_movie("movie").ok());
  auto play = client.play(movie.id, bed.client_host(0), 9999);  // no SUA
  ASSERT_TRUE(play.ok());
  EXPECT_EQ(play.value().result, ResultCode::Success);
  bed.advance_streams(SimTime::from_s(2));
  EXPECT_GT(bed.network().stats().dropped, 0u);
  auto stop = client.stop(movie.id);
  ASSERT_TRUE(stop.ok());
  EXPECT_EQ(stop.value().position, 30u);
}

TEST(FailureInjection, IsodeStackAbortPath) {
  Testbed::Config cfg;
  cfg.stack = StackKind::IsodeHandCoded;
  Testbed bed(cfg);
  McamClient client = bed.client(0);
  ASSERT_TRUE(client.associate("alice").ok());
  // Abort at the ISODE library level.
  bed.connection(0).client_iface->entity().p_abort_request();
  bed.executor().run();
  EXPECT_EQ(bed.server().active_sessions(), 0u);
}

}  // namespace
}  // namespace mcam::core

// ---------------------------------------------------------------------------
// Distributed-round session layer: recovery that must NOT succeed

namespace mcam::estelle {
namespace {

using common::SimTime;

/// Minimal two-shard producer->consumer world (shard 0 streams tokens into
/// shard 1), enough cross-node traffic to be mid-run when the fault lands.
struct SessionPipeWorld {
  Specification spec{"session_pipe"};
  std::shared_ptr<int> sent = std::make_shared<int>(0);

  explicit SessionPipeWorld(int budget) {
    auto& psys =
        spec.root().create_child<Module>("p", Attribute::SystemProcess);
    auto& csys =
        spec.root().create_child<Module>("c", Attribute::SystemProcess);
    auto& prod = psys.create_child<Module>("prod", Attribute::Process);
    auto& cons = csys.create_child<Module>("cons", Attribute::Process);
    connect(prod.ip("out"), cons.ip("in"));
    InteractionPoint* out = &prod.ip("out");
    prod.trans("send")
        .cost(SimTime::from_us(3))
        .provided([sent = sent, budget](Module&, const Interaction*) {
          return *sent < budget;
        })
        .action([sent = sent, out](Module& m, const Interaction*) {
          ++*sent;
          out->output(Interaction(1, asn1::Value::integer(*sent)));
          m.set_state(m.state() + 1);
        });
    cons.trans("recv")
        .when(cons.ip("in"))
        .cost(SimTime::from_us(2))
        .action([](Module& m, const Interaction*) {
          m.set_state(m.state() + 1);
        });
    spec.initialize();
  }
};

std::string session_temp_dir() {
  char tmpl[] = "/tmp/mcam_session_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

TEST(DistSessionFailure, RetryBudgetExhaustedIsStructuredAbortWithinGate) {
#ifdef MCAM_TSAN_BUILD
  GTEST_SKIP() << "fork-based peer-death test is covered outside TSan";
#else
  // A SIGKILLed peer with the session layer ON: the survivor burns its
  // reconnect budget waiting for a peer that will never come back, then
  // surfaces the same structured StopReason::Aborted the pre-session
  // transport did — well inside gate_timeout_ms, never a hang.
  const std::string dir = session_temp_dir();
  ASSERT_FALSE(dir.empty());
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    SessionPipeWorld world(1000);
    auto mesh = StreamSocketTransport::unix_mesh(1, 2, dir);
    if (!mesh.ok()) ::_exit(2);
    DistOptions opts;
    opts.node = 1;
    opts.nodes = 2;
    opts.transport =
        std::shared_ptr<MailboxTransport>(std::move(mesh.value()));
    ExecutorConfig cfg;
    cfg.kind = ExecutorKind::Distributed;
    cfg.backend_options = std::move(opts);
    auto executor = make_executor(world.spec, cfg);
    int polls = 0;
    RunOptions run;
    run.stop.push_back(StopCondition::when([&polls] {
      if (++polls >= 6) ::raise(SIGKILL);  // no Bye, no close — a real crash
      return false;
    }));
    (void)executor->run(run);
    ::_exit(3);  // survived the kill — unreachable
  }

  SessionPipeWorld world(1000);
  auto mesh = StreamSocketTransport::unix_mesh(0, 2, dir);
  ASSERT_TRUE(mesh.ok()) << mesh.error().message;
  DistOptions opts;
  opts.node = 0;
  opts.nodes = 2;
  opts.transport = std::shared_ptr<MailboxTransport>(std::move(mesh.value()));
  opts.reconnect_max_attempts = 3;  // a real budget, sized for test speed
  opts.backoff_initial_ms = 10;
  opts.backoff_cap_ms = 40;
  opts.resend_timeout_ms = 100;
  opts.heartbeat_interval_ms = 50;
  opts.gate_timeout_ms = 15000;
  ExecutorConfig cfg;
  cfg.kind = ExecutorKind::Distributed;
  cfg.backend_options = std::move(opts);
  auto executor = make_executor(world.spec, cfg);
  const auto start = std::chrono::steady_clock::now();
  const RunReport r = executor->run();
  const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count();
  EXPECT_EQ(r.reason, StopReason::Aborted);
  EXPECT_FALSE(r.error.empty());
  // The budget, not the gate timeout, bounded the wait: the abort must land
  // comfortably inside gate_timeout_ms.
  EXPECT_LT(elapsed_ms, 15000);
  EXPECT_GT(r.transport.reconnect_attempts + r.transport.heartbeats, 0u)
      << "the session layer never engaged";

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFSIGNALED(status));
  if (WIFSIGNALED(status)) EXPECT_EQ(WTERMSIG(status), SIGKILL);
  std::filesystem::remove_all(dir);
#endif
}

TEST(DistSessionFailure, MismatchedFingerprintResumeIsRefused) {
  // Transport-level: both sides enable the session layer but carry different
  // specification fingerprints. After a mid-run sever, the HelloResume
  // handshake must refuse the resume on both sides — kClosed with a reason
  // naming the fingerprint, not a silent re-adoption of a divergent peer.
  const std::string dir = session_temp_dir();
  ASSERT_FALSE(dir.empty());
  std::vector<MailboxTransport::RecvOutcome> outcome(
      2, MailboxTransport::RecvOutcome::kIdle);
  std::vector<std::string> errors(2);
  std::vector<std::string> mesh_errors(2);
  std::vector<std::thread> threads;
  for (int node = 0; node < 2; ++node)
    threads.emplace_back([&, node] {
      auto mesh = StreamSocketTransport::unix_mesh(node, 2, dir);
      if (!mesh.ok()) {
        mesh_errors[static_cast<std::size_t>(node)] = mesh.error().message;
        return;
      }
      auto transport = std::move(mesh.value());
      MailboxTransport::SessionOptions so;
      so.reconnect_max_attempts = 4;
      so.backoff_initial_ms = 5;
      so.backoff_cap_ms = 40;
      so.resend_timeout_ms = 200;
      so.fingerprint = node == 0 ? 0xA11CEu : 0xB0Bu;  // divergent specs
      transport->configure_session(so);
      if (node == 0) (void)transport->sever(1);  // mid-run connection loss
      Frame f;
      int from = 0;
      std::string err;
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      auto rc = MailboxTransport::RecvOutcome::kIdle;
      while (std::chrono::steady_clock::now() < deadline) {
        rc = transport->recv(&from, &f, 100, &err);
        if (rc == MailboxTransport::RecvOutcome::kClosed) break;
      }
      outcome[static_cast<std::size_t>(node)] = rc;
      errors[static_cast<std::size_t>(node)] = err;
    });
  for (std::thread& t : threads) t.join();
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(mesh_errors[0].empty()) << mesh_errors[0];
  ASSERT_TRUE(mesh_errors[1].empty()) << mesh_errors[1];
  for (int node = 0; node < 2; ++node) {
    SCOPED_TRACE("node " + std::to_string(node));
    EXPECT_EQ(outcome[static_cast<std::size_t>(node)],
              MailboxTransport::RecvOutcome::kClosed)
        << "the divergent peer was not refused";
    EXPECT_NE(errors[static_cast<std::size_t>(node)].find("fingerprint"),
              std::string::npos)
        << errors[static_cast<std::size_t>(node)];
  }
}

TEST(DistSessionFailure, MatchedFingerprintSurvivesTheSameSever) {
  // The refusal control: identical fingerprints, identical sever — the link
  // must recover and a post-sever frame must arrive intact.
  const std::string dir = session_temp_dir();
  ASSERT_FALSE(dir.empty());
  std::vector<std::string> mesh_errors(2);
  std::string recv_error;
  std::atomic<bool> delivered{false};
  std::atomic<std::uint64_t> reconnects{0};
  std::vector<std::thread> threads;
  for (int node = 0; node < 2; ++node)
    threads.emplace_back([&, node] {
      auto mesh = StreamSocketTransport::unix_mesh(node, 2, dir);
      if (!mesh.ok()) {
        mesh_errors[static_cast<std::size_t>(node)] = mesh.error().message;
        return;
      }
      auto transport = std::move(mesh.value());
      MailboxTransport::SessionOptions so;
      so.reconnect_max_attempts = 4;
      so.backoff_initial_ms = 5;
      so.backoff_cap_ms = 40;
      so.resend_timeout_ms = 200;
      so.fingerprint = 0xFEEDu;  // both sides agree
      transport->configure_session(so);
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      if (node == 0) {
        (void)transport->sever(1);
        // The frame is queued while the link is down; the session layer must
        // carry it across the recovered stream.
        Frame f;
        f.type = FrameType::RoundDone;
        f.node = 0;
        f.round = 7;
        while (!transport->send(1, f).ok() &&
               std::chrono::steady_clock::now() < deadline) {
          Frame in;
          int from = 0;
          std::string err;
          (void)transport->recv(&from, &in, 10, &err);
        }
        transport->flush();
        // Pump until the peer has taken delivery: the pump drives the
        // accept/resume machinery on this side.
        Frame in;
        int from = 0;
        std::string err;
        while (std::chrono::steady_clock::now() < deadline && !delivered)
          (void)transport->recv(&from, &in, 10, &err);
        reconnects += transport->stats().reconnects;
      } else {
        Frame f;
        int from = 0;
        std::string err;
        while (std::chrono::steady_clock::now() < deadline) {
          const auto rc = transport->recv(&from, &f, 50, &err);
          if (rc == MailboxTransport::RecvOutcome::kFrame &&
              f.type == FrameType::RoundDone && f.round == 7) {
            delivered = true;
            break;
          }
          if (rc == MailboxTransport::RecvOutcome::kClosed) {
            recv_error = err;
            break;
          }
        }
        reconnects += transport->stats().reconnects;
      }
    });
  for (std::thread& t : threads) t.join();
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(mesh_errors[0].empty()) << mesh_errors[0];
  ASSERT_TRUE(mesh_errors[1].empty()) << mesh_errors[1];
  EXPECT_TRUE(delivered) << "post-sever frame never arrived: " << recv_error;
  EXPECT_GT(reconnects, 0u) << "delivery happened without a recovery";
}

}  // namespace
}  // namespace mcam::estelle
