// Failure injection across the stack: transport teardown mid-session, abort
// cascades, severed channels, malformed peer PDUs, and recovery by
// re-association — the paths a production deployment would actually hit.
#include <gtest/gtest.h>

#include "mcam/testbed.hpp"

namespace mcam::core {
namespace {

using common::SimTime;
using estelle::Interaction;

directory::MovieEntry preload(Testbed& bed, const std::string& title,
                              std::uint64_t frames = 20) {
  directory::MovieEntry e;
  e.title = title;
  e.duration_frames = frames;
  e.location_host = bed.config().server_host;
  auto id = bed.server().directory().add(e);
  EXPECT_TRUE(id.ok());
  e.id = id.value();
  return e;
}

TEST(FailureInjection, TransportDisconnectAbortsAssociation) {
  Testbed bed(Testbed::Config{});
  preload(bed, "movie");
  McamClient client = bed.client(0);
  ASSERT_TRUE(client.associate("alice").ok());
  EXPECT_EQ(bed.server().active_sessions(), 1u);

  // Yank the transport connection out from under the session (operator
  // closes the connection / network manager kills it).
  bed.connection(0).client_stack.transport->upper().deliver(
      Interaction(osi::kTDisReq));
  bed.executor().run();

  // The abort cascaded: server released the association.
  EXPECT_EQ(bed.server().active_sessions(), 0u);
  // The client MCA fell back to closed and surfaced an error to the app
  // (either queued as ErrorResp or the next call fails cleanly).
  auto r = client.select_movie("movie");
  EXPECT_FALSE(r.ok());
}

TEST(FailureInjection, SeveredChannelMeansNoResponseNotHang) {
  Testbed bed(Testbed::Config{});
  preload(bed, "movie");
  McamClient client = bed.client(0);
  ASSERT_TRUE(client.associate("alice").ok());

  // Cut the wire completely: 100% loss in both directions (a dead link,
  // not a torn-down channel — the modules keep trying).
  common::Rng& rng = bed.rng();
  bed.connection(0).client_stack.transport->net().set_loss(1.0, &rng);
  bed.connection(0).server_stack.transport->net().set_loss(1.0, &rng);

  auto r = client.select_movie("movie");
  ASSERT_FALSE(r.ok());
  // The facade reports quiescence (after ARQ gave up), never a hang.
  EXPECT_EQ(r.error().code, kNoResponse);
}

TEST(FailureInjection, ServerAbortReleasesStreams) {
  Testbed bed(Testbed::Config{});
  const auto movie = preload(bed, "movie", 500);
  McamClient client = bed.client(0);
  ASSERT_TRUE(client.associate("alice").ok());
  ASSERT_TRUE(client.select_movie("movie").ok());
  bed.make_sua(0, 7000);
  ASSERT_TRUE(client.play(movie.id, bed.client_host(0), 7000).ok());
  EXPECT_EQ(bed.server().spa().active_streams(), 1u);

  bed.connection(0).client_stack.transport->upper().deliver(
      Interaction(osi::kTDisReq));
  bed.executor().run();

  // Association teardown stopped the CM stream too (no orphan senders).
  EXPECT_EQ(bed.server().spa().active_streams(), 0u);
}

TEST(FailureInjection, MalformedPduFromAppYieldsProtocolError) {
  Testbed bed(Testbed::Config{});
  McamClient client = bed.client(0);
  ASSERT_TRUE(client.associate("alice").ok());

  // Inject garbage bytes as if they were a request PDU.
  auto& app = *bed.connection(0).app;
  app.mca().output(Interaction(static_cast<int>(Op::AttrQueryReq),
                               common::to_bytes("not ber at all")));
  bed.executor().run_until([&] { return app.mca().has_input(); });
  ASSERT_TRUE(app.mca().has_input());
  auto response = decode(app.mca().pop().payload);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(std::holds_alternative<ErrorResp>(response.value()));
  EXPECT_EQ(std::get<ErrorResp>(response.value()).result,
            ResultCode::ProtocolError);

  // The association survives a malformed request.
  auto q = client.query_attributes(1);
  (void)q;  // may be NoSuchMovie — the point is we got *an* answer
  EXPECT_EQ(bed.server().active_sessions(), 1u);
}

TEST(FailureInjection, ReassociationAfterAbortWorks) {
  Testbed bed(Testbed::Config{});
  preload(bed, "movie");
  McamClient client = bed.client(0);
  ASSERT_TRUE(client.associate("alice").ok());

  client.abort();
  EXPECT_EQ(bed.server().active_sessions(), 0u);

  // A fresh associate over the same (re-established) stack succeeds: the
  // transport reconnects, the session/presentation machines restart.
  auto again = client.associate("alice");
  ASSERT_TRUE(again.ok()) << again.error().message;
  EXPECT_EQ(bed.server().active_sessions(), 1u);
  auto sel = client.select_movie("movie");
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel.value().result, ResultCode::Success);
}

TEST(FailureInjection, ExtremeLossStillConverges) {
  Testbed::Config cfg;
  cfg.control_loss = 0.4;  // brutal channel
  Testbed bed(cfg);
  preload(bed, "movie");
  McamClient client = bed.client(0);
  auto assoc = client.associate("alice");
  ASSERT_TRUE(assoc.ok()) << assoc.error().message;
  auto sel = client.select_movie("movie");
  ASSERT_TRUE(sel.ok()) << sel.error().message;
  EXPECT_EQ(sel.value().result, ResultCode::Success);
  EXPECT_GE(bed.connection(0).client_stack.transport->retransmissions() +
                bed.connection(0).server_stack.transport->retransmissions(),
            3u);
}

TEST(FailureInjection, StreamToUnboundPortIsLostSilently) {
  // Client asks the server to stream to a port nobody listens on: control
  // plane succeeds, packets are dropped by the network, no crash anywhere.
  Testbed bed(Testbed::Config{});
  const auto movie = preload(bed, "movie", 30);
  McamClient client = bed.client(0);
  ASSERT_TRUE(client.associate("alice").ok());
  ASSERT_TRUE(client.select_movie("movie").ok());
  auto play = client.play(movie.id, bed.client_host(0), 9999);  // no SUA
  ASSERT_TRUE(play.ok());
  EXPECT_EQ(play.value().result, ResultCode::Success);
  bed.advance_streams(SimTime::from_s(2));
  EXPECT_GT(bed.network().stats().dropped, 0u);
  auto stop = client.stop(movie.id);
  ASSERT_TRUE(stop.ok());
  EXPECT_EQ(stop.value().position, 30u);
}

TEST(FailureInjection, IsodeStackAbortPath) {
  Testbed::Config cfg;
  cfg.stack = StackKind::IsodeHandCoded;
  Testbed bed(cfg);
  McamClient client = bed.client(0);
  ASSERT_TRUE(client.associate("alice").ok());
  // Abort at the ISODE library level.
  bed.connection(0).client_iface->entity().p_abort_request();
  bed.executor().run();
  EXPECT_EQ(bed.server().active_sessions(), 0u);
}

}  // namespace
}  // namespace mcam::core
