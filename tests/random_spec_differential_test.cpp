// Randomized differential specification testing: a seeded generator builds
// ~50 Estelle specifications — module trees with process/activity
// attributes, intra- and cross-shard channels, producers, relays,
// kind/parity-guarded consumers, delay clauses, priorities, loss Rngs, and
// deliberately ill-formed constructs — and every ExecutorKind must agree
// with the Sequential baseline on each of them.
//
// What "agree" means is exactly what each backend's contract promises:
//
//   * world-state identity (module states, queue lengths, per-IP sent /
//     dropped counters) and total fired count: ALL backends, ALWAYS. The
//     generator keeps this decidable by construction — guards read only
//     their own module's state (or the offered head interaction), every
//     out-IP is written by exactly one transition (so per-IP loss-Rng draw
//     order is the writer's firing order, which every backend preserves),
//     and all activity is budget-bounded so every spec quiesces.
//   * exact firing-trace identity: Threaded and Sharded — the deterministic
//     real-thread backends. The sharded backend owes this even on specs
//     that are ill-formed *within* one shard (a same-round firing disabling
//     a sibling candidate): announce-after-revalidation replays only what
//     actually fired. Threaded is exempted only on specs with delay
//     clauses, where its nominal 1µs round tick matures delays on a
//     different schedule than the sequential cost-model clock, legally
//     reordering rounds (the trace multiset must still match).
//   * trace-multiset identity: ParallelSim announces a round's firings in
//     simulated-engine completion order, so within-round order is not
//     comparable; the multiset and the world must still match. Specs whose
//     semantics depend on candidate order beyond what the engine preserves
//     (a captured budget shared across modules, a loss Rng shared across
//     shards) are excluded for this backend — they are exactly the specs
//     ConflictAnalysis calls ill-formed, and only the conflict-serializing
//     backends (Threaded, Sharded) owe identity on them.
//
// The generator (random_spec_gen.hpp, shared with the ready-set
// differential suite) is pure: one seed, one specification, bit-identical
// across rebuilds, so every backend runs the same world and failures replay
// from the seed printed by SCOPED_TRACE. MCAM_SOAK_SPECS widens the sweep (the
// TSan CI job runs this suite as-is).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "asn1/value.hpp"
#include "common/rng.hpp"
#include "estelle/conflict.hpp"
#include "estelle/executor.hpp"
#include "estelle/module.hpp"
#include "estelle/trace.hpp"
#include "random_spec_gen.hpp"

namespace mcam::estelle {
namespace {

using common::SimTime;

int spec_count() {
  if (const char* env = std::getenv("MCAM_SOAK_SPECS"))
    return std::max(1, std::atoi(env));
  return 50;
}

struct Outcome {
  std::vector<std::string> trace;  // "module-path/transition" in fire order
  std::string world;
  StopReason reason{};
  std::uint64_t fired = 0;
};

Outcome run_backend(std::uint64_t seed, ExecutorKind kind) {
  specgen::GeneratedWorld g = specgen::generate(seed);
  ExecutorConfig cfg;
  cfg.kind = kind;
  cfg.processors = 4;
  cfg.threads = 4;
  auto executor = make_executor(*g.spec, cfg);

  TraceRecorder trace;
  Outcome out;
  const RunReport report = executor->run({.observers = {&trace}});
  out.reason = report.reason;
  out.fired = report.fired;
  out.trace.reserve(trace.events().size());
  for (const TraceEvent& e : trace.events())
    out.trace.push_back(e.module_path + "/" + e.transition);
  out.world = specgen::world_snapshot(*g.spec);
  return out;
}

std::vector<std::string> sorted(std::vector<std::string> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(RandomSpecDifferential, AllBackendsAgreeOnSeededSpecs) {
  const int n = spec_count();
  int multi_shard = 0, with_delay = 0, conflicted = 0, skip_probes = 0;
  int sparse = 0;

  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(n); ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    specgen::GeneratedWorld probe = specgen::generate(seed);
    ConflictAnalysis analysis(*probe.spec);
    multi_shard += probe.nsys > 1;
    with_delay += probe.has_delay;
    conflicted += !analysis.conflict_free();
    skip_probes += probe.has_revalidation_skip;
    sparse += probe.sparse;

    const Outcome seq = run_backend(seed, ExecutorKind::Sequential);
    ASSERT_EQ(seq.reason, StopReason::Quiescent);
    ASSERT_GT(seq.fired, 0u);
    ASSERT_EQ(seq.fired, seq.trace.size());

    const Outcome thr = run_backend(seed, ExecutorKind::Threaded);
    EXPECT_EQ(thr.reason, StopReason::Quiescent);
    EXPECT_EQ(thr.world, seq.world) << "Threaded world diverged";
    EXPECT_EQ(thr.fired, seq.fired);
    if (!probe.has_delay)
      EXPECT_EQ(thr.trace, seq.trace) << "Threaded trace diverged";
    else
      EXPECT_EQ(sorted(thr.trace), sorted(seq.trace));

    const Outcome shd = run_backend(seed, ExecutorKind::Sharded);
    EXPECT_EQ(shd.reason, StopReason::Quiescent);
    EXPECT_EQ(shd.world, seq.world) << "Sharded world diverged";
    EXPECT_EQ(shd.fired, seq.fired);
    // The sharded backend owes the exact announced trace everywhere the
    // generator roams — including ill-formed-within-a-shard specs, which is
    // announce-after-revalidation's whole point.
    EXPECT_EQ(shd.trace, seq.trace) << "Sharded trace diverged";

    if (probe.parallelsim_ok) {
      const Outcome par = run_backend(seed, ExecutorKind::ParallelSim);
      EXPECT_EQ(par.reason, StopReason::Quiescent);
      EXPECT_EQ(par.world, seq.world) << "ParallelSim world diverged";
      EXPECT_EQ(par.fired, seq.fired);
      EXPECT_EQ(sorted(par.trace), sorted(seq.trace));
    }
  }

  // Generator-diversity floor: a refactor that quietly degenerates the
  // generator (all single-shard, no delays, nothing ill-formed) must fail
  // loudly here rather than leave the suite vacuously green.
  if (n >= 50) {
    EXPECT_GE(multi_shard, 5);
    EXPECT_GE(with_delay, 5);
    EXPECT_GE(conflicted, 3);
    EXPECT_GE(skip_probes, 5);
    EXPECT_GE(sparse, 5);
  }
}

TEST(RandomSpecDifferential, GeneratorIsPure) {
  // Same seed ⇒ same world and same sequential run, run-to-run: the
  // replay-from-seed property every failure report depends on.
  for (std::uint64_t seed : {3ull, 4ull, 17ull}) {
    const Outcome a = run_backend(seed, ExecutorKind::Sequential);
    const Outcome b = run_backend(seed, ExecutorKind::Sequential);
    EXPECT_EQ(a.trace, b.trace);
    EXPECT_EQ(a.world, b.world);
  }
}

TEST(RandomSpecDifferential, RevalidationSkipProbeActuallySkips) {
  // The grab flavor must really produce a round where announcement would
  // overcount without revalidation: total grab firings equal the shared
  // budget, which is odd, so the two grabbers cannot have split it evenly —
  // the final round had both as candidates and fired only one.
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    if (seed % 5 != 3) continue;
    found = true;
    const Outcome seq = run_backend(seed, ExecutorKind::Sequential);
    std::uint64_t grabs = 0;
    for (const std::string& t : seq.trace)
      if (t.find("/grab_grab_") != std::string::npos) ++grabs;
    EXPECT_GE(grabs, 3u) << "seed " << seed;
    EXPECT_EQ(grabs % 2, 1u) << "seed " << seed;  // odd budget fully drained
  }
  ASSERT_TRUE(found);
}

}  // namespace
}  // namespace mcam::estelle
