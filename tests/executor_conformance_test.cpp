// Executor conformance: the paper's interchangeability claim as a test.
//
// One specification, all registered ExecutorKinds constructed through the
// factory. Every backend must produce the identical firing trace on a
// deterministic workload, and every RunReport must satisfy the same
// invariants: fired counts consistent with observed events, monotone
// virtual time, correct stop reasons, quiescence idempotence.
//
// The identical-trace contract is stated for conflict-free specifications
// (see estelle/conflict.hpp). Ill-formed (conflicting) specs are exercised
// separately in conflict_test.cpp: the threaded backend serializes
// conflicting candidates with revalidation, so even those no longer diverge.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "estelle/executor.hpp"
#include "estelle/module.hpp"
#include "estelle/trace.hpp"

namespace mcam::estelle {
namespace {

using common::SimTime;

/// One station of a token ring. Exactly one station holds the token at any
/// time, so every round has exactly one firing candidate — the firing order
/// is fully determined and must be identical under every backend.
class Station : public Module {
 public:
  Station(std::string name, int hops_budget)
      : Module(std::move(name), Attribute::Process) {
    auto& in = ip("in");
    ip("out");
    trans("hop_" + this->name())
        .when(in)
        .cost(SimTime::from_us(7))
        .provided([this, hops_budget](Module&, const Interaction*) {
          return hops_ < hops_budget;
        })
        .action([this](Module&, const Interaction* m) {
          ++hops_;
          ip("out").output(Interaction(m->kind + 1));
        });
    // Budget exhausted: swallow the token so the world goes quiescent.
    trans("sink_" + this->name())
        .when(in)
        .priority(10)
        .action([](Module&, const Interaction*) {});
  }

  [[nodiscard]] int hops() const noexcept { return hops_; }

 private:
  int hops_ = 0;
};

struct Ring {
  Specification spec{"ring"};
  std::vector<Station*> stations;

  explicit Ring(int n, int hops_budget) {
    auto& sys =
        spec.root().create_child<Module>("sys", Attribute::SystemProcess);
    for (int i = 0; i < n; ++i)
      stations.push_back(&sys.create_child<Station>(
          "s" + std::to_string(i), hops_budget));
    for (int i = 0; i < n; ++i)
      connect(stations[static_cast<std::size_t>(i)]->ip("out"),
              stations[static_cast<std::size_t>((i + 1) % n)]->ip("in"));
    spec.initialize();
    // Inject the token into s0's inbox through the ring link it arrives on.
    stations.back()->ip("out").output(Interaction(1));
  }
};

ExecutorConfig config_for(ExecutorKind kind) {
  ExecutorConfig cfg;
  cfg.kind = kind;
  cfg.processors = 4;
  cfg.threads = 4;
  return cfg;
}

/// Observer asserting the virtual clock never runs backwards.
class MonotoneClock : public RunObserver {
 public:
  void on_fire(const Module&, const Transition&, SimTime now) override {
    EXPECT_GE(now, last_) << "fire event out of time order";
    last_ = now;
  }
  void on_round_end(Executor& ex, std::uint64_t) override {
    EXPECT_GE(ex.now(), last_) << "round ended before its fire events";
    last_ = ex.now();
  }

 private:
  SimTime last_{};
};

struct KindRun {
  std::vector<std::string> trace;
  RunReport report;
};

KindRun run_ring(ExecutorKind kind) {
  Ring ring(5, /*hops_budget=*/8);
  auto executor = make_executor(ring.spec, config_for(kind));
  EXPECT_EQ(executor->kind(), kind);

  TraceRecorder trace;
  MonotoneClock clock;
  KindRun out;
  out.report = executor->run({.observers = {&trace, &clock}});
  out.trace = trace.transition_names();

  // RunReport invariants.
  EXPECT_EQ(out.report.kind, kind);
  EXPECT_EQ(out.report.reason, StopReason::Quiescent);
  EXPECT_EQ(out.report.fired, out.trace.size());
  EXPECT_EQ(out.report.stats.fired, out.report.fired);
  EXPECT_EQ(out.report.time, executor->now());
  EXPECT_GE(out.report.time.ns, 0);
  EXPECT_GE(out.report.steps, out.trace.size());  // 1 candidate per round

  // A quiescent world stays quiescent: an immediate second run fires
  // nothing and leaves the cumulative counters untouched.
  const RunReport again = executor->run();
  EXPECT_EQ(again.reason, StopReason::Quiescent);
  EXPECT_EQ(again.fired, 0u);
  EXPECT_EQ(again.stats.fired, out.report.stats.fired);
  EXPECT_GE(again.time, out.report.time);
  return out;
}

TEST(ExecutorConformance, AllKindsProduceIdenticalFiringTraces) {
  const KindRun seq = run_ring(ExecutorKind::Sequential);
  ASSERT_FALSE(seq.trace.empty());
  // 5 stations x 8-hop budget each, one token: it hops until the station it
  // lands on is exhausted, then is sunk. The exact count matters less than
  // every backend agreeing on it — but pin it so regressions are loud.
  EXPECT_EQ(seq.trace.size(), 41u);  // 40 hops + 1 sink

  for (ExecutorKind kind : kAllExecutorKinds) {
    if (kind == ExecutorKind::Sequential) continue;  // the baseline above
    const KindRun other = run_ring(kind);
    EXPECT_EQ(other.trace, seq.trace)
        << "backend " << executor_kind_name(kind)
        << " diverged from sequential";
    EXPECT_EQ(other.report.fired, seq.report.fired);
  }
}

TEST(ExecutorConformance, FactoryKnowsAllKindsAndNamesRoundTrip) {
  auto& factory = ExecutorFactory::instance();
  for (ExecutorKind kind : kAllExecutorKinds) {
    EXPECT_TRUE(factory.known(kind));
    ExecutorKind parsed{};
    ASSERT_TRUE(executor_kind_from_name(executor_kind_name(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  EXPECT_FALSE(executor_kind_from_name("no-such-backend", nullptr));
}

TEST(ExecutorConformance, StopConditionsReportTheirReason) {
  for (ExecutorKind kind : kAllExecutorKinds) {
    SCOPED_TRACE(executor_kind_name(kind));
    // A world that never quiesces on its own.
    Specification spec("runaway");
    auto& sys =
        spec.root().create_child<Module>("sys", Attribute::SystemProcess);
    auto& w = sys.create_child<Module>("w", Attribute::Process);
    int count = 0;
    w.trans("forever")
        .cost(SimTime::from_us(50))
        .action([&count](Module&, const Interaction*) { ++count; });
    spec.initialize();
    auto executor = make_executor(spec, config_for(kind));

    RunReport r = executor->run({.stop = {StopCondition::max_steps(10)}});
    EXPECT_EQ(r.reason, StopReason::StepLimit);
    EXPECT_EQ(r.steps, 10u);

    r = executor->run({.stop = {StopCondition::when(
        [&] { return count >= 15; })}});
    EXPECT_EQ(r.reason, StopReason::PredicateSatisfied);
    EXPECT_GE(count, 15);

    const SimTime deadline = executor->now() + SimTime::from_us(200);
    r = executor->run({.stop = {StopCondition::deadline(deadline)}});
    EXPECT_EQ(r.reason, StopReason::DeadlineReached);
    EXPECT_GE(executor->now(), deadline);

    // The config backstop caps a run with no explicit conditions.
    ExecutorConfig capped = config_for(kind);
    capped.max_steps = 3;
    Specification spec2("runaway2");
    auto& sys2 =
        spec2.root().create_child<Module>("sys", Attribute::SystemProcess);
    sys2.create_child<Module>("w", Attribute::Process)
        .trans("forever")
        .action([](Module&, const Interaction*) {});
    spec2.initialize();
    EXPECT_EQ(make_executor(spec2, capped)->run().reason,
              StopReason::StepLimit);
  }
}

TEST(ExecutorConformance, IdleClockJumpDoesNotOvershootDeadline) {
  for (ExecutorKind kind : kAllExecutorKinds) {
    SCOPED_TRACE(executor_kind_name(kind));
    // The only pending work is a delay transition waking at 10ms; a 1ms
    // deadline must stop the clock at 1ms, not at the 10ms wakeup.
    Specification spec("idle");
    auto& sys =
        spec.root().create_child<Module>("sys", Attribute::SystemProcess);
    sys.create_child<Module>("sleeper", Attribute::Process)
        .trans("late")
        .delay(SimTime::from_ms(10))
        .action([](Module&, const Interaction*) {});
    spec.initialize();

    auto executor = make_executor(spec, config_for(kind));
    const RunReport r = executor->run(
        {.stop = {StopCondition::deadline(SimTime::from_ms(1))}});
    EXPECT_EQ(r.reason, StopReason::DeadlineReached);
    EXPECT_EQ(executor->now(), SimTime::from_ms(1));
  }
}

TEST(ExecutorConformance, ObserverChainNotifiedInOrderWithLifecycle) {
  struct Logger : RunObserver {
    explicit Logger(std::vector<std::string>& log, std::string tag)
        : log_(log), tag_(std::move(tag)) {}
    void on_run_begin(Executor&) override { log_.push_back(tag_ + ":begin"); }
    void on_fire(const Module&, const Transition& t, SimTime) override {
      log_.push_back(tag_ + ":" + t.name);
    }
    void on_run_end(Executor&, const RunReport& r) override {
      log_.push_back(tag_ + ":end:" + stop_reason_name(r.reason));
    }
    std::vector<std::string>& log_;
    std::string tag_;
  };

  Ring ring(3, /*hops_budget=*/1);
  auto executor = make_executor(ring.spec);
  std::vector<std::string> log;
  Logger a(log, "a"), b(log, "b");
  executor->run({.observers = {&a, &b}});

  ASSERT_GE(log.size(), 6u);
  EXPECT_EQ(log[0], "a:begin");
  EXPECT_EQ(log[1], "b:begin");
  EXPECT_EQ(log[2], "a:hop_s0");
  EXPECT_EQ(log[3], "b:hop_s0");
  EXPECT_EQ(log.back(), "b:end:quiescent");
}

TEST(ExecutorConformance, PersistentRunObserversSeeEveryRun) {
  for (ExecutorKind kind : kAllExecutorKinds) {
    SCOPED_TRACE(executor_kind_name(kind));
    Ring ring(4, /*hops_budget=*/2);
    auto executor = make_executor(ring.spec, config_for(kind));

    // add_run_observer: attached once, observes every subsequent run —
    // the executor-scoped replacement for the retired install() shim.
    TraceRecorder trace;
    executor->add_run_observer(&trace);
    executor->run();
    const std::size_t first = trace.size();
    EXPECT_GT(first, 0u);

    // An observer in both the persistent list and RunOptions::observers is
    // notified once per event, not twice.
    Ring ring2(4, /*hops_budget=*/2);
    auto executor2 = make_executor(ring2.spec, config_for(kind));
    TraceRecorder both;
    executor2->add_run_observer(&both);
    executor2->run({.observers = {&both}});
    EXPECT_EQ(both.size(), first);

    // remove_run_observer detaches: re-arm the world and run again — the
    // new firings must not reach the removed observer.
    executor2->remove_run_observer(&both);
    ring2.stations.back()->ip("out").output(Interaction(1));
    executor2->run();
    EXPECT_EQ(both.size(), first);
  }
}

TEST(ExecutorConformance, CrossShardSpecTraceEquivalence) {
  // Two system modules (client/server shards) linked by one channel: a
  // sender streams tokens to an echo counter across the shard boundary.
  // Conflict-free, so the deterministic backends must agree on the exact
  // firing trace even though the sharded backend routes the channel through
  // the two-phase transfer mailboxes. (ParallelSim is exercised for counts
  // elsewhere; its announce order follows simulated-engine completion order,
  // which the identical-trace contract does not cover for multi-candidate
  // rounds.)
  const auto run_kind = [](ExecutorKind kind) {
    Specification spec("xshard");
    auto& client =
        spec.root().create_child<Module>("client", Attribute::SystemProcess);
    auto& server =
        spec.root().create_child<Module>("server", Attribute::SystemProcess);
    auto& sender = client.create_child<Module>("sender", Attribute::Process);
    auto& echo = server.create_child<Module>("echo", Attribute::Process);
    connect(sender.ip("out"), echo.ip("in"));
    int sent = 0;
    sender.trans("send")
        .cost(SimTime::from_us(5))
        .provided([&sent](Module&, const Interaction*) { return sent < 6; })
        .action([&sent, &sender](Module&, const Interaction*) {
          sender.ip("out").output(Interaction(++sent));
        });
    echo.trans("echo").when(echo.ip("in")).cost(SimTime::from_us(3)).action(
        [](Module&, const Interaction*) {});
    spec.initialize();

    TraceRecorder trace;
    auto executor = make_executor(spec, config_for(kind));
    executor->run({.observers = {&trace}});
    return trace.transition_names();
  };

  const auto seq = run_kind(ExecutorKind::Sequential);
  ASSERT_EQ(seq.size(), 12u);  // 6 sends + 6 echoes
  EXPECT_EQ(run_kind(ExecutorKind::Threaded), seq);
  EXPECT_EQ(run_kind(ExecutorKind::Sharded), seq);
}

TEST(ExecutorConformance, ShardedReportCarriesPerShardStats) {
  Ring ring(5, /*hops_budget=*/8);
  auto executor = make_executor(ring.spec, config_for(ExecutorKind::Sharded));
  const RunReport report = executor->run();

  // One shard (the ring's single system module), with the run's whole
  // firing count attributed to it.
  ASSERT_EQ(report.shards.size(), 1u);
  EXPECT_EQ(report.shards[0].shard, 0);
  EXPECT_EQ(report.shards[0].system_module, "spec:ring.sys");
  EXPECT_EQ(report.shards[0].fired, report.fired);
  EXPECT_GT(report.shards[0].rounds, 0u);
  EXPECT_EQ(report.shards[0].clock, report.time);

  // Other backends leave the per-shard section empty.
  Ring ring2(5, /*hops_budget=*/8);
  EXPECT_TRUE(make_executor(ring2.spec)->run().shards.empty());
}

}  // namespace
}  // namespace mcam::estelle
