// ACSE tests: APDU codec round-trips, the protocol machine over a full
// generated stack, application-context rejection, release wrapping, and the
// end-to-end Testbed integration of Fig. 3 (MCA / ACSE / presentation).
#include <gtest/gtest.h>

#include "estelle/executor.hpp"
#include "mcam/testbed.hpp"
#include "osi/acse.hpp"
#include "osi/stack.hpp"

namespace mcam::osi {
namespace {

using common::Bytes;
using estelle::Attribute;
using estelle::Interaction;
using estelle::Module;
using estelle::make_executor;
using estelle::Specification;

TEST(AcseCodec, AarqRoundTrip) {
  const Bytes user = common::to_bytes("associate-req-pdu");
  auto apdu = parse_acse(build_aarq(oids::kMcamApplicationContext, user));
  ASSERT_TRUE(apdu.ok());
  EXPECT_EQ(apdu.value().type, AcseApdu::Type::AARQ);
  EXPECT_EQ(apdu.value().version, 1);
  EXPECT_EQ(apdu.value().context, oids::kMcamApplicationContext);
  EXPECT_EQ(apdu.value().user_information, user);
}

TEST(AcseCodec, AareResults) {
  for (AcseResult result :
       {AcseResult::Accepted, AcseResult::RejectedPermanent,
        AcseResult::RejectedContextMismatch}) {
    auto apdu =
        parse_acse(build_aare(result, oids::kMcamApplicationContext, {}));
    ASSERT_TRUE(apdu.ok());
    EXPECT_EQ(apdu.value().type, AcseApdu::Type::AARE);
    EXPECT_EQ(apdu.value().result, result);
  }
}

TEST(AcseCodec, ReleaseAndAbort) {
  auto rlrq = parse_acse(build_rlrq(1, common::to_bytes("bye")));
  ASSERT_TRUE(rlrq.ok());
  EXPECT_EQ(rlrq.value().type, AcseApdu::Type::RLRQ);
  EXPECT_EQ(rlrq.value().reason, 1);
  EXPECT_EQ(rlrq.value().user_information, common::to_bytes("bye"));

  auto rlre = parse_acse(build_rlre(0, {}));
  ASSERT_TRUE(rlre.ok());
  EXPECT_EQ(rlre.value().type, AcseApdu::Type::RLRE);

  auto abrt = parse_acse(build_abrt(1));
  ASSERT_TRUE(abrt.ok());
  EXPECT_EQ(abrt.value().type, AcseApdu::Type::ABRT);
  EXPECT_EQ(abrt.value().reason, 1);
}

TEST(AcseCodec, RejectsGarbage) {
  EXPECT_FALSE(parse_acse(common::to_bytes("nope")).ok());
  EXPECT_FALSE(parse_acse({}).ok());
}

/// Two ACSE entities over two full generated stacks, driven through user
/// modules (same harness pattern as osi_test).
struct AcseWorld {
  Specification spec{"acse"};
  Module* cu;
  Module* su;
  AcseModule* ca;
  AcseModule* sa;

  explicit AcseWorld(AcseModule::Config responder_cfg = {}) {
    auto& client_sys =
        spec.root().create_child<Module>("client", Attribute::SystemProcess);
    auto& server_sys =
        spec.root().create_child<Module>("server", Attribute::SystemProcess);
    ca = &client_sys.create_child<AcseModule>("acseC");
    sa = &server_sys.create_child<AcseModule>("acseS", responder_cfg);
    EstelleStack cstk = build_estelle_stack(client_sys, "c");
    EstelleStack sstk = build_estelle_stack(server_sys, "s");
    estelle::connect(ca->lower(), cstk.service());
    estelle::connect(sa->lower(), sstk.service());
    join_transports(*cstk.transport, *sstk.transport);
    cu = &client_sys.create_child<Module>("userC", Attribute::Process);
    su = &server_sys.create_child<Module>("userS", Attribute::Process);
    estelle::connect(cu->ip("svc"), ca->upper());
    estelle::connect(su->ip("svc"), sa->upper());
    spec.initialize();
  }
};

TEST(AcseModuleTest, AssociateDataRelease) {
  AcseWorld w;
  auto sched = make_executor(w.spec);

  w.cu->ip("svc").output(Interaction(kPConReq, common::to_bytes("areq")));
  sched->run_until([&] { return w.su->ip("svc").has_input(); });
  ASSERT_TRUE(w.su->ip("svc").has_input());
  Interaction ind = w.su->ip("svc").pop();
  EXPECT_EQ(ind.kind, kPConInd);
  EXPECT_EQ(ind.payload, common::to_bytes("areq"));  // AARQ unwrapped

  w.su->ip("svc").output(Interaction(kPConResp, asn1::Value::boolean(true),
                                     common::to_bytes("aresp")));
  sched->run_until([&] { return w.cu->ip("svc").has_input(); });
  Interaction conf = w.cu->ip("svc").pop();
  EXPECT_EQ(conf.kind, kPConConf);
  EXPECT_EQ(conf.payload, common::to_bytes("aresp"));
  EXPECT_EQ(w.ca->state(), AcseModule::kOpen);

  // Data passes through untouched.
  w.cu->ip("svc").output(Interaction(kPDatReq, common::to_bytes("data")));
  sched->run_until([&] { return w.su->ip("svc").has_input(); });
  Interaction data = w.su->ip("svc").pop();
  EXPECT_EQ(data.kind, kPDatInd);
  EXPECT_EQ(data.payload, common::to_bytes("data"));

  // Release wraps RLRQ/RLRE and unwraps the user data.
  w.cu->ip("svc").output(Interaction(kPRelReq, common::to_bytes("closing")));
  sched->run_until([&] { return w.su->ip("svc").has_input(); });
  Interaction rel = w.su->ip("svc").pop();
  EXPECT_EQ(rel.kind, kPRelInd);
  EXPECT_EQ(rel.payload, common::to_bytes("closing"));
  w.su->ip("svc").output(Interaction(kPRelResp, common::to_bytes("ok")));
  sched->run_until([&] { return w.cu->ip("svc").has_input(); });
  Interaction relconf = w.cu->ip("svc").pop();
  EXPECT_EQ(relconf.kind, kPRelConf);
  EXPECT_EQ(relconf.payload, common::to_bytes("ok"));
  EXPECT_EQ(w.ca->state(), AcseModule::kIdle);
  EXPECT_EQ(w.sa->state(), AcseModule::kIdle);
  EXPECT_GT(w.ca->apdus_sent(), 0u);
}

TEST(AcseModuleTest, ContextMismatchRefusedBeforeApplication) {
  AcseModule::Config wrong_context;
  wrong_context.context = {1, 3, 9999, 77};  // responder speaks another app
  AcseWorld w(wrong_context);
  auto sched = make_executor(w.spec);

  w.cu->ip("svc").output(Interaction(kPConReq, common::to_bytes("areq")));
  sched->run_until([&] { return w.cu->ip("svc").has_input(); });
  ASSERT_TRUE(w.cu->ip("svc").has_input());
  EXPECT_EQ(w.cu->ip("svc").pop().kind, kPConRefuse);
  // The server application never saw the indication.
  EXPECT_FALSE(w.su->ip("svc").has_input());
  EXPECT_EQ(w.sa->context_rejections(), 1u);
  EXPECT_EQ(w.ca->state(), AcseModule::kIdle);
}

TEST(AcseModuleTest, UserRefusalCarriesUserData) {
  AcseWorld w;
  auto sched = make_executor(w.spec);
  w.cu->ip("svc").output(Interaction(kPConReq, common::to_bytes("areq")));
  sched->run_until([&] { return w.su->ip("svc").has_input(); });
  (void)w.su->ip("svc").pop();
  w.su->ip("svc").output(Interaction(kPConResp, asn1::Value::boolean(false),
                                     common::to_bytes("denied")));
  sched->run_until([&] { return w.cu->ip("svc").has_input(); });
  Interaction refused = w.cu->ip("svc").pop();
  EXPECT_EQ(refused.kind, kPConRefuse);
  EXPECT_EQ(refused.payload, common::to_bytes("denied"));
}

// ---- end-to-end through the MCAM testbed (Fig. 3 layering) ----

class AcseStackParam : public ::testing::TestWithParam<core::StackKind> {};

TEST_P(AcseStackParam, McamSessionOverAcse) {
  core::Testbed::Config cfg;
  cfg.stack = GetParam();
  cfg.use_acse = true;
  core::Testbed bed(cfg);

  directory::MovieEntry e;
  e.title = "acse-movie";
  e.duration_frames = 20;
  e.location_host = cfg.server_host;
  (void)bed.server().directory().add(e);

  core::McamClient client = bed.client(0);
  ASSERT_TRUE(client.associate("alice").ok());
  ASSERT_NE(bed.connection(0).client_acse, nullptr);
  EXPECT_EQ(bed.connection(0).client_acse->state(), AcseModule::kOpen);

  auto select = client.select_movie("acse-movie");
  ASSERT_TRUE(select.ok());
  EXPECT_EQ(select.value().result, core::ResultCode::Success);

  ASSERT_TRUE(client.release().ok());
  EXPECT_EQ(bed.connection(0).client_acse->state(), AcseModule::kIdle);
  EXPECT_EQ(bed.server().active_sessions(), 0u);
}

INSTANTIATE_TEST_SUITE_P(BothStacks, AcseStackParam,
                         ::testing::Values(core::StackKind::EstelleGenerated,
                                           core::StackKind::IsodeHandCoded),
                         [](const auto& info) {
                           return info.param ==
                                          core::StackKind::EstelleGenerated
                                      ? "EstelleGenerated"
                                      : "IsodeHandCoded";
                         });

}  // namespace
}  // namespace mcam::osi
