// FreeRunning executor tests: barrier-free continuation dispatch
// (free_executor.hpp).
//
// The backend's contract, pinned here:
//   * announced trace identical to Sequential on every generated spec —
//     free-running dispatch owes it on conflict-free specs (round-stamped
//     mailboxes + neighbor gates), and the epoch fallback owes it on
//     conflicted ones (announce-after-revalidation), so the sweep asserts
//     exact equality unconditionally, world snapshot and fired count
//     included;
//   * the fallback really engages: specs ConflictAnalysis cannot prove
//     conflict-free report fallback_rounds > 0, proven ones report 0;
//   * exact stop-condition cutoff without a barrier: max_steps produces
//     identical fired counts and world state to Sequential at the same
//     budget (the shard-quiesce handshake), deadlines pin now() exactly;
//   * park/wake lifecycle: shards park passive at quiescence, mailbox wakes
//     resume them, the firing-log high-water is bounded and observed;
//   * the pool-quiesce-then-resize path: a reentrant run with a narrower
//     worker_count while continuations are parked must not strand them.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "asn1/value.hpp"
#include "estelle/conflict.hpp"
#include "estelle/executor.hpp"
#include "estelle/free_executor.hpp"
#include "estelle/metrics.hpp"
#include "estelle/module.hpp"
#include "estelle/trace.hpp"
#include "random_spec_gen.hpp"

namespace mcam::estelle {
namespace {

using common::SimTime;

int spec_count() {
  if (const char* env = std::getenv("MCAM_SOAK_SPECS"))
    return std::max(1, std::atoi(env));
  return 50;
}

struct Outcome {
  std::vector<std::string> trace;
  std::string world;
  StopReason reason{};
  std::uint64_t fired = 0;
  RunReport report;
};

Outcome run_backend(std::uint64_t seed, ExecutorKind kind) {
  specgen::GeneratedWorld g = specgen::generate(seed);
  ExecutorConfig cfg;
  cfg.kind = kind;
  cfg.threads = 4;
  auto executor = make_executor(*g.spec, cfg);

  TraceRecorder trace;
  Outcome out;
  out.report = executor->run({.observers = {&trace}});
  out.reason = out.report.reason;
  out.fired = out.report.fired;
  out.trace.reserve(trace.events().size());
  for (const TraceEvent& e : trace.events())
    out.trace.push_back(e.module_path + "/" + e.transition);
  out.world = specgen::world_snapshot(*g.spec);
  return out;
}

TEST(FreeRunning, MatchesSequentialExactlyOnGeneratedSpecs) {
  const int n = spec_count();
  int free_dispatched = 0, fell_back = 0, multi_shard_free = 0;
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(n); ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    specgen::GeneratedWorld probe = specgen::generate(seed);
    ConflictAnalysis analysis(*probe.spec);

    const Outcome seq = run_backend(seed, ExecutorKind::Sequential);
    ASSERT_EQ(seq.reason, StopReason::Quiescent);
    ASSERT_GT(seq.fired, 0u);

    const Outcome fr = run_backend(seed, ExecutorKind::FreeRunning);
    EXPECT_EQ(fr.reason, StopReason::Quiescent);
    EXPECT_EQ(fr.world, seq.world) << "FreeRunning world diverged";
    EXPECT_EQ(fr.fired, seq.fired);
    EXPECT_EQ(fr.trace, seq.trace) << "FreeRunning trace diverged";

    // Conflict-freedom decides the dispatch style; both must be exercised.
    if (analysis.conflict_free()) {
      EXPECT_EQ(fr.report.free_running.fallback_rounds, 0u)
          << "proven conflict-free spec took the epoch fallback";
      ++free_dispatched;
      if (probe.nsys > 1) ++multi_shard_free;
      EXPECT_GT(fr.report.free_running.parks, 0u)
          << "a free session must park at least at quiescence";
    } else {
      EXPECT_GT(fr.report.free_running.fallback_rounds, 0u)
          << "conflicted spec must fall back to the epoch path";
      ++fell_back;
    }
  }
  if (n >= 50) {
    // Diversity floor, like the backend differential's: the sweep must hit
    // genuine free-running dispatch (including gated multi-shard pipelines)
    // AND the fallback path, or the assertions above are vacuous.
    EXPECT_GE(free_dispatched, 20);
    EXPECT_GE(multi_shard_free, 3);
    EXPECT_GE(fell_back, 3);
  }
}

// ---------------------------------------------------------------------------
// Exact stop cutoff without a barrier

/// Two independent system modules, each ticking forever — the worst case for
/// run-ahead: nothing ever gates the shards, only the release limit can.
struct TwinTickers {
  Specification spec{"twins"};
  explicit TwinTickers() {
    for (int i = 0; i < 2; ++i) {
      auto& sys = spec.root().create_child<Module>("sys" + std::to_string(i),
                                                   Attribute::SystemProcess);
      auto& w = sys.create_child<Module>("w", Attribute::Process);
      w.trans("tick").cost(SimTime::from_us(5)).action(
          [](Module& m, const Interaction*) { m.set_state(m.state() + 1); });
    }
    spec.initialize();
  }
};

TEST(FreeRunning, MaxStepsCutoffIsExact) {
  static constexpr std::uint64_t kBudget = 137;
  const auto fired_at_budget = [](ExecutorKind kind) {
    TwinTickers world;
    auto executor = make_executor(world.spec, {.kind = kind, .threads = 4});
    const RunReport r =
        executor->run({.stop = {StopCondition::max_steps(kBudget)}});
    EXPECT_EQ(r.reason, StopReason::StepLimit);
    EXPECT_EQ(r.steps, kBudget);
    std::string states;
    world.spec.root().for_each(
        [&](Module& m) { states += std::to_string(m.state()) + ";"; });
    return std::make_pair(r.fired, states);
  };
  const auto seq = fired_at_budget(ExecutorKind::Sequential);
  const auto fr = fired_at_budget(ExecutorKind::FreeRunning);
  // The shard-quiesce handshake: free-running shards stop at exactly the
  // budgeted round, so the fired count and world match the barrier loops.
  EXPECT_EQ(fr.first, seq.first);
  EXPECT_EQ(fr.second, seq.second);
  EXPECT_EQ(seq.first, 2 * kBudget);  // two shards, one firing each per round
}

TEST(FreeRunning, DeadlineDoesNotOvershootAndPinsEveryShard) {
  TwinTickers world;
  auto executor = make_executor(
      world.spec, {.kind = ExecutorKind::FreeRunning, .threads = 4});
  const SimTime deadline = SimTime::from_us(500);
  const RunReport r =
      executor->run({.stop = {StopCondition::deadline(deadline)}});
  EXPECT_EQ(r.reason, StopReason::DeadlineReached);
  EXPECT_GE(executor->now(), deadline);
  // No shard ran past the deadline by more than one round's costs: each
  // shard's clock is pinned at its first round boundary at/after it.
  for (const ShardRunStats& s : r.shards)
    EXPECT_LT(s.clock, deadline + SimTime::from_us(20)) << s.system_module;
}

// ---------------------------------------------------------------------------
// Park/wake lifecycle across a shard boundary

TEST(FreeRunning, MailboxWakeDrivesAPassiveConsumerShard) {
  // Producer shard streams 40 tokens; the consumer shard has nothing
  // spontaneous, so it runs purely on cross-shard arrivals — parking passive
  // whenever its pipeline stage drains and resuming on the mailbox wake.
  Specification spec("pipeline");
  auto& psys = spec.root().create_child<Module>("p", Attribute::SystemProcess);
  auto& csys = spec.root().create_child<Module>("c", Attribute::SystemProcess);
  auto& prod = psys.create_child<Module>("prod", Attribute::Process);
  auto& cons = csys.create_child<Module>("cons", Attribute::Process);
  connect(prod.ip("out"), cons.ip("in"));
  int sent = 0;
  prod.trans("send")
      .cost(SimTime::from_us(3))
      .provided([&sent](Module&, const Interaction*) { return sent < 40; })
      .action([&sent, &prod](Module& m, const Interaction*) {
        ++sent;
        prod.ip("out").output(Interaction(1, asn1::Value::integer(sent)));
        m.set_state(m.state() + 1);
      });
  int got = 0;
  long long value_sum = 0;
  cons.trans("recv").when(cons.ip("in")).cost(SimTime::from_us(2)).action(
      [&got, &value_sum](Module& m, const Interaction* msg) {
        ++got;
        // Parameters must survive the mailbox round-trip intact — future-
        // stamped transfers sit parked across partial drains (regression:
        // a self-move in the drain compaction used to empty them).
        value_sum += msg->value.as_int().value_or(0);
        m.set_state(m.state() + 1);
      });
  spec.initialize();

  TraceRecorder trace;
  auto executor = make_executor(
      spec, {.kind = ExecutorKind::FreeRunning, .threads = 2});
  const RunReport r = executor->run({.observers = {&trace}});
  EXPECT_EQ(r.reason, StopReason::Quiescent);
  EXPECT_EQ(got, 40);
  EXPECT_EQ(value_sum, 40 * 41 / 2);  // every payload arrived undamaged
  EXPECT_EQ(r.fired, 80u);
  EXPECT_EQ(r.free_running.fallback_rounds, 0u);
  EXPECT_GT(r.free_running.parks, 0u);
  EXPECT_GT(r.free_running.log_high_water, 0u);
  // Announcement stream is coherent: every send precedes its receive.
  int seen_sends = 0, seen_recvs = 0;
  for (const TraceEvent& e : trace.events()) {
    if (e.transition == "send") ++seen_sends;
    if (e.transition == "recv") {
      ++seen_recvs;
      EXPECT_LE(seen_recvs, seen_sends) << "recv announced before its send";
    }
  }
  EXPECT_EQ(seen_sends, 40);
  EXPECT_EQ(seen_recvs, 40);
}

TEST(FreeRunning, MetricsAndHotPathCountersAreWired) {
  TwinTickers world;
  auto executor = make_executor(
      world.spec, {.kind = ExecutorKind::FreeRunning, .threads = 4});
  MetricsObserver metrics;
  const RunReport r = executor->run(
      {.stop = {StopCondition::max_steps(50)}, .observers = {&metrics}});
  EXPECT_GT(r.guards_examined, 0u);
  EXPECT_GT(r.candidates_considered, 0u);
  EXPECT_EQ(metrics.guards_examined(), r.guards_examined);
  EXPECT_EQ(metrics.candidates_considered(), r.candidates_considered);
  EXPECT_EQ(r.kind, ExecutorKind::FreeRunning);
  EXPECT_EQ(r.shards.size(), 2u);
}

TEST(FreeRunning, SteadyStateRunsDoNotAllocate) {
  // Sessions are rebuilt per run, but from persistent high-water buffers: a
  // warmed executor's next run must not grow anything (the same bar the
  // other dirty-set backends meet per round).
  TwinTickers world;
  auto executor = make_executor(
      world.spec, {.kind = ExecutorKind::FreeRunning, .threads = 4});
  executor->run({.stop = {StopCondition::max_steps(100)}});
  const RunReport steady =
      executor->run({.stop = {StopCondition::max_steps(100)}});
  EXPECT_GT(steady.fired, 0u);
  EXPECT_EQ(steady.rounds_with_allocation, 0u)
      << "warmed free-running sessions must not allocate";
}

// ---------------------------------------------------------------------------
// Pool quiesce-then-resize (the stranded-continuation regression)

TEST(FreeRunning, ReentrantNarrowerRunDoesNotStrandParkedContinuations) {
  // The outer FreeRunning run (2 shards, width 2) evaluates a stop predicate
  // while its shard continuations are parked at the burst rendezvous. The
  // predicate reentrantly runs the SAME executor with worker_count=1 — too
  // narrow for free dispatch, so the inner run falls back to the epoch path
  // and resizes the pool. Without the quiesce-before-resize hook the old
  // pool's destructor would join forever on the parked continuations.
  TwinTickers world;
  auto executor = make_executor(
      world.spec, {.kind = ExecutorKind::FreeRunning, .threads = 2});
  int inner_runs = 0;
  RunOptions outer;
  outer.stop.push_back(StopCondition::when([&] {
    if (inner_runs == 0) {
      ++inner_runs;
      RunOptions inner;
      inner.stop.push_back(StopCondition::max_steps(5));
      inner.worker_count = 1;
      const RunReport r = executor->run(inner);
      EXPECT_EQ(r.reason, StopReason::StepLimit);
      EXPECT_GT(r.free_running.fallback_rounds, 0u);
    }
    return false;
  }));
  outer.stop.push_back(StopCondition::max_steps(30));
  const RunReport r = executor->run(outer);
  EXPECT_EQ(r.reason, StopReason::StepLimit);
  EXPECT_EQ(inner_runs, 1);

  // And the executor still free-runs correctly afterwards.
  const RunReport after =
      executor->run({.stop = {StopCondition::max_steps(10)}});
  EXPECT_EQ(after.reason, StopReason::StepLimit);
  EXPECT_EQ(after.steps, 10u);
}

TEST(FreeRunning, QuiescentWorldStaysQuiescentAndSessionsClose) {
  Specification spec("once");
  auto& sys = spec.root().create_child<Module>("sys", Attribute::SystemProcess);
  auto& w = sys.create_child<Module>("w", Attribute::Process);
  w.trans("once").from(0).to(1).action([](Module&, const Interaction*) {});
  spec.initialize();

  FreeRunningExecutor executor(spec, {.threads = 2});
  EXPECT_EQ(executor.run().fired, 1u);
  EXPECT_FALSE(executor.session_active()) << "session must close with the run";
  const RunReport again = executor.run();
  EXPECT_EQ(again.reason, StopReason::Quiescent);
  EXPECT_EQ(again.fired, 0u);
  EXPECT_FALSE(executor.session_active());
}

}  // namespace
}  // namespace mcam::estelle
