// MTP stream-protocol tests: packet codec, frame source determinism,
// isochronous pacing, fragmentation/reassembly, loss accounting, pause/
// resume/seek, and the SPA/SUA agents.
#include <gtest/gtest.h>

#include "mtp/mtp.hpp"
#include "mtp/sps.hpp"

namespace mcam::mtp {
namespace {

using common::SimTime;

net::Impairments fast_link() {
  net::Impairments imp;
  imp.latency = SimTime::from_ms(1);
  imp.jitter = {};
  imp.loss = 0.0;
  imp.bandwidth_bps = 100e6;
  return imp;
}

TEST(PacketCodec, RoundTrip) {
  PacketHeader h;
  h.stream = 3;
  h.seq = 12345;
  h.frame = 99;
  h.frag = 2;
  h.nfrags = 5;
  h.flags = kFlagIntra;
  h.capture_ts_ns = 777777;
  const common::Bytes payload(100, 0x42);
  auto v = parse_packet(build_packet(h, payload));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().header.stream, 3);
  EXPECT_EQ(v.value().header.seq, 12345u);
  EXPECT_EQ(v.value().header.frame, 99u);
  EXPECT_EQ(v.value().header.frag, 2);
  EXPECT_EQ(v.value().header.nfrags, 5);
  EXPECT_EQ(v.value().header.flags, kFlagIntra);
  EXPECT_EQ(v.value().header.capture_ts_ns, 777777);
  EXPECT_EQ(v.value().payload, payload);
}

TEST(PacketCodec, RejectsShortPacket) {
  EXPECT_FALSE(parse_packet(common::Bytes(kHeaderSize - 1, 0)).ok());
}

TEST(FrameSource, DeterministicAndGopPatterned) {
  FrameSource::Config cfg;
  cfg.total_frames = 36;
  cfg.gop = 12;
  FrameSource a(cfg), b(cfg);
  for (int i = 0; i < 36; ++i) {
    auto fa = a.next();
    auto fb = b.next();
    ASSERT_TRUE(fa && fb);
    EXPECT_EQ(fa->data, fb->data);
    EXPECT_EQ(fa->intra, i % 12 == 0);
  }
  EXPECT_FALSE(a.next().has_value());
  EXPECT_TRUE(a.exhausted());
}

TEST(FrameSource, IntraFramesAreLarger) {
  FrameSource::Config cfg;
  cfg.total_frames = 120;
  cfg.gop = 12;
  cfg.intra_scale = 2.5;
  FrameSource src(cfg);
  double intra_sum = 0, inter_sum = 0;
  int intra_n = 0, inter_n = 0;
  while (auto f = src.next()) {
    if (f->intra) {
      intra_sum += static_cast<double>(f->data.size());
      ++intra_n;
    } else {
      inter_sum += static_cast<double>(f->data.size());
      ++inter_n;
    }
  }
  EXPECT_GT(intra_sum / intra_n, 1.8 * (inter_sum / inter_n));
}

struct StreamWorld {
  net::SimNetwork net{2024, fast_link()};
  net::Socket& tx;
  net::Socket& rx;

  StreamWorld() : tx(net.open({"server", 1})), rx(net.open({"client", 1})) {}

  /// Run sender and receiver in lockstep until `until`.
  void pump(StreamSender& sender, StreamReceiver& receiver, SimTime until,
            SimTime tick = SimTime::from_ms(5)) {
    while (net.now() < until) {
      SimTime next = net.now() + tick;
      if (next > until) next = until;
      sender.step(net.now());
      net.run_until(next);
      receiver.poll(net.now());
    }
    sender.step(net.now());
    net.run_all();
    receiver.poll(net.now());
  }
};

TEST(Stream, DeliversAllFramesIntactOnCleanLink) {
  StreamWorld w;
  FrameSource::Config cfg;
  cfg.total_frames = 50;
  cfg.fps = 25.0;
  StreamSender sender(w.tx, w.rx.address(), FrameSource(cfg));
  StreamReceiver receiver(w.rx);

  std::vector<std::uint32_t> frames;
  bool payload_ok = true;
  receiver.set_sink([&](std::uint32_t frame, const common::Bytes& data, bool) {
    frames.push_back(frame);
    for (std::size_t i = 0; i < data.size(); ++i)
      if (data[i] !=
          static_cast<std::uint8_t>((frame * 131 + i * 31) & 0xff)) {
        payload_ok = false;
        break;
      }
  });

  w.pump(sender, receiver, SimTime::from_s(2.5));
  EXPECT_TRUE(sender.finished());
  EXPECT_EQ(sender.stats().frames_sent, 50u);
  ASSERT_EQ(frames.size(), 50u);
  EXPECT_TRUE(payload_ok) << "reassembled payload corrupted";
  for (std::size_t i = 0; i < frames.size(); ++i)
    EXPECT_EQ(frames[i], i);  // in order on a clean link
  EXPECT_EQ(receiver.stats().packets_lost, 0u);
  EXPECT_TRUE(receiver.stats().end_of_stream);
}

TEST(Stream, IsochronousPacing) {
  StreamWorld w;
  FrameSource::Config cfg;
  cfg.total_frames = 10;
  cfg.fps = 20.0;  // 50ms interval
  StreamSender sender(w.tx, w.rx.address(), FrameSource(cfg));
  // At t=0 only frame 0 is due.
  sender.step(w.net.now());
  EXPECT_EQ(sender.stats().frames_sent, 1u);
  // At t=125ms frames 1 and 2 are due as well.
  w.net.run_until(SimTime::from_ms(125));
  sender.step(w.net.now());
  EXPECT_EQ(sender.stats().frames_sent, 3u);
}

TEST(Stream, LargeFramesAreFragmented) {
  StreamWorld w;
  FrameSource::Config cfg;
  cfg.total_frames = 4;
  cfg.mean_frame_bytes = 6000;
  cfg.stddev_bytes = 0;
  cfg.gop = 0;  // no intra scaling
  StreamSender::Config scfg;
  scfg.mtu_payload = 1400;
  StreamSender sender(w.tx, w.rx.address(), FrameSource(cfg), scfg);
  StreamReceiver receiver(w.rx);
  std::size_t frames = 0;
  receiver.set_sink([&](std::uint32_t, const common::Bytes& data, bool) {
    ++frames;
    EXPECT_GE(data.size(), 5000u);
  });
  w.pump(sender, receiver, SimTime::from_s(1));
  EXPECT_EQ(frames, 4u);
  // ~6000/1400 ⇒ 5 fragments per frame.
  EXPECT_GE(sender.stats().packets_sent, 4u * 4);
}

TEST(Stream, LossIsDetectedNotRepaired) {
  net::Impairments lossy = fast_link();
  lossy.loss = 0.15;
  net::SimNetwork net(7, lossy);
  net::Socket& tx = net.open({"server", 1});
  net::Socket& rx = net.open({"client", 1});

  FrameSource::Config cfg;
  cfg.total_frames = 200;
  cfg.mean_frame_bytes = 4000;
  StreamSender sender(tx, rx.address(), FrameSource(cfg));
  StreamReceiver receiver(rx);

  SimTime t{};
  while (!sender.finished() || net.next_event()) {
    t += SimTime::from_ms(5);
    sender.step(net.now());
    net.run_until(t);
    receiver.poll(net.now());
  }
  const ReceiverStats& s = receiver.stats();
  EXPECT_GT(s.packets_lost, 0u);
  EXPECT_LT(s.packet_delivery_ratio(), 0.95);
  EXPECT_GT(s.packet_delivery_ratio(), 0.70);
  // Damaged frames were given up, not retransmitted (lightweight handling).
  EXPECT_GT(s.frames_damaged, 0u);
  EXPECT_LT(s.frames_complete, 200u);
  EXPECT_GT(s.frames_complete, 100u);
}

TEST(Stream, JitterMeasuredUnderJitteryLink) {
  net::Impairments jittery = fast_link();
  jittery.jitter = SimTime::from_ms(10);
  net::SimNetwork net(3, jittery);
  net::Socket& tx = net.open({"server", 1});
  net::Socket& rx = net.open({"client", 1});
  FrameSource::Config cfg;
  cfg.total_frames = 100;
  cfg.mean_frame_bytes = 1000;
  StreamSender sender(tx, rx.address(), FrameSource(cfg));
  StreamReceiver receiver(rx);
  SimTime t{};
  while (!sender.finished() || net.next_event()) {
    t += SimTime::from_ms(5);
    sender.step(net.now());
    net.run_until(t);
    receiver.poll(net.now());
  }
  EXPECT_GT(receiver.stats().jitter_ms, 0.5);
  EXPECT_GT(receiver.stats().mean_delay_ms, 1.0);
}

TEST(Stream, PauseStopsEmissionResumeContinues) {
  StreamWorld w;
  FrameSource::Config cfg;
  cfg.total_frames = 100;
  cfg.fps = 25;
  StreamSender sender(w.tx, w.rx.address(), FrameSource(cfg));

  sender.step(w.net.now());
  w.net.run_until(SimTime::from_ms(200));
  sender.step(w.net.now());
  const auto sent_before = sender.stats().frames_sent;
  sender.pause();
  w.net.run_until(SimTime::from_ms(800));
  sender.step(w.net.now());
  EXPECT_EQ(sender.stats().frames_sent, sent_before);  // paused: nothing

  sender.resume(w.net.now());
  w.net.run_until(SimTime::from_ms(1000));
  sender.step(w.net.now());
  EXPECT_GT(sender.stats().frames_sent, sent_before);
}

TEST(Sps, OpenPlayStopLifecycle) {
  net::SimNetwork net(5, fast_link());
  StreamProviderAgent spa(net, "server");
  StreamUserAgent sua(net, {"client", 7000});

  FrameSource::Config cfg;
  cfg.total_frames = 30;
  const std::uint16_t stream = spa.open_stream(FrameSource(cfg),
                                               sua.address());
  EXPECT_EQ(spa.active_streams(), 1u);

  SimTime t{};
  for (int i = 0; i < 400 && !spa.finished(stream); ++i) {
    t += SimTime::from_ms(5);
    spa.step(net.now());
    net.run_until(t);
    sua.poll(net.now());
  }
  net.run_all();
  sua.poll(net.now());
  EXPECT_EQ(sua.stats().frames_complete, 30u);
  EXPECT_TRUE(sua.stats().end_of_stream);

  auto pos = spa.stop(stream);
  ASSERT_TRUE(pos.ok());
  EXPECT_EQ(pos.value(), 30u);
  EXPECT_EQ(spa.active_streams(), 0u);
  EXPECT_FALSE(spa.stop(stream).ok());  // unknown after stop
}

TEST(Sps, StartFrameSeeks) {
  net::SimNetwork net(5, fast_link());
  StreamProviderAgent spa(net, "server");
  StreamUserAgent sua(net, {"client", 7000});
  FrameSource::Config cfg;
  cfg.total_frames = 20;
  std::vector<std::uint32_t> frames;
  sua.set_sink([&](std::uint32_t f, const common::Bytes&, bool) {
    frames.push_back(f);
  });
  spa.open_stream(FrameSource(cfg), sua.address(), /*start_frame=*/15);
  SimTime t{};
  for (int i = 0; i < 200; ++i) {
    t += SimTime::from_ms(5);
    spa.step(net.now());
    net.run_until(t);
    sua.poll(net.now());
  }
  ASSERT_EQ(frames.size(), 5u);
  EXPECT_EQ(frames.front(), 15u);
  EXPECT_EQ(frames.back(), 19u);
}

TEST(Sps, ConcurrentStreamsAreIndependent) {
  net::SimNetwork net(5, fast_link());
  StreamProviderAgent spa(net, "server");
  StreamUserAgent sua1(net, {"client1", 7000});
  StreamUserAgent sua2(net, {"client2", 7000});
  FrameSource::Config cfg;
  cfg.total_frames = 10;
  const auto s1 = spa.open_stream(FrameSource(cfg), sua1.address());
  const auto s2 = spa.open_stream(FrameSource(cfg), sua2.address());
  EXPECT_NE(s1, s2);
  ASSERT_TRUE(spa.pause(s2).ok());

  SimTime t{};
  for (int i = 0; i < 200; ++i) {
    t += SimTime::from_ms(5);
    spa.step(net.now());
    net.run_until(t);
    sua1.poll(net.now());
    sua2.poll(net.now());
  }
  EXPECT_EQ(sua1.stats().frames_complete, 10u);
  EXPECT_EQ(sua2.stats().frames_complete, 0u);  // paused before any emission

  ASSERT_TRUE(spa.resume(s2).ok());
  for (int i = 0; i < 200; ++i) {
    t += SimTime::from_ms(5);
    spa.step(net.now());
    net.run_until(t);
    sua2.poll(net.now());
  }
  EXPECT_EQ(sua2.stats().frames_complete, 10u);
}

TEST(Sps, ErrorsOnUnknownStream) {
  net::SimNetwork net;
  StreamProviderAgent spa(net, "server");
  EXPECT_FALSE(spa.pause(99).ok());
  EXPECT_FALSE(spa.resume(99).ok());
  EXPECT_FALSE(spa.stop(99).ok());
  EXPECT_FALSE(spa.position(99).ok());
  EXPECT_FALSE(spa.stats(99).ok());
}

}  // namespace
}  // namespace mcam::mtp
