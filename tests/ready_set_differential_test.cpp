// Dirty-set vs full-scan differential testing (ready_set.hpp).
//
// The event-driven schedulers owe one thing above all: the ready-set
// candidate collection must equal the legacy full-tree scan, every round, on
// every specification — including the deliberately ill-formed flavors whose
// guards read state no dirty hook can see (the guard-stickiness rule exists
// for exactly those). Three layers of checking:
//
//   * ExecutorConfig::verify_ready_set — the scheduler itself recomputes the
//     reference full scan after every dirty-set collection and throws on the
//     first divergence; the sweep here runs the shared random-spec generator
//     through Sequential/Threaded/Sharded with the flag on.
//   * mode differential — full runs under {full_scan, dirty-set} must agree
//     on the world snapshot and fired count always, and on the exact trace
//     whenever the spec has no delay clauses (the two modes charge different
//     virtual scan costs, so delay maturation may legally reorder rounds;
//     same exemption the threaded backend gets in the backend differential).
//   * hot-path assertions — on a sparse world (N idle, K active) the
//     dirty-set scheduler must examine an order of magnitude fewer guards
//     per firing than the full scan, and steady-state rounds must not grow
//     any scheduler buffer (rounds_with_allocation == 0 on a warmed
//     executor).
//
// Also pinned here: topology changes (new module) and dynamically registered
// transitions invalidate the ready state — a reused executor must not skip
// them — and MetricsObserver carries the hot-path counters.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "estelle/executor.hpp"
#include "estelle/metrics.hpp"
#include "estelle/module.hpp"
#include "estelle/trace.hpp"
#include "random_spec_gen.hpp"

namespace mcam::estelle {
namespace {

using common::SimTime;

int spec_count() {
  if (const char* env = std::getenv("MCAM_SOAK_SPECS"))
    return std::max(1, std::atoi(env));
  return 50;
}

struct Outcome {
  std::vector<std::string> trace;
  std::string world;
  StopReason reason{};
  std::uint64_t fired = 0;
  RunReport report;
};

Outcome run_mode(std::uint64_t seed, ExecutorKind kind, bool full_scan,
                 bool verify) {
  specgen::GeneratedWorld g = specgen::generate(seed);
  ExecutorConfig cfg;
  cfg.kind = kind;
  cfg.processors = 4;
  cfg.threads = 4;
  cfg.full_scan = full_scan;
  cfg.verify_ready_set = verify;
  auto executor = make_executor(*g.spec, cfg);

  TraceRecorder trace;
  Outcome out;
  out.report = executor->run({.observers = {&trace}});
  out.reason = out.report.reason;
  out.fired = out.report.fired;
  out.trace.reserve(trace.events().size());
  for (const TraceEvent& e : trace.events())
    out.trace.push_back(e.module_path + "/" + e.transition);
  out.world = specgen::world_snapshot(*g.spec);
  return out;
}

TEST(ReadySetDifferential, VerifiedAgainstFullScanEveryRound) {
  // verify_ready_set makes every round self-checking: any candidate-set
  // divergence between the dirty-set collector and the reference full scan
  // throws std::logic_error out of run(). Sweeping the generator (ill-formed
  // flavors, sparse flavor, delays, multi-shard) with the flag on is the
  // strongest exactness statement this suite can make.
  const int n = spec_count();
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(n); ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    for (ExecutorKind kind :
         {ExecutorKind::Sequential, ExecutorKind::Threaded,
          ExecutorKind::Sharded, ExecutorKind::FreeRunning}) {
      SCOPED_TRACE(executor_kind_name(kind));
      const Outcome out = run_mode(seed, kind, /*full_scan=*/false,
                                   /*verify=*/true);
      EXPECT_EQ(out.reason, StopReason::Quiescent);
      EXPECT_GT(out.fired, 0u);
    }
  }
}

TEST(ReadySetDifferential, ReadyAndFullScanModesAgree) {
  const int n = spec_count();
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(n); ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const specgen::GeneratedWorld probe = specgen::generate(seed);
    for (ExecutorKind kind :
         {ExecutorKind::Sequential, ExecutorKind::Threaded,
          ExecutorKind::Sharded, ExecutorKind::FreeRunning}) {
      SCOPED_TRACE(executor_kind_name(kind));
      const Outcome full = run_mode(seed, kind, /*full_scan=*/true, false);
      const Outcome ready = run_mode(seed, kind, /*full_scan=*/false, false);
      EXPECT_EQ(ready.world, full.world) << "world diverged across modes";
      EXPECT_EQ(ready.fired, full.fired);
      EXPECT_EQ(ready.reason, full.reason);
      if (!probe.has_delay) {
        // Without delay clauses both modes produce identical rounds, so the
        // trace must match exactly; with delays the differing virtual scan
        // costs legally reschedule maturation (compare as multisets via the
        // world+fired equality above).
        EXPECT_EQ(ready.trace, full.trace) << "trace diverged across modes";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Sparse-activity hot path

/// N idle entities (consumers of never-written channels) plus K ping-pong
/// pairs exchanging one token forever — the bench_hot_path shape, small.
struct SparseWorld {
  Specification spec{"sparse"};
  Module* sys = nullptr;
  std::vector<Module*> pongs;

  explicit SparseWorld(int idle, int pairs) {
    sys = &spec.root().create_child<Module>("sys", Attribute::SystemProcess);
    auto& mute = sys->create_child<Module>("mute", Attribute::Process);
    for (int i = 0; i < idle; ++i) {
      auto& m = sys->create_child<Module>("idle" + std::to_string(i),
                                          Attribute::Process);
      connect(mute.ip("o" + std::to_string(i)), m.ip("in"));
      m.trans("never").when(m.ip("in")).action(
          [](Module&, const Interaction*) {});
    }
    for (int p = 0; p < pairs; ++p) {
      auto& a = sys->create_child<Module>("ping" + std::to_string(p),
                                          Attribute::Process);
      auto& b = sys->create_child<Module>("pong" + std::to_string(p),
                                          Attribute::Process);
      connect(a.ip("out"), b.ip("in"));
      connect(b.ip("out"), a.ip("in"));
      for (Module* m : {&a, &b}) {
        m->trans("hit").when(m->ip("in")).action(
            [m](Module&, const Interaction*) {
              m->ip("out").output(Interaction(1));
            });
      }
      pongs.push_back(&b);
    }
    spec.initialize();
    // Arm each pair: the token enters ping's inbox through the pong link.
    for (Module* b : pongs) b->ip("out").output(Interaction(1));
  }
};

TEST(ReadySetDifferential, SparseWorldExaminesOnlyActiveGuards) {
  constexpr int kIdle = 512;
  constexpr int kPairs = 4;
  constexpr std::uint64_t kRounds = 200;

  const auto guards_per_firing = [](bool full_scan) {
    SparseWorld world(kIdle, kPairs);
    auto executor = make_executor(world.spec, {.full_scan = full_scan});
    const RunReport r =
        executor->run({.stop = {StopCondition::max_steps(kRounds)}});
    EXPECT_EQ(r.reason, StopReason::StepLimit);
    EXPECT_GT(r.fired, 0u);
    return static_cast<double>(r.guards_examined) /
           static_cast<double>(r.fired);
  };

  const double full = guards_per_firing(true);
  const double ready = guards_per_firing(false);
  // K active modules among N idle: the full scan pays for every idle guard
  // every round; the dirty set examines only what moved. The 10x bar is the
  // PR's acceptance line; at 512/4 the real ratio is far larger.
  EXPECT_GE(full / ready, 10.0)
      << "full=" << full << " guards/firing, ready=" << ready;

  // Steady state allocates nothing: a warmed executor's next run must not
  // grow any scheduler buffer.
  SparseWorld world(kIdle, kPairs);
  auto executor = make_executor(world.spec, {});
  const RunReport warm =
      executor->run({.stop = {StopCondition::max_steps(kRounds)}});
  EXPECT_GT(warm.fired, 0u);
  const RunReport steady =
      executor->run({.stop = {StopCondition::max_steps(kRounds)}});
  EXPECT_GT(steady.fired, 0u);
  EXPECT_EQ(steady.rounds_with_allocation, 0u)
      << "steady-state rounds must not allocate";
}

TEST(ReadySetDifferential, TopologyMutationInvalidatesReadyState) {
  for (ExecutorKind kind :
       {ExecutorKind::Sequential, ExecutorKind::Threaded,
        ExecutorKind::Sharded, ExecutorKind::FreeRunning}) {
    SCOPED_TRACE(executor_kind_name(kind));
    Specification spec("mutate");
    auto& sys =
        spec.root().create_child<Module>("sys", Attribute::SystemProcess);
    auto& base = sys.create_child<Module>("base", Attribute::Process);
    int base_fired = 0;
    base.trans("once")
        .from(0)
        .to(1)
        .action([&base_fired](Module&, const Interaction*) { ++base_fired; });
    spec.initialize();

    ExecutorConfig cfg;
    cfg.kind = kind;
    cfg.threads = 2;
    auto executor = make_executor(spec, cfg);
    EXPECT_EQ(executor->run().fired, 1u);
    EXPECT_EQ(base_fired, 1);

    // (a) A module created after a completed run (topology change): the
    // reused executor must reseed and fire its transition.
    int late_fired = 0;
    auto& late = sys.create_child<Module>("late", Attribute::Process);
    late.trans("hello")
        .from(0)
        .to(1)
        .action([&late_fired](Module&, const Interaction*) { ++late_fired; });
    EXPECT_EQ(executor->run().fired, 1u);
    EXPECT_EQ(late_fired, 1);

    // (b) A transition registered on an existing, long-idle module (no
    // topology change — the dirty hook in add_transition must cover it).
    int extra_fired = 0;
    base.trans("extra")
        .from(1)
        .to(2)
        .action([&extra_fired](Module&, const Interaction*) { ++extra_fired; });
    EXPECT_EQ(executor->run().fired, 1u);
    EXPECT_EQ(extra_fired, 1);
  }
}

TEST(ReadySetDifferential, MetricsObserverCarriesHotPathCounters) {
  SparseWorld world(16, 2);
  auto executor = make_executor(world.spec, {});
  MetricsObserver metrics;
  const RunReport r = executor->run(
      {.stop = {StopCondition::max_steps(50)}, .observers = {&metrics}});
  EXPECT_GT(r.guards_examined, 0u);
  EXPECT_GT(r.candidates_considered, 0u);
  EXPECT_EQ(metrics.guards_examined(), r.guards_examined);
  EXPECT_EQ(metrics.candidates_considered(), r.candidates_considered);
  EXPECT_EQ(metrics.rounds_with_allocation(), r.rounds_with_allocation);
  EXPECT_GT(metrics.guards_per_firing(), 0.0);
  EXPECT_NE(metrics.to_string().find("hot path:"), std::string::npos);
}

}  // namespace
}  // namespace mcam::estelle
