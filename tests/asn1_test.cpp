// ASN.1 value model and BER codec tests, including property-style random
// round-trips (the MCAM PDUs lean on every branch exercised here).
#include <gtest/gtest.h>

#include "asn1/ber.hpp"
#include "asn1/parallel.hpp"
#include "asn1/value.hpp"
#include "common/rng.hpp"

namespace mcam::asn1 {
namespace {

using common::Bytes;

TEST(Asn1Value, IntegerRoundTripSmall) {
  for (std::int64_t v : {0LL, 1LL, -1LL, 127LL, 128LL, -128LL, -129LL,
                         255LL, 256LL, 65535LL, -65536LL}) {
    auto decoded = decode(encode(Value::integer(v)));
    ASSERT_TRUE(decoded.ok()) << v;
    EXPECT_EQ(decoded.value().as_int().value(), v) << v;
  }
}

TEST(Asn1Value, IntegerRoundTripExtremes) {
  for (std::int64_t v : {std::numeric_limits<std::int64_t>::max(),
                         std::numeric_limits<std::int64_t>::min()}) {
    auto decoded = decode(encode(Value::integer(v)));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().as_int().value(), v);
  }
}

TEST(Asn1Value, IntegerMinimalEncoding) {
  // BER: INTEGER 127 must be 1 content octet, 128 needs 2 (sign bit).
  EXPECT_EQ(encode(Value::integer(127)).size(), 3u);   // tag + len + 1
  EXPECT_EQ(encode(Value::integer(128)).size(), 4u);   // tag + len + 2
  EXPECT_EQ(encode(Value::integer(-128)).size(), 3u);
}

TEST(Asn1Value, BooleanRoundTrip) {
  EXPECT_TRUE(decode(encode(Value::boolean(true))).value().as_bool().value());
  EXPECT_FALSE(
      decode(encode(Value::boolean(false))).value().as_bool().value());
}

TEST(Asn1Value, StringsRoundTrip) {
  auto v = decode(encode(Value::ia5string("movie-title")));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().as_string().value(), "movie-title");
  EXPECT_TRUE(v.value().is_universal(UniversalTag::Ia5String));

  auto empty = decode(encode(Value::ia5string("")));
  EXPECT_EQ(empty.value().as_string().value(), "");
}

TEST(Asn1Value, OidRoundTrip) {
  const std::vector<std::uint32_t> arcs = {1, 3, 9999, 1};
  auto v = decode(encode(Value::oid(arcs)));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().as_oid().value(), arcs);
}

TEST(Asn1Value, OidLargeArcs) {
  const std::vector<std::uint32_t> arcs = {2, 25, 1000000, 127, 128, 16384};
  auto v = decode(encode(Value::oid(arcs)));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().as_oid().value(), arcs);
}

TEST(Asn1Value, SequenceNesting) {
  Value v = Value::sequence({
      Value::integer(5),
      Value::sequence({Value::ia5string("x"), Value::boolean(true)}),
      Value::octet_string({0xde, 0xad}),
  });
  auto decoded = decode(encode(v));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), v);
  EXPECT_EQ(decoded.value().size(), 3u);
  EXPECT_EQ(decoded.value().child(1).child(0).as_string().value(), "x");
}

TEST(Asn1Value, ContextTags) {
  Value v = Value::sequence({
      Value::context(0, Value::integer(7)),
      Value::context(3, Value::ia5string("opt")),
  });
  auto decoded = decode(encode(v));
  ASSERT_TRUE(decoded.ok());
  const Value* c0 = decoded.value().find_context(0);
  const Value* c3 = decoded.value().find_context(3);
  const Value* c9 = decoded.value().find_context(9);
  ASSERT_NE(c0, nullptr);
  ASSERT_NE(c3, nullptr);
  EXPECT_EQ(c9, nullptr);
  EXPECT_EQ(c0->unwrap_context(0).value().as_int().value(), 7);
  EXPECT_EQ(c3->unwrap_context(3).value().as_string().value(), "opt");
}

TEST(Asn1Value, HighTagNumberForm) {
  // Tag 14001 (used by MCAM PositionInd) needs the multi-octet tag form.
  Value v = Value::application(14001, {Value::integer(1)});
  auto decoded = decode(encode(v));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().tag(), 14001u);
  EXPECT_EQ(decoded.value().tag_class(), TagClass::Application);
}

TEST(Asn1Value, LongLengthForm) {
  Bytes big(100000, 0xab);
  auto decoded = decode(encode(Value::octet_string(big)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().as_octets().value(), big);
}

TEST(Asn1Decode, RejectsTruncated) {
  Bytes full = encode(Value::sequence({Value::integer(1234567)}));
  for (std::size_t cut = 1; cut < full.size(); ++cut) {
    Bytes partial(full.begin(), full.begin() + static_cast<long>(cut));
    EXPECT_FALSE(decode(partial).ok()) << "cut=" << cut;
  }
}

TEST(Asn1Decode, RejectsTrailingGarbage) {
  Bytes buf = encode(Value::integer(1));
  buf.push_back(0x00);
  auto r = decode(buf);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, kTrailingBytes);
}

TEST(Asn1Decode, RejectsIndefiniteLength) {
  Bytes buf = {0x30, 0x80, 0x00, 0x00};  // SEQUENCE, indefinite, EOC
  auto r = decode(buf);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, kBadLength);
}

TEST(Asn1Decode, RejectsDepthBomb) {
  // kMaxDecodeDepth+4 nested SEQUENCEs.
  Value v = Value::integer(1);
  for (int i = 0; i < kMaxDecodeDepth + 4; ++i) v = Value::sequence({v});
  auto r = decode(encode(v));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, kDepthExceeded);
}

TEST(Asn1Decode, PrefixDecodingConcatenatedPdus) {
  Bytes stream;
  for (int i = 0; i < 5; ++i) {
    Bytes one = encode(Value::integer(i * 100));
    stream.insert(stream.end(), one.begin(), one.end());
  }
  std::size_t offset = 0;
  for (int i = 0; i < 5; ++i) {
    auto v = decode_prefix(stream, offset);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value().as_int().value(), i * 100);
  }
  EXPECT_EQ(offset, stream.size());
}

TEST(Asn1Accessors, TypeMismatchesAreErrors) {
  EXPECT_FALSE(Value::ia5string("x").as_int().ok());
  EXPECT_FALSE(Value::integer(1).as_bool().ok());
  EXPECT_FALSE(Value::sequence({}).as_octets().ok());
  EXPECT_FALSE(Value::integer(1).as_oid().ok());
  EXPECT_FALSE(Value::integer(1).unwrap_context(0).ok());
}

// ---- property-style random round-trip ----

Value random_value(common::Rng& rng, int depth) {
  const int choice = depth <= 0 ? static_cast<int>(rng.below(5))
                                : static_cast<int>(rng.below(8));
  switch (choice) {
    case 0:
      return Value::integer(static_cast<std::int64_t>(rng()));
    case 1:
      return Value::boolean(rng.chance(0.5));
    case 2: {
      Bytes b(rng.below(64));
      for (auto& octet : b) octet = static_cast<std::uint8_t>(rng());
      return Value::octet_string(std::move(b));
    }
    case 3: {
      std::string s;
      const std::size_t n = rng.below(32);
      for (std::size_t i = 0; i < n; ++i)
        s.push_back(static_cast<char>('a' + rng.below(26)));
      return Value::ia5string(s);
    }
    case 4:
      return Value::null();
    case 5:
    case 6: {
      std::vector<Value> children;
      const std::size_t n = rng.below(4);
      for (std::size_t i = 0; i < n; ++i)
        children.push_back(random_value(rng, depth - 1));
      return Value::sequence(std::move(children));
    }
    default:
      return Value::context(static_cast<std::uint32_t>(rng.below(64)),
                            random_value(rng, depth - 1));
  }
}

class Asn1RoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(Asn1RoundTripProperty, EncodeDecodeIsIdentity) {
  common::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Value v = random_value(rng, 4);
    Bytes wire = encode(v);
    EXPECT_EQ(wire.size(), encoded_length(v));
    auto decoded = decode(wire);
    ASSERT_TRUE(decoded.ok()) << v.to_string();
    EXPECT_EQ(decoded.value(), v) << v.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Asn1RoundTripProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---- parallel encoder ----

TEST(Asn1Parallel, OutputMatchesSequential) {
  common::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Value> children;
    const std::size_t n = 1 + rng.below(40);
    for (std::size_t i = 0; i < n; ++i)
      children.push_back(random_value(rng, 2));
    Value v = Value::sequence(std::move(children));
    const Bytes expected = encode(v);
    for (int workers : {1, 2, 3, 4, 8}) {
      EXPECT_EQ(encode_parallel(v, workers), expected)
          << "workers=" << workers << " n=" << n;
    }
  }
}

TEST(Asn1Parallel, LargeSequenceLongLengthHeader) {
  // Content > 127 bytes forces the long length form in the merged header.
  std::vector<Value> children;
  for (int i = 0; i < 50; ++i)
    children.push_back(Value::octet_string(Bytes(100, 0x55)));
  Value v = Value::sequence(std::move(children));
  EXPECT_EQ(encode_parallel(v, 4), encode(v));
}

TEST(Asn1Parallel, ModelShowsNoGainForSmallPdus) {
  // The [12] negative result: for typical (small) control PDUs, parallel
  // encoding is *slower* than sequential once dispatch+join are counted.
  ParallelEncodeModel model;
  std::vector<Value> fields;
  for (int i = 0; i < 6; ++i) fields.push_back(Value::integer(i));
  Value pdu = Value::sequence(std::move(fields));
  const auto seq = model.encode_time(pdu, 1);
  for (int workers : {2, 4, 8}) {
    EXPECT_GT(model.encode_time(pdu, workers).ns, seq.ns)
        << "workers=" << workers;
  }
}

TEST(Asn1Parallel, ModelGainsOnlyForHugeValues) {
  // With megabyte-scale content the critical path shrinks below sequential —
  // showing the crossover exists but far above control-PDU sizes.
  ParallelEncodeModel model;
  std::vector<Value> fields;
  for (int i = 0; i < 16; ++i)
    fields.push_back(Value::octet_string(Bytes(200000, 1)));
  Value huge = Value::sequence(std::move(fields));
  EXPECT_LT(model.encode_time(huge, 8).ns, model.encode_time(huge, 1).ns);
}

}  // namespace
}  // namespace mcam::asn1
