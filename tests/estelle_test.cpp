// Estelle runtime tests: the structural rules of §4 of the paper, scheduling
// semantics (parent precedence, process/activity parallelism), transition
// dispatch, delay clauses, dynamic module creation, and scheduler
// equivalence (sequential ≡ simulated-parallel ≡ threaded outcomes).
#include <gtest/gtest.h>

#include <numeric>

#include "asn1/value.hpp"
#include "estelle/module.hpp"
#include "estelle/executor.hpp"

namespace mcam::estelle {
namespace {

using common::SimTime;

/// A module that counts spontaneous firings up to a budget.
class Counter : public Module {
 public:
  Counter(std::string name, Attribute attr, int budget,
          SimTime cost = SimTime::from_us(10))
      : Module(std::move(name), attr) {
    trans("count")
        .cost(cost)
        .provided([this, budget](Module&, const Interaction*) {
          return count < budget;
        })
        .action([this](Module&, const Interaction*) { ++count; });
  }
  int count = 0;
};

// ---------------------------------------------------------------------------
// Structural rules

TEST(EstelleRules, R1InactiveModulesCannotHaveTransitions) {
  Module inactive("root", Attribute::Inactive);
  EXPECT_THROW(
      inactive.trans("t").action([](Module&, const Interaction*) {}),
      EstelleRuleError);
}

TEST(EstelleRules, R2SystemModuleCannotNestInAttributed) {
  Specification spec("s");
  auto& sys = spec.root().create_child<Module>("sys", Attribute::SystemProcess);
  EXPECT_THROW(sys.create_child<Module>("inner", Attribute::SystemProcess),
               EstelleRuleError);
  auto& proc = sys.create_child<Module>("p", Attribute::Process);
  EXPECT_THROW(proc.create_child<Module>("inner", Attribute::SystemActivity),
               EstelleRuleError);
}

TEST(EstelleRules, R3ProcessNeedsSystemAncestor) {
  Specification spec("s");
  // Directly under the inactive root: no system module on the path.
  EXPECT_THROW(spec.root().create_child<Module>("p", Attribute::Process),
               EstelleRuleError);
  EXPECT_THROW(spec.root().create_child<Module>("a", Attribute::Activity),
               EstelleRuleError);
}

TEST(EstelleRules, R4ProcessMayContainProcessAndActivity) {
  Specification spec("s");
  auto& sys = spec.root().create_child<Module>("sys", Attribute::SystemProcess);
  auto& p = sys.create_child<Module>("p", Attribute::Process);
  EXPECT_NO_THROW(p.create_child<Module>("p2", Attribute::Process));
  EXPECT_NO_THROW(p.create_child<Module>("a", Attribute::Activity));
}

TEST(EstelleRules, R5ActivityContainsOnlyActivities) {
  Specification spec("s");
  auto& sysact =
      spec.root().create_child<Module>("sa", Attribute::SystemActivity);
  auto& act = sysact.create_child<Module>("a", Attribute::Activity);
  EXPECT_THROW(act.create_child<Module>("p", Attribute::Process),
               EstelleRuleError);
  EXPECT_THROW(sysact.create_child<Module>("p", Attribute::Process),
               EstelleRuleError);
  EXPECT_NO_THROW(act.create_child<Module>("a2", Attribute::Activity));
}

TEST(EstelleRules, R6SystemPopulationFrozenAtInit) {
  Specification spec("s");
  spec.root().create_child<Module>("sys1", Attribute::SystemProcess);
  spec.initialize();
  EXPECT_THROW(
      spec.root().create_child<Module>("sys2", Attribute::SystemProcess),
      EstelleRuleError);
  // Non-system dynamic creation stays legal.
  auto* sys1 = spec.system_modules().front();
  EXPECT_NO_THROW(sys1->create_child<Module>("conn", Attribute::Process));
}

TEST(EstelleRules, R7OnlyParentReleasesChild) {
  Specification spec("s");
  auto& sys = spec.root().create_child<Module>("sys", Attribute::SystemProcess);
  auto& p1 = sys.create_child<Module>("p1", Attribute::Process);
  auto& p2 = sys.create_child<Module>("p2", Attribute::Process);
  EXPECT_THROW(p1.release_child(p2), EstelleRuleError);  // not its child
  EXPECT_NO_THROW(sys.release_child(p2));
  EXPECT_EQ(sys.children().size(), 1u);
  EXPECT_EQ(sys.children()[0].get(), &p1);
}

TEST(EstelleRules, InactiveUnderAttributedRejected) {
  Specification spec("s");
  auto& sys = spec.root().create_child<Module>("sys", Attribute::SystemProcess);
  EXPECT_THROW(sys.create_child<Module>("i", Attribute::Inactive),
               EstelleRuleError);
}

TEST(EstelleRules, TransitionValidation) {
  Specification spec("s");
  auto& sys = spec.root().create_child<Module>("sys", Attribute::SystemProcess);
  auto& a = sys.create_child<Module>("a", Attribute::Process);
  auto& b = sys.create_child<Module>("b", Attribute::Process);
  auto& ip_b = b.ip("x");
  // IP of another module:
  EXPECT_THROW(a.trans("t").when(ip_b).action([](Module&, const Interaction*) {}),
               EstelleRuleError);
  // when + delay combination:
  auto& ip_a = a.ip("y");
  EXPECT_THROW(a.trans("t")
                   .when(ip_a)
                   .delay(SimTime::from_us(5))
                   .action([](Module&, const Interaction*) {}),
               EstelleRuleError);
}

// ---------------------------------------------------------------------------
// Channels

TEST(Channels, ConnectOutputDeliver) {
  Specification spec("s");
  auto& sys = spec.root().create_child<Module>("sys", Attribute::SystemProcess);
  auto& a = sys.create_child<Module>("a", Attribute::Process);
  auto& b = sys.create_child<Module>("b", Attribute::Process);
  connect(a.ip("out"), b.ip("in"));

  a.ip("out").output(Interaction(7, common::to_bytes("hi")));
  ASSERT_TRUE(b.ip("in").has_input());
  EXPECT_EQ(b.ip("in").head()->kind, 7);
  Interaction msg = b.ip("in").pop();
  EXPECT_EQ(msg.payload, common::to_bytes("hi"));
  EXPECT_FALSE(b.ip("in").has_input());

  // Full duplex: b can answer on the same channel.
  b.ip("in").output(Interaction(8));
  ASSERT_TRUE(a.ip("out").has_input());
  EXPECT_EQ(a.ip("out").pop().kind, 8);
}

TEST(Channels, DoubleConnectRejected) {
  Specification spec("s");
  auto& sys = spec.root().create_child<Module>("sys", Attribute::SystemProcess);
  auto& a = sys.create_child<Module>("a", Attribute::Process);
  auto& b = sys.create_child<Module>("b", Attribute::Process);
  auto& c = sys.create_child<Module>("c", Attribute::Process);
  connect(a.ip("x"), b.ip("x"));
  EXPECT_THROW(connect(a.ip("x"), c.ip("x")), std::logic_error);
  EXPECT_THROW(a.ip("y").output(Interaction(1)), std::logic_error);
}

TEST(Channels, ReleaseChildDisconnectsSubtree) {
  Specification spec("s");
  auto& sys = spec.root().create_child<Module>("sys", Attribute::SystemProcess);
  auto& a = sys.create_child<Module>("a", Attribute::Process);
  auto& b = sys.create_child<Module>("b", Attribute::Process);
  connect(a.ip("x"), b.ip("x"));
  sys.release_child(b);
  EXPECT_FALSE(a.ip("x").connected());
  EXPECT_THROW(a.ip("x").output(Interaction(1)), std::logic_error);
}

TEST(Channels, LossInjectionDropsDeterministically) {
  Specification spec("s");
  auto& sys = spec.root().create_child<Module>("sys", Attribute::SystemProcess);
  auto& a = sys.create_child<Module>("a", Attribute::Process);
  auto& b = sys.create_child<Module>("b", Attribute::Process);
  connect(a.ip("x"), b.ip("x"));
  common::Rng rng(5);
  a.ip("x").set_loss(0.5, &rng);
  for (int i = 0; i < 1000; ++i) a.ip("x").output(Interaction(i));
  EXPECT_EQ(a.ip("x").sent(), 1000u);
  const auto dropped = a.ip("x").dropped();
  EXPECT_GT(dropped, 400u);
  EXPECT_LT(dropped, 600u);
  EXPECT_EQ(b.ip("x").queue_length(), 1000u - dropped);

  // Reusing the IP for an independent measurement run: clear() empties the
  // queue but keeps history; reset_stats() zeroes the counters so the next
  // run measures from scratch.
  b.ip("x").clear();
  a.ip("x").clear();
  EXPECT_EQ(a.ip("x").sent(), 1000u);
  a.ip("x").reset_stats();
  EXPECT_EQ(a.ip("x").sent(), 0u);
  EXPECT_EQ(a.ip("x").dropped(), 0u);
  for (int i = 0; i < 100; ++i) a.ip("x").output(Interaction(i));
  EXPECT_EQ(a.ip("x").sent(), 100u);
  EXPECT_EQ(a.ip("x").dropped() + b.ip("x").queue_length(), 100u);
}

// ---------------------------------------------------------------------------
// Scheduling semantics

TEST(Scheduling, ParentPrecedenceBlocksChildren) {
  Specification spec("s");
  auto& sys = spec.root().create_child<Counter>(
      "sys", Attribute::SystemProcess, 3);
  auto& child = sys.create_child<Counter>("child", Attribute::Process, 100);
  spec.initialize();

  // While the parent has work (3 firings), children must not run; afterwards
  // the child proceeds.
  // parent exhausts after 3 rounds; 4-round budget for this run
  make_executor(spec)->run({.stop = {StopCondition::max_steps(4)}});
  EXPECT_EQ(sys.count, 3);
  EXPECT_LE(child.count, 1);  // at most the round after the parent finished
}

TEST(Scheduling, ProcessChildrenFireInParallelEachRound) {
  Specification spec("s");
  auto& sys =
      spec.root().create_child<Module>("sys", Attribute::SystemProcess);
  std::vector<Counter*> children;
  for (int i = 0; i < 4; ++i)
    children.push_back(&sys.create_child<Counter>(
        "c" + std::to_string(i), Attribute::Process, 5));
  spec.initialize();

  const RunReport report = make_executor(spec)->run();
  const SchedulerStats& stats = report.stats;
  for (Counter* c : children) EXPECT_EQ(c->count, 5);
  // All 4 children fire in every round ⇒ exactly 5 rounds, 20 firings.
  EXPECT_EQ(stats.fired, 20u);
  EXPECT_EQ(stats.rounds, 5u);
}

TEST(Scheduling, ActivityChildrenAreMutuallyExclusive) {
  Specification spec("s");
  auto& sys =
      spec.root().create_child<Module>("sa", Attribute::SystemActivity);
  auto& a1 = sys.create_child<Counter>("a1", Attribute::Activity, 5);
  auto& a2 = sys.create_child<Counter>("a2", Attribute::Activity, 5);
  spec.initialize();

  const RunReport report = make_executor(spec)->run();
  const SchedulerStats& stats = report.stats;
  // One firing per round in the whole subtree ⇒ 10 rounds.
  EXPECT_EQ(a1.count + a2.count, 10);
  EXPECT_EQ(stats.rounds, 10u);
}

TEST(Scheduling, SystemModulesRunIndependently) {
  Specification spec("s");
  auto& s1 = spec.root().create_child<Counter>("s1", Attribute::SystemProcess, 3);
  auto& s2 = spec.root().create_child<Counter>("s2", Attribute::SystemProcess, 7);
  spec.initialize();
  make_executor(spec)->run();
  EXPECT_EQ(s1.count, 3);
  EXPECT_EQ(s2.count, 7);
}

TEST(Scheduling, PrioritySelectsAmongFireable) {
  Specification spec("s");
  auto& sys = spec.root().create_child<Module>("sys", Attribute::SystemProcess);
  class Prio : public Module {
   public:
    explicit Prio(std::string name) : Module(std::move(name), Attribute::Process) {
      trans("low").priority(5).provided([this](Module&, const Interaction*) {
        return fired.empty();
      }).action([this](Module&, const Interaction*) { fired.push_back("low"); });
      trans("high").priority(1).provided([this](Module&, const Interaction*) {
        return fired.empty();
      }).action([this](Module&, const Interaction*) { fired.push_back("high"); });
    }
    std::vector<std::string> fired;
  };
  auto& p = sys.create_child<Prio>("p");
  spec.initialize();
  make_executor(spec)->run();
  ASSERT_EQ(p.fired.size(), 1u);
  EXPECT_EQ(p.fired[0], "high");
}

TEST(Scheduling, WhenClauseConsumesHeadOfQueue) {
  Specification spec("s");
  auto& sys = spec.root().create_child<Module>("sys", Attribute::SystemProcess);
  class Receiver : public Module {
   public:
    explicit Receiver(std::string name)
        : Module(std::move(name), Attribute::Process) {
      auto& in = ip("in");
      trans("on7").when(in, 7).action(
          [this](Module&, const Interaction* m) { got.push_back(m->kind); });
      trans("other").when(in).priority(10).action(
          [this](Module&, const Interaction* m) { got.push_back(-m->kind); });
    }
    std::vector<int> got;
  };
  auto& recv = sys.create_child<Receiver>("r");
  auto& sender = sys.create_child<Module>("s", Attribute::Process);
  connect(sender.ip("out"), recv.ip("in"));
  spec.initialize();

  sender.ip("out").output(Interaction(7));
  sender.ip("out").output(Interaction(9));
  sender.ip("out").output(Interaction(7));
  make_executor(spec)->run();
  EXPECT_EQ(recv.got, (std::vector<int>{7, -9, 7}));
}

TEST(Scheduling, DelayTransitionWaitsVirtualTime) {
  Specification spec("s");
  class Timer : public Module {
   public:
    explicit Timer(std::string name)
        : Module(std::move(name), Attribute::SystemProcess) {
      trans("tick")
          .delay(SimTime::from_ms(10))
          .to(0)
          .provided([this](Module&, const Interaction*) { return ticks < 3; })
          .action([this](Module&, const Interaction*) { ++ticks; });
    }
    int ticks = 0;
  };
  auto& timer = spec.root().create_child<Timer>("timer");
  spec.initialize();
  const RunReport report = make_executor(spec)->run();
  const SchedulerStats& stats = report.stats;
  EXPECT_EQ(timer.ticks, 3);
  // Three ticks, 10ms apart ⇒ at least 30ms of virtual time.
  EXPECT_GE(stats.time, SimTime::from_ms(30));
}

TEST(Scheduling, DynamicChildCreationOnConnect) {
  // The paper's connection pattern: a protocol entity receives a CONNECT
  // request and creates a child module to handle the connection (§4).
  Specification spec("s");
  class Listener : public Module {
   public:
    explicit Listener(std::string name)
        : Module(std::move(name), Attribute::SystemProcess) {
      auto& in = ip("in");
      trans("connect").when(in, 1).action(
          [this](Module& m, const Interaction*) {
            m.create_child<Counter>(
                "conn" + std::to_string(m.children().size()),
                Attribute::Process, 2);
          });
    }
  };
  auto& listener = spec.root().create_child<Listener>("listener");
  auto& driver =
      spec.root().create_child<Module>("driver", Attribute::SystemProcess);
  connect(driver.ip("out"), listener.ip("in"));
  spec.initialize();

  driver.ip("out").output(Interaction(1));
  driver.ip("out").output(Interaction(1));
  make_executor(spec)->run();
  EXPECT_EQ(listener.children().size(), 2u);
  EXPECT_EQ(listener.subtree_size(), 3u);
}

// ---------------------------------------------------------------------------
// Dispatch strategies

TEST(Dispatch, LinearAndTableSelectSameTransition) {
  for (auto kind : {DispatchKind::LinearScan, DispatchKind::StateTable}) {
    Specification spec("s");
    auto& sys = spec.root().create_child<Module>("sys", Attribute::SystemProcess);
    class Multi : public Module {
     public:
      explicit Multi(std::string name)
          : Module(std::move(name), Attribute::Process) {
        for (int s = 0; s < 8; ++s) {
          trans("t" + std::to_string(s))
              .from(s)
              .to((s + 1) % 8)
              .provided([this](Module&, const Interaction*) {
                return fired < 16;
              })
              .action([this](Module& m, const Interaction*) {
                ++fired;
                visits.push_back(m.state());
              });
        }
      }
      int fired = 0;
      std::vector<int> visits;
    };
    auto& m = sys.create_child<Multi>("m");
    m.set_dispatch(kind);
    spec.initialize();
    make_executor(spec)->run();
    EXPECT_EQ(m.fired, 16);
    // Walks 0,1,2,...,7,0,1,... in order regardless of dispatch strategy.
    for (std::size_t i = 0; i < m.visits.size(); ++i)
      EXPECT_EQ(m.visits[i], static_cast<int>(i % 8)) << i;
  }
}

TEST(Dispatch, TableExaminesFewerGuards) {
  Specification spec("s");
  auto& sys = spec.root().create_child<Module>("sys", Attribute::SystemProcess);
  auto& m = sys.create_child<Module>("m", Attribute::Process);
  // 16 transitions spread over 16 states; module sits in state 15.
  for (int s = 0; s < 16; ++s)
    m.trans("t" + std::to_string(s))
        .from(s)
        .action([](Module&, const Interaction*) {});
  m.set_state(15);

  m.set_dispatch(DispatchKind::LinearScan);
  ASSERT_NE(m.select_fireable(SimTime{}), nullptr);
  const int linear_effort = m.last_scan_effort();

  m.set_dispatch(DispatchKind::StateTable);
  ASSERT_NE(m.select_fireable(SimTime{}), nullptr);
  const int table_effort = m.last_scan_effort();

  EXPECT_EQ(linear_effort, 16);
  EXPECT_EQ(table_effort, 1);
}

// ---------------------------------------------------------------------------
// Scheduler equivalence (the parallelization is semantics-preserving)

struct PingPongWorld {
  Specification spec{"pp"};
  Module* sys = nullptr;
  std::vector<int>* log = nullptr;

  class Ping : public Module {
   public:
    Ping(std::string name, std::vector<int>& log, int budget)
        : Module(std::move(name), Attribute::Process) {
      auto& out = ip("out");
      trans("serve")
          .provided([this, budget](Module&, const Interaction*) {
            return served < budget;
          })
          .action([this, &log](Module&, const Interaction*) {
            ++served;
            log.push_back(served);
            ip("out").output(Interaction(1, asn1::Value::integer(served)));
          });
    }
    int served = 0;
  };
  class Pong : public Module {
   public:
    Pong(std::string name, std::vector<int>& log)
        : Module(std::move(name), Attribute::Process) {
      auto& in = ip("in");
      trans("echo").when(in, 1).action(
          [this, &log](Module&, const Interaction* m) {
            total += m->value.as_int().value_or(0);
            log.push_back(-static_cast<int>(total));
          });
    }
    std::int64_t total = 0;
  };
};

template <typename RunFn>
std::pair<std::vector<int>, std::int64_t> run_pingpong(RunFn&& run) {
  PingPongWorld world;
  auto log = std::make_unique<std::vector<int>>();
  auto& sys = world.spec.root().create_child<Module>(
      "sys", Attribute::SystemProcess);
  auto& ping = sys.create_child<PingPongWorld::Ping>("ping", *log, 10);
  auto& pong = sys.create_child<PingPongWorld::Pong>("pong", *log);
  connect(ping.ip("out"), pong.ip("in"));
  world.spec.initialize();
  run(world.spec);
  return {*log, pong.total};
}

TEST(SchedulerEquivalence, SequentialVsParallelSimVsThreaded) {
  auto seq = run_pingpong(
      [](Specification& s) { make_executor(s)->run(); });
  auto par = run_pingpong([](Specification& s) {
    make_executor(s, {.kind = ExecutorKind::ParallelSim, .processors = 4})
        ->run();
  });
  auto thr = run_pingpong([](Specification& s) {
    make_executor(s, {.kind = ExecutorKind::Threaded, .threads = 4})->run();
  });
  EXPECT_EQ(seq.second, 55);  // 1+2+...+10
  EXPECT_EQ(seq, par);
  EXPECT_EQ(seq, thr);
}

// ---------------------------------------------------------------------------
// Parallel speedup shape (the §5.1 effect in miniature)

TEST(ParallelSpeedup, MoreProcessorsNeverSlower) {
  const auto run_world = [](int processors) {
    Specification spec("w");
    auto& sys =
        spec.root().create_child<Module>("sys", Attribute::SystemProcess);
    for (int i = 0; i < 8; ++i)
      sys.create_child<Counter>("c" + std::to_string(i), Attribute::Process,
                                50, SimTime::from_us(200));
    spec.initialize();
    return make_executor(spec, {.kind = ExecutorKind::ParallelSim,
                                .processors = processors,
                                .mapping = Mapping::GroupedUnits})
        ->run()
        .time;
  };
  const auto t1 = run_world(1);
  const auto t2 = run_world(2);
  const auto t4 = run_world(4);
  EXPECT_GT(t1.ns, t2.ns);
  EXPECT_GT(t2.ns, t4.ns);
  const double speedup4 = static_cast<double>(t1.ns) / static_cast<double>(t4.ns);
  EXPECT_GT(speedup4, 2.0);
  EXPECT_LE(speedup4, 4.5);
}

TEST(Mapping, NamesAreStable) {
  EXPECT_STREQ(mapping_name(Mapping::ThreadPerModule), "thread-per-module");
  EXPECT_STREQ(mapping_name(Mapping::GroupedUnits), "grouped-units");
  EXPECT_STREQ(mapping_name(Mapping::ConnectionPerProcessor),
               "connection-per-processor");
  EXPECT_STREQ(mapping_name(Mapping::LayerPerProcessor),
               "layer-per-processor");
}

}  // namespace
}  // namespace mcam::estelle
