// Movie directory tests: entry schema, generic attributes, filter algebra
// (with a property check), DSA operations and chained distributed search.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "directory/directory.hpp"

namespace mcam::directory {
namespace {

MovieEntry sample(const std::string& title, Format fmt = Format::Mjpeg,
                  const std::string& rights = "public") {
  MovieEntry e;
  e.title = title;
  e.format = fmt;
  e.width = 320;
  e.height = 240;
  e.fps = 25.0;
  e.duration_frames = 1500;
  e.location_host = "ksr1";
  e.location_path = "/movies/" + title;
  e.rights = rights;
  e.size_bytes = 12'000'000;
  return e;
}

TEST(MovieEntry, AttributeRoundTrip) {
  MovieEntry e = sample("casablanca");
  EXPECT_EQ(*e.attribute("title"), "casablanca");
  EXPECT_EQ(*e.attribute("format"), "mjpeg");
  EXPECT_EQ(*e.attribute("width"), "320");
  EXPECT_EQ(*e.attribute("duration"), "1500");
  EXPECT_FALSE(e.attribute("nonsense").has_value());

  ASSERT_TRUE(e.set_attribute("format", "mpeg1").ok());
  EXPECT_EQ(e.format, Format::Mpeg1);
  ASSERT_TRUE(e.set_attribute("width", "640").ok());
  EXPECT_EQ(e.width, 640);
  EXPECT_FALSE(e.set_attribute("format", "divx").ok());
  EXPECT_FALSE(e.set_attribute("width", "not-a-number").ok());
  EXPECT_FALSE(e.set_attribute("nonsense", "x").ok());
}

TEST(MovieEntry, AttributesListsAllTen) {
  const auto attrs = sample("x").attributes();
  EXPECT_EQ(attrs.size(), 10u);
  EXPECT_EQ(attrs.front().first, "title");
}

TEST(Formats, NamesRoundTrip) {
  for (Format f : {Format::RawRgb, Format::Colormap, Format::Mjpeg,
                   Format::Mpeg1}) {
    EXPECT_EQ(format_from(format_name(f)), f);
  }
  EXPECT_FALSE(format_from("vhs").has_value());
}

TEST(Filter, BasicOperators) {
  const MovieEntry e = sample("the third man", Format::Mjpeg, "alice");
  EXPECT_TRUE(Filter::all().matches(e));
  EXPECT_TRUE(Filter::present("title").matches(e));
  EXPECT_FALSE(Filter::present("bogus").matches(e));
  EXPECT_TRUE(Filter::equal("format", "mjpeg").matches(e));
  EXPECT_FALSE(Filter::equal("format", "mpeg1").matches(e));
  EXPECT_TRUE(Filter::substring("title", "third").matches(e));
  EXPECT_FALSE(Filter::substring("title", "fourth").matches(e));
  EXPECT_TRUE(Filter::and_({Filter::equal("rights", "alice"),
                            Filter::substring("title", "man")})
                  .matches(e));
  EXPECT_TRUE(Filter::or_({Filter::equal("format", "mpeg1"),
                           Filter::equal("format", "mjpeg")})
                  .matches(e));
  EXPECT_FALSE(Filter::not_(Filter::all()).matches(e));
}

TEST(Filter, DeMorganProperty) {
  // !(A && B) == !A || !B over random entries.
  common::Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    MovieEntry e = sample("m" + std::to_string(rng.below(10)),
                          static_cast<Format>(rng.below(4)),
                          rng.chance(0.5) ? "public" : "bob");
    e.width = static_cast<int>(160 + rng.below(4) * 160);
    const Filter a = Filter::equal("rights", "public");
    const Filter b = Filter::substring("title", "m1");
    const bool lhs = Filter::not_(Filter::and_({a, b})).matches(e);
    const bool rhs =
        Filter::or_({Filter::not_(a), Filter::not_(b)}).matches(e);
    ASSERT_EQ(lhs, rhs);
  }
}

TEST(Filter, ToStringIsLdapLike) {
  const Filter f = Filter::and_(
      {Filter::equal("format", "mjpeg"), Filter::not_(Filter::present("x"))});
  EXPECT_EQ(f.to_string(), "(&(format=mjpeg)(!(x=*)))");
}

TEST(Dsa, AddReadModifyRemove) {
  Dsa dsa("ksr1");
  auto id = dsa.add(sample("casablanca"));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(dsa.size(), 1u);

  auto read = dsa.read(id.value());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().title, "casablanca");
  EXPECT_EQ(read.value().id, id.value());

  ASSERT_TRUE(dsa.modify(id.value(), "fps", "30").ok());
  EXPECT_DOUBLE_EQ(dsa.read(id.value()).value().fps, 30.0);
  EXPECT_FALSE(dsa.modify(id.value(), "bogus", "1").ok());
  EXPECT_FALSE(dsa.modify(9999, "fps", "30").ok());

  ASSERT_TRUE(dsa.remove(id.value()).ok());
  EXPECT_FALSE(dsa.read(id.value()).ok());
  EXPECT_FALSE(dsa.remove(id.value()).ok());
}

TEST(Dsa, DuplicateTitlesRejected) {
  Dsa dsa("ksr1");
  ASSERT_TRUE(dsa.add(sample("unique")).ok());
  auto dup = dsa.add(sample("unique"));
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.error().code, kDuplicateTitle);
}

TEST(Dsa, SearchWithFilters) {
  Dsa dsa("ksr1");
  (void)dsa.add(sample("news-1994-06", Format::Mjpeg));
  (void)dsa.add(sample("news-1994-07", Format::Mjpeg));
  (void)dsa.add(sample("lecture-db", Format::Mpeg1, "alice"));

  EXPECT_EQ(dsa.search(Filter::all()).size(), 3u);
  EXPECT_EQ(dsa.search(Filter::substring("title", "news")).size(), 2u);
  EXPECT_EQ(dsa.search(Filter::equal("format", "mpeg1")).size(), 1u);
  EXPECT_EQ(dsa.search(Filter::and_({Filter::substring("title", "news"),
                                     Filter::equal("format", "mpeg1")}))
                .size(),
            0u);
}

TEST(Dsa, ChainedSearchAcrossPeers) {
  Dsa a("hostA"), b("hostB"), c("hostC");
  a.add_peer(b);
  b.add_peer(c);
  b.add_peer(a);  // cycle must not loop forever
  c.add_peer(a);
  (void)a.add(sample("only-on-a"));
  (void)b.add(sample("only-on-b"));
  (void)c.add(sample("only-on-c"));

  auto everywhere = a.search_chained(Filter::substring("title", "only-on"));
  EXPECT_EQ(everywhere.size(), 3u);

  // Hop limit 0: local only.
  EXPECT_EQ(a.search_chained(Filter::all(), 0).size(), 1u);
  // Hop limit 1: a + direct peer b.
  EXPECT_EQ(a.search_chained(Filter::all(), 1).size(), 2u);
}

TEST(Dua, LookupFallsBackToChaining) {
  Dsa home("client-domain"), remote("server-domain");
  home.add_peer(remote);
  (void)remote.add(sample("remote-movie"));
  Dua dua(home);

  auto found = dua.lookup("remote-movie");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value().title, "remote-movie");
  EXPECT_FALSE(dua.lookup("nowhere").ok());

  EXPECT_EQ(dua.search(Filter::all()).size(), 1u);
  EXPECT_EQ(dua.search(Filter::all(), /*chained=*/false).size(), 0u);
}

}  // namespace
}  // namespace mcam::directory
