// SegmentPool / BufferChain: the pooled scatter-gather transmit queue the
// socket transport drains with one sendmsg per flush. These tests pin the
// byte-exactness of arbitrary append/consume interleavings against a flat
// reference buffer, the refcounted sharing of append_block, and the pool
// economics (steady-state reuse, bounded free list) the zero-allocation
// bench gate relies on.
#include "estelle/transport/buffer_chain.hpp"

#include <gtest/gtest.h>
#include <random>
#include <sys/uio.h>
#include <vector>

namespace mcam::estelle {
namespace {

using common::ByteSpan;
using common::Bytes;

Bytes pattern(std::size_t n, std::uint8_t seed) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i)
    b[i] = static_cast<std::uint8_t>(seed + i * 7);
  return b;
}

/// Every queued byte, gathered through the same iovec view the socket uses.
Bytes gather(const BufferChain& c) {
  std::vector<iovec> iov(c.segments() + 1);
  const std::size_t n = c.fill_iov(iov.data(), iov.size());
  Bytes out;
  out.reserve(c.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto* p = static_cast<const std::uint8_t*>(iov[i].iov_base);
    out.insert(out.end(), p, p + iov[i].iov_len);
  }
  return out;
}

TEST(BufferChain, AppendAndGatherCrossSegmentBoundaries) {
  SegmentPool pool;
  BufferChain c(&pool);
  Bytes ref;
  // Sizes straddling every interesting boundary: empty, one byte, exactly
  // one segment, one segment minus/plus one, several segments.
  const std::size_t sizes[] = {0,
                               1,
                               SegmentPool::kSegmentBytes - 1,
                               1,
                               SegmentPool::kSegmentBytes,
                               SegmentPool::kSegmentBytes + 1,
                               3 * SegmentPool::kSegmentBytes + 17};
  std::uint8_t seed = 1;
  for (const std::size_t n : sizes) {
    const Bytes b = pattern(n, seed++);
    c.append(ByteSpan{b});
    ref.insert(ref.end(), b.begin(), b.end());
  }
  EXPECT_EQ(c.size(), ref.size());
  EXPECT_EQ(gather(c), ref);
}

TEST(BufferChain, ConsumeDropsExactPrefixes) {
  SegmentPool pool;
  BufferChain c(&pool);
  Bytes ref = pattern(5 * SegmentPool::kSegmentBytes + 123, 9);
  c.append(ByteSpan{ref});
  // Consume at sub-byte granularity around every segment boundary.
  const std::size_t cuts[] = {1,
                              SegmentPool::kSegmentBytes - 2,
                              1,
                              1,
                              SegmentPool::kSegmentBytes,
                              2 * SegmentPool::kSegmentBytes + 5};
  std::size_t dropped = 0;
  for (const std::size_t cut : cuts) {
    c.consume(cut);
    dropped += cut;
    EXPECT_EQ(c.size(), ref.size() - dropped);
    EXPECT_EQ(gather(c), Bytes(ref.begin() + static_cast<std::ptrdiff_t>(
                                                 dropped),
                               ref.end()));
  }
  c.consume(c.size());
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.segments(), 0u);
}

TEST(BufferChain, DrainedTailSegmentKeepsFilling) {
  // Fill a little, drain it all, fill again: the drained tail segment goes
  // back through the pool's free list and the next append reuses it — this
  // is what makes a warmed send/flush cycle allocation-free.
  SegmentPool pool;
  BufferChain c(&pool);
  const Bytes b = pattern(100, 3);
  c.append(ByteSpan{b});
  c.consume(100);
  EXPECT_TRUE(c.empty());
  const std::uint64_t spills_before = pool.spills();
  for (int i = 0; i < 50; ++i) {
    c.append(ByteSpan{b});
    EXPECT_EQ(gather(c), b);
    c.consume(100);
  }
  EXPECT_EQ(pool.spills(), spills_before);
}

TEST(BufferChain, SteadyStateReusesPooledSegments) {
  SegmentPool pool;
  BufferChain c(&pool);
  const Bytes b = pattern(2 * SegmentPool::kSegmentBytes + 50, 11);
  c.append(ByteSpan{b});  // warm the pool's working set
  c.consume(c.size());
  const std::uint64_t spills_after_warmup = pool.spills();
  for (int i = 0; i < 100; ++i) {
    c.append(ByteSpan{b});
    c.consume(c.size());
  }
  EXPECT_EQ(pool.spills(), spills_after_warmup);
  EXPECT_GT(pool.pool_hits(), 0u);
}

TEST(BufferChain, AppendBlockSharesWithoutCopying) {
  SegmentPool pool;
  BufferChain src(&pool);
  const Bytes b = pattern(SegmentPool::kSegmentBytes + 500, 21);
  src.append(ByteSpan{b});

  BufferChain dst(&pool);
  dst.append_block(src);
  EXPECT_EQ(dst.size(), src.size());
  // The views alias the same segments — no new segment was acquired.
  {
    std::vector<iovec> a(src.segments()), d(dst.segments());
    ASSERT_EQ(src.fill_iov(a.data(), a.size()), dst.fill_iov(d.data(),
                                                             d.size()));
    EXPECT_EQ(a[0].iov_base, d[0].iov_base);
  }
  // Dropping the source must not invalidate the sharer's bytes.
  src.clear();
  EXPECT_EQ(gather(dst), b);
  dst.consume(dst.size());
  EXPECT_TRUE(dst.empty());
}

TEST(BufferChain, FreeListIsSpillBounded) {
  SegmentPool pool(/*max_free=*/2);
  {
    BufferChain c(&pool);
    c.append(ByteSpan{pattern(10 * SegmentPool::kSegmentBytes, 5)});
    c.clear();
  }
  EXPECT_LE(pool.free_count(), 2u);
}

TEST(BufferChain, FillIovHonorsTheCap) {
  SegmentPool pool;
  BufferChain src(&pool);
  src.append(ByteSpan{pattern(100, 1)});
  BufferChain c(&pool);
  for (int i = 0; i < 10; ++i) c.append_block(src);  // 10 distinct views
  iovec iov[4];
  EXPECT_EQ(c.fill_iov(iov, 4), 4u);
}

TEST(BufferChain, MoveTransfersOwnership) {
  SegmentPool pool;
  BufferChain a(&pool);
  const Bytes b = pattern(1000, 7);
  a.append(ByteSpan{b});
  BufferChain c(std::move(a));
  EXPECT_EQ(gather(c), b);
  BufferChain d(&pool);
  d = std::move(c);
  EXPECT_EQ(gather(d), b);
}

TEST(BufferChain, RandomizedInterleavingMatchesReference) {
  std::mt19937 rng(0xC4A1u);
  SegmentPool pool(8);
  BufferChain c(&pool);
  Bytes ref;
  std::size_t ref_head = 0;
  for (int op = 0; op < 4000; ++op) {
    if (ref.size() - ref_head == 0 || (rng() & 1) != 0) {
      const std::size_t n = rng() % (SegmentPool::kSegmentBytes / 2);
      const Bytes b = pattern(n, static_cast<std::uint8_t>(rng()));
      c.append(ByteSpan{b});
      ref.insert(ref.end(), b.begin(), b.end());
    } else {
      const std::size_t n = rng() % (ref.size() - ref_head) + 1;
      c.consume(n);
      ref_head += n;
    }
    ASSERT_EQ(c.size(), ref.size() - ref_head);
    if (op % 97 == 0)
      ASSERT_EQ(gather(c),
                Bytes(ref.begin() + static_cast<std::ptrdiff_t>(ref_head),
                      ref.end()));
    if (ref_head == ref.size() && ref.size() > (1u << 20)) {
      ref.clear();
      ref_head = 0;
    }
  }
  ASSERT_EQ(gather(c),
            Bytes(ref.begin() + static_cast<std::ptrdiff_t>(ref_head),
                  ref.end()));
}

}  // namespace
}  // namespace mcam::estelle
