// Scheduler stress and edge-case tests: determinism of the parallel
// executors, uniprocessor-host mapping, dynamic module destruction, output
// capture, and misc runtime invariants not covered by estelle_test.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "asn1/value.hpp"
#include "estelle/module.hpp"
#include "estelle/executor.hpp"
#include "estelle/trace.hpp"

namespace mcam::estelle {
namespace {

using common::SimTime;

/// A chain cell: receives a token, increments its hop count, forwards it.
class Cell : public Module {
 public:
  explicit Cell(std::string name)
      : Module(std::move(name), Attribute::Process) {
    auto& in = ip("in");
    ip("out");
    trans("hop").when(in, 1).action([this](Module&, const Interaction* msg) {
      ++hops;
      if (ip("out").connected()) {
        Interaction fwd(1, asn1::Value::integer(
                               msg->value.as_int().value_or(0) + 1));
        ip("out").output(std::move(fwd));
      } else {
        final_value = msg->value.as_int().value_or(0);
      }
    });
  }
  int hops = 0;
  std::int64_t final_value = -1;
};

/// Builds a ring-free chain of `n` cells inside one system module and
/// injects `tokens` tokens; returns the final cell's last value and the
/// total hops under the given runner.
template <typename MakeSched>
std::pair<std::int64_t, int> run_chain(int n, int tokens,
                                       MakeSched&& make_sched) {
  Specification spec("chain");
  auto& sys =
      spec.root().create_child<Module>("sys", Attribute::SystemProcess);
  std::vector<Cell*> cells;
  for (int i = 0; i < n; ++i)
    cells.push_back(&sys.create_child<Cell>("cell" + std::to_string(i)));
  auto& driver = sys.create_child<Module>("driver", Attribute::Process);
  connect(driver.ip("out"), cells.front()->ip("in"));
  for (int i = 0; i + 1 < n; ++i)
    connect(cells[static_cast<std::size_t>(i)]->ip("out"),
            cells[static_cast<std::size_t>(i) + 1]->ip("in"));
  spec.initialize();
  for (int t = 0; t < tokens; ++t)
    driver.ip("out").output(Interaction(1, asn1::Value::integer(0)));

  make_sched(spec);

  int total_hops = 0;
  for (Cell* c : cells) total_hops += c->hops;
  return {cells.back()->final_value, total_hops};
}

TEST(SchedStress, LongChainAllSchedulersAgree) {
  const int kCells = 32;
  const int kTokens = 20;
  const auto seq = run_chain(kCells, kTokens, [](Specification& s) {
    make_executor(s)->run();
  });
  const auto par = run_chain(kCells, kTokens, [](Specification& s) {
    make_executor(s, {.kind = ExecutorKind::ParallelSim, .processors = 8})
        ->run();
  });
  const auto thr = run_chain(kCells, kTokens, [](Specification& s) {
    make_executor(s, {.kind = ExecutorKind::Threaded, .threads = 8})->run();
  });
  const auto shd = run_chain(kCells, kTokens, [](Specification& s) {
    make_executor(s, {.kind = ExecutorKind::Sharded, .threads = 8})->run();
  });
  EXPECT_EQ(seq.first, kCells - 1);  // token incremented at every hop
  EXPECT_EQ(seq.second, kCells * kTokens);
  EXPECT_EQ(seq, par);
  EXPECT_EQ(seq, thr);
  EXPECT_EQ(seq, shd);
}

TEST(SchedStress, SoakChainDifferentialAcrossAllBackends) {
  // Soak mode: MCAM_SOAK_ITERS=N repeats the whole-chain differential N
  // times with varying shapes (default 1 — cheap enough for every CI run;
  // the TSan job and nightly soaks crank it up). Every iteration reuses one
  // executor per backend for two runs, so the persistent worker pools see
  // sustained reuse under contention.
  int iters = 1;
  if (const char* env = std::getenv("MCAM_SOAK_ITERS"))
    iters = std::max(1, std::atoi(env));

  for (int i = 0; i < iters; ++i) {
    const int cells = 8 + (i % 5) * 7;   // 8..36
    const int tokens = 4 + (i % 3) * 5;  // 4..14
    const auto twice = [&](ExecutorKind kind) {
      return run_chain(cells, tokens, [&](Specification& s) {
        auto ex = make_executor(s, {.kind = kind,
                                    .processors = 4,
                                    .threads = 1 + (i % 4)});
        ex->run({.stop = {StopCondition::max_steps(3)}});
        ex->run();  // resume to quiescence on the same (pooled) executor
      });
    };
    const auto seq = twice(ExecutorKind::Sequential);
    EXPECT_EQ(seq.first, cells - 1) << "iteration " << i;
    EXPECT_EQ(seq.second, cells * tokens) << "iteration " << i;
    for (ExecutorKind kind :
         {ExecutorKind::ParallelSim, ExecutorKind::Threaded,
          ExecutorKind::Sharded}) {
      EXPECT_EQ(twice(kind), seq)
          << "iteration " << i << ", backend " << executor_kind_name(kind);
    }
  }
}

TEST(SchedStress, ParallelSimDeterministicAcrossRuns) {
  const auto once = [] {
    Specification spec("d");
    auto& sys =
        spec.root().create_child<Module>("sys", Attribute::SystemProcess);
    std::vector<Cell*> cells;
    for (int i = 0; i < 10; ++i)
      cells.push_back(&sys.create_child<Cell>("c" + std::to_string(i)));
    auto& driver = sys.create_child<Module>("drv", Attribute::Process);
    connect(driver.ip("out"), cells[0]->ip("in"));
    for (int i = 0; i + 1 < 10; ++i)
      connect(cells[static_cast<std::size_t>(i)]->ip("out"),
              cells[static_cast<std::size_t>(i) + 1]->ip("in"));
    spec.initialize();
    for (int t = 0; t < 7; ++t)
      driver.ip("out").output(Interaction(1, asn1::Value::integer(0)));
    return make_executor(spec, {.kind = ExecutorKind::ParallelSim,
                                .processors = 3,
                                .mapping = Mapping::GroupedUnits})
        ->run()
        .time.ns;
  };
  EXPECT_EQ(once(), once());
}

TEST(SchedStress, UniprocessorHostCollapsesUnits) {
  Specification spec("uni");
  auto& sys =
      spec.root().create_child<Module>("sys", Attribute::SystemProcess);
  sys.set_uniprocessor_host(true);
  std::vector<Cell*> cells;
  for (int i = 0; i < 6; ++i)
    cells.push_back(&sys.create_child<Cell>("c" + std::to_string(i)));
  auto& driver = sys.create_child<Module>("drv", Attribute::Process);
  connect(driver.ip("out"), cells[0]->ip("in"));
  for (int i = 0; i + 1 < 6; ++i)
    connect(cells[static_cast<std::size_t>(i)]->ip("out"),
            cells[static_cast<std::size_t>(i) + 1]->ip("in"));
  spec.initialize();
  driver.ip("out").output(Interaction(1, asn1::Value::integer(0)));

  auto sched = make_executor(spec, {.kind = ExecutorKind::ParallelSim,
                                    .processors = 8,
                                    .mapping = Mapping::ThreadPerModule});
  sched->run();
  // Despite thread-per-module mapping, everything collapsed to one unit.
  EXPECT_EQ(sched->unit_count(), 1);
}

TEST(SchedStress, UniprocessorHostIsSlowerThanMultiprocessor) {
  const auto run_with = [](bool uniprocessor) {
    Specification spec("cmp");
    auto& sys =
        spec.root().create_child<Module>("sys", Attribute::SystemProcess);
    sys.set_uniprocessor_host(uniprocessor);
    // Independent workers: embarrassingly parallel.
    for (int i = 0; i < 4; ++i) {
      auto& w = sys.create_child<Module>("w" + std::to_string(i),
                                         Attribute::Process);
      w.trans("work")
          .cost(SimTime::from_us(100))
          .provided([&w](Module&, const Interaction*) {
            return w.state() < 20;
          })
          .action([](Module& m, const Interaction*) {
            m.set_state(m.state() + 1);
          });
    }
    spec.initialize();
    return make_executor(spec,
                         {.kind = ExecutorKind::ParallelSim, .processors = 4})
        ->run()
        .time;
  };
  EXPECT_GT(run_with(true).ns, run_with(false).ns);
}

TEST(SchedStress, DynamicReleaseDuringRun) {
  // A supervisor spawns a worker, lets it run, then destroys it mid-run;
  // the world stays consistent and quiescence is reached.
  class Supervisor : public Module {
   public:
    explicit Supervisor(std::string name)
        : Module(std::move(name), Attribute::SystemProcess) {
      trans("spawn")
          .from(0)
          .to(1)
          .action([](Module& m, const Interaction*) {
            auto& worker =
                m.create_child<Module>("worker", Attribute::Process);
            worker.trans("spin").action([](Module&, const Interaction*) {});
          });
      trans("reap")
          .from(1)
          .to(2)
          .delay(SimTime::from_ms(1))
          .action([](Module& m, const Interaction*) {
            m.release_child(*m.children().front());
          });
    }
  };
  Specification spec("dyn");
  auto& sup = spec.root().create_child<Supervisor>("sup");
  spec.initialize();
  make_executor(spec, {.max_steps = 2000})->run();
  EXPECT_EQ(sup.children().size(), 0u);
  EXPECT_EQ(sup.state(), 2);
}

TEST(OutputCaptureTest, CapturesAndCommitsInOrder) {
  Specification spec("cap");
  auto& sys =
      spec.root().create_child<Module>("sys", Attribute::SystemProcess);
  auto& a = sys.create_child<Module>("a", Attribute::Process);
  auto& b = sys.create_child<Module>("b", Attribute::Process);
  connect(a.ip("x"), b.ip("x"));

  OutputCapture capture;
  capture.begin();
  a.ip("x").output(Interaction(1));
  a.ip("x").output(Interaction(2));
  capture.end();
  EXPECT_EQ(capture.size(), 2u);
  EXPECT_FALSE(b.ip("x").has_input());  // nothing delivered yet

  a.ip("x").output(Interaction(3));  // outside capture: immediate
  EXPECT_EQ(b.ip("x").queue_length(), 1u);

  capture.commit();
  ASSERT_EQ(b.ip("x").queue_length(), 3u);
  EXPECT_EQ(b.ip("x").pop().kind, 3);  // immediate one arrived first
  EXPECT_EQ(b.ip("x").pop().kind, 1);
  EXPECT_EQ(b.ip("x").pop().kind, 2);
}

TEST(OutputCaptureTest, NestedCaptureRejected) {
  OutputCapture outer;
  outer.begin();
  OutputCapture inner;
  EXPECT_THROW(inner.begin(), std::logic_error);
  outer.end();
}

TEST(SpecificationTest, DoubleInitializeThrows) {
  Specification spec("x");
  spec.initialize();
  EXPECT_THROW(spec.initialize(), EstelleRuleError);
}

TEST(SpecificationTest, PathsAndSubtreeSizes) {
  Specification spec("world");
  auto& sys =
      spec.root().create_child<Module>("sys", Attribute::SystemProcess);
  auto& child = sys.create_child<Module>("conn", Attribute::Process);
  auto& grand = child.create_child<Module>("leaf", Attribute::Process);
  EXPECT_EQ(grand.path(), "spec:world.sys.conn.leaf");
  EXPECT_EQ(spec.root().subtree_size(), 4u);
  EXPECT_EQ(sys.subtree_size(), 3u);
  EXPECT_EQ(grand.owning_system_module(), &sys);
  EXPECT_EQ(spec.root().owning_system_module(), nullptr);
}

TEST(SchedStress, RunUntilStopsPromptly) {
  Specification spec("stop");
  auto& sys = spec.root().create_child<Module>("sys", Attribute::SystemProcess);
  auto& w = sys.create_child<Module>("w", Attribute::Process);
  int count = 0;
  w.trans("tick").action(
      [&count](Module&, const Interaction*) { ++count; });
  spec.initialize();
  make_executor(spec)->run_until([&] { return count >= 5; });
  EXPECT_GE(count, 5);
  EXPECT_LE(count, 6);  // at most one extra round
}

TEST(SchedStress, MaxStepsBoundsRunawaySpecs) {
  Specification spec("runaway");
  auto& sys = spec.root().create_child<Module>("sys", Attribute::SystemProcess);
  auto& w = sys.create_child<Module>("w", Attribute::Process);
  w.trans("forever").action([](Module&, const Interaction*) {});
  spec.initialize();
  const RunReport report = make_executor(spec, {.max_steps = 100})->run();
  EXPECT_EQ(report.reason, StopReason::StepLimit);
  EXPECT_LE(report.stats.rounds, 101u);
}

}  // namespace
}  // namespace mcam::estelle

// Appended: execution tracing (estelle/trace.hpp).
namespace mcam::estelle {
namespace {

TEST(Tracing, RecordsFiredTransitionsInOrder) {
  TraceRecorder trace;
  Specification spec("traced");
  auto& sys =
      spec.root().create_child<Module>("sys", Attribute::SystemProcess);
  auto& a = sys.create_child<Module>("a", Attribute::Process);
  auto& b = sys.create_child<Module>("b", Attribute::Process);
  connect(a.ip("out"), b.ip("in"));
  a.trans("ping").from(0).to(1).action([&a](Module&, const Interaction*) {
    a.ip("out").output(Interaction(1));
  });
  b.trans("pong").when(b.ip("in"), 1).action(
      [](Module&, const Interaction*) {});
  spec.initialize();
  make_executor(spec)->run({.observers = {&trace}});

  const auto names = trace.transition_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "ping");
  EXPECT_EQ(names[1], "pong");
  EXPECT_EQ(trace.events()[0].module_path, "spec:traced.sys.a");
  EXPECT_EQ(trace.events()[0].to_state, 1);
  EXPECT_NE(trace.to_string().find("ping"), std::string::npos);
}

TEST(Tracing, DeterministicGoldenTrace) {
  const auto run_traced = [] {
    TraceRecorder trace;
    Specification spec("g");
    auto& sys =
        spec.root().create_child<Module>("sys", Attribute::SystemProcess);
    auto& w = sys.create_child<Module>("w", Attribute::Process);
    for (int i = 0; i < 3; ++i)
      w.trans("t" + std::to_string(i))
          .from(i)
          .to(i + 1)
          .action([](Module&, const Interaction*) {});
    spec.initialize();
    make_executor(spec)->run({.observers = {&trace}});
    return trace.to_string();
  };
  const std::string golden = run_traced();
  EXPECT_EQ(run_traced(), golden);
  EXPECT_NE(golden.find("t0"), std::string::npos);
  EXPECT_NE(golden.find("t2"), std::string::npos);
}

TEST(Tracing, NoObserverMeansNoOverheadPath) {
  Specification spec("quiet");
  auto& sys =
      spec.root().create_child<Module>("sys", Attribute::SystemProcess);
  auto& w = sys.create_child<Module>("w", Attribute::Process);
  w.trans("t").from(0).to(1).action([](Module&, const Interaction*) {});
  spec.initialize();
  EXPECT_NO_THROW(make_executor(spec)->run());
}

}  // namespace
}  // namespace mcam::estelle
