// MCAM PDU codec tests: typed round-trips for every operation, malformed
// input handling, and a property-style random round-trip over the variant.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "asn1/ber.hpp"
#include "mcam/pdus.hpp"

namespace mcam::core {
namespace {

template <typename T>
void expect_roundtrip(const T& pdu) {
  const Bytes wire = encode(Pdu{pdu});
  auto decoded = decode(wire);
  ASSERT_TRUE(decoded.ok()) << op_name(op_of(Pdu{pdu})) << ": "
                            << decoded.error().message;
  ASSERT_TRUE(std::holds_alternative<T>(decoded.value()))
      << op_name(op_of(decoded.value()));
  EXPECT_EQ(std::get<T>(decoded.value()), pdu);
  auto op = peek_op(wire);
  ASSERT_TRUE(op.ok());
  EXPECT_EQ(op.value(), op_of(Pdu{pdu}));
}

TEST(McamPdus, AssociationRoundTrips) {
  expect_roundtrip(AssociateReq{"alice", 1});
  expect_roundtrip(AssociateResp{ResultCode::Success, "welcome"});
  expect_roundtrip(AssociateResp{ResultCode::AccessDenied, "go away"});
  expect_roundtrip(ReleaseReq{});
  expect_roundtrip(ReleaseResp{});
}

TEST(McamPdus, MovieAccessRoundTrips) {
  expect_roundtrip(MovieCreateReq{
      "casablanca",
      {{"format", "mjpeg"}, {"fps", "25.000"}, {"duration", "1500"}}});
  expect_roundtrip(MovieCreateResp{ResultCode::Success, 42});
  expect_roundtrip(MovieDeleteReq{42});
  expect_roundtrip(MovieDeleteResp{ResultCode::NoSuchMovie});
  expect_roundtrip(MovieSelectReq{"casablanca"});
  expect_roundtrip(MovieSelectResp{
      ResultCode::Success, 42, {{"title", "casablanca"}, {"fps", "25"}}});
}

TEST(McamPdus, ManagementRoundTrips) {
  expect_roundtrip(AttrQueryReq{7, {"fps", "format"}});
  expect_roundtrip(AttrQueryReq{7, {}});  // all attributes
  expect_roundtrip(AttrQueryResp{ResultCode::Success, {{"fps", "25.000"}}});
  expect_roundtrip(AttrModifyReq{7, {{"rights", "public"}}});
  expect_roundtrip(AttrModifyResp{ResultCode::AccessDenied});
}

TEST(McamPdus, ControlRoundTrips) {
  expect_roundtrip(PlayReq{7, 100, "client1", 7000});
  expect_roundtrip(PlayResp{ResultCode::Success, 3});
  expect_roundtrip(StopReq{7});
  expect_roundtrip(StopResp{ResultCode::Success, 1499});
  expect_roundtrip(PauseReq{7});
  expect_roundtrip(PauseResp{ResultCode::NotPlaying});
  expect_roundtrip(ResumeReq{7});
  expect_roundtrip(ResumeResp{ResultCode::Success});
  expect_roundtrip(RecordReq{"lecture", 2, {{"fps", "25"}}});
  expect_roundtrip(RecordResp{ResultCode::Success, 99});
  expect_roundtrip(RecordStopReq{99});
  expect_roundtrip(RecordStopResp{ResultCode::Success, 750});
}

TEST(McamPdus, EquipmentRoundTrips) {
  expect_roundtrip(EquipListReq{-1});
  expect_roundtrip(EquipListReq{0});
  expect_roundtrip(EquipListResp{
      ResultCode::Success,
      {{1, 0, "studio-cam", true, "alice"}, {2, 2, "speaker", false, ""}}});
  expect_roundtrip(EquipControlReq{1, 2, "volume", 80});
  expect_roundtrip(EquipControlResp{ResultCode::Success, true, 80, "alice"});
}

TEST(McamPdus, NotificationsRoundTrip) {
  expect_roundtrip(PositionInd{7, 1234});  // high-tag-number PDU
  expect_roundtrip(ErrorResp{ResultCode::ProtocolError, "bad"});
}

TEST(McamPdus, EmptyStringsAndLists) {
  expect_roundtrip(AssociateReq{"", 1});
  expect_roundtrip(MovieCreateReq{"", {}});
  expect_roundtrip(EquipListResp{ResultCode::Success, {}});
}

TEST(McamPdus, DecodeRejectsGarbage) {
  EXPECT_FALSE(decode(common::to_bytes("junk")).ok());
  EXPECT_FALSE(decode({}).ok());
  EXPECT_FALSE(peek_op(common::to_bytes("junk")).ok());
}

TEST(McamPdus, DecodeRejectsUnknownTag) {
  // APPLICATION[500] is not an MCAM operation.
  const Bytes wire =
      ::mcam::asn1::encode(asn1::Value::application(500, {asn1::Value::integer(1)}));
  auto r = decode(wire);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, kUnknownOp);
}

TEST(McamPdus, DecodeRejectsWrongUniversalClass) {
  const Bytes wire = ::mcam::asn1::encode(asn1::Value::sequence({}));
  EXPECT_FALSE(decode(wire).ok());
}

TEST(McamPdus, DecodeRejectsMissingFields) {
  // AssociateReq with only one of two fields.
  const Bytes wire = ::mcam::asn1::encode(asn1::Value::application(
      static_cast<std::uint32_t>(Op::AssociateReq),
      {asn1::Value::ia5string("alice")}));
  auto r = decode(wire);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, kBadPduBody);
}

TEST(McamPdus, DecodeRejectsWrongFieldTypes) {
  const Bytes wire = ::mcam::asn1::encode(asn1::Value::application(
      static_cast<std::uint32_t>(Op::MovieDeleteReq),
      {asn1::Value::ia5string("not-an-integer")}));
  EXPECT_FALSE(decode(wire).ok());
}

TEST(McamPdus, TruncatedWireNeverDecodes) {
  const Bytes full = encode(Pdu{MovieSelectResp{
      ResultCode::Success, 42, {{"title", "x"}, {"rights", "public"}}}});
  for (std::size_t cut = 1; cut < full.size(); ++cut) {
    Bytes partial(full.begin(), full.begin() + static_cast<long>(cut));
    EXPECT_FALSE(decode(partial).ok()) << cut;
  }
}

// ---- property: random PDUs round-trip ----

std::string random_name(common::Rng& rng) {
  std::string s;
  const std::size_t n = rng.below(12);
  for (std::size_t i = 0; i < n; ++i)
    s.push_back(static_cast<char>('a' + rng.below(26)));
  return s;
}

std::vector<Attr> random_attrs(common::Rng& rng) {
  std::vector<Attr> attrs;
  const std::size_t n = rng.below(5);
  for (std::size_t i = 0; i < n; ++i)
    attrs.push_back(Attr{random_name(rng), random_name(rng)});
  return attrs;
}

Pdu random_pdu(common::Rng& rng) {
  switch (rng.below(12)) {
    case 0:
      return AssociateReq{random_name(rng), 1};
    case 1:
      return MovieCreateReq{random_name(rng), random_attrs(rng)};
    case 2:
      return MovieSelectResp{static_cast<ResultCode>(rng.below(13)), rng(),
                             random_attrs(rng)};
    case 3:
      return AttrQueryReq{rng(), {random_name(rng), random_name(rng)}};
    case 4:
      return AttrModifyReq{rng(), random_attrs(rng)};
    case 5:
      return PlayReq{rng(), rng(), random_name(rng),
                     static_cast<std::uint16_t>(rng.below(65536))};
    case 6:
      return StopResp{static_cast<ResultCode>(rng.below(13)), rng()};
    case 7:
      return RecordReq{random_name(rng),
                       static_cast<std::uint32_t>(rng.below(100)),
                       random_attrs(rng)};
    case 8: {
      EquipListResp resp;
      resp.result = static_cast<ResultCode>(rng.below(13));
      const std::size_t n = rng.below(4);
      for (std::size_t i = 0; i < n; ++i)
        resp.items.push_back(EquipItem{
            static_cast<std::uint32_t>(rng.below(100)),
            static_cast<int>(rng.below(4)), random_name(rng),
            rng.chance(0.5), random_name(rng)});
      return resp;
    }
    case 9:
      return PositionInd{rng(), rng()};
    case 10:
      return EquipControlReq{static_cast<std::uint32_t>(rng.below(100)),
                             static_cast<int>(rng.below(6)),
                             random_name(rng), static_cast<int>(rng.below(101))};
    default:
      return ErrorResp{static_cast<ResultCode>(rng.below(13)),
                       random_name(rng)};
  }
}

class McamPduProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(McamPduProperty, RandomPdusRoundTrip) {
  common::Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    const Pdu pdu = random_pdu(rng);
    auto decoded = decode(encode(pdu));
    ASSERT_TRUE(decoded.ok()) << op_name(op_of(pdu));
    EXPECT_TRUE(decoded.value() == pdu) << op_name(op_of(pdu));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, McamPduProperty,
                         ::testing::Values(101, 202, 303, 404, 505));

TEST(McamPdus, NamesAreStable) {
  EXPECT_STREQ(op_name(Op::PlayReq), "PlayReq");
  EXPECT_STREQ(op_name(Op::PositionInd), "PositionInd");
  EXPECT_STREQ(result_name(ResultCode::Success), "success");
  EXPECT_STREQ(result_name(ResultCode::NoSuchMovie), "no-such-movie");
}

}  // namespace
}  // namespace mcam::core
