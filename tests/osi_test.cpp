// OSI stack tests: transport ARQ (incl. loss recovery), session kernel,
// presentation kernel with BER PPDUs, full three-layer stacks back to back,
// and the hand-coded ISODE comparator.
#include <gtest/gtest.h>

#include "estelle/executor.hpp"
#include "osi/isode.hpp"
#include "osi/presentation.hpp"
#include "osi/session.hpp"
#include "osi/stack.hpp"
#include "osi/transport.hpp"

namespace mcam::osi {
namespace {

using common::Bytes;
using common::SimTime;
using estelle::Attribute;
using estelle::Interaction;
using estelle::InteractionPoint;
using estelle::Module;
using estelle::make_executor;
using estelle::Specification;

// ---------------------------------------------------------------------------
// TPDU / SPDU / PPDU codecs

TEST(TpduCodec, RoundTrip) {
  const Bytes payload = common::to_bytes("data");
  const Bytes wire = build_tpdu(Tpdu::DT, 42, payload);
  const TpduView v = parse_tpdu(wire);
  EXPECT_EQ(v.type, Tpdu::DT);
  EXPECT_EQ(v.seq, 42u);
  EXPECT_EQ(v.payload, payload);
}

TEST(SpduCodec, RoundTrip) {
  const Bytes user = common::to_bytes("ppdu-bytes");
  const SpduView v = parse_spdu(build_spdu(Spdu::CN, user));
  EXPECT_EQ(v.type, Spdu::CN);
  EXPECT_EQ(v.user_data, user);
}

TEST(PpduCodec, CpRoundTrip) {
  const Bytes user = common::to_bytes("associate-req");
  auto v = parse_ppdu(build_cp(1, user));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().type, PpduView::Type::CP);
  EXPECT_EQ(v.value().context_id, 1);
  EXPECT_EQ(v.value().user_data, user);
}

TEST(PpduCodec, CpaCprTdRoundTrip) {
  auto cpa = parse_ppdu(build_cpa(3, common::to_bytes("ok")));
  ASSERT_TRUE(cpa.ok());
  EXPECT_EQ(cpa.value().type, PpduView::Type::CPA);
  EXPECT_EQ(cpa.value().context_id, 3);

  auto cpr = parse_ppdu(build_cpr(2, {}));
  ASSERT_TRUE(cpr.ok());
  EXPECT_EQ(cpr.value().type, PpduView::Type::CPR);
  EXPECT_EQ(cpr.value().reason, 2);

  auto td = parse_ppdu(build_td(1, common::to_bytes("payload")));
  ASSERT_TRUE(td.ok());
  EXPECT_EQ(td.value().type, PpduView::Type::TD);
  EXPECT_EQ(td.value().user_data, common::to_bytes("payload"));
}

TEST(PpduCodec, RejectsGarbage) {
  EXPECT_FALSE(parse_ppdu(common::to_bytes("not ber")).ok());
  EXPECT_FALSE(parse_ppdu({}).ok());
}

// ---------------------------------------------------------------------------
// Transport layer. `ua`/`ub` are transitionless user modules whose IPs stand
// in for the session entities above the transport service.

struct TransportWorld {
  Specification spec{"tp"};
  Module* sys;
  TransportModule* a;
  TransportModule* b;
  Module* ua;
  Module* ub;

  explicit TransportWorld(TransportModule::Config cfg = {}, double loss = 0.0,
                          common::Rng* rng = nullptr) {
    sys = &spec.root().create_child<Module>("sys", Attribute::SystemProcess);
    a = &sys->create_child<TransportModule>("tpA", cfg);
    b = &sys->create_child<TransportModule>("tpB", cfg);
    ua = &sys->create_child<Module>("userA", Attribute::Process);
    ub = &sys->create_child<Module>("userB", Attribute::Process);
    estelle::connect(ua->ip("svc"), a->upper());
    estelle::connect(ub->ip("svc"), b->upper());
    join_transports(*a, *b, loss, rng);
    spec.initialize();
  }

  InteractionPoint& user_a() { return ua->ip("svc"); }
  InteractionPoint& user_b() { return ub->ip("svc"); }
};

TEST(Transport, ConnectAndTransfer) {
  TransportWorld w;
  w.user_a().output(Interaction(kTConReq));
  auto sched = make_executor(w.spec);
  sched->run_until([&] { return w.user_a().has_input(); });
  ASSERT_TRUE(w.user_a().has_input());
  EXPECT_EQ(w.user_a().pop().kind, kTConConf);

  w.user_a().output(Interaction(kTDatReq, common::to_bytes("one")));
  w.user_a().output(Interaction(kTDatReq, common::to_bytes("two")));
  sched->run();
  ASSERT_EQ(w.user_b().queue_length(), 2u);
  EXPECT_EQ(w.user_b().pop().payload, common::to_bytes("one"));
  EXPECT_EQ(w.user_b().pop().payload, common::to_bytes("two"));
  EXPECT_EQ(w.a->retransmissions(), 0u);
}

class TransportLossTest : public ::testing::TestWithParam<double> {};

TEST_P(TransportLossTest, ArqDelivers100PercentInOrder) {
  common::Rng rng(17);
  TransportModule::Config cfg;
  cfg.rto = SimTime::from_ms(5);
  TransportWorld w(cfg, GetParam(), &rng);

  w.user_a().output(Interaction(kTConReq));
  const std::size_t kMessages = 40;
  for (std::size_t i = 0; i < kMessages; ++i)
    w.user_a().output(Interaction(kTDatReq, {static_cast<std::uint8_t>(i)}));

  auto sched = make_executor(w.spec, {.max_steps = 200000});
  sched->run_until([&] { return w.user_b().queue_length() >= kMessages; });

  // Table 1 control-path property: 100% reliable, in order, despite loss.
  ASSERT_EQ(w.user_b().queue_length(), kMessages);
  int expected = 0;
  while (w.user_b().has_input())
    EXPECT_EQ(w.user_b().pop().payload[0], expected++);
  EXPECT_EQ(expected, static_cast<int>(kMessages));
  if (GetParam() > 0.0) EXPECT_GT(w.a->retransmissions(), 0u);
}

INSTANTIATE_TEST_SUITE_P(LossSweep, TransportLossTest,
                         ::testing::Values(0.0, 0.05, 0.15, 0.30));

TEST(Transport, WindowLimitsOutstandingData) {
  TransportModule::Config cfg;
  cfg.window = 4;
  TransportWorld w(cfg);
  w.user_a().output(Interaction(kTConReq));
  auto sched = make_executor(w.spec);
  sched->run_until([&] { return w.user_a().has_input(); });
  (void)w.user_a().pop();

  for (int i = 0; i < 12; ++i)
    w.user_a().output(Interaction(kTDatReq, {static_cast<std::uint8_t>(i)}));
  sched->run();
  ASSERT_EQ(w.user_b().queue_length(), 12u);
  for (int i = 0; i < 12; ++i) EXPECT_EQ(w.user_b().pop().payload[0], i);
}

TEST(Transport, Disconnect) {
  TransportWorld w;
  w.user_a().output(Interaction(kTConReq));
  auto sched = make_executor(w.spec);
  sched->run_until([&] { return w.user_a().has_input(); });
  (void)w.user_a().pop();
  w.user_a().output(Interaction(kTDisReq));
  sched->run();
  ASSERT_TRUE(w.user_b().has_input());
  EXPECT_EQ(w.user_b().pop().kind, kTDisInd);
}

// ---------------------------------------------------------------------------
// Full generated stack (presentation + session + transport), back to back

struct StackWorld {
  Specification spec{"stk"};
  Module* client_sys;
  Module* server_sys;
  EstelleStack client;
  EstelleStack server;
  Module* cu;
  Module* su;

  explicit StackWorld(double loss = 0.0, common::Rng* rng = nullptr) {
    client_sys =
        &spec.root().create_child<Module>("client", Attribute::SystemProcess);
    server_sys =
        &spec.root().create_child<Module>("server", Attribute::SystemProcess);
    client = build_estelle_stack(*client_sys, "c");
    server = build_estelle_stack(*server_sys, "s");
    cu = &client_sys->create_child<Module>("userC", Attribute::Process);
    su = &server_sys->create_child<Module>("userS", Attribute::Process);
    estelle::connect(cu->ip("svc"), client.service());
    estelle::connect(su->ip("svc"), server.service());
    join_transports(*client.transport, *server.transport, loss, rng);
    spec.initialize();
  }

  InteractionPoint& user_c() { return cu->ip("svc"); }
  InteractionPoint& user_s() { return su->ip("svc"); }

  /// Drive a full P-CONNECT handshake (server responds with `accept`).
  void connect_stacks(estelle::Executor& sched, bool accept = true) {
    user_c().output(Interaction(kPConReq, common::to_bytes("hello")));
    sched.run_until([&] { return user_s().has_input(); });
    ASSERT_TRUE(user_s().has_input());
    const Interaction ind = user_s().pop();
    ASSERT_EQ(ind.kind, kPConInd);
    EXPECT_EQ(ind.payload, common::to_bytes("hello"));
    user_s().output(Interaction(kPConResp, asn1::Value::boolean(accept),
                                common::to_bytes("welcome")));
    sched.run_until([&] { return user_c().has_input(); });
  }
};

TEST(FullStack, ConnectDataRelease) {
  StackWorld w;
  auto sched = make_executor(w.spec);
  w.connect_stacks(*sched);

  ASSERT_TRUE(w.user_c().has_input());
  Interaction conf = w.user_c().pop();
  EXPECT_EQ(conf.kind, kPConConf);
  EXPECT_EQ(conf.payload, common::to_bytes("welcome"));
  EXPECT_EQ(w.client.presentation->transfer_syntax(),
            oids::kBerTransferSyntax);

  // Data both ways.
  w.user_c().output(Interaction(kPDatReq, common::to_bytes("ping")));
  sched->run_until([&] { return w.user_s().has_input(); });
  Interaction ping = w.user_s().pop();
  EXPECT_EQ(ping.kind, kPDatInd);
  EXPECT_EQ(ping.payload, common::to_bytes("ping"));

  w.user_s().output(Interaction(kPDatReq, common::to_bytes("pong")));
  sched->run_until([&] { return w.user_c().has_input(); });
  Interaction pong = w.user_c().pop();
  EXPECT_EQ(pong.kind, kPDatInd);
  EXPECT_EQ(pong.payload, common::to_bytes("pong"));

  // Orderly release initiated by the client.
  w.user_c().output(Interaction(kPRelReq));
  sched->run_until([&] { return w.user_s().has_input(); });
  EXPECT_EQ(w.user_s().pop().kind, kPRelInd);
  w.user_s().output(Interaction(kPRelResp));
  sched->run_until([&] { return w.user_c().has_input(); });
  EXPECT_EQ(w.user_c().pop().kind, kPRelConf);
  EXPECT_EQ(w.client.presentation->state(), PresentationModule::kIdle);
  EXPECT_EQ(w.server.session->state(), SessionModule::kIdle);
}

TEST(FullStack, ConnectionRefusedPropagates) {
  StackWorld w;
  auto sched = make_executor(w.spec);
  w.connect_stacks(*sched, /*accept=*/false);
  ASSERT_TRUE(w.user_c().has_input());
  Interaction refused = w.user_c().pop();
  EXPECT_EQ(refused.kind, kPConRefuse);
  EXPECT_EQ(w.client.presentation->state(), PresentationModule::kIdle);
}

TEST(FullStack, SurvivesTransportLoss) {
  common::Rng rng(23);
  StackWorld w(0.2, &rng);
  auto sched = make_executor(w.spec, {.max_steps = 500000});
  w.connect_stacks(*sched);
  ASSERT_TRUE(w.user_c().has_input());
  EXPECT_EQ(w.user_c().pop().kind, kPConConf);

  const std::size_t kMessages = 20;
  for (std::size_t i = 0; i < kMessages; ++i)
    w.user_c().output(Interaction(kPDatReq, {static_cast<std::uint8_t>(i)}));
  sched->run_until([&] { return w.user_s().queue_length() >= kMessages; });
  ASSERT_EQ(w.user_s().queue_length(), kMessages);
  for (std::size_t i = 0; i < kMessages; ++i) {
    Interaction msg = w.user_s().pop();
    EXPECT_EQ(msg.kind, kPDatInd);
    EXPECT_EQ(msg.payload[0], static_cast<std::uint8_t>(i));
  }
}

// ---------------------------------------------------------------------------
// Hand-coded ISODE stack

TEST(Isode, ConnectDataRelease) {
  isode::IsodeEntity a, b;
  isode::link(a, b);

  a.p_connect_request(common::to_bytes("hi"));
  auto ind = b.next_indication();
  ASSERT_TRUE(ind.has_value());
  EXPECT_EQ(ind->event, isode::Event::ConnectInd);
  EXPECT_EQ(ind->user_data, common::to_bytes("hi"));

  b.p_connect_response(true, common::to_bytes("yo"));
  auto conf = a.next_indication();
  ASSERT_TRUE(conf.has_value());
  EXPECT_EQ(conf->event, isode::Event::ConnectConf);
  EXPECT_EQ(conf->user_data, common::to_bytes("yo"));
  EXPECT_EQ(a.state(), isode::IsodeEntity::State::kOpen);

  a.p_data_request(common::to_bytes("payload"));
  auto data = b.next_indication();
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->event, isode::Event::DataInd);
  EXPECT_EQ(data->user_data, common::to_bytes("payload"));

  a.p_release_request();
  ASSERT_EQ(b.next_indication()->event, isode::Event::ReleaseInd);
  b.p_release_response();
  ASSERT_EQ(a.next_indication()->event, isode::Event::ReleaseConf);
  EXPECT_EQ(a.state(), isode::IsodeEntity::State::kIdle);
  EXPECT_EQ(b.state(), isode::IsodeEntity::State::kIdle);
}

TEST(Isode, RefusalAndStateErrors) {
  isode::IsodeEntity a, b;
  isode::link(a, b);
  EXPECT_THROW(a.p_data_request({}), std::logic_error);
  a.p_connect_request({});
  (void)b.next_indication();
  b.p_connect_response(false, common::to_bytes("no"));
  auto refused = a.next_indication();
  ASSERT_TRUE(refused.has_value());
  EXPECT_EQ(refused->event, isode::Event::ConnectRefused);
  EXPECT_EQ(a.state(), isode::IsodeEntity::State::kIdle);
}

TEST(Isode, InterfaceModuleBridgesBothWays) {
  // The §4.3 interface module: same P-service as the generated stack.
  Specification spec("isode");
  auto& client_sys =
      spec.root().create_child<Module>("client", Attribute::SystemProcess);
  auto& server_sys =
      spec.root().create_child<Module>("server", Attribute::SystemProcess);
  auto& ci = client_sys.create_child<isode::IsodeInterfaceModule>("iface");
  auto& si = server_sys.create_child<isode::IsodeInterfaceModule>("iface");
  auto& cu = client_sys.create_child<Module>("userC", Attribute::Process);
  auto& su = server_sys.create_child<Module>("userS", Attribute::Process);
  estelle::connect(cu.ip("svc"), ci.upper());
  estelle::connect(su.ip("svc"), si.upper());
  isode::link(ci.entity(), si.entity());
  spec.initialize();

  auto sched = make_executor(spec);
  cu.ip("svc").output(Interaction(kPConReq, common::to_bytes("cp")));
  sched->run_until([&] { return su.ip("svc").has_input(); });
  ASSERT_TRUE(su.ip("svc").has_input());
  EXPECT_EQ(su.ip("svc").pop().kind, kPConInd);
  su.ip("svc").output(Interaction(kPConResp, asn1::Value::boolean(true),
                                  common::to_bytes("cpa")));
  sched->run_until([&] { return cu.ip("svc").has_input(); });
  ASSERT_TRUE(cu.ip("svc").has_input());
  EXPECT_EQ(cu.ip("svc").pop().kind, kPConConf);

  cu.ip("svc").output(Interaction(kPDatReq, common::to_bytes("x")));
  sched->run_until([&] { return su.ip("svc").has_input(); });
  Interaction msg = su.ip("svc").pop();
  EXPECT_EQ(msg.kind, kPDatInd);
  EXPECT_EQ(msg.payload, common::to_bytes("x"));
}

}  // namespace
}  // namespace mcam::osi
